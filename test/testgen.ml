(* Random mini-C program generator for differential testing.

   Generated programs are strictly conforming within the subset: pointer
   arithmetic stays inside the heap array it derives from (so checked mode
   must accept them), divisors are forced odd, shifts are bounded.  Every
   program prints a digest of all its state at the end, so two builds
   agree iff their observable behaviour agrees. *)

open QCheck.Gen

let int_vars = [ "a"; "b"; "c"; "d" ]

let heap_len = 16 (* elements of the heap array h *)

(* integer expressions over the scalar variables *)
let rec int_expr depth st =
  if depth = 0 then
    (oneof
       [
         map string_of_int (int_range (-50) 50);
         oneofl int_vars;
         return "g0";
         return "g1";
       ])
      st
  else
    (frequency
       [
         (2, int_expr 0);
         (2, map2 (Printf.sprintf "(%s + %s)") (int_expr (depth - 1)) (int_expr (depth - 1)));
         (2, map2 (Printf.sprintf "(%s - %s)") (int_expr (depth - 1)) (int_expr (depth - 1)));
         (1, map2 (Printf.sprintf "(%s * %s)") (int_expr (depth - 1)) (int_expr 0));
         (1, map2 (Printf.sprintf "(%s / (%s | 1))") (int_expr (depth - 1)) (int_expr 0));
         (1, map2 (Printf.sprintf "(%s %% (%s | 1))") (int_expr (depth - 1)) (int_expr 0));
         (1, map2 (Printf.sprintf "(%s & %s)") (int_expr (depth - 1)) (int_expr (depth - 1)));
         (1, map2 (Printf.sprintf "(%s ^ %s)") (int_expr (depth - 1)) (int_expr (depth - 1)));
         (1, map (Printf.sprintf "(%s << 2)") (int_expr (depth - 1)));
         (1, map (Printf.sprintf "(%s >> 3)") (int_expr (depth - 1)));
         (1, map2 (Printf.sprintf "(%s < %s)") (int_expr (depth - 1)) (int_expr (depth - 1)));
         (1, map2 (Printf.sprintf "(%s == %s)") (int_expr 0) (int_expr 0));
         (1, map (Printf.sprintf "(- %s)") (int_expr (depth - 1)));
         (1, map (Printf.sprintf "h[(%s) & 15]") (int_expr (depth - 1)));
         (1, return "*p");
         (1, map3 (Printf.sprintf "(%s ? %s : %s)") (int_expr 0) (int_expr (depth - 1)) (int_expr 0));
       ])
      st

(* an index expression guaranteed in [0, heap_len) *)
let index_expr depth = map (Printf.sprintf "((%s) & 15)") (int_expr depth)

let rec stmt depth st =
  (frequency
     [
       ( 4,
         let* v = oneofl int_vars in
         let* e = int_expr 2 in
         return (Printf.sprintf "%s = %s;" v e) );
       ( 2,
         let* i = index_expr 1 in
         let* e = int_expr 2 in
         return (Printf.sprintf "h[%s] = %s;" i e) );
       ( 2,
         let* i = index_expr 1 in
         return (Printf.sprintf "p = h + %s;" i) );
       (1, return "q = p;");
       ( 1,
         let* e = int_expr 1 in
         return (Printf.sprintf "*p = %s;" e) );
       ( 1,
         let* v = oneofl int_vars in
         return (Printf.sprintf "%s = *p + *q;" v) );
       (1, return "g0 = g0 + 1;");
       ( 1,
         let* v = oneofl int_vars in
         let* e = int_expr 1 in
         return (Printf.sprintf "%s += %s;" v e) );
       ( 1,
         let* v = oneofl int_vars in
         return (Printf.sprintf "%s++;" v) );
       (* in-bounds pointer stepping: p walks to a fresh position *)
       ( 1,
         let* i = index_expr 1 in
         return
           (Printf.sprintf "p = h; p += %s; g1 = g1 ^ *p;" i) );
       ( 1,
         if depth = 0 then return "g0++;"
         else
           let* c = int_expr 1 in
           let* a = block (depth - 1) 2 in
           let* b = block (depth - 1) 2 in
           return (Printf.sprintf "if (%s) {\n%s} else {\n%s}" c a b) );
       ( 1,
         if depth = 0 then return "g1++;"
         else
           (* one counter per nesting level: with a shared counter an
              inner loop resets the outer one and the program never
              terminates *)
           let tv = if depth >= 2 then "t" else "u" in
           let* n = int_range 2 6 in
           let* body = block (depth - 1) 2 in
           return
             (Printf.sprintf "for (%s = 0; %s < %d; %s++) {\n%s}" tv tv n tv
                body) );
       ( 1,
         let* e = int_expr 1 in
         return (Printf.sprintf "print_int(%s); putchar(10);" e) );
     ])
    st

and block depth n st =
  (let* stmts = list_repeat n (stmt depth) in
   return (String.concat "\n" stmts ^ "\n"))
    st

let program_gen : string QCheck.Gen.t =
  let* n = int_range 4 12 in
  let* body = block 2 n in
  return
    (Printf.sprintf
       {|long g0; long g1;
int main(void) {
  long a = 1; long b = 2; long c = 3; long d = 4; long t = 0; long u = 0;
  long *h = (long *)malloc(%d * sizeof(long));
  long *p; long *q;
  int i;
  for (i = 0; i < %d; i++) h[i] = i * 7;
  p = h; q = h + 5;
%s
  /* digest */
  print_int(a); print_int(b); print_int(c); print_int(d);
  print_int(g0); print_int(g1);
  for (i = 0; i < %d; i++) print_int(h[i]);
  print_int(p - h); print_int(q - h);
  putchar(10);
  return 0;
}|}
       heap_len heap_len body heap_len)

let arbitrary_program =
  QCheck.make ~print:(fun s -> s) program_gen
