(* Exec-subsystem tests: the Domain worker pool, the content-addressed
   build cache, the Diagnostics classification, and the contract the
   whole PR rests on — a parallel stress run is report-identical to the
   serial scan. *)

module Pool = Exec.Pool
module Cache = Exec.Cache
module Build = Harness.Build
module Diagnostics = Harness.Diagnostics

(* --- pool: every task runs exactly once, results in input order ------- *)

let test_pool_once_each () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let n = 200 in
      let counts = Array.init n (fun _ -> Atomic.make 0) in
      let results =
        Pool.map pool
          (fun i ->
            Atomic.incr counts.(i);
            i * i)
          (List.init n Fun.id)
      in
      Alcotest.(check (list int))
        "results ordered by input index"
        (List.init n (fun i -> i * i))
        results;
      Array.iteri
        (fun i c ->
          Alcotest.(check int)
            (Printf.sprintf "task %d ran exactly once" i)
            1 (Atomic.get c))
        counts)

let test_pool_serial_inline () =
  (* jobs=1 is the reference serial path: no domains, plain List.map *)
  let seen = ref [] in
  let results =
    Pool.map Pool.serial
      (fun i ->
        seen := i :: !seen;
        i + 1)
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "results" [ 2; 3; 4 ] results;
  Alcotest.(check (list int)) "executed in input order" [ 3; 2; 1 ] !seen

let test_pool_reusable () =
  Pool.with_pool ~jobs:3 (fun pool ->
      for round = 1 to 5 do
        let results = Pool.map pool (fun i -> i * round) [ 1; 2; 3; 4 ] in
        Alcotest.(check (list int))
          (Printf.sprintf "round %d" round)
          [ round; 2 * round; 3 * round; 4 * round ]
          results
      done)

exception Boom of int

let test_pool_exception () =
  Pool.with_pool ~jobs:4 (fun pool ->
      match
        Pool.map pool
          (fun i -> if i mod 3 = 2 then raise (Boom i) else i)
          (List.init 10 Fun.id)
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
          Alcotest.(check int) "smallest failing index wins" 2 i)

(* --- cache: single-flight memoization with counters ------------------- *)

let test_cache_counters () =
  let c : int Cache.t = Cache.create () in
  let builds = ref 0 in
  let build () = incr builds; 42 in
  Alcotest.(check int) "miss builds" 42 (Cache.find_or_build c "k" build);
  Alcotest.(check int) "hit reuses" 42 (Cache.find_or_build c "k" build);
  Alcotest.(check int) "builder ran once" 1 !builds;
  let s = Cache.stats c in
  Alcotest.(check int) "one hit" 1 s.Cache.hits;
  Alcotest.(check int) "one miss" 1 s.Cache.misses;
  Alcotest.(check int) "one entry" 1 s.Cache.entries;
  Alcotest.(check bool) "mem" true (Cache.mem c "k");
  Cache.clear c;
  Alcotest.(check bool) "cleared" false (Cache.mem c "k")

let test_cache_eviction () =
  let c : int Cache.t = Cache.create ~capacity:2 () in
  ignore (Cache.find_or_build c "a" (fun () -> 1));
  ignore (Cache.find_or_build c "b" (fun () -> 2));
  ignore (Cache.find_or_build c "a" (fun () -> 1));
  (* touch a: b is now LRU *)
  ignore (Cache.find_or_build c "c" (fun () -> 3));
  let s = Cache.stats c in
  Alcotest.(check int) "capacity held" 2 s.Cache.entries;
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  Alcotest.(check bool) "a survived (recently used)" true (Cache.mem c "a");
  Alcotest.(check bool) "b evicted (least recently used)" false
    (Cache.mem c "b")

let test_cache_failed_build_releases_slot () =
  let c : int Cache.t = Cache.create () in
  (match Cache.find_or_build c "k" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure _ -> ());
  Alcotest.(check bool) "slot released" false (Cache.mem c "k");
  Alcotest.(check int) "retry succeeds" 7
    (Cache.find_or_build c "k" (fun () -> 7))

(* regression: a miss means "a builder invocation settled an artifact".
   A failed build must count nothing — the registry's
   [build/cache/misses] is ticked per successful compile, and the two
   layers drifted apart by exactly the failed builds before the counter
   moved to the settle path. *)
let test_cache_failed_build_not_a_miss () =
  let c : int Cache.t = Cache.create () in
  (match Cache.find_or_build c "k" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure _ -> ());
  let s = Cache.stats c in
  Alcotest.(check int) "failed build is not a miss" 0 s.Cache.misses;
  ignore (Cache.find_or_build c "k" (fun () -> 7));
  let s = Cache.stats c in
  Alcotest.(check int) "the settling retry is one miss" 1 s.Cache.misses

(* --- the build cache: hits are physically equal ----------------------- *)

let src_cached = "int main(void) { return 0; }"

let test_build_cache_physical_equality () =
  Build.reset_cache ();
  let b1 = Build.compile Build.Safe src_cached in
  let b2 = Build.compile Build.Safe src_cached in
  Alcotest.(check bool) "hit returns the physically-equal built" true
    (b1 == b2);
  let s = Build.cache_stats () in
  Alcotest.(check int) "one build" 1 s.Exec.Cache.misses;
  Alcotest.(check int) "one hit" 1 s.Exec.Cache.hits

let test_build_cache_parallel_single_flight () =
  Build.reset_cache ();
  let built =
    Pool.with_pool ~jobs:4 (fun pool ->
        Pool.map pool
          (fun _ -> Build.compile Build.Safe_peephole src_cached)
          (List.init 8 Fun.id))
  in
  (match built with
  | first :: rest ->
      List.iter
        (fun b ->
          Alcotest.(check bool) "all requesters share one artifact" true
            (b == first))
        rest
  | [] -> Alcotest.fail "no results");
  let s = Build.cache_stats () in
  Alcotest.(check int) "concurrent requests built once" 1 s.Exec.Cache.misses

let test_build_no_cache () =
  Build.reset_cache ();
  let options = { Build.default with Build.use_cache = false } in
  let b1 = Build.compile ~options Build.Base src_cached in
  let b2 = Build.compile ~options Build.Base src_cached in
  Alcotest.(check bool) "uncached builds are distinct" true (not (b1 == b2));
  Build.set_cache_enabled false;
  let b3 = Build.compile Build.Base src_cached in
  let b4 = Build.compile Build.Base src_cached in
  Build.set_cache_enabled true;
  Alcotest.(check bool) "process-wide escape hatch" true (not (b3 == b4))

(* regression for the BENCH_7 accounting mismatch: the cache's own
   counters and the telemetry registry's [build/cache/*] counters must
   agree, failed builds included, because both now count settled
   builds. *)
let test_build_cache_agrees_with_registry () =
  Build.reset_cache ();
  let session = Build.new_session () in
  let m = Telemetry.Metrics.create () in
  let telemetry = Telemetry.Sink.make ~metrics:m () in
  let counter name =
    match Telemetry.Metrics.find (Telemetry.Metrics.snapshot m) name with
    | Some (Telemetry.Metrics.Counter n) -> n
    | _ -> 0
  in
  ignore (Build.compile ~telemetry Build.Safe src_cached);
  ignore (Build.compile ~telemetry Build.Safe src_cached);
  (match Build.compile ~telemetry Build.Safe "int main(void { nope" with
  | _ -> Alcotest.fail "expected a build failure"
  | exception _ -> ());
  let s = Build.session_stats session in
  Alcotest.(check int) "misses agree with build/cache/misses"
    (counter "build/cache/misses") s.Exec.Cache.misses;
  Alcotest.(check int) "hits agree with build/cache/hits"
    (counter "build/cache/hits") s.Exec.Cache.hits;
  Alcotest.(check int) "the failed build counted no miss" 1
    s.Exec.Cache.misses;
  Alcotest.(check int) "one hit" 1 s.Exec.Cache.hits

(* --- qcheck: the cache key is injective in the build inputs ----------- *)

let sources = [| src_cached; "int main(void) { return 1; }"; "long g;" |]

let gen_input =
  QCheck.Gen.(
    let* nregs = int_range 1 64 in
    let* loop_heuristic = bool in
    let* use_cache = bool in
    let* analysis = oneofl [ Gcsafe.Mode.A_none; Gcsafe.Mode.A_flow ] in
    let* gc_mode = oneofl [ Gcheap.Heap.Stw; Gcheap.Heap.Gen ] in
    let* config = oneofl Build.all_configs in
    let* source = oneofl (Array.to_list sources) in
    return
      ( { Build.nregs; loop_heuristic; use_cache; analysis; gc_mode },
        config,
        source ))

let arb_input =
  QCheck.make
    ~print:(fun (o, c, s) ->
      Printf.sprintf "{nregs=%d; loop=%b; cache=%b; analysis=%s; gc=%s} %s %S"
        o.Build.nregs o.Build.loop_heuristic o.Build.use_cache
        (Gcsafe.Mode.analysis_to_string o.Build.analysis)
        (Gcheap.Heap.gc_mode_name o.Build.gc_mode)
        (Build.config_name c) s)
    gen_input

let prop_cache_key_injective =
  QCheck.Test.make ~count:500 ~name:"cache key injective in build inputs"
    (QCheck.pair arb_input arb_input)
    (fun ((o1, c1, s1), (o2, c2, s2)) ->
      let same_inputs =
        o1.Build.nregs = o2.Build.nregs
        && o1.Build.loop_heuristic = o2.Build.loop_heuristic
        && o1.Build.analysis = o2.Build.analysis
        && o1.Build.gc_mode = o2.Build.gc_mode
        && c1 = c2 && s1 = s2
      in
      (* use_cache steers the lookup, not the artifact: it must not
         split the key space *)
      String.equal (Build.cache_key o1 c1 s1) (Build.cache_key o2 c2 s2)
      = same_inputs)

(* --- diagnostics: one exit code per class ----------------------------- *)

let test_diagnostics_exit_codes () =
  let open Diagnostics in
  List.iter
    (fun (outcome, code) ->
      Alcotest.(check int) (outcome_name outcome) code (exit_code outcome))
    [
      (Ok, 0);
      (Divergence, 1);
      (Source_error, 2);
      (Fault, 3);
      (Limit, 4);
      (Corruption, 5);
      (Heap_exhausted, 6);
      (Task_quarantined, 7);
    ]

let test_diagnostics_classify () =
  (match Diagnostics.of_exn (Machine.Vm.Fault "x") with
  | Some (Diagnostics.Fault, m) ->
      Alcotest.(check string) "fault message" "fault: x" m
  | _ -> Alcotest.fail "Vm.Fault should classify as Fault");
  (match Diagnostics.of_exn Not_found with
  | None -> ()
  | Some _ -> Alcotest.fail "foreign exceptions are not classified");
  let outcome, _ = Diagnostics.of_measure (Harness.Measure.Detected "y") in
  Alcotest.(check string) "Detected is a fault" "fault"
    (Diagnostics.outcome_name outcome);
  Alcotest.(check string) "differ obs classified" "corruption"
    (Diagnostics.outcome_name
       (Harness.Differ.classify (Harness.Differ.Obs_corrupted "z")))

(* --- parallel stress == serial stress on the hazard corpus ------------ *)

let test_parallel_stress_identical () =
  let plan machines jobs =
    {
      Stress.Driver.default_plan with
      Stress.Driver.p_matrix =
        {
          Harness.Request.default_matrix with
          Harness.Request.m_machines = machines;
        };
      Stress.Driver.p_jobs = jobs;
    }
  in
  let render jobs =
    Build.reset_cache ();
    let report =
      Stress.Driver.run
        ~plan:(plan [ Machine.Machdesc.sparc10 ] jobs)
        [ Stress.Corpus.hazard; Stress.Corpus.interior ]
    in
    Format.asprintf "%a" Stress.Driver.pp_report report
  in
  let serial = render 1 in
  let parallel = render 4 in
  Alcotest.(check string)
    "4-job report byte-identical to serial, run counts included" serial
    parallel

let suite =
  [
    Alcotest.test_case "pool: tasks run exactly once, ordered" `Quick
      test_pool_once_each;
    Alcotest.test_case "pool: jobs=1 is inline serial" `Quick
      test_pool_serial_inline;
    Alcotest.test_case "pool: reusable across maps" `Quick test_pool_reusable;
    Alcotest.test_case "pool: first-index exception wins" `Quick
      test_pool_exception;
    Alcotest.test_case "cache: counters and clear" `Quick test_cache_counters;
    Alcotest.test_case "cache: LRU eviction at capacity" `Quick
      test_cache_eviction;
    Alcotest.test_case "cache: failed build releases the slot" `Quick
      test_cache_failed_build_releases_slot;
    Alcotest.test_case "cache: failed build is not a miss" `Quick
      test_cache_failed_build_not_a_miss;
    Alcotest.test_case "build cache: counters agree with the registry"
      `Quick test_build_cache_agrees_with_registry;
    Alcotest.test_case "build cache: hits physically equal" `Quick
      test_build_cache_physical_equality;
    Alcotest.test_case "build cache: parallel single-flight" `Quick
      test_build_cache_parallel_single_flight;
    Alcotest.test_case "build cache: escape hatches" `Quick
      test_build_no_cache;
    QCheck_alcotest.to_alcotest prop_cache_key_injective;
    Alcotest.test_case "diagnostics: exit codes" `Quick
      test_diagnostics_exit_codes;
    Alcotest.test_case "diagnostics: classification" `Quick
      test_diagnostics_classify;
    Alcotest.test_case "stress: parallel report identical to serial" `Slow
      test_parallel_stress_identical;
  ]
