(* The incremental SATB marker: snapshot-reachability survives
   arbitrarily-sliced cycles with barriered mutations, cycles terminate
   under any budget, the store barrier and allocate-black behave as
   specified, and the three collector modes agree bit-for-bit on
   program outputs under schedule sweeps. *)

open Gcheap

(* --- a model mutator over a standalone heap --------------------------- *)

(* Objects are [slots] pointer fields; a register file of [nregs] cells
   plays the VM's barrier-free roots.  Mutations only move values the
   mutator could actually see — register contents and values loaded
   from registered objects — through the same barriered store path the
   VM uses, so every scenario the generator produces is one a real
   mutator could reach. *)

let slots = 4

let nregs = 4

let slot_addr obj k = obj + (8 * k)

let read_slot h obj k = Mem.load_word h.Heap.mem (slot_addr obj k)

let write_slot h obj k v =
  Heap.note_store h (slot_addr obj k) 8;
  Mem.store_word h.Heap.mem (slot_addr obj k) v

(* Reachability over the OCaml-side mirror of the object graph. *)
let reachable mirror roots =
  let seen = Hashtbl.create 64 in
  let rec go a =
    if a <> 0 && (not (Hashtbl.mem seen a)) && Hashtbl.mem mirror a then begin
      Hashtbl.add seen a ();
      Array.iter go (Hashtbl.find mirror a)
    end
  in
  List.iter go roots;
  seen

let op =
  QCheck.(
    oneof
      [
        map (fun r -> `Alloc r) (int_bound (nregs - 1));
        map
          (fun (r1, r2) -> `Mov (r1, r2))
          (pair (int_bound (nregs - 1)) (int_bound (nregs - 1)));
        map
          (fun (r1, r2, k) -> `Load (r1, r2, k))
          (triple
             (int_bound (nregs - 1))
             (int_bound (nregs - 1))
             (int_bound (slots - 1)));
        map
          (fun (r1, r2, k) -> `Store (r1, r2, k))
          (triple
             (int_bound (nregs - 1))
             (int_bound (nregs - 1))
             (int_bound (slots - 1)));
        map (fun b -> `Step b) (int_bound 300);
      ])

let prop_satb_superset =
  QCheck.Test.make ~count:120
    ~name:"SATB: cycle-start reachable set survives arbitrary slicing"
    (QCheck.list_of_size (QCheck.Gen.int_range 10 150) op)
    (fun ops ->
      let h = Heap.create () in
      h.Heap.config.Heap.incremental <- true;
      let regs = Array.make nregs 0 in
      let mirror = Hashtbl.create 64 in
      let snapshot = ref [] in
      let in_cycle = ref false in
      let roots () = Array.to_list regs in
      let check_complete () =
        in_cycle := false;
        List.iter
          (fun a ->
            if Heap.base_of h a <> Some a then
              QCheck.Test.fail_reportf
                "object %#x reachable at cycle start was collected" a)
          !snapshot;
        match Heap.check_integrity h with
        | [] -> ()
        | vs ->
            QCheck.Test.fail_reportf "heap integrity: %s"
              (String.concat "; "
                 (List.map
                    (fun v -> Format.asprintf "%a" Heap.pp_violation v)
                    vs))
      in
      List.iter
        (fun operation ->
          match operation with
          | `Alloc r ->
              let a = Heap.alloc h (8 * slots) in
              Hashtbl.replace mirror a (Array.make slots 0);
              regs.(r) <- a
          | `Mov (r1, r2) -> regs.(r1) <- regs.(r2)
          | `Load (r1, r2, k) ->
              if Hashtbl.mem mirror regs.(r2) then
                regs.(r1) <- read_slot h regs.(r2) k
          | `Store (r1, r2, k) ->
              if Hashtbl.mem mirror regs.(r2) then begin
                write_slot h regs.(r2) k regs.(r1);
                (Hashtbl.find mirror regs.(r2)).(k) <- regs.(r1)
              end
          | `Step b ->
              h.Heap.config.Heap.pause_budget_words <- max 1 b;
              if not (Incremental.active h) then begin
                (* this step takes the snapshot: record what is
                   reachable right now *)
                let seen = reachable mirror (roots ()) in
                snapshot := Hashtbl.fold (fun a () acc -> a :: acc) seen [];
                in_cycle := true
              end;
              ignore (Incremental.step ~extra_roots:(roots ()) h);
              if !in_cycle && not (Incremental.active h) then
                check_complete ())
        ops;
      if Incremental.active h then begin
        Incremental.finish ~extra_roots:(roots ()) h;
        check_complete ()
      end;
      true)

(* --- the SATB barrier, pointwise -------------------------------------- *)

let fresh () = Heap.create ()

(* Drive the in-flight cycle to completion, one tiny step at a time,
   guarding against non-termination. *)
let finish_counted ?(cap = 1_000_000) h ~extra_roots =
  let steps = ref 0 in
  while Incremental.active h do
    incr steps;
    if !steps > cap then Alcotest.fail "incremental cycle does not terminate";
    ignore (Incremental.step ~extra_roots h)
  done;
  !steps

let test_barrier_keeps_overwritten_alive () =
  let h = fresh () in
  h.Heap.config.Heap.pause_budget_words <- 1;
  let a = Heap.alloc h 16 in
  let b = Heap.alloc h 16 in
  write_slot h a 0 b;
  (* snapshot: only [a] is a root; [b] reachable through it *)
  ignore (Incremental.step ~extra_roots:[ a ] h);
  Alcotest.(check bool) "cycle in flight" true (Incremental.active h);
  (* sever the only link mid-cycle: the barrier must gray the old value *)
  write_slot h a 0 0;
  Alcotest.(check bool) "barrier fired" true
    (h.Heap.stats.Heap.barrier_grays >= 1);
  ignore (finish_counted h ~extra_roots:[ a ]);
  Alcotest.(check (option int)) "snapshot object survives its cycle" (Some b)
    (Heap.base_of h b);
  (* the next cycle sees it unreachable and reclaims it *)
  ignore (Incremental.step ~extra_roots:[ a ] h);
  ignore (finish_counted h ~extra_roots:[ a ]);
  Alcotest.(check (option int)) "floating garbage dies next cycle" None
    (Heap.base_of h b)

let test_allocate_black () =
  let h = fresh () in
  h.Heap.config.Heap.pause_budget_words <- 1;
  let root = Heap.alloc h 16 in
  ignore (Incremental.step ~extra_roots:[ root ] h);
  (* allocated mid-cycle, never stored anywhere: born black *)
  let tmp = Heap.alloc h 16 in
  ignore (finish_counted h ~extra_roots:[ root ]);
  Alcotest.(check (option int)) "mid-cycle allocation survives" (Some tmp)
    (Heap.base_of h tmp);
  ignore (Incremental.step ~extra_roots:[ root ] h);
  ignore (finish_counted h ~extra_roots:[ root ]);
  Alcotest.(check (option int)) "and dies the following cycle" None
    (Heap.base_of h tmp)

let test_tiny_budget_terminates () =
  let h = fresh () in
  h.Heap.config.Heap.pause_budget_words <- 1;
  let keep = ref [] in
  for i = 0 to 199 do
    let a = Heap.alloc h 24 in
    (* keep two of every three; the rest is garbage for the sweep *)
    if i mod 3 <> 0 then keep := a :: !keep
  done;
  ignore (Incremental.step ~extra_roots:!keep h);
  let steps = finish_counted h ~extra_roots:!keep in
  Alcotest.(check bool) "word-at-a-time cycle really is sliced" true
    (steps > 10);
  List.iter
    (fun a ->
      Alcotest.(check (option int)) "kept object survives" (Some a)
        (Heap.base_of h a))
    !keep;
  Alcotest.(check int) "garbage reclaimed" 67
    h.Heap.stats.Heap.objects_freed;
  Alcotest.(check int) "integrity clean" 0
    (List.length (Heap.check_integrity h))

let test_full_collection_abandons_soundly () =
  let h = fresh () in
  h.Heap.config.Heap.pause_budget_words <- 1;
  let root = Heap.alloc h 16 in
  ignore (Incremental.step ~extra_roots:[ root ] h);
  Alcotest.(check bool) "cycle in flight" true (Incremental.active h);
  (* an emergency/explicit/forced collection lands mid-cycle *)
  ignore (Heap.collect ~extra_roots:[ root ] h);
  Alcotest.(check bool) "cycle abandoned" false (Incremental.active h);
  Alcotest.(check int) "abandon counted" 1
    h.Heap.stats.Heap.abandoned_cycles;
  Alcotest.(check (option int)) "root survives the full collection"
    (Some root) (Heap.base_of h root);
  Alcotest.(check int) "integrity clean" 0
    (List.length (Heap.check_integrity h))

(* --- mode identity over random programs ------------------------------- *)

let digest ?nursery_pages gc_mode ~budget ~schedule src =
  let req =
    Harness.Request.make ~config:Harness.Build.Safe ~gc_mode
      ~gc_pause_budget:budget ?nursery_pages ~schedule ~check_integrity:true
      ~final_collect:true src
  in
  let b =
    Harness.Build.compile
      ~options:(Harness.Request.build_options req)
      Harness.Build.Safe src
  in
  match Harness.Measure.exec req b with
  | Harness.Measure.Ran r ->
      Printf.sprintf "%s|exit=%d|live=%d/%d" r.Harness.Measure.o_output
        r.Harness.Measure.o_exit r.Harness.Measure.o_live_objects
        r.Harness.Measure.o_live_bytes
  | o -> "<" ^ Harness.Measure.describe o ^ ">"

let prop_modes_identical =
  QCheck.Test.make ~count:20
    ~name:
      "random programs: stw == gen == inc under schedule and nursery sweeps"
    QCheck.(pair Testgen.arbitrary_program (int_bound 6))
    (fun (src, nursery_pages) ->
      (* 0 disables the bump nursery, so the sweep also pins the legacy
         shared-page young allocator to the same outputs *)
      List.for_all
        (fun schedule ->
          let base = digest Gcheap.Heap.Stw ~budget:64 ~schedule src in
          digest ~nursery_pages Gcheap.Heap.Gen ~budget:64 ~schedule src
          = base
          && digest ~nursery_pages Gcheap.Heap.Inc ~budget:64 ~schedule src
             = base
          && digest ~nursery_pages Gcheap.Heap.Inc ~budget:7 ~schedule src
             = base)
        [
          Machine.Schedule.Auto;
          Machine.Schedule.Every 3;
          Machine.Schedule.Every 17;
          Machine.Schedule.At_allocs;
        ])

let suite =
  [
    QCheck_alcotest.to_alcotest prop_satb_superset;
    Alcotest.test_case "barrier keeps overwritten value alive" `Quick
      test_barrier_keeps_overwritten_alive;
    Alcotest.test_case "allocation during a cycle is black" `Quick
      test_allocate_black;
    Alcotest.test_case "budget-1 cycle terminates and sweeps" `Quick
      test_tiny_budget_terminates;
    Alcotest.test_case "full collection abandons the cycle" `Quick
      test_full_collection_abandons_soundly;
    QCheck_alcotest.to_alcotest prop_modes_identical;
  ]
