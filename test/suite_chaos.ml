(* Chaos-hardening tests: the allocation-failure injector, the heap's
   OOM policies (including page reclamation by emergency collections),
   the supervised worker pool, and the self-verifying artifact cache. *)

open Gcheap
module Pool = Exec.Pool
module Cache = Exec.Cache

(* --- failpoint plans -------------------------------------------------- *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_failpoint_roundtrip () =
  List.iter
    (fun s ->
      match Failpoint.of_string s with
      | None -> Alcotest.fail ("unparsable: " ^ s)
      | Some p ->
          Alcotest.(check string) s s (Failpoint.to_string p))
    [ "none"; "nth:5"; "every:3"; "at:{3,7,11}" ];
  (match Failpoint.of_string "42" with
  | Some (Failpoint.Nth 42) -> ()
  | _ -> Alcotest.fail "bare ordinal should parse as Nth");
  (match Failpoint.of_string "3,7,11" with
  | Some (Failpoint.At pts) ->
      Alcotest.(check (list int)) "points" [ 3; 7; 11 ]
        (Failpoint.points_to_list pts)
  | _ -> Alcotest.fail "comma list should parse as At");
  Alcotest.(check bool) "garbage rejected" true
    (Failpoint.of_string "nth:x" = None)

let test_failpoint_fires () =
  let nth = Failpoint.Nth 3 in
  Alcotest.(check (list bool)) "nth" [ false; false; true; false ]
    (List.map (Failpoint.fires nth) [ 1; 2; 3; 4 ]);
  let every = Failpoint.Every 2 in
  Alcotest.(check (list bool)) "every" [ false; true; false; true ]
    (List.map (Failpoint.fires every) [ 1; 2; 3; 4 ]);
  let at = Failpoint.at_list [ 2; 5 ] in
  Alcotest.(check (list bool)) "at" [ false; true; false; false; true ]
    (List.map (Failpoint.fires at) [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check bool) "never" false (Failpoint.fires Failpoint.Never 1)

(* --- the heap under a hard ceiling ------------------------------------ *)

(* The collect-expand policy must be strictly stronger than trap even
   when the blocker is a *large* allocation: the small garbage below
   fills the arena, and only an emergency collection that retires the
   drained small blocks and recycles their pages (the reclaim pool) can
   find 65 contiguous pages for the closing request. *)
let churn_then_large policy =
  let config =
    { (Heap.default_config ()) with
      Heap.heap_limit_words = 40_000 (* 320_000 bytes, 78 pages *);
      oom_policy = policy;
    }
  in
  let h = Heap.create ~config () in
  (* ~70 pages of unreferenced small garbage *)
  for _ = 1 to 4480 do
    ignore (Heap.alloc h 60)
  done;
  let a = Heap.alloc h 260_000 in
  (h, a)

let test_collect_expand_rescues_large_alloc () =
  let h, a = churn_then_large Heap.Collect_expand in
  Alcotest.(check bool) "allocated" true (a >= 0);
  Alcotest.(check bool) "needed emergency collection" true
    (h.Heap.stats.Heap.emergency_collections > 0);
  Alcotest.(check int) "heap still sound" 0
    (List.length (Heap.check_integrity h))

let test_trap_policy_traps () =
  match churn_then_large Heap.Trap with
  | exception Heap.Heap_exhausted _ -> ()
  | _ -> Alcotest.fail "trap policy should raise Heap_exhausted"

let test_injected_failure_trap_vs_recover () =
  (* under trap, a fired point is a structured stop *)
  let trap () =
    let config =
      { (Heap.default_config ()) with Heap.oom_policy = Heap.Trap }
    in
    let h = Heap.create ~config () in
    h.Heap.failpoints <- Failpoint.Nth 3;
    ignore (Heap.alloc h 16);
    ignore (Heap.alloc h 16);
    ignore (Heap.alloc h 16)
  in
  (match trap () with
  | exception Heap.Heap_exhausted m ->
      Alcotest.(check bool) "names the ordinal" true
        (contains m "allocation #3")
  | _ -> Alcotest.fail "trap policy should raise on the injected point");
  (* under collect-expand, the same point is an emergency collection *)
  let h = Heap.create () in
  h.Heap.failpoints <- Failpoint.Nth 3;
  for _ = 1 to 5 do
    ignore (Heap.alloc h 16)
  done;
  Alcotest.(check int) "one injection" 1 h.Heap.stats.Heap.injected_failures;
  Alcotest.(check int) "one emergency" 1
    h.Heap.stats.Heap.emergency_collections

let test_reclaim_pool_unused_without_pressure () =
  (* chaos-off identity depends on the reclaim pool never engaging on
     the default path *)
  let h = Heap.create () in
  for _ = 1 to 2000 do
    ignore (Heap.alloc h 100)
  done;
  ignore (Heap.collect h);
  for _ = 1 to 2000 do
    ignore (Heap.alloc h 5000)
  done;
  Alcotest.(check (list (pair int int))) "pool empty" [] h.Heap.free_pages;
  Alcotest.(check int) "no emergencies" 0
    h.Heap.stats.Heap.emergency_collections

(* --- measured runs: exhaustive allocation-failure exploration --------- *)

let build_example (t : Stress.Corpus.target) =
  Harness.Build.compile Harness.Build.Safe t.Stress.Corpus.t_source

let run_info = function
  | Harness.Measure.Ran r -> r
  | o -> Alcotest.fail ("reference run failed: " ^ Harness.Measure.describe o)

(* Every safe example, under a tight ceiling and the collect-expand
   policy, must survive an injected failure at EVERY allocation ordinal
   with output identical to the fault-free reference.  This is the
   issue's recovery criterion, exhaustively. *)
let test_exhaustive_alloc_failures () =
  List.iter
    (fun (t : Stress.Corpus.target) ->
      let b = build_example t in
      let name = t.Stress.Corpus.t_name in
      let req = Harness.Request.make ~check_integrity:true t.Stress.Corpus.t_source in
      let reference = run_info (Harness.Measure.exec req b) in
      let allocs = reference.Harness.Measure.o_allocs in
      Alcotest.(check bool) (name ^ " allocates") true (allocs > 0);
      for k = 1 to allocs do
        match
          Harness.Measure.exec
            {
              req with
              Harness.Request.heap_limit = 60_000;
              Harness.Request.oom_policy = Heap.Collect_expand;
              Harness.Request.alloc_failpoints = Failpoint.Nth k;
            }
            b
        with
        | Harness.Measure.Ran r ->
            Alcotest.(check string)
              (Printf.sprintf "%s ordinal %d output" name k)
              reference.Harness.Measure.o_output r.Harness.Measure.o_output;
            Alcotest.(check int)
              (Printf.sprintf "%s ordinal %d fired" name k)
              1 r.Harness.Measure.o_injected_failures
        | o ->
            Alcotest.fail
              (Printf.sprintf "%s ordinal %d: %s" name k
                 (Harness.Measure.describe o))
      done)
    Stress.Corpus.examples

let test_measured_trap_is_structured () =
  let t = List.hd Stress.Corpus.examples in
  let b = build_example t in
  match
    Harness.Measure.exec
      (Harness.Request.make ~oom_policy:Heap.Trap
         ~alloc_failpoints:(Failpoint.Nth 1) t.Stress.Corpus.t_source)
      b
  with
  | Harness.Measure.Exhausted _ as o ->
      let outcome, _ = Harness.Diagnostics.of_measure o in
      Alcotest.(check int) "exit code 6" 6
        (Harness.Diagnostics.exit_code outcome)
  | o -> Alcotest.fail ("expected Exhausted, got " ^ Harness.Measure.describe o)

(* --- supervised pool -------------------------------------------------- *)

let qcheck_to_alcotest = QCheck_alcotest.to_alcotest

let backoff_deterministic =
  QCheck.Test.make ~name:"backoff deterministic and positive" ~count:200
    QCheck.(triple small_int (int_range 1 8) (int_range 1 64))
    (fun (seed, attempt, base) ->
      let a = Pool.backoff_ticks ~seed ~attempt ~base in
      let b = Pool.backoff_ticks ~seed ~attempt ~base in
      a = b && a >= 0)

let supervision_identity =
  QCheck.Test.make
    ~name:"map_supervised with no faults is map (attempts=1, zero stats)"
    ~count:50
    QCheck.(small_list small_int)
    (fun xs ->
      let f _ctx x = (2 * x) + 1 in
      let outcomes, stats = Pool.map_supervised Pool.serial f xs in
      let values =
        List.map
          (function
            | Pool.Done { value; attempts } when attempts = 1 -> value
            | _ -> -1)
          outcomes
      in
      values = List.map (fun x -> (2 * x) + 1) xs
      && stats.Pool.sup_retries = 0
      && stats.Pool.sup_restarts = 0
      && stats.Pool.sup_quarantined = 0)

let test_transient_retry () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let outcomes, stats =
        Pool.map_supervised pool
          (fun ctx x ->
            if ctx.Pool.attempt < 2 then Pool.(raise (Transient "flaky"));
            x * 10)
          [ 1; 2; 3 ]
      in
      List.iter
        (function
          | Pool.Done { attempts; _ } ->
              Alcotest.(check int) "second attempt" 2 attempts
          | Pool.Quarantined { reason; _ } -> Alcotest.fail reason)
        outcomes;
      Alcotest.(check int) "retries" 3 stats.Pool.sup_retries;
      Alcotest.(check bool) "backoff charged" true
        (stats.Pool.sup_backoff_ticks > 0))

let test_crash_restarts_worker () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let outcomes, stats =
        Pool.map_supervised pool
          (fun ctx x ->
            if x = 2 && ctx.Pool.attempt = 1 then
              Pool.(raise (Crash "injected"));
            x)
          [ 1; 2; 3 ]
      in
      (match outcomes with
      | [ Pool.Done { value = 1; _ }; Pool.Done { value = 2; attempts = 2 };
          Pool.Done { value = 3; _ } ] ->
          ()
      | _ -> Alcotest.fail "crashed task should be re-run to completion");
      Alcotest.(check int) "one worker replaced" 1 stats.Pool.sup_restarts)

let test_quarantine_after_cap () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let outcomes, stats =
        Pool.map_supervised pool
          ~policy:{ Pool.default_policy with Pool.max_attempts = 2 }
          (fun _ctx x ->
            if x = 7 then Pool.(raise (Crash "always"));
            x)
          [ 7; 8 ]
      in
      (match outcomes with
      | [ Pool.Quarantined { attempts = 2; _ }; Pool.Done { value = 8; _ } ]
        ->
          ()
      | _ -> Alcotest.fail "persistent crasher should be quarantined");
      Alcotest.(check int) "counted" 1 stats.Pool.sup_quarantined;
      (* the quarantine maps to its own exit code *)
      match Harness.Diagnostics.of_exn (Pool.Crash "x") with
      | Some (o, _) ->
          Alcotest.(check int) "exit code 7" 7
            (Harness.Diagnostics.exit_code o)
      | None -> Alcotest.fail "Crash should classify")

let test_deadline_enforced () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let outcomes, _ =
        Pool.map_supervised pool
          ~policy:
            { Pool.default_policy with
              Pool.deadline = Some 5;
              max_attempts = 2;
            }
          (fun ctx x ->
            if x = 1 then
              for _ = 1 to 100 do
                ctx.Pool.tick ()
              done;
            x)
          [ 1; 2 ]
      in
      match outcomes with
      | [ Pool.Quarantined { reason; _ }; Pool.Done { value = 2; _ } ] ->
          Alcotest.(check bool) "reason names the deadline" true
            (contains reason "deadline")
      | _ -> Alcotest.fail "over-budget task should be quarantined")

let test_supervised_serial_parallel_identical () =
  let scenario pool =
    Pool.map_supervised pool
      ~policy:{ Pool.default_policy with Pool.max_attempts = 3 }
      (fun ctx x ->
        if x mod 3 = 0 && ctx.Pool.attempt = 1 then
          Pool.(raise (Transient "t"));
        if x mod 5 = 0 then Pool.(raise (Crash "c"));
        x * x)
      [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
  in
  let serial_outcomes, serial_stats = scenario Pool.serial in
  Pool.with_pool ~jobs:4 (fun pool ->
      let par_outcomes, par_stats = scenario pool in
      Alcotest.(check bool) "outcomes identical" true
        (serial_outcomes = par_outcomes);
      Alcotest.(check bool) "stats identical" true (serial_stats = par_stats))

(* --- artifact cache under faults -------------------------------------- *)

let test_builder_raises_concurrently () =
  (* regression: a raising builder must release the in-flight slot so
     concurrent waiters fail over to building instead of deadlocking *)
  let cache = Cache.create () in
  let first = Atomic.make true in
  let build () =
    if Atomic.exchange first false then failwith "transient build failure";
    "artifact"
  in
  let results =
    Pool.with_pool ~jobs:4 (fun pool ->
        Pool.map pool
          (fun _ ->
            match Cache.find_or_build cache "key" build with
            | v -> Ok v
            | exception Failure m -> Error m)
          [ 1; 2; 3; 4; 5; 6 ])
  in
  let ok = List.filter_map (function Ok v -> Some v | Error _ -> None) results in
  Alcotest.(check bool) "someone succeeded" true (ok <> []);
  List.iter (fun v -> Alcotest.(check string) "artifact" "artifact" v) ok;
  Alcotest.(check string) "cache settled" "artifact"
    (Cache.find_or_build cache "key" (fun () -> Alcotest.fail "rebuilt"))

let test_cache_detects_corruption () =
  let cache = Cache.create ~fingerprint:(fun v -> string_of_int (Hashtbl.hash v)) () in
  let builds = ref 0 in
  let build () = incr builds; "good" in
  ignore (Cache.find_or_build cache "k" build);
  Alcotest.(check bool) "rotted" true (Cache.corrupt cache "k" (fun _ -> "rot"));
  let v = Cache.find_or_build cache "k" build in
  Alcotest.(check string) "rebuilt, never served rot" "good" v;
  let s = Cache.stats cache in
  Alcotest.(check int) "corruption counted" 1 s.Cache.corruptions;
  Alcotest.(check int) "rebuilt once" 2 !builds

let test_corrupt_cached_build () =
  let t = List.hd Stress.Corpus.examples in
  let src = t.Stress.Corpus.t_source in
  let before = build_example t in
  Alcotest.(check bool) "artifact rotted" true
    (Harness.Build.corrupt_cached Harness.Build.Safe src);
  let after = Harness.Build.compile Harness.Build.Safe src in
  let req = Harness.Request.make src in
  Alcotest.(check bool) "rebuilt artifact runs identically" true
    (Harness.Measure.output (Harness.Measure.exec req before)
    = Harness.Measure.output (Harness.Measure.exec req after))

let suite =
  [
    Alcotest.test_case "failpoint round-trip" `Quick test_failpoint_roundtrip;
    Alcotest.test_case "failpoint fires" `Quick test_failpoint_fires;
    Alcotest.test_case "collect-expand rescues large alloc" `Quick
      test_collect_expand_rescues_large_alloc;
    Alcotest.test_case "trap policy traps" `Quick test_trap_policy_traps;
    Alcotest.test_case "injected failure: trap vs recover" `Quick
      test_injected_failure_trap_vs_recover;
    Alcotest.test_case "reclaim pool idle without pressure" `Quick
      test_reclaim_pool_unused_without_pressure;
    Alcotest.test_case "exhaustive alloc-failure exploration" `Slow
      test_exhaustive_alloc_failures;
    Alcotest.test_case "trapped injection is structured" `Quick
      test_measured_trap_is_structured;
    qcheck_to_alcotest backoff_deterministic;
    qcheck_to_alcotest supervision_identity;
    Alcotest.test_case "transient retry" `Quick test_transient_retry;
    Alcotest.test_case "crash restarts worker" `Quick
      test_crash_restarts_worker;
    Alcotest.test_case "quarantine after attempt cap" `Quick
      test_quarantine_after_cap;
    Alcotest.test_case "deadline enforced" `Quick test_deadline_enforced;
    Alcotest.test_case "supervised serial == parallel" `Quick
      test_supervised_serial_parallel_identical;
    Alcotest.test_case "builder raises under concurrency" `Quick
      test_builder_raises_concurrently;
    Alcotest.test_case "cache detects corruption" `Quick
      test_cache_detects_corruption;
    Alcotest.test_case "corrupt_cached forces a faithful rebuild" `Quick
      test_corrupt_cached_build;
  ]
