(* CFG simplification and induction-variable strength reduction tests. *)

open Ir.Instr

let mk_blocks blocks nreg =
  {
    fn_name = "t";
    fn_params = [];
    fn_ret_void = false;
    fn_blocks =
      List.map
        (fun (label, instrs, term) ->
          { b_label = label; b_instrs = instrs; b_term = term })
        blocks;
    fn_nreg = nreg;
    fn_frame = 0;
  }

(* --- simplify_cfg -------------------------------------------------------- *)

let test_forwarding () =
  (* empty block chains collapse: 0 -> 1 -> 2 -> ret *)
  let f =
    mk_blocks
      [
        (0, [ Mov (1, Imm 5) ], Jmp 1);
        (1, [], Jmp 2);
        (2, [], Jmp 3);
        (3, [ Mov (2, Reg 1) ], Ret (Some (Reg 2)));
      ]
      8
  in
  Opt.Simplify_cfg.run f;
  Alcotest.(check int) "collapsed to one block" 1 (List.length f.fn_blocks);
  match (List.hd f.fn_blocks).b_term with
  | Ret _ -> ()
  | _ -> Alcotest.fail "entry should end in ret"

let test_br_same_target () =
  let f =
    mk_blocks
      [ (0, [], Br (Reg 1, 1, 1)); (1, [], Ret None) ]
      8
  in
  Opt.Simplify_cfg.run f;
  (match (List.hd f.fn_blocks).b_term with
  | Ret None -> () (* both merged away *)
  | Jmp 1 -> ()
  | t -> Alcotest.failf "unexpected terminator %s" (Format.asprintf "%a" pp_term t))

let test_loop_not_destroyed () =
  (* a two-block loop must survive simplification *)
  let f =
    mk_blocks
      [
        (0, [ Mov (1, Imm 0) ], Jmp 1);
        (1, [ Rel (Lt, 2, Reg 1, Imm 10) ], Br (Reg 2, 2, 3));
        (2, [ Bin (Add, 1, Reg 1, Imm 1) ], Jmp 1);
        (3, [], Ret (Some (Reg 1)));
      ]
      8
  in
  Opt.Simplify_cfg.run f;
  Alcotest.(check bool) "loop blocks remain" true (List.length f.fn_blocks >= 3)

let test_unreachable_dropped () =
  let f =
    mk_blocks
      [ (0, [], Ret None); (7, [ Mov (1, Imm 1) ], Ret None) ]
      8
  in
  Opt.Simplify_cfg.run f;
  Alcotest.(check int) "dead block dropped" 1 (List.length f.fn_blocks)

(* --- induction ------------------------------------------------------------ *)

let array_sum_ir () =
  let src =
    {|long sum(long *a, long n) {
  long acc = 0; long i;
  for (i = 0; i < n; i++) acc += a[i];
  return acc;
}
int main(void) {
  long *a = (long *)malloc(64 * sizeof(long));
  long i;
  for (i = 0; i < 64; i++) a[i] = i;
  printf("%ld\n", sum(a, 64));
  return 0;
}|}
  in
  Util.compile src

let count_instr pred (f : func) =
  List.fold_left
    (fun acc b -> acc + List.length (List.filter pred b.b_instrs))
    0 f.fn_blocks

let test_mul_removed () =
  let irp = array_sum_ir () in
  let sum = List.find (fun f -> f.fn_name = "sum") irp.p_funcs in
  Alcotest.(check int) "no multiply left in sum's loop" 0
    (count_instr (function Bin (Mul, _, _, _) -> true | _ -> false) sum)

let test_semantics_kept () =
  let irp = array_sum_ir () in
  let r = Machine.Vm.run irp in
  Alcotest.(check string) "result" "2016\n" r.Machine.Vm.r_output

let test_improves_cycles () =
  let src =
    {|long sum(long *a, long n) {
  long acc = 0; long i;
  for (i = 0; i < n; i++) acc += a[i];
  return acc;
}
int main(void) {
  long *a = (long *)malloc(512 * sizeof(long));
  long i; long acc = 0;
  for (i = 0; i < 512; i++) a[i] = i;
  for (i = 0; i < 20; i++) acc += sum(a, 512);
  printf("%ld\n", acc);
  return 0;
}|}
  in
  (* compare against a pipeline without the induction pass by compiling in
     debug-opt hybrid: easiest controlled comparison is -O vs -O with the
     loop shape broken by an extra use of i*8 elsewhere; instead just check
     the pass fired and the program is faster than the -g build by a wide
     margin *)
  let opt = Util.compile src in
  let sum = List.find (fun f -> f.fn_name = "sum") opt.p_funcs in
  Alcotest.(check int) "mul eliminated" 0
    (count_instr (function Bin (Mul, _, _, _) -> true | _ -> false) sum);
  let r = Machine.Vm.run opt in
  Alcotest.(check string) "output" (string_of_int (20 * (511 * 512 / 2)) ^ "\n")
    r.Machine.Vm.r_output

let test_not_applied_when_base_changes () =
  (* the array base is reassigned inside the loop: must not rewrite *)
  let src =
    {|long jump(long *a, long *b, long n) {
  long acc = 0; long i;
  for (i = 0; i < n; i++) {
    acc += a[i];
    a = acc % 2 ? a : b;
  }
  return acc;
}
int main(void) {
  long x[4]; long y[4];
  long i;
  for (i = 0; i < 4; i++) { x[i] = i; y[i] = 10 * i; }
  printf("%ld\n", jump(x, y, 4));
  return 0;
}|}
  in
  let irp = Util.compile src in
  let r = Machine.Vm.run irp in
  (* semantics are what matters; compute the expected value directly *)
  let a = [| 0; 1; 2; 3 |] and b = [| 0; 10; 20; 30 |] in
  let acc = ref 0 and cur = ref a in
  for i = 0 to 3 do
    acc := !acc + !cur.(i);
    cur := if !acc mod 2 = 1 then !cur else b
  done;
  Alcotest.(check string) "output" (string_of_int !acc ^ "\n")
    r.Machine.Vm.r_output

let test_annotated_loops_not_matched () =
  (* annotated code loads through Opaque results, so the pattern must not
     fire — and the loop remains GC-safe *)
  let src =
    {|long sum(long *a, long n) {
  long acc = 0; long i;
  for (i = 0; i < n; i++) acc += a[i];
  return acc;
}
int main(void) {
  long *a = (long *)malloc(64 * sizeof(long));
  long i;
  for (i = 0; i < 64; i++) a[i] = i;
  printf("%ld\n", sum(a, 64));
  return 0;
}|}
  in
  let ast = Csyntax.Parser.parse_program src in
  let r = Gcsafe.Annotate.run ~opts:(Gcsafe.Mode.default Gcsafe.Mode.Safe) ast in
  let irp =
    Ir.Compile.compile_program ~mode:Ir.Compile.opt_mode r.Gcsafe.Annotate.program
  in
  ignore (Opt.Pipeline.run_program Opt.Pipeline.default irp);
  let config =
    { (Machine.Vm.default_config ()) with Machine.Vm.vm_gc_schedule = Machine.Schedule.Every 3 }
  in
  let res = Machine.Vm.run ~config irp in
  Alcotest.(check string) "safe under async GC" "2016\n" res.Machine.Vm.r_output

let suite =
  [
    Alcotest.test_case "cfg: jump forwarding" `Quick test_forwarding;
    Alcotest.test_case "cfg: same-target branch" `Quick test_br_same_target;
    Alcotest.test_case "cfg: loops survive" `Quick test_loop_not_destroyed;
    Alcotest.test_case "cfg: unreachable dropped" `Quick
      test_unreachable_dropped;
    Alcotest.test_case "induction: multiply removed" `Quick test_mul_removed;
    Alcotest.test_case "induction: semantics kept" `Quick test_semantics_kept;
    Alcotest.test_case "induction: repeated sums correct" `Quick
      test_improves_cycles;
    Alcotest.test_case "induction: variant base blocks rewrite" `Quick
      test_not_applied_when_base_changes;
    Alcotest.test_case "induction: annotated loops stay safe" `Quick
      test_annotated_loops_not_matched;
  ]
