(* The headline safety experiments, plus differential qcheck properties
   over randomly generated programs. *)

(* --- the paper's introduction, mechanized ------------------------------- *)

let hazard_src =
  {|long f(long i) {
  char *p = (char *)malloc(10);
  p[5] = 42;
  return p[i - 100000];   /* final use: the displacement gets folded into p */
}
int main(void) {
  long v = f(100005);
  printf("v=%ld\n", v);
  return 0;
}|}

let build ?(annotate = false) ?(disguise = true) src =
  let ast = Csyntax.Parser.parse_program src in
  let ast =
    if annotate then
      (Gcsafe.Annotate.run ~opts:(Gcsafe.Mode.default Gcsafe.Mode.Safe) ast)
        .Gcsafe.Annotate.program
    else begin
      ignore (Csyntax.Typecheck.check_program ast);
      ast
    end
  in
  let irp = Ir.Compile.compile_program ~mode:Ir.Compile.opt_mode ast in
  ignore
    (Opt.Pipeline.run_program
       { Opt.Pipeline.default with Opt.Pipeline.disguise_pointers = disguise }
       irp);
  irp

let run_async ?(every = 1) irp =
  let config =
    { (Machine.Vm.default_config ()) with Machine.Vm.vm_gc_schedule = Machine.Schedule.Every every }
  in
  Machine.Vm.run ~config irp

let test_hazard_fires () =
  (* conventional optimizer + asynchronous collection loses the object *)
  let irp = build hazard_src in
  match run_async irp with
  | exception Machine.Vm.Fault m ->
      Alcotest.(check bool) "reported as GC safety violation" true
        (String.length m > 10 && String.sub m 0 2 = "GC")
  | _ -> Alcotest.fail "expected premature collection"

let test_keep_live_cures () =
  let irp = build ~annotate:true hazard_src in
  let r = run_async irp in
  Alcotest.(check string) "correct result" "v=42\n" r.Machine.Vm.r_output

let test_no_disguise_no_hazard () =
  (* without the disguising optimization the unannotated code happens to be
     safe — "such problems are in fact extremely rare" *)
  let irp = build ~disguise:false hazard_src in
  let r = run_async irp in
  Alcotest.(check string) "runs" "v=42\n" r.Machine.Vm.r_output

let test_hazard_needs_async () =
  (* without a collection in the window, the disguised code also works:
     this is why the problem is "essentially never observed in practice" *)
  let irp = build hazard_src in
  let r = Machine.Vm.run irp in
  Alcotest.(check string) "runs without async GC" "v=42\n"
    r.Machine.Vm.r_output

let test_debug_build_is_safe () =
  (* fully debuggable code is GC-safe without annotation *)
  let ast, _ = Csyntax.Typecheck.check_source hazard_src in
  let irp = Ir.Compile.compile_program ~mode:Ir.Compile.debug_mode ast in
  ignore
    (Opt.Pipeline.run_program
       { Opt.Pipeline.default with Opt.Pipeline.optimize = false }
       irp);
  let r = run_async irp in
  Alcotest.(check string) "-g is safe" "v=42\n" r.Machine.Vm.r_output

let test_workloads_safe_under_async_gc () =
  (* annotated workloads survive collections at arbitrary points *)
  List.iter
    (fun (w, every) ->
      let irp = build ~annotate:true w.Workloads.Registry.w_source in
      let r = run_async ~every irp in
      Alcotest.(check bool)
        (w.Workloads.Registry.w_name ^ " completes")
        true
        (String.length r.Machine.Vm.r_output > 0);
      Alcotest.(check bool)
        (w.Workloads.Registry.w_name ^ " collected a lot")
        true (r.Machine.Vm.r_gc_count > 20))
    [
      (Workloads.Registry.cfrac, 2000);
      (Workloads.Registry.gawk, 2000);
      (Workloads.Registry.gs, 2000);
    ]

(* --- differential properties over random programs ----------------------- *)

let digest_of config src =
  match Util.run_built config src with
  | Harness.Measure.Ran r -> r.Harness.Measure.o_output
  | Harness.Measure.Detected m -> "<detected: " ^ m ^ ">"
  | o -> "<" ^ Harness.Measure.describe o ^ ">"

let prop_opt_matches_debug =
  QCheck.Test.make ~count:40 ~name:"random programs: -O == -g"
    Testgen.arbitrary_program
    (fun src ->
      digest_of Harness.Build.Base src = digest_of Harness.Build.Debug src)

let prop_safe_matches_base =
  QCheck.Test.make ~count:40 ~name:"random programs: safe == base"
    Testgen.arbitrary_program
    (fun src ->
      digest_of Harness.Build.Base src = digest_of Harness.Build.Safe src)

let prop_peephole_matches_base =
  QCheck.Test.make ~count:40 ~name:"random programs: safe+peephole == base"
    Testgen.arbitrary_program
    (fun src ->
      digest_of Harness.Build.Base src
      = digest_of Harness.Build.Safe_peephole src)

let prop_checked_accepts_legal =
  QCheck.Test.make ~count:40
    ~name:"random programs: checked mode accepts conforming code"
    Testgen.arbitrary_program
    (fun src ->
      digest_of Harness.Build.Base src
      = digest_of Harness.Build.Debug_checked src)

let prop_safe_survives_async_gc =
  QCheck.Test.make ~count:25
    ~name:"random programs: annotated code is safe under async GC"
    Testgen.arbitrary_program
    (fun src ->
      let base = digest_of Harness.Build.Base src in
      let irp = build ~annotate:true src in
      match run_async ~every:50 irp with
      | r -> r.Machine.Vm.r_output = base
      | exception Machine.Vm.Fault _ -> false)

let build_with_opts opts src =
  let ast = Csyntax.Parser.parse_program src in
  let p = (Gcsafe.Annotate.run ~opts ast).Gcsafe.Annotate.program in
  let irp = Ir.Compile.compile_program ~mode:Ir.Compile.opt_mode p in
  ignore (Opt.Pipeline.run_program Opt.Pipeline.default irp);
  irp

let prop_heapness_matches_base =
  QCheck.Test.make ~count:25
    ~name:"random programs: heapness-annotated == base, safe under async GC"
    Testgen.arbitrary_program
    (fun src ->
      let base = digest_of Harness.Build.Base src in
      let opts =
        { (Gcsafe.Mode.default Gcsafe.Mode.Safe) with
          Gcsafe.Mode.heapness_analysis = true }
      in
      let irp = build_with_opts opts src in
      match run_async ~every:50 irp with
      | r -> r.Machine.Vm.r_output = base
      | exception Machine.Vm.Fault _ -> false)

let prop_calls_only_safe_at_call_sites =
  QCheck.Test.make ~count:25
    ~name:"random programs: calls-only annotation safe under call-site GC"
    Testgen.arbitrary_program
    (fun src ->
      let base = digest_of Harness.Build.Base src in
      let opts =
        { (Gcsafe.Mode.default Gcsafe.Mode.Safe) with
          Gcsafe.Mode.calls_only = true }
      in
      let irp = build_with_opts opts src in
      let config =
        {
          (Machine.Vm.default_config ()) with
          Machine.Vm.vm_gc_schedule = Machine.Schedule.Every 1;
          Machine.Vm.vm_gc_at_calls_only = true;
        }
      in
      match Machine.Vm.run ~config irp with
      | r -> r.Machine.Vm.r_output = base
      | exception Machine.Vm.Fault _ -> false)

let suite =
  [
    Alcotest.test_case "hazard: disguised pointer is collected" `Quick
      test_hazard_fires;
    Alcotest.test_case "hazard: KEEP_LIVE cures it" `Quick
      test_keep_live_cures;
    Alcotest.test_case "hazard: needs the disguising optimization" `Quick
      test_no_disguise_no_hazard;
    Alcotest.test_case "hazard: needs an ill-timed collection" `Quick
      test_hazard_needs_async;
    Alcotest.test_case "debuggable build is safe" `Quick
      test_debug_build_is_safe;
    Alcotest.test_case "annotated workloads survive async GC" `Quick
      test_workloads_safe_under_async_gc;
    QCheck_alcotest.to_alcotest prop_opt_matches_debug;
    QCheck_alcotest.to_alcotest prop_safe_matches_base;
    QCheck_alcotest.to_alcotest prop_peephole_matches_base;
    QCheck_alcotest.to_alcotest prop_checked_accepts_legal;
    QCheck_alcotest.to_alcotest prop_safe_survives_async_gc;
    QCheck_alcotest.to_alcotest prop_heapness_matches_base;
    QCheck_alcotest.to_alcotest prop_calls_only_safe_at_call_sites;
  ]
