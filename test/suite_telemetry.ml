(* Telemetry-subsystem tests: metrics registry snapshot/diff laws, JSON
   roundtrips, Chrome-trace well-formedness and nesting balance, parallel
   trace determinism after lane normalization, heap-profiler drag
   accounting, session-scoped cache counters, and the end-to-end contract
   that instrumentation never perturbs execution. *)

module Json = Telemetry.Json
module Metrics = Telemetry.Metrics
module Trace = Telemetry.Trace
module Profiler = Telemetry.Heap_profiler
module Sink = Telemetry.Sink

(* --- JSON: render/parse roundtrips ------------------------------------- *)

let test_json_roundtrip () =
  let docs =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Str "a \"quoted\" line\nwith \\ and \t tab";
      Json.List [ Json.Int 1; Json.Str "x"; Json.Null ];
      Json.Obj
        [
          ("empty", Json.Obj []);
          ("list", Json.List []);
          ("nested", Json.Obj [ ("k", Json.List [ Json.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun doc ->
      match Json.parse (Json.to_string doc) with
      | Ok back ->
          Alcotest.(check bool)
            (Json.to_string doc) true (Json.equal doc back)
      | Error e -> Alcotest.fail e)
    docs

let test_json_rejects () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated" ]

let test_json_numbers () =
  (match Json.parse "17" with
  | Ok (Json.Int 17) -> ()
  | _ -> Alcotest.fail "17 should parse as Int");
  match Json.parse "1.5" with
  | Ok (Json.Float f) -> Alcotest.(check (float 1e-9)) "float" 1.5 f
  | _ -> Alcotest.fail "1.5 should parse as Float"

(* --- metrics: instruments and snapshot laws ---------------------------- *)

let test_counter_gauge_histogram () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c" in
  Metrics.incr c;
  Metrics.add c 41;
  let g = Metrics.gauge m "g" in
  Metrics.set g 7;
  Metrics.set g 3;
  let h = Metrics.histogram m "h" in
  List.iter (Metrics.observe h) [ 0; 1; 100; 100000 ];
  let s = Metrics.snapshot m in
  (match Metrics.find s "c" with
  | Some (Metrics.Counter 42) -> ()
  | _ -> Alcotest.fail "counter");
  (match Metrics.find s "g" with
  | Some (Metrics.Gauge { last = 3; max = 7 }) -> ()
  | _ -> Alcotest.fail "gauge keeps last and max");
  match Metrics.find s "h" with
  | Some (Metrics.Histogram { count = 4; sum = 100101; _ }) -> ()
  | _ -> Alcotest.fail "histogram count/sum"

let test_registration_idempotent () =
  let m = Metrics.create () in
  let a = Metrics.counter m "same" and b = Metrics.counter m "same" in
  Metrics.incr a;
  Metrics.incr b;
  match Metrics.find (Metrics.snapshot m) "same" with
  | Some (Metrics.Counter 2) -> ()
  | _ -> Alcotest.fail "both handles hit one instrument"

let test_scope_prefixes () =
  let m = Metrics.create () in
  let vm = Metrics.scope m "vm" in
  Metrics.incr (Metrics.counter vm "steps");
  match Metrics.find (Metrics.snapshot m) "vm/steps" with
  | Some (Metrics.Counter 1) -> ()
  | _ -> Alcotest.fail "scoped name lands in the parent registry"

let test_disabled_no_ops () =
  Alcotest.(check bool) "disabled" false (Metrics.is_enabled Metrics.disabled);
  let c = Metrics.counter Metrics.disabled "c" in
  Metrics.add c 5;
  Metrics.observe (Metrics.histogram Metrics.disabled "h") 9;
  Alcotest.(check int)
    "snapshot empty" 0
    (List.length (Metrics.snapshot Metrics.disabled))

(* qcheck: for any interval of operations, [diff (snap after) (snap
   before)] equals a fresh registry that saw only the interval. *)
let ops_gen =
  QCheck.(list (pair (int_range 0 2) small_nat))

let apply_ops m ops =
  List.iter
    (fun (kind, v) ->
      match kind with
      | 0 -> Metrics.add (Metrics.counter m "c") v
      | 1 -> Metrics.set (Metrics.gauge m "g") v
      | _ -> Metrics.observe (Metrics.histogram m "h") v)
    ops

let test_diff_law =
  QCheck.Test.make ~name:"diff snap law" ~count:200
    QCheck.(pair ops_gen ops_gen)
    (fun (before, interval) ->
      let m = Metrics.create () in
      apply_ops m before;
      let s0 = Metrics.snapshot m in
      apply_ops m interval;
      let d = Metrics.diff (Metrics.snapshot m) s0 in
      let fresh = Metrics.create () in
      apply_ops fresh interval;
      let expect = Metrics.snapshot fresh in
      (* counters and histograms subtract exactly; gauges keep the later
         value, so compare them only when the interval set the gauge *)
      let counter_ok =
        match (Metrics.find d "c", Metrics.find expect "c") with
        | Some (Metrics.Counter a), Some (Metrics.Counter b) -> a = b
        | None, None -> true
        | Some (Metrics.Counter a), None -> a = 0
        | _ -> false
      in
      let hist_ok =
        match (Metrics.find d "h", Metrics.find expect "h") with
        | ( Some (Metrics.Histogram { count = c1; sum = s1; _ }),
            Some (Metrics.Histogram { count = c2; sum = s2; _ }) ) ->
            c1 = c2 && s1 = s2
        | None, None -> true
        | Some (Metrics.Histogram { count; sum; _ }), None ->
            count = 0 && sum = 0
        | _ -> false
      in
      counter_ok && hist_ok)

let test_percentile_monotone =
  QCheck.Test.make ~name:"histogram percentiles monotone" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (int_bound 1_000_000))
    (fun vs ->
      let m = Metrics.create () in
      let h = Metrics.histogram m "h" in
      List.iter (Metrics.observe h) vs;
      match Metrics.find (Metrics.snapshot m) "h" with
      | Some (Metrics.Histogram { buckets; max; _ }) ->
          let p50 = Metrics.percentile buckets 0.5
          and p90 = Metrics.percentile buckets 0.9
          and p99 = Metrics.percentile buckets 0.99 in
          (* with <= 50 samples the 99th percentile falls in the max's
             bucket, whose upper edge bounds the true max *)
          p50 <= p90 && p90 <= p99
          && List.fold_left Stdlib.max 0 vs <= p99
          && max = List.fold_left Stdlib.max 0 vs
      | _ -> false)

(* Nearest-rank boundary cases for [Metrics.percentile].  The rounding
   regression: [0.07 *. 100. = 7.0000000000000006] in binary floating
   point, so a bare [ceil] selected the 8th order statistic instead of
   the 7th. *)
let test_percentile_boundaries () =
  let snap_buckets m =
    match Metrics.find (Metrics.snapshot m) "h" with
    | Some (Metrics.Histogram { buckets; _ }) -> buckets
    | _ -> Alcotest.fail "histogram missing from snapshot"
  in
  Alcotest.(check int) "empty buckets" 0 (Metrics.percentile [||] 0.5);
  Alcotest.(check int)
    "all-zero buckets" 0
    (Metrics.percentile [| 0; 0; 0; 0 |] 0.99);
  (* 7 samples in the edge-1 bucket, 93 in the edge-7 bucket: the 7th
     order statistic is still the small value. *)
  let m = Metrics.create () in
  let h = Metrics.histogram m "h" in
  for _ = 1 to 7 do
    Metrics.observe h 1
  done;
  for _ = 1 to 93 do
    Metrics.observe h 5
  done;
  let buckets = snap_buckets m in
  Alcotest.(check int)
    "float overshoot does not skip a rank" 1
    (Metrics.percentile buckets 0.07);
  Alcotest.(check int)
    "rank just past the boundary" 7
    (Metrics.percentile buckets 0.08);
  Alcotest.(check int)
    "p=0 clamps to the first order statistic" 1
    (Metrics.percentile buckets 0.0);
  Alcotest.(check int)
    "p=1 is the maximum occupied bucket edge" 7
    (Metrics.percentile buckets 1.0);
  Alcotest.(check int) "p above 1 clamps" 7 (Metrics.percentile buckets 1.5);
  Alcotest.(check int)
    "negative p clamps" 1
    (Metrics.percentile buckets (-0.25));
  Alcotest.(check int) "NaN clamps low" 1 (Metrics.percentile buckets Float.nan);
  (* single-bucket histogram: every percentile is that bucket's edge *)
  let m1 = Metrics.create () in
  let h1 = Metrics.histogram m1 "h" in
  Metrics.observe h1 6;
  let b1 = snap_buckets m1 in
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "single bucket at p=%g" p)
        7 (Metrics.percentile b1 p))
    [ 0.0; 0.01; 0.5; 0.99; 1.0 ]

(* upper edge of the power-of-two bucket holding [v], mirroring the
   histogram's bucketing *)
let bucket_edge v =
  if v <= 0 then 0
  else begin
    let i = ref 1 in
    while v > (1 lsl !i) - 1 do
      incr i
    done;
    (1 lsl !i) - 1
  end

let test_percentile_nearest_rank =
  QCheck.Test.make ~name:"percentile is the nearest-rank statistic" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 60) (int_bound 100_000))
        (int_bound 10_000))
    (fun (vs, kseed) ->
      let n = List.length vs in
      let k = 1 + (kseed mod n) in
      let m = Metrics.create () in
      let h = Metrics.histogram m "h" in
      List.iter (Metrics.observe h) vs;
      match Metrics.find (Metrics.snapshot m) "h" with
      | Some (Metrics.Histogram { buckets; _ }) ->
          let kth = List.nth (List.sort compare vs) (k - 1) in
          Metrics.percentile buckets (float_of_int k /. float_of_int n)
          = bucket_edge kth
      | _ -> false)

(* --- trace: well-formedness and the checker ---------------------------- *)

let test_trace_valid () =
  let tr = Trace.create () in
  Trace.with_span tr "outer" (fun () ->
      Trace.instant tr ~args:[ ("k", Json.Int 1) ] "tick";
      Trace.with_span tr "inner" (fun () -> ());
      Trace.counter tr "heap" [ ("live", 128) ]);
  match Trace.check (Trace.to_json tr) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_trace_span_closed_on_raise () =
  let tr = Trace.create () in
  (try Trace.with_span tr "doomed" (fun () -> failwith "boom") with
  | Failure _ -> ());
  match Trace.check (Trace.to_json tr) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("span leaked on raise: " ^ e)

let test_checker_rejects () =
  let bad =
    [
      ("not an object", Json.List []);
      ("missing traceEvents", Json.Obj [ ("x", Json.Int 1) ]);
      ( "bad phase",
        Json.Obj
          [
            ( "traceEvents",
              Json.List
                [
                  Json.Obj
                    [
                      ("name", Json.Str "e");
                      ("ph", Json.Str "Z");
                      ("ts", Json.Int 0);
                      ("pid", Json.Int 1);
                      ("tid", Json.Int 0);
                    ];
                ] );
          ] );
      ( "unbalanced span",
        Json.Obj
          [
            ( "traceEvents",
              Json.List
                [
                  Json.Obj
                    [
                      ("name", Json.Str "open");
                      ("ph", Json.Str "B");
                      ("ts", Json.Int 0);
                      ("pid", Json.Int 1);
                      ("tid", Json.Int 0);
                    ];
                ] );
          ] );
      ( "mismatched nesting",
        Json.Obj
          [
            ( "traceEvents",
              Json.List
                [
                  Json.Obj
                    [
                      ("name", Json.Str "a");
                      ("ph", Json.Str "B");
                      ("ts", Json.Int 0);
                      ("pid", Json.Int 1);
                      ("tid", Json.Int 0);
                    ];
                  Json.Obj
                    [
                      ("name", Json.Str "b");
                      ("ph", Json.Str "E");
                      ("ts", Json.Int 1);
                      ("pid", Json.Int 1);
                      ("tid", Json.Int 0);
                    ];
                ] );
          ] );
    ]
  in
  List.iter
    (fun (what, doc) ->
      match Trace.check doc with
      | Ok () -> Alcotest.fail ("accepted: " ^ what)
      | Error _ -> ())
    bad

let test_parallel_trace_deterministic () =
  (* same parallel workload traced twice: after normalization (zeroed
     timestamps and lane ids, events sorted) the lists are equal even
     though wall-clock interleaving and task-to-worker assignment
     differ between runs *)
  let traced () =
    let tr = Trace.create () in
    Exec.Pool.with_pool ~jobs:4 (fun pool ->
        ignore
          (Exec.Pool.map pool
             (fun i ->
               Trace.with_span tr
                 ~args:[ ("task", Json.Int i) ]
                 (Printf.sprintf "task-%d" i)
                 (fun () -> Trace.instant tr "work");
               i)
             (List.init 12 Fun.id)));
    Trace.normalize (Trace.events tr)
  in
  let a = traced () and b = traced () in
  Alcotest.(check int) "same event count" (List.length a) (List.length b);
  Alcotest.(check bool) "normalized traces equal" true (a = b)

(* --- heap profiler: drag accounting ------------------------------------ *)

let test_profiler_drag () =
  let p = Profiler.create () in
  Profiler.set_tick p 0;
  Profiler.on_alloc p ~site:"f:malloc#0" ~addr:100 ~bytes:16;
  Profiler.on_alloc p ~site:"f:malloc#0" ~addr:200 ~bytes:16;
  Profiler.set_tick p 10;
  Profiler.on_use p ~addr:100;
  Profiler.on_use p ~addr:200;
  (* object 100 reclaimed promptly; 200 drags for 90 ticks *)
  Profiler.set_tick p 12;
  Profiler.on_free p ~addr:100;
  Profiler.set_tick p 100;
  Profiler.on_free p ~addr:200;
  let r = Profiler.report p in
  Alcotest.(check int) "one site" 1 (List.length r.Profiler.r_sites);
  let s = List.hd r.Profiler.r_sites in
  Alcotest.(check int) "allocs" 2 s.Profiler.s_allocs;
  Alcotest.(check int) "bytes" 32 s.Profiler.s_bytes;
  Alcotest.(check int) "peak live" 32 s.Profiler.s_peak_live;
  Alcotest.(check int) "nothing live at exit" 0 s.Profiler.s_live_at_exit;
  Alcotest.(check int) "total drag" 92 r.Profiler.r_total_drag;
  Alcotest.(check int) "site drag" 92 s.Profiler.s_drag_sum

let test_profiler_drag_monotone () =
  (* the longer reclamation lags behind last use, the larger the drag *)
  let drag_when_freed_at tick =
    let p = Profiler.create () in
    Profiler.set_tick p 0;
    Profiler.on_alloc p ~site:"f:malloc#0" ~addr:64 ~bytes:8;
    Profiler.set_tick p 5;
    Profiler.on_use p ~addr:64;
    Profiler.set_tick p tick;
    Profiler.on_free p ~addr:64;
    (Profiler.report p).Profiler.r_total_drag
  in
  let drags = List.map drag_when_freed_at [ 5; 6; 50; 500; 5000 ] in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "drag nondecreasing in free time" true
    (nondecreasing drags);
  Alcotest.(check int) "freed at last use: zero drag" 0 (List.hd drags)

let test_profiler_live_at_exit () =
  let p = Profiler.create () in
  Profiler.set_tick p 0;
  Profiler.on_alloc p ~site:"g:malloc#0" ~addr:32 ~bytes:24;
  Profiler.set_tick p 40;
  let r = Profiler.report p in
  let s = List.hd r.Profiler.r_sites in
  Alcotest.(check int) "live at exit" 24 s.Profiler.s_live_at_exit;
  Alcotest.(check int) "drag up to exit" 40 s.Profiler.s_drag_sum

let test_site_fn () =
  Alcotest.(check string) "fn part" "cord_cat"
    (Profiler.site_fn "cord_cat:malloc#1");
  Alcotest.(check string) "no colon" "main" (Profiler.site_fn "main")

(* --- cache sessions ----------------------------------------------------- *)

let test_build_sessions_scope () =
  let src = "int main(void) { return 7; }" in
  (* prime the process-wide cache *)
  ignore (Harness.Build.compile Harness.Build.Base src);
  let session = Harness.Build.new_session () in
  ignore (Harness.Build.compile Harness.Build.Base src);
  let s = Harness.Build.session_stats session in
  Alcotest.(check int) "session saw one hit" 1 s.Exec.Cache.hits;
  Alcotest.(check int) "session saw no miss" 0 s.Exec.Cache.misses

let test_compile_telemetry_counters () =
  let src = "int main(void) { return 9; }" in
  let sink = Sink.make () in
  ignore (Harness.Build.compile ~telemetry:sink Harness.Build.Base src);
  ignore (Harness.Build.compile ~telemetry:sink Harness.Build.Base src);
  let snap = Metrics.snapshot sink.Sink.metrics in
  (match Metrics.find snap "build/cache/misses" with
  | Some (Metrics.Counter 1) -> ()
  | _ -> Alcotest.fail "first compile is this sink's miss");
  match Metrics.find snap "build/cache/hits" with
  | Some (Metrics.Counter 1) -> ()
  | _ -> Alcotest.fail "second compile is this sink's hit"

(* --- end to end: instrumented runs -------------------------------------- *)

let loopy_src =
  {|int main(void) {
  int i; char *p;
  for (i = 0; i < 40; i++) {
    p = (char *)malloc(16 + i);
    p[0] = (char)i;
  }
  printf("%d\n", 40);
  return 0;
}|}

let test_traced_run_valid_and_unperturbed () =
  let b = Harness.Build.compile Harness.Build.Safe loopy_src in
  let req = Harness.Request.make ~gc_threshold:128 loopy_src in
  let plain =
    match Harness.Measure.exec req b with
    | Harness.Measure.Ran r -> r
    | o -> Alcotest.fail (Harness.Measure.describe o)
  in
  let tr = Trace.create () in
  let profiler = Profiler.create () in
  let sink = Sink.make ~trace:tr ~profiler () in
  let traced =
    match Harness.Measure.exec ~telemetry:sink req b with
    | Harness.Measure.Ran r -> r
    | o -> Alcotest.fail (Harness.Measure.describe o)
  in
  Alcotest.(check int)
    "cycles identical with telemetry" plain.Harness.Measure.o_cycles
    traced.Harness.Measure.o_cycles;
  Alcotest.(check string)
    "output identical" plain.Harness.Measure.o_output
    traced.Harness.Measure.o_output;
  (match Trace.check (Trace.to_json tr) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("trace invalid: " ^ e));
  let snap = Metrics.snapshot sink.Sink.metrics in
  (match Metrics.find snap "vm/steps" with
  | Some (Metrics.Counter n) when n > 0 -> ()
  | _ -> Alcotest.fail "vm/steps counted");
  (match Metrics.find snap "vm/gc/collections" with
  | Some (Metrics.Counter n) ->
      Alcotest.(check int) "collections counter matches run info"
        traced.Harness.Measure.o_gc_count n
  | _ -> Alcotest.fail "vm/gc/collections missing");
  let report = Profiler.report profiler in
  Alcotest.(check int) "every allocation attributed" 40
    report.Profiler.r_total_allocs;
  match report.Profiler.r_sites with
  | [ s ] ->
      Alcotest.(check string) "stable site id" "main:malloc#0"
        s.Profiler.s_site
  | l -> Alcotest.fail (Printf.sprintf "expected 1 site, got %d" (List.length l))

let test_site_ids_stable_across_analyses () =
  let sites analysis =
    let b =
      Harness.Build.compile
        ~options:{ Harness.Build.default with Harness.Build.analysis }
        Harness.Build.Safe loopy_src
    in
    let profiler = Profiler.create () in
    let sink = Sink.make ~profiler () in
    (match
       Harness.Measure.exec ~telemetry:sink
         (Harness.Request.make ~gc_threshold:128 loopy_src)
         b
     with
    | Harness.Measure.Ran _ -> ()
    | o -> Alcotest.fail (Harness.Measure.describe o));
    List.map
      (fun s -> s.Profiler.s_site)
      (Profiler.report profiler).Profiler.r_sites
    |> List.sort compare
  in
  Alcotest.(check (list string))
    "site ids join across analysis variants"
    (sites Gcsafe.Mode.A_none) (sites Gcsafe.Mode.A_flow)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json rejects" `Quick test_json_rejects;
    Alcotest.test_case "json numbers" `Quick test_json_numbers;
    Alcotest.test_case "counter/gauge/histogram" `Quick
      test_counter_gauge_histogram;
    Alcotest.test_case "registration idempotent" `Quick
      test_registration_idempotent;
    Alcotest.test_case "scope prefixes" `Quick test_scope_prefixes;
    Alcotest.test_case "disabled registry no-ops" `Quick test_disabled_no_ops;
    Alcotest.test_case "trace valid" `Quick test_trace_valid;
    Alcotest.test_case "span closed on raise" `Quick
      test_trace_span_closed_on_raise;
    Alcotest.test_case "checker rejects" `Quick test_checker_rejects;
    Alcotest.test_case "parallel trace deterministic" `Quick
      test_parallel_trace_deterministic;
    Alcotest.test_case "profiler drag" `Quick test_profiler_drag;
    Alcotest.test_case "drag monotone" `Quick test_profiler_drag_monotone;
    Alcotest.test_case "live at exit" `Quick test_profiler_live_at_exit;
    Alcotest.test_case "site_fn" `Quick test_site_fn;
    Alcotest.test_case "build sessions scope" `Quick test_build_sessions_scope;
    Alcotest.test_case "compile telemetry counters" `Quick
      test_compile_telemetry_counters;
    Alcotest.test_case "traced run valid and unperturbed" `Quick
      test_traced_run_valid_and_unperturbed;
    Alcotest.test_case "site ids stable across analyses" `Quick
      test_site_ids_stable_across_analyses;
    Alcotest.test_case "percentile boundaries" `Quick
      test_percentile_boundaries;
  ]
  @ qsuite
      [ test_diff_law; test_percentile_monotone; test_percentile_nearest_rank ]
