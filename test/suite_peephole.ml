(* Peephole postprocessor tests: the three paper patterns, their safety
   constraints, and end-to-end effect on annotated code. *)

open Ir.Instr

let mk_func instrs term =
  {
    fn_name = "t";
    fn_params = [];
    fn_ret_void = false;
    fn_blocks = [ { b_label = 0; b_instrs = instrs; b_term = term } ];
    fn_nreg = 32;
    fn_frame = 0;
  }

let run_one f =
  let stats = Peephole.Postprocess.fresh_stats () in
  Peephole.Postprocess.run_func stats f;
  (stats, (List.hd f.fn_blocks).b_instrs)

(* pattern 1: add x,y,z ; ld [z] ==> ld [x+y] *)
let test_fuse_load () =
  let f =
    mk_func
      [
        Bin (Add, 3, Reg 1, Reg 2);
        KeepLive (Reg 1);
        Load (W8, 4, Reg 3, Imm 0);
      ]
      (Ret (Some (Reg 4)))
  in
  let stats, is = run_one f in
  Alcotest.(check int) "fused" 1 stats.Peephole.Postprocess.ph_fused_loads;
  match is with
  | [ KeepLive (Reg 1); Load (W8, 4, Reg 1, Reg 2) ] -> ()
  | _ ->
      Alcotest.failf "unexpected: %s"
        (String.concat "; " (List.map (Format.asprintf "%a" pp_instr) is))

let test_fuse_load_blocked_by_other_use () =
  (* z used again later: must not fuse *)
  let f =
    mk_func
      [
        Bin (Add, 3, Reg 1, Reg 2);
        Load (W8, 4, Reg 3, Imm 0);
        Bin (Add, 5, Reg 3, Imm 1);
      ]
      (Ret (Some (Reg 5)))
  in
  let stats, _ = run_one f in
  Alcotest.(check int) "not fused" 0 stats.Peephole.Postprocess.ph_fused_loads

let test_fuse_load_blocked_by_source_redef () =
  (* x changes between the add and the load *)
  let f =
    mk_func
      [
        Bin (Add, 3, Reg 1, Reg 2);
        Bin (Add, 1, Reg 1, Imm 8);
        Load (W8, 4, Reg 3, Imm 0);
      ]
      (Ret (Some (Reg 4)))
  in
  let stats, _ = run_one f in
  Alcotest.(check int) "not fused" 0 stats.Peephole.Postprocess.ph_fused_loads

let test_fuse_load_blocked_by_keep_live_base () =
  (* z is itself a KEEP_LIVE base: the paper forbids rewriting it *)
  let f =
    mk_func
      [
        Bin (Add, 3, Reg 1, Reg 2);
        KeepLive (Reg 3);
        Load (W8, 4, Reg 3, Imm 0);
      ]
      (Ret (Some (Reg 4)))
  in
  let stats, _ = run_one f in
  Alcotest.(check int) "not fused" 0 stats.Peephole.Postprocess.ph_fused_loads

(* pattern 2: mov forwarding *)
let test_forward_mov () =
  let f =
    mk_func
      [ Mov (3, Reg 1); Bin (Add, 4, Reg 3, Imm 1) ]
      (Ret (Some (Reg 4)))
  in
  let stats, is = run_one f in
  Alcotest.(check int) "forwarded" 1
    stats.Peephole.Postprocess.ph_forwarded_moves;
  match is with
  | [ Bin (Add, 4, Reg 1, Imm 1) ] -> ()
  | _ ->
      Alcotest.failf "unexpected: %s"
        (String.concat "; " (List.map (Format.asprintf "%a" pp_instr) is))

let test_forward_mov_blocked_by_redef () =
  (* x redefined between the mov and a use of z: the mov must stay for the
     later use *)
  let f =
    mk_func
      [
        Mov (3, Reg 1);
        Bin (Add, 1, Reg 1, Imm 8);
        Bin (Add, 4, Reg 3, Imm 1);
      ]
      (Ret (Some (Reg 4)))
  in
  let stats, is = run_one f in
  Alcotest.(check int) "not removed" 0
    stats.Peephole.Postprocess.ph_forwarded_moves;
  match is with
  | Mov (3, Reg 1) :: _ -> ()
  | _ -> Alcotest.fail "mov must survive"

let test_forward_mov_blocked_by_keep_live () =
  let f =
    mk_func
      [ Mov (3, Reg 1); KeepLive (Reg 3); Bin (Add, 4, Reg 3, Imm 1) ]
      (Ret (Some (Reg 4)))
  in
  let stats, _ = run_one f in
  Alcotest.(check int) "keep-live operand not forwarded" 0
    stats.Peephole.Postprocess.ph_forwarded_moves

(* pattern 3: add sinking *)
let test_sink_add () =
  let f =
    mk_func
      [ Bin (Add, 3, Reg 1, Reg 2); Mov (4, Reg 3) ]
      (Ret (Some (Reg 4)))
  in
  let stats, is = run_one f in
  Alcotest.(check int) "sunk" 1 stats.Peephole.Postprocess.ph_sunk_adds;
  match is with
  | [ Bin (Add, 4, Reg 1, Reg 2) ] -> ()
  | _ ->
      Alcotest.failf "unexpected: %s"
        (String.concat "; " (List.map (Format.asprintf "%a" pp_instr) is))

let test_sink_add_blocked () =
  (* z still live after the mov *)
  let f =
    mk_func
      [ Bin (Add, 3, Reg 1, Reg 2); Mov (4, Reg 3); Bin (Mul, 5, Reg 3, Reg 4) ]
      (Ret (Some (Reg 5)))
  in
  let stats, _ = run_one f in
  Alcotest.(check int) "not sunk" 0 stats.Peephole.Postprocess.ph_sunk_adds

(* --- end to end -------------------------------------------------------- *)

let test_analysis_example_recovered () =
  (* the paper's f: safe code is add+keep+ld; the postprocessor gets back to
     the optimized ld [x+1] *)
  let src = "char f(char *x) { return x[1]; } int main(void) { return 0; }" in
  let ast = Csyntax.Parser.parse_program src in
  let r = Gcsafe.Annotate.run ~opts:(Gcsafe.Mode.default Gcsafe.Mode.Safe) ast in
  let irp =
    Ir.Compile.compile_program ~mode:Ir.Compile.opt_mode r.Gcsafe.Annotate.program
  in
  ignore (Opt.Pipeline.run_program Opt.Pipeline.default irp);
  ignore (Peephole.Postprocess.run irp);
  let f = List.find (fun f -> f.fn_name = "f") irp.p_funcs in
  let loads =
    List.concat_map
      (fun b ->
        List.filter_map
          (function Load (w, _, base, off) -> Some (w, base, off) | _ -> None)
          b.b_instrs)
      f.fn_blocks
  in
  match loads with
  | [ (W1, Reg _, Imm 1) ] -> ()
  | _ -> Alcotest.fail "expected the fused ldb [x+1]"

let test_semantics_preserved () =
  List.iter
    (fun w ->
      let src = w.Workloads.Registry.w_source in
      match
        ( Util.run_built Harness.Build.Safe src,
          Util.run_built Harness.Build.Safe_peephole src )
      with
      | Harness.Measure.Ran a, Harness.Measure.Ran b ->
          Alcotest.(check string)
            (w.Workloads.Registry.w_name ^ " output")
            a.Harness.Measure.o_output b.Harness.Measure.o_output;
          Alcotest.(check bool)
            (w.Workloads.Registry.w_name ^ " faster or equal")
            true
            (b.Harness.Measure.o_cycles <= a.Harness.Measure.o_cycles);
          Alcotest.(check bool)
            (w.Workloads.Registry.w_name ^ " not larger")
            true
            (b.Harness.Measure.o_size <= a.Harness.Measure.o_size)
      | _ -> Alcotest.fail "runs failed")
    Workloads.Registry.paper_suite

let test_safe_under_async_gc_after_peephole () =
  (* the postprocessed code must still be GC-safe: collect constantly *)
  let src = Workloads.Registry.cordtest.Workloads.Registry.w_source in
  let ast = Csyntax.Parser.parse_program src in
  let r = Gcsafe.Annotate.run ~opts:(Gcsafe.Mode.default Gcsafe.Mode.Safe) ast in
  let irp =
    Ir.Compile.compile_program ~mode:Ir.Compile.opt_mode r.Gcsafe.Annotate.program
  in
  ignore (Opt.Pipeline.run_program Opt.Pipeline.default irp);
  ignore (Peephole.Postprocess.run irp);
  let config =
    {
      (Machine.Vm.default_config ()) with
      Machine.Vm.vm_gc_schedule = Machine.Schedule.Every 5000;
    }
  in
  let res = Machine.Vm.run ~config irp in
  Alcotest.(check bool) "collections ran" true (res.Machine.Vm.r_gc_count > 50);
  Alcotest.(check bool) "completed" true
    (String.length res.Machine.Vm.r_output > 0)

let suite =
  [
    Alcotest.test_case "pattern 1: fuse load" `Quick test_fuse_load;
    Alcotest.test_case "pattern 1: other use blocks" `Quick
      test_fuse_load_blocked_by_other_use;
    Alcotest.test_case "pattern 1: source redef blocks" `Quick
      test_fuse_load_blocked_by_source_redef;
    Alcotest.test_case "pattern 1: KEEP_LIVE base blocks" `Quick
      test_fuse_load_blocked_by_keep_live_base;
    Alcotest.test_case "pattern 2: forward mov" `Quick test_forward_mov;
    Alcotest.test_case "pattern 2: redef blocks" `Quick
      test_forward_mov_blocked_by_redef;
    Alcotest.test_case "pattern 2: KEEP_LIVE blocks" `Quick
      test_forward_mov_blocked_by_keep_live;
    Alcotest.test_case "pattern 3: sink add" `Quick test_sink_add;
    Alcotest.test_case "pattern 3: liveness blocks" `Quick
      test_sink_add_blocked;
    Alcotest.test_case "analysis example recovered" `Quick
      test_analysis_example_recovered;
    Alcotest.test_case "semantics and size preserved" `Quick
      test_semantics_preserved;
    Alcotest.test_case "still GC-safe under async collection" `Quick
      test_safe_under_async_gc_after_peephole;
  ]
