(* The observability plane: flight-recorder ring wraparound and dump
   validation, worker-count determinism of service dumps and event
   streams, the windowed-stream merge law, heap-census invariants,
   per-request phase accounting, pause-budget response of the pause
   metric, and supervised-pool anomaly events. *)

module Json = Telemetry.Json
module Metrics = Telemetry.Metrics
module Flight = Telemetry.Flight_recorder
module Stream = Telemetry.Stream
module Request = Harness.Request
module Gcsafed = Service.Gcsafed
module Trafficgen = Service.Trafficgen

(* --- flight recorder: ring wraparound (qcheck) -------------------------- *)

let test_ring_wraparound =
  QCheck.Test.make ~name:"ring wraparound keeps the last [capacity] events"
    ~count:200
    QCheck.(pair (int_range 1 48) (int_range 0 200))
    (fun (capacity, n) ->
      let r = Flight.create ~capacity () in
      for i = 0 to n - 1 do
        Flight.record r ~ts:(i * 3) "ev" [ ("i", Json.Int i) ]
      done;
      let evs = Flight.events r in
      let dropped = max 0 (n - capacity) in
      Flight.recorded r = n
      && Flight.dropped r = dropped
      && List.length evs = min n capacity
      && List.mapi (fun k e -> e.Flight.fr_ordinal = dropped + k) evs
         |> List.for_all Fun.id
      && Flight.check (Flight.dump r) = Ok ())

let test_dump_check_rejects_tampering () =
  let r = Flight.create ~capacity:4 () in
  for i = 0 to 9 do
    Flight.record r ~ts:i "ev" []
  done;
  let doc = Flight.dump r in
  Alcotest.(check bool) "is_dump" true (Flight.is_dump doc);
  (match Flight.check doc with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("honest dump rejected: " ^ e));
  let tamper f =
    match doc with
    | Json.Obj [ ("flightRecorder", Json.Obj fields) ] ->
        Json.Obj [ ("flightRecorder", Json.Obj (f fields)) ]
    | _ -> Alcotest.fail "unexpected dump shape"
  in
  let bad =
    [
      ( "recorded count lies",
        tamper
          (List.map (function
            | "recorded", _ -> ("recorded", Json.Int 3)
            | kv -> kv)) );
      ( "an event deleted",
        tamper
          (List.map (function
            | "events", Json.List (_ :: rest) -> ("events", Json.List rest)
            | kv -> kv)) );
      ( "ordinal gap",
        tamper
          (List.map (function
            | "events", Json.List evs ->
                ( "events",
                  Json.List
                    (List.mapi
                       (fun k ev ->
                         match (k, ev) with
                         | 2, Json.Obj fields ->
                             Json.Obj
                               (List.map
                                  (function
                                    | "ordinal", Json.Int o ->
                                        ("ordinal", Json.Int (o + 1))
                                    | kv -> kv)
                                  fields)
                         | _ -> ev)
                       evs) )
            | kv -> kv)) );
    ]
  in
  List.iter
    (fun (what, doc) ->
      match Flight.check doc with
      | Ok () -> Alcotest.fail ("accepted: " ^ what)
      | Error _ -> ())
    bad

(* --- service: dump and event stream identical across --jobs ------------- *)

let observe_bomb spec jobs =
  let lines = Buffer.create 1024 in
  Exec.Pool.with_pool ~jobs (fun pool ->
      let t =
        Gcsafed.create ~pool
          ~events:(fun line ->
            Buffer.add_string lines (Json.to_string line);
            Buffer.add_char lines '\n')
          ~window:200_000 Gcsafed.default_config
      in
      List.iter
        (fun (arrival, req) -> Gcsafed.submit ~arrival t req)
        (Trafficgen.generate spec);
      Gcsafed.shutdown t;
      (Json.to_string (Gcsafed.dump t), Buffer.contents lines))

let test_dump_and_stream_jobs_identity () =
  let spec =
    {
      Trafficgen.default_spec with
      Trafficgen.g_requests = 30;
      g_seed = 7;
      g_mix = Trafficgen.Generated;
      g_chaos_percent = 25;
    }
  in
  (* warm the process-wide build cache first: the absorbed
     [build/cache/*] counters reflect physical cache state, which is
     process history, not a worker-count effect *)
  ignore (observe_bomb spec 1);
  let dump1, stream1 = observe_bomb spec 1 in
  let dump4, stream4 = observe_bomb spec 4 in
  Alcotest.(check string) "flight dump identical across --jobs" dump1 dump4;
  Alcotest.(check string) "event stream identical across --jobs" stream1
    stream4;
  (match Json.parse dump1 with
  | Ok doc -> (
      match Flight.check doc with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("service dump invalid: " ^ e))
  | Error e -> Alcotest.fail e);
  (* every window line carries a burn rate, even when no SLO fired *)
  let window_lines =
    String.split_on_char '\n' stream1
    |> List.filter_map (fun l ->
           if l = "" then None
           else
             match Json.parse l with
             | Ok (Json.Obj _ as doc)
               when Json.member "type" doc = Some (Json.Str "window") ->
                 Some doc
             | _ -> None)
  in
  Alcotest.(check bool) "at least one window emitted" true
    (window_lines <> []);
  List.iter
    (fun w ->
      match Json.member "burn_rate" w with
      | Some (Json.Float _) | Some (Json.Int _) -> ()
      | _ -> Alcotest.fail "window line missing burn_rate")
    window_lines

(* --- stream: the window merge law (qcheck) ------------------------------ *)

let ops_gen =
  (* (instrument kind, value, clock advance) *)
  QCheck.(list_of_size Gen.(int_range 0 40) (triple (int_range 0 2) small_nat (int_range 0 30)))

let apply_op m (kind, v, _) =
  match kind with
  | 0 -> Metrics.add (Metrics.counter m "c") v
  | 1 -> Metrics.set (Metrics.gauge m "g") v
  | _ -> Metrics.observe (Metrics.histogram m "h") v

let test_window_merge_law =
  QCheck.Test.make
    ~name:"folding merge over stream windows equals the whole-run diff"
    ~count:200
    QCheck.(pair ops_gen ops_gen)
    (fun (before, interval) ->
      let m = Metrics.create () in
      List.iter (apply_op m) before;
      let s0 = Metrics.snapshot m in
      let s = Stream.create ~window:16 ~metrics:m ~emit:ignore () in
      let now = ref 0 in
      List.iter
        (fun ((_, _, gap) as op) ->
          apply_op m op;
          now := !now + gap;
          Stream.advance s ~now:!now)
        interval;
      Stream.finish s ~now:!now;
      let merged =
        match Stream.windows s with
        | [] -> []
        | w :: ws -> List.fold_left Metrics.merge w ws
      in
      let whole = Metrics.diff (Metrics.snapshot m) s0 in
      Json.to_string (Metrics.to_json merged)
      = Json.to_string (Metrics.to_json whole))

(* --- heap census --------------------------------------------------------- *)

let test_census_invariants_direct () =
  let h = Gcheap.Heap.create () in
  let addrs = List.init 120 (fun i -> Gcheap.Heap.alloc h (8 + (8 * (i mod 6)))) in
  ignore addrs;
  let c = Gcheap.Census.take h in
  Alcotest.(check bool) "live <= committed" true
    (c.Gcheap.Census.cn_live_words <= c.Gcheap.Census.cn_committed_words);
  Alcotest.(check int) "free-page pool idle without ceiling pressure" 0
    c.Gcheap.Census.cn_free_pages;
  Alcotest.(check int) "no free-page runs either" 0
    c.Gcheap.Census.cn_free_page_runs;
  Alcotest.(check bool) "dirty cards bounded by total cards" true
    (c.Gcheap.Census.cn_dirty_cards <= c.Gcheap.Census.cn_cards);
  let frag = Gcheap.Census.fragmentation c in
  Alcotest.(check bool) "fragmentation in [0,1]" true
    (frag >= 0.0 && frag <= 1.0);
  List.iter
    (fun row ->
      Alcotest.(check bool)
        (Printf.sprintf "class %d: allocated <= slots" row.Gcheap.Census.cr_size)
        true
        (row.Gcheap.Census.cr_allocated <= row.Gcheap.Census.cr_slots))
    c.Gcheap.Census.cn_classes

let churn_src =
  {|int main(void) {
  int i; char *p;
  for (i = 0; i < 120; i++) {
    p = (char *)malloc(16 + (i % 40));
    p[0] = (char)i;
  }
  printf("%d\n", 120);
  return 0;
}|}

let test_census_sampled_per_collection () =
  let b = Harness.Build.compile Harness.Build.Safe churn_src in
  (* no final_collect: the exit-time collection samples a census too,
     which would make the count one more than [o_gc_count] *)
  let req = Request.make ~gc_threshold:256 churn_src in
  match Harness.Measure.exec ~census:true req b with
  | Harness.Measure.Ran r ->
      let censuses = r.Harness.Measure.o_census in
      Alcotest.(check int) "one census per collection"
        r.Harness.Measure.o_gc_count (List.length censuses);
      Alcotest.(check bool) "collections actually ran" true
        (r.Harness.Measure.o_gc_count > 0);
      List.iter
        (fun c ->
          Alcotest.(check bool) "live <= committed" true
            (c.Gcheap.Census.cn_live_words
            <= c.Gcheap.Census.cn_committed_words))
        censuses;
      let ords = List.map (fun c -> c.Gcheap.Census.cn_collections) censuses in
      Alcotest.(check bool) "collection ordinals strictly increasing" true
        (List.for_all2 ( < ) (0 :: ords) (ords @ [ max_int ]) || ords = []);
      (* the wire rendering parses back *)
      List.iter
        (fun c ->
          match Json.parse (Json.to_string (Harness.Measure.census_to_json c)) with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("census JSON invalid: " ^ e))
        censuses
  | o -> Alcotest.fail (Harness.Measure.describe o)

(* --- phase accounting ---------------------------------------------------- *)

let test_phase_identity () =
  let spec =
    {
      Trafficgen.default_spec with
      Trafficgen.g_requests = 40;
      g_seed = 13;
      g_mix = Trafficgen.Generated;
      g_chaos_percent = 20;
    }
  in
  let t = Gcsafed.create Gcsafed.default_config in
  List.iter
    (fun (arrival, req) -> Gcsafed.submit ~arrival t req)
    (Trafficgen.generate spec);
  Gcsafed.shutdown t;
  List.iter
    (fun c ->
      Alcotest.(check int)
        (Printf.sprintf "trace %d: queue_wait + build + vm = latency"
           c.Gcsafed.r_trace_id)
        (c.Gcsafed.r_finish - c.Gcsafed.r_arrival)
        (c.Gcsafed.r_queue_wait + c.Gcsafed.r_build_ticks + c.Gcsafed.r_vm_ticks))
    (Gcsafed.completions t);
  let r = Gcsafed.report t in
  Alcotest.(check int) "report totals obey the same identity"
    r.Gcsafed.rp_total_latency
    (r.Gcsafed.rp_queue_wait + r.Gcsafed.rp_build_ticks + r.Gcsafed.rp_vm_ticks)

let test_trace_ids_dense_and_stamped () =
  let t = Gcsafed.create Gcsafed.default_config in
  for _ = 1 to 5 do
    Gcsafed.submit t (Request.make "int main(void) { return 0; }")
  done;
  Gcsafed.drain t;
  let ids = List.map (fun c -> c.Gcsafed.r_trace_id) (Gcsafed.completions t) in
  Alcotest.(check (list int)) "submit stamps 1..n in order" [ 1; 2; 3; 4; 5 ]
    ids

(* The pause measure that responds to the budget: the same request under
   a tighter incremental pause budget must show a strictly smaller
   worst-case pause, while tick latency stays identical (the ablation
   invariant: cycles don't depend on the budget).  The workload needs a
   real live graph — on trivially small heaps every pause is the atomic
   root scan, which no budget can shrink. *)
let test_pause_metric_responds_to_budget () =
  let run budget =
    let t = Gcsafed.create Gcsafed.default_config in
    Gcsafed.submit t
      (Request.make ~gc_mode:Gcheap.Heap.Inc ~gc_pause_budget:budget
         Workloads.Registry.cordtest.Workloads.Registry.w_source);
    Gcsafed.shutdown t;
    Gcsafed.report t
  in
  let tight = run 64 and loose = run 1024 in
  Alcotest.(check bool) "worst pause responds to the budget" true
    (tight.Gcsafed.rp_gc_max_pause_words
    < loose.Gcsafed.rp_gc_max_pause_words);
  Alcotest.(check int) "tick latency is pause-budget-invariant"
    loose.Gcsafed.rp_total_latency tight.Gcsafed.rp_total_latency;
  Alcotest.(check bool) "tight budget overruns surface as SLO burn" true
    (Gcsafed.burn_rate tight > Gcsafed.burn_rate loose)

(* --- sharded counters ---------------------------------------------------- *)

let test_sharded_counters_merge_on_snapshot () =
  let m = Metrics.create () in
  let c = Metrics.counter m "hot" in
  Exec.Pool.with_pool ~jobs:4 (fun pool ->
      ignore
        (Exec.Pool.map pool
           (fun i ->
             for _ = 1 to 100 do
               Metrics.incr c
             done;
             i)
           (List.init 40 Fun.id)));
  match Metrics.find (Metrics.snapshot m) "hot" with
  | Some (Metrics.Counter 4000) -> ()
  | Some (Metrics.Counter n) ->
      Alcotest.failf "lost updates: expected 4000, got %d" n
  | _ -> Alcotest.fail "counter missing"

(* --- supervised pool anomaly events -------------------------------------- *)

let flaky ctx i =
  if i = 3 then raise (Exec.Pool.Crash "injected")
  else if i mod 2 = 0 && ctx.Exec.Pool.attempt = 1 then
    raise (Exec.Pool.Transient "wobble")
  else i * 10

let supervised_dump jobs =
  Exec.Pool.with_pool ~jobs (fun pool ->
      let recorder = Flight.create () in
      let outcomes, _ =
        Exec.Pool.map_supervised pool ~recorder flaky (List.init 8 Fun.id)
      in
      (outcomes, Flight.events recorder, Json.to_string (Flight.dump recorder)))

let test_pool_recorder_events () =
  let outcomes, events, dump = supervised_dump 1 in
  let kinds = List.map (fun e -> (e.Flight.fr_ts, e.Flight.fr_kind)) events in
  (* even indexes 0,2,4,6 retried; 3 quarantined *)
  Alcotest.(check (list (pair int string)))
    "retries and the quarantine, input-ordered"
    [
      (0, "pool.retry");
      (2, "pool.retry");
      (3, "pool.quarantine");
      (4, "pool.retry");
      (6, "pool.retry");
    ]
    kinds;
  (match List.nth outcomes 3 with
  | Exec.Pool.Quarantined _ -> ()
  | _ -> Alcotest.fail "index 3 should be quarantined");
  let _, _, dump4 = supervised_dump 4 in
  Alcotest.(check string) "pool dump identical across --jobs" dump dump4

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suite =
  [
    Alcotest.test_case "dump check rejects tampering" `Quick
      test_dump_check_rejects_tampering;
    Alcotest.test_case "service dump and stream identical across --jobs"
      `Quick test_dump_and_stream_jobs_identity;
    Alcotest.test_case "census invariants (direct)" `Quick
      test_census_invariants_direct;
    Alcotest.test_case "census sampled per collection" `Quick
      test_census_sampled_per_collection;
    Alcotest.test_case "phase identity" `Quick test_phase_identity;
    Alcotest.test_case "trace ids dense and stamped" `Quick
      test_trace_ids_dense_and_stamped;
    Alcotest.test_case "pause metric responds to budget" `Quick
      test_pause_metric_responds_to_budget;
    Alcotest.test_case "sharded counters merge on snapshot" `Quick
      test_sharded_counters_merge_on_snapshot;
    Alcotest.test_case "pool recorder events" `Quick test_pool_recorder_events;
  ]
  @ qsuite [ test_ring_wraparound; test_window_merge_law ]
