(* Stress-subsystem tests: the heap-integrity sanitizer, the VM's
   resource traps and schedule injector, the ddmin shrinker, and the
   differential driver on the known-hazard corpus. *)

open Gcheap

let fresh () = Heap.create ()

(* --- sanitizer: clean heaps report nothing --------------------------- *)

let test_integrity_fresh () =
  Alcotest.(check int) "fresh heap" 0 (List.length (Heap.check_integrity (fresh ())))

let test_integrity_after_use () =
  let h = fresh () in
  let keep = ref [] in
  for i = 0 to 120 do
    let a = Heap.alloc h (8 + (i mod 60)) in
    if i mod 3 = 0 then keep := a :: !keep
  done;
  ignore (Heap.alloc ~kind:Block.Atomic h 100);
  ignore (Heap.alloc h 5000);
  Alcotest.(check int) "used heap" 0 (List.length (Heap.check_integrity h));
  ignore (Heap.collect ~extra_roots:!keep h);
  Alcotest.(check int) "after collect" 0 (List.length (Heap.check_integrity h));
  ignore (Heap.collect h);
  Alcotest.(check int) "after drop-all" 0 (List.length (Heap.check_integrity h))

(* --- sanitizer: deliberate corruptions are reported ------------------- *)

let block_of h a =
  match Page_map.find h.Heap.map a with
  | Some b -> b
  | None -> Alcotest.fail "address not mapped"

let rules vs = List.map (fun v -> v.Heap.v_rule) vs

let test_detects_stray_mark () =
  let h = fresh () in
  let a = Heap.alloc h 16 in
  ignore (Heap.collect h) (* frees [a]; marks are clear *);
  let blk = block_of h a in
  (match Block.slot_of_addr blk a with
  | Some i -> Block.set_marked blk i true
  | None -> Alcotest.fail "no slot");
  Alcotest.(check bool) "mark-bits rule fires" true
    (List.mem "mark-bits" (rules (Heap.check_integrity h)))

let test_detects_allocated_slot_on_free_list () =
  let h = fresh () in
  let a = Heap.alloc h 16 in
  let blk = block_of h a in
  let fl =
    Hashtbl.find h.Heap.free_lists (blk.Block.blk_obj_size, blk.Block.blk_kind)
  in
  fl := a :: !fl;
  Alcotest.(check bool) "free-list rule fires" true
    (List.mem "free-list" (rules (Heap.check_integrity h)))

let test_detects_slack_violation () =
  let h = fresh () in
  let a = Heap.alloc h 16 in
  let blk = block_of h a in
  (match Block.slot_of_addr blk a with
  | Some i -> blk.Block.blk_req.(i) <- blk.Block.blk_obj_size
  | None -> Alcotest.fail "no slot");
  Alcotest.(check bool) "slack-byte rule fires" true
    (List.mem "slack-byte" (rules (Heap.check_integrity h)))

let test_assert_integrity_raises () =
  let h = fresh () in
  let a = Heap.alloc h 16 in
  let blk = block_of h a in
  let fl =
    Hashtbl.find h.Heap.free_lists (blk.Block.blk_obj_size, blk.Block.blk_kind)
  in
  fl := a :: !fl;
  match Heap.assert_integrity h with
  | () -> Alcotest.fail "expected Heap_corruption"
  | exception Heap.Heap_corruption (_ :: _) -> ()
  | exception Heap.Heap_corruption [] ->
      Alcotest.fail "corruption with no violations"

(* qcheck: integrity holds across arbitrary alloc/collect interleavings *)

let prop_integrity_under_interleavings =
  let op =
    QCheck.(
      oneof
        [
          map (fun n -> `Alloc (1 + (n mod 300))) small_nat;
          always `Collect;
          always `Drop;
        ])
  in
  QCheck.Test.make ~count:60 ~name:"integrity across alloc/collect interleavings"
    (QCheck.list_of_size (QCheck.Gen.int_range 1 60) op)
    (fun ops ->
      let h = fresh () in
      let live = ref [] in
      List.iter
        (fun op ->
          (match op with
          | `Alloc n -> live := Heap.alloc h n :: !live
          | `Collect -> ignore (Heap.collect ~extra_roots:!live h)
          | `Drop -> (
              match !live with [] -> () | _ :: rest -> live := rest));
          match Heap.check_integrity h with
          | [] -> ()
          | vs ->
              QCheck.Test.fail_reportf "violations: %s"
                (String.concat "; "
                   (List.map
                      (fun v -> Format.asprintf "%a" Heap.pp_violation v)
                      vs)))
        ops;
      true)

(* --- VM resource ceilings degrade to structured outcomes -------------- *)

let spin_src =
  {|int main(void) { long i; for (i = 0; i < 1000000; i = i + 1) ; return 0; }|}

let test_step_limit () =
  let b = Harness.Build.compile Harness.Build.Base spin_src in
  match
    Harness.Measure.exec (Harness.Request.make ~max_instrs:500 spin_src) b
  with
  | Harness.Measure.Limit m ->
      Alcotest.(check bool) "names the step limit" true
        (String.length m > 0)
  | o -> Alcotest.failf "expected Limit, got %s" (Harness.Measure.describe o)

let test_heap_limit () =
  let b =
    Harness.Build.compile Harness.Build.Base
      {|int main(void) { (void)malloc(5000); return 0; }|}
  in
  match Harness.Measure.exec (Harness.Request.make ~max_heap:1 "") b with
  | Harness.Measure.Limit _ -> ()
  | o -> Alcotest.failf "expected Limit, got %s" (Harness.Measure.describe o)

(* --- schedule bit-sets ------------------------------------------------ *)

let test_schedule_points () =
  let open Machine.Schedule in
  let pts = points_of_list [ 9; 2; 2; 40; -3 ] in
  Alcotest.(check (list int)) "sorted, deduped, negatives dropped" [ 2; 9; 40 ]
    (points_to_list pts);
  Alcotest.(check int) "cardinal" 3 (points_cardinal pts);
  Alcotest.(check bool) "member" true (points_mem pts 9);
  Alcotest.(check bool) "non-member" false (points_mem pts 10);
  Alcotest.(check bool) "past the end" false (points_mem pts 1000)

(* --- the shrinker ----------------------------------------------------- *)

let test_ddmin_single_culprit () =
  let calls = ref 0 in
  let still_fails pts =
    incr calls;
    List.mem 7 pts
  in
  Alcotest.(check (list int)) "isolates 7" [ 7 ]
    (Stress.Shrink.ddmin ~still_fails (List.init 100 (fun i -> i)));
  Alcotest.(check bool) "cheaper than brute force" true (!calls < 100)

let test_ddmin_pair () =
  let still_fails pts = List.mem 3 pts && List.mem 12 pts in
  Alcotest.(check (list int)) "isolates the pair" [ 3; 12 ]
    (Stress.Shrink.ddmin ~still_fails (List.init 40 (fun i -> i)))

let prop_ddmin_exact =
  QCheck.Test.make ~count:100 ~name:"ddmin recovers the exact culprit set"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 5) (int_bound 79))
        (list_of_size (Gen.int_range 0 80) (int_bound 79)))
    (fun (culprits, extra) ->
      let culprits = List.sort_uniq compare culprits in
      let universe = List.sort_uniq compare (culprits @ extra) in
      let still_fails pts = List.for_all (fun c -> List.mem c pts) culprits in
      Stress.Shrink.ddmin ~still_fails universe = culprits)

(* --- the driver on the known corpus ----------------------------------- *)

let mx ?(configs = Harness.Build.all_configs) ?(gc_modes = [ Gcheap.Heap.Stw ])
    machines =
  {
    Harness.Request.default_matrix with
    Harness.Request.m_configs = configs;
    Harness.Request.m_machines = machines;
    Harness.Request.m_gc_modes = gc_modes;
  }

let hazard_plan =
  {
    Stress.Driver.default_plan with
    Stress.Driver.p_matrix = mx [ Machine.Machdesc.sparc10 ];
  }

let test_driver_finds_hazard () =
  let findings, _, _ = Stress.Driver.run_target hazard_plan Stress.Corpus.hazard in
  let base, rest =
    List.partition
      (fun f -> f.Stress.Driver.f_config = Harness.Build.Base)
      findings
  in
  Alcotest.(check bool) "base divergence found" true (base <> []);
  Alcotest.(check int) "safe and debug builds are clean" 0 (List.length rest);
  List.iter
    (fun f ->
      Alcotest.(check bool) "expected (a known hazard)" true
        f.Stress.Driver.f_expected;
      Alcotest.(check int) "shrinks to a single collection point" 1
        (List.length f.Stress.Driver.f_min_points);
      Alcotest.(check bool) "reports the point's context" true
        (f.Stress.Driver.f_contexts <> []))
    base

let test_shrunk_schedule_reproduces () =
  (* the minimized point set, replayed as an explicit schedule, still
     diverges from the uninjected run *)
  let subjects =
    Harness.Differ.build_of_matrix
      (mx ~configs:[ Harness.Build.Base ] [ Machine.Machdesc.sparc10 ])
      Stress.Corpus.hazard.Stress.Corpus.t_source
  in
  let subject = List.hd subjects in
  let reference =
    Harness.Differ.observe ~schedule:Machine.Schedule.Auto subject
  in
  let findings, _, _ = Stress.Driver.run_target hazard_plan Stress.Corpus.hazard in
  let f = List.hd findings in
  let replay =
    Harness.Differ.observe
      ~schedule:(Machine.Schedule.at_list f.Stress.Driver.f_min_points)
      subject
  in
  match Harness.Differ.diff ~reference replay with
  | Some _ -> ()
  | None -> Alcotest.fail "minimized schedule no longer reproduces"

let test_safe_targets_clean () =
  List.iter
    (fun target ->
      let findings, _, _ = Stress.Driver.run_target hazard_plan target in
      Alcotest.(check int)
        (target.Stress.Corpus.t_name ^ " has no findings")
        0 (List.length findings))
    [ Stress.Corpus.strcopy; Stress.Corpus.interior; Stress.Corpus.churn ]

(* --- collector modes in the differential matrix ----------------------- *)

let check_cells cells =
  List.iter
    (fun c ->
      match c.Harness.Differ.c_mismatch with
      | None -> ()
      | Some m ->
          Alcotest.failf "%s: %s"
            (Harness.Differ.subject_name c.Harness.Differ.c_subject)
            (Harness.Differ.describe_mismatch m))
    cells

let test_gc_mode_matrix_agrees () =
  (* a safe program behaves identically under the stop-the-world and the
     generational collector, under an injected schedule *)
  let src = Stress.Corpus.strcopy.Stress.Corpus.t_source in
  let stw_only =
    Harness.Differ.build_of_matrix (mx [ Machine.Machdesc.sparc10 ]) src
  in
  let subjects =
    Harness.Differ.build_of_matrix
      (mx ~gc_modes:[ Gcheap.Heap.Stw; Gcheap.Heap.Gen ]
         [ Machine.Machdesc.sparc10 ])
      src
  in
  Alcotest.(check int)
    "gc modes multiply subjects, not builds"
    (2 * List.length stw_only)
    (List.length subjects);
  check_cells
    (Harness.Differ.run_matrix ~schedule:(Machine.Schedule.Every 3) subjects)

let has_gen_tag f =
  let s = f.Stress.Driver.f_subject and tag = "[gen]" in
  let n = String.length s and tn = 5 in
  let rec scan i = i + tn <= n && (String.sub s i tn = tag || scan (i + 1)) in
  scan 0

let test_driver_gc_modes_fail_identically () =
  (* the known hazard is a property of the unsafe build, not of the
     collector: the driver finds it under both modes, and the safe and
     debug builds stay clean under both *)
  let plan =
    {
      hazard_plan with
      Stress.Driver.p_matrix =
        mx
          ~gc_modes:[ Gcheap.Heap.Stw; Gcheap.Heap.Gen ]
          [ Machine.Machdesc.sparc10 ];
    }
  in
  let findings, subjects, _ =
    Stress.Driver.run_target plan Stress.Corpus.hazard
  in
  let stw_subjects =
    let _, s, _ = Stress.Driver.run_target hazard_plan Stress.Corpus.hazard in
    s
  in
  Alcotest.(check int) "both modes scanned" (2 * stw_subjects) subjects;
  let base, rest =
    List.partition
      (fun f -> f.Stress.Driver.f_config = Harness.Build.Base)
      findings
  in
  Alcotest.(check int) "safe and debug builds clean in both modes" 0
    (List.length rest);
  let gen_f, stw_f = List.partition has_gen_tag base in
  Alcotest.(check bool) "hazard found under stw" true (stw_f <> []);
  Alcotest.(check bool) "hazard found under gen" true (gen_f <> []);
  List.iter
    (fun f ->
      Alcotest.(check bool) "expected (a known hazard)" true
        f.Stress.Driver.f_expected)
    base

let test_run_matrix_agrees () =
  let subjects =
    Harness.Differ.build_of_matrix
      (mx [ Machine.Machdesc.sparc10 ])
      Stress.Corpus.strcopy.Stress.Corpus.t_source
  in
  let cells =
    Harness.Differ.run_matrix ~schedule:(Machine.Schedule.Every 3) subjects
  in
  List.iter
    (fun c ->
      match c.Harness.Differ.c_mismatch with
      | None -> ()
      | Some m ->
          Alcotest.failf "%s: %s"
            (Harness.Differ.subject_name c.Harness.Differ.c_subject)
            (Harness.Differ.describe_mismatch m))
    cells

let suite =
  [
    Alcotest.test_case "integrity: fresh heap" `Quick test_integrity_fresh;
    Alcotest.test_case "integrity: used heap" `Quick test_integrity_after_use;
    Alcotest.test_case "integrity: stray mark bit" `Quick test_detects_stray_mark;
    Alcotest.test_case "integrity: allocated slot on free list" `Quick
      test_detects_allocated_slot_on_free_list;
    Alcotest.test_case "integrity: slack-byte violation" `Quick
      test_detects_slack_violation;
    Alcotest.test_case "integrity: assert raises" `Quick
      test_assert_integrity_raises;
    QCheck_alcotest.to_alcotest prop_integrity_under_interleavings;
    Alcotest.test_case "vm: step ceiling" `Quick test_step_limit;
    Alcotest.test_case "vm: heap ceiling" `Quick test_heap_limit;
    Alcotest.test_case "schedule: point sets" `Quick test_schedule_points;
    Alcotest.test_case "shrink: single culprit" `Quick test_ddmin_single_culprit;
    Alcotest.test_case "shrink: culprit pair" `Quick test_ddmin_pair;
    QCheck_alcotest.to_alcotest prop_ddmin_exact;
    Alcotest.test_case "driver: finds the hazard" `Quick test_driver_finds_hazard;
    Alcotest.test_case "driver: shrunk schedule reproduces" `Quick
      test_shrunk_schedule_reproduces;
    Alcotest.test_case "driver: safe targets are clean" `Quick
      test_safe_targets_clean;
    Alcotest.test_case "differ: matrix agreement" `Quick test_run_matrix_agrees;
    Alcotest.test_case "differ: gc modes agree on safe code" `Quick
      test_gc_mode_matrix_agrees;
    Alcotest.test_case "driver: gc modes fail identically" `Quick
      test_driver_gc_modes_fail_identically;
  ]
