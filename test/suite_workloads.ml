(* Workload integration tests: every benchmark program runs identically
   under every build configuration; the paper's two anecdotes (gawk fails
   under checking, gs is clean) reproduce. *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let test_output_equality () =
  List.iter
    (fun w ->
      let out =
        Util.check_all_configs_agree
          ~expect_checked_fault:w.Workloads.Registry.w_checked_fails
          w.Workloads.Registry.w_name w.Workloads.Registry.w_source
      in
      Alcotest.(check bool)
        (w.Workloads.Registry.w_name ^ " expected output prefix")
        true
        (starts_with w.Workloads.Registry.w_expected_prefix out))
    Workloads.Registry.all

let test_gawk_bug_detected () =
  (* "With checking enabled, it immediately and correctly detected a
     pointer arithmetic error which was also an array access error." *)
  match
    Util.run_built Harness.Build.Debug_checked
      Workloads.Registry.gawk.Workloads.Registry.w_source
  with
  | Harness.Measure.Detected msg ->
      Alcotest.(check bool) "GC_same_obj names the escape" true
        (starts_with "GC_same_obj" msg)
  | o ->
      Alcotest.failf "the gawk bug must be detected, got: %s"
        (Harness.Measure.describe o)

let test_gawk_runs_unchecked () =
  (* "It ran correctly without checking." *)
  List.iter
    (fun config ->
      match
        Util.run_built config Workloads.Registry.gawk.Workloads.Registry.w_source
      with
      | Harness.Measure.Ran _ -> ()
      | o ->
          Alcotest.failf "gawk failed under %s: %s"
            (Harness.Build.config_name config)
            (Harness.Measure.describe o))
    [ Harness.Build.Base; Harness.Build.Safe; Harness.Build.Debug ]

let test_gawk_fix_passes_checking () =
  (* "After fixing that ..." — the fixed program is check-clean *)
  match
    Util.run_built Harness.Build.Debug_checked
      Workloads.Registry.gawk_fixed.Workloads.Registry.w_source
  with
  | Harness.Measure.Ran _ -> ()
  | o -> Alcotest.failf "fixed gawk flagged: %s" (Harness.Measure.describe o)

let test_gawk_outputs_agree () =
  (* the bug is benign: buggy and fixed programs compute the same thing *)
  let out src =
    match Util.run_built Harness.Build.Base src with
    | Harness.Measure.Ran r -> r.Harness.Measure.o_output
    | o -> Alcotest.fail (Harness.Measure.describe o)
  in
  Alcotest.(check string) "same results"
    (out Workloads.Registry.gawk.Workloads.Registry.w_source)
    (out Workloads.Registry.gawk_fixed.Workloads.Registry.w_source)

let test_gs_checking_clean () =
  (* "No pointer arithmetic errors were found" — prepended headers *)
  match
    Util.run_built Harness.Build.Debug_checked
      Workloads.Registry.gs.Workloads.Registry.w_source
  with
  | Harness.Measure.Ran r ->
      Alcotest.(check bool) "produced pages" true
        (starts_with "showpage" r.Harness.Measure.o_output)
  | o -> Alcotest.failf "gs flagged: %s" (Harness.Measure.describe o)

let test_cordtest_checking_clean () =
  (* the paper found one benign bug and fixed it; our cord package is the
     post-fix version, so checking passes *)
  match
    Util.run_built Harness.Build.Debug_checked
      Workloads.Registry.cordtest.Workloads.Registry.w_source
  with
  | Harness.Measure.Ran _ -> ()
  | o -> Alcotest.failf "cordtest flagged: %s" (Harness.Measure.describe o)

let test_workloads_allocate () =
  (* all four are allocation-intensive, like the Zorn programs *)
  List.iter
    (fun w ->
      let irp = Util.compile w.Workloads.Registry.w_source in
      let r = Machine.Vm.run irp in
      Alcotest.(check bool)
        (w.Workloads.Registry.w_name ^ " allocates heavily")
        true
        (r.Machine.Vm.r_heap.Gcheap.Heap.objects_allocated > 500))
    Workloads.Registry.paper_suite

let test_collections_reclaim () =
  (* under a small threshold the collector reclaims most garbage *)
  let irp =
    Util.compile Workloads.Registry.cfrac.Workloads.Registry.w_source
  in
  let config =
    { (Machine.Vm.default_config ()) with Machine.Vm.vm_gc_threshold = 16 * 1024 }
  in
  let r = Machine.Vm.run ~config irp in
  let s = r.Machine.Vm.r_heap in
  Alcotest.(check bool) "collected repeatedly" true (r.Machine.Vm.r_gc_count > 5);
  Alcotest.(check bool) "reclaimed most garbage" true
    (float_of_int s.Gcheap.Heap.objects_freed
    > 0.8 *. float_of_int s.Gcheap.Heap.objects_allocated)

let suite =
  [
    Alcotest.test_case "all configurations agree" `Slow test_output_equality;
    Alcotest.test_case "gawk: bug detected by checking" `Quick
      test_gawk_bug_detected;
    Alcotest.test_case "gawk: runs correctly unchecked" `Quick
      test_gawk_runs_unchecked;
    Alcotest.test_case "gawk: fix passes checking" `Quick
      test_gawk_fix_passes_checking;
    Alcotest.test_case "gawk: bug is benign" `Quick test_gawk_outputs_agree;
    Alcotest.test_case "gs: checking finds nothing" `Quick
      test_gs_checking_clean;
    Alcotest.test_case "cordtest: checking passes" `Quick
      test_cordtest_checking_clean;
    Alcotest.test_case "workloads allocate heavily" `Quick
      test_workloads_allocate;
    Alcotest.test_case "collector reclaims garbage" `Quick
      test_collections_reclaim;
  ]
