(* The page-segregated bump nursery: bump allocation, cohort promotion,
   reclaim-pool recycling with card hygiene, age hygiene across
   free/realloc, straddling-store remembered-set completeness, and
   qcheck invariants over random scripts and nursery sizes. *)

open Gcheap

let nursery_heap ?(nursery_pages = 8) ?(minor_threshold = 1024)
    ?(gc_threshold = 64 * 1024) () =
  let config = Heap.default_config () in
  config.Heap.generational <- true;
  config.Heap.minor_threshold <- minor_threshold;
  config.Heap.gc_threshold <- gc_threshold;
  config.Heap.nursery_pages <- nursery_pages;
  Heap.create ~config ()

let page_of a = a lsr Mem.page_bits

(* The card table grows lazily with the first real barrier hit; tests
   that poke stale bytes in directly must grow it the same way. *)
let set_card h p =
  if p >= Bytes.length h.Heap.dirty then begin
    let grown = Bytes.make (p + 1) '\000' in
    Bytes.blit h.Heap.dirty 0 grown 0 (Bytes.length h.Heap.dirty);
    h.Heap.dirty <- grown
  end;
  Bytes.set h.Heap.dirty p '\001'

let card h p =
  if p < Bytes.length h.Heap.dirty then Bytes.get h.Heap.dirty p else '\000'

let promote h obj =
  ignore (Heap.collect ~generation:Heap.Minor ~extra_roots:[ obj ] h);
  ignore (Heap.collect ~generation:Heap.Minor ~extra_roots:[ obj ] h);
  Alcotest.(check bool)
    "promoted" true
    (match Heap.slot_age h obj with Some a -> a >= 2 | None -> false)

let no_violations name h =
  Alcotest.(check int) name 0 (List.length (Heap.check_integrity h))

(* --- bump allocation -------------------------------------------------- *)

let test_bump_allocation () =
  let h = nursery_heap () in
  Alcotest.(check bool) "nursery enabled" true (Heap.nursery_enabled h);
  let a = Heap.alloc h 32 in
  let sz =
    match Heap.extent_of h a with
    | Some (_, sz) -> sz
    | None -> Alcotest.fail "no extent"
  in
  let b = Heap.alloc h 32 in
  Alcotest.(check int) "bump: adjacent slots" (a + sz) b;
  Alcotest.(check int) "same nursery page" (page_of a) (page_of b);
  (match Page_map.find h.Heap.map a with
  | Some blk ->
      Alcotest.(check bool) "block is young" true blk.Block.blk_young;
      Alcotest.(check bool) "bump cursor advanced" true
        (blk.Block.blk_bump >= 2 && blk.Block.blk_bump <= blk.Block.blk_count)
  | None -> Alcotest.fail "nursery page unmapped");
  Alcotest.(check bool) "fresh slots zeroed" true
    (Mem.load_word h.Heap.mem b = 0);
  no_violations "integrity clean" h

let test_nursery_occupancy_triggers_minor () =
  (* the minor trigger fires on nursery occupancy even before the
     allocation-volume threshold *)
  let h = nursery_heap ~nursery_pages:2 ~minor_threshold:max_int () in
  Alcotest.(check bool) "no minor due yet" false (Heap.should_collect_minor h);
  let filled = ref false in
  (* two pages of 64-byte slots is well under minor_threshold bytes *)
  for _ = 1 to (2 * Mem.page_size / 64) + 1 do
    ignore (Heap.alloc h 32);
    if Heap.should_collect_minor h then filled := true
  done;
  Alcotest.(check bool) "nursery occupancy demands a minor" true !filled;
  ignore (Heap.collect ~generation:Heap.Minor h);
  Alcotest.(check bool) "trigger resets after the minor" false
    (Heap.should_collect_minor h)

(* --- cohort promotion ------------------------------------------------- *)

let test_promotion_preserves_bytes () =
  let h = nursery_heap () in
  let o = Heap.alloc h 48 in
  for i = 0 to 47 do
    Mem.store h.Heap.mem ~width:1 (o + i) ((i * 7) land 0xff)
  done;
  promote h o;
  (match Page_map.find h.Heap.map o with
  | Some blk ->
      Alcotest.(check bool) "promoted in place: block no longer young" false
        blk.Block.blk_young
  | None -> Alcotest.fail "promoted page unmapped");
  for i = 0 to 47 do
    Alcotest.(check int)
      (Printf.sprintf "byte %d survives promotion" i)
      ((i * 7) land 0xff)
      (Mem.load h.Heap.mem ~width:1 (o + i) land 0xff)
  done;
  no_violations "integrity clean" h

let test_dead_nursery_page_emptied_by_minor () =
  let h = nursery_heap () in
  let y = Heap.alloc h 32 in
  let p = page_of y in
  ignore (Heap.collect ~generation:Heap.Minor h);
  Alcotest.(check bool) "dead young object reclaimed" false
    (Heap.valid_access h y 32);
  Alcotest.(check (list reject)) "no young blocks left" []
    (List.map (fun _ -> ()) h.Heap.young_blocks);
  Alcotest.(check bool) "page left the page map" true
    (Page_map.find h.Heap.map (p lsl Mem.page_bits) = None)

(* --- satellite: card hygiene across retire and reuse ------------------- *)

let test_retired_page_cards_clean () =
  let h = nursery_heap () in
  let y = Heap.alloc h 32 in
  let p = page_of y in
  (* simulate a stale dirty card left behind by a previous tenant *)
  set_card h p;
  ignore (Heap.collect ~generation:Heap.Minor h);
  let in_pool =
    List.exists
      (fun (s, n) -> p >= page_of s && p < page_of s + n)
      h.Heap.free_pages
  in
  Alcotest.(check bool) "dead nursery page joins the reclaim pool" true
    in_pool;
  Alcotest.(check char) "retiring the run wipes its card" '\000' (card h p);
  (* reuse: dirty the pooled page again, then allocate — the page must
     come back from the pool with a clean card (defense in depth) *)
  set_card h p;
  let y2 = Heap.alloc h 32 in
  Alcotest.(check int) "pool run reused for the next nursery page" p
    (page_of y2);
  Alcotest.(check char) "reused page is not born dirty" '\000' (card h p);
  no_violations "integrity clean" h

(* --- satellite: age hygiene across free/realloc ------------------------ *)

let test_age_resets_on_realloc () =
  let h = nursery_heap () in
  let o = Heap.alloc h 32 in
  promote h o;
  (* drop the root: a full collection frees the promoted slot onto its
     old block's free list *)
  ignore (Heap.collect h);
  let realloc () =
    let rec go n =
      if n > 20_000 then Alcotest.fail "freed slot never reused"
      else
        let a = Heap.alloc h 32 in
        if a = o then a else go (n + 1)
    in
    go 0
  in
  let a = realloc () in
  Alcotest.(check (option int)) "reallocated slot is born young" (Some 0)
    (Heap.slot_age h a);
  (* young means mortal: a rootless minor must reclaim it — a stale age
     byte would make it old and leak it instead *)
  ignore (Heap.collect ~generation:Heap.Minor h);
  Alcotest.(check bool) "reused slot dies in a minor like any young object"
    false (Heap.valid_access h a 32);
  (* and young means a full apprenticeship: the slot must survive
     promote_after minors before being promoted again *)
  let b = realloc () in
  ignore (Heap.collect ~generation:Heap.Minor ~extra_roots:[ b ] h);
  Alcotest.(check (option int)) "ages by one, not instantly old" (Some 1)
    (Heap.slot_age h b);
  ignore (Heap.collect ~generation:Heap.Minor ~extra_roots:[ b ] h);
  Alcotest.(check (option int)) "promoted only after both minors" (Some 2)
    (Heap.slot_age h b);
  no_violations "integrity clean" h

(* --- satellite: straddling stores -------------------------------------- *)

(* One store covering a multi-page old object: every touched page's card
   must go dirty, in particular the last page — where the only
   old-to-young pointer lives. *)
let straddling_store_scenario nursery_pages =
  let h = nursery_heap ~nursery_pages () in
  let o = Heap.alloc h (3 * Mem.page_size) in
  let base, sz =
    match Heap.extent_of h o with
    | Some e -> e
    | None -> Alcotest.fail "no extent"
  in
  promote h o;
  let y = Heap.alloc h 24 in
  (* the pointer sits in the object's final word, pages away from its
     head *)
  let addr = base + sz - 8 in
  Alcotest.(check bool) "pointer word is on a later page" true
    (page_of addr > page_of base);
  Mem.store_word h.Heap.mem addr y;
  (* the barrier reports one store spanning the whole object *)
  Heap.note_store h base sz;
  Alcotest.(check bool) "last page's card is dirty" true
    (Heap.page_is_dirty h addr);
  no_violations "remembered set complete after the straddling store" h;
  (* rootless minor: only the last page's card keeps the young target *)
  ignore (Heap.collect ~generation:Heap.Minor h);
  Alcotest.(check bool) "young target survives via the last page's card"
    true
    (Heap.valid_access h y 24);
  no_violations "integrity clean after the minor" h

let test_straddling_store_nursery () = straddling_store_scenario 8

let test_straddling_store_legacy () = straddling_store_scenario 0

(* --- qcheck invariants ------------------------------------------------- *)

(* Random scripts over random nursery sizes: the nursery's structural
   invariants hold throughout (via the sanitizer's nursery rules), and
   the final live set matches a stop-the-world heap running the same
   script — bump allocation and cohort promotion are pure policy. *)
let prop_nursery_equivalence =
  QCheck.Test.make ~count:40
    ~name:"nursery scripts: invariants hold and stw live set is preserved"
    QCheck.(
      pair (int_bound 4)
        (list_of_size Gen.(int_range 1 80)
           (triple (int_range 1 300) bool bool)))
    (fun (nursery_pages, spec) ->
      let run heap generational =
        let keep = ref [] in
        List.iter
          (fun (n, k, m) ->
            let a = Heap.alloc heap n in
            if k then keep := a :: !keep;
            if generational && m then
              ignore
                (Heap.collect ~generation:Heap.Minor ~extra_roots:!keep heap))
          spec;
        ignore (Heap.collect ~extra_roots:!keep heap);
        Heap.live_summary heap
      in
      let gen_h = nursery_heap ~nursery_pages () in
      let gen_live = run gen_h true in
      (match Heap.check_integrity gen_h with
      | [] -> ()
      | vs ->
          QCheck.Test.fail_reportf "nursery heap integrity: %s"
            (String.concat "; "
               (List.map
                  (fun v -> Format.asprintf "%a" Heap.pp_violation v)
                  vs)));
      List.iter
        (fun (blk : Block.t) ->
          if not blk.Block.blk_young then
            QCheck.Test.fail_reportf "stale non-young block in young set";
          if blk.Block.blk_bump < 0 || blk.Block.blk_bump > blk.Block.blk_count
          then
            QCheck.Test.fail_reportf "bump cursor %d outside [0, %d]"
              blk.Block.blk_bump blk.Block.blk_count)
        gen_h.Heap.young_blocks;
      gen_live = run (Heap.create ()) false)

let suite =
  [
    Alcotest.test_case "bump allocation fills a shared young page" `Quick
      test_bump_allocation;
    Alcotest.test_case "nursery occupancy triggers a minor" `Quick
      test_nursery_occupancy_triggers_minor;
    Alcotest.test_case "in-place promotion preserves object bytes" `Quick
      test_promotion_preserves_bytes;
    Alcotest.test_case "minor retires wholly-dead nursery pages" `Quick
      test_dead_nursery_page_emptied_by_minor;
    Alcotest.test_case "cards wiped on page retire and reuse" `Quick
      test_retired_page_cards_clean;
    Alcotest.test_case "age restarts at zero across free/realloc" `Quick
      test_age_resets_on_realloc;
    Alcotest.test_case "straddling store dirties the last page (nursery)"
      `Quick test_straddling_store_nursery;
    Alcotest.test_case "straddling store dirties the last page (legacy)"
      `Quick test_straddling_store_legacy;
    QCheck_alcotest.to_alcotest prop_nursery_equivalence;
  ]
