(* The lib/analysis dataflow subsystem: CFG construction, the generic
   fixpoint solver, the three clients, and the safety of the annotation
   suppression they drive. *)

open Gcsafe
module A = Analysis
module VS = A.Dataflow.VarSet

(* parse, type-check, normalize: the pipeline state the analyses see *)
let func src name =
  let p = Csyntax.Parser.parse_program src in
  ignore (Csyntax.Typecheck.check_program p);
  let p = Normalize.norm_program p in
  let f =
    List.find_map
      (function
        | Csyntax.Ast.Gfunc f when f.Csyntax.Ast.f_name = name -> Some f
        | _ -> None)
      p.Csyntax.Ast.prog_globals
    |> Option.get
  in
  (p, f)

let global_pred (p : Csyntax.Ast.program) =
  let names =
    List.filter_map
      (function
        | Csyntax.Ast.Gvar d -> Some d.Csyntax.Ast.d_name
        | _ -> None)
      p.Csyntax.Ast.prog_globals
  in
  fun v -> List.mem v names

let summarize src name =
  let p, f = func src name in
  A.Summary.analyze ~global:(global_pred p) f

(* the points assigning to simple variable [x], in program order *)
let assigns_to cfg x =
  Array.to_list (A.Cfg.points cfg)
  |> List.filter (fun pt ->
         List.exists
           (fun (e : Csyntax.Ast.expr) ->
             match e.Csyntax.Ast.edesc with
             | Csyntax.Ast.Assign ({ Csyntax.Ast.edesc = Csyntax.Ast.Var v; _ }, _)
               ->
                 v = x
             | _ -> false)
           (A.Cfg.exprs_of pt))
  |> List.sort (fun a b -> compare a.A.Cfg.pt_id b.A.Cfg.pt_id)

(* --- CFG construction -------------------------------------------------- *)

let test_cfg_well_formed () =
  let _, f =
    func
      {|long f(long n) {
  long s = 0;
  long i;
  for (i = 0; i < n; i++) {
    if (i == 3) continue;
    if (i == 7) break;
    s = s + i;
  }
  while (n--) s++;
  do s--; while (s > 100);
  return s;
}|}
      "f"
  in
  let cfg = A.Cfg.build f in
  let pts = A.Cfg.points cfg in
  Array.iter
    (fun (p : A.Cfg.point) ->
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (Printf.sprintf "edge %d->%d has matching pred" p.A.Cfg.pt_id s)
            true
            (List.mem p.A.Cfg.pt_id pts.(s).A.Cfg.pt_pred))
        p.A.Cfg.pt_succ)
    pts;
  Alcotest.(check (list int))
    "entry has no predecessors" []
    pts.(A.Cfg.entry cfg).A.Cfg.pt_pred;
  Alcotest.(check (list int))
    "exit has no successors" []
    pts.(A.Cfg.exit_ cfg).A.Cfg.pt_succ;
  (* everything is reachable from entry in this function *)
  let seen = Array.make (Array.length pts) false in
  let rec go i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter go pts.(i).A.Cfg.pt_succ
    end
  in
  go (A.Cfg.entry cfg);
  Array.iteri
    (fun i r ->
      Alcotest.(check bool) (Printf.sprintf "point %d reachable" i) true r)
    seen;
  (* the three loop heads each have a back edge: some point has >= 2 preds *)
  let joins =
    Array.to_list pts
    |> List.filter (fun (p : A.Cfg.point) ->
           List.length p.A.Cfg.pt_pred >= 2)
  in
  Alcotest.(check bool) "merge points exist" true (List.length joins >= 3)

(* --- the generic solver ------------------------------------------------ *)

module Solve = A.Dataflow.Make (A.Dataflow.SetDomain)

let test_solver_forward_defined () =
  (* forward "may be assigned" over the powerset lattice *)
  let _, f =
    func
      {|long f(long n) {
  long a;
  long b;
  a = 1;
  if (n) b = 2; else b = 3;
  while (n--) a = a + b;
  return a + b;
}|}
      "f"
  in
  let cfg = A.Cfg.build f in
  let transfer pt s =
    List.fold_left (fun s (x, _) -> VS.add x s) s (A.Ptr_live.defs_of pt)
  in
  let r =
    Solve.solve ~dir:A.Dataflow.Forward ~boundary:(VS.singleton "n") ~transfer
      cfg
  in
  let exit_in = r.Solve.df_input.(A.Cfg.exit_ cfg) in
  Alcotest.(check bool) "exit reached" true
    r.Solve.df_reached.(A.Cfg.exit_ cfg);
  List.iter
    (fun v ->
      Alcotest.(check bool) (v ^ " defined at exit") true (VS.mem v exit_in))
    [ "a"; "b"; "n" ]

let test_solver_unreachable_stays_bottom () =
  let _, f = func "long f(long n) { return n; n = n + 1; return n; }" "f" in
  let cfg = A.Cfg.build f in
  let transfer pt s =
    List.fold_left (fun s (x, _) -> VS.add x s) s (A.Ptr_live.defs_of pt)
  in
  let r =
    Solve.solve ~dir:A.Dataflow.Forward ~boundary:VS.empty ~transfer cfg
  in
  match assigns_to cfg "n" with
  | [ dead ] ->
      Alcotest.(check bool) "dead point unreached" false
        r.Solve.df_reached.(dead.A.Cfg.pt_id);
      Alcotest.(check bool) "dead point keeps bottom" true
        (VS.is_empty r.Solve.df_output.(dead.A.Cfg.pt_id))
  | l -> Alcotest.failf "expected 1 assignment to n, got %d" (List.length l)

(* --- the escape client ------------------------------------------------- *)

let test_escape_address_taken () =
  let p, f =
    func
      {|void sink(long **pp);
long f(long *p, long n) {
  long arr[4];
  long *q;
  long *r;
  q = &arr[1];
  r = &p[2];
  sink(&q);
  return *q + *r + n;
}|}
      "f"
  in
  let esc = A.Escape.analyze ~global:(global_pred p) f in
  Alcotest.(check bool) "&arr[i] takes arr's address" true
    (A.Escape.address_taken esc "arr");
  Alcotest.(check bool) "&p[i] addresses p's target, not p" false
    (A.Escape.address_taken esc "p");
  Alcotest.(check bool) "&q escapes q" true (A.Escape.escapes esc "q");
  Alcotest.(check bool) "r never escapes" false (A.Escape.escapes esc "r");
  Alcotest.(check bool) "p is a parameter" true (A.Escape.is_param esc "p")

(* --- the flow-sensitive heapness client -------------------------------- *)

let heapflow_src =
  {|char f(void) {
  char buf[8];
  char *p;
  char r;
  p = buf;
  r = p[1];
  p = (char *)malloc(8);
  r = r + p[1];
  return r;
}|}

let test_heapflow_retargeting () =
  (* the paper-table case the flow-insensitive verdict cannot split: one
     cursor, stack then heap *)
  let sum = summarize heapflow_src "f" in
  let cfg = A.Heapflow.cfg (A.Summary.heapflow sum) in
  match assigns_to cfg "r" with
  | [ stack_load; heap_load ] ->
      Alcotest.(check bool) "not heapy while walking the local buffer" false
        (A.Summary.may_be_heap sum (Some stack_load) "p");
      Alcotest.(check bool) "heapy after retargeting at malloc" true
        (A.Summary.may_be_heap sum (Some heap_load) "p")
  | l -> Alcotest.failf "expected 2 assignments to r, got %d" (List.length l)

let test_heapflow_conservative_defaults () =
  let sum = summarize heapflow_src "f" in
  Alcotest.(check bool) "unknown point is heapy" true
    (A.Summary.may_be_heap sum None "p");
  Alcotest.(check bool) "unknown variable is heapy" true
    (A.Summary.may_be_heap sum None "not_a_var")

(* --- the liveness client ----------------------------------------------- *)

let test_ptr_live_across_deref () =
  let _, f =
    func
      "long f(long *p, long n) { long s; s = *p; p = p + 1; s = s + *p; return s; }"
      "f"
  in
  let cfg = A.Cfg.build f in
  let live = A.Ptr_live.analyze ~cfg f in
  match assigns_to cfg "s" with
  | [ first; second ] ->
      Alcotest.(check bool) "p live across the first load" true
        (VS.mem "p" (A.Ptr_live.live_out live first));
      Alcotest.(check bool) "p dead after its last load" false
        (VS.mem "p" (A.Ptr_live.live_out live second))
  | l -> Alcotest.failf "expected 2 assignments to s, got %d" (List.length l)

let test_live_across_requires_self_advance () =
  let src =
    {|char *g;
char f(char *p) {
  char c;
  c = *p;
  p = g;
  c = c + *p;
  return c;
}|}
  in
  let sum = summarize src "f" in
  let cfg = A.Heapflow.cfg (A.Summary.heapflow sum) in
  match assigns_to cfg "p" with
  | [ retarget ] ->
      (* [p = g] is not an advance within p's object: were a KEEP_LIVE
         site on this statement suppressed, nothing would root the old
         object while the statement still evaluates *)
      Alcotest.(check bool) "retargeting definition blocks live_across"
        false
        (A.Summary.live_across sum (Some retarget) "p")
  | l -> Alcotest.failf "expected 1 assignment to p, got %d" (List.length l)

(* --- suppression through Annotate -------------------------------------- *)

let annotate_with analysis src =
  let ast = Csyntax.Parser.parse_program src in
  let opts = { (Mode.default Mode.Safe) with Mode.analysis } in
  Annotate.run ~opts ast

let reason_count r reason =
  List.assoc reason r.Annotate.stats.Annotate.st_by_reason

let printed r = Csyntax.Pretty.program_to_string r.Annotate.program

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec loop i =
    i + ln <= lh && (String.sub hay i ln = needle || loop (i + 1))
  in
  ln = 0 || loop 0

let test_suppression_flow_heap () =
  let r = annotate_with Mode.A_flow heapflow_src in
  Alcotest.(check bool) "the stack-phase load is suppressed" true
    (reason_count r Annotate.S_flow_heap >= 1);
  Alcotest.(check bool) "the heap-phase load stays wrapped" true
    (contains (printed r) "KEEP_LIVE");
  let none = annotate_with Mode.A_none heapflow_src in
  Alcotest.(check bool) "flow inserts strictly less" true
    (r.Annotate.keep_live_count < none.Annotate.keep_live_count)

let test_suppression_live_stores () =
  (* initializing stores through a pointer that stays live: the pointer
     roots its object itself *)
  let src =
    {|struct s { long a; long b; };
long f(void) {
  struct s *c = (struct s *)malloc(16);
  c->a = 1;
  c->b = 2;
  return c->a + c->b;
}|}
  in
  let r = annotate_with Mode.A_flow src in
  Alcotest.(check bool) "the initializing stores are suppressed" true
    (reason_count r Annotate.S_live >= 2);
  List.iter
    (fun s ->
      Alcotest.(check string) "suppressed base is c" "c"
        s.Annotate.sup_base)
    r.Annotate.stats.Annotate.st_suppressions

let test_suppression_self_advance () =
  (* the cursor roots its object itself: live across the advance, and
     the advance only moves it within the object *)
  let src =
    {|long f(char *p, long n) {
  long s = 0;
  while (n--) {
    s = s + *p;
    p++;
  }
  return s;
}|}
  in
  let r = annotate_with Mode.A_flow src in
  let none = annotate_with Mode.A_none src in
  Alcotest.(check bool) "self-advancing cursor suppressed" true
    (reason_count r Annotate.S_live >= 1);
  Alcotest.(check bool) "the paper's algorithm annotates it" true
    (none.Annotate.keep_live_count > r.Annotate.keep_live_count)

let test_escape_blocks_suppression () =
  (* same store pattern as above, but &c escapes: the callee may
     retarget c through memory, so every site stays wrapped *)
  let src =
    {|struct s { long a; long b; };
void taint(struct s **pc);
long f(void) {
  struct s *c = (struct s *)malloc(16);
  taint(&c);
  c->a = 1;
  c->b = 2;
  return c->a + c->b;
}|}
  in
  let r = annotate_with Mode.A_flow src in
  let none = annotate_with Mode.A_none src in
  Alcotest.(check int) "no liveness suppression on escaping c" 0
    (reason_count r Annotate.S_live);
  Alcotest.(check int) "every site stays wrapped"
    none.Annotate.keep_live_count r.Annotate.keep_live_count;
  Alcotest.(check bool) "the stores stay wrapped" true
    (contains (printed r) "KEEP_LIVE(&c->a, c)")

(* --- the ablation on the paper's workloads ----------------------------- *)

let test_workload_counts_reduced () =
  let reduced =
    List.filter
      (fun w ->
        let src = w.Workloads.Registry.w_source in
        let flow = (annotate_with Mode.A_flow src).Annotate.keep_live_count in
        let none = (annotate_with Mode.A_none src).Annotate.keep_live_count in
        flow < none)
      Workloads.Registry.paper_suite
  in
  Alcotest.(check bool)
    "flow strictly reduces annotations on at least 3 of 4 workloads" true
    (List.length reduced >= 3)

let cycles = function
  | Harness.Measure.Ran r -> r.Harness.Measure.o_cycles
  | o -> Alcotest.failf "workload failed: %s" (Harness.Measure.describe o)

let test_workload_cycles_reduced () =
  List.iter
    (fun w ->
      let src = w.Workloads.Registry.w_source in
      let run analysis =
        let req =
          Harness.Request.make ~config:Harness.Build.Safe ~analysis src
        in
        let b =
          Harness.Build.compile
            ~options:(Harness.Request.build_options req)
            Harness.Build.Safe src
        in
        cycles (Harness.Measure.exec req b)
      in
      Alcotest.(check bool)
        (w.Workloads.Registry.w_name ^ ": -O safe cheaper with analysis")
        true
        (run Mode.A_flow < run Mode.A_none))
    [ Workloads.Registry.cordtest; Workloads.Registry.cfrac ]

(* --- qcheck: analysis-pruned == fully annotated under injected GC ------ *)

let build_safe analysis src =
  Harness.Build.compile
    ~options:{ Harness.Build.default with Harness.Build.analysis }
    Harness.Build.Safe src

let observe b schedule =
  Harness.Differ.obs_of_outcome
    (Harness.Measure.exec
       (Harness.Request.make ~schedule ~check_integrity:true
          ~final_collect:true "")
       b)

(* every single-collection-point schedule when the program is small,
   evenly sampled single points otherwise, plus dense periodic and
   at-allocation schedules *)
let schedules_for instrs =
  let singles =
    if instrs <= 120 then List.init instrs (fun k -> [ k + 1 ])
    else
      List.init 40 (fun k -> [ 1 + (k * instrs / 40) ])
  in
  List.map Machine.Schedule.at_list singles
  @ [ Machine.Schedule.Every 1; Machine.Schedule.Every 7;
      Machine.Schedule.At_allocs ]

let prop_analysis_differential =
  QCheck.Test.make ~count:12
    ~name:"random programs: analysis-pruned == fully annotated, all schedules"
    Testgen.arbitrary_program
    (fun src ->
      let bn = build_safe Mode.A_none src in
      let bf = build_safe Mode.A_flow src in
      let instrs =
        match observe bn Machine.Schedule.Auto with
        | Harness.Differ.Obs_ok { ok_instrs; _ } -> ok_instrs
        | _ -> 0
      in
      List.for_all
        (fun schedule ->
          let on = observe bn schedule in
          let of_ = observe bf schedule in
          (* no premature reclamation in either build, and behaviourally
             identical observations *)
          Harness.Differ.classify on <> Harness.Diagnostics.Corruption
          && Harness.Differ.classify of_ <> Harness.Diagnostics.Corruption
          && Harness.Differ.diff ~reference:on of_ = None)
        (schedules_for instrs))

let prop_flow_never_inserts_more =
  QCheck.Test.make ~count:50
    ~name:"random programs: flow analysis only removes annotations"
    Testgen.arbitrary_program
    (fun src ->
      (annotate_with Mode.A_flow src).Annotate.keep_live_count
      <= (annotate_with Mode.A_none src).Annotate.keep_live_count)

let suite =
  [
    Alcotest.test_case "cfg: well-formed, all constructs" `Quick
      test_cfg_well_formed;
    Alcotest.test_case "solver: forward fixpoint" `Quick
      test_solver_forward_defined;
    Alcotest.test_case "solver: unreachable stays bottom" `Quick
      test_solver_unreachable_stays_bottom;
    Alcotest.test_case "escape: address-taken walk" `Quick
      test_escape_address_taken;
    Alcotest.test_case "heapflow: stack-then-heap retargeting" `Quick
      test_heapflow_retargeting;
    Alcotest.test_case "heapflow: conservative defaults" `Quick
      test_heapflow_conservative_defaults;
    Alcotest.test_case "liveness: live across a dereference" `Quick
      test_ptr_live_across_deref;
    Alcotest.test_case "liveness: retargeting blocks live_across" `Quick
      test_live_across_requires_self_advance;
    Alcotest.test_case "suppression: flow-heap reason" `Quick
      test_suppression_flow_heap;
    Alcotest.test_case "suppression: live base roots its stores" `Quick
      test_suppression_live_stores;
    Alcotest.test_case "suppression: self-advancing cursor" `Quick
      test_suppression_self_advance;
    Alcotest.test_case "suppression: escape blocks it" `Quick
      test_escape_blocks_suppression;
    Alcotest.test_case "workloads: annotation counts reduced" `Quick
      test_workload_counts_reduced;
    Alcotest.test_case "workloads: safe cycles reduced" `Quick
      test_workload_cycles_reduced;
    QCheck_alcotest.to_alcotest prop_analysis_differential;
    QCheck_alcotest.to_alcotest prop_flow_never_inserts_more;
  ]
