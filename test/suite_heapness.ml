(* Heapness analysis tests: annotations drop only where heap pointers are
   provably absent. *)

open Gcsafe

let annotate ?(heapness = true) src =
  let ast = Csyntax.Parser.parse_program src in
  let opts =
    { (Mode.default Mode.Safe) with Mode.heapness_analysis = heapness }
  in
  Annotate.run ~opts ast

let count ?heapness src = (annotate ?heapness src).Annotate.keep_live_count

let printed src =
  Csyntax.Pretty.program_to_string (annotate src).Annotate.program

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec loop i = i + ln <= lh && (String.sub hay i ln = needle || loop (i + 1)) in
  ln = 0 || loop 0

let test_stack_walker_clean () =
  let src =
    {|long f(void) {
  char buf[64];
  char *p = buf;
  long n = 0;
  while (p < buf + 63) { *p = 'x'; p++; n++; }
  return n;
}|}
  in
  Alcotest.(check int) "no annotations" 0 (count src);
  Alcotest.(check bool) "without analysis there are some" true
    (count ~heapness:false src > 0)

let test_heap_walker_kept () =
  let src =
    {|long f(void) {
  char *buf = (char *)malloc(64);
  char *p = buf;
  long n = 0;
  while (p < buf + 63) { *p = 'y'; p++; n++; }
  return n;
}|}
  in
  Alcotest.(check int) "annotations preserved" (count ~heapness:false src)
    (count src)

let test_params_are_heapy () =
  (* callers may pass heap pointers *)
  let src = "char f(char *x) { return x[1]; }" in
  Alcotest.(check bool) "parameter access stays wrapped" true
    (contains (printed src) "KEEP_LIVE(&x[1], x)")

let test_globals_are_heapy () =
  let src =
    "char *g; char f(void) { char *p = g; return p[3]; }"
  in
  Alcotest.(check bool) "global-derived pointer stays wrapped" true
    (contains (printed src) "KEEP_LIVE")

let test_address_taken_is_heapy () =
  (* a variable whose address escapes can be overwritten with anything *)
  let src =
    {|void fill(char **out);
char f(void) {
  char buf[8];
  char *p = buf;
  fill(&p);
  return p[2];
}|}
  in
  Alcotest.(check bool) "address-taken variable stays wrapped" true
    (contains (printed src) "KEEP_LIVE")

let test_copy_chain_fixpoint () =
  (* heapness flows backwards through copies discovered later: q heapy via
     a later assignment, p = q earlier in the text *)
  let src =
    {|char f(void) {
  char *p;
  char *q;
  char buf[8];
  q = buf;
  p = q;
  q = (char *)malloc(8);
  p = q;           /* p now heapy through the copy */
  return p[1];
}|}
  in
  Alcotest.(check bool) "copy of heapy var stays wrapped" true
    (contains (printed src) "KEEP_LIVE")

let test_loads_are_heapy () =
  let src =
    {|struct s { char *ptr; };
char f(struct s *v) {
  char *p = v->ptr;
  return p[1];
}|}
  in
  Alcotest.(check bool) "loaded pointer stays wrapped" true
    (contains (printed src) "p[1], p")

let test_conditional_mix () =
  (* one branch heap, one stack: the variable is heapy *)
  let src =
    {|char f(int c) {
  char buf[8];
  char *p = c ? buf : (char *)malloc(8);
  return p[1];
}|}
  in
  Alcotest.(check bool) "mixed conditional stays wrapped" true
    (contains (printed src) "KEEP_LIVE")

let test_semantics_preserved () =
  let src =
    {|long stackw(void) {
  char buf[64];
  char *p = buf;
  long n = 0;
  while (p < buf + 63) { *p = 'x'; p++; n++; }
  return n;
}
int main(void) {
  char *h = (char *)malloc(16);
  char *q = h;
  int i;
  for (i = 0; i < 15; i++) *q++ = 'a' + i;
  *q = 0;
  printf("%ld %s\n", stackw(), h);
  return 0;
}|}
  in
  let run program =
    let irp = Ir.Compile.compile_program ~mode:Ir.Compile.opt_mode program in
    ignore (Opt.Pipeline.run_program Opt.Pipeline.default irp);
    let config =
      { (Machine.Vm.default_config ()) with Machine.Vm.vm_gc_schedule = Machine.Schedule.Every 7 }
    in
    (Machine.Vm.run ~config irp).Machine.Vm.r_output
  in
  let base =
    let ast, _ = Csyntax.Typecheck.check_source src in
    let irp = Ir.Compile.compile_program ~mode:Ir.Compile.opt_mode ast in
    ignore (Opt.Pipeline.run_program Opt.Pipeline.default irp);
    (Machine.Vm.run irp).Machine.Vm.r_output
  in
  Alcotest.(check string) "heapness-annotated code correct under async GC"
    base
    (run (annotate src).Annotate.program)

let test_mutual_recursion_heap_kept () =
  (* a heap list walked by two mutually recursive functions: the verdict
     must stay heapy across both, through parameters *)
  let src =
    {|struct node { struct node *next; long v; };
long len_a(struct node *p);
long len_b(struct node *p) {
  if (!p) return 0;
  return 1 + len_a(p->next);
}
long len_a(struct node *p) {
  if (!p) return 0;
  return 1 + len_b(p->next);
}|}
  in
  Alcotest.(check int) "both walkers stay annotated"
    (count ~heapness:false src) (count src)

let test_mutual_recursion_stack_clean () =
  (* mutually recursive functions whose pointers only ever address their
     own frames: nothing to keep live *)
  let src =
    {|long f(long n);
long g(long n) {
  char buf[4];
  char *p = buf;
  *p = 1;
  if (n) return f(n - 1);
  return *p;
}
long f(long n) {
  char buf[4];
  char *q = buf;
  *q = 2;
  if (n) return g(n - 1);
  return *q;
}|}
  in
  Alcotest.(check int) "no annotations in either function" 0 (count src)

let test_struct_field_heap_pointer () =
  (* a pointer loaded from a struct field may address the heap even when
     the struct itself lives on the stack *)
  let src =
    {|struct s { char *ptr; };
char f(void) {
  struct s v;
  char *p;
  v.ptr = (char *)malloc(8);
  p = v.ptr;
  return p[1];
}|}
  in
  Alcotest.(check bool) "field-loaded pointer stays wrapped" true
    (contains (printed src) "KEEP_LIVE")

let test_struct_field_stays_conservative () =
  (* field contents are not tracked per-field: even a field holding a
     stack pointer keeps its loads annotated *)
  let src =
    {|struct s { char *ptr; };
char f(void) {
  char buf[8];
  struct s v;
  char *p;
  v.ptr = buf;
  p = v.ptr;
  return p[1];
}|}
  in
  Alcotest.(check bool) "loads through fields stay wrapped" true
    (contains (printed src) "KEEP_LIVE")

let test_workload_counts_not_increased () =
  List.iter
    (fun w ->
      let src = w.Workloads.Registry.w_source in
      Alcotest.(check bool)
        (w.Workloads.Registry.w_name ^ " analysis only removes")
        true
        (count src <= count ~heapness:false src))
    Workloads.Registry.paper_suite

let suite =
  [
    Alcotest.test_case "stack walker unannotated" `Quick
      test_stack_walker_clean;
    Alcotest.test_case "heap walker annotated" `Quick test_heap_walker_kept;
    Alcotest.test_case "parameters heapy" `Quick test_params_are_heapy;
    Alcotest.test_case "globals heapy" `Quick test_globals_are_heapy;
    Alcotest.test_case "address-taken heapy" `Quick
      test_address_taken_is_heapy;
    Alcotest.test_case "copy-chain fixpoint" `Quick test_copy_chain_fixpoint;
    Alcotest.test_case "memory loads heapy" `Quick test_loads_are_heapy;
    Alcotest.test_case "conditional mix heapy" `Quick test_conditional_mix;
    Alcotest.test_case "mutual recursion: heap list annotated" `Quick
      test_mutual_recursion_heap_kept;
    Alcotest.test_case "mutual recursion: stack frames clean" `Quick
      test_mutual_recursion_stack_clean;
    Alcotest.test_case "struct field: heap pointer wrapped" `Quick
      test_struct_field_heap_pointer;
    Alcotest.test_case "struct field: conservative" `Quick
      test_struct_field_stays_conservative;
    Alcotest.test_case "semantics under async GC" `Quick
      test_semantics_preserved;
    Alcotest.test_case "workload counts monotone" `Quick
      test_workload_counts_not_increased;
  ]
