let () =
  Alcotest.run "gcsafe"
    [
      ("lexer", Suite_lexer.suite);
      ("parser", Suite_parser.suite);
      ("pretty", Suite_pretty.suite);
      ("ctype", Suite_ctype.suite);
      ("typecheck", Suite_typecheck.suite);
      ("base-rules", Suite_base_rules.suite);
      ("annotate", Suite_annotate.suite);
      ("c-to-c", Suite_c2c.suite);
      ("patch", Suite_patch.suite);
      ("patch-mode", Suite_patch_mode.suite);
      ("source-check", Suite_source_check.suite);
      ("mem", Suite_mem.suite);
      ("heap", Suite_heap.suite);
      ("splay", Suite_splay.suite);
      ("instr", Suite_instr.suite);
      ("liveness", Suite_liveness.suite);
      ("normalize", Suite_normalize.suite);
      ("compile-vm", Suite_compile_vm.suite);
      ("builtins", Suite_builtins.suite);
      ("opt", Suite_opt.suite);
      ("loop-opt", Suite_loopopt.suite);
      ("regalloc", Suite_regalloc.suite);
      ("peephole", Suite_peephole.suite);
      ("safety", Suite_safety.suite);
      ("extensions", Suite_extensions.suite);
      ("heapness", Suite_heapness.suite);
      ("analysis", Suite_analysis.suite);
      ("workloads", Suite_workloads.suite);
      ("harness", Suite_harness.suite);
      ("stress", Suite_stress.suite);
      ("chaos", Suite_chaos.suite);
      ("exec", Suite_exec.suite);
      ("telemetry", Suite_telemetry.suite);
      ("service", Suite_service.suite);
    ]
