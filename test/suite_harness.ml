(* Harness tests: the paper tables regenerate with the right *shape* —
   who wins, by roughly what factor, where the anomalies sit. *)

let null_fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let pct base v = 100.0 *. float_of_int (v - base) /. float_of_int base

let cell rows workload config =
  let row = List.find (fun r -> r.Harness.Tables.r_workload = workload) rows in
  let base = Harness.Measure.base_cycles_exn row.Harness.Tables.r_base in
  let c =
    List.find
      (fun c -> c.Harness.Tables.c_config = config)
      row.Harness.Tables.r_cells
  in
  match c.Harness.Tables.c_outcome with
  | Harness.Measure.Ran r -> Some (pct base r.Harness.Measure.o_cycles)
  | _ -> None

let rows_for ?suite machine =
  Harness.Tables.slowdown_table ~machine ~out:null_fmt ?suite ()

(* the full sparc10 table is expensive; compute it once for the suite *)
let sparc10_rows = lazy (rows_for Machine.Machdesc.sparc10)

let test_slowdown_shape () =
  let rows = Lazy.force sparc10_rows in
  List.iter
    (fun w ->
      let safe = cell rows w Harness.Build.Safe in
      let debug = cell rows w Harness.Build.Debug in
      let checked = cell rows w Harness.Build.Debug_checked in
      (match (safe, debug) with
      | Some s, Some d ->
          (* safe is cheap; -g costs more than safe; both positive *)
          Alcotest.(check bool) (w ^ " safe >= 0") true (s >= -1.0);
          Alcotest.(check bool) (w ^ " safe < 70%") true (s < 70.0);
          Alcotest.(check bool) (w ^ " -g > safe") true (d > s)
      | _ -> Alcotest.failf "%s: safe or -g failed" w);
      match (w, checked) with
      | "gawk", None -> () (* the paper's <fails> cell *)
      | "gawk", Some _ -> Alcotest.fail "gawk checked must fail"
      | _, Some c ->
          (* checking is expensive: around 1.5x-12x *)
          Alcotest.(check bool) (w ^ " checked > 100%") true (c > 100.0);
          Alcotest.(check bool) (w ^ " checked < 1200%") true (c < 1200.0)
      | _, None -> Alcotest.failf "%s checked failed unexpectedly" w)
    [ "cordtest"; "cfrac"; "gawk"; "gs" ]

let test_postprocessor_shape () =
  (* the postprocessor brings safe overhead to near-baseline: under 15%
     residual time and size overhead for every workload (paper: <=4% / 7%;
     our block-local patterns leave a little more on gs) *)
  let results =
    Harness.Tables.postprocessor_table ~machine:Machine.Machdesc.sparc10
      ~out:null_fmt ()
  in
  List.iter
    (fun (name, base, post, base_size, post_size) ->
      let base_cycles = Harness.Measure.base_cycles_exn base in
      (match post with
      | Harness.Measure.Ran r ->
          let t = pct base_cycles r.Harness.Measure.o_cycles in
          Alcotest.(check bool)
            (Printf.sprintf "%s residual time %.1f%% <= 15%%" name t)
            true (t <= 15.0)
      | o -> Alcotest.failf "%s: %s" name (Harness.Measure.describe o));
      let sz = pct base_size post_size in
      Alcotest.(check bool)
        (Printf.sprintf "%s residual size %.1f%% <= 15%%" name sz)
        true (sz <= 15.0))
    results

let test_size_shape () =
  let results =
    Harness.Tables.size_table ~machine:Machine.Machdesc.sparc10 ~out:null_fmt ()
  in
  List.iter
    (fun (name, base_size, sizes) ->
      let size_of config = List.assoc config sizes in
      let safe = pct base_size (size_of Harness.Build.Safe) in
      let debug = pct base_size (size_of Harness.Build.Debug) in
      let checked = pct base_size (size_of Harness.Build.Debug_checked) in
      Alcotest.(check bool) (name ^ " safe size small") true
        (safe >= 0.0 && safe < 40.0);
      Alcotest.(check bool) (name ^ " -g larger") true (debug > safe);
      Alcotest.(check bool) (name ^ " checked largest") true (checked > debug))
    results

let test_peephole_beats_plain_safe () =
  (* the postprocessor must recover a substantial part of safe overhead *)
  let src = Workloads.Registry.cordtest.Workloads.Registry.w_source in
  let cycles config =
    match Util.run_built config src with
    | Harness.Measure.Ran r -> r.Harness.Measure.o_cycles
    | o -> Alcotest.fail (Harness.Measure.describe o)
  in
  let base = cycles Harness.Build.Base in
  let safe = cycles Harness.Build.Safe in
  let peep = cycles Harness.Build.Safe_peephole in
  Alcotest.(check bool) "peephole helps" true (peep < safe);
  Alcotest.(check bool) "recovers most of the overhead" true
    (float_of_int (peep - base) < 0.4 *. float_of_int (safe - base))

let test_machines_all_run () =
  (* a one-workload column on the other two machines keeps this cheap *)
  List.iter
    (fun machine ->
      let rows =
        rows_for ~suite:[ Workloads.Registry.cfrac ] machine
      in
      Alcotest.(check int)
        (machine.Machine.Machdesc.md_name ^ " rows")
        1 (List.length rows);
      match cell rows "cfrac" Harness.Build.Safe with
      | Some s -> Alcotest.(check bool) "safe overhead sane" true (s < 60.0)
      | None -> Alcotest.fail "cfrac safe failed")
    [ Machine.Machdesc.sparc2; Machine.Machdesc.pentium90 ]

let test_keep_live_counts () =
  (* annotation density: cordtest has many pointer expressions *)
  let b =
    Harness.Build.compile Harness.Build.Safe
      Workloads.Registry.cordtest.Workloads.Registry.w_source
  in
  Alcotest.(check bool) "dozens of annotations" true
    (b.Harness.Build.b_keep_lives > 30)

let suite =
  [
    Alcotest.test_case "slowdown table shape" `Slow test_slowdown_shape;
    Alcotest.test_case "postprocessor table shape" `Slow
      test_postprocessor_shape;
    Alcotest.test_case "size table shape" `Slow test_size_shape;
    Alcotest.test_case "peephole recovers overhead" `Slow
      test_peephole_beats_plain_safe;
    Alcotest.test_case "all machines measurable" `Slow test_machines_all_run;
    Alcotest.test_case "annotation counts" `Quick test_keep_live_counts;
  ]
