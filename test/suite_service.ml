(* The service harness: canonical request keys, admission control,
   robustness identity, drain-on-shutdown, worker-count determinism and
   session-scoped telemetry. *)

module Request = Harness.Request
module Outcome = Harness.Outcome
module Gcsafed = Service.Gcsafed
module Trafficgen = Service.Trafficgen

let trivial_src = "int main(void) { return 0; }"

let tiny_config =
  {
    Gcsafed.default_config with
    Gcsafed.servers = 1;
    Gcsafed.queue_capacity = 2;
  }

let class_of c = Outcome.class_name c.Gcsafed.r_outcome

(* --- canonical keys (qcheck injectivity) ------------------------------- *)

(* cache_key must separate requests exactly when a build-relevant input
   differs: config, register count, loop heuristic, analysis, gc mode or
   source.  matrix_key is the same minus the gc mode. *)
let arb_request =
  let open QCheck in
  let sources =
    [
      trivial_src;
      "int main(void) { (void)malloc(16); return 0; }";
      "long g; int main(void) { g = 7; return 0; }";
    ]
  in
  let machines =
    [
      Machine.Machdesc.sparc2;
      Machine.Machdesc.sparc10;
      Machine.Machdesc.pentium90;
    ]
  in
  make
    ~print:(fun r -> Request.describe r ^ " " ^ Request.cache_key r)
    Gen.(
      let* source = oneofl sources in
      let* config = oneofl Harness.Build.all_configs in
      let* machine = oneofl machines in
      let* analysis = oneofl [ Gcsafe.Mode.A_flow; Gcsafe.Mode.A_none ] in
      let* gc_mode = oneofl [ Gcheap.Heap.Stw; Gcheap.Heap.Gen ] in
      let* loop_heuristic = bool in
      return
        (Request.make ~config ~machine ~analysis ~gc_mode ~loop_heuristic
           source))

let cache_proj (r : Request.t) =
  ( Harness.Build.config_id r.Request.config,
    r.Request.machine.Machine.Machdesc.md_regs,
    r.Request.loop_heuristic,
    r.Request.analysis,
    r.Request.gc_mode,
    r.Request.source )

let matrix_proj (r : Request.t) =
  ( Harness.Build.config_id r.Request.config,
    r.Request.machine.Machine.Machdesc.md_regs,
    r.Request.loop_heuristic,
    r.Request.analysis,
    r.Request.source )

let prop_key_injective =
  QCheck.Test.make ~count:500
    ~name:"cache_key/matrix_key separate exactly the build-relevant inputs"
    QCheck.(pair arb_request arb_request)
    (fun (r1, r2) ->
      (Request.cache_key r1 = Request.cache_key r2)
      = (cache_proj r1 = cache_proj r2)
      && (Request.matrix_key r1 = Request.matrix_key r2)
         = (matrix_proj r1 = matrix_proj r2))

(* --- wire format -------------------------------------------------------- *)

let test_request_json_roundtrip () =
  let stream =
    Trafficgen.generate
      {
        Trafficgen.default_spec with
        Trafficgen.g_requests = 25;
        g_seed = 11;
        g_chaos_percent = 40;
      }
  in
  List.iter
    (fun (_, r) ->
      match Request.of_json (Request.to_json r) with
      | Error e -> Alcotest.failf "%s: round-trip failed: %s" r.Request.label e
      | Ok r' ->
          Alcotest.(check string)
            (r.Request.label ^ ": json fixpoint")
            (Telemetry.Json.to_string (Request.to_json r))
            (Telemetry.Json.to_string (Request.to_json r'));
          Alcotest.(check string)
            (r.Request.label ^ ": cache key preserved")
            (Request.cache_key r) (Request.cache_key r'))
    stream

let test_of_json_rejects_garbage () =
  (match Request.of_json (Telemetry.Json.Obj []) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "sourceless request accepted");
  match
    Request.of_json
      (Telemetry.Json.Obj
         [
           ("source", Telemetry.Json.Str trivial_src);
           ("config", Telemetry.Json.Str "no-such-config");
         ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown config accepted"

(* --- outcome classification -------------------------------------------- *)

let test_execute_total_on_garbage () =
  match Outcome.execute (Request.make "int main(void) { return g") with
  | Outcome.Source_error _ as o ->
      Alcotest.(check int) "exit code 2" 2
        (Harness.Diagnostics.exit_code (Outcome.classify o))
  | o -> Alcotest.failf "expected Source_error, got %s" (Outcome.describe o)

let test_rejection_is_structured () =
  let o = Outcome.Rejected "queue full (capacity 2)" in
  Alcotest.(check string) "class" "rejected-overload" (Outcome.class_name o);
  Alcotest.(check int) "exit code 8" 8
    (Harness.Diagnostics.exit_code (Outcome.classify o))

(* --- admission control -------------------------------------------------- *)

(* one lane, a two-slot waiting room, six simultaneous arrivals: the
   first starts, two wait, three are shed — deterministically, in
   submission order *)
let test_queue_full_rejection_deterministic () =
  let t = Gcsafed.create tiny_config in
  for _ = 1 to 6 do
    Gcsafed.submit ~arrival:0 t (Request.make trivial_src)
  done;
  Gcsafed.drain t;
  let classes = List.map class_of (Gcsafed.completions t) in
  Alcotest.(check (list string))
    "first three admitted, last three shed"
    [ "ok"; "ok"; "ok"; "rejected-overload"; "rejected-overload";
      "rejected-overload" ]
    classes;
  let r = Gcsafed.report t in
  Alcotest.(check int) "admitted" 3 r.Gcsafed.rp_admitted;
  Alcotest.(check int) "rejected" 3 r.Gcsafed.rp_rejected

(* load shedding preserves the robustness identity: every submitted
   request — including malformed sources under overload — gets exactly
   one structured outcome *)
let test_shedding_preserves_identity () =
  let t = Gcsafed.create tiny_config in
  for i = 0 to 19 do
    let src = if i mod 4 = 3 then "int main(" else trivial_src in
    Gcsafed.submit ~arrival:0 t (Request.make src)
  done;
  Gcsafed.drain t;
  let cs = Gcsafed.completions t in
  Alcotest.(check int) "one completion per submission" 20 (List.length cs);
  let r = Gcsafed.report t in
  Alcotest.(check int) "submitted" 20 r.Gcsafed.rp_submitted;
  Alcotest.(check int) "admitted + rejected = submitted" 20
    (r.Gcsafed.rp_admitted + r.Gcsafed.rp_rejected);
  Alcotest.(check int) "outcome counts total = submitted" 20
    (List.fold_left (fun a (_, n) -> a + n) 0 r.Gcsafed.rp_outcomes);
  Alcotest.(check int) "nothing unexpected" 0 r.Gcsafed.rp_unexpected

let test_drain_on_shutdown () =
  let t = Gcsafed.create Gcsafed.default_config in
  for _ = 1 to 3 do
    Gcsafed.submit t (Request.make trivial_src)
  done;
  Gcsafed.shutdown t;
  Alcotest.(check bool) "shut down" true (Gcsafed.is_shut_down t);
  Alcotest.(check (list string))
    "in-flight requests completed" [ "ok"; "ok"; "ok" ]
    (List.map class_of (Gcsafed.completions t));
  Gcsafed.submit t (Request.make trivial_src);
  Alcotest.(check (list string))
    "post-shutdown submission shed, not dropped"
    [ "ok"; "ok"; "ok"; "rejected-overload" ]
    (List.map class_of (Gcsafed.completions t));
  Gcsafed.shutdown t (* idempotent *)

(* --- determinism across worker counts ----------------------------------- *)

let bomb spec jobs =
  Exec.Pool.with_pool ~jobs (fun pool ->
      let t = Gcsafed.create ~pool Gcsafed.default_config in
      List.iter
        (fun (arrival, req) -> Gcsafed.submit ~arrival t req)
        (Trafficgen.generate spec);
      Gcsafed.shutdown t;
      ( List.map class_of (Gcsafed.completions t),
        Format.asprintf "%a" Gcsafed.pp_report (Gcsafed.report t) ))

let test_jobs_identity () =
  let spec =
    {
      Trafficgen.default_spec with
      Trafficgen.g_requests = 40;
      g_seed = 5;
      g_mix = Trafficgen.Generated;
      g_chaos_percent = 25;
    }
  in
  let classes1, report1 = bomb spec 1 in
  let classes4, report4 = bomb spec 4 in
  Alcotest.(check (list string))
    "outcome class sequence identical across --jobs" classes1 classes4;
  Alcotest.(check string) "rendered report identical across --jobs" report1
    report4

(* --- traffic generation ------------------------------------------------- *)

let test_trafficgen_deterministic () =
  let spec =
    { Trafficgen.default_spec with Trafficgen.g_requests = 60; g_seed = 9 }
  in
  let sig_of (a, r) = (a, r.Request.label, Request.cache_key r) in
  Alcotest.(check bool)
    "same spec, same stream" true
    (List.map sig_of (Trafficgen.generate spec)
    = List.map sig_of (Trafficgen.generate spec));
  let arrivals = List.map fst (Trafficgen.generate spec) in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "arrivals strictly increasing" true
    (increasing arrivals)

let test_source_pool_distinct () =
  let pool = Trafficgen.source_pool ~seed:0 16 in
  Alcotest.(check int) "16 distinct programs" 16
    (List.length (List.sort_uniq compare pool))

(* a small end-to-end bombardment: everything classified, nothing
   unexpected, the build tier visible in the report *)
let test_small_bombardment () =
  let spec =
    {
      Trafficgen.default_spec with
      Trafficgen.g_requests = 50;
      g_seed = 3;
      g_mix = Trafficgen.Generated;
      g_chaos_percent = 20;
    }
  in
  let t = Gcsafed.create Gcsafed.default_config in
  List.iter
    (fun (arrival, req) -> Gcsafed.submit ~arrival t req)
    (Trafficgen.generate spec);
  Gcsafed.shutdown t;
  let r = Gcsafed.report t in
  Alcotest.(check int) "all submitted" 50 r.Gcsafed.rp_submitted;
  Alcotest.(check int) "all classified" 50
    (List.fold_left (fun a (_, n) -> a + n) 0 r.Gcsafed.rp_outcomes);
  Alcotest.(check int) "nothing unexpected" 0 r.Gcsafed.rp_unexpected;
  Alcotest.(check int) "build tier accounted" r.Gcsafed.rp_admitted
    (r.Gcsafed.rp_cache_hits + r.Gcsafed.rp_cache_misses);
  Alcotest.(check bool) "latency percentiles ordered" true
    (r.Gcsafed.rp_latency_p50 <= r.Gcsafed.rp_latency_p90
    && r.Gcsafed.rp_latency_p90 <= r.Gcsafed.rp_latency_p99);
  match
    Telemetry.Json.member "unexpected" (Gcsafed.report_to_json t)
  with
  | Some (Telemetry.Json.Int 0) -> ()
  | _ -> Alcotest.fail "report JSON must gate on unexpected = 0"

(* --- session-scoped telemetry ------------------------------------------- *)

let counter metrics name =
  match
    Telemetry.Metrics.find (Telemetry.Metrics.snapshot metrics) name
  with
  | Some (Telemetry.Metrics.Counter n) -> n
  | _ -> 0

(* two interleaved sessions must each report exactly their own traffic:
   no process-global registry, no cross-talk *)
let test_interleaved_sessions_isolated () =
  let src_a = "int main(void) { (void)malloc(64); return 0; }" in
  let src_b =
    {|int main(void) {
  long i;
  for (i = 0; i < 20; i = i + 1) (void)malloc(32);
  return 0;
}|}
  in
  let steps_of src =
    let m = Telemetry.Metrics.create () in
    (match
       Outcome.execute
         ~telemetry:(Telemetry.Sink.make ~metrics:m ())
         (Request.make src)
     with
    | Outcome.Ran _ -> ()
    | o -> Alcotest.failf "reference run failed: %s" (Outcome.describe o));
    counter m "vm/steps"
  in
  let steps_a = steps_of src_a and steps_b = steps_of src_b in
  Alcotest.(check bool) "workloads distinguishable" true (steps_a <> steps_b);
  let s1 = Gcsafed.create Gcsafed.default_config in
  let s2 = Gcsafed.create Gcsafed.default_config in
  Gcsafed.submit s1 (Request.make src_a);
  Gcsafed.submit s2 (Request.make src_b);
  Gcsafed.submit s1 (Request.make src_a);
  Gcsafed.submit s2 (Request.make src_b);
  Gcsafed.submit s2 (Request.make src_b);
  Gcsafed.drain s1;
  Gcsafed.drain s2;
  Alcotest.(check int) "session 1 counts exactly its own steps"
    (2 * steps_a)
    (counter (Gcsafed.metrics s1) "vm/steps");
  Alcotest.(check int) "session 2 counts exactly its own steps"
    (3 * steps_b)
    (counter (Gcsafed.metrics s2) "vm/steps")

(* rejected requests leave no trace in the session registry *)
let test_rejected_not_absorbed () =
  let t = Gcsafed.create tiny_config in
  for _ = 1 to 6 do
    Gcsafed.submit ~arrival:0 t (Request.make trivial_src)
  done;
  Gcsafed.drain t;
  let single =
    let m = Telemetry.Metrics.create () in
    (match
       Outcome.execute
         ~telemetry:(Telemetry.Sink.make ~metrics:m ())
         (Request.make trivial_src)
     with
    | Outcome.Ran _ -> ()
    | o -> Alcotest.failf "reference run failed: %s" (Outcome.describe o));
    counter m "vm/steps"
  in
  Alcotest.(check int) "only the three admitted runs absorbed" (3 * single)
    (counter (Gcsafed.metrics t) "vm/steps")

let suite =
  [
    QCheck_alcotest.to_alcotest prop_key_injective;
    Alcotest.test_case "request json round-trip" `Quick
      test_request_json_roundtrip;
    Alcotest.test_case "of_json rejects garbage" `Quick
      test_of_json_rejects_garbage;
    Alcotest.test_case "execute is total on parse errors" `Quick
      test_execute_total_on_garbage;
    Alcotest.test_case "rejection is structured (exit 8)" `Quick
      test_rejection_is_structured;
    Alcotest.test_case "queue-full rejection deterministic" `Quick
      test_queue_full_rejection_deterministic;
    Alcotest.test_case "load shedding preserves identity" `Quick
      test_shedding_preserves_identity;
    Alcotest.test_case "drain on shutdown" `Quick test_drain_on_shutdown;
    Alcotest.test_case "report identical across --jobs" `Quick
      test_jobs_identity;
    Alcotest.test_case "trafficgen deterministic" `Quick
      test_trafficgen_deterministic;
    Alcotest.test_case "source pool distinct" `Quick test_source_pool_distinct;
    Alcotest.test_case "small bombardment classified" `Quick
      test_small_bombardment;
    Alcotest.test_case "interleaved sessions isolated" `Quick
      test_interleaved_sessions_isolated;
    Alcotest.test_case "rejected requests not absorbed" `Quick
      test_rejected_not_absorbed;
  ]
