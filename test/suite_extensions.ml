(* Optimization (4) (collections only at call sites) and the Extensions
   section (base-pointers-only store discipline, root-only interior
   pointers). *)

open Gcsafe

let annotate ~opts src =
  let ast = Csyntax.Parser.parse_program src in
  (Annotate.run ~opts ast).Annotate.program

let compile ?(mode = Ir.Compile.opt_mode) ?(optimize = true) program =
  let irp = Ir.Compile.compile_program ~mode program in
  ignore
    (Opt.Pipeline.run_program
       { Opt.Pipeline.default with Opt.Pipeline.optimize }
       irp);
  irp

let counts src =
  let count opts =
    let ast = Csyntax.Parser.parse_program src in
    (Annotate.run ~opts ast).Annotate.keep_live_count
  in
  let base = Mode.default Mode.Safe in
  (count base, count { base with Mode.calls_only = true })

(* --- optimization (4) ------------------------------------------------- *)

let test_calls_only_reduces () =
  (* "the number of KEEP_LIVE invocations could often be reduced
     dramatically" *)
  List.iter
    (fun w ->
      let full, reduced = counts w.Workloads.Registry.w_source in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d -> %d" w.Workloads.Registry.w_name full reduced)
        true
        (reduced < full))
    Workloads.Registry.paper_suite

let test_calls_only_keeps_call_statements () =
  (* a statement containing a call keeps its annotations *)
  let src =
    "char *g(char *x); char *f(char *p) { return g(p + 1); }" in
  let opts = { (Mode.default Mode.Safe) with Mode.calls_only = true } in
  let p = annotate ~opts src in
  let printed = Csyntax.Pretty.program_to_string p in
  Alcotest.(check bool) "call argument still wrapped" true
    (let needle = "KEEP_LIVE(p + 1, p)" in
     let rec find i =
       i + String.length needle <= String.length printed
       && (String.sub printed i (String.length needle) = needle || find (i + 1))
     in
     find 0)

let test_calls_only_safe_under_call_site_gc () =
  (* the reduced annotation is safe when collections happen only at calls:
     the hazard program, annotated with calls_only, racing a call-site
     collector with the disguising optimizer on *)
  let src =
    {|long f(long i) {
  char *p = (char *)malloc(10);
  p[5] = 42;
  return p[i - 100000];
}
int main(void) { printf("v=%ld\n", f(100005)); return 0; }|}
  in
  let opts = { (Mode.default Mode.Safe) with Mode.calls_only = true } in
  let irp = compile (annotate ~opts src) in
  let config =
    {
      (Machine.Vm.default_config ()) with
      Machine.Vm.vm_gc_schedule = Machine.Schedule.Every 1;
      Machine.Vm.vm_gc_at_calls_only = true;
    }
  in
  let r = Machine.Vm.run ~config irp in
  Alcotest.(check string) "safe" "v=42\n" r.Machine.Vm.r_output

let test_calls_only_needs_its_assumption () =
  (* the same build is NOT safe under a fully asynchronous collector —
     that is exactly why the paper states it as a conditional optimization.
     The statement contains a call (malloc), so f's annotations remain and
     the hazard window stays covered; to expose the assumption, use a
     call-free arithmetic statement whose annotation was dropped. *)
  let src =
    {|long g;
long f(char *p, long i) {
  g = 0;
  return p[i - 100000];   /* call-free statement: annotation dropped */
}
int main(void) {
  char *p = (char *)malloc(10);
  p[5] = 42;
  printf("v=%ld\n", f(p, 100005));
  return 0;
}|}
  in
  (* note: p stays live in main's frame, so the object itself survives; the
     property we check here is just that annotations were dropped *)
  let full, reduced = counts src in
  Alcotest.(check bool) "dropped" true (reduced < full)

(* --- Extensions: base-only stores -------------------------------------- *)

let interior_store_src =
  {|struct holder { char *p; };
int main(void) {
  struct holder *h = (struct holder *)malloc(sizeof(struct holder));
  char *buf = (char *)malloc(32);
  h->p = buf + 4;    /* interior pointer escapes to the heap */
  printf("%c\n", h->p[-4] + 'x');
  return 0;
}|}

let base_store_src =
  {|struct holder { char *p; };
int main(void) {
  struct holder *h = (struct holder *)malloc(sizeof(struct holder));
  char *buf = (char *)malloc(32);
  h->p = buf;        /* base pointer: conforms to the discipline */
  printf("%c\n", h->p[0] + 'x');
  return 0;
}|}

let run_checked_base_stores src =
  let opts =
    { (Mode.default Mode.Checked) with Mode.check_base_stores = true }
  in
  let irp =
    compile ~mode:Ir.Compile.debug_mode ~optimize:false (annotate ~opts src)
  in
  match Machine.Vm.run irp with
  | r -> Ok r.Machine.Vm.r_output
  | exception Machine.Vm.Fault m -> Error m

let test_interior_store_detected () =
  match run_checked_base_stores interior_store_src with
  | Error m ->
      Alcotest.(check bool) "names GC_check_base" true
        (String.length m > 13 && String.sub m 0 13 = "GC_check_base")
  | Ok _ -> Alcotest.fail "interior store must be detected"

let test_base_store_clean () =
  match run_checked_base_stores base_store_src with
  | Ok out -> Alcotest.(check string) "runs" "x\n" out
  | Error m -> Alcotest.failf "flagged conforming program: %s" m

let test_local_stores_exempt () =
  (* interior pointers in local variables are fine: locals are roots *)
  let src =
    {|int main(void) {
  char *buf = (char *)malloc(32);
  char *q = buf + 7;
  buf[7] = 'y';
  printf("%c\n", *q);
  return 0;
}|}
  in
  match run_checked_base_stores src with
  | Ok out -> Alcotest.(check string) "runs" "y\n" out
  | Error m -> Alcotest.failf "flagged local interior pointer: %s" m

(* --- the Debugging section's "additional check": whole-struct extents --- *)

let test_struct_overrun_detected () =
  (* "It is currently still possible to reference or overwrite other
     memory if C structures are accessed as a whole ... This could be
     remedied at minimal cost with the insertion of an additional check."
     — the check is implemented; the classic cast-to-bigger-struct bug is
     caught at the whole-struct store. *)
  let src =
    {|struct small { long a; };
struct bigg { long a; long b; long c; long d; long e; long f; long g; long h; long i2; long j; };
int main(void) {
  struct small *s = (struct small *)malloc(sizeof(struct small));
  struct bigg v;
  v.a = 1;
  *(struct bigg *)s = v;
  return 0;
}|}
  in
  let opts = Mode.default Mode.Checked in
  let irp =
    compile ~mode:Ir.Compile.debug_mode ~optimize:false (annotate ~opts src)
  in
  match Machine.Vm.run irp with
  | exception Machine.Vm.Fault m ->
      Alcotest.(check bool) "GC_check_range fires" true
        (String.length m > 14 && String.sub m 0 14 = "GC_check_range")
  | _ -> Alcotest.fail "structure overrun must be detected"

let test_struct_copy_clean () =
  let src =
    {|struct pair { long a; long b; };
int main(void) {
  struct pair *x = (struct pair *)malloc(sizeof(struct pair));
  struct pair *y = (struct pair *)malloc(sizeof(struct pair));
  x->a = 1; x->b = 2;
  *y = *x;
  printf("%ld %ld
", y->a, y->b);
  return 0;
}|}
  in
  let opts = Mode.default Mode.Checked in
  let irp =
    compile ~mode:Ir.Compile.debug_mode ~optimize:false (annotate ~opts src)
  in
  let r = Machine.Vm.run irp in
  Alcotest.(check string) "conforming copy passes" "1 2
"
    r.Machine.Vm.r_output

let test_atomic_allocation_from_c () =
  (* GC_malloc_atomic objects are not scanned: a pointer stored in one does
     not keep its target alive *)
  (* the stores happen in a helper whose frame (registers included) is
     gone by the time the collection runs, so the only references live in
     the heap: one inside a scanned object, one inside an atomic object *)
  let src =
    {|void setup(long *hidden, long *keeper) {
  long *target = (long *)malloc(16);
  long *held = (long *)malloc(16);
  *hidden = (long)target;
  *keeper = (long)held;
}
int main(void) {
  long *hidden = (long *)GC_malloc_atomic(16);
  long *keeper = (long *)malloc(16);
  setup(hidden, keeper);
  GC_collect();
  printf("%d %d
", GC_base((void *)*keeper) != 0,
         GC_base((void *)*hidden) == 0);
  return 0;
}|}
  in
  let ast, _ = Csyntax.Typecheck.check_source src in
  let irp = compile ast in
  let r = Machine.Vm.run irp in
  Alcotest.(check string) "atomic contents not traced" "1 1
"
    r.Machine.Vm.r_output

(* --- Extensions: the root-only-interior collector end to end ----------- *)

let test_gs_under_root_only_collector () =
  (* gs stores only base pointers into the heap (prepended headers), so it
     runs correctly even when the collector honours interior pointers from
     the roots only *)
  let ast = Csyntax.Parser.parse_program Workloads.Gs.source in
  ignore (Csyntax.Typecheck.check_program ast);
  let irp = compile ast in
  let config =
    {
      (Machine.Vm.default_config ()) with
      Machine.Vm.vm_all_interior = false;
      Machine.Vm.vm_gc_threshold = 32 * 1024;
    }
  in
  let r = Machine.Vm.run ~config irp in
  Alcotest.(check bool) "pages rendered" true
    (String.length r.Machine.Vm.r_output > 0 && r.Machine.Vm.r_gc_count > 0)

let test_discipline_verified_by_checker () =
  (* and the dynamic checker confirms gs's store discipline *)
  match run_checked_base_stores Workloads.Gs.source with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "gs violated the discipline: %s" m

let suite =
  [
    Alcotest.test_case "opt 4 reduces annotations" `Quick
      test_calls_only_reduces;
    Alcotest.test_case "opt 4 keeps call statements" `Quick
      test_calls_only_keeps_call_statements;
    Alcotest.test_case "opt 4 safe under call-site GC" `Quick
      test_calls_only_safe_under_call_site_gc;
    Alcotest.test_case "opt 4 drops call-free annotations" `Quick
      test_calls_only_needs_its_assumption;
    Alcotest.test_case "extensions: interior store detected" `Quick
      test_interior_store_detected;
    Alcotest.test_case "extensions: base store clean" `Quick
      test_base_store_clean;
    Alcotest.test_case "extensions: locals exempt" `Quick
      test_local_stores_exempt;
    Alcotest.test_case "struct overrun detected" `Quick
      test_struct_overrun_detected;
    Alcotest.test_case "struct copy clean" `Quick test_struct_copy_clean;
    Alcotest.test_case "atomic allocation from C" `Quick
      test_atomic_allocation_from_c;
    Alcotest.test_case "extensions: gs on root-only collector" `Quick
      test_gs_under_root_only_collector;
    Alcotest.test_case "extensions: gs store discipline verified" `Quick
      test_discipline_verified_by_checker;
  ]
