(* Shared helpers for the compiler-side test suites. *)

let compile ?(mode = Ir.Compile.opt_mode) ?(optimize = true)
    ?(disguise = true) ?(nregs = 32) src =
  let ast, _ = Csyntax.Typecheck.check_source src in
  let irp = Ir.Compile.compile_program ~mode ast in
  let cfg =
    {
      Opt.Pipeline.optimize;
      Opt.Pipeline.disguise_pointers = disguise;
      Opt.Pipeline.nregs;
    }
  in
  ignore (Opt.Pipeline.run_program cfg irp);
  irp

(* Compile and run a plain program; returns its output string. *)
let run ?mode ?optimize ?disguise ?(nregs = 32) ?async_gc ?machine src =
  let irp = compile ?mode ?optimize ?disguise ~nregs src in
  let machine = Option.value ~default:Machine.Machdesc.sparc10 machine in
  let config =
    {
      (Machine.Vm.default_config ~machine ()) with
      Machine.Vm.vm_gc_schedule =
        (match async_gc with
        | Some n -> Machine.Schedule.Every n
        | None -> Machine.Schedule.Auto);
    }
  in
  let r = Machine.Vm.run ~config irp in
  r.Machine.Vm.r_output

(* Run through the full harness build for a given configuration. *)
let run_built ?machine config src =
  let machine = Option.value ~default:Machine.Machdesc.sparc10 machine in
  let req = Harness.Request.make ~config ~machine src in
  let b =
    Harness.Build.compile
      ~options:(Harness.Request.build_options req)
      config src
  in
  Harness.Measure.exec req b

let check_output name src expected =
  Alcotest.(check string) name expected (run src)

(* All five build configurations must agree on the program's output. *)
let check_all_configs_agree ?(expect_checked_fault = false) name src =
  let base = run_built Harness.Build.Base src in
  let base_out =
    match base with
    | Harness.Measure.Ran r -> r.Harness.Measure.o_output
    | o -> Alcotest.failf "%s: baseline failed: %s" name (Harness.Measure.describe o)
  in
  List.iter
    (fun config ->
      match run_built config src with
      | Harness.Measure.Ran r ->
          Alcotest.(check string)
            (Printf.sprintf "%s [%s]" name (Harness.Build.config_name config))
            base_out r.Harness.Measure.o_output
      | Harness.Measure.Detected m ->
          if not (expect_checked_fault && config = Harness.Build.Debug_checked)
          then
            Alcotest.failf "%s [%s] unexpectedly failed: %s" name
              (Harness.Build.config_name config) m
      | o ->
          Alcotest.failf "%s [%s] unexpectedly failed: %s" name
            (Harness.Build.config_name config)
            (Harness.Measure.describe o))
    [
      Harness.Build.Safe;
      Harness.Build.Safe_peephole;
      Harness.Build.Debug;
      Harness.Build.Debug_checked;
    ];
  base_out
