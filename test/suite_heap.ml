(* Conservative collector tests: allocator, page map, marking, sweeping,
   the checking primitives, and qcheck invariants. *)

open Gcheap

let fresh () = Heap.create ()

(* --- allocator ------------------------------------------------------- *)

let test_alloc_basics () =
  let h = fresh () in
  let a = Heap.alloc h 10 in
  Alcotest.(check bool) "nonzero" true (a > 0);
  Alcotest.(check bool) "valid" true (Heap.valid_access h a 10);
  (* zeroed *)
  for i = 0 to 9 do
    Alcotest.(check int) "zero" 0 (Mem.load h.Heap.mem ~width:1 (a + i))
  done

let test_distinct_objects () =
  let h = fresh () in
  let addrs = List.init 200 (fun i -> (Heap.alloc h (8 + (i mod 48)), 8 + (i mod 48))) in
  (* no two extents overlap *)
  let extents =
    List.map
      (fun (a, _) ->
        match Heap.extent_of h a with
        | Some (base, size) -> (base, size)
        | None -> Alcotest.fail "no extent")
      addrs
  in
  let sorted = List.sort compare extents in
  let rec check = function
    | (b1, s1) :: ((b2, _) :: _ as rest) ->
        if b1 + s1 > b2 then Alcotest.failf "overlap at %#x" b2;
        check rest
    | _ -> ()
  in
  check sorted

let test_slack_byte () =
  (* one-past-the-end addresses map back to the object (the paper's extra
     byte) *)
  let h = fresh () in
  List.iter
    (fun n ->
      let a = Heap.alloc h n in
      Alcotest.(check (option int))
        (Printf.sprintf "one past end of %d-byte object" n)
        (Some a)
        (Heap.base_of h (a + n)))
    [ 1; 8; 15; 16; 17; 100; 2047; 5000 ]

let test_one_before_is_not_ours () =
  let h = fresh () in
  let a = Heap.alloc h 64 in
  (match Heap.base_of h (a - 1) with
  | Some b when b = a -> Alcotest.fail "one-before must not map to the object"
  | Some _ | None -> ())

let test_large_objects () =
  let h = fresh () in
  let a = Heap.alloc h 100_000 in
  Alcotest.(check bool) "valid" true (Heap.valid_access h a 100_000);
  Alcotest.(check (option int)) "interior deep inside" (Some a)
    (Heap.base_of h (a + 65_000));
  (* large blocks are reused after collection *)
  let freed = Heap.collect h in
  Alcotest.(check bool) "freed" true (freed >= 1);
  let b = Heap.alloc h 100_000 in
  Alcotest.(check int) "block reused" a b

let test_size_classes () =
  Alcotest.(check int) "16 rounds to 16" 16 (Heap.class_size 16);
  Alcotest.(check int) "17 rounds to 32" 32 (Heap.class_size 17);
  Alcotest.(check int) "256 stays" 256 (Heap.class_size 256);
  Alcotest.(check int) "257 to 512" 512 (Heap.class_size 257);
  Alcotest.(check int) "2048" 2048 (Heap.class_size 2048)

(* --- page map -------------------------------------------------------- *)

let test_page_map () =
  let h = fresh () in
  let a = Heap.alloc h 40 in
  (match Page_map.find h.Heap.map a with
  | Some blk -> Alcotest.(check int) "object size" 48 blk.Block.blk_obj_size
  | None -> Alcotest.fail "allocated address not in page map");
  Alcotest.(check bool) "null page unmapped" true
    (Page_map.find h.Heap.map 42 = None);
  Alcotest.(check bool) "far address unmapped" true
    (Page_map.find h.Heap.map 0x7000_0000 = None)

(* --- collection ------------------------------------------------------ *)

let test_roots_keep () =
  let h = fresh () in
  let keep = Heap.alloc h 32 in
  let lose = Heap.alloc h 32 in
  let freed = Heap.collect ~extra_roots:[ keep ] h in
  Alcotest.(check int) "exactly one freed" 1 freed;
  Alcotest.(check bool) "kept valid" true (Heap.valid_access h keep 32);
  Alcotest.(check bool) "lost invalid" false (Heap.valid_access h lose 32)

let test_interior_pointer_keeps () =
  let h = fresh () in
  let a = Heap.alloc h 100 in
  ignore (Heap.collect ~extra_roots:[ a + 57 ] h);
  Alcotest.(check bool) "kept via interior pointer" true
    (Heap.valid_access h a 100)

let test_transitive_marking () =
  let h = fresh () in
  (* chain of 50 objects, rooted at the head only *)
  let objs = Array.init 50 (fun _ -> Heap.alloc h 16) in
  for i = 0 to 48 do
    Mem.store_word h.Heap.mem objs.(i) objs.(i + 1)
  done;
  let dead = Heap.alloc h 16 in
  ignore (Heap.collect ~extra_roots:[ objs.(0) ] h);
  Array.iter
    (fun a -> Alcotest.(check bool) "chain alive" true (Heap.valid_access h a 16))
    objs;
  Alcotest.(check bool) "unchained dead" false (Heap.valid_access h dead 16)

let test_heap_to_heap_interior () =
  let h = fresh () in
  let target = Heap.alloc h 64 in
  let holder = Heap.alloc h 16 in
  (* holder stores an interior pointer into target *)
  Mem.store_word h.Heap.mem holder (target + 24);
  ignore (Heap.collect ~extra_roots:[ holder ] h);
  Alcotest.(check bool) "target kept via heap interior pointer" true
    (Heap.valid_access h target 64)

let test_poisoning () =
  let h = fresh () in
  let a = Heap.alloc h 32 in
  Mem.store_word h.Heap.mem a 0x1234;
  ignore (Heap.collect h);
  Alcotest.(check int) "poisoned" 0xDB (Mem.load h.Heap.mem ~width:1 a land 0xff)

let test_reuse_after_collect () =
  let h = fresh () in
  let a = Heap.alloc h 32 in
  ignore (Heap.collect h);
  let b = Heap.alloc h 32 in
  Alcotest.(check bool) "slot recycled" true (b = a);
  Alcotest.(check bool) "fresh object zeroed" true
    (Mem.load_word h.Heap.mem b = 0)

let test_uncollectable () =
  let h = fresh () in
  let statics = Heap.alloc ~kind:Block.Uncollectable h 64 in
  let target = Heap.alloc h 16 in
  Mem.store_word h.Heap.mem (statics + 8) target;
  ignore (Heap.collect h);
  Alcotest.(check bool) "statics never swept" true
    (Heap.valid_access h statics 64);
  Alcotest.(check bool) "reachable from statics" true
    (Heap.valid_access h target 16)

let test_stack_kind () =
  let h = fresh () in
  let stack = Heap.alloc ~kind:Block.Stack h 4096 in
  let live_obj = Heap.alloc h 24 in
  let dead_obj = Heap.alloc h 24 in
  (* live_obj's address sits inside the live prefix, dead_obj's beyond it *)
  Mem.store_word h.Heap.mem (stack + 8) live_obj;
  Mem.store_word h.Heap.mem (stack + 512) dead_obj;
  ignore (Heap.collect ~extra_ranges:[ (stack, stack + 64) ] h);
  Alcotest.(check bool) "stack block itself survives" true
    (Heap.valid_access h stack 4096);
  Alcotest.(check bool) "live prefix retains" true
    (Heap.valid_access h live_obj 24);
  Alcotest.(check bool) "dead region does not retain" false
    (Heap.valid_access h dead_obj 24)

let test_atomic_not_scanned () =
  let h = fresh () in
  let target = Heap.alloc h 16 in
  let atomic = Heap.alloc ~kind:Block.Atomic h 16 in
  Mem.store_word h.Heap.mem atomic target;
  ignore (Heap.collect ~extra_roots:[ atomic ] h);
  Alcotest.(check bool) "atomic object itself survives" true
    (Heap.valid_access h atomic 16);
  Alcotest.(check bool) "pointer inside atomic object is not traced" false
    (Heap.valid_access h target 16)

let test_extensions_mode () =
  (* paper's Extensions section: interior pointers valid only from roots *)
  let config = Heap.default_config () in
  config.Heap.all_interior <- false;
  let h = Heap.create ~config () in
  let target = Heap.alloc h 64 in
  let holder = Heap.alloc h 16 in
  Mem.store_word h.Heap.mem holder (target + 24);
  (* root -> holder -> interior-of-target: interior not valid from heap *)
  ignore (Heap.collect ~extra_roots:[ holder ] h);
  Alcotest.(check bool) "heap interior pointer ignored" false
    (Heap.valid_access h target 64);
  (* but interior pointers from roots still work *)
  let t2 = Heap.alloc h 64 in
  ignore (Heap.collect ~extra_roots:[ t2 + 8 ] h);
  Alcotest.(check bool) "root interior pointer honoured" true
    (Heap.valid_access h t2 64)

let test_gc_threshold () =
  let config = Heap.default_config () in
  config.Heap.gc_threshold <- 1024;
  let h = Heap.create ~config () in
  Alcotest.(check bool) "below threshold" false (Heap.should_collect h);
  for _ = 1 to 40 do
    ignore (Heap.alloc h 32)
  done;
  Alcotest.(check bool) "above threshold" true (Heap.should_collect h);
  ignore (Heap.collect h);
  Alcotest.(check bool) "reset after collect" false (Heap.should_collect h)

(* --- checking primitives --------------------------------------------- *)

let test_same_obj_ok () =
  let h = fresh () in
  let a = Heap.alloc h 40 in
  Alcotest.(check int) "within object" (a + 13) (Heap.same_obj h (a + 13) a);
  Alcotest.(check int) "one past end ok" (a + 40) (Heap.same_obj h (a + 40) a);
  (* non-heap q is ignored, as the paper restricts checking to heap ptrs *)
  Alcotest.(check int) "non-heap base ignored" 12345
    (Heap.same_obj h 12345 99999)

let test_same_obj_fail () =
  let h = fresh () in
  let a = Heap.alloc h 40 in
  let check_fails p q =
    match Heap.same_obj h p q with
    | exception Heap.Check_failure _ -> ()
    | _ -> Alcotest.failf "expected failure for %#x vs %#x" p q
  in
  check_fails (a - 8) a;
  check_fails (a + 4096) a;
  Alcotest.(check bool) "failure counted" true
    (h.Heap.stats.Heap.check_failures >= 2)

let test_same_obj_rounding () =
  (* the paper: "not completely accurate, since the garbage collector
     rounds up object sizes" — addresses within the rounded size pass *)
  let h = fresh () in
  let a = Heap.alloc h 10 in
  (* class size is 16: a+14 is technically out of the 10-byte object but
     within the rounded slot *)
  Alcotest.(check int) "within rounding slack" (a + 14)
    (Heap.same_obj h (a + 14) a)

let test_pre_post_incr () =
  let h = fresh () in
  let obj = Heap.alloc h 32 in
  let slot = Heap.alloc h 8 in
  Mem.store_word h.Heap.mem slot obj;
  Alcotest.(check int) "pre_incr returns new" (obj + 4)
    (Heap.pre_incr h slot 4);
  Alcotest.(check int) "slot updated" (obj + 4) (Mem.load_word h.Heap.mem slot);
  Alcotest.(check int) "post_incr returns old" (obj + 4)
    (Heap.post_incr h slot 4);
  Alcotest.(check int) "slot updated again" (obj + 8)
    (Mem.load_word h.Heap.mem slot);
  (* stepping off the object fails and the slot must keep the old value? the
     paper's checker aborts the program, so state after failure is moot —
     but the failure itself must fire *)
  (match Heap.pre_incr h slot 4096 with
  | exception Heap.Check_failure _ -> ()
  | _ -> Alcotest.fail "expected pre_incr failure")

let test_gc_base () =
  let h = fresh () in
  let a = Heap.alloc h 100 in
  Alcotest.(check (option int)) "base of base" (Some a) (Heap.base_of h a);
  Alcotest.(check (option int)) "base of interior" (Some a)
    (Heap.base_of h (a + 63));
  Alcotest.(check (option int)) "null" None (Heap.base_of h 0);
  Alcotest.(check (option int)) "free slot" None
    (let b = Heap.alloc h 100 in
     ignore (Heap.collect ~extra_roots:[ a ] h);
     Heap.base_of h b)

(* --- root-range scanning: the final partial word ---------------------- *)

let test_trailing_partial_word () =
  (* an unaligned root range used to lose up to 7 trailing bytes to
     alignment: plant the only pointer to the victim in the word that
     straddles the range's end *)
  let h = fresh () in
  let stack = Heap.alloc ~kind:Block.Stack h 64 in
  let victim = Heap.alloc h 24 in
  Mem.store_word h.Heap.mem (stack + 8) victim;
  (* the range ends 4 bytes into the pointer's word *)
  ignore (Heap.collect ~extra_ranges:[ (stack, stack + 12) ] h);
  Alcotest.(check bool) "pointer in the final partial word retains" true
    (Heap.valid_access h victim 24)

(* --- generational collection ------------------------------------------ *)

let gen_heap ?(minor_threshold = 1024) ?(gc_threshold = 64 * 1024) () =
  let config = Heap.default_config () in
  config.Heap.generational <- true;
  config.Heap.minor_threshold <- minor_threshold;
  config.Heap.gc_threshold <- gc_threshold;
  Heap.create ~config ()

let minors h = h.Heap.stats.Heap.minor_collections

let majors h = h.Heap.stats.Heap.collections - minors h

let test_promotion () =
  let h = gen_heap () in
  let obj = Heap.alloc h 32 in
  Alcotest.(check (option int)) "born young" (Some 0) (Heap.slot_age h obj);
  ignore (Heap.collect ~generation:Heap.Minor ~extra_roots:[ obj ] h);
  Alcotest.(check (option int)) "aged by one" (Some 1) (Heap.slot_age h obj);
  ignore (Heap.collect ~generation:Heap.Minor ~extra_roots:[ obj ] h);
  Alcotest.(check (option int)) "promoted" (Some 2) (Heap.slot_age h obj);
  Alcotest.(check int) "promotion counted" 1 h.Heap.stats.Heap.promoted;
  (* old objects are immune to minors, even unrooted... *)
  ignore (Heap.collect ~generation:Heap.Minor h);
  Alcotest.(check bool) "old object survives a rootless minor" true
    (Heap.valid_access h obj 32);
  (* ...but not to a major *)
  ignore (Heap.collect h);
  Alcotest.(check bool) "rootless major reclaims it" false
    (Heap.valid_access h obj 32)

let promote h obj =
  ignore (Heap.collect ~generation:Heap.Minor ~extra_roots:[ obj ] h);
  ignore (Heap.collect ~generation:Heap.Minor ~extra_roots:[ obj ] h);
  Alcotest.(check bool) "promoted"
    true
    (match Heap.slot_age h obj with Some a -> a >= 2 | None -> false)

let test_dirty_card_retains_young () =
  let h = gen_heap () in
  let o = Heap.alloc h 32 in
  promote h o;
  (* an old-to-young pointer stored through the write barrier: the card
     is the only thing keeping the young object alive across a minor *)
  let y = Heap.alloc h 24 in
  Mem.store_word h.Heap.mem o y;
  Heap.note_store h o 8;
  Alcotest.(check bool) "card dirty after barrier" true (Heap.page_is_dirty h o);
  ignore (Heap.collect ~generation:Heap.Minor h);
  Alcotest.(check bool) "young object retained via the dirty card" true
    (Heap.valid_access h y 24);
  (* a major sees the same liveness through normal tracing *)
  ignore (Heap.collect ~extra_roots:[ o ] h);
  Alcotest.(check bool) "major agrees" true (Heap.valid_access h y 24)

let test_remembered_set_integrity () =
  let h = gen_heap () in
  let o = Heap.alloc h 32 in
  promote h o;
  Alcotest.(check int) "healthy heap has no violations" 0
    (List.length (Heap.check_integrity h));
  let y = Heap.alloc h 24 in
  (* a store that bypasses the write barrier leaves the remembered set
     incomplete — the sanitizer must call it out *)
  Mem.store_word h.Heap.mem o y;
  Alcotest.(check bool) "remembered-set violation reported" true
    (List.exists
       (fun v -> v.Heap.v_rule = "remembered-set")
       (Heap.check_integrity h));
  (* the barrier repairs it *)
  Heap.note_store h o 8;
  Alcotest.(check int) "clean once the card is dirty" 0
    (List.length (Heap.check_integrity h))

let test_live_growth_trigger () =
  (* satellite regression: a stable-footprint loop must not trigger
     back-to-back majors — minors credit reclaimed bytes against the
     live-growth estimate *)
  let h = gen_heap ~minor_threshold:1024 ~gc_threshold:8192 () in
  for _ = 1 to 200 do
    ignore (Heap.alloc h 64);
    if Heap.should_collect h then ignore (Heap.collect h)
    else if Heap.should_collect_minor h then
      ignore (Heap.collect ~generation:Heap.Minor h)
  done;
  Alcotest.(check int) "stable footprint triggers no majors" 0 (majors h);
  Alcotest.(check bool) "minors did the reclaiming" true (minors h > 5)

let test_minor_major_equivalence () =
  (* the same allocation script, with and without interleaved minors,
     ends in the same live set after a final stop-the-world major *)
  let script h minor =
    let keep = ref [] in
    for i = 1 to 120 do
      let a = Heap.alloc h (16 + (i mod 40)) in
      if i mod 7 = 0 then keep := a :: !keep;
      if minor && i mod 20 = 0 then
        ignore (Heap.collect ~generation:Heap.Minor ~extra_roots:!keep h)
    done;
    ignore (Heap.collect ~extra_roots:!keep h);
    Heap.live_summary h
  in
  Alcotest.(check (pair int int))
    "final live set identical"
    (script (fresh ()) false)
    (script (gen_heap ()) true)

let prop_gen_equivalence =
  QCheck.Test.make ~count:40
    ~name:"generational minors preserve the rooted live set"
    QCheck.(
      list_of_size Gen.(int_range 1 80) (triple (int_range 1 300) bool bool))
    (fun spec ->
      let run generational =
        let h = if generational then gen_heap () else fresh () in
        let keep = ref [] in
        List.iter
          (fun (n, k, m) ->
            let a = Heap.alloc h n in
            if k then keep := a :: !keep;
            if generational && m then
              ignore
                (Heap.collect ~generation:Heap.Minor ~extra_roots:!keep h))
          spec;
        ignore (Heap.collect ~extra_roots:!keep h);
        Heap.live_summary h
      in
      run false = run true)

(* --- qcheck invariants ------------------------------------------------ *)

(* random allocation sizes; every allocated object is disjoint, aligned,
   and base_of round-trips from every interior offset sample *)
let prop_alloc_invariants =
  QCheck.Test.make ~count:60 ~name:"allocation invariants"
    QCheck.(list_of_size Gen.(int_range 1 60) (int_range 1 600))
    (fun sizes ->
      let h = fresh () in
      let objs = List.map (fun n -> (Heap.alloc h n, n)) sizes in
      List.for_all
        (fun (a, n) ->
          a mod 16 = 0
          && Heap.valid_access h a n
          && Heap.base_of h a = Some a
          && Heap.base_of h (a + (n / 2)) = Some a
          && Heap.base_of h (a + n) = Some a)
        objs)

(* random keep sets: kept objects always survive, dropped objects are
   always reclaimed (no references between objects here) *)
let prop_collect_exact =
  QCheck.Test.make ~count:60 ~name:"collection keeps exactly the rooted set"
    QCheck.(list_of_size Gen.(int_range 1 60) (pair (int_range 1 300) bool))
    (fun spec ->
      let h = fresh () in
      let objs = List.map (fun (n, keep) -> (Heap.alloc h n, n, keep)) spec in
      let roots =
        List.filter_map (fun (a, _, keep) -> if keep then Some a else None) objs
      in
      ignore (Heap.collect ~extra_roots:roots h);
      List.for_all
        (fun (a, n, keep) -> Heap.valid_access h a n = keep)
        objs)

(* same_obj never fails for addresses within [base, base+size] and always
   fails outside the page-rounded object *)
let prop_same_obj =
  QCheck.Test.make ~count:200 ~name:"same_obj boundary behaviour"
    QCheck.(pair (int_range 1 2000) (int_range (-64) 2500))
    (fun (n, off) ->
      let h = fresh () in
      let a = Heap.alloc h n in
      let p = a + off in
      match Heap.extent_of h a with
      | None -> false
      | Some (_, rounded) -> (
          match Heap.same_obj h p a with
          | _ -> off >= 0 && off <= rounded
          | exception Heap.Check_failure _ -> off < 0 || off > rounded))

let suite =
  [
    Alcotest.test_case "alloc basics" `Quick test_alloc_basics;
    Alcotest.test_case "objects disjoint" `Quick test_distinct_objects;
    Alcotest.test_case "one extra byte" `Quick test_slack_byte;
    Alcotest.test_case "one before the object" `Quick
      test_one_before_is_not_ours;
    Alcotest.test_case "large objects" `Quick test_large_objects;
    Alcotest.test_case "size classes" `Quick test_size_classes;
    Alcotest.test_case "page map" `Quick test_page_map;
    Alcotest.test_case "roots keep objects" `Quick test_roots_keep;
    Alcotest.test_case "interior pointers keep" `Quick
      test_interior_pointer_keeps;
    Alcotest.test_case "transitive marking" `Quick test_transitive_marking;
    Alcotest.test_case "heap-to-heap interior" `Quick
      test_heap_to_heap_interior;
    Alcotest.test_case "sweeping poisons" `Quick test_poisoning;
    Alcotest.test_case "slot reuse" `Quick test_reuse_after_collect;
    Alcotest.test_case "uncollectable objects" `Quick test_uncollectable;
    Alcotest.test_case "stack blocks: live prefix only" `Quick
      test_stack_kind;
    Alcotest.test_case "atomic objects" `Quick test_atomic_not_scanned;
    Alcotest.test_case "extensions mode (root-only interior)" `Quick
      test_extensions_mode;
    Alcotest.test_case "gc threshold" `Quick test_gc_threshold;
    Alcotest.test_case "GC_same_obj ok" `Quick test_same_obj_ok;
    Alcotest.test_case "GC_same_obj failures" `Quick test_same_obj_fail;
    Alcotest.test_case "GC_same_obj rounding" `Quick test_same_obj_rounding;
    Alcotest.test_case "GC_pre/post_incr" `Quick test_pre_post_incr;
    Alcotest.test_case "GC_base" `Quick test_gc_base;
    Alcotest.test_case "root range: final partial word" `Quick
      test_trailing_partial_word;
    Alcotest.test_case "gen: promotion after two minors" `Quick
      test_promotion;
    Alcotest.test_case "gen: dirty card retains young" `Quick
      test_dirty_card_retains_young;
    Alcotest.test_case "gen: remembered-set completeness check" `Quick
      test_remembered_set_integrity;
    Alcotest.test_case "gen: live-growth trigger (no back-to-back majors)"
      `Quick test_live_growth_trigger;
    Alcotest.test_case "gen: minor-then-major equivalence" `Quick
      test_minor_major_equivalence;
    QCheck_alcotest.to_alcotest prop_gen_equivalence;
    QCheck_alcotest.to_alcotest prop_alloc_invariants;
    QCheck_alcotest.to_alcotest prop_collect_exact;
    QCheck_alcotest.to_alcotest prop_same_obj;
  ]
