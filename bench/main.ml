(* Benchmark harness: regenerates every table in the paper's evaluation,
   the Analysis-section listing, the hazard demonstration, and the
   ablations; plus bechamel micro-benchmarks of the collector primitives.

   Usage:  main.exe [t1|t2|t3|t4|t5|cache|a1|hazard|ablate|ablate-analysis|
                     ablate-telemetry|profile|gcmodes|stress|micro|all]...
   With no arguments, everything except micro runs (micro does wall-clock
   timing and is opt-in so the default output stays deterministic).

   Every build goes through Build.for_machine, so the register pressure
   always matches the machine model the surrounding measurement claims,
   and through the content-addressed artifact cache — the cache section
   reports the hit rate the table regeneration achieved.

   Besides the human-readable stdout, a machine-readable summary of
   everything measured — per-section wall-clock timings, annotation
   counts, cache hit rates, GC pause and drag statistics, and the
   telemetry-overhead ablation — is written to BENCH_4.json.  The
   gcmodes section additionally writes BENCH_5.json: minor-vs-major
   pause percentiles and the stw/gen differential-divergence count. *)

(* --- the machine-readable summary (BENCH_4.json) ------------------------- *)

(* one-shot: build a request's configuration and execute it (telemetry
   observes the run only; builds stay uninstrumented, as before) *)
let exec_req ?telemetry (req : Harness.Request.t) =
  let b =
    Harness.Build.compile
      ~options:(Harness.Request.build_options req)
      req.Harness.Request.config req.Harness.Request.source
  in
  Harness.Measure.exec ?telemetry req b

let bench_data : (string * Telemetry.Json.t) list ref = ref []

let record key v = bench_data := (key, v) :: !bench_data

let section_timings : (string * float) list ref = ref []

let timed_section name f =
  let t0 = Unix.gettimeofday () in
  f ();
  section_timings := (name, Unix.gettimeofday () -. t0) :: !section_timings

let write_bench_json () =
  let open Telemetry.Json in
  let timings =
    Obj (List.rev_map (fun (n, s) -> (n, Float s)) !section_timings)
  in
  let doc = Obj (("section_seconds", timings) :: List.rev !bench_data) in
  Out_channel.with_open_text "BENCH_4.json" (fun oc ->
      Out_channel.output_string oc (to_string doc ^ "\n"));
  Printf.printf "wrote BENCH_4.json\n"

let paper_reference = function
  | "t1" ->
      [
        "paper (SPARCstation 2):";
        "              -O, safe      -g            -g, checked";
        "  cordtest    9%            54%           514%";
        "  cfrac       17%           <inlining>    <not operational>";
        "  gawk        8%            25%           <fails>";
        "  gs          0%            33%           205%";
      ]
  | "t2" ->
      [
        "paper (SPARCstation 10):";
        "              -O2, safe     -g            -g, checked";
        "  cordtest    9%            56%           529%";
        "  cfrac       8%            -             -";
        "  gawk        8%            48%           -";
        "  gs          5%            37%           366%";
      ]
  | "t3" ->
      [
        "paper (Pentium 90):";
        "              -O2, safe     -g            -g, checked";
        "  cordtest    12%           28%           510%";
        "  cfrac       11%           -             -";
        "  gawk        9%            41%           -";
        "  gs          6%            17%           279%";
      ]
  | "t4" ->
      [
        "paper (SPARC object code size):";
        "              -O2, safe     -g            -g, checked";
        "  cordtest    9%            69%           130%";
        "  cfrac       6%            -             -";
        "  gawk        15%           68%           -";
        "  gs          19%           73%           160%";
      ]
  | "t5" ->
      [
        "paper (SPARC 10, safe + peephole postprocessor):";
        "              running time  code size";
        "  cordtest    4%            3%";
        "  cfrac       2%            3%";
        "  gawk        1%            7%";
        "  gs          2%            7%";
      ]
  | _ -> []

let show_reference id =
  List.iter print_endline (paper_reference id);
  print_newline ()

let t1 () =
  print_endline "== T1: slowdowns, SPARCstation 2 model ==";
  ignore (Harness.Tables.slowdown_table ~machine:Machine.Machdesc.sparc2 ());
  show_reference "t1"

let t2 () =
  print_endline "== T2: slowdowns, SPARCstation 10 model ==";
  ignore (Harness.Tables.slowdown_table ~machine:Machine.Machdesc.sparc10 ());
  show_reference "t2"

let t3 () =
  print_endline "== T3: slowdowns, Pentium 90 model ==";
  ignore (Harness.Tables.slowdown_table ~machine:Machine.Machdesc.pentium90 ());
  show_reference "t3"

let t4 () =
  print_endline "== T4: object code size expansion ==";
  ignore (Harness.Tables.size_table ~machine:Machine.Machdesc.sparc10 ());
  show_reference "t4"

let t5 () =
  print_endline "== T5: peephole postprocessor residuals ==";
  ignore (Harness.Tables.postprocessor_table ~machine:Machine.Machdesc.sparc10 ());
  show_reference "t5"

(* --- the build cache over the table-regeneration section ---------------- *)

(* T1-T5 ask for the same (source, config, register-count) artifacts over
   and over: sparc2 and sparc10 share a register file so T2 compiles
   nothing new, T4's size rows reuse T2's builds, and T5 only adds the
   four safe+peephole artifacts.  Regenerating a table against a warm
   cache compiles nothing at all. *)
let cache_section () =
  print_endline "== Build cache: table regeneration ==";
  let pct s = 100.0 *. Exec.Cache.hit_rate s in
  let null = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  let regen () =
    ignore
      (Harness.Tables.slowdown_table ~machine:Machine.Machdesc.sparc10
         ~out:null ())
  in
  (* sessions scope the process-wide counters to each pass, so the
     section reports its own traffic no matter which sections ran
     before it *)
  let cold_session = Harness.Build.new_session () in
  (* run standalone the cache is cold; prime it with one regeneration so
     the warm pass below measures steady-state regeneration *)
  if (Harness.Build.cache_stats ()).Exec.Cache.misses = 0 then regen ();
  let cold = Harness.Build.session_stats cold_session in
  Printf.printf
    "  cold start: %d hit(s), %d miss(es), %d evicted, %.0f%% hit rate\n"
    cold.Exec.Cache.hits cold.Exec.Cache.misses cold.Exec.Cache.evictions
    (pct cold);
  let warm_session = Harness.Build.new_session () in
  regen ();
  let warm = Harness.Build.session_stats warm_session in
  Printf.printf
    "  warm T2 regeneration: %d hit(s), %d miss(es), %.0f%% hit rate\n"
    warm.Exec.Cache.hits warm.Exec.Cache.misses (pct warm);
  let total = Harness.Build.cache_stats () in
  Printf.printf
    "  process total: %d hit(s), %d miss(es), %.0f%% hit rate\n"
    total.Exec.Cache.hits total.Exec.Cache.misses (pct total);
  let stats_json (s : Exec.Cache.stats) =
    Telemetry.Json.Obj
      [
        ("hits", Telemetry.Json.Int s.Exec.Cache.hits);
        ("misses", Telemetry.Json.Int s.Exec.Cache.misses);
        ("evictions", Telemetry.Json.Int s.Exec.Cache.evictions);
        ("hit_rate", Telemetry.Json.Float (Exec.Cache.hit_rate s));
      ]
  in
  record "cache"
    (Telemetry.Json.Obj
       [
         ("cold", stats_json cold);
         ("warm_regeneration", stats_json warm);
         ("process_total", stats_json total);
       ]);
  print_newline ()

(* --- A1: the Analysis-section listing ---------------------------------- *)

let a1 () =
  print_endline
    "== A1: the Analysis listing: char f(char *x) { return x[1]; } ==";
  let src = "char f(char *x) { return x[1]; } int main(void) { return 0; }" in
  let show title config =
    let b =
      Harness.Build.compile
        ~options:(Harness.Build.for_machine Machine.Machdesc.sparc10)
        config src
    in
    let f =
      List.find
        (fun f -> f.Ir.Instr.fn_name = "f")
        b.Harness.Build.b_ir.Ir.Instr.p_funcs
    in
    Printf.printf "--- %s (%d instructions)\n" title (Ir.Instr.code_size f);
    Format.printf "%a@." Ir.Instr.pp_func f
  in
  show "-O baseline" Harness.Build.Base;
  show "-O safe (KEEP_LIVE blocks the index fold)" Harness.Build.Safe;
  show "-O safe + peephole (pattern 1 re-fuses it)" Harness.Build.Safe_peephole;
  print_endline
    "paper: safe adds one add + empty asm before the ldsb; the\n\
     postprocessor folds the add back into the load's address mode.\n"

(* --- the hazard demonstration ------------------------------------------ *)

let hazard () =
  print_endline "== Hazard: the introduction's p[i-1000] example ==";
  let src =
    {|long f(long i) {
  char *p = (char *)malloc(10);
  p[5] = 42;
  return p[i - 100000];
}
int main(void) { printf("v=%ld\n", f(100005)); return 0; }|}
  in
  let run name config =
    match
      exec_req
        (Harness.Request.make ~config ~schedule:(Machine.Schedule.Every 1) src)
    with
    | Harness.Measure.Ran r ->
        Printf.printf "  %-26s OK: %s" name r.Harness.Measure.o_output
    | Harness.Measure.Detected m ->
        Printf.printf "  %-26s LOST OBJECT: %s\n" name m
    | o -> Printf.printf "  %-26s FAILED: %s\n" name (Harness.Measure.describe o)
  in
  run "-O (conventional)" Harness.Build.Base;
  run "-O safe (KEEP_LIVE)" Harness.Build.Safe;
  run "-O safe + peephole" Harness.Build.Safe_peephole;
  run "-g (fully debuggable)" Harness.Build.Debug;
  Printf.printf
    "  (collections forced at every instruction; the conventional optimizer\n\
    \   rewrites the final use into p -= 100000; ...p[i], and the object \
     dies)\n\n"

(* --- ablations ----------------------------------------------------------- *)

let count_keep_lives ~suppress_copies ~expand_incr src =
  let ast = Csyntax.Parser.parse_program src in
  let opts =
    {
      (Gcsafe.Mode.default Gcsafe.Mode.Safe) with
      Gcsafe.Mode.suppress_copies;
      Gcsafe.Mode.expand_incr;
    }
  in
  (Gcsafe.Annotate.run ~opts ast).Gcsafe.Annotate.keep_live_count

let cycles_of = function
  | Harness.Measure.Ran r -> r.Harness.Measure.o_cycles
  | o -> failwith (Harness.Measure.describe o)

let ablate () =
  print_endline "== Ablations: the paper's optimizations (1)-(3) ==";
  print_endline "-- optimization (1): suppress KEEP_LIVE on copies";
  List.iter
    (fun w ->
      let src = w.Workloads.Registry.w_source in
      let with1 = count_keep_lives ~suppress_copies:true ~expand_incr:true src in
      let without1 =
        count_keep_lives ~suppress_copies:false ~expand_incr:true src
      in
      Printf.printf "  %-10s %4d annotations with, %4d without (%d saved)\n"
        w.Workloads.Registry.w_name with1 without1 (without1 - with1))
    Workloads.Registry.paper_suite;
  print_endline "-- optimization (3): slowly-varying base pointers";
  let loop_src =
    {|void copy(char *s, char *t) {
  char *p; char *q;
  p = s; q = t;
  while (*p++ = *q++) ;
}
char buf[4096];
char src_buf[4096];
int main(void) {
  int i; int rep;
  for (i = 0; i < 4095; i++) src_buf[i] = 'a' + i % 26;
  src_buf[4095] = 0;
  for (rep = 0; rep < 60; rep++) copy(buf, src_buf);
  printf("%d\n", (int)strlen(buf));
  return 0;
}|}
  in
  (* the heuristic pays off through the postprocessor: a slowly-varying
     base is free to keep, while a keep of the loop temporary blocks the
     peephole's mov forwarding on it *)
  let measure config ~heuristic =
    cycles_of
      (exec_req (Harness.Request.make ~config ~loop_heuristic:heuristic loop_src))
  in
  let base =
    cycles_of
      (exec_req (Harness.Request.make ~config:Harness.Build.Base loop_src))
  in
  let report name config =
    let on = measure config ~heuristic:true
    and off = measure config ~heuristic:false in
    Printf.printf
      "  string-copy loop (%s): base %d cycles; %+.2f%% with heuristic, \
       %+.2f%% without\n"
      name base
      (100.0 *. float_of_int (on - base) /. float_of_int base)
      (100.0 *. float_of_int (off - base) /. float_of_int base)
  in
  report "safe" Harness.Build.Safe;
  report "safe+peephole" Harness.Build.Safe_peephole;
  (* under register pressure (8-register machine) the heuristic's cost
     side shows: keeping the slowly-varying base live across the loop
     occupies a register that the loop needs *)
  let pressure ~heuristic =
    cycles_of
      (exec_req
         (Harness.Request.make ~config:Harness.Build.Safe_peephole
            ~machine:Machine.Machdesc.pentium90 ~loop_heuristic:heuristic
            loop_src))
  in
  Printf.printf
    "  8-register machine: %d cycles with heuristic, %d without (the paper's \
     caveat:\n   profitable only when the base is \"likely to be live in any \
     case\")\n"
    (pressure ~heuristic:true) (pressure ~heuristic:false);
  print_endline
    "-- optimization (4): collections only at call sites (annotation counts)";
  List.iter
    (fun w ->
      let src = w.Workloads.Registry.w_source in
      let count calls_only =
        let ast = Csyntax.Parser.parse_program src in
        let opts =
          { (Gcsafe.Mode.default Gcsafe.Mode.Safe) with Gcsafe.Mode.calls_only }
        in
        (Gcsafe.Annotate.run ~opts ast).Gcsafe.Annotate.keep_live_count
      in
      let full = count false and reduced = count true in
      Printf.printf "  %-10s %4d -> %4d annotations (%.0f%% fewer)\n"
        w.Workloads.Registry.w_name full reduced
        (100.0 *. float_of_int (full - reduced) /. float_of_int full))
    Workloads.Registry.paper_suite;
  print_endline
    "-- heapness analysis (\"sufficiently good program analysis\")";
  List.iter
    (fun w ->
      let src = w.Workloads.Registry.w_source in
      let count heapness =
        let ast = Csyntax.Parser.parse_program src in
        let opts =
          {
            (Gcsafe.Mode.default Gcsafe.Mode.Safe) with
            Gcsafe.Mode.heapness_analysis = heapness;
          }
        in
        (Gcsafe.Annotate.run ~opts ast).Gcsafe.Annotate.keep_live_count
      in
      Printf.printf "  %-10s %4d -> %4d annotations\n"
        w.Workloads.Registry.w_name (count false) (count true))
    Workloads.Registry.paper_suite;
  print_endline "-- the pointer-disguising passes (what GC-unsafety buys)";
  List.iter
    (fun w ->
      let src = w.Workloads.Registry.w_source in
      let run disguise =
        let ast, _ = Csyntax.Typecheck.check_source src in
        let irp = Ir.Compile.compile_program ~mode:Ir.Compile.opt_mode ast in
        ignore
          (Opt.Pipeline.run_program
             {
               Opt.Pipeline.default with
               Opt.Pipeline.disguise_pointers = disguise;
             }
             irp);
        (Machine.Vm.run irp).Machine.Vm.r_cycles
      in
      let with_d = run true and without_d = run false in
      Printf.printf "  %-10s %d cycles with, %d without (%+.2f%%)\n"
        w.Workloads.Registry.w_name with_d without_d
        (100.0
        *. float_of_int (with_d - without_d)
        /. float_of_int without_d))
    Workloads.Registry.paper_suite;
  print_newline ()

(* --- ablation: the lib/analysis dataflow clients ------------------------- *)

let ablate_analysis () =
  print_endline "== Ablation: dataflow-analysis annotation pruning ==";
  print_endline "-- annotation counts (safe mode), analysis off -> on";
  let annotation_counts =
    List.map
      (fun w ->
        let count analysis =
          let ast =
            Csyntax.Parser.parse_program w.Workloads.Registry.w_source
          in
          let opts =
            { (Gcsafe.Mode.default Gcsafe.Mode.Safe) with Gcsafe.Mode.analysis }
          in
          (Gcsafe.Annotate.run ~opts ast).Gcsafe.Annotate.keep_live_count
        in
        let none = count Gcsafe.Mode.A_none
        and flow = count Gcsafe.Mode.A_flow in
        Printf.printf "  %-10s %4d -> %4d annotations (%.0f%% pruned)\n"
          w.Workloads.Registry.w_name none flow
          (100.0 *. float_of_int (none - flow) /. float_of_int (max 1 none));
        ( w.Workloads.Registry.w_name,
          Telemetry.Json.Obj
            [
              ("none", Telemetry.Json.Int none);
              ("flow", Telemetry.Json.Int flow);
            ] ))
      Workloads.Registry.paper_suite
  in
  record "annotations" (Telemetry.Json.Obj annotation_counts);
  print_endline "-- residual -O safe overhead vs -O, analysis off / on";
  List.iter
    (fun (machine : Machine.Machdesc.t) ->
      Printf.printf "  %s:\n" machine.Machine.Machdesc.md_name;
      List.iter
        (fun w ->
          let src = w.Workloads.Registry.w_source in
          let base =
            exec_req
              (Harness.Request.make ~config:Harness.Build.Base ~machine src)
          in
          let base_cycles = Harness.Measure.base_cycles_exn base in
          let slowdown analysis =
            Harness.Measure.slowdown_cell ~base_cycles
              (exec_req
                 (Harness.Request.make ~config:Harness.Build.Safe ~machine
                    ~analysis src))
          in
          Printf.printf "    %-10s %-8s off, %-8s on\n"
            w.Workloads.Registry.w_name
            (slowdown Gcsafe.Mode.A_none)
            (slowdown Gcsafe.Mode.A_flow))
        Workloads.Registry.paper_suite)
    Harness.Differ.default_machines;
  print_newline ()

(* --- GC pause and reclamation-drag statistics ---------------------------- *)

(* One instrumented safe-build run per workload: the metrics registry
   yields the GC pause histogram, the heap profiler the per-site drag.
   Both land in BENCH_4.json; the drag totals are reported per analysis
   variant so the JSON captures what pruning costs in retained garbage. *)
let profile_section () =
  print_endline "== GC pauses and reclamation drag (safe build, sparc10) ==";
  let machine = Machine.Machdesc.sparc10 in
  let rows =
    List.map
      (fun w ->
        let drag_of analysis =
          let profiler = Telemetry.Heap_profiler.create () in
          let metrics = Telemetry.Metrics.create () in
          let telemetry =
            Some (Telemetry.Sink.make ~metrics ~profiler ())
          in
          (match
             exec_req ?telemetry
               (Harness.Request.make ~config:Harness.Build.Safe ~machine
                  ~analysis ~final_collect:true ~gc_threshold:2048
                  w.Workloads.Registry.w_source)
           with
          | Harness.Measure.Ran _ -> ()
          | o -> failwith (Harness.Measure.describe o));
          (Telemetry.Heap_profiler.report profiler, metrics)
        in
        let rep_none, _ = drag_of Gcsafe.Mode.A_none in
        let rep_flow, metrics = drag_of Gcsafe.Mode.A_flow in
        let pause_json =
          match
            Telemetry.Metrics.find
              (Telemetry.Metrics.snapshot metrics)
              "vm/gc/pause_ns"
          with
          | Some (Telemetry.Metrics.Histogram { count; sum; max; buckets }) ->
              Telemetry.Json.Obj
                [
                  ("collections", Telemetry.Json.Int count);
                  ("total_ns", Telemetry.Json.Int sum);
                  ("max_ns", Telemetry.Json.Int max);
                  ( "p90_ns",
                    Telemetry.Json.Int
                      (Telemetry.Metrics.percentile buckets 0.9) );
                ]
          | _ -> Telemetry.Json.Null
        in
        Printf.printf
          "  %-10s drag %10d ticks (analysis=none) %10d (flow); %d \
           alloc(s)\n"
          w.Workloads.Registry.w_name
          rep_none.Telemetry.Heap_profiler.r_total_drag
          rep_flow.Telemetry.Heap_profiler.r_total_drag
          rep_flow.Telemetry.Heap_profiler.r_total_allocs;
        ( w.Workloads.Registry.w_name,
          Telemetry.Json.Obj
            [
              ( "drag_ticks_none",
                Telemetry.Json.Int rep_none.Telemetry.Heap_profiler.r_total_drag
              );
              ( "drag_ticks_flow",
                Telemetry.Json.Int rep_flow.Telemetry.Heap_profiler.r_total_drag
              );
              ( "allocs",
                Telemetry.Json.Int
                  rep_flow.Telemetry.Heap_profiler.r_total_allocs );
              ("gc_pause", pause_json);
            ] ))
      Workloads.Registry.paper_suite
  in
  record "gc_profile" (Telemetry.Json.Obj rows);
  print_newline ()

(* --- ablation: telemetry overhead ---------------------------------------- *)

(* The acceptance bar for the instrumentation: with no sink attached the
   VM must run at full speed.  Cycle counts must be bit-identical either
   way (telemetry never perturbs execution); wall clock is reported for
   the off/metrics-on comparison. *)
let ablate_telemetry () =
  print_endline "== Ablation: telemetry overhead (safe build, sparc10) ==";
  let machine = Machine.Machdesc.sparc10 in
  let rows =
    List.map
      (fun w ->
        let req =
          Harness.Request.make ~config:Harness.Build.Safe ~machine
            w.Workloads.Registry.w_source
        in
        let b =
          Harness.Build.compile
            ~options:(Harness.Request.build_options req)
            Harness.Build.Safe w.Workloads.Registry.w_source
        in
        let timed telemetry =
          let t0 = Unix.gettimeofday () in
          match Harness.Measure.exec ?telemetry req b with
          | Harness.Measure.Ran r ->
              (Unix.gettimeofday () -. t0, r.Harness.Measure.o_cycles)
          | o -> failwith (Harness.Measure.describe o)
        in
        let off_s, off_cycles = timed Telemetry.Sink.none in
        let on_s, on_cycles =
          timed (Some (Telemetry.Sink.make ()))
        in
        if off_cycles <> on_cycles then
          failwith
            (Printf.sprintf "%s: telemetry perturbed execution (%d vs %d)"
               w.Workloads.Registry.w_name off_cycles on_cycles);
        Printf.printf
          "  %-10s %.3fs off  %.3fs metrics-on  (x%.2f, cycles identical)\n"
          w.Workloads.Registry.w_name off_s on_s
          (on_s /. (off_s +. 1e-9));
        ( w.Workloads.Registry.w_name,
          Telemetry.Json.Obj
            [
              ("off_seconds", Telemetry.Json.Float off_s);
              ("metrics_seconds", Telemetry.Json.Float on_s);
              ("cycles", Telemetry.Json.Int off_cycles);
            ] ))
      Workloads.Registry.paper_suite
  in
  record "telemetry_overhead" (Telemetry.Json.Obj rows);
  print_newline ()

(* --- bechamel micro-benchmarks of the collector primitives --------------- *)

let micro () =
  print_endline "== Micro: collector primitive costs (bechamel, wall clock) ==";
  let open Bechamel in
  let heap = Gcheap.Heap.create () in
  let objs =
    Array.init 1024 (fun i -> Gcheap.Heap.alloc heap (16 + (i mod 200)))
  in
  let test_alloc =
    Test.make ~name:"GC_malloc 48 bytes"
      (Staged.stage (fun () -> ignore (Gcheap.Heap.alloc heap 48)))
  in
  let i = ref 0 in
  let test_base =
    Test.make ~name:"GC_base (height-2 page map)"
      (Staged.stage (fun () ->
           i := (!i + 1) land 1023;
           ignore (Gcheap.Heap.base_of heap (objs.(!i) + 7))))
  in
  let test_same_obj =
    Test.make ~name:"GC_same_obj"
      (Staged.stage (fun () ->
           i := (!i + 1) land 1023;
           ignore (Gcheap.Heap.same_obj heap (objs.(!i) + 8) objs.(!i))))
  in
  let test_collect =
    let h2 = Gcheap.Heap.create () in
    let roots =
      Array.to_list (Array.init 64 (fun i -> Gcheap.Heap.alloc h2 (24 + i)))
    in
    Test.make ~name:"full collection (64 live objects)"
      (Staged.stage (fun () ->
           ignore (Gcheap.Heap.collect ~extra_roots:roots h2)))
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
        Toolkit.Instance.monotonic_clock raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-36s %10.1f ns/op\n" name est
        | _ -> Printf.printf "  %-36s (no estimate)\n" name)
      results
  in
  (* the Related Work comparison: our page-map check vs a Jones &
     Kelly-style splay tree of objects *)
  let splay = Gcheap.Splay.create () in
  Array.iter
    (fun a ->
      match Gcheap.Heap.base_of heap a with
      | Some base -> (
          match Gcheap.Heap.extent_of heap base with
          | Some (b, sz) ->
              if Gcheap.Splay.find splay b = None then
                Gcheap.Splay.insert splay ~base:b ~size:sz
          | None -> ())
      | None -> ())
    objs;
  let test_splay_same_obj =
    Test.make ~name:"same_obj via splay tree [JonesKelly95]"
      (Staged.stage (fun () ->
           i := (!i + 1) land 1023;
           ignore (Gcheap.Splay.same_obj splay (objs.(!i) + 8) objs.(!i))))
  in
  List.iter benchmark
    [ test_alloc; test_base; test_same_obj; test_splay_same_obj; test_collect ];
  print_newline ()

(* --- generational collector: minor vs major pauses (BENCH_5.json) -------- *)

(* The pause comparison uses the VM-tick clock — words scanned per
   collection — so the numbers are deterministic: no instructions retire
   during a collection, and the scan volume is what a pause costs in
   mutator terms.  Majors come from a stop-the-world run (the paper's
   collector: every collection scans the full live heap); minors from a
   generational run of the same build at the same threshold.  Both runs
   must produce identical output — the collector mode is not allowed to
   be observable. *)

let bench5_data : (string * Telemetry.Json.t) list ref = ref []

let record5 key v = bench5_data := (key, v) :: !bench5_data

let write_bench5_json () =
  if !bench5_data <> [] then begin
    let doc = Telemetry.Json.Obj (List.rev !bench5_data) in
    Out_channel.with_open_text "BENCH_5.json" (fun oc ->
        Out_channel.output_string oc (Telemetry.Json.to_string doc ^ "\n"));
    Printf.printf "wrote BENCH_5.json\n"
  end

let gcmodes () =
  print_endline
    "== GC modes: generational minor pauses vs stop-the-world majors \
     (safe build, sparc10) ==";
  let machine = Machine.Machdesc.sparc10 in
  (* small enough that majors fire mid-run against a live heap, not just
     at exit *)
  let threshold = 16384 in
  let hist snap name =
    match Telemetry.Metrics.find snap name with
    | Some (Telemetry.Metrics.Histogram { count; buckets; _ }) ->
        ( count,
          Telemetry.Metrics.percentile buckets 0.5,
          Telemetry.Metrics.percentile buckets 0.9 )
    | _ -> (0, 0, 0)
  in
  let counter snap name =
    match Telemetry.Metrics.find snap name with
    | Some (Telemetry.Metrics.Counter n) -> n
    | _ -> 0
  in
  let run_mode src gc_mode =
    let metrics = Telemetry.Metrics.create () in
    let telemetry = Some (Telemetry.Sink.make ~metrics ()) in
    match
      exec_req ?telemetry
        (Harness.Request.make ~config:Harness.Build.Safe ~machine ~gc_mode
           ~final_collect:true ~gc_threshold:threshold src)
    with
    | Harness.Measure.Ran r ->
        (r.Harness.Measure.o_output, Telemetry.Metrics.snapshot metrics)
    | o -> failwith (Harness.Measure.describe o)
  in
  let rows =
    List.map
      (fun name ->
        let w =
          match Workloads.Registry.by_name name with
          | Some w -> w
          | None -> failwith ("unknown workload " ^ name)
        in
        let src = w.Workloads.Registry.w_source in
        let stw_out, stw = run_mode src Gcheap.Heap.Stw in
        let gen_out, gen = run_mode src Gcheap.Heap.Gen in
        if not (String.equal stw_out gen_out) then
          failwith (name ^ ": gc mode changed program output");
        let majors, major_p50, major_p90 = hist stw "vm/gc/major/pause_words" in
        let minors, minor_p50, minor_p90 = hist gen "vm/gc/minor/pause_words" in
        let gen_majors, gen_major_p50, _ = hist gen "vm/gc/major/pause_words" in
        Printf.printf
          "  %-10s minor p50 %6d words (n=%d)   stw major p50 %6d words \
           (n=%d)   %4.1fx smaller\n"
          name minor_p50 minors major_p50 majors
          (float_of_int major_p50 /. float_of_int (max 1 minor_p50));
        Printf.printf
          "  %-10s gen-mode majors: %d (p50 %d words); promoted %d, cards \
           scanned %d\n"
          "" gen_majors gen_major_p50
          (counter gen "vm/gc/promotions")
          (counter gen "vm/gc/cards_scanned");
        ( name,
          Telemetry.Json.Obj
            [
              ("minor_collections", Telemetry.Json.Int minors);
              ("minor_p50_pause_words", Telemetry.Json.Int minor_p50);
              ("minor_p90_pause_words", Telemetry.Json.Int minor_p90);
              ("major_collections", Telemetry.Json.Int majors);
              ("major_p50_pause_words", Telemetry.Json.Int major_p50);
              ("major_p90_pause_words", Telemetry.Json.Int major_p90);
              ("gen_major_collections", Telemetry.Json.Int gen_majors);
              ("promotions", Telemetry.Json.Int (counter gen "vm/gc/promotions"));
              ( "cards_scanned",
                Telemetry.Json.Int (counter gen "vm/gc/cards_scanned") );
              ("outputs_match", Telemetry.Json.Bool true);
            ] ))
      [ "cordtest"; "cfrac" ]
  in
  record5 "gc_threshold" (Telemetry.Json.Int threshold);
  record5 "pauses" (Telemetry.Json.Obj rows);
  (* the differential matrix over both collector modes: unsafe examples
     must fail identically, safe builds must never diverge *)
  print_endline
    "-- stw/gen differential scan (example corpus, every schedule mode)";
  let plan =
    {
      Stress.Driver.default_plan with
      Stress.Driver.p_matrix =
        {
          Harness.Request.default_matrix with
          Harness.Request.m_machines = [ machine ];
          Harness.Request.m_gc_modes = [ Gcheap.Heap.Stw; Gcheap.Heap.Gen ];
        };
    }
  in
  let targets =
    match Stress.Corpus.resolve "examples" with
    | Some ts -> ts
    | None -> failwith "example corpus missing"
  in
  let report = Stress.Driver.run ~plan targets in
  let unexpected = List.length (Stress.Driver.unexpected report) in
  Printf.printf
    "  %d target(s), %d subject(s), %d run(s): %d finding(s), %d unexpected \
     divergence(s)\n"
    report.Stress.Driver.r_targets report.Stress.Driver.r_subjects
    report.Stress.Driver.r_runs
    (List.length report.Stress.Driver.r_findings)
    unexpected;
  if unexpected > 0 then failwith "stw/gen divergence in the example corpus";
  record5 "stress"
    (Telemetry.Json.Obj
       [
         ("targets", Telemetry.Json.Int report.Stress.Driver.r_targets);
         ("subjects", Telemetry.Json.Int report.Stress.Driver.r_subjects);
         ("runs", Telemetry.Json.Int report.Stress.Driver.r_runs);
         ( "findings",
           Telemetry.Json.Int (List.length report.Stress.Driver.r_findings) );
         ("unexpected_divergences", Telemetry.Json.Int unexpected);
       ]);
  print_newline ()

(* --- bump nursery: alloc throughput and minor pauses (BENCH_10.json) ----- *)

(* Two generational runs of every paper workload at the same threshold —
   nursery disabled (the legacy shared-page young allocator) and the
   default bump nursery — plus a stop-the-world reference.  Pause
   numbers stay on the deterministic words-of-work clock; allocation
   throughput (objects per wall second over the VM run only, builds
   excluded) is the one wall-clock figure, reported per configuration so
   the improvement ratio is visible.  Stop-the-world runs must be
   bit-identical under any nursery setting — the knob is dead in that
   mode by construction, and the gate in CI holds us to it. *)

let bench10_data : (string * Telemetry.Json.t) list ref = ref []

let record10 key v = bench10_data := (key, v) :: !bench10_data

let write_bench10_json () =
  if !bench10_data <> [] then begin
    let doc = Telemetry.Json.Obj (List.rev !bench10_data) in
    Out_channel.with_open_text "BENCH_10.json" (fun oc ->
        Out_channel.output_string oc (Telemetry.Json.to_string doc ^ "\n"));
    Printf.printf "wrote BENCH_10.json\n"
  end

let nursery_section () =
  print_endline
    "== Nursery: bump-pointer allocation throughput and minor pauses \
     (safe build, sparc10) ==";
  let machine = Machine.Machdesc.sparc10 in
  let threshold = 16384 in
  let nursery_default = (Machine.Vm.default_config ~machine ()).Machine.Vm.vm_nursery_pages in
  let hist snap name =
    match Telemetry.Metrics.find snap name with
    | Some (Telemetry.Metrics.Histogram { count; buckets; _ }) ->
        ( count,
          Telemetry.Metrics.percentile buckets 0.5,
          Telemetry.Metrics.percentile buckets 0.9 )
    | _ -> (0, 0, 0)
  in
  let run src gc_mode nursery_pages =
    let metrics = Telemetry.Metrics.create () in
    let telemetry = Some (Telemetry.Sink.make ~metrics ()) in
    let req =
      Harness.Request.make ~config:Harness.Build.Safe ~machine ~gc_mode
        ~nursery_pages ~final_collect:true ~gc_threshold:threshold src
    in
    let b =
      Harness.Build.compile
        ~options:(Harness.Request.build_options req)
        req.Harness.Request.config src
    in
    let t0 = Unix.gettimeofday () in
    match Harness.Measure.exec ?telemetry req b with
    | Harness.Measure.Ran r ->
        (r, Telemetry.Metrics.snapshot metrics, Unix.gettimeofday () -. t0)
    | o -> failwith (Harness.Measure.describe o)
  in
  let rows =
    List.map
      (fun (w : Workloads.Registry.workload) ->
        let name = w.Workloads.Registry.w_name in
        let src = w.Workloads.Registry.w_source in
        (* the knob must be invisible in stop-the-world mode *)
        let stw0, _, _ = run src Gcheap.Heap.Stw 0 in
        let stw8, _, _ = run src Gcheap.Heap.Stw nursery_default in
        let stw_identical =
          String.equal stw0.Harness.Measure.o_output
            stw8.Harness.Measure.o_output
          && stw0.Harness.Measure.o_cycles = stw8.Harness.Measure.o_cycles
          && stw0.Harness.Measure.o_gc_count = stw8.Harness.Measure.o_gc_count
        in
        if not stw_identical then
          failwith (name ^ ": nursery knob observable in stw mode");
        let legacy, legacy_m, legacy_s = run src Gcheap.Heap.Gen 0 in
        let bump, bump_m, bump_s = run src Gcheap.Heap.Gen nursery_default in
        let outputs_match =
          String.equal stw0.Harness.Measure.o_output
            legacy.Harness.Measure.o_output
          && String.equal stw0.Harness.Measure.o_output
               bump.Harness.Measure.o_output
        in
        if not outputs_match then
          failwith (name ^ ": nursery changed program output");
        let lminors, lp50, lp90 = hist legacy_m "vm/gc/minor/pause_words" in
        let bminors, bp50, bp90 = hist bump_m "vm/gc/minor/pause_words" in
        let rate allocs s = float_of_int allocs /. max 1e-9 s in
        let legacy_rate = rate legacy.Harness.Measure.o_allocs legacy_s in
        let bump_rate = rate bump.Harness.Measure.o_allocs bump_s in
        Printf.printf
          "  %-10s alloc throughput %8.0f -> %8.0f obj/s (%4.2fx)   minor \
           p50 %6d -> %6d words\n"
          name legacy_rate bump_rate
          (bump_rate /. max 1e-9 legacy_rate)
          lp50 bp50;
        ( name,
          Telemetry.Json.Obj
            [
              ("stw_identical", Telemetry.Json.Bool stw_identical);
              ("outputs_match", Telemetry.Json.Bool outputs_match);
              ("allocs", Telemetry.Json.Int bump.Harness.Measure.o_allocs);
              ( "legacy",
                Telemetry.Json.Obj
                  [
                    ("minor_collections", Telemetry.Json.Int lminors);
                    ("minor_p50_pause_words", Telemetry.Json.Int lp50);
                    ("minor_p90_pause_words", Telemetry.Json.Int lp90);
                    ("vm_seconds", Telemetry.Json.Float legacy_s);
                    ("allocs_per_second", Telemetry.Json.Float legacy_rate);
                  ] );
              ( "nursery",
                Telemetry.Json.Obj
                  [
                    ("minor_collections", Telemetry.Json.Int bminors);
                    ("minor_p50_pause_words", Telemetry.Json.Int bp50);
                    ("minor_p90_pause_words", Telemetry.Json.Int bp90);
                    ("vm_seconds", Telemetry.Json.Float bump_s);
                    ("allocs_per_second", Telemetry.Json.Float bump_rate);
                  ] );
              ( "throughput_ratio",
                Telemetry.Json.Float (bump_rate /. max 1e-9 legacy_rate) );
            ] ))
      Workloads.Registry.paper_suite
  in
  record10 "gc_threshold" (Telemetry.Json.Int threshold);
  record10 "nursery_pages" (Telemetry.Json.Int nursery_default);
  record10 "workloads" (Telemetry.Json.Obj rows);
  (* differential matrices with the nursery on: the schedule sweep over
     stw/gen/inc and the chaos sweeps must both see zero unexpected
     divergences *)
  print_endline
    "-- stw/gen/inc differential scan with the nursery enabled (example \
     corpus)";
  let targets =
    match Stress.Corpus.resolve "examples" with
    | Some ts -> ts
    | None -> failwith "example corpus missing"
  in
  let matrix =
    {
      Harness.Request.default_matrix with
      Harness.Request.m_machines = [ machine ];
      Harness.Request.m_gc_modes =
        [ Gcheap.Heap.Stw; Gcheap.Heap.Gen; Gcheap.Heap.Inc ];
      Harness.Request.m_nursery_pages = Some nursery_default;
    }
  in
  let plan =
    { Stress.Driver.default_plan with Stress.Driver.p_matrix = matrix }
  in
  let report = Stress.Driver.run ~plan targets in
  let unexpected = List.length (Stress.Driver.unexpected report) in
  Printf.printf
    "  %d target(s), %d subject(s), %d run(s): %d unexpected divergence(s)\n"
    report.Stress.Driver.r_targets report.Stress.Driver.r_subjects
    report.Stress.Driver.r_runs unexpected;
  if unexpected > 0 then
    failwith "stw/gen/inc divergence with the nursery enabled";
  print_endline "-- chaos sweeps with the nursery enabled (example corpus)";
  let chaos_plan =
    {
      Stress.Chaos.default_plan with
      Stress.Chaos.c_matrix =
        {
          Stress.Chaos.default_plan.Stress.Chaos.c_matrix with
          Harness.Request.m_machines = [ machine ];
          Harness.Request.m_gc_modes = [ Gcheap.Heap.Gen; Gcheap.Heap.Inc ];
          Harness.Request.m_nursery_pages = Some nursery_default;
        };
    }
  in
  let chaos_report = Stress.Chaos.run ~plan:chaos_plan targets in
  let chaos_unexpected = List.length (Stress.Chaos.unexpected chaos_report) in
  Printf.printf "  %d unexpected chaos finding(s)\n" chaos_unexpected;
  if chaos_unexpected > 0 then
    failwith "chaos divergence with the nursery enabled";
  record10 "stress"
    (Telemetry.Json.Obj
       [
         ("targets", Telemetry.Json.Int report.Stress.Driver.r_targets);
         ("subjects", Telemetry.Json.Int report.Stress.Driver.r_subjects);
         ("runs", Telemetry.Json.Int report.Stress.Driver.r_runs);
         ("unexpected_divergences", Telemetry.Json.Int unexpected);
         ("chaos_unexpected", Telemetry.Json.Int chaos_unexpected);
       ]);
  print_newline ()

(* --- resilience: OOM recovery and chaos sweeps (BENCH_6.json) ------------ *)

(* Three deterministic measurements of the chaos-hardened runtime:

   1. Chaos off is free and invisible: running with the OOM machinery
      explicitly threaded (an effectively unlimited heap ceiling, the
      collect-expand policy, no failpoints) must produce bit-identical
      cycle counts and output to the default run, in both collector
      modes.  Any drift means the failure paths leak into healthy runs.

   2. Emergency collection earns its keep: for every workload, the
      smallest heap ceiling under which collect-expand completes is
      found by search, and the trap policy must exhaust at that same
      ceiling — the gap is exactly what collect-then-expand recovers.

   3. The chaos sweeps (injected allocation failures, worker crashes,
      cache corruption) over every workload report zero unexpected
      findings. *)

let bench6_data : (string * Telemetry.Json.t) list ref = ref []

let record6 key v = bench6_data := (key, v) :: !bench6_data

let write_bench6_json () =
  if !bench6_data <> [] then begin
    let doc = Telemetry.Json.Obj (List.rev !bench6_data) in
    Out_channel.with_open_text "BENCH_6.json" (fun oc ->
        Out_channel.output_string oc (Telemetry.Json.to_string doc ^ "\n"));
    Printf.printf "wrote BENCH_6.json\n"
  end

let resilience () =
  print_endline "== Resilience: OOM recovery and chaos sweeps (sparc10) ==";
  let machine = Machine.Machdesc.sparc10 in
  let build gc_mode src =
    Harness.Build.compile
      ~options:
        { (Harness.Build.for_machine machine) with Harness.Build.gc_mode }
      Harness.Build.Safe src
  in
  (* 1. chaos-off identity *)
  print_endline
    "-- chaos off: explicit OOM machinery vs default run (must be \
     bit-identical)";
  let identity_rows =
    List.concat_map
      (fun w ->
        List.map
          (fun gc_mode ->
            let src = w.Workloads.Registry.w_source in
            let b = build gc_mode src in
            let req0 =
              Harness.Request.make ~config:Harness.Build.Safe ~machine
                ~gc_mode src
            in
            let run ?(heap_limit = 0)
                ?(oom_policy = Gcheap.Heap.Collect_expand)
                ?(alloc_failpoints = Gcheap.Failpoint.Never) () =
              match
                Harness.Measure.exec
                  {
                    req0 with
                    Harness.Request.heap_limit;
                    oom_policy;
                    alloc_failpoints;
                  }
                  b
              with
              | Harness.Measure.Ran r -> r
              | o -> failwith (Harness.Measure.describe o)
            in
            let plain = run () in
            let guarded =
              run ~heap_limit:(1 lsl 30)
                ~oom_policy:Gcheap.Heap.Collect_expand
                ~alloc_failpoints:Gcheap.Failpoint.Never ()
            in
            if plain.Harness.Measure.o_cycles <> guarded.Harness.Measure.o_cycles
            then
              failwith
                (Printf.sprintf
                   "%s (%s): chaos-off cycles drifted: %d default vs %d \
                    guarded"
                   w.Workloads.Registry.w_name
                   (Gcheap.Heap.gc_mode_name gc_mode)
                   plain.Harness.Measure.o_cycles
                   guarded.Harness.Measure.o_cycles);
            if
              not
                (String.equal plain.Harness.Measure.o_output
                   guarded.Harness.Measure.o_output)
            then
              failwith
                (w.Workloads.Registry.w_name
               ^ ": chaos-off output drifted under the OOM machinery");
            Printf.printf "  %-10s %-4s %9d cycle(s), identical\n"
              w.Workloads.Registry.w_name
              (Gcheap.Heap.gc_mode_name gc_mode)
              plain.Harness.Measure.o_cycles;
            ( w.Workloads.Registry.w_name ^ "_"
              ^ Gcheap.Heap.gc_mode_name gc_mode,
              Telemetry.Json.Obj
                [
                  ("cycles", Telemetry.Json.Int plain.Harness.Measure.o_cycles);
                  ("identical", Telemetry.Json.Bool true);
                ] ))
          [ Gcheap.Heap.Stw; Gcheap.Heap.Gen ])
      Workloads.Registry.paper_suite
  in
  record6 "chaos_off" (Telemetry.Json.Obj identity_rows);
  record6 "chaos_off_identical" (Telemetry.Json.Bool true);
  (* 2. collect-expand recovery margin *)
  print_endline
    "-- emergency collection margin: smallest ceiling where collect-expand \
     completes must trap under the trap policy";
  let margin_rows =
    List.map
      (fun w ->
        let b = build Gcheap.Heap.Stw w.Workloads.Registry.w_source in
        let req0 =
          Harness.Request.make ~config:Harness.Build.Safe ~machine
            w.Workloads.Registry.w_source
        in
        let outcome limit policy =
          Harness.Measure.exec
            {
              req0 with
              Harness.Request.heap_limit = limit;
              Harness.Request.oom_policy = policy;
            }
            b
        in
        let completes limit =
          match outcome limit Gcheap.Heap.Collect_expand with
          | Harness.Measure.Ran r -> Some r
          | Harness.Measure.Exhausted _ -> None
          | o -> failwith (Harness.Measure.describe o)
        in
        (* bracket the smallest collect-expand-viable ceiling, then
           binary-search it; allocation is deterministic, so the search
           is too *)
        let hi = ref 1024 in
        while completes !hi = None && !hi < 1 lsl 24 do
          hi := !hi * 2
        done;
        if completes !hi = None then
          failwith (w.Workloads.Registry.w_name ^ ": no viable heap ceiling");
        let lo = ref (!hi / 2) in
        (* invariant: !hi completes, !lo does not (1024/2 = 512 words is
           below a single page) *)
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if completes mid = None then lo := mid else hi := mid
        done;
        let min_limit = !hi in
        let recovered =
          match completes min_limit with
          | Some r -> r
          | None -> assert false
        in
        let trap_exhausts =
          match outcome min_limit Gcheap.Heap.Trap with
          | Harness.Measure.Exhausted _ -> true
          | Harness.Measure.Ran _ -> false
          | o -> failwith (Harness.Measure.describe o)
        in
        if not trap_exhausts then
          failwith
            (w.Workloads.Registry.w_name
           ^ ": trap policy completed at the collect-expand minimum — \
              emergency collection recovered nothing");
        Printf.printf
          "  %-10s min ceiling %7d words: collect-expand ok (%d emergency \
           collection(s)), trap exhausts\n"
          w.Workloads.Registry.w_name min_limit
          recovered.Harness.Measure.o_emergency;
        ( w.Workloads.Registry.w_name,
          Telemetry.Json.Obj
            [
              ("min_limit_words", Telemetry.Json.Int min_limit);
              ( "emergency_collections",
                Telemetry.Json.Int recovered.Harness.Measure.o_emergency );
              ("collect_expand_completes", Telemetry.Json.Bool true);
              ("trap_exhausts", Telemetry.Json.Bool trap_exhausts);
            ] ))
      Workloads.Registry.paper_suite
  in
  record6 "recovery_margin" (Telemetry.Json.Obj margin_rows);
  (* 3. chaos sweeps over the paper suite *)
  print_endline "-- chaos sweeps (allocation failures, worker faults, cache)";
  let plan =
    {
      Stress.Chaos.default_plan with
      Stress.Chaos.c_matrix =
        {
          Stress.Chaos.default_plan.Stress.Chaos.c_matrix with
          Harness.Request.m_machines = [ machine ];
        };
      Stress.Chaos.c_max_points = 8;
      Stress.Chaos.c_trap_probes = 2;
    }
  in
  let report = Stress.Chaos.run ~plan Stress.Corpus.workloads in
  Format.printf "%a@." Stress.Chaos.pp_report report;
  if Stress.Chaos.unexpected report <> [] then
    failwith "unexpected chaos finding in the paper suite";
  record6 "chaos"
    (Telemetry.Json.Obj
       [
         ("seed", Telemetry.Json.Int report.Stress.Chaos.c_plan_seed);
         ("subjects", Telemetry.Json.Int report.Stress.Chaos.c_subject_count);
         ("injections", Telemetry.Json.Int report.Stress.Chaos.c_injections);
         ("recovered", Telemetry.Json.Int report.Stress.Chaos.c_recovered);
         ("structured", Telemetry.Json.Int report.Stress.Chaos.c_structured);
         ( "emergency_collections",
           Telemetry.Json.Int report.Stress.Chaos.c_emergency_collections );
         ( "worker_faults",
           Telemetry.Json.Int report.Stress.Chaos.c_worker_faults );
         ( "worker_restarts",
           Telemetry.Json.Int report.Stress.Chaos.c_worker_restarts );
         ( "cache_corruptions",
           Telemetry.Json.Int report.Stress.Chaos.c_cache_corruptions );
         ( "cache_recovered",
           Telemetry.Json.Int report.Stress.Chaos.c_cache_recovered );
         ("quarantined", Telemetry.Json.Int report.Stress.Chaos.c_quarantined);
         ( "findings",
           Telemetry.Json.Int (List.length report.Stress.Chaos.c_findings) );
         ( "unexpected",
           Telemetry.Json.Int
             (List.length (Stress.Chaos.unexpected report)) );
       ]);
  print_newline ()

(* --- incremental marking: pause-time SLOs (BENCH_8.json) ----------------- *)

(* Pause numbers live on the same deterministic clock as BENCH_5: words
   of collector work per increment, so the sweep is reproducible and
   gateable.  For every paper workload and every budget in the sweep,
   the incremental run must (a) produce bit-identical output to the
   stop-the-world run of the same build, and (b) keep its p99 increment
   at or below the budget.  Only a cycle's two atomic fences — the root
   snapshot and mark finalization — may overrun, which is why the CI
   gate reads the 2048-word row: the largest atomic root scan in the
   suite (gs) is ~1.1k words, so from 2048 up even those fit.

   The service tier then replays the four workloads through [gcsafed]
   per budget: each request carries the budget as its pause SLO, and
   the [service/slo/{met,violated}] counters plus the end-to-end
   latency percentiles land next to the BENCH_7 bombardment
   baselines. *)

let bench8_data : (string * Telemetry.Json.t) list ref = ref []

let record8 key v = bench8_data := (key, v) :: !bench8_data

let write_bench8_json () =
  if !bench8_data <> [] then begin
    let doc = Telemetry.Json.Obj (List.rev !bench8_data) in
    Out_channel.with_open_text "BENCH_8.json" (fun oc ->
        Out_channel.output_string oc (Telemetry.Json.to_string doc ^ "\n"));
    Printf.printf "wrote BENCH_8.json\n"
  end

let incremental () =
  print_endline
    "== Incremental marking: pause percentiles vs budget (safe build, \
     sparc10) ==";
  let machine = Machine.Machdesc.sparc10 in
  let threshold = 16384 in
  let budgets = [ 256; 512; 1024; 2048; 4096 ] in
  let hist snap name =
    match Telemetry.Metrics.find snap name with
    | Some (Telemetry.Metrics.Histogram { count; buckets; _ }) ->
        ( count,
          Telemetry.Metrics.percentile buckets 0.5,
          Telemetry.Metrics.percentile buckets 0.99 )
    | _ -> (0, 0, 0)
  in
  let counter snap name =
    match Telemetry.Metrics.find snap name with
    | Some (Telemetry.Metrics.Counter n) -> n
    | _ -> 0
  in
  let run_mode ?gc_pause_budget src gc_mode =
    let metrics = Telemetry.Metrics.create () in
    let telemetry = Some (Telemetry.Sink.make ~metrics ()) in
    match
      exec_req ?telemetry
        (Harness.Request.make ~config:Harness.Build.Safe ~machine ~gc_mode
           ?gc_pause_budget ~final_collect:true ~gc_threshold:threshold src)
    with
    | Harness.Measure.Ran r ->
        (r.Harness.Measure.o_output, Telemetry.Metrics.snapshot metrics)
    | o -> failwith (Harness.Measure.describe o)
  in
  let rows =
    List.map
      (fun w ->
        let name = w.Workloads.Registry.w_name in
        let src = w.Workloads.Registry.w_source in
        let stw_out, _ = run_mode src Gcheap.Heap.Stw in
        let cells =
          List.map
            (fun budget ->
              let out, snap =
                run_mode ~gc_pause_budget:budget src Gcheap.Heap.Inc
              in
              if not (String.equal out stw_out) then
                failwith (name ^ ": incremental mode changed program output");
              let n, p50, p99 = hist snap "vm/gc/incremental/pause_words" in
              let overruns = counter snap "vm/gc/incremental/budget_overruns" in
              Printf.printf
                "  %-10s budget %5d: %6d increment(s)  p50 %5d  p99 %5d \
                 words  overrun(s) %d\n"
                name budget n p50 p99 overruns;
              ( string_of_int budget,
                Telemetry.Json.Obj
                  [
                    ("increments", Telemetry.Json.Int n);
                    ("p50_pause_words", Telemetry.Json.Int p50);
                    ("p99_pause_words", Telemetry.Json.Int p99);
                    ( "final_marks",
                      Telemetry.Json.Int
                        (counter snap "vm/gc/incremental/final_marks") );
                    ( "barrier_grays",
                      Telemetry.Json.Int
                        (counter snap "vm/gc/incremental/barrier_grays") );
                    ("budget_overruns", Telemetry.Json.Int overruns);
                    (* the histogram buckets are powers of two, so the
                       p99 estimate rounds up to a bucket bound; zero
                       overruns is the exact statement that every
                       increment — p99 included — fit the budget *)
                    ("within_budget", Telemetry.Json.Bool (overruns = 0));
                    ("outputs_match", Telemetry.Json.Bool true);
                  ] ))
            budgets
        in
        (name, Telemetry.Json.Obj cells))
      Workloads.Registry.paper_suite
  in
  record8 "gc_threshold" (Telemetry.Json.Int threshold);
  record8 "budget_sweep_words"
    (Telemetry.Json.List (List.map (fun b -> Telemetry.Json.Int b) budgets));
  record8 "pauses" (Telemetry.Json.Obj rows);
  (* the differential matrix over all three collector modes, then the
     chaos sweep: emergency collections landing mid-cycle must abandon
     soundly, never diverge *)
  print_endline
    "-- stw/gen/inc differential scan (example corpus, every schedule mode)";
  let all_modes = [ Gcheap.Heap.Stw; Gcheap.Heap.Gen; Gcheap.Heap.Inc ] in
  let plan =
    {
      Stress.Driver.default_plan with
      Stress.Driver.p_matrix =
        {
          Harness.Request.default_matrix with
          Harness.Request.m_machines = [ machine ];
          Harness.Request.m_gc_modes = all_modes;
        };
    }
  in
  let targets =
    match Stress.Corpus.resolve "examples" with
    | Some ts -> ts
    | None -> failwith "example corpus missing"
  in
  let report = Stress.Driver.run ~plan targets in
  let unexpected = List.length (Stress.Driver.unexpected report) in
  Printf.printf
    "  %d target(s), %d subject(s), %d run(s): %d finding(s), %d unexpected \
     divergence(s)\n"
    report.Stress.Driver.r_targets report.Stress.Driver.r_subjects
    report.Stress.Driver.r_runs
    (List.length report.Stress.Driver.r_findings)
    unexpected;
  if unexpected > 0 then
    failwith "stw/gen/inc divergence in the example corpus";
  record8 "stress"
    (Telemetry.Json.Obj
       [
         ("targets", Telemetry.Json.Int report.Stress.Driver.r_targets);
         ("subjects", Telemetry.Json.Int report.Stress.Driver.r_subjects);
         ("runs", Telemetry.Json.Int report.Stress.Driver.r_runs);
         ( "findings",
           Telemetry.Json.Int (List.length report.Stress.Driver.r_findings) );
         ("unexpected_divergences", Telemetry.Json.Int unexpected);
       ]);
  print_endline
    "-- chaos sweep over all three modes (alloc failures mid-cycle)";
  let chaos_plan =
    {
      Stress.Chaos.default_plan with
      Stress.Chaos.c_matrix =
        {
          Stress.Chaos.default_plan.Stress.Chaos.c_matrix with
          Harness.Request.m_machines = [ machine ];
          Harness.Request.m_gc_modes = all_modes;
        };
      Stress.Chaos.c_max_points = 8;
      Stress.Chaos.c_trap_probes = 2;
    }
  in
  let chaos_report = Stress.Chaos.run ~plan:chaos_plan Stress.Corpus.workloads in
  Format.printf "%a@." Stress.Chaos.pp_report chaos_report;
  let chaos_unexpected = List.length (Stress.Chaos.unexpected chaos_report) in
  if chaos_unexpected > 0 then
    failwith "unexpected chaos finding under incremental marking";
  record8 "chaos"
    (Telemetry.Json.Obj
       [
         ("seed", Telemetry.Json.Int chaos_report.Stress.Chaos.c_plan_seed);
         ( "subjects",
           Telemetry.Json.Int chaos_report.Stress.Chaos.c_subject_count );
         ( "injections",
           Telemetry.Json.Int chaos_report.Stress.Chaos.c_injections );
         ( "emergency_collections",
           Telemetry.Json.Int chaos_report.Stress.Chaos.c_emergency_collections
         );
         ("unexpected", Telemetry.Json.Int chaos_unexpected);
       ]);
  (* the service tier: the budget is the per-request pause SLO *)
  print_endline "-- gcsafed: end-to-end latency and SLO accounting per budget";
  let service gc_mode gc_pause_budget =
    let t = Service.Gcsafed.create Service.Gcsafed.default_config in
    List.iteri
      (fun i w ->
        Service.Gcsafed.submit ~arrival:(i * 1000) t
          (Harness.Request.make ~label:w.Workloads.Registry.w_name
             ~config:Harness.Build.Safe ~machine ~gc_mode ?gc_pause_budget
             ~gc_threshold:threshold w.Workloads.Registry.w_source))
      Workloads.Registry.paper_suite;
    Service.Gcsafed.shutdown t;
    let rp = Service.Gcsafed.report t in
    let snap = Telemetry.Metrics.snapshot (Service.Gcsafed.metrics t) in
    if rp.Service.Gcsafed.rp_unexpected > 0 then
      failwith "unexpected outcome in the SLO service sweep";
    (* exact end-to-end latencies from the completions (the registry
       histogram buckets are too coarse to resolve a budget sweep) *)
    let lat =
      List.sort compare
        (List.map
           (fun c ->
             c.Service.Gcsafed.r_finish - c.Service.Gcsafed.r_arrival)
           (Service.Gcsafed.completions t))
    in
    let pct p =
      match lat with
      | [] -> 0
      | _ ->
          let n = List.length lat in
          let rank = min (n - 1) (int_of_float (ceil (p *. float n)) - 1) in
          List.nth lat (max 0 rank)
    in
    ( pct 0.5,
      pct 0.99,
      counter snap "service/slo/met",
      counter snap "service/slo/violated" )
  in
  let stw_p50, stw_p99, _, _ = service Gcheap.Heap.Stw None in
  Printf.printf "  %-16s latency p50 %8d  p99 %8d ticks (baseline)\n" "stw"
    stw_p50 stw_p99;
  let inc_rows =
    List.map
      (fun budget ->
        let p50, p99, met, violated =
          service Gcheap.Heap.Inc (Some budget)
        in
        Printf.printf
          "  inc budget %5d: latency p50 %8d  p99 %8d ticks   slo met %d / \
           violated %d\n"
          budget p50 p99 met violated;
        ( string_of_int budget,
          Telemetry.Json.Obj
            [
              ("latency_p50", Telemetry.Json.Int p50);
              ("latency_p99", Telemetry.Json.Int p99);
              ("slo_met", Telemetry.Json.Int met);
              ("slo_violated", Telemetry.Json.Int violated);
            ] ))
      budgets
  in
  record8 "service"
    (Telemetry.Json.Obj
       [
         ( "stw_baseline",
           Telemetry.Json.Obj
             [
               ("latency_p50", Telemetry.Json.Int stw_p50);
               ("latency_p99", Telemetry.Json.Int stw_p99);
             ] );
         ("inc", Telemetry.Json.Obj inc_rows);
       ]);
  print_newline ()

(* --- observability: flight recorder, event stream, phase tracing,
   census (BENCH_9.json) --------------------------------------------------- *)

(* The observability plane's acceptance run.  A bombardment streams
   windowed JSON lines and fills the service flight recorder; the
   summary gates on (a) the per-phase identity — queue_wait + build +
   vm = end-to-end latency, exactly, for every completion; (b) zero
   dropped ring events at the default capacity; (c) a burn rate on
   every window line; (d) the dump validating under the trace checker;
   (e) the pause metric responding to the budget sweep while tick
   latency stays put; and (f) cycles bit-identical with the full plane
   attached (recorder + metrics + census). *)

let bench9_data : (string * Telemetry.Json.t) list ref = ref []

let record9 key v = bench9_data := (key, v) :: !bench9_data

let write_bench9_json () =
  if !bench9_data <> [] then begin
    let doc = Telemetry.Json.Obj (List.rev !bench9_data) in
    Out_channel.with_open_text "BENCH_9.json" (fun oc ->
        Out_channel.output_string oc (Telemetry.Json.to_string doc ^ "\n"));
    Printf.printf "wrote BENCH_9.json\n"
  end

let observability () =
  print_endline
    "== Observability: flight recorder, event stream, phase tracing, census \
     ==";
  let machine = Machine.Machdesc.sparc10 in
  let counter snap name =
    match Telemetry.Metrics.find snap name with
    | Some (Telemetry.Metrics.Counter n) -> n
    | _ -> 0
  in
  (* the bombardment: stream + ring under generated traffic *)
  print_endline "-- bombardment: event stream and flight-recorder ring";
  let windows = ref 0 and events = ref 0 and burn_missing = ref 0 in
  let t =
    Service.Gcsafed.create
      ~events:(fun line ->
        match Telemetry.Json.member "type" line with
        | Some (Telemetry.Json.Str "window") ->
            incr windows;
            if Telemetry.Json.member "burn_rate" line = None then
              incr burn_missing
        | Some (Telemetry.Json.Str "event") -> incr events
        | _ -> ())
      Service.Gcsafed.default_config
  in
  List.iter
    (fun (arrival, req) -> Service.Gcsafed.submit ~arrival t req)
    (Service.Trafficgen.generate
       {
         Service.Trafficgen.default_spec with
         Service.Trafficgen.g_requests = 120;
         g_seed = 3;
         g_mix = Service.Trafficgen.Generated;
         g_chaos_percent = 20;
       });
  Service.Gcsafed.shutdown t;
  let ring = Service.Gcsafed.recorder t in
  let dropped = Telemetry.Flight_recorder.dropped ring in
  let dump_valid =
    Telemetry.Flight_recorder.check (Service.Gcsafed.dump t) = Ok ()
  in
  let phase_sum_ok =
    List.for_all
      (fun c ->
        c.Service.Gcsafed.r_queue_wait + c.Service.Gcsafed.r_build_ticks
        + c.Service.Gcsafed.r_vm_ticks
        = c.Service.Gcsafed.r_finish - c.Service.Gcsafed.r_arrival)
      (Service.Gcsafed.completions t)
  in
  Printf.printf
    "  %d window line(s), %d event line(s), %d dropped, dump %s, phase \
     identity %s\n"
    !windows !events dropped
    (if dump_valid then "valid" else "INVALID")
    (if phase_sum_ok then "exact" else "BROKEN");
  record9 "events"
    (Telemetry.Json.Obj
       [
         ("windows", Telemetry.Json.Int !windows);
         ("events", Telemetry.Json.Int !events);
         ("recorded", Telemetry.Json.Int (Telemetry.Flight_recorder.recorded ring));
         ("dropped", Telemetry.Json.Int dropped);
         ("burn_rate_present", Telemetry.Json.Bool (!burn_missing = 0));
         ("dump_valid", Telemetry.Json.Bool dump_valid);
       ]);
  record9 "phase_sum_ok" (Telemetry.Json.Bool phase_sum_ok);
  (* the budget sweep: per-phase breakdown and the responding pause
     metric over the paper workloads *)
  print_endline "-- per-phase latency and worst pause per --gc-pause-budget";
  let budgets = [ 64; 256; 1024; 4096 ] in
  let sweep budget =
    let t = Service.Gcsafed.create Service.Gcsafed.default_config in
    List.iteri
      (fun i w ->
        Service.Gcsafed.submit ~arrival:(i * 1000) t
          (Harness.Request.make ~label:w.Workloads.Registry.w_name
             ~config:Harness.Build.Safe ~machine ~gc_mode:Gcheap.Heap.Inc
             ~gc_pause_budget:budget ~gc_threshold:16384
             w.Workloads.Registry.w_source))
      Workloads.Registry.paper_suite;
    Service.Gcsafed.shutdown t;
    let rp = Service.Gcsafed.report t in
    if rp.Service.Gcsafed.rp_unexpected > 0 then
      failwith "unexpected outcome in the observability budget sweep";
    rp
  in
  let rows =
    List.map
      (fun budget ->
        let rp = sweep budget in
        Printf.printf
          "  budget %5d: queue_wait %d  build %d  vm %d  (latency %d)  max \
           pause %5d words  burn %.3f\n"
          budget rp.Service.Gcsafed.rp_queue_wait
          rp.Service.Gcsafed.rp_build_ticks rp.Service.Gcsafed.rp_vm_ticks
          rp.Service.Gcsafed.rp_total_latency
          rp.Service.Gcsafed.rp_gc_max_pause_words
          (Service.Gcsafed.burn_rate rp);
        (budget, rp))
      budgets
  in
  let pauses =
    List.map (fun (_, rp) -> rp.Service.Gcsafed.rp_gc_max_pause_words) rows
  in
  let latencies =
    List.map (fun (_, rp) -> rp.Service.Gcsafed.rp_total_latency) rows
  in
  let pause_responds = List.length (List.sort_uniq compare pauses) >= 2 in
  let latency_invariant =
    List.length (List.sort_uniq compare latencies) = 1
  in
  if not pause_responds then
    failwith "worst pause did not respond to the budget sweep";
  if not latency_invariant then
    failwith "tick latency moved across pause budgets (ablation hazard)";
  record9 "budgets"
    (Telemetry.Json.Obj
       (List.map
          (fun (budget, rp) ->
            ( string_of_int budget,
              Telemetry.Json.Obj
                [
                  ( "queue_wait_ticks",
                    Telemetry.Json.Int rp.Service.Gcsafed.rp_queue_wait );
                  ( "build_ticks",
                    Telemetry.Json.Int rp.Service.Gcsafed.rp_build_ticks );
                  ("vm_ticks", Telemetry.Json.Int rp.Service.Gcsafed.rp_vm_ticks);
                  ( "total_latency",
                    Telemetry.Json.Int rp.Service.Gcsafed.rp_total_latency );
                  ( "gc_max_pause_words",
                    Telemetry.Json.Int rp.Service.Gcsafed.rp_gc_max_pause_words
                  );
                  ( "gc_total_pause_words",
                    Telemetry.Json.Int
                      rp.Service.Gcsafed.rp_gc_total_pause_words );
                  ( "burn_rate",
                    Telemetry.Json.Float (Service.Gcsafed.burn_rate rp) );
                ] ))
          rows));
  record9 "pause_responds" (Telemetry.Json.Bool pause_responds);
  record9 "latency_budget_invariant" (Telemetry.Json.Bool latency_invariant);
  (* ablation: the full plane attached must not move a cycle *)
  print_endline "-- ablation: cycles with the full plane attached";
  let identical =
    List.for_all
      (fun w ->
        let req =
          Harness.Request.make ~config:Harness.Build.Safe ~machine
            ~gc_threshold:16384 w.Workloads.Registry.w_source
        in
        let b =
          Harness.Build.compile
            ~options:(Harness.Request.build_options req)
            Harness.Build.Safe w.Workloads.Registry.w_source
        in
        let run ?telemetry ?census () =
          match Harness.Measure.exec ?telemetry ?census req b with
          | Harness.Measure.Ran r -> r.Harness.Measure.o_cycles
          | o -> failwith (Harness.Measure.describe o)
        in
        let off = run () in
        let recorder = Telemetry.Flight_recorder.create () in
        let metrics = Telemetry.Metrics.create () in
        let on_ =
          run
            ~telemetry:(Telemetry.Sink.make ~metrics ~recorder ())
            ~census:true ()
        in
        Printf.printf "  %-10s %d cycles %s\n" w.Workloads.Registry.w_name off
          (if off = on_ then "(identical)" else "(PERTURBED)");
        ignore (counter (Telemetry.Metrics.snapshot metrics) "vm/steps");
        off = on_)
      Workloads.Registry.paper_suite
  in
  if not identical then failwith "observability plane perturbed execution";
  record9 "ablation"
    (Telemetry.Json.Obj [ ("identical", Telemetry.Json.Bool identical) ]);
  print_newline ()

(* --- stress: sanitizer overhead and schedule-divergence scan ------------- *)

let stress () =
  print_endline "== Stress: heap-integrity sanitizer and injected schedules ==";
  print_endline
    "-- sanitizer wall-clock overhead (safe build, collection every 2000 \
     instrs)";
  List.iter
    (fun w ->
      let req0 =
        Harness.Request.make ~config:Harness.Build.Safe
          ~schedule:(Machine.Schedule.Every 2000)
          w.Workloads.Registry.w_source
      in
      let b =
        Harness.Build.compile
          ~options:(Harness.Request.build_options req0)
          Harness.Build.Safe w.Workloads.Registry.w_source
      in
      let timed check_integrity =
        let t0 = Sys.time () in
        (match
           Harness.Measure.exec
             { req0 with Harness.Request.check_integrity }
             b
         with
        | Harness.Measure.Ran _ -> ()
        | o -> failwith (Harness.Measure.describe o));
        Sys.time () -. t0
      in
      let off = timed false in
      let on_ = timed true in
      Printf.printf "  %-10s %6.3fs off  %6.3fs on  (x%.1f)\n"
        w.Workloads.Registry.w_name off on_
        (on_ /. (off +. 1e-9)))
    Workloads.Registry.paper_suite;
  print_endline
    "-- schedule-divergence scan (sampled every-N schedules, sparc10)";
  List.iter
    (fun w ->
      let target = Stress.Corpus.of_workload w in
      let plan =
        {
          Stress.Driver.default_plan with
          Stress.Driver.p_matrix =
            {
              Harness.Request.default_matrix with
              Harness.Request.m_machines = [ Machine.Machdesc.sparc10 ];
            };
        }
      in
      let findings, subjects, runs = Stress.Driver.run_target plan target in
      Printf.printf "  %-10s %d subject(s), %d run(s): %d finding(s), %d unexpected\n"
        w.Workloads.Registry.w_name subjects runs (List.length findings)
        (List.length
           (List.filter (fun f -> not f.Stress.Driver.f_expected) findings));
      List.iter
        (fun f ->
          Printf.printf "    %s %s: %s\n"
            (Stress.Driver.kind_name f.Stress.Driver.f_kind)
            f.Stress.Driver.f_subject f.Stress.Driver.f_detail)
        findings)
    Workloads.Registry.paper_suite;
  print_newline ()

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let sections =
    match args with
    | [] | [ "all" ] ->
        [
          "t1"; "t2"; "t3"; "t4"; "t5"; "cache"; "a1"; "hazard"; "ablate";
          "ablate-analysis"; "ablate-telemetry"; "profile"; "gcmodes";
          "nursery"; "resilience"; "incremental"; "observability";
        ]
    | args -> args
  in
  List.iter
    (fun name ->
      let section =
        match name with
        | "t1" -> Some t1
        | "t2" -> Some t2
        | "t3" -> Some t3
        | "t4" -> Some t4
        | "t5" -> Some t5
        | "cache" -> Some cache_section
        | "a1" -> Some a1
        | "hazard" -> Some hazard
        | "ablate" -> Some ablate
        | "ablate-analysis" -> Some ablate_analysis
        | "ablate-telemetry" -> Some ablate_telemetry
        | "profile" -> Some profile_section
        | "gcmodes" -> Some gcmodes
        | "nursery" -> Some nursery_section
        | "resilience" -> Some resilience
        | "incremental" -> Some incremental
        | "observability" -> Some observability
        | "stress" -> Some stress
        | "micro" -> Some micro
        | s ->
            Printf.eprintf "unknown section %s\n" s;
            None
      in
      Option.iter (timed_section name) section)
    sections;
  write_bench_json ();
  write_bench5_json ();
  write_bench6_json ();
  write_bench10_json ();
  write_bench8_json ();
  write_bench9_json ()
