(* The checked mode as a pointer-arithmetic debugger (the paper's
   "Debugging Applications", and its gawk anecdote).

   Run with:  dune exec examples/pointer_debugger.exe

   The same annotation algorithm that makes code GC-safe becomes a
   Purify-style checker when KEEP_LIVE is replaced by GC_same_obj.  This
   example runs the gawk workload — which contains the classic
   one-before-the-array 1-origin bug — under the checker, watches the bug
   get caught, then applies the paper's fix and watches the checker pass.
   The gs workload demonstrates the other side of the anecdote: objects
   with prepended headers never trip the checker. *)

let check name src =
  Printf.printf "== %s under '-g, checked' ==\n" name;
  let b = Harness.Build.compile Harness.Build.Debug_checked src in
  (match
     Harness.Measure.exec
       (Harness.Request.make ~config:Harness.Build.Debug_checked src)
       b
   with
  | Harness.Measure.Detected m ->
      Printf.printf "  DETECTED: %s\n" m
  | Harness.Measure.Ran r ->
      Printf.printf "  clean; program output:\n";
      String.split_on_char '\n' r.Harness.Measure.o_output
      |> List.iter (fun line -> if line <> "" then Printf.printf "    %s\n" line)
  | o -> Printf.printf "  FAILED: %s\n" (Harness.Measure.describe o));
  print_newline ()

let () =
  (* show the annotated form of the offending line *)
  print_endline "The buggy idiom in gawk's source:";
  print_endline "    fields_base = (char **)malloc(MAXFIELDS * sizeof(char *));";
  print_endline "    fields = fields_base - 1;   /* 1-origin: points before the array */";
  print_endline "";
  print_endline "which the checked-mode preprocessor turns into:";
  print_endline
    "    fields = (char **)GC_same_obj((void *)(fields_base - 1),\n\
    \                                  (void *)fields_base);";
  print_endline "";
  check "gawk (as shipped)" Workloads.Gawk.source;
  check "gawk (paper's fix applied)" Workloads.Gawk.source_fixed;
  check "gs (prepended headers, clean style)" Workloads.Gs.source;
  print_endline
    "This mirrors the paper exactly: \"With checking enabled, it immediately\n\
     and correctly detected a pointer arithmetic error which was also an\n\
     array access error\" — while for gs \"no pointer arithmetic errors were\n\
     found\"."
