(* Premature collection, live: the paper's introduction as an experiment.

   Run with:  dune exec examples/premature_collection.exe

   A conventional optimizer rewrites a final reference p[i-100000] into
   p -= 100000; ... p[i], overwriting the only recognizable pointer to the
   object.  With a collection in that window, the object is swept while
   still in use.  This example shows the object dying under the
   conventional build and surviving under every GC-safe build, and prints
   the disguised instruction sequence so you can see the overwrite. *)

let source =
  {|long f(long i) {
  char *p = (char *)malloc(10);
  p[5] = 42;
  return p[i - 100000];   /* legal: i = 100005, so the result is p+5 */
}
int main(void) { printf("f returned %ld\n", f(100005)); return 0; }|}

let show_ir title config =
  let b = Harness.Build.compile config source in
  let f =
    List.find
      (fun f -> f.Ir.Instr.fn_name = "f")
      b.Harness.Build.b_ir.Ir.Instr.p_funcs
  in
  Format.printf "--- %s@.%a@." title Ir.Instr.pp_func f

let race name config =
  let b = Harness.Build.compile config source in
  (* a collection after every single instruction: the worst-case
     asynchronous collector of the paper's multi-threaded assumption *)
  match
    Harness.Measure.exec
      (Harness.Request.make ~config ~schedule:(Machine.Schedule.Every 1) source)
      b
  with
  | Harness.Measure.Ran r ->
      Printf.printf "  %-24s survived: %s" name r.Harness.Measure.o_output
  | Harness.Measure.Detected m ->
      Printf.printf "  %-24s PREMATURE COLLECTION\n  %24s   %s\n" name "" m
  | o ->
      Printf.printf "  %-24s FAILED: %s\n" name (Harness.Measure.describe o)

let () =
  print_endline "The compiled body of f under the conventional optimizer —";
  print_endline "note the base register being overwritten by the sub:";
  show_ir "-O (disguising)" Harness.Build.Base;
  print_endline "and under the GC-safe build — the keep pins the base until";
  print_endline "the derived (opaque) pointer exists:";
  show_ir "-O safe" Harness.Build.Safe;
  print_endline "Racing each build against a collector that runs constantly:";
  race "-O (conventional)" Harness.Build.Base;
  race "-O safe" Harness.Build.Safe;
  race "-O safe + peephole" Harness.Build.Safe_peephole;
  race "-g (debuggable)" Harness.Build.Debug;
  race "-g checked" Harness.Build.Debug_checked;
  print_endline "";
  print_endline
    "Only the conventionally optimized build loses the object — and it runs\n\
     fine when no collection lands in the window, which is why the paper\n\
     says such failures are \"essentially never observed in practice\"."
