(* Quickstart: the whole pipeline on a small program.

   Run with:  dune exec examples/quickstart.exe

   1. parse and type-check a C program;
   2. annotate it for GC-safety (KEEP_LIVE) and for checking (GC_same_obj);
   3. compile, optimize and run all build configurations on the VM;
   4. show the paper's overhead story on this one program. *)

let source =
  {|
struct point { long x; long y; };

struct point *make_point(long x, long y) {
  struct point *p = (struct point *)malloc(sizeof(struct point));
  p->x = x;
  p->y = y;
  return p;
}

long dot(struct point *a, struct point *b) {
  return a->x * b->x + a->y * b->y;
}

int main(void) {
  long total = 0;
  long i;
  for (i = 0; i < 2000; i++) {
    struct point *a = make_point(i, i + 1);
    struct point *b = make_point(i + 2, i + 3);
    total += dot(a, b);
  }
  printf("total=%ld\n", total);
  return 0;
}
|}

let () =
  (* step 1: the preprocessor's front half *)
  let ast = Csyntax.Parser.parse_program source in
  ignore (Csyntax.Typecheck.check_program ast);
  print_endline "=== GC-safe annotation (KEEP_LIVE) ===";
  let safe = Gcsafe.Annotate.run ~opts:(Gcsafe.Mode.default Gcsafe.Mode.Safe) ast in
  let dot_fn =
    List.find_map
      (function
        | Csyntax.Ast.Gfunc f when f.Csyntax.Ast.f_name = "dot" -> Some f
        | _ -> None)
      safe.Gcsafe.Annotate.program.Csyntax.Ast.prog_globals
  in
  (match dot_fn with
  | Some f ->
      Format.printf "long dot(...) body:@.%s@.@."
        (Csyntax.Pretty.stmt_to_string f.Csyntax.Ast.f_body)
  | None -> ());
  Printf.printf "(%d annotations inserted in the whole program)\n\n"
    safe.Gcsafe.Annotate.keep_live_count;

  (* step 2: all build configurations, compiled and executed *)
  print_endline "=== all build configurations on the sparc10 model ===";
  let base_cycles = ref 0 in
  List.iter
    (fun config ->
      let b = Harness.Build.compile config source in
      match Harness.Measure.exec (Harness.Request.make ~config source) b with
      | Harness.Measure.Ran r ->
          if config = Harness.Build.Base then base_cycles := r.Harness.Measure.o_cycles;
          Printf.printf "  %-14s %9d cycles  %5d instrs of code  %+6.1f%%  %s"
            (Harness.Build.config_name config)
            r.Harness.Measure.o_cycles r.Harness.Measure.o_size
            (100.0
            *. float_of_int (r.Harness.Measure.o_cycles - !base_cycles)
            /. float_of_int !base_cycles)
            r.Harness.Measure.o_output
      | o -> Printf.printf "  %-14s %s\n"
            (Harness.Build.config_name config) (Harness.Measure.describe o))
    Harness.Build.all_configs;

  (* step 2b: the paper's own output discipline — patch the original text *)
  print_endline "\n=== patch-mode emission (original text preserved) ===";
  let pm = Gcsafe.Patch_mode.annotate_source source in
  Printf.printf "  %d annotations patched in place, %d would need rewrites\n"
    pm.Gcsafe.Patch_mode.pr_inserted pm.Gcsafe.Patch_mode.pr_skipped;
  String.split_on_char '\n' pm.Gcsafe.Patch_mode.pr_source
  |> List.filteri (fun i _ -> i >= 9 && i <= 13)
  |> List.iter (Printf.printf "  %s\n");

  (* step 3: the collector did real work *)
  print_endline "\n=== collector statistics (base build) ===";
  let b = Harness.Build.compile Harness.Build.Base source in
  let config =
    { (Machine.Vm.default_config ()) with Machine.Vm.vm_gc_threshold = 32 * 1024 }
  in
  let r = Machine.Vm.run ~config b.Harness.Build.b_ir in
  Format.printf "  %a@." Gcheap.Heap.pp_stats r.Machine.Vm.r_heap;
  Printf.printf "  collections: %d\n" r.Machine.Vm.r_gc_count
