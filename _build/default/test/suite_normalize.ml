(* Normalization tests: the temporaries that give generating expressions
   names, and the invariant that annotation never sees Unnamed bases. *)

open Csyntax
open Gcsafe

let normalize src =
  let p = Parser.parse_program src in
  ignore (Typecheck.check_program p);
  Normalize.norm_program p

let printed src = Pretty.program_to_string (normalize src)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec loop i = i + ln <= lh && (String.sub hay i ln = needle || loop (i + 1)) in
  ln = 0 || loop 0

let check_contains name src needle =
  let out = printed src in
  if not (contains out needle) then
    Alcotest.failf "%s: expected %S in:\n%s" name needle out

let check_absent name src needle =
  let out = printed src in
  if contains out needle then
    Alcotest.failf "%s: did not expect %S in:\n%s" name needle out

let test_call_in_arith_named () =
  check_contains "call under +" "char *g(void); char *f(void) { return g() + 1; }"
    "(__t0 = g()) + 1"

let test_call_under_subscript_named () =
  check_contains "call under []"
    "char *g(void); char f(void) { return g()[3]; }" "(__t0 = g())[3]"

let test_call_under_arrow_named () =
  check_contains "call under ->"
    "struct s { int v; }; struct s *g(void); int f(void) { return g()->v; }"
    "(__t0 = g())->v"

let test_deref_chain_named () =
  (* the middle pointer load of a two-step chain gets a name *)
  check_contains "arrow chain"
    "struct s { struct s *next; int v; }; int f(struct s *p) { return p->next->v; }"
    "(__t0 = p->next)->v"

let test_cond_in_arith_named () =
  check_contains "conditional under +"
    "char *f(char *p, char *q, int c) { return (c ? p : q) + 1; }"
    "(__t0 = c ? p : q) + 1"

let test_direct_positions_not_named () =
  (* direct assignment / argument / return positions need no temporary *)
  check_absent "direct call assignment"
    "char *g(void); void f(void) { char *p; p = g(); }" "__t";
  check_absent "direct call argument"
    "char *g(void); void h(char *x); void f(void) { h(g()); }" "__t";
  check_absent "direct return" "char *g(void); char *f(void) { return g(); }"
    "__t";
  check_absent "plain deref of call"
    "char **g(void); char *f(void) { return *g(); }" "__t"

let test_addr_of_deref_simplified () =
  check_absent "&*e -> e" "char *f(char **pp) { return &**pp; }" "&*"

let test_no_unnamed_reaches_annotation () =
  (* a grab-bag of awkward shapes; annotation must not raise *)
  List.iter
    (fun src ->
      let p = Parser.parse_program src in
      match Annotate.run ~opts:(Mode.default Mode.Safe) p with
      | _ -> ()
      | exception Annotate.Unnormalized (m, _) ->
          Alcotest.failf "unnormalized %s on: %s" m src)
    [
      "char *g(void); char f(void) { return (g() + 1)[2]; }";
      "struct s { char *p; }; struct s *g(void); char f(void) { return g()->p[1]; }";
      "char *g(void); char f(int c) { return (c ? g() : g() + 1)[0]; }";
      "struct s { struct s *n; char buf[8]; }; char f(struct s *p) { return p->n->n->buf[3]; }";
      "char **g(void); char f(void) { return (*g())[1]; }";
      "struct s { char a[4]; }; struct s *g(void); char f(void) { return (*g()).a[1]; }";
      "char *g(void); void f(char **out) { *out = g() + 2; }";
      "long f(long *p, long n) { return p[n - 1] + (p + 1)[n - 2]; }";
    ]

let test_temp_declared_and_typed () =
  let p = normalize "char *g(void); char f(void) { return g()[3]; }" in
  (* the program must re-type-check: temp declarations are in place *)
  ignore (Typecheck.check_program p);
  let found = ref false in
  List.iter
    (function
      | Ast.Gfunc f ->
          Ast.iter_stmts
            (fun s ->
              match s.Ast.sdesc with
              | Ast.Sdecl d when d.Ast.d_name = "__t0" ->
                  found := true;
                  Alcotest.(check bool) "pointer-typed temp" true
                    (Ctype.is_pointer d.Ast.d_ty)
              | _ -> ())
            f.Ast.f_body
      | _ -> ())
    p.Ast.prog_globals;
  Alcotest.(check bool) "temp declared" true !found

let test_normalized_runs () =
  (* normalization is semantics-preserving end to end *)
  let src =
    {|char *g_buf;
char *g(void) { return g_buf; }
int main(void) {
  g_buf = (char *)malloc(8);
  strcpy(g_buf, "abcdefg");
  printf("%c%c\n", g()[2], (g() + 1)[3]);
  return 0;
}|}
  in
  let irp_plain =
    let ast, _ = Typecheck.check_source src in
    Ir.Compile.compile_program ~mode:Ir.Compile.opt_mode ast
  in
  let irp_norm =
    Ir.Compile.compile_program ~mode:Ir.Compile.opt_mode (normalize src)
  in
  ignore (Opt.Pipeline.run_program Opt.Pipeline.default irp_plain);
  ignore (Opt.Pipeline.run_program Opt.Pipeline.default irp_norm);
  let out irp = (Machine.Vm.run irp).Machine.Vm.r_output in
  Alcotest.(check string) "same output" (out irp_plain) (out irp_norm)

let suite =
  [
    Alcotest.test_case "call under arithmetic" `Quick test_call_in_arith_named;
    Alcotest.test_case "call under subscript" `Quick
      test_call_under_subscript_named;
    Alcotest.test_case "call under arrow" `Quick test_call_under_arrow_named;
    Alcotest.test_case "pointer-load chains" `Quick test_deref_chain_named;
    Alcotest.test_case "conditional under arithmetic" `Quick
      test_cond_in_arith_named;
    Alcotest.test_case "direct positions untouched" `Quick
      test_direct_positions_not_named;
    Alcotest.test_case "&*e simplification" `Quick
      test_addr_of_deref_simplified;
    Alcotest.test_case "no Unnamed reaches annotation" `Quick
      test_no_unnamed_reaches_annotation;
    Alcotest.test_case "temporaries declared and typed" `Quick
      test_temp_declared_and_typed;
    Alcotest.test_case "normalization preserves semantics" `Quick
      test_normalized_runs;
  ]
