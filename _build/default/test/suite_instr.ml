(* IR instruction helper tests: uses/defs, operand mapping, side effects,
   code size accounting, printing. *)

open Ir.Instr

let sorted l = List.sort compare l

let test_uses () =
  List.iter
    (fun (i, expect) ->
      Alcotest.(check (list int))
        (Format.asprintf "%a" pp_instr i)
        (sorted expect) (sorted (uses i)))
    [
      (Mov (1, Reg 2), [ 2 ]);
      (Mov (1, Imm 5), []);
      (Bin (Add, 1, Reg 2, Reg 3), [ 2; 3 ]);
      (Bin (Add, 1, Reg 2, Imm 4), [ 2 ]);
      (Rel (Lt, 1, Reg 2, Glob 8), [ 2 ]);
      (Load (W8, 1, Reg 2, Reg 3), [ 2; 3 ]);
      (Store (W4, Reg 1, Reg 2, Reg 3), [ 1; 2; 3 ]);
      (Push (Reg 9), [ 9 ]);
      (Call (Some 1, "f", 2), []);
      (KeepLive (Reg 7), [ 7 ]);
      (Opaque (1, Reg 2), [ 2 ]);
    ]

let test_defs () =
  List.iter
    (fun (i, expect) ->
      Alcotest.(check (option int))
        (Format.asprintf "%a" pp_instr i)
        expect (def i))
    [
      (Mov (1, Imm 0), Some 1);
      (Bin (Mul, 4, Reg 1, Reg 2), Some 4);
      (Load (W1, 6, Reg 0, Imm 8), Some 6);
      (Store (W8, Reg 1, Reg 2, Imm 0), None);
      (Push (Imm 3), None);
      (Call (Some 5, "f", 0), Some 5);
      (Call (None, "g", 1), None);
      (KeepLive (Reg 1), None);
      (Opaque (9, Reg 1), Some 9);
    ]

let test_side_effects () =
  Alcotest.(check bool) "store" true (has_side_effect (Store (W8, Imm 0, Reg 1, Imm 0)));
  Alcotest.(check bool) "call" true (has_side_effect (Call (None, "f", 0)));
  Alcotest.(check bool) "push" true (has_side_effect (Push (Imm 1)));
  Alcotest.(check bool) "keep" true (has_side_effect (KeepLive (Reg 1)));
  Alcotest.(check bool) "opaque removable" false (has_side_effect (Opaque (1, Reg 2)));
  Alcotest.(check bool) "mov pure" false (has_side_effect (Mov (1, Imm 0)))

let test_map_ops () =
  let shift r = Reg (r + 100) in
  (match map_instr_ops shift (Bin (Add, 1, Reg 2, Imm 3)) with
  | Bin (Add, 1, Reg 102, Imm 3) -> ()
  | _ -> Alcotest.fail "map over bin");
  (* the definition register is not an operand *)
  (match map_instr_ops shift (Mov (1, Reg 1)) with
  | Mov (1, Reg 101) -> ()
  | _ -> Alcotest.fail "def untouched");
  match map_term_ops shift (Br (Reg 4, 1, 2)) with
  | Br (Reg 104, 1, 2) -> ()
  | _ -> Alcotest.fail "terminator operand"

let test_successors () =
  Alcotest.(check (list int)) "jmp" [ 3 ] (successors (Jmp 3));
  Alcotest.(check (list int)) "br" [ 1; 2 ] (successors (Br (Reg 0, 1, 2)));
  Alcotest.(check (list int)) "ret" [] (successors (Ret None))

let test_code_size_excludes_keep () =
  let f =
    {
      fn_name = "t";
      fn_params = [];
      fn_ret_void = true;
      fn_blocks =
        [
          {
            b_label = 0;
            b_instrs =
              [ Mov (1, Imm 0); KeepLive (Reg 1); Bin (Add, 2, Reg 1, Imm 1);
                KeepLive (Reg 2) ];
            b_term = Ret None;
          };
        ];
      fn_nreg = 4;
      fn_frame = 0;
    }
  in
  (* 2 real instructions + 1 terminator; keeps are empty asm *)
  Alcotest.(check int) "size" 3 (code_size f)

let test_widths () =
  Alcotest.(check int) "W1" 1 (bytes_of_width W1);
  Alcotest.(check int) "W8" 8 (bytes_of_width W8);
  Alcotest.(check bool) "roundtrip" true (width_of_bytes 4 = W4);
  match width_of_bytes 3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "width 3 must be rejected"

let suite =
  [
    Alcotest.test_case "uses" `Quick test_uses;
    Alcotest.test_case "defs" `Quick test_defs;
    Alcotest.test_case "side effects" `Quick test_side_effects;
    Alcotest.test_case "operand mapping" `Quick test_map_ops;
    Alcotest.test_case "successors" `Quick test_successors;
    Alcotest.test_case "code size excludes keeps" `Quick
      test_code_size_excludes_keep;
    Alcotest.test_case "widths" `Quick test_widths;
  ]
