(* Compiler + VM semantics: every C construct in the subset, executed and
   checked against expected output, in both -O and -g modes. *)

let both name src expected =
  Alcotest.(check string) (name ^ " -O") expected (Util.run src);
  Alcotest.(check string)
    (name ^ " -g") expected
    (Util.run ~mode:Ir.Compile.debug_mode ~optimize:false src)

let test_arith () =
  both "arithmetic"
    {|int main(void) {
  printf("%d %d %d %d %d\n", 7 + 3, 7 - 3, 7 * 3, 7 / 3, 7 % 3);
  printf("%d %d %d\n", -7 / 3, -7 % 3, 1 << 10);
  printf("%d %d %d %d\n", 255 & 15, 240 | 15, 255 ^ 15, ~0);
  printf("%d %d\n", -1 >> 1, 1024 >> 3);
  return 0;
}|}
    "10 4 21 2 1\n-2 -1 1024\n15 255 240 -1\n-1 128\n"

let test_comparisons () =
  both "comparisons"
    {|int main(void) {
  printf("%d%d%d%d%d%d\n", 1 < 2, 2 < 1, 2 <= 2, 3 >= 4, 5 == 5, 5 != 5);
  printf("%d%d\n", -1 < 0, -1 < 1);
  return 0;
}|} "101010\n11\n"

let test_logical () =
  both "short circuit"
    {|int side;
int bump(int v) { side++; return v; }
int main(void) {
  side = 0;
  if (0 && bump(1)) ;
  printf("%d", side);
  if (1 || bump(1)) ;
  printf("%d", side);
  if (1 && bump(1)) ;
  printf("%d", side);
  if (0 || bump(0)) ;
  printf("%d\n", side);
  printf("%d %d\n", !5, !0);
  return 0;
}|} "0012\n0 1\n"

let test_control_flow () =
  both "loops and branches"
    {|int main(void) {
  int i; int sum = 0;
  for (i = 0; i < 10; i++) { if (i == 3) continue; if (i == 8) break; sum += i; }
  printf("%d ", sum);
  i = 0; while (i < 5) i++;
  printf("%d ", i);
  i = 10; do i--; while (i > 5);
  printf("%d\n", i);
  return 0;
}|} "25 5 5\n"

let test_conditional_expr () =
  both "?: and comma"
    {|int main(void) {
  int a = 3; int b = 9;
  printf("%d %d ", a > b ? a : b, a < b ? a : b);
  printf("%d\n", (a = 5, b = a + 1, a + b));
  return 0;
}|} "9 3 11\n"

let test_char_semantics () =
  both "signed char narrowing"
    {|int main(void) {
  char c = 200;  /* wraps to -56 */
  int i = c;
  char d = 'A' + 1;
  printf("%d %c\n", i, d);
  return 0;
}|} "-56 B\n"

let test_widths () =
  both "load/store widths"
    {|short gs; int gi; long gl; char gc;
int main(void) {
  gc = 300;   /* truncates */
  gs = 70000; /* truncates */
  gi = 1 << 20;
  gl = 1;
  gl = gl << 40;
  printf("%d %d %d %ld\n", gc, gs, gi, gl);
  return 0;
}|} "44 4464 1048576 1099511627776\n"

let test_pointers () =
  both "pointer basics"
    {|int main(void) {
  long x = 11; long y = 22;
  long *p = &x;
  *p = 33;
  p = &y;
  *p += 11;
  printf("%ld %ld ", x, y);
  printf("%d\n", p == &y && p != &x);
  return 0;
}|} "33 33 1\n"

let test_pointer_arith () =
  both "pointer arithmetic scaling"
    {|int main(void) {
  long a[5];
  long *p = a;
  long *q = &a[4];
  int i;
  for (i = 0; i < 5; i++) a[i] = i * 100;
  printf("%ld %ld %ld ", *(p + 2), p[3], *--q);
  printf("%ld %d\n", q - p, q > p);
  return 0;
}|} "200 300 300 3 1\n"

let test_strings_and_arrays () =
  both "strings, arrays, globals"
    {|char *msg = "global";
char buf[16];
int main(void) {
  strcpy(buf, msg);
  strcat(buf, "!");
  printf("%s %d %d\n", buf, (int)strlen(buf), strcmp(buf, "global!"));
  printf("%c%c\n", msg[0], "xyz"[1]);
  return 0;
}|} "global! 7 0\ngy\n"

let test_structs () =
  both "structs and unions"
    {|struct point { int x; int y; };
struct rect { struct point a; struct point b; };
union pun { long l; char c[8]; };
int main(void) {
  struct rect r;
  struct rect s;
  union pun u;
  r.a.x = 1; r.a.y = 2; r.b.x = 3; r.b.y = 4;
  s = r;                       /* whole-struct copy */
  s.a.x = 99;
  printf("%d %d %d ", r.a.x, s.a.x, s.b.y);
  u.l = 0x2122232425262728;   /* the VM word is 63 bits wide */
  printf("%c%c\n", u.c[0], u.c[7]);   /* little endian */
  return 0;
}|} "1 99 4 (!\n"

let test_heap_structs () =
  both "heap-allocated linked structures"
    {|struct node { struct node *next; long v; };
int main(void) {
  struct node *head = 0;
  long i; long sum = 0;
  for (i = 0; i < 100; i++) {
    struct node *n = (struct node *)malloc(sizeof(struct node));
    n->v = i; n->next = head; head = n;
  }
  while (head) { sum += head->v; head = head->next; }
  printf("%ld\n", sum);
  return 0;
}|} "4950\n"

let test_recursion () =
  both "recursion"
    {|int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
int ack(int m, int n) {
  if (m == 0) return n + 1;
  if (n == 0) return ack(m - 1, 1);
  return ack(m - 1, ack(m, n - 1));
}
int main(void) { printf("%d %d\n", fib(15), ack(2, 3)); return 0; }|}
    "610 9\n"

let test_increments () =
  both "increment forms"
    {|int main(void) {
  int i = 5; int a;
  a = i++; printf("%d%d ", a, i);
  a = ++i; printf("%d%d ", a, i);
  a = i--; printf("%d%d ", a, i);
  a = --i; printf("%d%d\n", a, i);
  {
    char s[4]; char *p = s; char *q = s;
    s[0] = 'a'; s[1] = 'b'; s[2] = 'c'; s[3] = 0;
    printf("%c%c%c\n", *p++, *++q, *p);
  }
  return 0;
}|} "56 77 76 55\nabb\n"

let test_compound_assign () =
  both "compound assignment"
    {|int main(void) {
  int x = 100;
  x += 5; x -= 3; x *= 2; x /= 4; x %= 13;
  printf("%d ", x);
  x = 3; x <<= 4; x >>= 2; x |= 1; x &= 7; x ^= 2;
  printf("%d\n", x);
  return 0;
}|} "12 7\n"

let test_multidim_arrays () =
  both "2-d arrays"
    {|int m[3][4];
int main(void) {
  int i; int j; int sum = 0;
  for (i = 0; i < 3; i++)
    for (j = 0; j < 4; j++)
      m[i][j] = i * 10 + j;
  for (i = 0; i < 3; i++) sum += m[i][i];
  printf("%d %d\n", sum, m[2][3]);
  return 0;
}|} "33 23\n"

let test_struct_arrays_fields () =
  both "arrays inside structs"
    {|struct s { int tag; int data[4]; };
int main(void) {
  struct s v;
  struct s *p = &v;
  int i;
  v.tag = 7;
  for (i = 0; i < 4; i++) p->data[i] = i * i;
  printf("%d %d %d\n", v.tag, v.data[3], p->data[2]);
  return 0;
}|} "7 9 4\n"

let test_globals_init () =
  both "global initializers"
    {|int a = 40 + 2;
long b = -7;
char c = 'x';
char msg[8] = "hiya";
char *pmsg = "indirect";
int main(void) {
  printf("%d %ld %c %s %s\n", a, b, c, msg, pmsg);
  return 0;
}|} "42 -7 x hiya indirect\n"

let test_builtin_memory () =
  both "memset/memcpy/memmove/realloc"
    {|int main(void) {
  char *a = (char *)malloc(16);
  char *b;
  memset(a, 'z', 15);
  a[15] = 0;
  a[0] = 'A';
  b = (char *)realloc(a, 32);
  b[15] = '!'; b[16] = 0;
  printf("%s\n", b);
  memmove(b + 1, b, 8);
  b[0] = '<';
  printf("%s\n", b);
  return 0;
}|} "Azzzzzzzzzzzzzz!\n<Azzzzzzzzzzzzz!\n"

let test_exit_code () =
  let irp = Util.compile "int main(void) { return 42; }" in
  let r = Machine.Vm.run irp in
  Alcotest.(check int) "exit code" 42 r.Machine.Vm.r_exit;
  let irp2 = Util.compile "int main(void) { exit(7); return 0; }" in
  let r2 = Machine.Vm.run irp2 in
  Alcotest.(check int) "exit()" 7 r2.Machine.Vm.r_exit

let test_faults () =
  let expect_fault name src =
    let irp = Util.compile src in
    match Machine.Vm.run irp with
    | exception Machine.Vm.Fault _ -> ()
    | _ -> Alcotest.failf "%s: expected a fault" name
  in
  expect_fault "null deref" "int main(void) { int *p = 0; return *p; }";
  expect_fault "division by zero" "int main(void) { int z = 0; return 1 / z; }";
  expect_fault "abort" "int main(void) { abort(); return 0; }";
  expect_fault "assert" "int main(void) { assert_true(1 == 2); return 0; }";
  expect_fault "wild store"
    "int main(void) { long *p = (long *)99999999; *p = 1; return 0; }"

let test_stack_overflow () =
  let irp =
    Util.compile "int f(int n) { return f(n + 1); } int main(void) { return f(0); }"
  in
  match Machine.Vm.run irp with
  | exception Machine.Vm.Fault m ->
      Alcotest.(check bool) "stack overflow reported" true
        (String.length m >= 5 && String.sub m 0 5 = "stack")
  | _ -> Alcotest.fail "expected stack overflow"

let test_gc_during_run () =
  (* allocation churn forces collections; live data survives *)
  let src =
    {|struct node { struct node *next; long v; };
int main(void) {
  long rep; long total = 0;
  for (rep = 0; rep < 40; rep++) {
    struct node *keep = 0;
    long i;
    for (i = 0; i < 300; i++) {
      struct node *n = (struct node *)malloc(sizeof(struct node));
      n->v = i;
      n->next = i % 50 == 0 ? keep : 0;
      if (i % 50 == 0) keep = n;
    }
    while (keep) { total += keep->v; keep = keep->next; }
  }
  printf("%ld\n", total);
  return 0;
}|}
  in
  let irp = Util.compile src in
  let config =
    { (Machine.Vm.default_config ()) with Machine.Vm.vm_gc_threshold = 8 * 1024 }
  in
  let r = Machine.Vm.run ~config irp in
  Alcotest.(check string) "output" "30000\n" r.Machine.Vm.r_output;
  Alcotest.(check bool) "collections happened" true (r.Machine.Vm.r_gc_count > 3)

let test_rand_deterministic () =
  let src =
    {|int main(void) { srand(7); printf("%d %d %d\n", rand() % 100, rand() % 100, rand() % 100); return 0; }|}
  in
  Alcotest.(check string) "deterministic" (Util.run src) (Util.run src)

let test_cycles_positive () =
  let irp = Util.compile "int main(void) { return 0; }" in
  let r = Machine.Vm.run irp in
  Alcotest.(check bool) "counts" true
    (r.Machine.Vm.r_instrs > 0 && r.Machine.Vm.r_cycles > 0)

let test_two_operand_penalty () =
  (* the same program costs more cycles on a two-operand machine than the
     instruction stream alone explains; compare machine models *)
  let src =
    {|int main(void) { int i; long s = 0; for (i = 0; i < 1000; i++) s += i * 2 + 1; printf("%ld\n", s); return 0; }|}
  in
  let cycles machine =
    let irp = Util.compile ~nregs:machine.Machine.Machdesc.md_regs src in
    let r =
      Machine.Vm.run ~config:(Machine.Vm.default_config ~machine ()) irp
    in
    (r.Machine.Vm.r_cycles, r.Machine.Vm.r_output)
  in
  let c10, o10 = cycles Machine.Machdesc.sparc10 in
  let cp, op = cycles Machine.Machdesc.pentium90 in
  Alcotest.(check string) "same output" o10 op;
  Alcotest.(check bool) "models differ" true (c10 <> cp)

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "short circuit" `Quick test_logical;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "?: and comma" `Quick test_conditional_expr;
    Alcotest.test_case "char semantics" `Quick test_char_semantics;
    Alcotest.test_case "widths" `Quick test_widths;
    Alcotest.test_case "pointers" `Quick test_pointers;
    Alcotest.test_case "pointer arithmetic" `Quick test_pointer_arith;
    Alcotest.test_case "strings and arrays" `Quick test_strings_and_arrays;
    Alcotest.test_case "structs and unions" `Quick test_structs;
    Alcotest.test_case "heap structures" `Quick test_heap_structs;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "increments" `Quick test_increments;
    Alcotest.test_case "compound assignment" `Quick test_compound_assign;
    Alcotest.test_case "2-d arrays" `Quick test_multidim_arrays;
    Alcotest.test_case "struct arrays" `Quick test_struct_arrays_fields;
    Alcotest.test_case "global initializers" `Quick test_globals_init;
    Alcotest.test_case "memory builtins" `Quick test_builtin_memory;
    Alcotest.test_case "exit codes" `Quick test_exit_code;
    Alcotest.test_case "faults" `Quick test_faults;
    Alcotest.test_case "stack overflow" `Quick test_stack_overflow;
    Alcotest.test_case "gc during run" `Quick test_gc_during_run;
    Alcotest.test_case "deterministic rand" `Quick test_rand_deterministic;
    Alcotest.test_case "cycle counting" `Quick test_cycles_positive;
    Alcotest.test_case "machine models differ" `Quick test_two_operand_penalty;
  ]
