(* Annotator tests: normalization, insertion positions, the paper's
   optimizations (1) and (2), checked-mode expansions, and the loop
   heuristic (optimization 3). *)

open Csyntax
open Gcsafe

let annotate ?(mode = Mode.Safe) src =
  let p = Parser.parse_program src in
  let r = Annotate.run ~opts:(Mode.default mode) p in
  r

let body_of prog fname =
  let f =
    List.find_map
      (function
        | Ast.Gfunc f when f.Ast.f_name = fname -> Some f
        | _ -> None)
      prog.Ast.prog_globals
  in
  Option.get f

let fun_str prog fname =
  Pretty.stmt_to_string (body_of prog fname).Ast.f_body

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec loop i = i + ln <= lh && (String.sub hay i ln = needle || loop (i + 1)) in
  ln = 0 || loop 0

let check_contains name body needle =
  if not (contains body needle) then
    Alcotest.failf "%s: expected %S in:\n%s" name needle body

let check_absent name body needle =
  if contains body needle then
    Alcotest.failf "%s: did not expect %S in:\n%s" name needle body

(* --- the paper's own examples --------------------------------------- *)

let test_paper_f () =
  (* char f(char *x) { return x[1]; }  ==>  *KEEP_LIVE(&x[1], x) *)
  let r = annotate "char f(char *x) { return x[1]; }" in
  let body = fun_str r.Annotate.program "f" in
  check_contains "analysis example" body "*KEEP_LIVE(&x[1], x)"

let test_paper_string_copy () =
  let r =
    annotate
      "void copy(char *s, char *t) { char *p; char *q; p = s; q = t; while (*p++ = *q++) ; }"
  in
  let body = fun_str r.Annotate.program "copy" in
  (* optimization 2's expansion: (tmp = p, p = KEEP_LIVE(tmp + 1, tmp), tmp) *)
  check_contains "post-increment expansion" body "= p, p = KEEP_LIVE(";
  check_contains "tmp base" body "+ 1, __t"

let test_paper_loop_heuristic () =
  let r =
    annotate
      "void copy(char *s, char *t) { char *p; char *q; p = s; q = t; while (*p++ = *q++) ; }"
  in
  let p' = Loop_heuristic.apply r.Annotate.program in
  let body = fun_str p' "copy" in
  (* bases become the slowly-varying s and t *)
  check_contains "base s" body "+ 1, s)";
  check_contains "base t" body "+ 1, t)"

(* --- insertion positions -------------------------------------------- *)

let test_assignment_rhs () =
  let r = annotate "char *g; void f(char *p) { g = p + 4; }" in
  check_contains "rhs wrapped" (fun_str r.Annotate.program "f")
    "g = KEEP_LIVE(p + 4, p)"

let test_function_argument () =
  let r = annotate "void h(char *x); void f(char *p) { h(p + 1); }" in
  check_contains "argument wrapped" (fun_str r.Annotate.program "f")
    "h(KEEP_LIVE(p + 1, p))"

let test_function_result () =
  let r = annotate "char *f(char *p) { return p + 2; }" in
  check_contains "result wrapped" (fun_str r.Annotate.program "f")
    "return KEEP_LIVE(p + 2, p)"

let test_deref_argument () =
  let r = annotate "char f(char *p) { return *(p + 3); }" in
  check_contains "deref argument wrapped" (fun_str r.Annotate.program "f")
    "*KEEP_LIVE(p + 3, p)"

let test_store_address () =
  let r = annotate "void f(char *p) { p[2] = 'x'; }" in
  check_contains "store address wrapped" (fun_str r.Annotate.program "f")
    "*KEEP_LIVE(&p[2], p) = 'x'"

let test_arrow_access () =
  let r =
    annotate
      "struct s { int v; struct s *next; }; int f(struct s *n) { return n->next->v; }"
  in
  let body = fun_str r.Annotate.program "f" in
  (* the inner pointer load is named, then both accesses are wrapped *)
  check_contains "inner load wrapped" body "KEEP_LIVE(&n->next, n)";
  check_contains "outer access wrapped via temp" body "->v, __t"

(* --- no-wrap cases (optimization 1 and non-heap bases) --------------- *)

let test_copy_suppressed () =
  let r = annotate "char *g; void f(char *p) { g = p; }" in
  check_absent "plain copy not wrapped" (fun_str r.Annotate.program "f")
    "KEEP_LIVE"

let test_copy_kept_when_disabled () =
  let p = Parser.parse_program "char *g; void f(char *p) { g = p; }" in
  let opts = { (Mode.default Mode.Safe) with Mode.suppress_copies = false } in
  let r = Annotate.run ~opts p in
  check_contains "naive algorithm wraps copies" (fun_str r.Annotate.program "f")
    "g = KEEP_LIVE(p, p)"

let test_local_array_not_wrapped () =
  let r = annotate "int f(int i) { char buf[8]; buf[i] = 1; return buf[0]; }" in
  check_absent "stack array access" (fun_str r.Annotate.program "f") "KEEP_LIVE"

let test_local_struct_not_wrapped () =
  let r =
    annotate "struct s { int a; int b; }; int f(void) { struct s v; v.a = 1; return v.a + v.b; }"
  in
  check_absent "local struct access" (fun_str r.Annotate.program "f") "KEEP_LIVE"

let test_int_arith_not_wrapped () =
  let r = annotate "int f(int a, int b) { return a * b + (a - b); }" in
  check_absent "integer arithmetic" (fun_str r.Annotate.program "f") "KEEP_LIVE"

let test_deref_of_var_not_wrapped () =
  let r = annotate "char f(char *p) { return *p; }" in
  check_absent "deref of plain variable" (fun_str r.Annotate.program "f")
    "KEEP_LIVE"

let test_alloc_result_not_wrapped () =
  let r = annotate "char *f(void) { return (char *)malloc(10); }" in
  check_absent "allocation results are already opaque"
    (fun_str r.Annotate.program "f") "KEEP_LIVE"

(* --- normalization ---------------------------------------------------- *)

let test_generating_named () =
  let r = annotate "char *g(void); char f(void) { return g()[2]; }" in
  let body = fun_str r.Annotate.program "f" in
  (* the call result must be named before arithmetic: (t = g())[2] *)
  check_contains "call named by temp" body "__t0 = g()";
  check_contains "temp is the base" body ", __t0)"

let test_cond_distribution () =
  let r = annotate "char *f(char *p, char *q, int c) { return c ? p + 1 : q + 2; }" in
  let body = fun_str r.Annotate.program "f" in
  check_contains "then branch" body "KEEP_LIVE(p + 1, p)";
  check_contains "else branch" body "KEEP_LIVE(q + 2, q)"

let test_addr_of_deref_simplified () =
  let r = annotate "char *f(char **pp) { return &**pp; }" in
  (* &*e simplifies to e; *pp is a generating load, left opaque *)
  check_absent "no address-of-deref residue" (fun_str r.Annotate.program "f")
    "&*"

(* --- increments -------------------------------------------------------- *)

let test_pre_incr_safe () =
  let r = annotate "void f(char *p) { ++p; }" in
  check_contains "pre-increment" (fun_str r.Annotate.program "f")
    "p = KEEP_LIVE(p + 1, p)"

let test_post_incr_unused_is_simple () =
  let r = annotate "void f(char *p) { p++; }" in
  let body = fun_str r.Annotate.program "f" in
  check_contains "unused post-increment is the simple form" body
    "p = KEEP_LIVE(p + 1, p)";
  check_absent "no temporary" body "__t"

let test_int_incr_untouched () =
  let r = annotate "void f(int n) { n++; ++n; n += 3; }" in
  check_absent "integer increments" (fun_str r.Annotate.program "f") "KEEP_LIVE"

let test_ptr_field_incr () =
  let r =
    annotate
      "struct s { char *p; }; void f(struct s *v) { v->p += 2; }"
  in
  let body = fun_str r.Annotate.program "f" in
  (* general expansion through the address: t1 = KEEP_LIVE(&v->p, v), ... *)
  check_contains "address temp" body "KEEP_LIVE(&v->p, v)";
  check_contains "value keep" body "+ 2, __t"

(* --- checked mode ------------------------------------------------------ *)

let test_checked_same_obj () =
  let r = annotate ~mode:Mode.Checked "char f(char *x) { return x[1]; }" in
  check_contains "GC_same_obj" (fun_str r.Annotate.program "f")
    "*(char *)GC_same_obj((void *)&x[1], (void *)x)"

let test_checked_pre_incr () =
  let r = annotate ~mode:Mode.Checked "void f(char *p) { ++p; }" in
  check_contains "GC_pre_incr" (fun_str r.Annotate.program "f")
    "GC_pre_incr(&p, 1)"

let test_checked_post_incr () =
  let r = annotate ~mode:Mode.Checked "char f(char *p) { return *p++; }" in
  check_contains "GC_post_incr" (fun_str r.Annotate.program "f")
    "GC_post_incr(&p, 1)"

let test_checked_scaled_delta () =
  let r = annotate ~mode:Mode.Checked "void f(long *p, int n) { p += n; ++p; }" in
  let body = fun_str r.Annotate.program "f" in
  check_contains "scaled += delta" body "GC_pre_incr(&p, n * 8)";
  check_contains "scaled ++ delta" body "GC_pre_incr(&p, 8)"

let test_checked_counts_match_safe () =
  let count mode src =
    (annotate ~mode src).Annotate.keep_live_count
  in
  List.iter
    (fun src ->
      Alcotest.(check int) "same insertion count"
        (count Mode.Safe src) (count Mode.Checked src))
    [
      "char f(char *x) { return x[1]; }";
      "char *g; void f(char *p) { g = p + 4; }";
      Workloads.Cord.source;
    ]

(* --- whole-workload sanity --------------------------------------------- *)

let test_workloads_annotate () =
  List.iter
    (fun w ->
      let src = w.Workloads.Registry.w_source in
      List.iter
        (fun mode ->
          let r = annotate ~mode src in
          Alcotest.(check bool)
            (w.Workloads.Registry.w_name ^ " inserts annotations")
            true
            (r.Annotate.keep_live_count > 0);
          (* output must still type-check (run re-checks internally) and
             pretty-print to parseable C *)
          let printed = Pretty.program_to_string r.Annotate.program in
          ignore (Typecheck.check_program (Parser.parse_program printed)))
        [ Mode.Safe; Mode.Checked ])
    Workloads.Registry.all

let suite =
  [
    Alcotest.test_case "paper: f(x) = x[1]" `Quick test_paper_f;
    Alcotest.test_case "paper: string copy loop" `Quick test_paper_string_copy;
    Alcotest.test_case "paper: loop heuristic bases" `Quick
      test_paper_loop_heuristic;
    Alcotest.test_case "position: assignment rhs" `Quick test_assignment_rhs;
    Alcotest.test_case "position: function argument" `Quick
      test_function_argument;
    Alcotest.test_case "position: function result" `Quick test_function_result;
    Alcotest.test_case "position: deref argument" `Quick test_deref_argument;
    Alcotest.test_case "position: store address" `Quick test_store_address;
    Alcotest.test_case "position: arrow chains" `Quick test_arrow_access;
    Alcotest.test_case "opt 1: copies suppressed" `Quick test_copy_suppressed;
    Alcotest.test_case "opt 1 disabled wraps copies" `Quick
      test_copy_kept_when_disabled;
    Alcotest.test_case "stack arrays unwrapped" `Quick
      test_local_array_not_wrapped;
    Alcotest.test_case "local structs unwrapped" `Quick
      test_local_struct_not_wrapped;
    Alcotest.test_case "integer arithmetic unwrapped" `Quick
      test_int_arith_not_wrapped;
    Alcotest.test_case "deref of variable unwrapped" `Quick
      test_deref_of_var_not_wrapped;
    Alcotest.test_case "allocation results opaque" `Quick
      test_alloc_result_not_wrapped;
    Alcotest.test_case "normalize: generating named" `Quick
      test_generating_named;
    Alcotest.test_case "normalize: conditional distribution" `Quick
      test_cond_distribution;
    Alcotest.test_case "normalize: &*e simplification" `Quick
      test_addr_of_deref_simplified;
    Alcotest.test_case "incr: pre safe" `Quick test_pre_incr_safe;
    Alcotest.test_case "incr: unused post is simple" `Quick
      test_post_incr_unused_is_simple;
    Alcotest.test_case "incr: integers untouched" `Quick
      test_int_incr_untouched;
    Alcotest.test_case "incr: pointer field" `Quick test_ptr_field_incr;
    Alcotest.test_case "checked: GC_same_obj" `Quick test_checked_same_obj;
    Alcotest.test_case "checked: GC_pre_incr" `Quick test_checked_pre_incr;
    Alcotest.test_case "checked: GC_post_incr" `Quick test_checked_post_incr;
    Alcotest.test_case "checked: scaled deltas" `Quick
      test_checked_scaled_delta;
    Alcotest.test_case "checked == safe insertion counts" `Quick
      test_checked_counts_match_safe;
    Alcotest.test_case "workloads annotate cleanly" `Quick
      test_workloads_annotate;
  ]
