(* Register allocation tests: bounded register use, spilling correctness,
   coalescing of Opaque moves, and semantic preservation under tiny
   register files. *)

open Ir.Instr

let max_reg_used (p : program) =
  List.fold_left
    (fun acc f ->
      List.fold_left
        (fun acc b ->
          List.fold_left
            (fun acc i ->
              let rs =
                uses i @ (match def i with Some d -> [ d ] | None -> [])
              in
              List.fold_left max acc rs)
            acc b.b_instrs)
        acc f.fn_blocks)
    0 p.p_funcs

(* a register-hungry expression: deep balanced additions *)
let hungry_src depth =
  let rec build d =
    if d = 0 then "n++"
    else Printf.sprintf "(%s + %s)" (build (d - 1)) (build (d - 1))
  in
  Printf.sprintf
    {|long n;
int main(void) { long r = %s; printf("%%ld %%ld\n", r, n); return 0; }|}
    (build depth)

let test_register_bound () =
  List.iter
    (fun nregs ->
      let irp = Util.compile ~nregs (hungry_src 5) in
      Alcotest.(check bool)
        (Printf.sprintf "all registers < %d" nregs)
        true
        (max_reg_used irp < nregs))
    [ 8; 12; 32 ]

let test_spill_semantics () =
  (* the same output regardless of register pressure *)
  let src = hungry_src 5 in
  let out32 = Util.run ~nregs:32 src in
  let out8 = Util.run ~nregs:8 src in
  Alcotest.(check string) "spilling preserves semantics" out32 out8

let test_spills_happen_under_pressure () =
  let ast, _ = Csyntax.Typecheck.check_source (hungry_src 5) in
  let count nregs =
    let irp = Ir.Compile.compile_program ~mode:Ir.Compile.opt_mode ast in
    let stats =
      Opt.Pipeline.run_program { Opt.Pipeline.default with Opt.Pipeline.nregs = nregs } irp
    in
    stats.Opt.Pipeline.ps_spills
  in
  Alcotest.(check bool) "8 registers spill" true (count 8 > 0);
  Alcotest.(check int) "32 registers do not" 0 (count 32)

let test_opaque_coalescing () =
  (* annotated code: most Opaque moves coalesce away entirely *)
  let src = "char f(char *x) { return x[1]; }  int main(void) { return 0; }" in
  let ast = Csyntax.Parser.parse_program src in
  let r = Gcsafe.Annotate.run ~opts:(Gcsafe.Mode.default Gcsafe.Mode.Safe) ast in
  let irp =
    Ir.Compile.compile_program ~mode:Ir.Compile.opt_mode r.Gcsafe.Annotate.program
  in
  ignore (Opt.Pipeline.run_program Opt.Pipeline.default irp);
  let f = List.find (fun f -> f.fn_name = "f") irp.p_funcs in
  let has_opaque_or_extra_mov =
    List.exists
      (fun b ->
        List.exists (function Opaque _ -> true | _ -> false) b.b_instrs)
      f.fn_blocks
  in
  Alcotest.(check bool) "no Opaque survives lowering" false
    has_opaque_or_extra_mov;
  (* the paper's residual sequence: add; (keep); ldb — three instructions
     plus the prologue move and return *)
  Alcotest.(check bool) "compact annotated code" true (code_size f <= 5)

let test_params_spillable () =
  (* many parameters + pressure: still correct on 8 registers *)
  let src =
    {|long f(long a, long b, long c, long d) {
  long x = a * b; long y = c * d; long z = a + d;
  return x + y + z + a + b + c + d;
}
int main(void) { printf("%ld\n", f(2, 3, 5, 7)); return 0; }|}
  in
  Alcotest.(check string) "8-reg result" (Util.run ~nregs:32 src)
    (Util.run ~nregs:8 src)

let test_too_many_params () =
  let src =
    {|long f(long a, long b, long c, long d, long e, long g) { return a + b + c + d + e + g; }
int main(void) { printf("%ld\n", f(1, 2, 3, 4, 5, 6)); return 0; }|}
  in
  match Util.compile ~nregs:8 src with
  | exception Opt.Regalloc.Too_many_params _ -> ()
  | _ ->
      (* acceptable if it fits; but with 4 allocatable registers 6 params
         must be refused *)
      Alcotest.fail "expected Too_many_params on an 8-register machine"

let test_workloads_on_pentium () =
  (* the whole suite runs correctly with 8 registers *)
  List.iter
    (fun w ->
      let src = w.Workloads.Registry.w_source in
      Alcotest.(check string)
        (w.Workloads.Registry.w_name ^ " pentium == sparc")
        (Util.run ~nregs:32 src) (Util.run ~nregs:8 src))
    [ Workloads.Registry.cordtest; Workloads.Registry.gs ]

let suite =
  [
    Alcotest.test_case "register bound respected" `Quick test_register_bound;
    Alcotest.test_case "spills preserve semantics" `Quick test_spill_semantics;
    Alcotest.test_case "spills happen under pressure" `Quick
      test_spills_happen_under_pressure;
    Alcotest.test_case "opaque moves coalesce" `Quick test_opaque_coalescing;
    Alcotest.test_case "parameters spill correctly" `Quick
      test_params_spillable;
    Alcotest.test_case "too many parameters rejected" `Quick
      test_too_many_params;
    Alcotest.test_case "workloads on 8 registers" `Quick
      test_workloads_on_pentium;
  ]
