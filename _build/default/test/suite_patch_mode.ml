(* Patch-mode emission tests: in-place annotation of the original text. *)

open Csyntax
open Gcsafe

let patch ?(mode = Mode.Safe) src =
  Patch_mode.annotate_source ~opts:(Mode.default mode) src

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec loop i = i + ln <= lh && (String.sub hay i ln = needle || loop (i + 1)) in
  ln = 0 || loop 0

(* a program using only the positional (rewrite-free) constructs *)
let positional_src =
  {|/* leading comment */
struct node { struct node *next; long v; };

long sum(struct node *n) {
  long acc = 0;   /* trailing comment */
  while (n) {
    acc += n->v;
    n = n->next;
  }
  return acc;
}

char *advance(char *p, long k) { return p + k; }
char get2(char *s) { return s[2]; }

int main(void) {
  struct node *a = (struct node *)malloc(sizeof(struct node));
  struct node *b = (struct node *)malloc(sizeof(struct node));
  char *buf = (char *)malloc(16);
  a->v = 5; a->next = b;
  b->v = 7; b->next = 0;
  buf[3] = 'q';
  printf("%ld %c %c\n", sum(a), get2(advance(buf, 1)), *advance(buf, 3));
  return 0;
}|}

let run_source src =
  let prog, _ = Typecheck.check_source src in
  let irp = Ir.Compile.compile_program ~mode:Ir.Compile.opt_mode prog in
  ignore (Opt.Pipeline.run_program Opt.Pipeline.default irp);
  (Machine.Vm.run irp).Machine.Vm.r_output

let test_output_compiles_and_agrees () =
  let base = run_source positional_src in
  List.iter
    (fun mode ->
      let r = patch ~mode positional_src in
      Alcotest.(check int)
        (Mode.to_string mode ^ " nothing skipped")
        0 r.Patch_mode.pr_skipped;
      Alcotest.(check bool)
        (Mode.to_string mode ^ " inserted some")
        true (r.Patch_mode.pr_inserted > 0);
      Alcotest.(check string)
        (Mode.to_string mode ^ " patched output behaves identically")
        base
        (run_source r.Patch_mode.pr_source))
    [ Mode.Safe; Mode.Checked ]

let test_comments_survive () =
  let r = patch positional_src in
  Alcotest.(check bool) "leading comment kept" true
    (contains r.Patch_mode.pr_source "/* leading comment */");
  Alcotest.(check bool) "trailing comment kept" true
    (contains r.Patch_mode.pr_source "/* trailing comment */")

let test_matches_ast_pipeline_counts () =
  (* on rewrite-free inputs the two emitters insert the same annotations *)
  let r = patch positional_src in
  let ast = Parser.parse_program positional_src in
  let a = Annotate.run ~opts:(Mode.default Mode.Safe) ast in
  Alcotest.(check int) "same insertion count" a.Annotate.keep_live_count
    r.Patch_mode.pr_inserted

let test_rewrites_skipped_and_counted () =
  let src =
    {|char f(char *p) { return *p++; }
void g(char *q) { q += 3; }|}
  in
  let r = patch src in
  Alcotest.(check bool) "skips counted" true (r.Patch_mode.pr_skipped >= 2);
  (* the original text is untouched at the skipped spots *)
  Alcotest.(check bool) "increment left alone" true
    (contains r.Patch_mode.pr_source "*p++");
  Alcotest.(check bool) "compound left alone" true
    (contains r.Patch_mode.pr_source "q += 3")

let test_under_parentheses () =
  (* spans exclude redundant outer parens; wraps still parse *)
  let src = "char *f(char *p) { return (p + 1); }" in
  let r = patch src in
  let out = r.Patch_mode.pr_source in
  Alcotest.(check bool) "wrapped inside parens" true
    (contains out "(KEEP_LIVE(p + 1, p))");
  ignore (Typecheck.check_source out)

let test_workload_patches_parse () =
  (* patch the cord workload: many positions are positional; whatever gets
     inserted must still parse and type-check *)
  let r = patch Workloads.Cord.source in
  Alcotest.(check bool) "inserted" true (r.Patch_mode.pr_inserted > 20);
  ignore (Typecheck.check_source r.Patch_mode.pr_source)

let suite =
  [
    Alcotest.test_case "patched output runs identically" `Quick
      test_output_compiles_and_agrees;
    Alcotest.test_case "comments survive" `Quick test_comments_survive;
    Alcotest.test_case "matches AST pipeline counts" `Quick
      test_matches_ast_pipeline_counts;
    Alcotest.test_case "rewrites skipped and counted" `Quick
      test_rewrites_skipped_and_counted;
    Alcotest.test_case "parenthesized spans" `Quick test_under_parentheses;
    Alcotest.test_case "workload patches parse" `Quick
      test_workload_patches_parse;
  ]
