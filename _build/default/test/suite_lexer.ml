(* Lexer unit tests. *)

open Csyntax

let toks src =
  Array.to_list (Lexer.tokenize src) |> List.map (fun t -> t.Lexer.t)

let check_toks name src expected =
  Alcotest.(check (list string))
    name
    (expected @ [ "<eof>" ])
    (List.map Token.to_string (toks src))

let test_idents_keywords () =
  check_toks "keywords vs identifiers" "int intx if iffy while_ do"
    [ "int"; "intx"; "if"; "iffy"; "while_"; "do" ]

let test_numbers () =
  (match toks "0 42 0x1F 100L 7u" with
  | [ Token.INT_LIT 0; INT_LIT 42; INT_LIT 31; INT_LIT 100; INT_LIT 7; EOF ] ->
      ()
  | ts ->
      Alcotest.failf "bad numbers: %s"
        (String.concat " " (List.map Token.to_string ts)));
  match toks "3.5 0.25" with
  | [ Token.FLOAT_LIT a; FLOAT_LIT b; EOF ] ->
      Alcotest.(check (float 1e-9)) "3.5" 3.5 a;
      Alcotest.(check (float 1e-9)) "0.25" 0.25 b
  | _ -> Alcotest.fail "bad floats"

let test_char_literals () =
  match toks {|'a' '\n' '\0' '\\' '\''|} with
  | [ Token.CHAR_LIT 'a'; CHAR_LIT '\n'; CHAR_LIT '\000'; CHAR_LIT '\\';
      CHAR_LIT '\''; EOF ] ->
      ()
  | ts ->
      Alcotest.failf "bad chars: %s"
        (String.concat " " (List.map Token.to_string ts))

let test_string_literals () =
  match toks {|"hi" "a\tb" ""|} with
  | [ Token.STR_LIT "hi"; STR_LIT "a\tb"; STR_LIT ""; EOF ] -> ()
  | _ -> Alcotest.fail "bad strings"

let test_operators () =
  check_toks "multichar operators"
    "<<= >>= ... -> ++ -- += -= *= /= %= &= |= ^= && || << >> <= >= == != ="
    [ "<<="; ">>="; "..."; "->"; "++"; "--"; "+="; "-="; "*="; "/="; "%=";
      "&="; "|="; "^="; "&&"; "||"; "<<"; ">>"; "<="; ">="; "=="; "!="; "=" ]

let test_adjacent_operators () =
  (* a+++b lexes greedily as a ++ + b *)
  check_toks "maximal munch" "a+++b" [ "a"; "++"; "+"; "b" ]

let test_comments () =
  check_toks "comments skipped" "a /* b c */ d // e\nf" [ "a"; "d"; "f" ];
  check_toks "nested-ish comment body" "x /* * / ** // */ y" [ "x"; "y" ]

let test_line_directives () =
  check_toks "cpp line markers skipped" "# 1 \"foo.c\"\nint x;\n# 2\n;"
    [ "int"; "x"; ";"; ";" ]

let test_positions () =
  let ts = Lexer.tokenize "ab\n  cd" in
  let t0 = ts.(0) and t1 = ts.(1) in
  Alcotest.(check int) "line 1" 1 t0.Lexer.loc.Loc.line;
  Alcotest.(check int) "col 1" 1 t0.Lexer.loc.Loc.col;
  Alcotest.(check int) "offset 0" 0 t0.Lexer.loc.Loc.offset;
  Alcotest.(check int) "endpos" 2 t0.Lexer.endpos;
  Alcotest.(check int) "line 2" 2 t1.Lexer.loc.Loc.line;
  Alcotest.(check int) "col 3" 3 t1.Lexer.loc.Loc.col;
  Alcotest.(check int) "offset 5" 5 t1.Lexer.loc.Loc.offset

let test_errors () =
  let expect_error src =
    match Lexer.tokenize src with
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.failf "expected lexer error on %S" src
  in
  expect_error "\"unterminated";
  expect_error "'a";
  expect_error "/* never closed";
  expect_error "`"

let test_integer_suffix_garbling () =
  (* suffixed literals keep their numeric value *)
  match toks "10l 10L 10u 10UL" with
  | [ Token.INT_LIT 10; INT_LIT 10; INT_LIT 10; INT_LIT 10; EOF ] -> ()
  | _ -> Alcotest.fail "bad suffixed literals"

let suite =
  [
    Alcotest.test_case "idents and keywords" `Quick test_idents_keywords;
    Alcotest.test_case "numbers" `Quick test_numbers;
    Alcotest.test_case "char literals" `Quick test_char_literals;
    Alcotest.test_case "string literals" `Quick test_string_literals;
    Alcotest.test_case "operators" `Quick test_operators;
    Alcotest.test_case "maximal munch" `Quick test_adjacent_operators;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "line directives" `Quick test_line_directives;
    Alcotest.test_case "positions" `Quick test_positions;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "integer suffixes" `Quick test_integer_suffix_garbling;
  ]
