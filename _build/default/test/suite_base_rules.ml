(* BASE / BASEADDR tests — the paper's inductive table, entry by entry. *)

open Csyntax
open Gcsafe

(* Type-check [probe] with the standard declarations in scope, then return
   the outermost expression. *)
let decls =
  {|
struct s { int x; int arr[4]; struct s *next; };
char *p; char *q; int n; int *ip; char buf[32]; struct s *sp; struct s sv;
int ia[8];
|}

let probe_expr probe =
  let src = Printf.sprintf "%s\nint main(void) { %s; return 0; }" decls probe in
  let prog, _ = Typecheck.check_source src in
  let result = ref None in
  List.iter
    (function
      | Ast.Gfunc f when f.Ast.f_name = "main" -> (
          match f.Ast.f_body.Ast.sdesc with
          | Ast.Sblock ({ Ast.sdesc = Ast.Sexpr e; _ } :: _) -> result := Some e
          | _ -> ())
      | _ -> ())
    prog.Ast.prog_globals;
  Option.get !result

let base_str probe = Base_rules.base_to_string (Base_rules.base (probe_expr probe))

let baseaddr_str probe =
  match (probe_expr probe).Ast.edesc with
  | Ast.AddrOf inner -> Base_rules.base_to_string (Base_rules.baseaddr inner)
  | _ -> Alcotest.fail "probe must be an & expression"

let check_base name probe expected =
  Alcotest.(check string) name expected (base_str probe)

let check_baseaddr name probe expected =
  Alcotest.(check string) name expected (baseaddr_str probe)

(* BASE(0) = NIL *)
let test_base_zero () =
  check_base "BASE(0)" "(char *)0" "NIL";
  check_base "BASE(42)" "42" "NIL"

(* BASE(x) = x if x is a variable and possible heap pointer *)
let test_base_var () =
  check_base "BASE(p) for pointer var" "p" "p";
  check_base "BASE(n) for int var" "n" "NIL";
  (* array variables are named memory, never heap pointers *)
  check_base "BASE(buf) for array var" "buf" "NIL"

(* BASE(x = e) = x if x is a pointer variable *)
let test_base_assign () =
  check_base "BASE(p = q)" "p = q" "p";
  check_base "BASE(p = q + 1)" "p = q + 1" "p";
  (* if x is not a pointer variable: BASE(e) *)
  check_base "BASE(n = e) = BASE(e)" "n = (p != 0)" "NIL"

(* BASE(e1 += e2) = BASE(e1), same for -=, ++, -- *)
let test_base_incr_forms () =
  check_base "BASE(p += n)" "p += n" "p";
  check_base "BASE(p -= n)" "p -= n" "p";
  check_base "BASE(p++)" "p++" "p";
  check_base "BASE(++p)" "++p" "p";
  check_base "BASE(p--)" "p--" "p";
  check_base "BASE(--p)" "--p" "p"

(* BASE(e1 + e2) = BASE(e1) where e1 is the pointer-typed expression *)
let test_base_add_sub () =
  check_base "BASE(p + n)" "p + n" "p";
  check_base "BASE(n + p)" "n + p" "p";
  check_base "BASE(p - n)" "p - n" "p";
  check_base "BASE(p + n + 1)" "p + n + 1" "p"

(* BASE(e1, e2) = BASE(e2) *)
let test_base_comma () =
  check_base "BASE(comma)" "(n = 1, p)" "p";
  check_base "BASE(comma arith)" "(n, q + 2)" "q"

(* BASE(&e) = BASEADDR(e) *)
let test_base_addrof () =
  check_base "BASE(&p[n])" "&p[n]" "p";
  check_base "BASE(&buf[n])" "&buf[n]" "NIL";
  check_base "BASE(&sp->x)" "&sp->x" "sp";
  check_base "BASE(&n)" "&n" "NIL"

(* BASEADDR(x) = NIL for variables *)
let test_baseaddr_var () = check_baseaddr "BASEADDR(x)" "&n" "NIL"

(* BASEADDR(e1[e2]) = BASE(e1) if not NIL, else BASE(e2) *)
let test_baseaddr_index () =
  check_baseaddr "BASEADDR(p[n]) = BASE(p)" "&p[n]" "p";
  check_baseaddr "BASEADDR(buf[n]) = NIL" "&buf[n]" "NIL";
  (* the reversed-subscript case: BASE(e1) is NIL, use BASE(e2) *)
  check_baseaddr "BASEADDR(n[p]) = BASE(p)" "&n[p]" "p"

(* BASEADDR(e1 -> x) = BASE(e1) *)
let test_baseaddr_arrow () =
  check_baseaddr "BASEADDR(sp->x)" "&sp->x" "sp";
  check_baseaddr "BASEADDR(sp->arr[2])" "&sp->arr[2]" "sp"

(* field chains compose through BASEADDR *)
let test_baseaddr_field_chains () =
  check_baseaddr "local struct field" "&sv.x" "NIL";
  check_baseaddr "deref-field" "&(*sp).x" "sp"

(* casts are transparent *)
let test_cast_transparent () =
  check_base "BASE((int *)p)" "(int *)p" "p";
  check_base "BASE((char *)(p + 1))" "(char *)(p + 1)" "p"

(* generating expressions have no BASE *)
let test_generating () =
  check_base "call" "(char *)malloc(8)" "<unnamed>";
  check_base "deref" "*(char **)p" "<unnamed>";
  check_base "conditional" "n ? p : q" "<unnamed>";
  check_base "scalar field load" "sp->next" "<unnamed>";
  Alcotest.(check bool) "is_generating call" true
    (Base_rules.is_generating (probe_expr "(char *)malloc(8)" |> fun e ->
      match e.Ast.edesc with Ast.Cast (_, inner) -> inner | _ -> e));
  Alcotest.(check bool) "array field is not generating" false
    (Base_rules.is_generating (probe_expr "sp->arr"))

(* KEEP_LIVE is transparent for BASE (needed by the loop heuristic) *)
let test_keep_live_transparent () =
  let e = probe_expr "p + 1" in
  let kl = Ast.mk_expr (Ast.KeepLive (e, Some (probe_expr "p"))) in
  kl.Ast.ety <- Some (Ctype.Ptr Ctype.Char);
  Alcotest.(check string) "BASE(KEEP_LIVE(p+1,p))" "p"
    (Base_rules.base_to_string (Base_rules.base kl))

let test_is_copy () =
  let copy probe = Base_rules.is_copy (probe_expr probe) in
  Alcotest.(check bool) "var" true (copy "q");
  Alcotest.(check bool) "cast of var" true (copy "(int *)q");
  Alcotest.(check bool) "assignment to var" true (copy "p = q + 1");
  Alcotest.(check bool) "arith is not a copy" false (copy "q + 1");
  Alcotest.(check bool) "call is not a copy" false (copy "(char *)malloc(4)")

(* qcheck: any chain of +=/-=/+/- arithmetic over p has BASE p *)
let arith_chain_gen =
  QCheck.Gen.(
    let rec build depth =
      if depth = 0 then return "p"
      else
        frequency
          [
            (3, map (fun inner -> "(" ^ inner ^ " + n)") (build (depth - 1)));
            (2, map (fun inner -> "(" ^ inner ^ " - 2)") (build (depth - 1)));
            (1, map (fun inner -> "(char *)(" ^ inner ^ ")") (build (depth - 1)));
            (1, map (fun inner -> "(n, " ^ inner ^ ")") (build (depth - 1)));
          ]
    in
    int_range 1 6 >>= build)

let prop_arith_chain =
  QCheck.Test.make ~count:100 ~name:"BASE of arithmetic chains over p is p"
    (QCheck.make arith_chain_gen)
    (fun probe -> base_str probe = "p")

let suite =
  [
    Alcotest.test_case "BASE(0) = NIL" `Quick test_base_zero;
    Alcotest.test_case "BASE(x)" `Quick test_base_var;
    Alcotest.test_case "BASE(x = e)" `Quick test_base_assign;
    Alcotest.test_case "BASE(++/--/+=/-=)" `Quick test_base_incr_forms;
    Alcotest.test_case "BASE(e1 + e2), BASE(e1 - e2)" `Quick test_base_add_sub;
    Alcotest.test_case "BASE(e1, e2)" `Quick test_base_comma;
    Alcotest.test_case "BASE(&e) = BASEADDR(e)" `Quick test_base_addrof;
    Alcotest.test_case "BASEADDR(x) = NIL" `Quick test_baseaddr_var;
    Alcotest.test_case "BASEADDR(e1[e2])" `Quick test_baseaddr_index;
    Alcotest.test_case "BASEADDR(e1 -> x)" `Quick test_baseaddr_arrow;
    Alcotest.test_case "BASEADDR of field chains" `Quick
      test_baseaddr_field_chains;
    Alcotest.test_case "casts transparent" `Quick test_cast_transparent;
    Alcotest.test_case "generating expressions" `Quick test_generating;
    Alcotest.test_case "KEEP_LIVE transparent" `Quick
      test_keep_live_transparent;
    Alcotest.test_case "is_copy (optimization 1)" `Quick test_is_copy;
    QCheck_alcotest.to_alcotest prop_arith_chain;
  ]
