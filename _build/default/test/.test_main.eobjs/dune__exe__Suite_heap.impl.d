test/suite_heap.ml: Alcotest Array Block Gcheap Gen Heap List Mem Page_map Printf QCheck QCheck_alcotest
