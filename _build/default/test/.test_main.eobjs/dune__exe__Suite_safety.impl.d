test/suite_safety.ml: Alcotest Csyntax Gcsafe Harness Ir List Machine Opt QCheck QCheck_alcotest String Testgen Util Workloads
