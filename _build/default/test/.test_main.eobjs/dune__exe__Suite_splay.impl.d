test/suite_splay.ml: Alcotest Gcheap Gen Heap List Option QCheck QCheck_alcotest Splay
