test/suite_pretty.ml: Alcotest Ast Csyntax Machine Parser Pretty Printf QCheck QCheck_alcotest Testgen Util
