test/suite_base_rules.ml: Alcotest Ast Base_rules Csyntax Ctype Gcsafe List Option Printf QCheck QCheck_alcotest Typecheck
