test/suite_c2c.ml: Alcotest Annotate Array Ast Csyntax Gcsafe Ir Lexer List Machine Mode Opt Parser Pretty Printf Token Typecheck Workloads
