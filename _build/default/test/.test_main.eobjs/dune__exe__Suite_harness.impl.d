test/suite_harness.ml: Alcotest Format Harness Lazy List Machine Printf Util Workloads
