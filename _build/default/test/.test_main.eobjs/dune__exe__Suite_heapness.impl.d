test/suite_heapness.ml: Alcotest Annotate Csyntax Gcsafe Ir List Machine Mode Opt String Workloads
