test/suite_ctype.ml: Alcotest Ast Csyntax Ctype List Parser
