test/suite_compile_vm.ml: Alcotest Ir Machine String Util
