test/suite_lexer.ml: Alcotest Array Csyntax Lexer List Loc String Token
