test/testgen.ml: Printf QCheck String
