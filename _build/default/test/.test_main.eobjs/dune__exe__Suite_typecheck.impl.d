test/suite_typecheck.ml: Alcotest Ast Csyntax Ctype Fmt List Loc Parser Printf Typecheck Workloads
