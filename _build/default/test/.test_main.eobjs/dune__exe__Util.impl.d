test/util.ml: Alcotest Csyntax Harness Ir List Machine Opt Option Printf
