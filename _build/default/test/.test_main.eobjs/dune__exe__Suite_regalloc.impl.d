test/suite_regalloc.ml: Alcotest Csyntax Gcsafe Ir List Opt Printf Util Workloads
