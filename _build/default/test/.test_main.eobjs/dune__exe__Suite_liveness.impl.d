test/suite_liveness.ml: Alcotest Array Ir List
