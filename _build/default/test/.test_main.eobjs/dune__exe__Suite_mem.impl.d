test/suite_mem.ml: Alcotest Char Gcheap List Mem Printf QCheck QCheck_alcotest
