test/suite_peephole.ml: Alcotest Csyntax Format Gcsafe Harness Ir List Machine Opt Peephole String Util Workloads
