test/suite_normalize.ml: Alcotest Annotate Ast Csyntax Ctype Gcsafe Ir List Machine Mode Normalize Opt Parser Pretty String Typecheck
