test/suite_loopopt.ml: Alcotest Array Csyntax Format Gcsafe Ir List Machine Opt Util
