test/suite_builtins.ml: Alcotest Util
