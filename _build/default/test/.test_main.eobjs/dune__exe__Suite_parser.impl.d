test/suite_parser.ml: Alcotest Ast Csyntax Loc Parser Pretty Workloads
