test/suite_patch.ml: Alcotest Char Gcsafe List Patch QCheck QCheck_alcotest String
