test/suite_source_check.ml: Alcotest Csyntax Format Gcsafe List Loc Source_check String Typecheck Workloads
