test/suite_instr.ml: Alcotest Format Ir List
