test/suite_extensions.ml: Alcotest Annotate Csyntax Gcsafe Ir List Machine Mode Opt Printf String Workloads
