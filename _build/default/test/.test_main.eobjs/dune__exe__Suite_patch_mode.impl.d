test/suite_patch_mode.ml: Alcotest Annotate Csyntax Gcsafe Ir List Machine Mode Opt Parser Patch_mode String Typecheck Workloads
