test/suite_opt.ml: Alcotest Format Ir List Opt String Util Workloads
