test/suite_annotate.ml: Alcotest Annotate Ast Csyntax Gcsafe List Loop_heuristic Mode Option Parser Pretty String Typecheck Workloads
