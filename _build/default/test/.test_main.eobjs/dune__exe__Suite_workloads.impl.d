test/suite_workloads.ml: Alcotest Gcheap Harness List Machine String Util Workloads
