(* Patch engine tests: sorted insertion/deletion lists over original text. *)

open Gcsafe

let apply edits src =
  let t = Patch.create () in
  List.iter (fun (offset, delete, insert) -> Patch.add t ~offset ~delete ~insert) edits;
  Patch.apply t src

let check name edits src expected =
  Alcotest.(check string) name expected (apply edits src)

let test_empty () = check "no edits" [] "hello" "hello"

let test_insert () =
  check "insert front" [ (0, 0, ">") ] "abc" ">abc";
  check "insert middle" [ (1, 0, "XY") ] "abc" "aXYbc";
  check "insert end" [ (3, 0, "!") ] "abc" "abc!"

let test_delete () =
  check "delete front" [ (0, 1, "") ] "abc" "bc";
  check "delete middle" [ (1, 1, "") ] "abc" "ac";
  check "delete all" [ (0, 3, "") ] "abc" ""

let test_replace () =
  check "replace" [ (1, 1, "BB") ] "abc" "aBBc"

let test_order_independence () =
  (* offsets refer to the original string regardless of insertion order *)
  let edits = [ (4, 0, "D"); (0, 0, "A"); (2, 0, "B") ] in
  check "edits sort by offset" edits "wxyz" "AwxByzD"

let test_same_offset_stable () =
  (* same-offset insertions apply in registration order *)
  check "registration order" [ (1, 0, "1"); (1, 0, "2"); (1, 0, "3") ] "ab"
    "a123b"

let test_wrap () =
  let t = Patch.create () in
  Patch.wrap t ~start:2 ~stop:7 ~prefix:"KEEP_LIVE(" ~suffix:", p)";
  Alcotest.(check string) "wrap helper" "x(KEEP_LIVE(p + 1, p));"
    (Patch.apply t "x(p + 1);")

let test_overlap_rejected () =
  let t = Patch.create () in
  Patch.delete t ~offset:0 ~len:3;
  Patch.delete t ~offset:2 ~len:2;
  match Patch.apply t "abcdef" with
  | exception Patch.Overlap _ -> ()
  | _ -> Alcotest.fail "overlapping deletions must be rejected"

let test_invalid_args () =
  let t = Patch.create () in
  match Patch.add t ~offset:(-1) ~delete:0 ~insert:"" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative offset must be rejected"

(* reference implementation: apply one edit at a time to a string zipper,
   processing edits sorted by (offset, seq) from the end backwards *)
let reference edits src =
  let sorted =
    List.sort
      (fun (o1, _, _, s1) (o2, _, _, s2) ->
        match compare o1 o2 with 0 -> compare s1 s2 | c -> c)
      (List.mapi (fun i (o, d, ins) -> (o, d, ins, i)) edits)
  in
  List.fold_left
    (fun (acc, shift) (o, d, ins, _) ->
      let o' = o + shift in
      let before = String.sub acc 0 o' in
      let after = String.sub acc (o' + d) (String.length acc - o' - d) in
      (before ^ ins ^ after, shift + String.length ins - d))
    (src, 0) sorted
  |> fst

let gen_case =
  QCheck.Gen.(
    let* len = int_range 0 40 in
    let src = String.init len (fun i -> Char.chr (97 + (i mod 26))) in
    (* non-overlapping deletions: pick sorted cut points *)
    let* nedits = int_range 0 6 in
    let rec build pos acc k =
      if k = 0 || pos > len then return (List.rev acc)
      else
        let* off = int_range pos len in
        let* del = int_range 0 (min 3 (len - off)) in
        let* ins =
          oneof [ return ""; return "<"; return "INS"; return "((" ]
        in
        build (off + max del 1) ((off, del, ins) :: acc) (k - 1)
    in
    let* edits = build 0 [] nedits in
    return (src, edits))

let prop_matches_reference =
  QCheck.Test.make ~count:500 ~name:"patch matches reference implementation"
    (QCheck.make gen_case) (fun (src, edits) ->
      apply edits src = reference edits src)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "insert" `Quick test_insert;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "replace" `Quick test_replace;
    Alcotest.test_case "order independence" `Quick test_order_independence;
    Alcotest.test_case "same offset stability" `Quick test_same_offset_stable;
    Alcotest.test_case "wrap helper" `Quick test_wrap;
    Alcotest.test_case "overlap rejected" `Quick test_overlap_rejected;
    Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
    QCheck_alcotest.to_alcotest prop_matches_reference;
  ]
