(* Liveness dataflow unit tests on hand-built CFGs. *)

open Ir.Instr

let mk_blocks blocks =
  {
    fn_name = "t";
    fn_params = [];
    fn_ret_void = false;
    fn_blocks =
      List.map
        (fun (label, instrs, term) ->
          { b_label = label; b_instrs = instrs; b_term = term })
        blocks;
    fn_nreg = 16;
    fn_frame = 0;
  }

let set l = Ir.Liveness.ISet.of_list l

let check_set name expected actual =
  Alcotest.(check (list int))
    name (List.sort compare expected)
    (Ir.Liveness.ISet.elements actual)

let test_straight_line () =
  let f =
    mk_blocks
      [ (0, [ Mov (1, Imm 5); Bin (Add, 2, Reg 1, Imm 1) ], Ret (Some (Reg 2))) ]
  in
  let live = Ir.Liveness.compute f in
  check_set "nothing live in" [] (Ir.Liveness.live_in live 0);
  check_set "nothing live out" [] (Ir.Liveness.live_out live 0);
  let after = Ir.Liveness.per_instr live (List.hd f.fn_blocks) in
  check_set "r1 live after mov" [ 1 ] after.(0);
  check_set "r2 live after add" [ 2 ] after.(1)

let test_param_liveness () =
  (* a value used before any definition is live-in at the entry *)
  let f = mk_blocks [ (0, [ Bin (Add, 2, Reg 1, Imm 1) ], Ret (Some (Reg 2))) ] in
  let live = Ir.Liveness.compute f in
  check_set "r1 live-in" [ 1 ] (Ir.Liveness.live_in live 0)

let test_branch_join () =
  (* r1 used on one arm only: live-in at the branch point nonetheless *)
  let f =
    mk_blocks
      [
        (0, [], Br (Reg 3, 1, 2));
        (1, [ Mov (4, Reg 1) ], Jmp 3);
        (2, [ Mov (4, Imm 0) ], Jmp 3);
        (3, [], Ret (Some (Reg 4)));
      ]
  in
  let live = Ir.Liveness.compute f in
  check_set "branch block live-in" [ 1; 3 ] (Ir.Liveness.live_in live 0);
  check_set "join live-in" [ 4 ] (Ir.Liveness.live_in live 3)

let test_loop_carried () =
  (* the loop counter is live around the back edge *)
  let f =
    mk_blocks
      [
        (0, [ Mov (1, Imm 0) ], Jmp 1);
        (1, [ Rel (Lt, 2, Reg 1, Imm 10) ], Br (Reg 2, 2, 3));
        (2, [ Bin (Add, 1, Reg 1, Imm 1) ], Jmp 1);
        (3, [], Ret (Some (Reg 1)));
      ]
  in
  let live = Ir.Liveness.compute f in
  check_set "counter live into head" [ 1 ] (Ir.Liveness.live_in live 1);
  check_set "counter live out of body" [ 1 ] (Ir.Liveness.live_out live 2);
  check_set "counter live out of head" [ 1 ] (Ir.Liveness.live_out live 1)

let test_keep_live_is_a_use () =
  (* the KeepLive marker extends the live range — the heart of the
     KEEP_LIVE contract at the IR level *)
  let without =
    mk_blocks
      [ (0, [ Mov (1, Reg 5); Bin (Add, 2, Reg 1, Imm 4); Mov (3, Imm 0) ],
         Ret (Some (Reg 2))) ]
  in
  let with_keep =
    mk_blocks
      [ (0, [ Mov (1, Reg 5); Bin (Add, 2, Reg 1, Imm 4); KeepLive (Reg 1);
              Mov (3, Imm 0) ],
         Ret (Some (Reg 2))) ]
  in
  let l1 = Ir.Liveness.compute without in
  let l2 = Ir.Liveness.compute with_keep in
  let after1 = Ir.Liveness.per_instr l1 (List.hd without.fn_blocks) in
  let after2 = Ir.Liveness.per_instr l2 (List.hd with_keep.fn_blocks) in
  Alcotest.(check bool) "r1 dead after add without keep" false
    (Ir.Liveness.ISet.mem 1 after1.(1));
  Alcotest.(check bool) "r1 live after add with keep" true
    (Ir.Liveness.ISet.mem 1 after2.(1))

let test_push_call_uses () =
  let f =
    mk_blocks
      [ (0, [ Push (Reg 7); Call (Some 2, "f", 1) ], Ret (Some (Reg 2))) ]
  in
  let live = Ir.Liveness.compute f in
  check_set "push argument live-in" [ 7 ] (Ir.Liveness.live_in live 0)

let test_store_uses_all () =
  let f =
    mk_blocks
      [ (0, [ Store (W8, Reg 1, Reg 2, Reg 3) ], Ret None) ]
  in
  let live = Ir.Liveness.compute f in
  check_set "store uses src, base, offset" [ 1; 2; 3 ]
    (Ir.Liveness.live_in live 0);
  ignore (set [])

let suite =
  [
    Alcotest.test_case "straight line" `Quick test_straight_line;
    Alcotest.test_case "parameters live-in" `Quick test_param_liveness;
    Alcotest.test_case "branch and join" `Quick test_branch_join;
    Alcotest.test_case "loop-carried values" `Quick test_loop_carried;
    Alcotest.test_case "KeepLive is a use" `Quick test_keep_live_is_a_use;
    Alcotest.test_case "push/call uses" `Quick test_push_call_uses;
    Alcotest.test_case "store uses all operands" `Quick test_store_uses_all;
  ]
