(* VM builtin library tests: the ambient C library of the problem
   statement, exercised through compiled programs. *)

let run = Util.run

let test_string_functions () =
  Alcotest.(check string) "strcmp/strncmp/strchr"
    "0 -1 1 0 1 d 0\n"
    (run
       {|int main(void) {
  char *a = (char *)malloc(8);
  char *b = (char *)malloc(8);
  strcpy(a, "abc");
  strcpy(b, "abd");
  printf("%d %d %d %d %d %c %d\n",
         strcmp(a, a),
         strcmp(a, b) < 0 ? -1 : 1,
         strcmp(b, a) > 0 ? 1 : -1,
         strncmp(a, b, 2),
         strchr(a, 'z') == 0,
         *strchr(b, 'd'),
         (int)(strchr(a, 'b') - a) - 1);
  return 0;
}|})

let test_strcat () =
  Alcotest.(check string) "strcat" "one,two 7\n"
    (run
       {|int main(void) {
  char *buf = (char *)malloc(32);
  strcpy(buf, "one");
  strcat(buf, ",");
  strcat(buf, "two");
  printf("%s %d\n", buf, (int)strlen(buf));
  return 0;
}|})

let test_calloc_zeroed () =
  Alcotest.(check string) "calloc" "0 0 0\n"
    (run
       {|int main(void) {
  long *p = (long *)calloc(4, sizeof(long));
  printf("%ld %ld %ld\n", p[0], p[1], p[3]);
  return 0;
}|})

let test_realloc_preserves () =
  Alcotest.(check string) "realloc grows and keeps contents" "7 9 ok\n"
    (run
       {|int main(void) {
  long *p = (long *)malloc(2 * sizeof(long));
  long *q;
  p[0] = 7; p[1] = 9;
  q = (long *)realloc(p, 64 * sizeof(long));
  q[63] = 1;
  printf("%ld %ld %s\n", q[0], q[1], "ok");
  return 0;
}|});
  Alcotest.(check string) "realloc(0, n) allocates" "5\n"
    (run
       {|int main(void) {
  long *p = (long *)realloc((void *)0, 8);
  *p = 5;
  printf("%ld\n", *p);
  return 0;
}|})

let test_free_is_noop () =
  (* the problem statement: "remove all calls to free" — the object stays
     reachable and valid after free *)
  Alcotest.(check string) "free removed" "42\n"
    (run
       {|int main(void) {
  long *p = (long *)malloc(8);
  *p = 42;
  free(p);
  GC_collect();
  printf("%ld\n", *p);
  return 0;
}|})

let test_gc_base_builtin () =
  Alcotest.(check string) "GC_base from C" "1 1 1\n"
    (run
       {|int main(void) {
  char *p = (char *)malloc(100);
  long stack_var = 0;
  printf("%d %d %d\n",
         (char *)GC_base(p + 57) == p,
         GC_base((void *)0) == 0,
         (char *)GC_base(p) == p);
  return 0;
}|})

let test_printf_conversions () =
  Alcotest.(check string) "printf subset" "x=-5 c=A s=hi pct=% hex=ff\n"
    (run
       {|int main(void) {
  printf("x=%d c=%c s=%s pct=%% hex=%x\n", -5, 'A', "hi", 255);
  return 0;
}|})

let test_putchar_puts () =
  Alcotest.(check string) "putchar/puts" "ab\nline\n"
    (run
       {|int main(void) {
  putchar('a'); putchar('b'); putchar(10);
  puts("line");
  return 0;
}|})

let test_abs_and_rand_bounds () =
  Alcotest.(check string) "abs" "5 5 0\n"
    (run {|int main(void) { printf("%d %d %d\n", abs(5), abs(-5), abs(0)); return 0; }|});
  Alcotest.(check string) "rand stays nonnegative" "ok\n"
    (run
       {|int main(void) {
  int i;
  srand(99);
  for (i = 0; i < 1000; i++) {
    int v = rand();
    if (v < 0) { puts("neg"); return 1; }
  }
  puts("ok");
  return 0;
}|})

let test_gc_collect_builtin () =
  Alcotest.(check string) "explicit collection frees garbage" "1\n"
    (run
       {|int main(void) {
  long i;
  for (i = 0; i < 100; i++) malloc(64);
  GC_collect();
  puts("1");
  return 0;
}|})

let test_memcmp_style_loop () =
  (* memmove with overlapping ranges, both directions *)
  Alcotest.(check string) "memmove overlap" "aabcd bcdde\n"
    (run
       {|int main(void) {
  char *s1 = (char *)malloc(8);
  char *s2 = (char *)malloc(8);
  strcpy(s1, "abcde");
  strcpy(s2, "abcde");
  memmove(s1 + 1, s1, 4);   /* shift right: aabcd */
  memmove(s2, s2 + 1, 3);   /* shift left: bcdde */
  printf("%s %s\n", s1, s2);
  return 0;
}|})

let suite =
  [
    Alcotest.test_case "string functions" `Quick test_string_functions;
    Alcotest.test_case "strcat" `Quick test_strcat;
    Alcotest.test_case "calloc zeroes" `Quick test_calloc_zeroed;
    Alcotest.test_case "realloc" `Quick test_realloc_preserves;
    Alcotest.test_case "free is removed" `Quick test_free_is_noop;
    Alcotest.test_case "GC_base from C" `Quick test_gc_base_builtin;
    Alcotest.test_case "printf conversions" `Quick test_printf_conversions;
    Alcotest.test_case "putchar/puts" `Quick test_putchar_puts;
    Alcotest.test_case "abs and rand" `Quick test_abs_and_rand_bounds;
    Alcotest.test_case "GC_collect" `Quick test_gc_collect_builtin;
    Alcotest.test_case "memmove overlap" `Quick test_memcmp_style_loop;
  ]
