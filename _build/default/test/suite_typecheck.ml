(* Type checker unit tests. *)

open Csyntax

let check_ok src =
  try ignore (Typecheck.check_source src)
  with Typecheck.Error (m, loc) ->
    Alcotest.failf "type error at %s: %s" (Loc.to_string loc) m

let check_fails src =
  match Typecheck.check_source src with
  | exception Typecheck.Error _ -> ()
  | _ -> Alcotest.failf "expected type error on %S" src

(* the type of the first (outermost) expression of [probe] inside a
   one-statement main, with [decls] in scope *)
let type_of_probe decls probe =
  let src = Printf.sprintf "%s\nint main(void) { %s; return 0; }" decls probe in
  let p, _ = Typecheck.check_source src in
  let result = ref None in
  List.iter
    (function
      | Ast.Gfunc f when f.Ast.f_name = "main" ->
          ignore
            (Ast.fold_stmt_exprs
               (fun () e ->
                 if !result = None then result := e.Ast.ety)
               () f.Ast.f_body)
      | _ -> ())
    p.Ast.prog_globals;
  match !result with
  | Some t -> t
  | None -> Alcotest.fail "no expression found"

let ty = Alcotest.testable (Fmt.of_to_string Ctype.to_string) Ctype.equal

let test_arith_conversions () =
  Alcotest.check ty "char+char promotes to int" Ctype.Int
    (type_of_probe "char a; char b;" "a + b");
  Alcotest.check ty "int+long = long" Ctype.Long
    (type_of_probe "int a; long b;" "a + b");
  Alcotest.check ty "comparison is int" Ctype.Int
    (type_of_probe "long a; long b;" "a < b")

let test_pointer_arith () =
  Alcotest.check ty "ptr + int" (Ctype.Ptr Ctype.Char)
    (type_of_probe "char *p;" "p + 3");
  Alcotest.check ty "int + ptr" (Ctype.Ptr Ctype.Int)
    (type_of_probe "int *p;" "2 + p");
  Alcotest.check ty "ptr - ptr = long" Ctype.Long
    (type_of_probe "char *p; char *q;" "p - q");
  check_fails "int main(void) { int *p; int *q; p + q; return 0; }"

let test_array_decay () =
  Alcotest.check ty "array subscripts" Ctype.Int
    (type_of_probe "int a[10];" "a[3]");
  Alcotest.check ty "array in rvalue decays"
    (Ctype.Ptr Ctype.Int)
    (type_of_probe "int a[10];" "a + 1");
  Alcotest.check ty "reversed subscript" Ctype.Char
    (type_of_probe "char *p;" "3[p]")

let test_struct_access () =
  let decls = "struct s { int x; char *name; struct s *next; }; struct s g; struct s *p;" in
  Alcotest.check ty "field" Ctype.Int (type_of_probe decls "g.x");
  Alcotest.check ty "arrow" (Ctype.Ptr Ctype.Char) (type_of_probe decls "p->name");
  Alcotest.check ty "chain" Ctype.Int (type_of_probe decls "p->next->x");
  check_fails (decls ^ " int main(void) { g.nofield; return 0; }");
  check_fails (decls ^ " int main(void) { g->x; return 0; }")

let test_deref_addr () =
  Alcotest.check ty "deref" Ctype.Char (type_of_probe "char *p;" "*p");
  Alcotest.check ty "addr" (Ctype.Ptr Ctype.Long) (type_of_probe "long v;" "&v");
  check_fails "int main(void) { int x; *x; return 0; }";
  check_fails "int main(void) { void *p; *p; return 0; }";
  check_fails "int main(void) { &(1 + 2); return 0; }"

let test_calls () =
  check_ok "int f(int a, char *b); int main(void) { return f(1, \"x\"); }";
  check_fails "int f(int a); int main(void) { return f(); }";
  check_fails "int f(int a); int main(void) { return f(1, 2); }";
  check_fails "int main(void) { return nosuch(1); }";
  (* varargs accept extras *)
  check_ok "int main(void) { printf(\"%d %d\", 1, 2); return 0; }";
  (* builtins are known *)
  check_ok "int main(void) { char *p = (char *)malloc(10); return (int)strlen(p); }"

let test_assignment_rules () =
  check_ok "int main(void) { char *p; p = 0; return 0; }";
  check_ok "struct s { int x; }; struct s a; struct s b; int main(void) { a = b; return 0; }";
  check_fails "struct s { int x; }; struct t { int y; }; struct s a; struct t b; int main(void) { a = b; return 0; }";
  check_fails "int main(void) { 1 = 2; return 0; }";
  check_fails "int main(void) { int a[3]; int b[3]; a + 0 = b; return 0; }"

let test_returns () =
  check_fails "void f(void) { return 1; }";
  check_fails "int f(void) { return; }";
  check_ok "void f(void) { return; }";
  check_ok "char *f(void) { return 0; }"

let test_scoping () =
  check_ok
    "int main(void) { int x = 1; { int x = 2; x++; } return x; }";
  check_fails "int main(void) { { int y = 1; } return y; }";
  check_fails "int main(void) { return z; }"

let test_incomplete_types () =
  check_fails "int main(void) { struct nosuch s; return 0; }";
  check_fails "char buf[]; int main(void) { return 0; }";
  (* pointers to undefined structs are fine *)
  check_ok "struct fwd; struct fwd *p; int main(void) { return p == 0; }"

let test_increment () =
  check_ok "int main(void) { int i = 0; i++; ++i; i--; --i; return i; }";
  check_ok "int main(void) { char *p = 0; p++; return 0; }";
  check_fails "int main(void) { 5++; return 0; }";
  check_fails "struct s { int x; }; struct s v; int main(void) { v++; return 0; }"

let test_conditional () =
  Alcotest.check ty "int/long branches" Ctype.Long
    (type_of_probe "int a; long b;" "a ? a : b");
  Alcotest.check ty "ptr/zero branches" (Ctype.Ptr Ctype.Char)
    (type_of_probe "char *p;" "p ? p : 0");
  check_fails "struct s { int x; }; struct s v; int main(void) { v ? 1 : 2; return 0; }"

let test_sizeof () =
  check_ok
    {|struct s { char c; long l; };
int main(void) {
  long a = sizeof(char);
  long b = sizeof(struct s);
  long c = sizeof(int *);
  return (int)(a + b + c);
}|}

let test_struct_layouts () =
  let src = "struct s { char c; int i; char d; long l; };" in
  let p = Parser.parse_program src in
  let env = p.Ast.prog_env in
  match Ctype.Env.find env "s" with
  | None -> Alcotest.fail "no layout"
  | Some lay ->
      let off name =
        (List.find (fun f -> f.Ctype.fld_name = name) lay.Ctype.lay_fields)
          .Ctype.fld_offset
      in
      Alcotest.(check int) "c at 0" 0 (off "c");
      Alcotest.(check int) "i at 4" 4 (off "i");
      Alcotest.(check int) "d at 8" 8 (off "d");
      Alcotest.(check int) "l at 16" 16 (off "l");
      Alcotest.(check int) "size 24" 24 lay.Ctype.lay_size;
      Alcotest.(check int) "align 8" 8 lay.Ctype.lay_align

let test_union_layout () =
  let src = "union u { char c[5]; long l; int i; };" in
  let p = Parser.parse_program src in
  match Ctype.Env.find p.Ast.prog_env "u" with
  | None -> Alcotest.fail "no layout"
  | Some lay ->
      Alcotest.(check int) "size 8" 8 lay.Ctype.lay_size;
      List.iter
        (fun f -> Alcotest.(check int) "offset 0" 0 f.Ctype.fld_offset)
        lay.Ctype.lay_fields

let test_contains_pointer () =
  let src =
    "struct inner { int a; char *p; }; struct outer { int b; struct inner i; }; struct plain { int x; long y; };"
  in
  let p = Parser.parse_program src in
  let env = p.Ast.prog_env in
  Alcotest.(check bool) "outer has pointer" true
    (Ctype.contains_pointer env (Ctype.Struct "outer"));
  Alcotest.(check bool) "plain has none" false
    (Ctype.contains_pointer env (Ctype.Struct "plain"));
  Alcotest.(check bool) "array of ptr" true
    (Ctype.contains_pointer env (Ctype.Array (Ctype.Ptr Ctype.Int, Some 4)))

let test_workloads_typecheck () =
  check_ok Workloads.Cord.source;
  check_ok Workloads.Cfrac.source;
  check_ok Workloads.Gawk.source;
  check_ok Workloads.Gawk.source_fixed;
  check_ok Workloads.Gs.source

let suite =
  [
    Alcotest.test_case "arith conversions" `Quick test_arith_conversions;
    Alcotest.test_case "pointer arithmetic" `Quick test_pointer_arith;
    Alcotest.test_case "array decay" `Quick test_array_decay;
    Alcotest.test_case "struct access" `Quick test_struct_access;
    Alcotest.test_case "deref and addr" `Quick test_deref_addr;
    Alcotest.test_case "calls" `Quick test_calls;
    Alcotest.test_case "assignment" `Quick test_assignment_rules;
    Alcotest.test_case "returns" `Quick test_returns;
    Alcotest.test_case "scoping" `Quick test_scoping;
    Alcotest.test_case "incomplete types" `Quick test_incomplete_types;
    Alcotest.test_case "increment" `Quick test_increment;
    Alcotest.test_case "conditional" `Quick test_conditional;
    Alcotest.test_case "sizeof" `Quick test_sizeof;
    Alcotest.test_case "struct layout" `Quick test_struct_layouts;
    Alcotest.test_case "union layout" `Quick test_union_layout;
    Alcotest.test_case "contains_pointer" `Quick test_contains_pointer;
    Alcotest.test_case "workloads typecheck" `Quick test_workloads_typecheck;
  ]
