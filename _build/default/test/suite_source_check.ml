(* Source checker tests: the paper's pointer-hiding warnings. *)

open Csyntax
open Gcsafe

let diags src =
  let p, _ = Typecheck.check_source src in
  Source_check.check_program p

let codes src = List.map (fun d -> d.Source_check.diag_code) (diags src)

let warning_codes src =
  List.map
    (fun d -> d.Source_check.diag_code)
    (Source_check.warnings (diags src))

let check_codes name src expected =
  Alcotest.(check (list string)) name expected (warning_codes src)

let test_int_to_pointer () =
  check_codes "W1 int to pointer"
    "char *f(long bits) { return (char *)bits; }" [ "W1" ];
  check_codes "arith on converted value"
    "char *f(char *p) { long v = (long)p; v += 8; return (char *)v; }"
    [ "W1" ]

let test_null_and_small_constants_benign () =
  check_codes "null pointer constant" "char *f(void) { return (char *)0; }" [];
  (* small nonzero constants: info only, not a warning *)
  let ds = diags "char *f(void) { return (char *)1; }" in
  Alcotest.(check (list string)) "info W1" [ "W1" ]
    (List.map (fun d -> d.Source_check.diag_code) ds);
  Alcotest.(check bool) "severity info" true
    (List.for_all (fun d -> d.Source_check.diag_severity = Source_check.Info) ds)

let test_struct_pointer_cast () =
  check_codes "W2 struct cast"
    {|struct a { int x; }; struct b { int y; };
struct b *f(struct a *p) { return (struct b *)p; }|}
    [ "W2" ];
  check_codes "same struct is fine"
    {|struct a { int x; };
struct a *f(struct a *p) { return (struct a *)p; }|}
    []

let test_scanf_pct_p () =
  check_codes "W3 scanf %p"
    {|int main(void) { char *p; scanf("%p", &p); return 0; }|} [ "W3" ];
  check_codes "scanf %d is fine"
    {|int main(void) { int n; scanf("%d", &n); return 0; }|} []

let test_fread_pointerful () =
  check_codes "W4 fread into pointers"
    {|struct node { struct node *next; };
int main(void) { struct node n; fread(&n, sizeof(struct node), 1, 0); return 0; }|}
    [ "W4" ];
  check_codes "fread into bytes is fine"
    {|int main(void) { char buf[64]; fread(buf, 1, 64, 0); return 0; }|} []

let test_memcpy_mismatch () =
  check_codes "W5 memcpy type mismatch"
    {|struct node { struct node *next; };
int main(void) { struct node n; char buf[64]; memcpy(buf, &n, sizeof(struct node)); return 0; }|}
    [ "W5" ];
  check_codes "matched memcpy is fine"
    {|struct node { struct node *next; };
int main(void) { struct node a; struct node b; memcpy(&a, &b, sizeof(struct node)); return 0; }|}
    []

let test_diagnostics_sorted () =
  let src =
    {|char *f(long v) { return (char *)v; }
char *g(long w) { return (char *)w; }|}
  in
  let locs = List.map (fun d -> d.Source_check.diag_loc.Loc.line) (diags src) in
  Alcotest.(check (list int)) "source order" [ 1; 2 ] locs

let test_workloads_clean () =
  (* the workloads do legitimate pointer work only: at most benign infos *)
  List.iter
    (fun w ->
      let ws = warning_codes w.Workloads.Registry.w_source in
      Alcotest.(check (list string))
        (w.Workloads.Registry.w_name ^ " clean") [] ws)
    [ Workloads.Registry.cordtest; Workloads.Registry.cfrac; Workloads.Registry.gs ]

let test_pp () =
  match diags "char *f(long v) { return (char *)v; }" with
  | [ d ] ->
      let s = Format.asprintf "%a" Source_check.pp_diagnostic d in
      Alcotest.(check bool) "mentions W1" true
        (String.length s > 10 && String.sub s 0 7 = "warning")
  | _ -> Alcotest.fail "expected one diagnostic"

let suite =
  [
    Alcotest.test_case "W1 integer to pointer" `Quick test_int_to_pointer;
    Alcotest.test_case "benign conversions" `Quick
      test_null_and_small_constants_benign;
    Alcotest.test_case "W2 struct pointer cast" `Quick test_struct_pointer_cast;
    Alcotest.test_case "W3 scanf %p" `Quick test_scanf_pct_p;
    Alcotest.test_case "W4 fread" `Quick test_fread_pointerful;
    Alcotest.test_case "W5 memcpy mismatch" `Quick test_memcpy_mismatch;
    Alcotest.test_case "diagnostics sorted" `Quick test_diagnostics_sorted;
    Alcotest.test_case "workloads warning-free" `Quick test_workloads_clean;
    Alcotest.test_case "diagnostic printing" `Quick test_pp;
  ]

let _ = codes
