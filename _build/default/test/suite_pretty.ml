(* Pretty-printer tests: precedence-correct output that re-parses to the
   same tree, on hand-picked hard cases and random programs. *)

open Csyntax

let reprint src =
  Pretty.program_to_string (Parser.parse_program src)

let fixpoint name src =
  let s1 = reprint src in
  let s2 = reprint s1 in
  Alcotest.(check string) name s1 s2

(* random expression strings over all operators; precedence is the point,
   so generate *unparenthesized* mixes *)
let expr_gen =
  QCheck.Gen.(
    let atom = oneofl [ "a"; "b"; "c"; "1"; "2"; "p"; "q" ] in
    let rec build depth st =
      if depth = 0 then atom st
      else
        (frequency
           [
             (3, atom);
             ( 6,
               let* op =
                 oneofl
                   [ "+"; "-"; "*"; "/"; "%"; "<<"; ">>"; "<"; ">"; "<=";
                     ">="; "=="; "!="; "&"; "^"; "|"; "&&"; "||" ]
               in
               let* l = build (depth - 1) in
               let* r = build (depth - 1) in
               return (Printf.sprintf "%s %s %s" l op r) );
             (1, map (Printf.sprintf "-%s") (build (depth - 1)));
             (1, map (Printf.sprintf "!%s") (build (depth - 1)));
             (1, map (Printf.sprintf "~%s") (build (depth - 1)));
             ( 1,
               let* c = build 0 in
               let* t = build (depth - 1) in
               let* e = build (depth - 1) in
               return (Printf.sprintf "%s ? %s : %s" c t e) );
             ( 1,
               let* l = oneofl [ "a"; "b"; "c" ] in
               let* r = build (depth - 1) in
               return (Printf.sprintf "%s = %s" l r) );
           ])
          st
    in
    int_range 1 5 >>= build)

(* the parse of the printed form must equal the print of the parse *)
let prop_expr_roundtrip =
  QCheck.Test.make ~count:300 ~name:"expression print/parse fixpoint"
    (QCheck.make ~print:(fun s -> s) expr_gen)
    (fun src ->
      let e1 = Parser.parse_expr_string src in
      let s1 = Pretty.expr_to_string e1 in
      let e2 = Parser.parse_expr_string s1 in
      let s2 = Pretty.expr_to_string e2 in
      s1 = s2)

(* semantic check: the printed form evaluates identically *)
let prop_expr_semantics =
  QCheck.Test.make ~count:100
    ~name:"printed expressions evaluate identically"
    (QCheck.make ~print:(fun s -> s) expr_gen)
    (fun src ->
      (* embed in a program; a/b/c/p/q are longs; division guarded by
         skipping exprs that fault *)
      let wrap body =
        Printf.sprintf
          {|int main(void) {
  long a = 3; long b = -2; long c = 7; long p = 1; long q = 0;
  print_int((long)(%s));
  return 0;
}|}
          body
      in
      let run body =
        match Util.run (wrap body) with
        | out -> Some out
        | exception Machine.Vm.Fault _ -> None
        | exception Csyntax.Typecheck.Error _ -> None
      in
      let printed =
        Pretty.expr_to_string (Parser.parse_expr_string src)
      in
      match (run src, run printed) with
      | Some a, Some b -> a = b
      | None, None -> true
      | _ -> false)

let prop_program_roundtrip =
  QCheck.Test.make ~count:50 ~name:"program print/parse fixpoint"
    Testgen.arbitrary_program
    (fun src ->
      let s1 = reprint src in
      s1 = reprint s1)

let test_hard_cases () =
  fixpoint "nested conditionals" "int f(int a,int b,int c){return a?b?1:2:c?3:4;}";
  fixpoint "assignment chains" "int f(int a,int b){return a=b=a+1;}";
  fixpoint "unary stacking" "int f(int a){return - -a + ~!a;}";
  fixpoint "comma in for"
    "int f(void){int i;int j;for(i=0,j=9;i<j;i++,j--); return i;}";
  fixpoint "casts and sizeof"
    "int f(void){return (int)sizeof(struct s *) + (int)sizeof 4;}";
  fixpoint "pointer soup"
    "long f(long **pp, long i){return *(*pp + i) + (*pp)[i];}";
  fixpoint "keep_live primitive"
    "char *f(char *p){return KEEP_LIVE(p + 1, p);}"

let test_string_escapes () =
  fixpoint "escapes"
    {|char *s = "tab\t nl\n quote\" backslash\\ nul-adjacent\tend";
int main(void) { return s[0]; }|};
  (* escaped content survives a parse/print cycle byte for byte *)
  let p = Parser.parse_program {|char *s = "a\tb\nc\\d\"e";|} in
  match p.Ast.prog_globals with
  | [ Ast.Gvar { Ast.d_init = Some { Ast.edesc = Ast.StrLit s; _ }; _ } ] ->
      Alcotest.(check string) "decoded" "a\tb\nc\\d\"e" s
  | _ -> Alcotest.fail "unexpected structure"

let test_negative_literals () =
  (* -2147483648-style corners *)
  fixpoint "negatives" "long x = -4611686018427387903; int main(void) { return x < 0; }"

let suite =
  [
    Alcotest.test_case "hard precedence cases" `Quick test_hard_cases;
    Alcotest.test_case "string escapes" `Quick test_string_escapes;
    Alcotest.test_case "negative literals" `Quick test_negative_literals;
    QCheck_alcotest.to_alcotest prop_expr_roundtrip;
    QCheck_alcotest.to_alcotest prop_expr_semantics;
    QCheck_alcotest.to_alcotest prop_program_roundtrip;
  ]
