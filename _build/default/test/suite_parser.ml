(* Parser unit tests: structure checks plus pretty-print round-trips. *)

open Csyntax

let parse_ok src =
  try ignore (Parser.parse_program src)
  with Parser.Error (m, loc) ->
    Alcotest.failf "parse error at %s: %s" (Loc.to_string loc) m

let parse_fails src =
  match Parser.parse_program src with
  | exception Parser.Error _ -> ()
  | _ -> Alcotest.failf "expected parse error on %S" src

let expr src = Parser.parse_expr_string src

let expr_str src = Pretty.expr_to_string (expr src)

(* round trip: parse, print, parse, print — the two strings must agree *)
let roundtrip src =
  let p1 = Parser.parse_program src in
  let s1 = Pretty.program_to_string p1 in
  let p2 = Parser.parse_program s1 in
  let s2 = Pretty.program_to_string p2 in
  Alcotest.(check string) "round trip" s1 s2

let test_precedence () =
  let same a b =
    Alcotest.(check string) (a ^ " == " ^ b) (expr_str b) (expr_str a)
  in
  same "a + b * c" "a + (b * c)";
  same "a * b + c" "(a * b) + c";
  same "a - b - c" "(a - b) - c";
  same "a = b = c" "a = (b = c)";
  same "a ? b : c ? d : e" "a ? b : (c ? d : e)";
  same "a || b && c" "a || (b && c)";
  same "a & b == c" "a & (b == c)";
  same "a << b + c" "a << (b + c)";
  same "-a * b" "(-a) * b";
  same "*p++" "*(p++)";
  same "!a && b" "(!a) && b"

let test_postfix_chains () =
  Alcotest.(check string) "chain" "a[1][2].f->g"
    (expr_str "a[1][2].f->g");
  Alcotest.(check string) "call in index" "a[f(x, y)]"
    (expr_str "a[f(x,y)]")

let test_unary () =
  Alcotest.(check string) "addr deref" "&*p" (expr_str "&*p");
  Alcotest.(check string) "pre" "++x" (expr_str "++x");
  Alcotest.(check string) "sizeof type" "sizeof(int *)"
    (expr_str "sizeof(int*)");
  Alcotest.(check string) "sizeof expr" "sizeof x" (expr_str "sizeof x");
  Alcotest.(check string) "cast" "(char *)p" (expr_str "(char *) p")

let test_comma_vs_args () =
  (* the comma operator must be parenthesized in argument lists *)
  match (expr "f((a, b), c)").Ast.edesc with
  | Ast.Call ("f", [ { Ast.edesc = Ast.Comma _; _ }; _ ]) -> ()
  | _ -> Alcotest.fail "comma argument structure"

let test_declarations () =
  parse_ok "int x; char *p; long arr[10]; int m[3][4];";
  parse_ok "int a = 1, b = 2, c;";
  parse_ok "struct s { int x; struct s *next; }; struct s *head;";
  parse_ok "union u { int i; char c[4]; };";
  parse_ok "extern int puts(const char *s);";
  parse_ok "static int counter;";
  parse_ok "unsigned int x; signed char c; unsigned long ul;";
  parse_ok "short s; long int li; short int si;";
  parse_ok "int f(void);";
  parse_ok "int g(int, char *);";
  parse_ok "int h(int a, ...);"

let test_statements () =
  parse_ok
    {|
int main(void) {
  int i;
  for (i = 0; i < 10; i++) { if (i == 5) break; else continue; }
  for (;;) break;
  while (1) break;
  do i--; while (i > 0);
  ;
  { int nested = 1; nested++; }
  return 0;
}
|}

let test_dangling_else () =
  let p =
    Parser.parse_program
      "int f(int a, int b) { if (a) if (b) return 1; else return 2; return 3; }"
  in
  (* the else binds to the inner if *)
  match p.Ast.prog_globals with
  | [ Ast.Gfunc f ] -> (
      match f.Ast.f_body.Ast.sdesc with
      | Ast.Sblock [ { Ast.sdesc = Ast.Sif (_, inner, None); _ }; _ ] -> (
          match inner.Ast.sdesc with
          | Ast.Sif (_, _, Some _) -> ()
          | _ -> Alcotest.fail "else should attach to inner if")
      | _ -> Alcotest.fail "unexpected body shape")
  | _ -> Alcotest.fail "unexpected globals"

let test_adjacent_strings () =
  match (expr {|"foo" "bar"|}).Ast.edesc with
  | Ast.StrLit "foobar" -> ()
  | _ -> Alcotest.fail "adjacent string literals concatenate"

let test_errors () =
  parse_fails "int f( { }";
  parse_fails "int x = ;";
  parse_fails "int main(void) { return 1 }";
  parse_fails "struct { int x; };" (* anonymous structs not in subset *)

let test_roundtrips () =
  roundtrip Workloads.Cord.source;
  roundtrip Workloads.Cfrac.source;
  roundtrip Workloads.Gawk.source;
  roundtrip Workloads.Gs.source

let test_global_arrays_and_inits () =
  parse_ok "int table[64]; char *msg = \"hi\"; int z = 3 * 4 + 1;";
  parse_ok "char buf[];" (* incomplete arrays parse; typecheck rejects *)

let suite =
  [
    Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "postfix chains" `Quick test_postfix_chains;
    Alcotest.test_case "unary" `Quick test_unary;
    Alcotest.test_case "comma vs arguments" `Quick test_comma_vs_args;
    Alcotest.test_case "declarations" `Quick test_declarations;
    Alcotest.test_case "statements" `Quick test_statements;
    Alcotest.test_case "dangling else" `Quick test_dangling_else;
    Alcotest.test_case "adjacent strings" `Quick test_adjacent_strings;
    Alcotest.test_case "parse errors" `Quick test_errors;
    Alcotest.test_case "workload round trips" `Quick test_roundtrips;
    Alcotest.test_case "globals and initializers" `Quick
      test_global_arrays_and_inits;
  ]
