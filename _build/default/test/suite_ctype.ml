(* C type model unit tests: sizes, alignment, decay, layout corners. *)

open Csyntax

let env_with src = (Parser.parse_program src).Ast.prog_env

let test_scalar_sizes () =
  let env = Ctype.Env.create () in
  List.iter
    (fun (ty, sz) ->
      Alcotest.(check int) (Ctype.to_string ty) sz (Ctype.size env ty))
    [
      (Ctype.Char, 1); (Ctype.Short, 2); (Ctype.Int, 4); (Ctype.Long, 8);
      (Ctype.Ptr Ctype.Char, 8); (Ctype.Ptr (Ctype.Ptr Ctype.Int), 8);
      (Ctype.Float, 4); (Ctype.Double, 8);
      (Ctype.Array (Ctype.Int, Some 10), 40);
      (Ctype.Array (Ctype.Array (Ctype.Char, Some 3), Some 4), 12);
    ]

let test_alignment () =
  let env = Ctype.Env.create () in
  List.iter
    (fun (ty, a) ->
      Alcotest.(check int) (Ctype.to_string ty) a (Ctype.align env ty))
    [
      (Ctype.Char, 1); (Ctype.Short, 2); (Ctype.Int, 4); (Ctype.Long, 8);
      (Ctype.Ptr Ctype.Void, 8); (Ctype.Array (Ctype.Short, Some 7), 2);
    ]

let test_incomplete () =
  let env = Ctype.Env.create () in
  (match Ctype.size env (Ctype.Array (Ctype.Int, None)) with
  | exception Ctype.Incomplete _ -> ()
  | _ -> Alcotest.fail "incomplete array must not size");
  match Ctype.size env (Ctype.Struct "nosuch") with
  | exception Ctype.Incomplete _ -> ()
  | _ -> Alcotest.fail "unknown struct must not size"

let test_decay_and_pointee () =
  let arr = Ctype.Array (Ctype.Int, Some 5) in
  Alcotest.(check bool) "array decays" true
    (Ctype.equal (Ctype.decay arr) (Ctype.Ptr Ctype.Int));
  Alcotest.(check bool) "scalar unchanged" true
    (Ctype.equal (Ctype.decay Ctype.Long) Ctype.Long);
  Alcotest.(check bool) "pointee of ptr" true
    (Ctype.pointee (Ctype.Ptr Ctype.Char) = Some Ctype.Char);
  Alcotest.(check bool) "pointee of array" true
    (Ctype.pointee arr = Some Ctype.Int);
  Alcotest.(check bool) "pointee of int" true (Ctype.pointee Ctype.Int = None)

let test_predicates () =
  Alcotest.(check bool) "ptr is pointer" true (Ctype.is_pointer (Ctype.Ptr Ctype.Void));
  Alcotest.(check bool) "array is not pointer" false
    (Ctype.is_pointer (Ctype.Array (Ctype.Int, Some 2)));
  Alcotest.(check bool) "char is integer" true (Ctype.is_integer Ctype.Char);
  Alcotest.(check bool) "double is arith not integer" true
    (Ctype.is_arith Ctype.Double && not (Ctype.is_integer Ctype.Double));
  Alcotest.(check bool) "struct is aggregate" true
    (Ctype.is_aggregate (Ctype.Struct "s"));
  Alcotest.(check bool) "ptr is scalar" true (Ctype.is_scalar (Ctype.Ptr Ctype.Int))

let test_nested_struct_layout () =
  let env =
    env_with
      {|struct inner { char c; long l; };
struct outer { int i; struct inner in1; char tail; };|}
  in
  match Ctype.Env.find env "outer" with
  | None -> Alcotest.fail "no layout"
  | Some lay ->
      let off name =
        (List.find (fun f -> f.Ctype.fld_name = name) lay.Ctype.lay_fields)
          .Ctype.fld_offset
      in
      Alcotest.(check int) "i at 0" 0 (off "i");
      (* inner has align 8 *)
      Alcotest.(check int) "in1 at 8" 8 (off "in1");
      Alcotest.(check int) "tail at 24" 24 (off "tail");
      Alcotest.(check int) "size rounds to align" 32 lay.Ctype.lay_size

let test_empty_struct_min_size () =
  (* degenerate but accepted: a struct with one char has size 1 *)
  let env = env_with "struct one { char c; };" in
  match Ctype.Env.find env "one" with
  | Some lay -> Alcotest.(check int) "size 1" 1 lay.Ctype.lay_size
  | None -> Alcotest.fail "no layout"

let test_equal () =
  let a = Ctype.Ptr (Ctype.Array (Ctype.Int, Some 3)) in
  let b = Ctype.Ptr (Ctype.Array (Ctype.Int, Some 3)) in
  let c = Ctype.Ptr (Ctype.Array (Ctype.Int, Some 4)) in
  Alcotest.(check bool) "structural equality" true (Ctype.equal a b);
  Alcotest.(check bool) "length matters" false (Ctype.equal a c);
  Alcotest.(check bool) "tags compare" true
    (Ctype.equal (Ctype.Struct "s") (Ctype.Struct "s"));
  Alcotest.(check bool) "struct vs union differ" false
    (Ctype.equal (Ctype.Struct "s") (Ctype.Union "s"))

let test_to_string_roundtrippable () =
  (* the printed forms appear in diagnostics; sanity-check a few *)
  List.iter
    (fun (ty, str) ->
      Alcotest.(check string) str str (Ctype.to_string ty))
    [
      (Ctype.Ptr Ctype.Char, "char *");
      (Ctype.Ptr (Ctype.Ptr Ctype.Int), "int * *");
      (Ctype.Struct "node", "struct node");
      (Ctype.Array (Ctype.Long, Some 4), "long [4]");
    ]

let suite =
  [
    Alcotest.test_case "scalar sizes" `Quick test_scalar_sizes;
    Alcotest.test_case "alignment" `Quick test_alignment;
    Alcotest.test_case "incomplete types" `Quick test_incomplete;
    Alcotest.test_case "decay and pointee" `Quick test_decay_and_pointee;
    Alcotest.test_case "classification predicates" `Quick test_predicates;
    Alcotest.test_case "nested struct layout" `Quick test_nested_struct_layout;
    Alcotest.test_case "minimum struct size" `Quick test_empty_struct_min_size;
    Alcotest.test_case "structural equality" `Quick test_equal;
    Alcotest.test_case "printing" `Quick test_to_string_roundtrippable;
  ]
