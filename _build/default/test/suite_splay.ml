(* Splay-tree object registry tests (the Jones & Kelly comparator). *)

open Gcheap

let test_basic () =
  let t = Splay.create () in
  Splay.insert t ~base:100 ~size:50;
  Splay.insert t ~base:300 ~size:10;
  Splay.insert t ~base:200 ~size:20;
  Alcotest.(check int) "count" 3 (Splay.size t);
  Alcotest.(check (option (pair int int))) "interior hit" (Some (100, 50))
    (Splay.find t 120);
  Alcotest.(check (option (pair int int))) "base hit" (Some (300, 10))
    (Splay.find t 300);
  Alcotest.(check (option (pair int int))) "gap misses" None (Splay.find t 250);
  Alcotest.(check (option (pair int int))) "one past end misses" None
    (Splay.find t 150);
  Alcotest.(check (option (pair int int))) "before all" None (Splay.find t 5)

let test_remove () =
  let t = Splay.create () in
  List.iter (fun b -> Splay.insert t ~base:b ~size:8) [ 0; 16; 32; 48; 64 ];
  Alcotest.(check bool) "removes" true (Splay.remove t 35);
  Alcotest.(check bool) "gone" true (Splay.find t 35 = None);
  Alcotest.(check bool) "neighbours intact" true
    (Splay.find t 16 = Some (16, 8) && Splay.find t 48 = Some (48, 8));
  Alcotest.(check bool) "remove of miss is false" false (Splay.remove t 35);
  Alcotest.(check int) "count" 4 (Splay.size t)

let test_same_obj () =
  let t = Splay.create () in
  Splay.insert t ~base:1000 ~size:40;
  Alcotest.(check bool) "within" true (Splay.same_obj t 1020 1000);
  Alcotest.(check bool) "one past end allowed" true
    (Splay.same_obj t 1040 1000);
  Alcotest.(check bool) "escape" false (Splay.same_obj t 2000 1000);
  Alcotest.(check bool) "one before" false (Splay.same_obj t 999 1005);
  Alcotest.(check bool) "unregistered passes" true (Splay.same_obj t 5 7)

(* differential: the splay registry agrees with the collector's page map
   on random allocation patterns *)
let prop_matches_page_map =
  QCheck.Test.make ~count:50 ~name:"splay registry matches GC_base"
    QCheck.(pair (list_of_size Gen.(int_range 1 80) (int_range 1 300))
              (list_of_size Gen.(int_range 1 200) (int_range 0 40000)))
    (fun (sizes, probes) ->
      let h = Heap.create () in
      let t = Splay.create () in
      List.iter
        (fun n ->
          let a = Heap.alloc h n in
          match Heap.extent_of h a with
          | Some (base, size) -> Splay.insert t ~base ~size
          | None -> ())
        sizes;
      List.for_all
        (fun probe ->
          let addr = 0x1000 + probe in
          let from_map = Heap.base_of h addr in
          let from_splay = Option.map fst (Splay.find t addr) in
          from_map = from_splay)
        probes)

(* sequential scans are the splay tree's worst friend; make sure deep
   zig-zigs behave *)
let test_sequential_stress () =
  let t = Splay.create () in
  for i = 0 to 9999 do
    Splay.insert t ~base:(i * 16) ~size:12
  done;
  for i = 0 to 9999 do
    match Splay.find t ((i * 16) + 5) with
    | Some (b, 12) when b = i * 16 -> ()
    | _ -> Alcotest.failf "lost object %d" i
  done;
  for i = 0 to 9999 do
    if i mod 2 = 0 then ignore (Splay.remove t (i * 16))
  done;
  Alcotest.(check int) "half removed" 5000 (Splay.size t);
  Alcotest.(check bool) "odd survive" true (Splay.find t (17 * 16) <> None);
  Alcotest.(check bool) "even gone" true (Splay.find t (16 * 16) = None)

let suite =
  [
    Alcotest.test_case "basic lookups" `Quick test_basic;
    Alcotest.test_case "removal" `Quick test_remove;
    Alcotest.test_case "same_obj" `Quick test_same_obj;
    Alcotest.test_case "sequential stress" `Quick test_sequential_stress;
    QCheck_alcotest.to_alcotest prop_matches_page_map;
  ]
