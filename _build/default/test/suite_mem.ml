(* Memory arena unit tests: endianness, sign extension, bounds, strings. *)

open Gcheap

let fresh_with_page () =
  let m = Mem.create () in
  let a = Mem.grow_pages m 1 in
  (m, a)

let test_widths_roundtrip () =
  let m, a = fresh_with_page () in
  List.iter
    (fun (w, v) ->
      Mem.store m ~width:w a v;
      Alcotest.(check int) (Printf.sprintf "width %d" w) v (Mem.load m ~width:w a))
    [ (1, 42); (1, -1); (2, -12345); (4, 1 lsl 30); (8, 1 lsl 55); (8, -(1 lsl 55)) ]

let test_sign_extension () =
  let m, a = fresh_with_page () in
  Mem.store m ~width:1 a 0xFF;
  Alcotest.(check int) "byte 0xFF loads as -1" (-1) (Mem.load m ~width:1 a);
  Mem.store m ~width:2 a 0x8000;
  Alcotest.(check int) "short 0x8000 loads as -32768" (-32768)
    (Mem.load m ~width:2 a);
  Mem.store m ~width:4 a 0x80000000;
  Alcotest.(check int) "int 0x80000000 negative" (-2147483648)
    (Mem.load m ~width:4 a)

let test_little_endian () =
  let m, a = fresh_with_page () in
  Mem.store m ~width:4 a 0x11223344;
  Alcotest.(check int) "low byte first" 0x44 (Mem.load m ~width:1 a);
  Alcotest.(check int) "high byte last" 0x11 (Mem.load m ~width:1 (a + 3))

let test_truncation () =
  let m, a = fresh_with_page () in
  Mem.store m ~width:1 a 300;
  Alcotest.(check int) "300 truncates to 44" 44 (Mem.load m ~width:1 a)

let test_bounds () =
  let m, a = fresh_with_page () in
  let expect_fault f =
    match f () with
    | exception Mem.Fault _ -> ()
    | _ -> Alcotest.fail "expected Mem.Fault"
  in
  expect_fault (fun () -> Mem.load m ~width:8 0);
  expect_fault (fun () -> Mem.load m ~width:8 (Mem.limit m - 4));
  expect_fault (fun () -> Mem.store m ~width:1 (-1) 0);
  (* the last valid byte is fine *)
  Mem.store m ~width:1 (Mem.limit m - 1) 7;
  Alcotest.(check int) "last byte" 7 (Mem.load m ~width:1 (Mem.limit m - 1));
  ignore a

let test_growth () =
  let m = Mem.create () in
  let first = Mem.grow_pages m 1 in
  let big = Mem.grow_pages m 1000 in
  Alcotest.(check bool) "disjoint" true (big >= first + Mem.page_size);
  Mem.store_word m (big + (999 * Mem.page_size)) 99;
  Alcotest.(check int) "far page usable" 99
    (Mem.load_word m (big + (999 * Mem.page_size)))

let test_fill_blit () =
  let m, a = fresh_with_page () in
  Mem.fill m a 16 'x';
  Alcotest.(check int) "filled" (Char.code 'x') (Mem.load m ~width:1 (a + 15));
  Mem.blit m ~src:a ~dst:(a + 32) 16;
  Alcotest.(check int) "blitted" (Char.code 'x')
    (Mem.load m ~width:1 (a + 47))

let test_cstrings () =
  let m, a = fresh_with_page () in
  Mem.store_cstring m a "hello";
  Alcotest.(check string) "round trip" "hello" (Mem.load_cstring m a);
  Alcotest.(check int) "terminator" 0 (Mem.load m ~width:1 (a + 5));
  Mem.store_cstring m a "";
  Alcotest.(check string) "empty" "" (Mem.load_cstring m a)

let prop_word_roundtrip =
  QCheck.Test.make ~count:200 ~name:"word store/load round trip"
    QCheck.(int_range (-(1 lsl 60)) (1 lsl 60))
    (fun v ->
      let m, a = fresh_with_page () in
      Mem.store_word m a v;
      Mem.load_word m a = v)

let suite =
  [
    Alcotest.test_case "width round trips" `Quick test_widths_roundtrip;
    Alcotest.test_case "sign extension" `Quick test_sign_extension;
    Alcotest.test_case "little endian" `Quick test_little_endian;
    Alcotest.test_case "narrow truncation" `Quick test_truncation;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "growth" `Quick test_growth;
    Alcotest.test_case "fill and blit" `Quick test_fill_blit;
    Alcotest.test_case "C strings" `Quick test_cstrings;
    QCheck_alcotest.to_alcotest prop_word_roundtrip;
  ]
