(* Optimizer pass tests: each pass in isolation on hand-built IR, plus the
   pointer-disguising pass's interaction with KEEP_LIVE barriers. *)

open Ir.Instr

(* build a one-block function *)
let mk_func ?(params = []) ?(nreg = 32) instrs term =
  {
    fn_name = "t";
    fn_params = params;
    fn_ret_void = false;
    fn_blocks = [ { b_label = 0; b_instrs = instrs; b_term = term } ];
    fn_nreg = nreg;
    fn_frame = 0;
  }

let instrs_of f = (List.hd f.fn_blocks).b_instrs

let count_kind pred f =
  List.length (List.filter pred (instrs_of f))

(* --- copy propagation -------------------------------------------------- *)

let test_copyprop_basic () =
  let f =
    mk_func
      [ Mov (1, Imm 5); Mov (2, Reg 1); Bin (Add, 3, Reg 2, Reg 1) ]
      (Ret (Some (Reg 3)))
  in
  Opt.Copyprop.run f;
  match instrs_of f with
  | [ Mov (1, Imm 5); Mov (2, Imm 5); Bin (Add, 3, Imm 5, Imm 5) ] -> ()
  | is ->
      Alcotest.failf "unexpected: %s"
        (String.concat "; " (List.map (Format.asprintf "%a" pp_instr) is))

let test_copyprop_invalidation () =
  (* redefinition of the source kills the mapping *)
  let f =
    mk_func
      [ Mov (2, Reg 1); Mov (1, Imm 9); Bin (Add, 3, Reg 2, Imm 0) ]
      (Ret (Some (Reg 3)))
  in
  Opt.Copyprop.run f;
  (match instrs_of f with
  | [ _; _; Bin (Add, 3, Reg 2, Imm 0) ] -> ()
  | _ -> Alcotest.fail "stale copy propagated after source redefinition")

let test_copyprop_opaque_blocked () =
  (* Opaque results are not propagated: the value must stay stored *)
  let f =
    mk_func
      [ Opaque (2, Reg 1); Bin (Add, 3, Reg 2, Imm 1) ]
      (Ret (Some (Reg 3)))
  in
  Opt.Copyprop.run f;
  match instrs_of f with
  | [ Opaque (2, Reg 1); Bin (Add, 3, Reg 2, Imm 1) ] -> ()
  | _ -> Alcotest.fail "opaque value was propagated"

(* --- constant folding --------------------------------------------------- *)

let test_constfold () =
  let f =
    mk_func
      [
        Bin (Add, 1, Imm 2, Imm 3);
        Bin (Mul, 2, Reg 1, Imm 1);
        Bin (Add, 3, Reg 2, Imm 0);
        Rel (Lt, 4, Imm 1, Imm 2);
        Bin (Div, 5, Imm 7, Imm 0);
      ]
      (Ret (Some (Reg 4)))
  in
  Opt.Constfold.run f;
  match instrs_of f with
  | [ Mov (1, Imm 5); Mov (2, Reg 1); Mov (3, Reg 2); Mov (4, Imm 1);
      Bin (Div, 5, Imm 7, Imm 0) (* division by zero is left alone *) ] ->
      ()
  | is ->
      Alcotest.failf "unexpected: %s"
        (String.concat "; " (List.map (Format.asprintf "%a" pp_instr) is))

let test_constfold_branches () =
  let f = mk_func [] (Br (Imm 1, 1, 2)) in
  Opt.Constfold.run f;
  (match (List.hd f.fn_blocks).b_term with
  | Jmp 1 -> ()
  | _ -> Alcotest.fail "true branch not folded");
  let g = mk_func [] (Br (Imm 0, 1, 2)) in
  Opt.Constfold.run g;
  match (List.hd g.fn_blocks).b_term with
  | Jmp 2 -> ()
  | _ -> Alcotest.fail "false branch not folded"

(* --- CSE ----------------------------------------------------------------- *)

let test_cse () =
  let f =
    mk_func
      [
        Bin (Add, 2, Reg 1, Imm 4);
        Bin (Add, 3, Reg 1, Imm 4);
        Bin (Mul, 4, Reg 2, Reg 3);
      ]
      (Ret (Some (Reg 4)))
  in
  Opt.Cse.run f;
  match instrs_of f with
  | [ Bin (Add, 2, Reg 1, Imm 4); Mov (3, Reg 2); Bin (Mul, 4, Reg 2, Reg 3) ]
    ->
      ()
  | is ->
      Alcotest.failf "unexpected: %s"
        (String.concat "; " (List.map (Format.asprintf "%a" pp_instr) is))

let test_cse_killed_by_redef () =
  let f =
    mk_func
      [
        Bin (Add, 2, Reg 1, Imm 4);
        Mov (1, Imm 0);
        Bin (Add, 3, Reg 1, Imm 4);
      ]
      (Ret (Some (Reg 3)))
  in
  Opt.Cse.run f;
  match instrs_of f with
  | [ _; _; Bin (Add, 3, Reg 1, Imm 4) ] -> ()
  | _ -> Alcotest.fail "CSE across operand redefinition"

(* --- DCE ------------------------------------------------------------------ *)

let test_dce () =
  let f =
    mk_func
      [
        Bin (Add, 2, Reg 1, Imm 1);  (* dead *)
        Bin (Add, 3, Reg 1, Imm 2);  (* live via ret *)
        Opaque (4, Reg 1);           (* dead opaque: removable *)
        KeepLive (Reg 1);            (* side effect: stays *)
        Store (W8, Reg 3, Reg 1, Imm 0) (* side effect: stays *);
      ]
      (Ret (Some (Reg 3)))
  in
  Opt.Dce.run f;
  match instrs_of f with
  | [ Bin (Add, 3, Reg 1, Imm 2); KeepLive (Reg 1); Store _ ] -> ()
  | is ->
      Alcotest.failf "unexpected: %s"
        (String.concat "; " (List.map (Format.asprintf "%a" pp_instr) is))

let test_prune_unreachable () =
  let f =
    {
      fn_name = "t";
      fn_params = [];
      fn_ret_void = false;
      fn_blocks =
        [
          { b_label = 0; b_instrs = []; b_term = Jmp 2 };
          { b_label = 1; b_instrs = []; b_term = Ret None };  (* dead *)
          { b_label = 2; b_instrs = []; b_term = Ret None };
        ];
      fn_nreg = 8;
      fn_frame = 0;
    }
  in
  Opt.Dce.prune_unreachable f;
  Alcotest.(check (list int)) "labels" [ 0; 2 ]
    (List.map (fun b -> b.b_label) f.fn_blocks)

(* --- collapse --------------------------------------------------------------- *)

let test_collapse () =
  let f =
    mk_func
      [ Bin (Add, 5, Reg 1, Imm 1); Mov (2, Reg 5) ]
      (Ret (Some (Reg 2)))
  in
  Opt.Collapse.run f;
  match instrs_of f with
  | [ Bin (Add, 2, Reg 1, Imm 1) ] -> ()
  | is ->
      Alcotest.failf "unexpected: %s"
        (String.concat "; " (List.map (Format.asprintf "%a" pp_instr) is))

let test_collapse_blocked_by_other_use () =
  let f =
    mk_func
      [ Bin (Add, 5, Reg 1, Imm 1); Mov (2, Reg 5); Bin (Add, 3, Reg 5, Imm 2) ]
      (Ret (Some (Reg 3)))
  in
  Opt.Collapse.run f;
  Alcotest.(check int) "nothing removed" 3 (List.length (instrs_of f))

(* --- ptr_strength: the disguising pass ------------------------------------- *)

let test_disguise_displacement () =
  (* t := i - 1000; ld d, [p + t]   with p, t dead after
     ==> p := p - 1000; ld d, [p + i] *)
  let f =
    mk_func
      [ Bin (Sub, 3, Reg 2, Imm 1000); Load (W1, 4, Reg 1, Reg 3) ]
      (Ret (Some (Reg 4)))
  in
  Opt.Ptr_strength.run f;
  match instrs_of f with
  | [ Bin (Sub, 1, Reg 1, Imm 1000); Load (W1, 4, Reg 1, Reg 2) ] -> ()
  | is ->
      Alcotest.failf "not disguised: %s"
        (String.concat "; " (List.map (Format.asprintf "%a" pp_instr) is))

let test_disguise_blocked_by_keep () =
  (* same shape, but a KeepLive pins p: no rewrite *)
  let f =
    mk_func
      [
        Bin (Sub, 3, Reg 2, Imm 1000);
        KeepLive (Reg 1);
        Load (W1, 4, Reg 1, Reg 3);
      ]
      (Ret (Some (Reg 4)))
  in
  Opt.Ptr_strength.run f;
  (* the integer temporary may be renamed, but the kept base r1 must not be
     overwritten and must still be the load's base *)
  match instrs_of f with
  | [ Bin (Sub, d, Reg 2, Imm 1000); KeepLive (Reg 1); Load (W1, 4, Reg 1, Reg d') ]
    when d <> 1 && d' = d ->
      ()
  | _ -> Alcotest.fail "disguised despite KEEP_LIVE"

let test_disguise_blocked_by_liveness () =
  (* p used after the load: no rewrite *)
  let f =
    mk_func
      [
        Bin (Sub, 3, Reg 2, Imm 1000);
        Load (W1, 4, Reg 1, Reg 3);
        Bin (Add, 5, Reg 1, Reg 4);
      ]
      (Ret (Some (Reg 5)))
  in
  Opt.Ptr_strength.run f;
  match instrs_of f with
  | [ Bin (Sub, d, Reg 2, Imm 1000); Load (W1, 4, Reg 1, Reg d'); _ ]
    when d <> 1 && d' = d ->
      ()
  | _ -> Alcotest.fail "disguised despite later use of p"

let test_disguise_reuse_base () =
  (* q := p + 8 with p dead: q renamed to p *)
  let f =
    mk_func
      [ Bin (Add, 2, Reg 1, Imm 8); Load (W8, 3, Reg 2, Imm 0) ]
      (Ret (Some (Reg 3)))
  in
  Opt.Ptr_strength.run f;
  match instrs_of f with
  | [ Bin (Add, 1, Reg 1, Imm 8); Load (W8, 3, Reg 1, Imm 0) ] -> ()
  | is ->
      Alcotest.failf "base not reused: %s"
        (String.concat "; " (List.map (Format.asprintf "%a" pp_instr) is))

(* --- semantic preservation through the whole pipeline ----------------------- *)

let test_optimizer_preserves_semantics () =
  List.iter
    (fun w ->
      let src = w.Workloads.Registry.w_source in
      let unopt = Util.run ~optimize:false src in
      let opt = Util.run ~optimize:true src in
      Alcotest.(check string) (w.Workloads.Registry.w_name ^ " -O == -O0")
        unopt opt)
    [ Workloads.Registry.cordtest; Workloads.Registry.gawk; Workloads.Registry.gs ]

let test_optimizer_shrinks_code () =
  List.iter
    (fun w ->
      let src = w.Workloads.Registry.w_source in
      let size optimize =
        Ir.Instr.program_size (Util.compile ~optimize src)
      in
      Alcotest.(check bool)
        (w.Workloads.Registry.w_name ^ " optimized smaller")
        true
        (size true < size false))
    Workloads.Registry.paper_suite

let suite =
  [
    Alcotest.test_case "copyprop basic" `Quick test_copyprop_basic;
    Alcotest.test_case "copyprop invalidation" `Quick
      test_copyprop_invalidation;
    Alcotest.test_case "copyprop blocked by Opaque" `Quick
      test_copyprop_opaque_blocked;
    Alcotest.test_case "constant folding" `Quick test_constfold;
    Alcotest.test_case "branch folding" `Quick test_constfold_branches;
    Alcotest.test_case "cse" `Quick test_cse;
    Alcotest.test_case "cse invalidation" `Quick test_cse_killed_by_redef;
    Alcotest.test_case "dce" `Quick test_dce;
    Alcotest.test_case "unreachable blocks" `Quick test_prune_unreachable;
    Alcotest.test_case "collapse" `Quick test_collapse;
    Alcotest.test_case "collapse blocked" `Quick
      test_collapse_blocked_by_other_use;
    Alcotest.test_case "disguise: displacement fold" `Quick
      test_disguise_displacement;
    Alcotest.test_case "disguise: blocked by KEEP_LIVE" `Quick
      test_disguise_blocked_by_keep;
    Alcotest.test_case "disguise: blocked by liveness" `Quick
      test_disguise_blocked_by_liveness;
    Alcotest.test_case "disguise: base register reuse" `Quick
      test_disguise_reuse_base;
    Alcotest.test_case "semantics preserved" `Quick
      test_optimizer_preserves_semantics;
    Alcotest.test_case "optimizer shrinks code" `Quick
      test_optimizer_shrinks_code;
  ]
