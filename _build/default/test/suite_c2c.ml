(* The C-to-C property: the preprocessor's output is real source code.

   The paper's tool is a source-to-source transformer whose output is fed
   to an unmodified compiler.  These tests print the annotated program,
   re-parse it, compile it with NO further annotation, and require the
   same behaviour — for both output modes, plus idempotence guards. *)

open Csyntax
open Gcsafe

let annotate mode src =
  let p = Parser.parse_program src in
  (Annotate.run ~opts:(Mode.default mode) p).Annotate.program

let compile_and_run program =
  ignore (Typecheck.check_program program);
  let irp = Ir.Compile.compile_program ~mode:Ir.Compile.opt_mode program in
  ignore (Opt.Pipeline.run_program Opt.Pipeline.default irp);
  (Machine.Vm.run irp).Machine.Vm.r_output

let baseline src =
  let p, _ = Typecheck.check_source src in
  compile_and_run p

let roundtrip_config mode name src =
  let annotated = annotate mode src in
  let printed = Pretty.program_to_string annotated in
  let reparsed = Parser.parse_program printed in
  Alcotest.(check string)
    (Printf.sprintf "%s [%s] printed output behaves identically" name
       (Mode.to_string mode))
    (baseline src) (compile_and_run reparsed)

let test_safe_output_is_source () =
  List.iter
    (fun w ->
      roundtrip_config Mode.Safe w.Workloads.Registry.w_name
        w.Workloads.Registry.w_source)
    [ Workloads.Registry.cordtest; Workloads.Registry.gawk; Workloads.Registry.gs ]

let test_checked_output_is_source () =
  (* checked output is plain ANSI C (GC_* are ordinary functions): "It
     should be possible to make the output in source-code-checking mode
     usable with any ANSI C compiler." *)
  List.iter
    (fun w ->
      roundtrip_config Mode.Checked w.Workloads.Registry.w_name
        w.Workloads.Registry.w_source)
    [ Workloads.Registry.cfrac; Workloads.Registry.gs ]

let test_printed_safe_output_reparses_structurally () =
  (* KEEP_LIVE(e, b) survives a print/parse cycle as the primitive *)
  let src = "char f(char *x) { return x[1]; } int main(void) { return 0; }" in
  let printed = Pretty.program_to_string (annotate Mode.Safe src) in
  let reparsed = Parser.parse_program printed in
  let count = ref 0 in
  List.iter
    (function
      | Ast.Gfunc f ->
          ignore
            (Ast.fold_stmt_exprs
               (fun () e ->
                 match e.Ast.edesc with
                 | Ast.KeepLive (_, Some _) -> incr count
                 | _ -> ())
               () f.Ast.f_body)
      | _ -> ())
    reparsed.Ast.prog_globals;
  Alcotest.(check int) "one KEEP_LIVE node" 1 !count

let test_double_annotation_rejected () =
  (* feeding annotated ASTs back into the annotator is a usage error the
     implementation must catch, not silently double-wrap *)
  let src = "char f(char *x) { return x[1]; } int main(void) { return 0; }" in
  let once = annotate Mode.Safe src in
  match Annotate.run ~opts:(Mode.default Mode.Safe) once with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of already-annotated input"

let test_annotated_source_through_cli_shape () =
  (* the annotated text contains no unprintable artifacts: it lexes
     cleanly and has balanced braces *)
  let printed =
    Pretty.program_to_string
      (annotate Mode.Safe Workloads.Registry.cordtest.Workloads.Registry.w_source)
  in
  let toks = Lexer.tokenize printed in
  let depth = ref 0 in
  Array.iter
    (fun t ->
      match t.Lexer.t with
      | Token.LBRACE -> incr depth
      | Token.RBRACE -> decr depth
      | _ -> ())
    toks;
  Alcotest.(check int) "balanced braces" 0 !depth

let suite =
  [
    Alcotest.test_case "safe output is compilable source" `Slow
      test_safe_output_is_source;
    Alcotest.test_case "checked output is plain ANSI C" `Slow
      test_checked_output_is_source;
    Alcotest.test_case "KEEP_LIVE survives print/parse" `Quick
      test_printed_safe_output_reparses_structurally;
    Alcotest.test_case "double annotation rejected" `Quick
      test_double_annotation_rejected;
    Alcotest.test_case "annotated text lexes cleanly" `Quick
      test_annotated_source_through_cli_shape;
  ]
