(** Type checker: annotates every expression with its C type.

    This is the "partial type-checking" the paper's preprocessor performs:
    enough to know which expressions are pointer-valued, what the pointee
    sizes are, and which struct fields have array type (the paper notes that
    [e->x] involves no dereference when [x] has array type).  It is also a
    real checker: ill-typed programs are rejected with located errors. *)

exception Error of string * Loc.t

let err loc fmt = Format.kasprintf (fun s -> raise (Error (s, loc))) fmt

type fn_sig = {
  fs_ret : Ctype.t;
  fs_params : Ctype.t list;
  fs_varargs : bool;
}

type env = {
  tenv : Ctype.Env.t;
  vars : Ctype.t Symtab.t;
  funcs : (string, fn_sig) Hashtbl.t;
  mutable cur_ret : Ctype.t;
}

(* Integer ranks for the usual arithmetic conversions (simplified: all
   signed). *)
let rank = function
  | Ctype.Char -> 1
  | Ctype.Short -> 2
  | Ctype.Int -> 3
  | Ctype.Long -> 4
  | Ctype.Float -> 5
  | Ctype.Double -> 6
  | _ -> 0

let arith_result a b =
  let r = max (rank a) (rank b) in
  if r >= 6 then Ctype.Double
  else if r = 5 then Ctype.Float
  else if r = 4 then Ctype.Long
  else Ctype.Int (* integer promotion: everything below int promotes *)

(* Can a value of type [src] be assigned to an lvalue of type [dst]?  We are
   deliberately permissive about pointer/pointer mixes (C programs of the
   Zorn-suite era cast freely); the source checker flags the dangerous
   ones separately. *)
let assignable dst src =
  match (dst, src) with
  | _, _ when Ctype.equal dst src -> true
  | t, s when Ctype.is_arith t && Ctype.is_arith s -> true
  | Ctype.Ptr _, Ctype.Ptr _ -> true
  | Ctype.Ptr _, t when Ctype.is_integer t -> true (* e.g. p = 0 *)
  | t, Ctype.Ptr _ when Ctype.is_integer t -> true
  | _ -> false

let rec is_lvalue (e : Ast.expr) =
  match e.edesc with
  | Ast.Var _ | Ast.Deref _ | Ast.Index _ | Ast.Arrow _ -> true
  | Ast.Field (b, _) -> is_lvalue b
  | Ast.Cast (_, b) -> is_lvalue b (* gcc extension, used by checked code *)
  | _ -> false

let rec check_expr env (e : Ast.expr) : Ctype.t =
  let ty = infer env e in
  e.ety <- Some ty;
  ty

and rvalue env e = Ctype.decay (check_expr env e)

and infer env (e : Ast.expr) : Ctype.t =
  let loc = e.eloc in
  match e.edesc with
  | Ast.IntLit _ -> Ctype.Int
  | Ast.CharLit _ -> Ctype.Char
  | Ast.FloatLit _ -> Ctype.Double
  | Ast.StrLit s -> Ctype.Array (Ctype.Char, Some (String.length s + 1))
  | Ast.Var v -> (
      match Symtab.find env.vars v with
      | Some ty -> ty
      | None -> err loc "undeclared variable '%s'" v)
  | Ast.Unop (Ast.Not, a) ->
      let t = rvalue env a in
      if not (Ctype.is_scalar t) then err loc "! applied to non-scalar";
      Ctype.Int
  | Ast.Unop (Ast.Neg, a) ->
      let t = rvalue env a in
      if not (Ctype.is_arith t) then err loc "- applied to non-arithmetic";
      arith_result t Ctype.Int
  | Ast.Unop (Ast.BitNot, a) ->
      let t = rvalue env a in
      if not (Ctype.is_integer t) then err loc "~ applied to non-integer";
      arith_result t Ctype.Int
  | Ast.Binop (op, a, b) -> binop env loc op a b
  | Ast.Assign (l, r) ->
      let lt = check_expr env l in
      if not (is_lvalue l) then err loc "assignment to non-lvalue";
      let rt = rvalue env r in
      let lt' = Ctype.decay lt in
      if Ctype.is_aggregate lt then begin
        (* whole-struct assignment *)
        if not (Ctype.equal lt (Ast.typ r)) then
          err loc "struct assignment type mismatch"
      end
      else if not (assignable lt' rt) then
        err loc "cannot assign %s to %s" (Ctype.to_string rt)
          (Ctype.to_string lt');
      lt'
  | Ast.OpAssign (op, l, r) ->
      let lt = check_expr env l in
      if not (is_lvalue l) then err loc "assignment to non-lvalue";
      let rt = rvalue env r in
      let lt' = Ctype.decay lt in
      (match (op, lt', rt) with
      | (Ast.Add | Ast.Sub), Ctype.Ptr _, t when Ctype.is_integer t -> ()
      | _, t, u when Ctype.is_arith t && Ctype.is_arith u -> ()
      | _ ->
          err loc "invalid operands to %s= (%s, %s)" (Ast.binop_to_string op)
            (Ctype.to_string lt') (Ctype.to_string rt));
      lt'
  | Ast.Incr (_, a) ->
      let t = check_expr env a in
      if not (is_lvalue a) then err loc "++/-- on non-lvalue";
      let t' = Ctype.decay t in
      if not (Ctype.is_scalar t') then err loc "++/-- on non-scalar";
      t'
  | Ast.Deref a -> (
      let t = rvalue env a in
      match t with
      | Ctype.Ptr Ctype.Void -> err loc "dereference of void *"
      | Ctype.Ptr inner -> inner
      | _ -> err loc "dereference of non-pointer (%s)" (Ctype.to_string t))
  | Ast.AddrOf a -> (
      let t = check_expr env a in
      match a.edesc with
      | Ast.Var _ | Ast.Deref _ | Ast.Index _ | Ast.Field _ | Ast.Arrow _ ->
          Ctype.Ptr t
      | _ -> err loc "& applied to non-lvalue")
  | Ast.Index (a, i) -> (
      let at = rvalue env a and it = rvalue env i in
      match (at, it) with
      | Ctype.Ptr inner, t when Ctype.is_integer t -> inner
      | t, Ctype.Ptr inner when Ctype.is_integer t -> inner (* i[a] *)
      | _ ->
          err loc "invalid subscript (%s)[%s]" (Ctype.to_string at)
            (Ctype.to_string it))
  | Ast.Field (a, f) -> (
      let at = check_expr env a in
      match Ctype.find_field env.tenv at f with
      | Some fld -> fld.Ctype.fld_ty
      | None ->
          err loc "no field '%s' in %s" f (Ctype.to_string at))
  | Ast.Arrow (a, f) -> (
      let at = rvalue env a in
      match at with
      | Ctype.Ptr inner -> (
          match Ctype.find_field env.tenv inner f with
          | Some fld -> fld.Ctype.fld_ty
          | None -> err loc "no field '%s' in %s" f (Ctype.to_string inner))
      | _ -> err loc "-> applied to non-pointer (%s)" (Ctype.to_string at))
  | Ast.Call (fname, args) -> (
      let check_args params varargs ret =
        let nparams = List.length params and nargs = List.length args in
        if nargs < nparams || ((not varargs) && nargs > nparams) then
          err loc "wrong number of arguments to %s (%d expected, %d given)"
            fname nparams nargs;
        List.iteri
          (fun i arg ->
            let at = rvalue env arg in
            match List.nth_opt params i with
            | Some pt when not (assignable pt at) ->
                err loc "argument %d of %s: cannot pass %s as %s" (i + 1)
                  fname (Ctype.to_string at) (Ctype.to_string pt)
            | Some _ | None -> ())
          args;
        ret
      in
      match Hashtbl.find_opt env.funcs fname with
      | Some fs -> check_args fs.fs_params fs.fs_varargs fs.fs_ret
      | None -> (
          match Builtins.find fname with
          | Some b -> check_args b.Builtins.bi_params b.Builtins.bi_varargs b.Builtins.bi_ret
          | None -> err loc "call to undeclared function '%s'" fname))
  | Ast.Cast (ty, a) ->
      ignore (rvalue env a);
      ty
  | Ast.Cond (c, a, b) ->
      let ct = rvalue env c in
      if not (Ctype.is_scalar ct) then err loc "non-scalar condition";
      let at = rvalue env a and bt = rvalue env b in
      if Ctype.equal at bt then at
      else if Ctype.is_arith at && Ctype.is_arith bt then arith_result at bt
      else if Ctype.is_pointer at && Ctype.is_pointer bt then at
      else if Ctype.is_pointer at && Ctype.is_integer bt then at
      else if Ctype.is_integer at && Ctype.is_pointer bt then bt
      else
        err loc "incompatible branches of ?: (%s, %s)" (Ctype.to_string at)
          (Ctype.to_string bt)
  | Ast.Comma (a, b) ->
      ignore (rvalue env a);
      rvalue env b
  | Ast.SizeofType ty -> (
      try
        ignore (Ctype.size env.tenv ty);
        Ctype.Long
      with Ctype.Incomplete what -> err loc "sizeof incomplete type %s" what)
  | Ast.SizeofExpr a ->
      ignore (check_expr env a);
      Ctype.Long
  | Ast.KeepLive (a, base) ->
      Option.iter (fun b -> ignore (rvalue env b)) base;
      rvalue env a
  | Ast.RuntimeCall (fname, args) -> (
      List.iter (fun a -> ignore (rvalue env a)) args;
      match Builtins.find fname with
      | Some b -> b.Builtins.bi_ret
      | None -> err loc "unknown runtime function '%s'" fname)

and binop env loc op a b : Ctype.t =
  let at = rvalue env a and bt = rvalue env b in
  match op with
  | Ast.Add -> (
      match (at, bt) with
      | Ctype.Ptr _, t when Ctype.is_integer t -> at
      | t, Ctype.Ptr _ when Ctype.is_integer t -> bt
      | t, u when Ctype.is_arith t && Ctype.is_arith u -> arith_result t u
      | _ ->
          err loc "invalid operands to + (%s, %s)" (Ctype.to_string at)
            (Ctype.to_string bt))
  | Ast.Sub -> (
      match (at, bt) with
      | Ctype.Ptr _, t when Ctype.is_integer t -> at
      | Ctype.Ptr _, Ctype.Ptr _ -> Ctype.Long
      | t, u when Ctype.is_arith t && Ctype.is_arith u -> arith_result t u
      | _ ->
          err loc "invalid operands to - (%s, %s)" (Ctype.to_string at)
            (Ctype.to_string bt))
  | Ast.Mul | Ast.Div ->
      if Ctype.is_arith at && Ctype.is_arith bt then arith_result at bt
      else
        err loc "invalid operands to %s" (Ast.binop_to_string op)
  | Ast.Mod | Ast.Shl | Ast.Shr | Ast.BitAnd | Ast.BitXor | Ast.BitOr ->
      if Ctype.is_integer at && Ctype.is_integer bt then arith_result at bt
      else err loc "invalid operands to %s" (Ast.binop_to_string op)
  | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge | Ast.Eq | Ast.Ne ->
      let ok =
        (Ctype.is_arith at && Ctype.is_arith bt)
        || (Ctype.is_pointer at && Ctype.is_pointer bt)
        || (Ctype.is_pointer at && Ctype.is_integer bt)
        || (Ctype.is_integer at && Ctype.is_pointer bt)
      in
      if not ok then
        err loc "invalid comparison (%s, %s)" (Ctype.to_string at)
          (Ctype.to_string bt);
      Ctype.Int
  | Ast.LogAnd | Ast.LogOr ->
      if Ctype.is_scalar at && Ctype.is_scalar bt then Ctype.Int
      else err loc "invalid operands to %s" (Ast.binop_to_string op)

let rec check_stmt env (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Sexpr e -> ignore (check_expr env e)
  | Ast.Sdecl d ->
      (try ignore (Ctype.size env.tenv d.Ast.d_ty)
       with Ctype.Incomplete what ->
         err d.Ast.d_loc "variable '%s' has incomplete type (%s)" d.Ast.d_name
           what);
      Option.iter
        (fun init ->
          let it = rvalue env init in
          let dt = Ctype.decay d.Ast.d_ty in
          if
            (not (Ctype.is_aggregate d.Ast.d_ty)) && not (assignable dt it)
          then
            err d.Ast.d_loc "cannot initialize %s with %s"
              (Ctype.to_string dt) (Ctype.to_string it))
        d.Ast.d_init;
      Symtab.add env.vars d.Ast.d_name d.Ast.d_ty
  | Ast.Sif (c, a, b) ->
      ignore (rvalue env c);
      check_stmt env a;
      Option.iter (check_stmt env) b
  | Ast.Swhile (c, b) ->
      ignore (rvalue env c);
      check_stmt env b
  | Ast.Sdowhile (b, c) ->
      check_stmt env b;
      ignore (rvalue env c)
  | Ast.Sfor (init, cond, step, b) ->
      List.iter (Option.iter (fun e -> ignore (rvalue env e))) [ init; cond; step ];
      check_stmt env b
  | Ast.Sreturn (Some e) ->
      let t = rvalue env e in
      if env.cur_ret = Ctype.Void then err s.sloc "return with value in void function"
      else if not (assignable env.cur_ret t) then
        err s.sloc "cannot return %s as %s" (Ctype.to_string t)
          (Ctype.to_string env.cur_ret)
  | Ast.Sreturn None ->
      if env.cur_ret <> Ctype.Void then
        err s.sloc "return without value in non-void function"
  | Ast.Sbreak | Ast.Scontinue | Ast.Sempty -> ()
  | Ast.Sblock ss ->
      Symtab.in_scope env.vars (fun () -> List.iter (check_stmt env) ss)

(** Check a whole program, annotating every expression with its type.
    Returns the environment so that later passes can reuse the function
    signature table. *)
let check_program (p : Ast.program) : env =
  let env =
    {
      tenv = p.Ast.prog_env;
      vars = Symtab.create ();
      funcs = Hashtbl.create 16;
      cur_ret = Ctype.Void;
    }
  in
  (* first pass: collect globals and signatures so forward calls work *)
  List.iter
    (function
      | Ast.Gfunc f ->
          Hashtbl.replace env.funcs f.Ast.f_name
            {
              fs_ret = f.Ast.f_ret;
              fs_params = List.map snd f.Ast.f_params;
              fs_varargs = f.Ast.f_varargs;
            }
      | Ast.Gproto (name, ret, params, varargs) ->
          Hashtbl.replace env.funcs name
            { fs_ret = ret; fs_params = List.map snd params; fs_varargs = varargs }
      | Ast.Gvar d -> Symtab.add env.vars d.Ast.d_name d.Ast.d_ty
      | Ast.Gstruct _ -> ())
    p.Ast.prog_globals;
  (* second pass: check bodies and global initializers *)
  List.iter
    (function
      | Ast.Gvar d ->
          (try ignore (Ctype.size env.tenv d.Ast.d_ty)
           with Ctype.Incomplete what ->
             err d.Ast.d_loc "global '%s' has incomplete type (%s)"
               d.Ast.d_name what);
          Option.iter (fun init -> ignore (rvalue env init)) d.Ast.d_init
      | Ast.Gfunc f ->
          env.cur_ret <- f.Ast.f_ret;
          Symtab.in_scope env.vars (fun () ->
              List.iter
                (fun (name, ty) -> Symtab.add env.vars name ty)
                f.Ast.f_params;
              check_stmt env f.Ast.f_body)
      | Ast.Gstruct _ | Ast.Gproto _ -> ())
    p.Ast.prog_globals;
  env

(** Convenience wrapper: parse then type-check. *)
let check_source (src : string) : Ast.program * env =
  let p = Parser.parse_program src in
  let env = check_program p in
  (p, env)
