(** Recursive-descent parser for the mini-C subset.

    Covers the full expression grammar (assignment and compound
    assignment, [?:], comma, casts, [sizeof], the address/deref operators,
    postfix chains), statements, declarations with pointer/array
    declarators, struct/union definitions, prototypes and function
    definitions.  [KEEP_LIVE(e, b)] re-parses as the primitive, so the
    preprocessor's own output round-trips. *)

exception Error of string * Loc.t

val parse_program : string -> Ast.program

val parse_expr_string : string -> Ast.expr
(** Parse a single expression (tests, quickstart).  @raise Error on
    trailing tokens. *)
