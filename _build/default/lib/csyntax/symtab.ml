(** Scoped symbol tables.

    A stack of scopes mapping names to values.  Lookup walks from the
    innermost scope outward, like C block scoping. *)

type 'a t = { mutable scopes : (string, 'a) Hashtbl.t list }

let create () = { scopes = [ Hashtbl.create 16 ] }

let enter_scope t = t.scopes <- Hashtbl.create 8 :: t.scopes

let exit_scope t =
  match t.scopes with
  | [] | [ _ ] -> invalid_arg "Symtab.exit_scope: no scope to exit"
  | _ :: rest -> t.scopes <- rest

(** Add to the innermost scope, shadowing any outer binding. *)
let add t name v =
  match t.scopes with
  | [] -> invalid_arg "Symtab.add: no scope"
  | scope :: _ -> Hashtbl.replace scope name v

let find t name =
  let rec loop = function
    | [] -> None
    | scope :: rest -> (
        match Hashtbl.find_opt scope name with
        | Some v -> Some v
        | None -> loop rest)
  in
  loop t.scopes

let mem t name = Option.is_some (find t name)

(** Is [name] bound in the innermost scope? *)
let mem_innermost t name =
  match t.scopes with
  | [] -> false
  | scope :: _ -> Hashtbl.mem scope name

(** Run [f] inside a fresh scope, restoring the previous scopes on exit even
    if [f] raises. *)
let in_scope t f =
  enter_scope t;
  Fun.protect ~finally:(fun () -> exit_scope t) f
