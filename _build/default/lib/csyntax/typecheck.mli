(** Type checker: annotates every expression with its C type.

    This is the "partial type-checking" of the paper's preprocessor —
    enough to know which expressions are pointer-valued and what the
    pointee sizes are — but it is also a real checker that rejects
    ill-typed programs with located errors. *)

exception Error of string * Loc.t

type fn_sig = {
  fs_ret : Ctype.t;
  fs_params : Ctype.t list;
  fs_varargs : bool;
}

type env = {
  tenv : Ctype.Env.t;
  vars : Ctype.t Symtab.t;
  funcs : (string, fn_sig) Hashtbl.t;
  mutable cur_ret : Ctype.t;
}

val check_program : Ast.program -> env
(** Check a whole program, filling in every expression's [ety].  Returns
    the environment so later passes can reuse the signature table.
    @raise Error on type errors. *)

val check_source : string -> Ast.program * env
(** Parse then type-check. *)
