(** Pretty-printer: AST back to C source.  Parenthesization follows
    operator precedence, so output re-parses to the same tree. *)

val pp_expr : Format.formatter -> Ast.expr -> unit

val expr_to_string : Ast.expr -> string

val pp_stmt : Format.formatter -> Ast.stmt -> unit

val stmt_to_string : Ast.stmt -> string

val pp_func : Format.formatter -> Ast.func -> unit

val pp_global : Format.formatter -> Ast.global -> unit

val pp_program : Format.formatter -> Ast.program -> unit

val program_to_string : Ast.program -> string
