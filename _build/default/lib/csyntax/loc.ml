(** Source locations for the mini-C frontend.

    Positions are tracked as [line:col] pairs plus the absolute character
    offset into the original source string.  The offset is what the
    transformation backend uses: the paper's preprocessor works by applying a
    sorted list of insertions and deletions to the original source text, so
    every AST node must remember exactly where it came from. *)

type t = {
  line : int;  (** 1-based line number *)
  col : int;  (** 1-based column number *)
  offset : int;  (** 0-based character offset into the source string *)
}

let dummy = { line = 0; col = 0; offset = -1 }

let is_dummy t = t.offset < 0

let make ~line ~col ~offset = { line; col; offset }

let compare a b = Int.compare a.offset b.offset

let pp fmt t = Format.fprintf fmt "%d:%d" t.line t.col

let to_string t = Format.asprintf "%a" pp t
