(** Hand-written lexer for the mini-C subset.  Skips both comment styles
    and cpp [# line] directives (the paper runs its transformation after
    macro expansion). *)

exception Error of string * Loc.t

type tok = {
  t : Token.t;
  loc : Loc.t;
  endpos : int;  (** offset one past the token, for the source patcher *)
}

val tokenize : string -> tok array
(** The whole token stream, [EOF]-terminated.  @raise Error on malformed
    input. *)
