(** Abstract syntax for the mini-C subset.

    Expressions carry a mutable [ety] filled in by {!Typecheck}, and the
    location of the original source text so that the transformation backend
    can patch the source in place.  The two "synthetic" constructors
    [KeepLive] and [RuntimeCall] never come out of the parser; they are
    introduced by the annotator (the paper's KEEP_LIVE primitive and the
    checked-mode [GC_same_obj]-style calls respectively). *)

type unop =
  | Neg  (** -e *)
  | Not  (** !e *)
  | BitNot  (** ~e *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Shl
  | Shr
  | Lt
  | Gt
  | Le
  | Ge
  | Eq
  | Ne
  | BitAnd
  | BitXor
  | BitOr
  | LogAnd
  | LogOr

type incr_kind = PreIncr | PreDecr | PostIncr | PostDecr

type expr = {
  edesc : expr_desc;
  eloc : Loc.t;
  mutable eend : int;
      (** source offset one past the expression's last token ([-1] for
          synthesized nodes); with [eloc.offset] this delimits the original
          text for the patch-based emitter *)
  mutable ety : Ctype.t option;  (** filled in by the type checker *)
}

and expr_desc =
  | IntLit of int
  | CharLit of char
  | StrLit of string
  | FloatLit of float
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of expr * expr  (** lhs = rhs *)
  | OpAssign of binop * expr * expr  (** lhs op= rhs *)
  | Incr of incr_kind * expr
  | Deref of expr  (** *e *)
  | AddrOf of expr  (** &e *)
  | Index of expr * expr  (** e1[e2] *)
  | Field of expr * string  (** e.x *)
  | Arrow of expr * string  (** e->x *)
  | Call of string * expr list  (** direct calls only *)
  | Cast of Ctype.t * expr
  | Cond of expr * expr * expr  (** e1 ? e2 : e3 *)
  | Comma of expr * expr
  | SizeofType of Ctype.t
  | SizeofExpr of expr
  | KeepLive of expr * expr option
      (** KEEP_LIVE(e, base); [None] base means BASE(e) was NIL and only
          opacity is required (used for allocation results) *)
  | RuntimeCall of string * expr list
      (** checked-mode runtime calls: GC_same_obj, GC_pre_incr, ... *)

type stmt = { sdesc : stmt_desc; sloc : Loc.t }

and stmt_desc =
  | Sexpr of expr
  | Sdecl of decl
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdowhile of stmt * expr
  | Sfor of expr option * expr option * expr option * stmt
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list
  | Sempty

and decl = {
  d_name : string;
  d_ty : Ctype.t;
  d_init : expr option;
  d_loc : Loc.t;
}

type func = {
  f_name : string;
  f_ret : Ctype.t;
  f_params : (string * Ctype.t) list;
  f_varargs : bool;
  f_body : stmt;
  f_loc : Loc.t;
}

type global =
  | Gfunc of func
  | Gvar of decl
  | Gstruct of string * bool * (string * Ctype.t) list  (** tag, is_union, fields *)
  | Gproto of string * Ctype.t * (string * Ctype.t) list * bool
      (** function prototype: name, return type, params, varargs *)

type program = { prog_globals : global list; prog_env : Ctype.Env.t }

let mk_expr ?(loc = Loc.dummy) edesc =
  { edesc; eloc = loc; eend = -1; ety = None }

(** Does the node remember its original source extent? *)
let has_span e = not (Loc.is_dummy e.eloc) && e.eend > e.eloc.Loc.offset

let mk_stmt ?(loc = Loc.dummy) sdesc = { sdesc; sloc = loc }

(* Convenience constructors used by the normalizer and annotator. *)

let evar ?loc name = mk_expr ?loc (Var name)

let eint ?loc n = mk_expr ?loc (IntLit n)

let eassign ?loc lhs rhs = mk_expr ?loc (Assign (lhs, rhs))

let ecomma ?loc a b = mk_expr ?loc (Comma (a, b))

let ederef ?loc e = mk_expr ?loc (Deref e)

let eaddrof ?loc e = mk_expr ?loc (AddrOf e)

(** [with_ty ty e] sets the type annotation, returning [e]. *)
let with_ty ty e =
  e.ety <- Some ty;
  e

let typ e =
  match e.ety with
  | Some t -> t
  | None -> invalid_arg "Ast.typ: expression not type-checked"

(** Type of [e] after array/function decay (its r-value type). *)
let rtyp e = Ctype.decay (typ e)

let is_pointer_valued e = Ctype.is_pointer (rtyp e)

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Shl -> "<<"
  | Shr -> ">>"
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | BitAnd -> "&"
  | BitXor -> "^"
  | BitOr -> "|"
  | LogAnd -> "&&"
  | LogOr -> "||"

let unop_to_string = function Neg -> "-" | Not -> "!" | BitNot -> "~"

(** Fold over all sub-expressions of [e], outermost first. *)
let rec fold_expr f acc e =
  let acc = f acc e in
  let g = fold_expr f in
  match e.edesc with
  | IntLit _ | CharLit _ | StrLit _ | FloatLit _ | Var _ | SizeofType _ -> acc
  | Unop (_, a) | Deref a | AddrOf a | Field (a, _) | Arrow (a, _)
  | Cast (_, a) | SizeofExpr a | Incr (_, a) ->
      g acc a
  | Binop (_, a, b) | Assign (a, b) | OpAssign (_, a, b) | Index (a, b)
  | Comma (a, b) ->
      g (g acc a) b
  | Cond (a, b, c) -> g (g (g acc a) b) c
  | Call (_, args) | RuntimeCall (_, args) -> List.fold_left g acc args
  | KeepLive (a, Some b) -> g (g acc a) b
  | KeepLive (a, None) -> g acc a

(** Iterate [f] over every statement in a function body, recursing into
    nested blocks and loop bodies. *)
let rec iter_stmts f s =
  f s;
  match s.sdesc with
  | Sexpr _ | Sdecl _ | Sreturn _ | Sbreak | Scontinue | Sempty -> ()
  | Sif (_, a, b) ->
      iter_stmts f a;
      Option.iter (iter_stmts f) b
  | Swhile (_, b) | Sdowhile (b, _) | Sfor (_, _, _, b) -> iter_stmts f b
  | Sblock ss -> List.iter (iter_stmts f) ss

(** Fold [f] over every expression appearing in statement [s] (including
    sub-expressions). *)
let fold_stmt_exprs f acc s =
  let acc = ref acc in
  let on_expr e = acc := fold_expr f !acc e in
  iter_stmts
    (fun s ->
      match s.sdesc with
      | Sexpr e -> on_expr e
      | Sdecl d -> Option.iter on_expr d.d_init
      | Sif (c, _, _) | Swhile (c, _) | Sdowhile (_, c) -> on_expr c
      | Sfor (a, b, c, _) ->
          List.iter (Option.iter on_expr) [ a; b; c ]
      | Sreturn e -> Option.iter on_expr e
      | Sbreak | Scontinue | Sblock _ | Sempty -> ())
    s;
  !acc
