(** Signatures of the runtime functions known to the compiler and VM.

    The paper's problem statement replaces [malloc]/[calloc]/[realloc] with
    a collecting allocator and removes [free]; the list below is the whole
    ambient library visible to workload programs.  [GC_same_obj],
    [GC_pre_incr] and [GC_post_incr] are the checking primitives of the
    debugging mode. *)

open Ctype

type signature = {
  bi_name : string;
  bi_ret : Ctype.t;
  bi_params : Ctype.t list;
  bi_varargs : bool;
  bi_allocates : bool;
      (** result is a fresh heap pointer (treated as a KEEP_LIVE value) *)
}

let s ?(varargs = false) ?(allocates = false) name ret params =
  {
    bi_name = name;
    bi_ret = ret;
    bi_params = params;
    bi_varargs = varargs;
    bi_allocates = allocates;
  }

let all =
  [
    (* allocation: the collecting allocator *)
    s "malloc" (Ptr Void) [ Long ] ~allocates:true;
    s "calloc" (Ptr Void) [ Long; Long ] ~allocates:true;
    s "realloc" (Ptr Void) [ Ptr Void; Long ] ~allocates:true;
    s "free" Void [ Ptr Void ];
    s "GC_malloc" (Ptr Void) [ Long ] ~allocates:true;
    s "GC_malloc_atomic" (Ptr Void) [ Long ] ~allocates:true;
    (* checking primitives (debugging mode runtime) *)
    s "GC_base" (Ptr Void) [ Ptr Void ];
    s "GC_same_obj" (Ptr Void) [ Ptr Void; Ptr Void ];
    s "GC_pre_incr" (Ptr Void) [ Ptr (Ptr Void); Long ];
    s "GC_post_incr" (Ptr Void) [ Ptr (Ptr Void); Long ];
    s "GC_check_base" (Ptr Void) [ Ptr Void ];
    s "GC_check_range" (Ptr Void) [ Ptr Void; Long ];
    s "GC_collect" Void [];
    (* string/memory library *)
    s "strlen" Long [ Ptr Char ];
    s "strcpy" (Ptr Char) [ Ptr Char; Ptr Char ];
    s "strcmp" Int [ Ptr Char; Ptr Char ];
    s "strncmp" Int [ Ptr Char; Ptr Char; Long ];
    s "strcat" (Ptr Char) [ Ptr Char; Ptr Char ];
    s "strchr" (Ptr Char) [ Ptr Char; Int ];
    s "memcpy" (Ptr Void) [ Ptr Void; Ptr Void; Long ];
    s "memmove" (Ptr Void) [ Ptr Void; Ptr Void; Long ];
    s "memset" (Ptr Void) [ Ptr Void; Int; Long ];
    (* i/o (deterministic: writes to the VM's output buffer) *)
    s "putchar" Int [ Int ];
    s "puts" Int [ Ptr Char ];
    s "print_int" Void [ Long ];
    s "print_str" Void [ Ptr Char ];
    s "printf" Int [ Ptr Char ] ~varargs:true;
    s "scanf" Int [ Ptr Char ] ~varargs:true;
    s "fread" Long [ Ptr Void; Long; Long; Ptr Void ];
    (* misc *)
    s "abort" Void [];
    s "exit" Void [ Int ];
    s "rand" Int [];
    s "srand" Void [ Int ];
    s "abs" Int [ Int ];
    s "assert_true" Void [ Int ];
  ]

let find name = List.find_opt (fun b -> b.bi_name = name) all

let is_builtin name = Option.is_some (find name)

(** Allocation functions, whose results the annotator treats as KEEP_LIVE
    values (paper: "allocation functions return a result that is (treated
    as) the value of a KEEP_LIVE expression"). *)
let is_allocator name =
  match find name with Some b -> b.bi_allocates | None -> false
