(** Recursive-descent parser for the mini-C subset.

    Expression parsing uses the classical precedence ladder (assignment ->
    conditional -> logical-or -> ... -> unary -> postfix -> primary).
    Declarators cover pointers, arrays, and function parameter lists, which
    is sufficient for the workloads; parenthesized declarators (function
    pointers) are not in the subset. *)

exception Error of string * Loc.t

type state = { toks : Lexer.tok array; mutable idx : int }

let cur st = st.toks.(st.idx)

let cur_tok st = (cur st).t

let cur_loc st = (cur st).loc

let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let peek_tok st n =
  let i = min (st.idx + n) (Array.length st.toks - 1) in
  st.toks.(i).t

let err st msg =
  raise (Error (Printf.sprintf "%s (found '%s')" msg (Token.to_string (cur_tok st)), cur_loc st))

let expect st t =
  if cur_tok st = t then advance st
  else err st (Printf.sprintf "expected '%s'" (Token.to_string t))

let accept st t =
  if cur_tok st = t then begin
    advance st;
    true
  end
  else false

(* Build an expression node and record its source extent: at construction
   time the parser has just consumed the node's last token. *)
let mk st loc desc =
  let e = Ast.mk_expr ~loc desc in
  (e.Ast.eend <- (if st.idx > 0 then st.toks.(st.idx - 1).Lexer.endpos else -1));
  e

let expect_ident st =
  match cur_tok st with
  | Token.IDENT s ->
      advance st;
      s
  | _ -> err st "expected identifier"

(* ------------------------------------------------------------------ *)
(* Types and declarators                                              *)
(* ------------------------------------------------------------------ *)

let is_type_start = function
  | Token.KW_VOID | Token.KW_CHAR | Token.KW_SHORT | Token.KW_INT
  | Token.KW_LONG | Token.KW_FLOAT | Token.KW_DOUBLE | Token.KW_UNSIGNED
  | Token.KW_SIGNED | Token.KW_STRUCT | Token.KW_UNION | Token.KW_CONST ->
      true
  | _ -> false

(** Parse a type specifier (the part before the declarator). *)
let rec parse_base_type st : Ctype.t =
  let rec skip_quals () =
    if accept st Token.KW_CONST then skip_quals ()
  in
  skip_quals ();
  let t =
    match cur_tok st with
    | Token.KW_VOID ->
        advance st;
        Ctype.Void
    | Token.KW_CHAR ->
        advance st;
        Ctype.Char
    | Token.KW_SHORT ->
        advance st;
        ignore (accept st Token.KW_INT);
        Ctype.Short
    | Token.KW_INT ->
        advance st;
        Ctype.Int
    | Token.KW_LONG ->
        advance st;
        ignore (accept st Token.KW_INT);
        Ctype.Long
    | Token.KW_FLOAT ->
        advance st;
        Ctype.Float
    | Token.KW_DOUBLE ->
        advance st;
        Ctype.Double
    | Token.KW_UNSIGNED | Token.KW_SIGNED ->
        (* signedness is ignored in the subset: everything is signed *)
        advance st;
        if is_type_start (cur_tok st) && cur_tok st <> Token.KW_CONST then
          parse_base_type st
        else Ctype.Int
    | Token.KW_STRUCT ->
        advance st;
        let tag = expect_ident st in
        Ctype.Struct tag
    | Token.KW_UNION ->
        advance st;
        let tag = expect_ident st in
        Ctype.Union tag
    | _ -> err st "expected type"
  in
  skip_quals ();
  t

(** Parse the pointer stars of a declarator applied to [base]. *)
let parse_pointers st base =
  let rec loop ty =
    if accept st Token.STAR then begin
      while accept st Token.KW_CONST do
        ()
      done;
      loop (Ctype.Ptr ty)
    end
    else ty
  in
  loop base

(** Parse array suffixes [n]... applied to [ty] (innermost dimension last in
    the source, so build from the right). *)
let rec parse_array_suffix st ty =
  if accept st Token.LBRACKET then begin
    let n =
      match cur_tok st with
      | Token.INT_LIT n ->
          advance st;
          Some n
      | Token.RBRACKET -> None
      | _ -> err st "expected array length"
    in
    expect st Token.RBRACKET;
    let inner = parse_array_suffix st ty in
    Ctype.Array (inner, n)
  end
  else ty

(* ------------------------------------------------------------------ *)
(* Expressions                                                        *)
(* ------------------------------------------------------------------ *)

(* A '(' starts a cast iff it is followed by a type keyword. *)
let starts_cast st = cur_tok st = Token.LPAREN && is_type_start (peek_tok st 1)

let rec parse_expr st : Ast.expr = parse_comma st

and parse_comma st =
  let loc = cur_loc st in
  let e = parse_assign st in
  if accept st Token.COMMA then
    let rest = parse_comma st in
    mk st loc (Ast.Comma (e, rest))
  else e

and parse_assign st =
  let loc = cur_loc st in
  let lhs = parse_cond st in
  let opassign op =
    advance st;
    let rhs = parse_assign st in
    mk st loc (Ast.OpAssign (op, lhs, rhs))
  in
  match cur_tok st with
  | Token.ASSIGN ->
      advance st;
      let rhs = parse_assign st in
      mk st loc (Ast.Assign (lhs, rhs))
  | Token.PLUS_ASSIGN -> opassign Ast.Add
  | Token.MINUS_ASSIGN -> opassign Ast.Sub
  | Token.STAR_ASSIGN -> opassign Ast.Mul
  | Token.SLASH_ASSIGN -> opassign Ast.Div
  | Token.PERCENT_ASSIGN -> opassign Ast.Mod
  | Token.AMP_ASSIGN -> opassign Ast.BitAnd
  | Token.BAR_ASSIGN -> opassign Ast.BitOr
  | Token.CARET_ASSIGN -> opassign Ast.BitXor
  | Token.SHL_ASSIGN -> opassign Ast.Shl
  | Token.SHR_ASSIGN -> opassign Ast.Shr
  | _ -> lhs

and parse_cond st =
  let loc = cur_loc st in
  let c = parse_binary st 0 in
  if accept st Token.QUESTION then begin
    let a = parse_assign st in
    expect st Token.COLON;
    let b = parse_cond st in
    mk st loc (Ast.Cond (c, a, b))
  end
  else c

(* Binary operators by precedence level, loosest first. *)
and binop_of_token = function
  | Token.OROR -> Some (Ast.LogOr, 0)
  | Token.ANDAND -> Some (Ast.LogAnd, 1)
  | Token.BAR -> Some (Ast.BitOr, 2)
  | Token.CARET -> Some (Ast.BitXor, 3)
  | Token.AMP -> Some (Ast.BitAnd, 4)
  | Token.EQEQ -> Some (Ast.Eq, 5)
  | Token.NE -> Some (Ast.Ne, 5)
  | Token.LT -> Some (Ast.Lt, 6)
  | Token.GT -> Some (Ast.Gt, 6)
  | Token.LE -> Some (Ast.Le, 6)
  | Token.GE -> Some (Ast.Ge, 6)
  | Token.SHL -> Some (Ast.Shl, 7)
  | Token.SHR -> Some (Ast.Shr, 7)
  | Token.PLUS -> Some (Ast.Add, 8)
  | Token.MINUS -> Some (Ast.Sub, 8)
  | Token.STAR -> Some (Ast.Mul, 9)
  | Token.SLASH -> Some (Ast.Div, 9)
  | Token.PERCENT -> Some (Ast.Mod, 9)
  | _ -> None

and parse_binary st min_prec =
  let loc = cur_loc st in
  let lhs = ref (parse_unary st) in
  let rec loop () =
    match binop_of_token (cur_tok st) with
    | Some (op, prec) when prec >= min_prec ->
        advance st;
        let rhs = parse_binary st (prec + 1) in
        lhs := mk st loc (Ast.Binop (op, !lhs, rhs));
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  !lhs

and parse_unary st =
  let loc = cur_loc st in
  match cur_tok st with
  | Token.PLUSPLUS ->
      advance st;
      mk st loc (Ast.Incr (Ast.PreIncr, parse_unary st))
  | Token.MINUSMINUS ->
      advance st;
      mk st loc (Ast.Incr (Ast.PreDecr, parse_unary st))
  | Token.STAR ->
      advance st;
      mk st loc (Ast.Deref (parse_unary st))
  | Token.AMP ->
      advance st;
      mk st loc (Ast.AddrOf (parse_unary st))
  | Token.MINUS ->
      advance st;
      mk st loc (Ast.Unop (Ast.Neg, parse_unary st))
  | Token.PLUS ->
      advance st;
      parse_unary st
  | Token.BANG ->
      advance st;
      mk st loc (Ast.Unop (Ast.Not, parse_unary st))
  | Token.TILDE ->
      advance st;
      mk st loc (Ast.Unop (Ast.BitNot, parse_unary st))
  | Token.KW_SIZEOF ->
      advance st;
      if starts_cast st then begin
        expect st Token.LPAREN;
        let base = parse_base_type st in
        let ty = parse_pointers st base in
        expect st Token.RPAREN;
        mk st loc (Ast.SizeofType ty)
      end
      else mk st loc (Ast.SizeofExpr (parse_unary st))
  | Token.LPAREN when starts_cast st ->
      expect st Token.LPAREN;
      let base = parse_base_type st in
      let ty = parse_pointers st base in
      expect st Token.RPAREN;
      mk st loc (Ast.Cast (ty, parse_unary st))
  | _ -> parse_postfix st

and parse_postfix st =
  (* chained postfix nodes all carry the start of the whole chain, so the
     patch emitter can wrap the full access text *)
  let loc = cur_loc st in
  let e = ref (parse_primary st) in
  let rec loop () =
    match cur_tok st with
    | Token.LBRACKET ->
        advance st;
        let idx = parse_expr st in
        expect st Token.RBRACKET;
        e := mk st loc (Ast.Index (!e, idx));
        loop ()
    | Token.DOT ->
        advance st;
        let f = expect_ident st in
        e := mk st loc (Ast.Field (!e, f));
        loop ()
    | Token.ARROW ->
        advance st;
        let f = expect_ident st in
        e := mk st loc (Ast.Arrow (!e, f));
        loop ()
    | Token.PLUSPLUS ->
        advance st;
        e := mk st loc (Ast.Incr (Ast.PostIncr, !e));
        loop ()
    | Token.MINUSMINUS ->
        advance st;
        e := mk st loc (Ast.Incr (Ast.PostDecr, !e));
        loop ()
    | _ -> ()
  in
  loop ();
  !e

and parse_primary st =
  let loc = cur_loc st in
  match cur_tok st with
  | Token.INT_LIT n ->
      advance st;
      mk st loc (Ast.IntLit n)
  | Token.CHAR_LIT c ->
      advance st;
      mk st loc (Ast.CharLit c)
  | Token.FLOAT_LIT f ->
      advance st;
      mk st loc (Ast.FloatLit f)
  | Token.STR_LIT s ->
      advance st;
      (* adjacent string literals concatenate *)
      let buf = Buffer.create (String.length s) in
      Buffer.add_string buf s;
      let rec more () =
        match cur_tok st with
        | Token.STR_LIT s2 ->
            advance st;
            Buffer.add_string buf s2;
            more ()
        | _ -> ()
      in
      more ();
      mk st loc (Ast.StrLit (Buffer.contents buf))
  | Token.IDENT name ->
      advance st;
      if cur_tok st = Token.LPAREN then begin
        advance st;
        let args =
          if cur_tok st = Token.RPAREN then []
          else
            let rec loop acc =
              let a = parse_assign st in
              if accept st Token.COMMA then loop (a :: acc)
              else List.rev (a :: acc)
            in
            loop []
        in
        expect st Token.RPAREN;
        (* the preprocessor's own output re-parses: KEEP_LIVE is a
           primitive, not a call *)
        match (name, args) with
        | "KEEP_LIVE", [ e ] -> mk st loc (Ast.KeepLive (e, None))
        | "KEEP_LIVE", [ e; b ] -> mk st loc (Ast.KeepLive (e, Some b))
        | "KEEP_LIVE", _ -> err st "KEEP_LIVE takes one or two arguments"
        | _ -> mk st loc (Ast.Call (name, args))
      end
      else mk st loc (Ast.Var name)
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
  | _ -> err st "expected expression"

(* ------------------------------------------------------------------ *)
(* Statements                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_stmt st : Ast.stmt =
  let loc = cur_loc st in
  match cur_tok st with
  | Token.LBRACE ->
      advance st;
      let rec items acc =
        if cur_tok st = Token.RBRACE then List.rev acc
        else items (parse_block_item st :: acc)
      in
      let ss = items [] in
      expect st Token.RBRACE;
      Ast.mk_stmt ~loc (Ast.Sblock ss)
  | Token.KW_IF ->
      advance st;
      expect st Token.LPAREN;
      let c = parse_expr st in
      expect st Token.RPAREN;
      let then_ = parse_stmt st in
      let else_ = if accept st Token.KW_ELSE then Some (parse_stmt st) else None in
      Ast.mk_stmt ~loc (Ast.Sif (c, then_, else_))
  | Token.KW_WHILE ->
      advance st;
      expect st Token.LPAREN;
      let c = parse_expr st in
      expect st Token.RPAREN;
      Ast.mk_stmt ~loc (Ast.Swhile (c, parse_stmt st))
  | Token.KW_DO ->
      advance st;
      let body = parse_stmt st in
      expect st Token.KW_WHILE;
      expect st Token.LPAREN;
      let c = parse_expr st in
      expect st Token.RPAREN;
      expect st Token.SEMI;
      Ast.mk_stmt ~loc (Ast.Sdowhile (body, c))
  | Token.KW_FOR ->
      advance st;
      expect st Token.LPAREN;
      let init =
        if cur_tok st = Token.SEMI then None else Some (parse_expr st)
      in
      expect st Token.SEMI;
      let cond =
        if cur_tok st = Token.SEMI then None else Some (parse_expr st)
      in
      expect st Token.SEMI;
      let step =
        if cur_tok st = Token.RPAREN then None else Some (parse_expr st)
      in
      expect st Token.RPAREN;
      Ast.mk_stmt ~loc (Ast.Sfor (init, cond, step, parse_stmt st))
  | Token.KW_RETURN ->
      advance st;
      let e = if cur_tok st = Token.SEMI then None else Some (parse_expr st) in
      expect st Token.SEMI;
      Ast.mk_stmt ~loc (Ast.Sreturn e)
  | Token.KW_BREAK ->
      advance st;
      expect st Token.SEMI;
      Ast.mk_stmt ~loc Ast.Sbreak
  | Token.KW_CONTINUE ->
      advance st;
      expect st Token.SEMI;
      Ast.mk_stmt ~loc Ast.Scontinue
  | Token.SEMI ->
      advance st;
      Ast.mk_stmt ~loc Ast.Sempty
  | _ ->
      let e = parse_expr st in
      expect st Token.SEMI;
      Ast.mk_stmt ~loc (Ast.Sexpr e)

(** A block item is either a declaration or a statement. *)
and parse_block_item st : Ast.stmt =
  let loc = cur_loc st in
  if is_type_start (cur_tok st) then begin
    let base = parse_base_type st in
    let rec one_decl acc =
      let ty = parse_pointers st base in
      let name = expect_ident st in
      let ty = parse_array_suffix st ty in
      let init = if accept st Token.ASSIGN then Some (parse_assign st) else None in
      let d = { Ast.d_name = name; d_ty = ty; d_init = init; d_loc = loc } in
      let acc = Ast.mk_stmt ~loc (Ast.Sdecl d) :: acc in
      if accept st Token.COMMA then one_decl acc else List.rev acc
    in
    let decls = one_decl [] in
    expect st Token.SEMI;
    match decls with [ d ] -> d | ds -> Ast.mk_stmt ~loc (Ast.Sblock ds)
  end
  else parse_stmt st

(* ------------------------------------------------------------------ *)
(* Top level                                                          *)
(* ------------------------------------------------------------------ *)

let parse_params st : (string * Ctype.t) list * bool =
  expect st Token.LPAREN;
  if accept st Token.RPAREN then ([], false)
  else if cur_tok st = Token.KW_VOID && peek_tok st 1 = Token.RPAREN then begin
    advance st;
    advance st;
    ([], false)
  end
  else begin
    let varargs = ref false in
    let rec loop acc =
      if accept st Token.ELLIPSIS then begin
        varargs := true;
        List.rev acc
      end
      else begin
        let base = parse_base_type st in
        let ty = parse_pointers st base in
        let name =
          match cur_tok st with
          | Token.IDENT s ->
              advance st;
              s
          | _ -> "" (* unnamed parameter in a prototype *)
        in
        let ty = parse_array_suffix st ty in
        (* array parameters decay to pointers *)
        let ty =
          match ty with Ctype.Array (elt, _) -> Ctype.Ptr elt | t -> t
        in
        let acc = (name, ty) :: acc in
        if accept st Token.COMMA then loop acc else List.rev acc
      end
    in
    let ps = loop [] in
    expect st Token.RPAREN;
    (ps, !varargs)
  end

let parse_global st : Ast.global list =
  let loc = cur_loc st in
  ignore (accept st Token.KW_EXTERN);
  ignore (accept st Token.KW_STATIC);
  (* struct/union definition? *)
  if
    (cur_tok st = Token.KW_STRUCT || cur_tok st = Token.KW_UNION)
    && peek_tok st 2 = Token.LBRACE
  then begin
    let is_union = cur_tok st = Token.KW_UNION in
    advance st;
    let tag = expect_ident st in
    expect st Token.LBRACE;
    let rec fields acc =
      if cur_tok st = Token.RBRACE then List.rev acc
      else begin
        let base = parse_base_type st in
        let rec one acc =
          let ty = parse_pointers st base in
          let name = expect_ident st in
          let ty = parse_array_suffix st ty in
          let acc = (name, ty) :: acc in
          if accept st Token.COMMA then one acc else acc
        in
        let acc = one acc in
        expect st Token.SEMI;
        fields acc
      end
    in
    let fs = fields [] in
    expect st Token.RBRACE;
    expect st Token.SEMI;
    [ Ast.Gstruct (tag, is_union, fs) ]
  end
  else begin
    let base = parse_base_type st in
    if accept st Token.SEMI then [] (* bare "struct s;" forward decl *)
    else begin
      let ty = parse_pointers st base in
      let name = expect_ident st in
      if cur_tok st = Token.LPAREN then begin
        (* function definition or prototype *)
        let params, varargs = parse_params st in
        if cur_tok st = Token.LBRACE then
          let body = parse_stmt st in
          [ Ast.Gfunc
              {
                f_name = name;
                f_ret = ty;
                f_params = params;
                f_varargs = varargs;
                f_body = body;
                f_loc = loc;
              } ]
        else begin
          expect st Token.SEMI;
          [ Ast.Gproto (name, ty, params, varargs) ]
        end
      end
      else begin
        (* global variable(s) *)
        let rec one_decl first_ty first_name acc =
          let ty = parse_array_suffix st first_ty in
          let init =
            if accept st Token.ASSIGN then Some (parse_assign st) else None
          in
          let acc =
            Ast.Gvar { d_name = first_name; d_ty = ty; d_init = init; d_loc = loc }
            :: acc
          in
          if accept st Token.COMMA then begin
            let ty = parse_pointers st base in
            let name = expect_ident st in
            one_decl ty name acc
          end
          else List.rev acc
        in
        let decls = one_decl ty name [] in
        expect st Token.SEMI;
        decls
      end
    end
  end

(** Parse a complete translation unit. *)
let parse_program (src : string) : Ast.program =
  let toks = Lexer.tokenize src in
  let st = { toks; idx = 0 } in
  let env = Ctype.Env.create () in
  let rec loop acc =
    if cur_tok st = Token.EOF then List.rev acc
    else begin
      let gs = parse_global st in
      List.iter
        (function
          | Ast.Gstruct (tag, is_union, fields) ->
              Ctype.Env.add env (Ctype.make_layout env ~union:is_union tag fields)
          | Ast.Gfunc _ | Ast.Gvar _ | Ast.Gproto _ -> ())
        gs;
      loop (List.rev_append gs acc)
    end
  in
  let globals = loop [] in
  { Ast.prog_globals = globals; prog_env = env }

(** Parse a single expression (used by tests and the quickstart example). *)
let parse_expr_string (src : string) : Ast.expr =
  let toks = Lexer.tokenize src in
  let st = { toks; idx = 0 } in
  let e = parse_expr st in
  if cur_tok st <> Token.EOF then err st "trailing tokens after expression";
  e
