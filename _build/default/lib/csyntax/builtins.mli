(** Signatures of the runtime functions known to the compiler and VM:
    the collecting allocator (the problem statement replaces
    [malloc]/[calloc]/[realloc] and removes [free]), the checking
    primitives of the debugging mode, and a small string/memory/IO
    library. *)

type signature = {
  bi_name : string;
  bi_ret : Ctype.t;
  bi_params : Ctype.t list;
  bi_varargs : bool;
  bi_allocates : bool;
      (** result is a fresh heap pointer (treated as a KEEP_LIVE value) *)
}

val all : signature list

val find : string -> signature option

val is_builtin : string -> bool

val is_allocator : string -> bool
