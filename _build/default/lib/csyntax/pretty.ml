(** Pretty-printer: AST back to C source.

    Used for the C-to-C output of the preprocessor and for parser round-trip
    tests.  Parenthesization is driven by operator precedence so the output
    re-parses to the same tree. *)

open Format

(* Precedence levels, higher binds tighter (C standard ordering). *)
let prec_comma = 1
let prec_assign = 2
let prec_cond = 3

let binop_prec = function
  | Ast.LogOr -> 4
  | Ast.LogAnd -> 5
  | Ast.BitOr -> 6
  | Ast.BitXor -> 7
  | Ast.BitAnd -> 8
  | Ast.Eq | Ast.Ne -> 9
  | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge -> 10
  | Ast.Shl | Ast.Shr -> 11
  | Ast.Add | Ast.Sub -> 12
  | Ast.Mul | Ast.Div | Ast.Mod -> 13

let prec_unary = 14
let prec_postfix = 15
let prec_primary = 16

let escape_char c =
  match c with
  | '\n' -> "\\n"
  | '\t' -> "\\t"
  | '\r' -> "\\r"
  | '\000' -> "\\0"
  | '\\' -> "\\\\"
  | '\'' -> "\\'"
  | '"' -> "\\\""
  | c when c >= ' ' && c <= '~' -> String.make 1 c
  | c -> Printf.sprintf "\\%03o" (Char.code c)

let escape_string s =
  String.to_seq s |> Seq.map escape_char |> List.of_seq |> String.concat ""

(** Print a type with an embedded declarator name (C inside-out syntax). *)
let rec pp_decl_ty fmt (ty, name) =
  match ty with
  | Ctype.Array (elt, n) ->
      let dims =
        match n with Some n -> Printf.sprintf "[%d]" n | None -> "[]"
      in
      pp_decl_ty fmt (elt, name ^ dims)
  | Ctype.Ptr t -> pp_decl_ty fmt (t, "*" ^ name)
  | base -> fprintf fmt "%s %s" (Ctype.to_string base) name

let pp_cast_ty fmt ty = fprintf fmt "%s" (Ctype.to_string ty)

let rec pp_expr_prec fmt (e : Ast.expr) ctx =
  let p = expr_prec e in
  if p < ctx then fprintf fmt "(%a)" pp_inner e else pp_inner fmt e

and expr_prec (e : Ast.expr) =
  match e.edesc with
  | Ast.IntLit _ | Ast.CharLit _ | Ast.StrLit _ | Ast.FloatLit _ | Ast.Var _ ->
      prec_primary
  | Ast.Call _ | Ast.RuntimeCall _ | Ast.KeepLive _ | Ast.Index _
  | Ast.Field _ | Ast.Arrow _
  | Ast.Incr ((Ast.PostIncr | Ast.PostDecr), _) ->
      prec_postfix
  | Ast.Unop _ | Ast.Deref _ | Ast.AddrOf _ | Ast.Cast _ | Ast.SizeofType _
  | Ast.SizeofExpr _
  | Ast.Incr ((Ast.PreIncr | Ast.PreDecr), _) ->
      prec_unary
  | Ast.Binop (op, _, _) -> binop_prec op
  | Ast.Cond _ -> prec_cond
  | Ast.Assign _ | Ast.OpAssign _ -> prec_assign
  | Ast.Comma _ -> prec_comma

and pp_inner fmt (e : Ast.expr) =
  match e.edesc with
  | Ast.IntLit n -> fprintf fmt "%d" n
  | Ast.CharLit c -> fprintf fmt "'%s'" (escape_char c)
  | Ast.StrLit s -> fprintf fmt "\"%s\"" (escape_string s)
  | Ast.FloatLit f -> fprintf fmt "%g" f
  | Ast.Var v -> pp_print_string fmt v
  | Ast.Unop (op, a) ->
      fprintf fmt "%s%a" (Ast.unop_to_string op)
        (fun fmt a -> pp_expr_prec fmt a prec_unary)
        a
  | Ast.Binop (op, a, b) ->
      let p = binop_prec op in
      fprintf fmt "%a %s %a"
        (fun fmt a -> pp_expr_prec fmt a p)
        a (Ast.binop_to_string op)
        (fun fmt b -> pp_expr_prec fmt b (p + 1))
        b
  | Ast.Assign (l, r) ->
      fprintf fmt "%a = %a"
        (fun fmt l -> pp_expr_prec fmt l prec_unary)
        l
        (fun fmt r -> pp_expr_prec fmt r prec_assign)
        r
  | Ast.OpAssign (op, l, r) ->
      fprintf fmt "%a %s= %a"
        (fun fmt l -> pp_expr_prec fmt l prec_unary)
        l (Ast.binop_to_string op)
        (fun fmt r -> pp_expr_prec fmt r prec_assign)
        r
  | Ast.Incr (Ast.PreIncr, a) ->
      fprintf fmt "++%a" (fun fmt a -> pp_expr_prec fmt a prec_unary) a
  | Ast.Incr (Ast.PreDecr, a) ->
      fprintf fmt "--%a" (fun fmt a -> pp_expr_prec fmt a prec_unary) a
  | Ast.Incr (Ast.PostIncr, a) ->
      fprintf fmt "%a++" (fun fmt a -> pp_expr_prec fmt a prec_postfix) a
  | Ast.Incr (Ast.PostDecr, a) ->
      fprintf fmt "%a--" (fun fmt a -> pp_expr_prec fmt a prec_postfix) a
  | Ast.Deref a ->
      fprintf fmt "*%a" (fun fmt a -> pp_expr_prec fmt a prec_unary) a
  | Ast.AddrOf a ->
      fprintf fmt "&%a" (fun fmt a -> pp_expr_prec fmt a prec_unary) a
  | Ast.Index (a, i) ->
      fprintf fmt "%a[%a]"
        (fun fmt a -> pp_expr_prec fmt a prec_postfix)
        a
        (fun fmt i -> pp_expr_prec fmt i 0)
        i
  | Ast.Field (a, f) ->
      fprintf fmt "%a.%s" (fun fmt a -> pp_expr_prec fmt a prec_postfix) a f
  | Ast.Arrow (a, f) ->
      fprintf fmt "%a->%s" (fun fmt a -> pp_expr_prec fmt a prec_postfix) a f
  | Ast.Call (f, args) -> pp_call fmt f args
  | Ast.RuntimeCall (f, args) -> pp_call fmt f args
  | Ast.Cast (ty, a) ->
      fprintf fmt "(%a)%a" pp_cast_ty ty
        (fun fmt a -> pp_expr_prec fmt a prec_unary)
        a
  | Ast.Cond (c, a, b) ->
      fprintf fmt "%a ? %a : %a"
        (fun fmt c -> pp_expr_prec fmt c (prec_cond + 1))
        c
        (fun fmt a -> pp_expr_prec fmt a prec_assign)
        a
        (fun fmt b -> pp_expr_prec fmt b prec_cond)
        b
  | Ast.Comma (a, b) ->
      fprintf fmt "%a, %a"
        (fun fmt a -> pp_expr_prec fmt a prec_assign)
        a
        (fun fmt b -> pp_expr_prec fmt b prec_comma)
        b
  | Ast.SizeofType ty -> fprintf fmt "sizeof(%a)" pp_cast_ty ty
  | Ast.SizeofExpr a ->
      fprintf fmt "sizeof %a" (fun fmt a -> pp_expr_prec fmt a prec_unary) a
  | Ast.KeepLive (a, Some b) ->
      fprintf fmt "KEEP_LIVE(%a, %a)"
        (fun fmt a -> pp_expr_prec fmt a prec_assign)
        a
        (fun fmt b -> pp_expr_prec fmt b prec_assign)
        b
  | Ast.KeepLive (a, None) ->
      fprintf fmt "KEEP_LIVE(%a)"
        (fun fmt a -> pp_expr_prec fmt a prec_assign)
        a

and pp_call fmt f args =
  fprintf fmt "%s(%a)" f
    (pp_print_list
       ~pp_sep:(fun fmt () -> pp_print_string fmt ", ")
       (fun fmt a -> pp_expr_prec fmt a prec_assign))
    args

let pp_expr fmt e = pp_expr_prec fmt e 0

let expr_to_string e = asprintf "%a" pp_expr e

let rec pp_stmt fmt (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Sexpr e -> fprintf fmt "@[<hv 2>%a;@]" pp_expr e
  | Ast.Sdecl d -> pp_decl fmt d
  | Ast.Sif (c, a, None) ->
      fprintf fmt "@[<v 2>if (%a)@ %a@]" pp_expr c pp_stmt a
  | Ast.Sif (c, a, Some b) ->
      fprintf fmt "@[<v 2>if (%a)@ %a@]@ @[<v 2>else@ %a@]" pp_expr c pp_stmt a
        pp_stmt b
  | Ast.Swhile (c, b) ->
      fprintf fmt "@[<v 2>while (%a)@ %a@]" pp_expr c pp_stmt b
  | Ast.Sdowhile (b, c) ->
      fprintf fmt "@[<v 2>do@ %a@]@ while (%a);" pp_stmt b pp_expr c
  | Ast.Sfor (init, cond, step, b) ->
      let pp_opt fmt = function
        | Some e -> pp_expr fmt e
        | None -> ()
      in
      fprintf fmt "@[<v 2>for (%a; %a; %a)@ %a@]" pp_opt init pp_opt cond
        pp_opt step pp_stmt b
  | Ast.Sreturn (Some e) -> fprintf fmt "return %a;" pp_expr e
  | Ast.Sreturn None -> fprintf fmt "return;"
  | Ast.Sbreak -> fprintf fmt "break;"
  | Ast.Scontinue -> fprintf fmt "continue;"
  | Ast.Sempty -> fprintf fmt ";"
  | Ast.Sblock ss ->
      fprintf fmt "@[<v 2>{@ %a@]@ }"
        (pp_print_list ~pp_sep:pp_print_space pp_stmt)
        ss

and pp_decl fmt (d : Ast.decl) =
  match d.d_init with
  | None -> fprintf fmt "%a;" pp_decl_ty (d.d_ty, d.d_name)
  | Some e -> fprintf fmt "%a = %a;" pp_decl_ty (d.d_ty, d.d_name) pp_expr e

let pp_func fmt (f : Ast.func) =
  let pp_params fmt = function
    | [] -> pp_print_string fmt "void"
    | ps ->
        pp_print_list
          ~pp_sep:(fun fmt () -> pp_print_string fmt ", ")
          (fun fmt (name, ty) -> pp_decl_ty fmt (ty, name))
          fmt ps
  in
  fprintf fmt "@[<v>%a(%a%s)@ %a@]"
    pp_decl_ty
    (f.Ast.f_ret, f.Ast.f_name)
    pp_params f.Ast.f_params
    (if f.Ast.f_varargs then ", ..." else "")
    pp_stmt f.Ast.f_body

let pp_global fmt = function
  | Ast.Gfunc f -> pp_func fmt f
  | Ast.Gvar d -> pp_decl fmt d
  | Ast.Gstruct (tag, is_union, fields) ->
      fprintf fmt "@[<v 2>%s %s {@ %a@]@ };"
        (if is_union then "union" else "struct")
        tag
        (pp_print_list ~pp_sep:pp_print_space (fun fmt (name, ty) ->
             fprintf fmt "%a;" pp_decl_ty (ty, name)))
        fields
  | Ast.Gproto (name, ret, params, varargs) ->
      fprintf fmt "%a(%a%s);" pp_decl_ty (ret, name)
        (pp_print_list
           ~pp_sep:(fun fmt () -> pp_print_string fmt ", ")
           (fun fmt (n, ty) -> pp_decl_ty fmt (ty, n)))
        params
        (if varargs then ", ..." else "")

let pp_program fmt (p : Ast.program) =
  fprintf fmt "@[<v>%a@]@."
    (pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt "@ @ ") pp_global)
    p.Ast.prog_globals

let program_to_string p = asprintf "%a" pp_program p

let stmt_to_string s = asprintf "@[<v>%a@]" pp_stmt s
