(** Tokens produced by the mini-C lexer. *)

type t =
  | INT_LIT of int
  | CHAR_LIT of char
  | STR_LIT of string
  | FLOAT_LIT of float
  | IDENT of string
  (* keywords *)
  | KW_VOID
  | KW_CHAR
  | KW_SHORT
  | KW_INT
  | KW_LONG
  | KW_FLOAT
  | KW_DOUBLE
  | KW_UNSIGNED
  | KW_SIGNED
  | KW_STRUCT
  | KW_UNION
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_FOR
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | KW_SIZEOF
  | KW_EXTERN
  | KW_STATIC
  | KW_CONST
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | DOT
  | ARROW
  | QUESTION
  | COLON
  | ELLIPSIS
  (* operators *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | BAR
  | CARET
  | TILDE
  | BANG
  | LT
  | GT
  | LE
  | GE
  | EQEQ
  | NE
  | ANDAND
  | OROR
  | SHL
  | SHR
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | SLASH_ASSIGN
  | PERCENT_ASSIGN
  | AMP_ASSIGN
  | BAR_ASSIGN
  | CARET_ASSIGN
  | SHL_ASSIGN
  | SHR_ASSIGN
  | PLUSPLUS
  | MINUSMINUS
  | EOF

let keyword_table =
  [
    ("void", KW_VOID);
    ("char", KW_CHAR);
    ("short", KW_SHORT);
    ("int", KW_INT);
    ("long", KW_LONG);
    ("float", KW_FLOAT);
    ("double", KW_DOUBLE);
    ("unsigned", KW_UNSIGNED);
    ("signed", KW_SIGNED);
    ("struct", KW_STRUCT);
    ("union", KW_UNION);
    ("if", KW_IF);
    ("else", KW_ELSE);
    ("while", KW_WHILE);
    ("do", KW_DO);
    ("for", KW_FOR);
    ("return", KW_RETURN);
    ("break", KW_BREAK);
    ("continue", KW_CONTINUE);
    ("sizeof", KW_SIZEOF);
    ("extern", KW_EXTERN);
    ("static", KW_STATIC);
    ("const", KW_CONST);
  ]

let to_string = function
  | INT_LIT n -> string_of_int n
  | CHAR_LIT c -> Printf.sprintf "%C" c
  | STR_LIT s -> Printf.sprintf "%S" s
  | FLOAT_LIT f -> string_of_float f
  | IDENT s -> s
  | KW_VOID -> "void"
  | KW_CHAR -> "char"
  | KW_SHORT -> "short"
  | KW_INT -> "int"
  | KW_LONG -> "long"
  | KW_FLOAT -> "float"
  | KW_DOUBLE -> "double"
  | KW_UNSIGNED -> "unsigned"
  | KW_SIGNED -> "signed"
  | KW_STRUCT -> "struct"
  | KW_UNION -> "union"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_DO -> "do"
  | KW_FOR -> "for"
  | KW_RETURN -> "return"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | KW_SIZEOF -> "sizeof"
  | KW_EXTERN -> "extern"
  | KW_STATIC -> "static"
  | KW_CONST -> "const"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | DOT -> "."
  | ARROW -> "->"
  | QUESTION -> "?"
  | COLON -> ":"
  | ELLIPSIS -> "..."
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMP -> "&"
  | BAR -> "|"
  | CARET -> "^"
  | TILDE -> "~"
  | BANG -> "!"
  | LT -> "<"
  | GT -> ">"
  | LE -> "<="
  | GE -> ">="
  | EQEQ -> "=="
  | NE -> "!="
  | ANDAND -> "&&"
  | OROR -> "||"
  | SHL -> "<<"
  | SHR -> ">>"
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+="
  | MINUS_ASSIGN -> "-="
  | STAR_ASSIGN -> "*="
  | SLASH_ASSIGN -> "/="
  | PERCENT_ASSIGN -> "%="
  | AMP_ASSIGN -> "&="
  | BAR_ASSIGN -> "|="
  | CARET_ASSIGN -> "^="
  | SHL_ASSIGN -> "<<="
  | SHR_ASSIGN -> ">>="
  | PLUSPLUS -> "++"
  | MINUSMINUS -> "--"
  | EOF -> "<eof>"
