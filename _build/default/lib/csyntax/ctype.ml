(** C types for the mini-C subset, with sizes and alignment.

    The model follows an LP64 machine (the paper's SPARC targets are ILP32,
    but nothing in the algorithm depends on the word size; we use 8-byte
    pointers so that the VM heap can be scanned with one word granularity).
    Struct and union layouts are resolved against a {!Env.t}, which maps
    struct tags to field lists; this mirrors the paper's preprocessor, which
    "parses and partially type-checks the source". *)

type t =
  | Void
  | Char
  | Short
  | Int
  | Long
  | Float
  | Double
  | Ptr of t
  | Array of t * int option  (** element type, optional length *)
  | Struct of string  (** by tag, layout resolved in the environment *)
  | Union of string
  | Func of t * t list * bool  (** return type, parameter types, varargs *)

type field = { fld_name : string; fld_ty : t; fld_offset : int }

type layout = {
  lay_tag : string;
  lay_union : bool;
  lay_fields : field list;
  lay_size : int;
  lay_align : int;
}

(** Struct/union layout environment. *)
module Env = struct
  type nonrec t = (string, layout) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let find (env : t) tag = Hashtbl.find_opt env tag

  let add (env : t) lay = Hashtbl.replace env lay.lay_tag lay
end

exception Incomplete of string

let rec size env = function
  | Void -> 1 (* gcc extension: sizeof(void) = 1, used for void* arithmetic *)
  | Char -> 1
  | Short -> 2
  | Int -> 4
  | Long | Ptr _ -> 8
  | Float -> 4
  | Double -> 8
  | Array (elt, Some n) -> n * size env elt
  | Array (_, None) -> raise (Incomplete "array of unknown length")
  | Struct tag | Union tag -> (
      match Env.find env tag with
      | Some lay -> lay.lay_size
      | None -> raise (Incomplete tag))
  | Func _ -> raise (Incomplete "function type")

let rec align env = function
  | Void | Char -> 1
  | Short -> 2
  | Int | Float -> 4
  | Long | Ptr _ | Double -> 8
  | Array (elt, _) -> align env elt
  | Struct tag | Union tag -> (
      match Env.find env tag with
      | Some lay -> lay.lay_align
      | None -> raise (Incomplete tag))
  | Func _ -> 1

let round_up n a = (n + a - 1) / a * a

(** Compute the layout of a struct or union from its field declarations. *)
let make_layout env ~union tag (fields : (string * t) list) : layout =
  let offset = ref 0 and max_align = ref 1 and max_size = ref 0 in
  let fld (name, ty) =
    let a = align env ty and s = size env ty in
    if a > !max_align then max_align := a;
    if union then begin
      if s > !max_size then max_size := s;
      { fld_name = name; fld_ty = ty; fld_offset = 0 }
    end
    else begin
      offset := round_up !offset a;
      let f = { fld_name = name; fld_ty = ty; fld_offset = !offset } in
      offset := !offset + s;
      f
    end
  in
  let lay_fields = List.map fld fields in
  let raw = if union then !max_size else !offset in
  let lay_size = max 1 (round_up raw !max_align) in
  { lay_tag = tag; lay_union = union; lay_fields; lay_size; lay_align = !max_align }

let find_field env ty name =
  match ty with
  | Struct tag | Union tag -> (
      match Env.find env tag with
      | None -> None
      | Some lay ->
          List.find_opt (fun f -> f.fld_name = name) lay.lay_fields)
  | Void | Char | Short | Int | Long | Float | Double | Ptr _ | Array _
  | Func _ ->
      None

let is_pointer = function Ptr _ -> true | _ -> false

let is_array = function Array _ -> true | _ -> false

let is_integer = function
  | Char | Short | Int | Long -> true
  | Void | Float | Double | Ptr _ | Array _ | Struct _ | Union _ | Func _ ->
      false

let is_arith = function
  | Char | Short | Int | Long | Float | Double -> true
  | Void | Ptr _ | Array _ | Struct _ | Union _ | Func _ -> false

let is_scalar ty = is_arith ty || is_pointer ty

let is_aggregate = function Struct _ | Union _ | Array _ -> true | _ -> false

(** [decay ty] converts array and function types to pointers, as happens to
    C expressions in r-value position. *)
let decay = function
  | Array (elt, _) -> Ptr elt
  | Func _ as f -> Ptr f
  | ty -> ty

(** Element type addressed by pointer arithmetic on [ty]. *)
let pointee = function
  | Ptr t -> Some t
  | Array (t, _) -> Some t
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Void, Void | Char, Char | Short, Short | Int, Int | Long, Long
  | Float, Float | Double, Double ->
      true
  | Ptr a, Ptr b -> equal a b
  | Array (a, n), Array (b, m) -> equal a b && n = m
  | Struct a, Struct b | Union a, Union b -> String.equal a b
  | Func (r1, p1, v1), Func (r2, p2, v2) ->
      v1 = v2 && equal r1 r2
      && List.length p1 = List.length p2
      && List.for_all2 equal p1 p2
  | ( ( Void | Char | Short | Int | Long | Float | Double | Ptr _ | Array _
      | Struct _ | Union _ | Func _ ),
      _ ) ->
      false

let rec pp fmt = function
  | Void -> Format.pp_print_string fmt "void"
  | Char -> Format.pp_print_string fmt "char"
  | Short -> Format.pp_print_string fmt "short"
  | Int -> Format.pp_print_string fmt "int"
  | Long -> Format.pp_print_string fmt "long"
  | Float -> Format.pp_print_string fmt "float"
  | Double -> Format.pp_print_string fmt "double"
  | Ptr t -> Format.fprintf fmt "%a *" pp t
  | Array (t, Some n) -> Format.fprintf fmt "%a [%d]" pp t n
  | Array (t, None) -> Format.fprintf fmt "%a []" pp t
  | Struct tag -> Format.fprintf fmt "struct %s" tag
  | Union tag -> Format.fprintf fmt "union %s" tag
  | Func (r, args, varargs) ->
      Format.fprintf fmt "%a (*)(%a%s)" pp r
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp)
        args
        (if varargs then ", ..." else "")

let to_string t = Format.asprintf "%a" pp t

(** [contains_pointer env ty] is true when an object of type [ty] may hold a
    pointer anywhere inside it.  Used by the source checker to flag
    pointer-hiding [memcpy]/[fread] calls. *)
let rec contains_pointer env = function
  | Ptr _ -> true
  | Array (elt, _) -> contains_pointer env elt
  | Struct tag | Union tag -> (
      match Env.find env tag with
      | None -> true (* unknown layout: be conservative *)
      | Some lay ->
          List.exists (fun f -> contains_pointer env f.fld_ty) lay.lay_fields)
  | Void | Char | Short | Int | Long | Float | Double | Func _ -> false
