(** Scoped symbol tables: a stack of scopes with innermost-out lookup,
    like C block scoping. *)

type 'a t

val create : unit -> 'a t

val enter_scope : 'a t -> unit

val exit_scope : 'a t -> unit
(** @raise Invalid_argument when only the outermost scope remains. *)

val add : 'a t -> string -> 'a -> unit
(** Bind in the innermost scope, shadowing any outer binding. *)

val find : 'a t -> string -> 'a option

val mem : 'a t -> string -> bool

val mem_innermost : 'a t -> string -> bool

val in_scope : 'a t -> (unit -> 'b) -> 'b
(** Run inside a fresh scope, restoring on exit even on exceptions. *)
