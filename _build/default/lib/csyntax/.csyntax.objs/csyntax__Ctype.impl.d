lib/csyntax/ctype.ml: Format Hashtbl List String
