lib/csyntax/builtins.ml: Ctype List Option
