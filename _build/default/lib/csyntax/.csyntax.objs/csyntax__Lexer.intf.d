lib/csyntax/lexer.mli: Loc Token
