lib/csyntax/parser.ml: Array Ast Buffer Ctype Lexer List Loc Printf String Token
