lib/csyntax/typecheck.ml: Ast Builtins Ctype Format Hashtbl List Loc Option Parser String Symtab
