lib/csyntax/lexer.ml: Array Buffer List Loc Printf Seq String Token
