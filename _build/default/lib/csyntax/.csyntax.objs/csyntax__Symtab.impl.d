lib/csyntax/symtab.ml: Fun Hashtbl Option
