lib/csyntax/ast.ml: Ctype List Loc Option
