lib/csyntax/pretty.ml: Ast Char Ctype Format List Printf Seq String
