lib/csyntax/symtab.mli:
