lib/csyntax/loc.ml: Format Int
