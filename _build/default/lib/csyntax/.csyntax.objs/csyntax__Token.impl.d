lib/csyntax/token.ml: Printf
