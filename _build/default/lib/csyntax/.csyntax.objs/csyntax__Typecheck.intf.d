lib/csyntax/typecheck.mli: Ast Ctype Hashtbl Loc Symtab
