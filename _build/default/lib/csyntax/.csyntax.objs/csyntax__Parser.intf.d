lib/csyntax/parser.mli: Ast Loc
