lib/csyntax/builtins.mli: Ctype
