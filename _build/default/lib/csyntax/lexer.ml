(** Hand-written lexer for the mini-C subset.

    Produces the full token stream with source locations in one pass.
    Comments (both styles) and whitespace are skipped; `# line` directives
    emitted by a C preprocessor are skipped as well, since the paper runs the
    transformation after macro expansion. *)

exception Error of string * Loc.t

type tok = { t : Token.t; loc : Loc.t; endpos : int }
(** [endpos] is the offset one past the token's last character, used by the
    source patcher to splice replacement text. *)

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of the beginning of the current line *)
}

let loc_of st =
  Loc.make ~line:st.line ~col:(st.pos - st.bol + 1) ~offset:st.pos

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | Some _ | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
      let start = loc_of st in
      advance st;
      advance st;
      let rec loop () =
        match peek st with
        | None -> raise (Error ("unterminated comment", start))
        | Some '*' when peek2 st = Some '/' ->
            advance st;
            advance st
        | Some _ ->
            advance st;
            loop ()
      in
      loop ();
      skip_trivia st
  | Some '#' when st.pos = st.bol ->
      (* line directive from cpp: skip the whole line *)
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_trivia st
  | Some _ | None -> ()

let read_escape st start =
  match peek st with
  | None -> raise (Error ("unterminated escape", start))
  | Some c ->
      advance st;
      (match c with
      | 'n' -> '\n'
      | 't' -> '\t'
      | 'r' -> '\r'
      | '0' -> '\000'
      | '\\' -> '\\'
      | '\'' -> '\''
      | '"' -> '"'
      | 'a' -> '\007'
      | 'b' -> '\b'
      | 'f' -> '\012'
      | 'v' -> '\011'
      | c -> raise (Error (Printf.sprintf "bad escape '\\%c'" c, start)))

let read_number st =
  let start = st.pos in
  let hex =
    peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X')
  in
  if hex then begin
    advance st;
    advance st;
    while
      match peek st with
      | Some c ->
          is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
      | None -> false
    do
      advance st
    done;
    Token.INT_LIT (int_of_string (String.sub st.src start (st.pos - start)))
  end
  else begin
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    let is_float =
      match (peek st, peek2 st) with
      | Some '.', Some c when is_digit c -> true
      | _ -> false
    in
    if is_float then begin
      advance st;
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done;
      Token.FLOAT_LIT (float_of_string (String.sub st.src start (st.pos - start)))
    end
    else begin
      (* swallow integer suffixes *)
      while
        match peek st with
        | Some ('l' | 'L' | 'u' | 'U') -> true
        | Some _ | None -> false
      do
        advance st
      done;
      let text = String.sub st.src start (st.pos - start) in
      let digits =
        String.to_seq text
        |> Seq.filter (fun c -> is_digit c)
        |> String.of_seq
      in
      Token.INT_LIT (int_of_string digits)
    end
  end

let next_token st : tok =
  skip_trivia st;
  let loc = loc_of st in
  let simple t =
    advance st;
    { t; loc; endpos = st.pos }
  in
  let two t =
    advance st;
    advance st;
    { t; loc; endpos = st.pos }
  in
  let three t =
    advance st;
    advance st;
    advance st;
    { t; loc; endpos = st.pos }
  in
  match peek st with
  | None -> { t = Token.EOF; loc; endpos = st.pos }
  | Some c when is_digit c ->
      let t = read_number st in
      { t; loc; endpos = st.pos }
  | Some c when is_ident_start c ->
      let start = st.pos in
      while (match peek st with Some c -> is_ident_char c | None -> false) do
        advance st
      done;
      let text = String.sub st.src start (st.pos - start) in
      let t =
        match List.assoc_opt text Token.keyword_table with
        | Some kw -> kw
        | None -> Token.IDENT text
      in
      { t; loc; endpos = st.pos }
  | Some '\'' ->
      advance st;
      let c =
        match peek st with
        | None -> raise (Error ("unterminated char literal", loc))
        | Some '\\' ->
            advance st;
            read_escape st loc
        | Some c ->
            advance st;
            c
      in
      (match peek st with
      | Some '\'' -> advance st
      | Some _ | None -> raise (Error ("unterminated char literal", loc)));
      { t = Token.CHAR_LIT c; loc; endpos = st.pos }
  | Some '"' ->
      advance st;
      let buf = Buffer.create 16 in
      let rec loop () =
        match peek st with
        | None -> raise (Error ("unterminated string literal", loc))
        | Some '"' -> advance st
        | Some '\\' ->
            advance st;
            Buffer.add_char buf (read_escape st loc);
            loop ()
        | Some c ->
            advance st;
            Buffer.add_char buf c;
            loop ()
      in
      loop ();
      { t = Token.STR_LIT (Buffer.contents buf); loc; endpos = st.pos }
  | Some c -> (
      let c2 = peek2 st in
      let c3 =
        if st.pos + 2 < String.length st.src then Some st.src.[st.pos + 2]
        else None
      in
      match (c, c2, c3) with
      | '.', Some '.', Some '.' -> three Token.ELLIPSIS
      | '<', Some '<', Some '=' -> three Token.SHL_ASSIGN
      | '>', Some '>', Some '=' -> three Token.SHR_ASSIGN
      | '-', Some '>', _ -> two Token.ARROW
      | '+', Some '+', _ -> two Token.PLUSPLUS
      | '-', Some '-', _ -> two Token.MINUSMINUS
      | '+', Some '=', _ -> two Token.PLUS_ASSIGN
      | '-', Some '=', _ -> two Token.MINUS_ASSIGN
      | '*', Some '=', _ -> two Token.STAR_ASSIGN
      | '/', Some '=', _ -> two Token.SLASH_ASSIGN
      | '%', Some '=', _ -> two Token.PERCENT_ASSIGN
      | '&', Some '=', _ -> two Token.AMP_ASSIGN
      | '|', Some '=', _ -> two Token.BAR_ASSIGN
      | '^', Some '=', _ -> two Token.CARET_ASSIGN
      | '&', Some '&', _ -> two Token.ANDAND
      | '|', Some '|', _ -> two Token.OROR
      | '<', Some '<', _ -> two Token.SHL
      | '>', Some '>', _ -> two Token.SHR
      | '<', Some '=', _ -> two Token.LE
      | '>', Some '=', _ -> two Token.GE
      | '=', Some '=', _ -> two Token.EQEQ
      | '!', Some '=', _ -> two Token.NE
      | '(', _, _ -> simple Token.LPAREN
      | ')', _, _ -> simple Token.RPAREN
      | '{', _, _ -> simple Token.LBRACE
      | '}', _, _ -> simple Token.RBRACE
      | '[', _, _ -> simple Token.LBRACKET
      | ']', _, _ -> simple Token.RBRACKET
      | ';', _, _ -> simple Token.SEMI
      | ',', _, _ -> simple Token.COMMA
      | '.', _, _ -> simple Token.DOT
      | '?', _, _ -> simple Token.QUESTION
      | ':', _, _ -> simple Token.COLON
      | '+', _, _ -> simple Token.PLUS
      | '-', _, _ -> simple Token.MINUS
      | '*', _, _ -> simple Token.STAR
      | '/', _, _ -> simple Token.SLASH
      | '%', _, _ -> simple Token.PERCENT
      | '&', _, _ -> simple Token.AMP
      | '|', _, _ -> simple Token.BAR
      | '^', _, _ -> simple Token.CARET
      | '~', _, _ -> simple Token.TILDE
      | '!', _, _ -> simple Token.BANG
      | '<', _, _ -> simple Token.LT
      | '>', _, _ -> simple Token.GT
      | '=', _, _ -> simple Token.ASSIGN
      | c, _, _ -> raise (Error (Printf.sprintf "unexpected character %C" c, loc)))

(** Tokenize the whole source string. *)
let tokenize (src : string) : tok array =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  let acc = ref [] in
  let rec loop () =
    let tok = next_token st in
    acc := tok :: !acc;
    if tok.t <> Token.EOF then loop ()
  in
  loop ();
  Array.of_list (List.rev !acc)
