(** The benchmark workload registry (the paper's measured programs). *)

type workload = {
  w_name : string;
  w_description : string;
  w_source : string;
  w_expected_prefix : string;  (** output sanity check *)
  w_checked_fails : bool;
      (** the paper's gawk: checking detects a real pointer bug *)
}

let cordtest =
  {
    w_name = Cord.name;
    w_description = Cord.description;
    w_source = Cord.source;
    w_expected_prefix = Cord.expected_prefix;
    w_checked_fails = false;
  }

let cfrac =
  {
    w_name = Cfrac.name;
    w_description = Cfrac.description;
    w_source = Cfrac.source;
    w_expected_prefix = Cfrac.expected_prefix;
    w_checked_fails = false;
  }

let gawk =
  {
    w_name = Gawk.name;
    w_description = Gawk.description;
    w_source = Gawk.source;
    w_expected_prefix = Gawk.expected_prefix;
    w_checked_fails = true;
  }

let gawk_fixed =
  {
    w_name = "gawk-fixed";
    w_description = "gawk with the paper's pointer-arithmetic fix applied";
    w_source = Gawk.source_fixed;
    w_expected_prefix = Gawk.expected_prefix;
    w_checked_fails = false;
  }

let gs =
  {
    w_name = Gs.name;
    w_description = Gs.description;
    w_source = Gs.source;
    w_expected_prefix = Gs.expected_prefix;
    w_checked_fails = false;
  }

(** The paper's table rows, in order. *)
let paper_suite = [ cordtest; cfrac; gawk; gs ]

let all = [ cordtest; cfrac; gawk; gawk_fixed; gs ]

let by_name name = List.find_opt (fun w -> w.w_name = name) all
