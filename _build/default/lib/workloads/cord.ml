(** cordtest: a cord (rope) string package and its test driver.

    The paper's cordtest runs "5 iterations of the test normally
    distributed with our 'cord' string package ... The string package and
    the test program were processed.  No part of the garbage collector
    itself was."  This is a faithful miniature: cords are balanced-ish
    binary concatenation trees over flat leaves, with substring, fetch,
    flatten, comparison and iteration — all pointer- and
    allocation-intensive, like the original. *)

let name = "cordtest"

let description = "cord (rope) string package test [Boehm]"

let source =
  {|
/* ---- cord package ---------------------------------------------- */
/* kind: 0 = leaf, 1 = concatenation */
struct cord {
  int kind;
  int len;
  char *leaf;
  struct cord *left;
  struct cord *right;
};

struct cord *cord_from_chars(char *s, int len) {
  struct cord *c = (struct cord *)malloc(sizeof(struct cord));
  char *copy = (char *)malloc(len + 1);
  int i;
  for (i = 0; i < len; i++) copy[i] = s[i];
  copy[len] = '\0';
  c->kind = 0;
  c->len = len;
  c->leaf = copy;
  c->left = 0;
  c->right = 0;
  return c;
}

struct cord *cord_cat(struct cord *a, struct cord *b) {
  struct cord *c;
  if (a == 0 || a->len == 0) return b;
  if (b == 0 || b->len == 0) return a;
  /* merge short leaves to keep the tree shallow */
  if (a->kind == 0 && b->kind == 0 && a->len + b->len <= 24) {
    char *merged = (char *)malloc(a->len + b->len + 1);
    char *p = merged;
    char *q = a->leaf;
    while (*q) *p++ = *q++;
    q = b->leaf;
    while (*q) *p++ = *q++;
    *p = '\0';
    c = (struct cord *)malloc(sizeof(struct cord));
    c->kind = 0;
    c->len = a->len + b->len;
    c->leaf = merged;
    c->left = 0;
    c->right = 0;
    return c;
  }
  c = (struct cord *)malloc(sizeof(struct cord));
  c->kind = 1;
  c->len = a->len + b->len;
  c->leaf = 0;
  c->left = a;
  c->right = b;
  return c;
}

int cord_len(struct cord *c) {
  if (c == 0) return 0;
  return c->len;
}

char cord_fetch(struct cord *c, int i) {
  while (c->kind == 1) {
    if (i < c->left->len) {
      c = c->left;
    } else {
      i -= c->left->len;
      c = c->right;
    }
  }
  return c->leaf[i];
}

struct cord *cord_substr(struct cord *c, int start, int n) {
  if (n <= 0) return 0;
  if (c == 0) return 0;
  if (c->kind == 0) {
    struct cord *r;
    if (start == 0 && n >= c->len) return c;
    if (start + n > c->len) n = c->len - start;
    r = cord_from_chars(c->leaf + start, n);
    return r;
  }
  if (start + n <= c->left->len)
    return cord_substr(c->left, start, n);
  if (start >= c->left->len)
    return cord_substr(c->right, start - c->left->len, n);
  return cord_cat(cord_substr(c->left, start, c->left->len - start),
                  cord_substr(c->right, 0, start + n - c->left->len));
}

void cord_flatten_into(struct cord *c, char *buf, int *pos) {
  if (c == 0) return;
  if (c->kind == 0) {
    char *p = c->leaf;
    char *q = buf + *pos;
    while (*p) *q++ = *p++;
    *pos += c->len;
    return;
  }
  cord_flatten_into(c->left, buf, pos);
  cord_flatten_into(c->right, buf, pos);
}

char *cord_to_string(struct cord *c) {
  int len = cord_len(c);
  char *buf = (char *)malloc(len + 1);
  int pos = 0;
  cord_flatten_into(c, buf, &pos);
  buf[len] = '\0';
  return buf;
}

int cord_cmp(struct cord *a, struct cord *b) {
  int la = cord_len(a);
  int lb = cord_len(b);
  int n = la < lb ? la : lb;
  int i;
  for (i = 0; i < n; i++) {
    char ca = cord_fetch(a, i);
    char cb = cord_fetch(b, i);
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  if (la == lb) return 0;
  return la < lb ? -1 : 1;
}

int cord_depth(struct cord *c) {
  int dl;
  int dr;
  if (c == 0 || c->kind == 0) return 0;
  dl = cord_depth(c->left);
  dr = cord_depth(c->right);
  return 1 + (dl > dr ? dl : dr);
}

/* last position of ch in c, or -1: right-to-left searching */
int cord_rindex(struct cord *c, char ch) {
  int i;
  for (i = cord_len(c) - 1; i >= 0; i--)
    if (cord_fetch(c, i) == ch) return i;
  return -1;
}

/* does c start with the C string s? */
int cord_startswith(struct cord *c, char *s) {
  int i = 0;
  if ((int)strlen(s) > cord_len(c)) return 0;
  while (s[i]) {
    if (cord_fetch(c, i) != s[i]) return 0;
    i++;
  }
  return 1;
}

/* character sum via an explicit traversal stack, no recursion — the
   iterator pattern of the real cord package */
long cord_char_sum(struct cord *c) {
  struct cord *stk[512];
  int top = 0;
  long sum = 0;
  if (c == 0) return 0;
  stk[top] = c;
  top++;
  while (top > 0) {
    struct cord *cur;
    top--;
    cur = stk[top];
    if (cur->kind == 0) {
      char *p = cur->leaf;
      while (*p) sum += *p++;
    } else {
      assert_true(top + 2 <= 512);
      stk[top] = cur->right;
      top++;
      stk[top] = cur->left;
      top++;
    }
  }
  return sum;
}

/* rebuild a deep cord into a balanced one via full flatten + split */
struct cord *cord_balance_range(char *flat, int start, int n) {
  int half;
  if (n <= 16) return cord_from_chars(flat + start, n);
  half = n / 2;
  return cord_cat(cord_balance_range(flat, start, half),
                  cord_balance_range(flat, start + half, n - half));
}

struct cord *cord_balance(struct cord *c) {
  char *flat = cord_to_string(c);
  return cord_balance_range(flat, 0, cord_len(c));
}

/* ---- test driver ------------------------------------------------ */

int checksum;

void check(int cond) {
  assert_true(cond);
  checksum++;
}

struct cord *build_test_cord(int n) {
  struct cord *c = 0;
  char word[16];
  int i;
  for (i = 0; i < n; i++) {
    int v = i % 26;
    word[0] = 'a' + v;
    word[1] = 'A' + v;
    word[2] = '0' + i % 10;
    word[3] = '\0';
    if (i % 2 == 0)
      c = cord_cat(c, cord_from_chars(word, 3));
    else
      c = cord_cat(cord_from_chars(word, 3), c);
  }
  return c;
}

void one_iteration(int n) {
  struct cord *c = build_test_cord(n);
  struct cord *b;
  struct cord *sub;
  char *flat;
  int i;
  long acc = 0;
  check(cord_len(c) == 3 * n);
  /* random fetches */
  for (i = 0; i < 2 * n; i++) {
    int pos = rand() % cord_len(c);
    acc += cord_fetch(c, pos);
  }
  check(acc > 0);
  /* substrings of substrings */
  sub = cord_substr(c, cord_len(c) / 4, cord_len(c) / 2);
  check(cord_len(sub) == cord_len(c) / 2);
  sub = cord_substr(sub, 8, cord_len(sub) - 16);
  /* balancing preserves contents */
  b = cord_balance(c);
  check(cord_len(b) == cord_len(c));
  check(cord_cmp(b, c) == 0);
  check(cord_depth(b) <= cord_depth(c) + 8);
  /* flatten and spot-check against fetch */
  flat = cord_to_string(c);
  for (i = 0; i < n; i++) {
    int pos = (i * 7) % cord_len(c);
    check(flat[pos] == cord_fetch(c, pos));
  }
  /* concatenation is associative on contents */
  check(cord_cmp(cord_cat(cord_cat(c, sub), b),
                 cord_cat(c, cord_cat(sub, b))) == 0);
  /* the iterative character sum agrees with fetch-by-fetch summing */
  {
    long s1 = cord_char_sum(c);
    long s2 = 0;
    for (i = 0; i < cord_len(c); i++) s2 += cord_fetch(c, i);
    check(s1 == s2);
  }
  /* searching: the last digit character and a prefix probe */
  {
    int pos = cord_rindex(c, '5');
    if (pos >= 0) check(cord_fetch(c, pos) == '5');
    check(cord_rindex(c, '~') == -1);
    check(cord_startswith(c, "") == 1);
  }
}

int main(void) {
  int iter;
  srand(12345);
  checksum = 0;
  for (iter = 0; iter < 5; iter++) {
    one_iteration(120 + 10 * iter);
  }
  printf("cordtest: %d checks passed\n", checksum);
  return 0;
}
|}

(** The driver prints this on success (the checks are data-dependent, so
    the count is fixed by the deterministic rand seed). *)
let expected_prefix = "cordtest: "
