(** gawk: a miniature field/record text interpreter.

    The paper's gawk run is the key anecdote of the evaluation: "With
    checking enabled, it immediately and correctly detected a pointer
    arithmetic error which was also an array access error.  After fixing
    that and uncovering two more abuses of pointer arithmetic we gave up."

    This miniature processes generated text records awk-style — split into
    fields, numeric accumulation, word counting via chained hash buckets —
    and contains the same class of bug the paper found: a 1-origin field
    array represented as a pointer to one element before the beginning of a
    heap array ("a common bug (sometimes referred to incorrectly as a
    'technique')").  Unchecked builds run correctly; the checked build
    detects the computation of the one-before pointer on the first record.

    [source_fixed] is the same program with the paper's fix applied, so the
    checked configuration can also be measured. *)

let name = "gawk"

let description = "field/record text interpreter with 1-origin field bug [Zorn]"

let template ~bug =
  let fields_init =
    if bug then
      {|  /* 1-origin field vector: classic one-before-the-array bug.  The
     real allocation stays reachable through fields_base (as in the
     original program), so unchecked builds run "correctly"; the checked
     build flags the one-before-the-object arithmetic immediately. */
  fields_base = (char **)malloc(MAXFIELDS * sizeof(char *));
  fields = fields_base - 1;|}
    else
      {|  /* 1-origin field vector, done legally: waste slot 0 */
  fields = (char **)malloc((MAXFIELDS + 1) * sizeof(char *));|}
  in
  Printf.sprintf
    {|
int MAXFIELDS;

/* ---- input generation (no file I/O in the VM) -------------------- */
char *gen_input(int lines) {
  char *buf = (char *)malloc(lines * 40 + 1);
  char *p = buf;
  int i;
  int w;
  for (i = 0; i < lines; i++) {
    int words = 2 + i %% 5;
    for (w = 0; w < words; w++) {
      if (w > 0) *p++ = ' ';
      if ((i + w) %% 3 == 0) {
        /* a number field */
        int v = (i * 7 + w * 13) %% 1000;
        if (v >= 100) *p++ = '0' + v / 100;
        if (v >= 10) *p++ = '0' + v / 10 %% 10;
        *p++ = '0' + v %% 10;
      } else {
        /* a word field */
        int len = 3 + (i + w) %% 5;
        int k;
        for (k = 0; k < len; k++) *p++ = 'a' + (i + w + k) %% 26;
      }
    }
    *p++ = '\n';
  }
  *p = '\0';
  return buf;
}

/* ---- word-count table (chained buckets) -------------------------- */
struct bucket {
  char *word;
  long count;
  struct bucket *next;
};

struct bucket *table[64];

long hash_str(char *s) {
  long h = 5381;
  while (*s) {
    h = h * 33 + *s;
    s++;
  }
  if (h < 0) h = -h;
  return h;
}

void count_word(char *w) {
  long h = hash_str(w) %% 64;
  struct bucket *b = table[h];
  while (b) {
    if (strcmp(b->word, w) == 0) {
      b->count++;
      return;
    }
    b = b->next;
  }
  b = (struct bucket *)malloc(sizeof(struct bucket));
  b->word = (char *)malloc(strlen(w) + 1);
  strcpy(b->word, w);
  b->count = 1;
  b->next = table[h];
  table[h] = b;
}

/* ---- record processing ------------------------------------------- */
char **fields_base;
char **fields;

int is_number(char *s) {
  if (*s == '\0') return 0;
  while (*s) {
    if (*s < '0' || *s > '9') return 0;
    s++;
  }
  return 1;
}

long to_number(char *s) {
  long v = 0;
  while (*s) {
    v = v * 10 + (*s - '0');
    s++;
  }
  return v;
}

/* split line (NUL-terminated, whitespace separated) into fields[1..nf];
   returns nf.  Fields are freshly allocated strings. */
int split_record(char *line) {
  int nf = 0;
  char *p = line;
  while (*p) {
    char *start;
    int len;
    char *copy;
    while (*p == ' ') p++;
    if (*p == '\0') break;
    start = p;
    while (*p && *p != ' ') p++;
    len = (int)(p - start);
    copy = (char *)malloc(len + 1);
    {
      int k;
      for (k = 0; k < len; k++) copy[k] = start[k];
      copy[len] = '\0';
    }
    nf++;
    fields[nf] = copy;
  }
  return nf;
}

int main(void) {
  char *input;
  char *line;
  long sum = 0;
  long numbers = 0;
  long words = 0;
  long maxval = 0;
  long records = 0;
  int i;
  MAXFIELDS = 16;
%s
  input = gen_input(400);
  line = input;
  while (*line) {
    /* extract one line into a buffer */
    char *eol = line;
    int len;
    char *rec;
    int nf;
    while (*eol && *eol != '\n') eol++;
    len = (int)(eol - line);
    rec = (char *)malloc(len + 1);
    {
      int k;
      for (k = 0; k < len; k++) rec[k] = line[k];
      rec[len] = '\0';
    }
    nf = split_record(rec);
    records++;
    for (i = 1; i <= nf; i++) {
      if (is_number(fields[i])) {
        long v = to_number(fields[i]);
        sum += v;
        numbers++;
        if (v > maxval) maxval = v;
      } else {
        words++;
        count_word(fields[i]);
      }
    }
    if (*eol == '\n') line = eol + 1; else line = eol;
  }
  /* table statistics */
  {
    long distinct = 0;
    long occurrences = 0;
    for (i = 0; i < 64; i++) {
      struct bucket *b = table[i];
      while (b) {
        distinct++;
        occurrences += b->count;
        b = b->next;
      }
    }
    printf("records=%%ld numbers=%%ld sum=%%ld max=%%ld\n", records, numbers,
           sum, maxval);
    printf("words=%%ld distinct=%%ld\n", words, distinct);
    assert_true(occurrences == words);
    /* the most frequent word and the longest word, awk-report style */
    {
      struct bucket *best = 0;
      long longest = 0;
      for (i = 0; i < 64; i++) {
        struct bucket *b = table[i];
        while (b) {
          if (best == 0 || b->count > best->count
              || (b->count == best->count && strcmp(b->word, best->word) < 0))
            best = b;
          if ((long)strlen(b->word) > longest) longest = (long)strlen(b->word);
          b = b->next;
        }
      }
      if (best)
        printf("top=%%s count=%%ld longest=%%ld\n", best->word, best->count,
               longest);
    }
  }
  return 0;
}
|}
    fields_init

let source = template ~bug:true

(** The paper's fix applied ("After fixing that..."). *)
let source_fixed = template ~bug:false

let expected_prefix = "records="
