lib/workloads/cfrac.ml:
