lib/workloads/gs.ml:
