lib/workloads/cord.ml:
