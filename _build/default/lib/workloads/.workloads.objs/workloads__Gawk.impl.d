lib/workloads/gawk.ml: Printf
