lib/workloads/registry.ml: Cfrac Cord Gawk Gs List
