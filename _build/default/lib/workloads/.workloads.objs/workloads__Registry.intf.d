lib/workloads/registry.mli:
