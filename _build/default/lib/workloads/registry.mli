(** The benchmark workload registry (the paper's measured programs). *)

type workload = {
  w_name : string;
  w_description : string;
  w_source : string;
  w_expected_prefix : string;  (** output sanity check *)
  w_checked_fails : bool;
      (** the paper's gawk: checking detects a real pointer bug *)
}

val cordtest : workload

val cfrac : workload

val gawk : workload
(** As shipped: contains the one-before-the-array 1-origin field bug. *)

val gawk_fixed : workload
(** The paper's fix applied; check-clean. *)

val gs : workload

val paper_suite : workload list
(** The paper's table rows, in order: cordtest, cfrac, gawk, gs. *)

val all : workload list

val by_name : string -> workload option
