(** gs: a PostScript-flavoured stack-machine interpreter.

    The paper's gs is Ghostscript from the Zorn suite, run with its custom
    allocator disabled and linked with the collector.  "No pointer
    arithmetic errors were found.  This is probably due to a combination of
    an unusually clean coding style and the fact that most heap objects
    have prepended standard headers.  Thus a pointer to one before the body
    of the object would not be discovered."

    This miniature keeps those properties: every heap value is a tagged
    object whose header (type and length) is prepended to the body, all
    object pointers address the header, and the interpreter is written in a
    clean discriminated-union style — so the checked build finds nothing.

    The interpreter executes a token program (an embedded "page
    description") over an operand stack and a dictionary: integer and
    string values, arithmetic, stack shuffles, string concatenation, named
    definitions, loops, and a raster "page" painted span by span whose
    checksum is the output. *)

let name = "gs"

let description = "stack-machine interpreter with prepended headers [Zorn gs]"

let source =
  {|
/* ---- objects: prepended standard headers -------------------------- */
/* type: 1 = int, 2 = string, 3 = name, 4 = procedure, 5 = array */
struct obj {
  int type;     /* header word 1 */
  int len;      /* header word 2 */
  long ival;
  char *sval;
  struct obj **aval;
};

struct obj *mk_int(long v) {
  struct obj *o = (struct obj *)malloc(sizeof(struct obj));
  o->type = 1;
  o->len = 0;
  o->ival = v;
  o->sval = 0;
  o->aval = 0;
  return o;
}

/* a procedure value: offset and length into the token stream */
struct obj *mk_proc(long off, int len) {
  struct obj *o = (struct obj *)malloc(sizeof(struct obj));
  o->type = 4;
  o->len = len;
  o->ival = off;
  o->sval = 0;
  o->aval = 0;
  return o;
}

struct obj *mk_array(int n) {
  struct obj *o = (struct obj *)malloc(sizeof(struct obj));
  int i;
  o->type = 5;
  o->len = n;
  o->ival = 0;
  o->sval = 0;
  o->aval = (struct obj **)malloc(n * sizeof(struct obj *));
  for (i = 0; i < n; i++) o->aval[i] = 0;
  return o;
}

struct obj *mk_str(char *s) {
  struct obj *o = (struct obj *)malloc(sizeof(struct obj));
  o->type = 2;
  o->len = (int)strlen(s);
  o->ival = 0;
  o->sval = (char *)malloc(o->len + 1);
  strcpy(o->sval, s);
  return o;
}

struct obj *mk_name(char *s) {
  struct obj *o = mk_str(s);
  o->type = 3;
  return o;
}

/* ---- operand stack ------------------------------------------------ */
struct obj *stack[256];
int sp;

void push(struct obj *o) {
  assert_true(sp < 256);
  stack[sp] = o;
  sp++;
}

struct obj *pop(void) {
  assert_true(sp > 0);
  sp--;
  return stack[sp];
}

long pop_int(void) {
  struct obj *o = pop();
  assert_true(o->type == 1);
  return o->ival;
}

/* ---- dictionary ---------------------------------------------------- */
struct dictent {
  char *key;
  struct obj *value;
  struct dictent *next;
};

struct dictent *dict;

void dict_def(char *key, struct obj *value) {
  struct dictent *e = dict;
  while (e) {
    if (strcmp(e->key, key) == 0) {
      e->value = value;
      return;
    }
    e = e->next;
  }
  e = (struct dictent *)malloc(sizeof(struct dictent));
  e->key = (char *)malloc(strlen(key) + 1);
  strcpy(e->key, key);
  e->value = value;
  e->next = dict;
  dict = e;
}

struct obj *dict_load(char *key) {
  struct dictent *e = dict;
  while (e) {
    if (strcmp(e->key, key) == 0) return e->value;
    e = e->next;
  }
  return 0;
}

/* ---- the page raster ----------------------------------------------- */
int PAGE_W;
int PAGE_H;
char *page;

void page_init(void) {
  int n = PAGE_W * PAGE_H;
  int i;
  page = (char *)malloc(n);
  for (i = 0; i < n; i++) page[i] = 0;
}

/* paint a horizontal span with a gray level */
void page_span(int x0, int x1, int y, int gray) {
  char *row;
  int x;
  if (y < 0 || y >= PAGE_H) return;
  if (x0 < 0) x0 = 0;
  if (x1 > PAGE_W) x1 = PAGE_W;
  row = page + y * PAGE_W;
  for (x = x0; x < x1; x++) row[x] = (char)gray;
}

long page_checksum(void) {
  long sum = 0;
  int i;
  int n = PAGE_W * PAGE_H;
  for (i = 0; i < n; i++) sum = sum * 31 + page[i] & 0xffffff;
  return sum;
}

/* ---- the token machine --------------------------------------------- */
/* opcodes: 1 pushint(arg) 2 pushstr(strtab arg) 3 pushname(strtab arg)
   4 add 5 sub 6 mul 7 div 8 dup 9 exch 10 pop 11 def 12 load
   13 concat 14 length 15 span 16 repeat{...}(arg = body length)
   17 showpage 18 index(arg) 19 mod
   20 if{...}(arg = body length)  21 ifelse{...}{...}(args = two lengths)
   22 pushproc(arg = body length; body follows inline)
   23 exec  24 mkarray  25 aput  26 aget  27 gt  28 eq  0 end */

int *program_base;   /* procedure offsets are absolute into this array */

long run_program(int *code, int ncode, char **strtab) {
  int pc = 0;
  long shown = 0;
  while (pc < ncode) {
    int op = code[pc];
    pc++;
    if (op == 0) break;
    if (op == 1) {
      push(mk_int(code[pc]));
      pc++;
    } else if (op == 2) {
      push(mk_str(strtab[code[pc]]));
      pc++;
    } else if (op == 3) {
      push(mk_name(strtab[code[pc]]));
      pc++;
    } else if (op == 4) {
      long b = pop_int();
      long a = pop_int();
      push(mk_int(a + b));
    } else if (op == 5) {
      long b = pop_int();
      long a = pop_int();
      push(mk_int(a - b));
    } else if (op == 6) {
      long b = pop_int();
      long a = pop_int();
      push(mk_int(a * b));
    } else if (op == 7) {
      long b = pop_int();
      long a = pop_int();
      assert_true(b != 0);
      push(mk_int(a / b));
    } else if (op == 19) {
      long b = pop_int();
      long a = pop_int();
      assert_true(b != 0);
      push(mk_int(a % b));
    } else if (op == 8) {
      struct obj *o = pop();
      push(o);
      push(o);
    } else if (op == 9) {
      struct obj *b = pop();
      struct obj *a = pop();
      push(b);
      push(a);
    } else if (op == 10) {
      pop();
    } else if (op == 11) {
      struct obj *v = pop();
      struct obj *k = pop();
      assert_true(k->type == 3);
      dict_def(k->sval, v);
    } else if (op == 12) {
      struct obj *k = pop();
      struct obj *v;
      assert_true(k->type == 3);
      v = dict_load(k->sval);
      assert_true(v != 0);
      push(v);
    } else if (op == 13) {
      struct obj *b = pop();
      struct obj *a = pop();
      char *s;
      assert_true(a->type == 2 && b->type == 2);
      s = (char *)malloc(a->len + b->len + 1);
      strcpy(s, a->sval);
      strcat(s, b->sval);
      push(mk_str(s));
    } else if (op == 14) {
      struct obj *o = pop();
      assert_true(o->type == 2 || o->type == 3);
      push(mk_int(o->len));
    } else if (op == 15) {
      long gray = pop_int();
      long y = pop_int();
      long x1 = pop_int();
      long x0 = pop_int();
      page_span((int)x0, (int)x1, (int)y, (int)gray);
    } else if (op == 16) {
      long body = code[pc];
      long count = pop_int();
      long k;
      pc++;
      for (k = 0; k < count; k++) {
        long inner = run_program(code + pc, (int)body, strtab);
        shown += inner;
        /* the loop body may leave an index on the stack for the next
           iteration; push the iteration count convention instead */
      }
      pc += (int)body;
    } else if (op == 17) {
      shown++;
      printf("showpage %ld checksum=%ld\n", shown, page_checksum());
    } else if (op == 18) {
      int depth = code[pc];
      pc++;
      assert_true(sp > depth);
      push(stack[sp - 1 - depth]);
    } else if (op == 20) {
      long body = code[pc];
      long cond;
      pc++;
      cond = pop_int();
      if (cond) shown += run_program(code + pc, (int)body, strtab);
      pc += (int)body;
    } else if (op == 21) {
      long then_len = code[pc];
      long else_len = code[pc + 1];
      long cond;
      pc += 2;
      cond = pop_int();
      if (cond) shown += run_program(code + pc, (int)then_len, strtab);
      else shown += run_program(code + pc + (int)then_len, (int)else_len, strtab);
      pc += (int)(then_len + else_len);
    } else if (op == 22) {
      long body = code[pc];
      pc++;
      /* the procedure body starts right here; record its absolute offset */
      push(mk_proc((long)(code + pc - program_base), (int)body));
      pc += (int)body;
    } else if (op == 23) {
      struct obj *o = pop();
      assert_true(o->type == 4);
      shown += run_program(program_base + o->ival, o->len, strtab);
    } else if (op == 24) {
      long n = pop_int();
      push(mk_array((int)n));
    } else if (op == 25) {
      struct obj *v = pop();
      long idx = pop_int();
      struct obj *a = pop();
      assert_true(a->type == 5 && idx >= 0 && idx < a->len);
      a->aval[idx] = v;
      push(a);
    } else if (op == 26) {
      long idx = pop_int();
      struct obj *a = pop();
      assert_true(a->type == 5 && idx >= 0 && idx < a->len);
      assert_true(a->aval[idx] != 0);
      push(a->aval[idx]);
    } else if (op == 27) {
      long b = pop_int();
      long a = pop_int();
      push(mk_int(a > b ? 1 : 0));
    } else if (op == 28) {
      long b = pop_int();
      long a = pop_int();
      push(mk_int(a == b ? 1 : 0));
    } else {
      assert_true(0);
    }
  }
  return shown;
}

/* the embedded "document": a defined procedure paints gradient bands
   (even/odd rows take different gray ramps via ifelse), an array object
   is built and summed, and showpage fires only when the sum checks out */
int doc[512];
int ndoc;
char *strtab[8];

void emit(int op) { doc[ndoc] = op; ndoc++; }

void build_document(void) {
  ndoc = 0;
  /* /title (mini) (gs) concat def */
  emit(3); emit(0);
  emit(2); emit(1);
  emit(2); emit(2);
  emit(13);
  emit(11);
  /* /row { y -- } def: paint row y, gray ramp chosen by parity */
  emit(3); emit(4);          /* /row */
  emit(22); emit(27);        /* pushproc, 27-word body */
  /*   [y] -> [0 64 y] */
  emit(1); emit(0);
  emit(9);
  emit(1); emit(64);
  emit(9);
  /*   [0 64 y] -> [0 64 y y (y mod 2)] */
  emit(8);
  emit(8);
  emit(1); emit(2);
  emit(19);
  /*   parity selects the ramp: gray = y*3 mod 251 or y*5 mod 251 */
  emit(21); emit(6); emit(6); /* ifelse, both branches 6 words */
  emit(1); emit(3);
  emit(6);
  emit(1); emit(251);
  emit(19);
  emit(1); emit(5);
  emit(6);
  emit(1); emit(251);
  emit(19);
  /*   [0 64 y gray] -> span */
  emit(15);
  emit(11);                  /* def */
  /* /y0 4 def */
  emit(3); emit(3);
  emit(1); emit(4);
  emit(11);
  /* 40 { y0 row-exec; y0 = y0 + 1 } repeat */
  emit(1); emit(40);
  emit(16); emit(16);        /* repeat, 16-word body */
  emit(3); emit(3);          /* /y0 */
  emit(12);                  /* load -> y */
  emit(3); emit(4);          /* /row */
  emit(12);                  /* load -> proc */
  emit(23);                  /* exec: consumes y, paints */
  emit(3); emit(3);          /* /y0 (key) */
  emit(3); emit(3);
  emit(12);                  /* load -> y */
  emit(1); emit(1);
  emit(4);                   /* y + 1 */
  emit(11);                  /* def */
  /* /tbl [11 22 33 44] def, via mkarray/aput */
  emit(1); emit(4);
  emit(24);                  /* mkarray -> [arr] */
  emit(1); emit(0); emit(1); emit(11); emit(25);
  emit(1); emit(1); emit(1); emit(22); emit(25);
  emit(1); emit(2); emit(1); emit(33); emit(25);
  emit(1); emit(3); emit(1); emit(44); emit(25);
  emit(3); emit(5);          /* /tbl */
  emit(9);                   /* [name arr] */
  emit(11);                  /* def */
  /* sum = tbl[0]+tbl[1]+tbl[2]+tbl[3]; showpage only if sum == 110 */
  emit(3); emit(5); emit(12); emit(1); emit(0); emit(26);
  emit(3); emit(5); emit(12); emit(1); emit(1); emit(26);
  emit(4);
  emit(3); emit(5); emit(12); emit(1); emit(2); emit(26);
  emit(4);
  emit(3); emit(5); emit(12); emit(1); emit(3); emit(26);
  emit(4);
  emit(1); emit(110);
  emit(28);                  /* eq */
  emit(20); emit(1);         /* if, 1-word body */
  emit(17);                  /* showpage */
  /* title length sanity: 6 characters -> drop */
  emit(3); emit(0);
  emit(12);
  emit(14);
  emit(1); emit(6);
  emit(28);
  emit(20); emit(1);
  emit(17);                  /* a second page iff the title length checks */
  emit(0);
}

int main(void) {
  int pass;
  PAGE_W = 64;
  PAGE_H = 64;
  strtab[0] = "title";
  strtab[1] = "mini";
  strtab[2] = "gs";
  strtab[3] = "y0";
  strtab[4] = "row";
  strtab[5] = "tbl";
  sp = 0;
  dict = 0;
  program_base = doc;
  for (pass = 0; pass < 6; pass++) {
    page_init();
    build_document();
    run_program(doc, ndoc, strtab);
  }
  printf("gs: done, stack depth %d\n", sp);
  return 0;
}
|}

let expected_prefix = "showpage"
