(** cfrac: continued-fraction factoring over a small arbitrary-precision
    integer layer.

    The paper's cfrac is "a factoring program ... the smallest member (6000
    lines) of Ben Zorn's benchmark collection", whose defining trait is a
    torrent of small short-lived number objects — arbitrary-precision
    integers allocated per operation.  This miniature keeps that trait end
    to end: a heap bignum type (little-endian base-10000 digit arrays) with
    add/sub/mul/div-small/cmp/to-string, the classic CFRAC recurrences for
    the continued fraction of sqrt(N), trial division running on the
    bignum representation, a Pollard-rho fallback on boxed longs, and a
    final verification that multiplies the found factors back together in
    bignum arithmetic.  Like the paper's run, no custom allocator is used:
    every intermediate number is a fresh heap object for the collector. *)

let name = "cfrac"

let description =
  "continued-fraction factoring over heap bignums [Zorn cfrac]"

let source =
  {|
/* ================= arbitrary-precision naturals ==================== */
/* little-endian digit arrays, base 10000; every operation allocates */

int BIG_BASE;

struct big {
  int len;
  int *d;
};

struct big *big_make(int len) {
  struct big *b = (struct big *)malloc(sizeof(struct big));
  int i;
  b->len = len;
  b->d = (int *)malloc(len * sizeof(int));
  for (i = 0; i < len; i++) b->d[i] = 0;
  return b;
}

struct big *big_trim(struct big *b) {
  while (b->len > 1 && b->d[b->len - 1] == 0) b->len--;
  return b;
}

struct big *big_from_long(long v) {
  struct big *b = big_make(6);
  int i = 0;
  if (v == 0) { b->len = 1; return b; }
  while (v > 0) {
    b->d[i] = (int)(v % BIG_BASE);
    v /= BIG_BASE;
    i++;
  }
  b->len = i;
  return b;
}

long big_to_long(struct big *b) {
  long v = 0;
  int i;
  for (i = b->len - 1; i >= 0; i--) v = v * BIG_BASE + b->d[i];
  return v;
}

int big_is_zero(struct big *b) { return b->len == 1 && b->d[0] == 0; }

int big_cmp(struct big *a, struct big *b) {
  int i;
  if (a->len != b->len) return a->len < b->len ? -1 : 1;
  for (i = a->len - 1; i >= 0; i--)
    if (a->d[i] != b->d[i]) return a->d[i] < b->d[i] ? -1 : 1;
  return 0;
}

struct big *big_add(struct big *a, struct big *b) {
  int n = (a->len > b->len ? a->len : b->len) + 1;
  struct big *r = big_make(n);
  int carry = 0;
  int i;
  for (i = 0; i < n; i++) {
    int s = carry;
    if (i < a->len) s += a->d[i];
    if (i < b->len) s += b->d[i];
    r->d[i] = s % BIG_BASE;
    carry = s / BIG_BASE;
  }
  return big_trim(r);
}

/* a - b, assuming a >= b */
struct big *big_sub(struct big *a, struct big *b) {
  struct big *r = big_make(a->len);
  int borrow = 0;
  int i;
  for (i = 0; i < a->len; i++) {
    int s = a->d[i] - borrow - (i < b->len ? b->d[i] : 0);
    if (s < 0) { s += BIG_BASE; borrow = 1; } else borrow = 0;
    r->d[i] = s;
  }
  assert_true(borrow == 0);
  return big_trim(r);
}

struct big *big_mul_small(struct big *a, long m) {
  struct big *r = big_make(a->len + 3);
  long carry = 0;
  int i;
  for (i = 0; i < a->len; i++) {
    long s = a->d[i] * m + carry;
    r->d[i] = (int)(s % BIG_BASE);
    carry = s / BIG_BASE;
  }
  i = a->len;
  while (carry > 0) {
    r->d[i] = (int)(carry % BIG_BASE);
    carry /= BIG_BASE;
    i++;
  }
  return big_trim(r);
}

struct big *big_mul(struct big *a, struct big *b) {
  struct big *r = big_make(a->len + b->len + 1);
  int i;
  int j;
  for (i = 0; i < a->len; i++) {
    long carry = 0;
    for (j = 0; j < b->len; j++) {
      long s = r->d[i + j] + (long)a->d[i] * b->d[j] + carry;
      r->d[i + j] = (int)(s % BIG_BASE);
      carry = s / BIG_BASE;
    }
    j = i + b->len;
    while (carry > 0) {
      long s = r->d[j] + carry;
      r->d[j] = (int)(s % BIG_BASE);
      carry = s / BIG_BASE;
      j++;
    }
  }
  return big_trim(r);
}

/* quotient by a small divisor; remainder through *rem */
struct big *big_div_small(struct big *a, long m, long *rem) {
  struct big *q = big_make(a->len);
  long r = 0;
  int i;
  for (i = a->len - 1; i >= 0; i--) {
    long cur = r * BIG_BASE + a->d[i];
    q->d[i] = (int)(cur / m);
    r = cur % m;
  }
  *rem = r;
  return big_trim(q);
}

/* decimal rendering (allocates the digit string twice over) */
char *big_to_string(struct big *b) {
  char *buf = (char *)malloc(b->len * 5 + 2);
  char *p = buf;
  struct big *cur = b;
  char *rev;
  int n = 0;
  int i;
  if (big_is_zero(b)) { buf[0] = '0'; buf[1] = '\0'; return buf; }
  while (!big_is_zero(cur)) {
    long digit;
    cur = big_div_small(cur, 10, &digit);
    *p++ = (char)('0' + digit);
    n++;
  }
  rev = (char *)malloc(n + 1);
  for (i = 0; i < n; i++) rev[i] = buf[n - 1 - i];
  rev[n] = '\0';
  return rev;
}

/* ================= boxed longs for the inner loops ================== */
struct num { long v; };

struct num *box(long v) {
  struct num *n = (struct num *)malloc(sizeof(struct num));
  n->v = v;
  return n;
}

struct num *nadd(struct num *a, struct num *b) { return box(a->v + b->v); }
struct num *nsub(struct num *a, struct num *b) { return box(a->v - b->v); }
struct num *nmul(struct num *a, struct num *b) { return box(a->v * b->v); }
struct num *ndiv(struct num *a, struct num *b) { return box(a->v / b->v); }
struct num *nmod(struct num *a, struct num *b) { return box(a->v % b->v); }

struct num *nmulmod(struct num *a, struct num *b, struct num *m) {
  return box(a->v * b->v % m->v);
}

struct num *ngcd(struct num *a, struct num *b) {
  struct num *x = box(a->v < 0 ? -a->v : a->v);
  struct num *y = box(b->v < 0 ? -b->v : b->v);
  while (y->v != 0) {
    struct num *t = nmod(x, y);
    x = y;
    y = t;
  }
  return x;
}

struct num *nsqrt(struct num *n) {
  long x = n->v;
  long r = 0;
  long bit = 1;
  while (bit * bit <= x && bit < 2000000000) bit *= 2;
  while (bit >= 1) {
    if ((r + bit) * (r + bit) <= x) r += bit;
    bit /= 2;
    if (bit == 0) break;
  }
  return box(r);
}

/* ========== continued fraction expansion of sqrt(N) ================= */
/* the CFRAC engine: m, d, a recurrences with convergent numerators mod N;
   everything boxed, ~10 allocations per term */
struct cf_state {
  struct num *n;
  struct num *a0;
  struct num *m;
  struct num *d;
  struct num *a;
  struct num *p_prev;
  struct num *p_cur;
};

struct cf_state *cf_start(long n) {
  struct cf_state *s = (struct cf_state *)malloc(sizeof(struct cf_state));
  s->n = box(n);
  s->a0 = nsqrt(s->n);
  s->m = box(0);
  s->d = box(1);
  s->a = s->a0;
  s->p_prev = box(1);
  s->p_cur = s->a0;
  return s;
}

void cf_step(struct cf_state *s) {
  struct num *m2 = nsub(nmul(s->d, s->a), s->m);
  struct num *d2 = ndiv(nsub(s->n, nmul(m2, m2)), s->d);
  struct num *a2;
  struct num *p2;
  if (d2->v == 0) d2 = box(1); /* perfect square: restart the period */
  a2 = ndiv(nadd(s->a0, m2), d2);
  p2 = nmod(nadd(nmul(a2, s->p_cur), s->p_prev), s->n);
  s->m = m2;
  s->d = d2;
  s->a = a2;
  s->p_prev = s->p_cur;
  s->p_cur = p2;
}

/* Q_k = d a perfect square at even k => gcd(P - sqrt(Q), N) may split N */
struct num *cf_try_factor(long n, int max_steps) {
  struct cf_state *s = cf_start(n);
  int k;
  for (k = 0; k < max_steps; k++) {
    struct num *r;
    cf_step(s);
    r = nsqrt(s->d);
    if (r->v * r->v == s->d->v && k % 2 == 1) {
      struct num *g = ngcd(nsub(s->p_prev, r), s->n);
      if (g->v != 1 && g->v != n) return g;
    }
  }
  return box(0);
}

/* =================== Pollard rho fallback ========================== */
struct num *rho(struct num *n) {
  struct num *x = box(2);
  struct num *y = box(2);
  struct num *d = box(1);
  struct num *one = box(1);
  int guard = 0;
  while (d->v == 1 && guard < 20000) {
    x = nmod(nadd(nmulmod(x, x, n), one), n);
    y = nmod(nadd(nmulmod(y, y, n), one), n);
    y = nmod(nadd(nmulmod(y, y, n), one), n);
    d = ngcd(nsub(x, y), n);
    guard++;
  }
  return d;
}

/* ================== factorization driver ============================ */
long factors[64];
int nfactors;

void emit_factor(long f) {
  factors[nfactors] = f;
  nfactors++;
}

void factor(struct big *n);

void factor(struct big *n) {
  long rem;
  struct big *half;
  long nv;
  struct num *f;
  if (n->len == 1 && n->d[0] <= 1) return;
  /* even part, in bignum arithmetic */
  half = big_div_small(n, 2, &rem);
  if (rem == 0) {
    emit_factor(2);
    factor(half);
    return;
  }
  /* trial division by odd candidates, still on the bignum form */
  {
    long c = 3;
    while (c < 1000) {
      struct big *q = big_div_small(n, c, &rem);
      if (rem == 0) {
        emit_factor(c);
        factor(q);
        return;
      }
      /* q < c means c exceeds the square root: n is prime */
      if (big_cmp(q, big_from_long(c)) < 0) {
        emit_factor(big_to_long(n));
        return;
      }
      c += 2;
    }
  }
  /* the remaining cofactor fits a long by construction of the inputs */
  nv = big_to_long(n);
  f = cf_try_factor(nv, 200);
  if (f->v == 0 || f->v == 1 || f->v == nv) f = rho(box(nv));
  if (f->v <= 1 || f->v >= nv) {
    emit_factor(nv);
    return;
  }
  factor(big_from_long(f->v));
  {
    long q = nv / f->v;
    factor(big_from_long(q));
  }
}

void sort_factors(void) {
  int i;
  int j;
  for (i = 0; i < nfactors; i++)
    for (j = i + 1; j < nfactors; j++)
      if (factors[j] < factors[i]) {
        long t = factors[i];
        factors[i] = factors[j];
        factors[j] = t;
      }
}

void show(long n) {
  int i;
  struct big *check;
  nfactors = 0;
  factor(big_from_long(n));
  sort_factors();
  printf("%s =", big_to_string(big_from_long(n)));
  check = big_from_long(1);
  for (i = 0; i < nfactors; i++) {
    printf(" %ld", factors[i]);
    check = big_mul(check, big_from_long(factors[i]));
  }
  printf("\n");
  /* verify the product in bignum arithmetic */
  assert_true(big_cmp(check, big_from_long(n)) == 0);
}

int main(void) {
  int rep;
  BIG_BASE = 10000;
  for (rep = 0; rep < 2; rep++) {
    show(10007 * 10009);
    show(4001 * 5003);
    show(3 * 5 * 7 * 11 * 13 * 17 * 19 * 23);
    show(65537 * 97);
    show(7919 * 7927);
    show(104729);
  }
  /* pure-bignum stress: factorial digits and divisibility facts */
  {
    struct big *f = big_from_long(1);
    long k;
    long r;
    struct big *q;
    for (k = 2; k <= 40; k++) f = big_mul_small(f, k);
    printf("40! = %s\n", big_to_string(f));
    q = big_div_small(f, 10000, &r);
    assert_true(r == 0);       /* 40! ends in more than four zeros */
    assert_true(!big_is_zero(q));
    /* add/sub round trip on large values */
    assert_true(big_cmp(big_sub(big_add(f, q), q), f) == 0);
  }
  printf("cfrac: done\n");
  return 0;
}
|}

let expected_prefix = "100160063 ="
