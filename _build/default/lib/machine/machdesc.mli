(** Cost models for the paper's three measurement machines.  The absolute
    cycle numbers are nominal; the relative structure matters: SPARCs are
    32-register three-operand RISCs with free register+register address
    modes, the Pentium is an 8-register two-operand machine. *)

type t = {
  md_name : string;
  md_regs : int;
  md_two_operand : bool;
  md_cost_alu : int;
  md_cost_mul : int;
  md_cost_div : int;
  md_cost_load : int;
  md_cost_store : int;
  md_cost_mov : int;
  md_cost_branch : int;
  md_cost_call : int;
}

val sparc2 : t

val sparc10 : t

val pentium90 : t

val all : t list

val by_name : string -> t option
