(** Cost models for the paper's three measurement machines.

    The absolute cycle numbers are nominal; what matters for reproducing the
    tables is the relative structure: SPARCs are three-operand RISCs with a
    free register+register address mode and 32 registers, the Pentium is a
    two-operand machine with 8 registers (so an extra move is charged when a
    three-address IR instruction's destination differs from its first
    operand, and spills are more common).  The SPARCstation 2 is the same
    ISA as the SPARCstation 10 with a slower memory system. *)

type t = {
  md_name : string;
  md_regs : int;  (** physical register file size *)
  md_two_operand : bool;
  md_cost_alu : int;
  md_cost_mul : int;
  md_cost_div : int;
  md_cost_load : int;
  md_cost_store : int;
  md_cost_mov : int;
  md_cost_branch : int;
  md_cost_call : int;  (** call + return overhead, excluding argument setup *)
}

let sparc2 =
  {
    md_name = "sparc2";
    md_regs = 32;
    md_two_operand = false;
    md_cost_alu = 1;
    md_cost_mul = 5;
    md_cost_div = 20;
    md_cost_load = 2;
    md_cost_store = 3;
    md_cost_mov = 1;
    md_cost_branch = 2;
    md_cost_call = 8;
  }

let sparc10 =
  {
    md_name = "sparc10";
    md_regs = 32;
    md_two_operand = false;
    md_cost_alu = 1;
    md_cost_mul = 3;
    md_cost_div = 12;
    md_cost_load = 2;
    md_cost_store = 2;
    md_cost_mov = 1;
    md_cost_branch = 1;
    md_cost_call = 6;
  }

let pentium90 =
  {
    md_name = "pentium90";
    md_regs = 8;
    md_two_operand = true;
    md_cost_alu = 1;
    md_cost_mul = 4;
    md_cost_div = 25;
    md_cost_load = 2;
    md_cost_store = 1;
    md_cost_mov = 1;
    md_cost_branch = 1;
    md_cost_call = 5;
  }

let all = [ sparc2; sparc10; pentium90 ]

let by_name name = List.find_opt (fun m -> m.md_name = name) all
