(** The virtual machine: executes IR programs against the conservative
    collector, with per-machine cycle accounting.

    GC roots are what a conservative collector sees on a real machine:
    every frame's register file (stale values included), the VM stack and
    the statics region.  Collections trigger on allocation volume and —
    when [vm_async_gc] is set — at arbitrary instruction boundaries,
    modelling asynchronously triggered collection.  Every load and store
    is checked against the heap map, so touching a prematurely collected
    object faults instead of silently reading poisoned memory. *)

exception Fault of string

type config = {
  vm_machine : Machdesc.t;
  vm_async_gc : int option;  (** force a collection every n instructions *)
  vm_gc_at_calls_only : bool;
      (** restrict forced collections to call instructions — the
          environment assumed by the paper's optimization (4) *)
  vm_all_interior : bool;
      (** collector recognizes interior pointers everywhere (default);
          [false] reproduces the Extensions-section root-only mode *)
  vm_gc_threshold : int;  (** allocation volume between collections *)
  vm_max_instrs : int;  (** runaway guard *)
  vm_stack_bytes : int;
}

val default_config : ?machine:Machdesc.t -> unit -> config

type result = {
  r_exit : int;
  r_output : string;
  r_instrs : int;
  r_cycles : int;
  r_gc_count : int;
  r_heap : Gcheap.Heap.stats;
}

exception Exit_program of int

val run : ?config:config -> ?args:int list -> Ir.Instr.program -> result
(** Run [main] to completion.  @raise Fault on memory-safety violations,
    runtime errors, or exhausted budgets. *)
