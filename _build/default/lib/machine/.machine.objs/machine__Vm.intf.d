lib/machine/vm.mli: Gcheap Ir Machdesc
