lib/machine/vm.ml: Array Buffer Bytes Char Gcheap Hashtbl Ir List Machdesc Option Printf String
