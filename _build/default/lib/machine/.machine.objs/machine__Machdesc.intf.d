lib/machine/machdesc.mli:
