lib/machine/machdesc.ml: List
