(** Running built programs and computing paper-style slowdown cells. *)

type run_info = {
  o_cycles : int;
  o_instrs : int;
  o_size : int;
  o_output : string;
  o_gc_count : int;
}

type outcome =
  | Ran of run_info
  | Detected of string
      (** the checking runtime (or the VM's access checker) stopped the
          program — the paper's "<fails>" cells *)

val run :
  ?machine:Machine.Machdesc.t -> ?async_gc:int option -> Build.built -> outcome

val run_config :
  ?machine:Machine.Machdesc.t -> Build.config -> string -> Build.built * outcome

val slowdown_cell : base_cycles:int -> outcome -> string
(** Percentage slowdown rendered as in the paper's tables ("9%",
    "<fails>"). *)

val size_cell : base_size:int -> outcome -> string

val cycles : outcome -> int option

val output : outcome -> string option

exception Baseline_failed of string

val base_cycles_exn : outcome -> int
