lib/harness/tables.mli: Build Format Machine Measure Workloads
