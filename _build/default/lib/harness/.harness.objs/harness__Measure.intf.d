lib/harness/measure.mli: Build Machine
