lib/harness/tables.ml: Build Format List Machine Measure Printf Workloads
