lib/harness/measure.ml: Build Machine Printf
