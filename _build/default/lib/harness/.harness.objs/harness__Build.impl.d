lib/harness/build.ml: Csyntax Gcsafe Ir Opt Peephole
