lib/harness/build.mli: Ir
