(** Running built programs and computing paper-style slowdown cells. *)

type run_info = {
  o_cycles : int;
  o_instrs : int;
  o_size : int;
  o_output : string;
  o_gc_count : int;
}

type outcome =
  | Ran of run_info
  | Detected of string
      (** the checking runtime (or the VM's access checker) stopped the
          program — the paper's "<fails>" cells *)

let run ?(machine = Machine.Machdesc.sparc10) ?(async_gc = None) (b : Build.built) :
    outcome =
  let config =
    {
      (Machine.Vm.default_config ~machine ()) with
      Machine.Vm.vm_async_gc = async_gc;
    }
  in
  try
    let r = Machine.Vm.run ~config b.Build.b_ir in
    Ran
      {
        o_cycles = r.Machine.Vm.r_cycles;
        o_instrs = r.Machine.Vm.r_instrs;
        o_size = b.Build.b_size;
        o_output = r.Machine.Vm.r_output;
        o_gc_count = r.Machine.Vm.r_gc_count;
      }
  with Machine.Vm.Fault msg -> Detected msg

(** Build and run one workload configuration on one machine. *)
let run_config ?(machine = Machine.Machdesc.sparc10) config source : Build.built * outcome =
  let b = Build.build ~nregs:machine.Machine.Machdesc.md_regs config source in
  (b, run ~machine b)

(** Percentage slowdown relative to a baseline cycle count, rendered as in
    the paper's tables. *)
let slowdown_cell ~base_cycles (o : outcome) : string =
  match o with
  | Detected _ -> "<fails>"
  | Ran r ->
      let pct =
        100.0 *. float_of_int (r.o_cycles - base_cycles)
        /. float_of_int base_cycles
      in
      Printf.sprintf "%.0f%%" pct

let size_cell ~base_size (o : outcome) : string =
  match o with
  | Detected _ -> "-"
  | Ran r ->
      let pct =
        100.0 *. float_of_int (r.o_size - base_size) /. float_of_int base_size
      in
      Printf.sprintf "%.0f%%" pct

let cycles = function Ran r -> Some r.o_cycles | Detected _ -> None

let output = function Ran r -> Some r.o_output | Detected _ -> None

exception Baseline_failed of string

let base_cycles_exn = function
  | Ran r -> r.o_cycles
  | Detected m -> raise (Baseline_failed m)
