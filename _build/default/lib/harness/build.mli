(** Build configurations: source -> annotated AST -> optimized,
    register-allocated machine code.  These mirror the paper's measured
    builds. *)

type config =
  | Base  (** "-O": the unpreprocessed optimized baseline *)
  | Safe  (** "-O, safe": preprocessed for GC-safety, then optimized *)
  | Safe_peephole  (** [Safe] plus the assembly-level postprocessor *)
  | Debug  (** "-g": fully debuggable, unpreprocessed *)
  | Debug_checked  (** "-g, checked": pointer-arithmetic checks inserted *)

val config_name : config -> string

val all_configs : config list

type built = {
  b_config : config;
  b_ir : Ir.Instr.program;
  b_keep_lives : int;  (** annotations inserted (0 for unpreprocessed) *)
  b_size : int;  (** static size in instructions *)
}

val build : ?loop_heuristic:bool -> ?nregs:int -> config -> string -> built
(** Annotate (when the configuration calls for it), compile, optimize and
    register-allocate a source program.  [loop_heuristic] defaults to off,
    matching the paper's implementation. *)
