(** The height-2 page map: page number -> heap block descriptor.

    [GC_base]-style lookups do exactly two array indexings — the structure
    the paper contrasts with Jones & Kelly's splay tree. *)

type t

val create : unit -> t

val set_block : t -> Block.t -> unit
(** Register a block for every page it spans. *)

val clear_block : t -> Block.t -> unit

val find : t -> int -> Block.t option
(** The block containing an address, if it lies on a registered page.  Two
    array lookups, no search. *)

val iter_blocks : t -> (Block.t -> unit) -> unit
(** Visit every registered block exactly once. *)
