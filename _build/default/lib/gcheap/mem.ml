(** Flat byte-addressed memory for the VM and the collector.

    Addresses are plain OCaml ints.  Address 0 is NULL; the first page is
    never handed out, so that small integers are never valid addresses.
    Words are 8 bytes, stored little-endian; loads of narrow widths
    sign-extend (the mini-C subset is all-signed, like the paper's
    workloads).  The arena grows on demand in page-sized steps. *)

let page_size = 4096

let page_bits = 12

type t = {
  mutable data : Bytes.t;
  mutable brk : int;  (** first never-allocated address; grows page-wise *)
}

let create () =
  {
    data = Bytes.make (64 * page_size) '\000';
    brk = page_size (* skip the null page *);
  }

(** Highest valid address + 1. *)
let limit t = t.brk

let ensure_capacity t wanted =
  if wanted > Bytes.length t.data then begin
    let cap = ref (Bytes.length t.data) in
    while !cap < wanted do
      cap := !cap * 2
    done;
    let fresh = Bytes.make !cap '\000' in
    Bytes.blit t.data 0 fresh 0 (Bytes.length t.data);
    t.data <- fresh
  end

(** Reserve [n] fresh pages; returns their starting address. *)
let grow_pages t n =
  let addr = t.brk in
  t.brk <- t.brk + (n * page_size);
  ensure_capacity t t.brk;
  addr

let in_bounds t addr len = addr >= page_size && addr + len <= t.brk

exception Fault of int  (** out-of-arena access *)

let check t addr len = if not (in_bounds t addr len) then raise (Fault addr)

let sign_extend v bits =
  let shift = Sys.int_size - bits in
  (v lsl shift) asr shift

let load t ~width addr =
  check t addr width;
  let b i = Char.code (Bytes.get t.data (addr + i)) in
  match width with
  | 1 -> sign_extend (b 0) 8
  | 2 -> sign_extend (b 0 lor (b 1 lsl 8)) 16
  | 4 -> sign_extend (b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)) 32
  | 8 -> Int64.to_int (Bytes.get_int64_le t.data addr)
  | w -> invalid_arg (Printf.sprintf "Mem.load: width %d" w)

let store t ~width addr v =
  check t addr width;
  let b i x = Bytes.set t.data (addr + i) (Char.chr (x land 0xff)) in
  match width with
  | 1 -> b 0 v
  | 2 ->
      b 0 v;
      b 1 (v asr 8)
  | 4 ->
      b 0 v;
      b 1 (v asr 8);
      b 2 (v asr 16);
      b 3 (v asr 24)
  | 8 -> Bytes.set_int64_le t.data addr (Int64.of_int v)
  | w -> invalid_arg (Printf.sprintf "Mem.store: width %d" w)

let load_word t addr = load t ~width:8 addr

let store_word t addr v = store t ~width:8 addr v

(** Fill [len] bytes at [addr] with byte [c] (used for poisoning swept
    objects and for [memset]). *)
let fill t addr len c =
  check t addr len;
  Bytes.fill t.data addr len c

let blit t ~src ~dst len =
  check t src len;
  check t dst len;
  Bytes.blit t.data src t.data dst len

(** Read a NUL-terminated C string. *)
let load_cstring t addr =
  let buf = Buffer.create 16 in
  let rec loop a =
    let c = load t ~width:1 a in
    if c <> 0 then begin
      Buffer.add_char buf (Char.chr (c land 0xff));
      loop (a + 1)
    end
  in
  loop addr;
  Buffer.contents buf

(** Write string [s] plus a terminating NUL at [addr]. *)
let store_cstring t addr s =
  check t addr (String.length s + 1);
  Bytes.blit_string s 0 t.data addr (String.length s);
  Bytes.set t.data (addr + String.length s) '\000'
