(** The height-2 page map: page number -> heap block descriptor.

    [GC_base]-style lookups do exactly two array indexings, which is the
    property the paper contrasts with Jones & Kelly's splay tree: "we use a
    tree of fixed height 2 describing pages of uniformly sized objects ...
    both the allocator and collector are tuned to make such lookups very
    fast." *)

let level2_bits = 10

let level2_size = 1 lsl level2_bits

type t = { mutable top : Block.t option array option array }

let create () = { top = Array.make 64 None }

let split page =
  let hi = page lsr level2_bits and lo = page land (level2_size - 1) in
  (hi, lo)

let ensure_top t hi =
  if hi >= Array.length t.top then begin
    let fresh = Array.make (max (hi + 1) (2 * Array.length t.top)) None in
    Array.blit t.top 0 fresh 0 (Array.length t.top);
    t.top <- fresh
  end

(** Register [blk] for every page it spans. *)
let set_block t (blk : Block.t) =
  let first = blk.Block.blk_start lsr Mem.page_bits in
  for page = first to first + blk.Block.blk_pages - 1 do
    let hi, lo = split page in
    ensure_top t hi;
    let l2 =
      match t.top.(hi) with
      | Some l2 -> l2
      | None ->
          let l2 = Array.make level2_size None in
          t.top.(hi) <- Some l2;
          l2
    in
    l2.(lo) <- Some blk
  done

let clear_block t (blk : Block.t) =
  let first = blk.Block.blk_start lsr Mem.page_bits in
  for page = first to first + blk.Block.blk_pages - 1 do
    let hi, lo = split page in
    if hi < Array.length t.top then
      match t.top.(hi) with Some l2 -> l2.(lo) <- None | None -> ()
  done

(** The block containing [addr], if [addr] is on a heap page.  Two array
    lookups, no search. *)
let find t addr =
  if addr < 0 then None
  else
    let hi, lo = split (addr lsr Mem.page_bits) in
    if hi >= Array.length t.top then None
    else match t.top.(hi) with None -> None | Some l2 -> l2.(lo)

(** Iterate over every registered block exactly once. *)
let iter_blocks t f =
  let seen = Hashtbl.create 64 in
  Array.iter
    (function
      | None -> ()
      | Some l2 ->
          Array.iter
            (function
              | None -> ()
              | Some blk ->
                  if not (Hashtbl.mem seen blk.Block.blk_start) then begin
                    Hashtbl.add seen blk.Block.blk_start ();
                    f blk
                  end)
            l2)
    t.top
