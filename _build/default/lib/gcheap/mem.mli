(** Flat byte-addressed memory for the VM and the collector.

    Addresses are plain OCaml ints; address 0 is NULL and the first page is
    never handed out.  Words are 8 bytes little-endian; narrow loads
    sign-extend.  The arena grows on demand in page-sized steps. *)

val page_size : int
(** 4096 bytes. *)

val page_bits : int
(** [log2 page_size]. *)

type t

exception Fault of int
(** Raised on access outside the allocated arena, with the faulting
    address. *)

val create : unit -> t
(** A fresh arena with only the (never-accessible) null page reserved. *)

val limit : t -> int
(** Highest valid address + 1. *)

val grow_pages : t -> int -> int
(** [grow_pages t n] reserves [n] fresh zeroed pages and returns their
    starting address. *)

val in_bounds : t -> int -> int -> bool
(** [in_bounds t addr len]: does [addr, addr+len)] lie inside the arena
    (and off the null page)? *)

val load : t -> width:int -> int -> int
(** [load t ~width addr] reads a little-endian value of [width] bytes
    (1, 2, 4 or 8), sign-extended.  @raise Fault on out-of-arena access. *)

val store : t -> width:int -> int -> int -> unit
(** [store t ~width addr v] writes the low [width] bytes of [v]. *)

val load_word : t -> int -> int
(** [load t ~width:8]. *)

val store_word : t -> int -> int -> unit
(** [store t ~width:8]. *)

val fill : t -> int -> int -> char -> unit
(** [fill t addr len c] sets [len] bytes to [c] (poisoning, [memset]). *)

val blit : t -> src:int -> dst:int -> int -> unit
(** Byte copy between two in-arena ranges ([memcpy]/[memmove]). *)

val load_cstring : t -> int -> string
(** Read a NUL-terminated C string starting at the address. *)

val store_cstring : t -> int -> string -> unit
(** Write the string plus a terminating NUL. *)
