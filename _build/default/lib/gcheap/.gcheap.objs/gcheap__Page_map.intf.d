lib/gcheap/page_map.mli: Block
