lib/gcheap/page_map.ml: Array Block Hashtbl Mem
