lib/gcheap/heap.mli: Block Format Hashtbl Mem Page_map
