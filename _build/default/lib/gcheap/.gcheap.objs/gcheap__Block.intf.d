lib/gcheap/block.mli: Bytes
