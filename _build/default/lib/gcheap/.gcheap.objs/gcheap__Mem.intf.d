lib/gcheap/mem.mli:
