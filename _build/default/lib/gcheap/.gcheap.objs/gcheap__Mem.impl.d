lib/gcheap/mem.ml: Buffer Bytes Char Int64 Printf String Sys
