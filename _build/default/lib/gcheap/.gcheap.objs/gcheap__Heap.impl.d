lib/gcheap/heap.ml: Array Block Format Hashtbl List Mem Option Page_map Stack
