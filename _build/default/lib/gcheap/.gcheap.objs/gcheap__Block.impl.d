lib/gcheap/block.ml: Array Bytes
