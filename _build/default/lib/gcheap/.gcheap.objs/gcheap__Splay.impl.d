lib/gcheap/splay.ml:
