(** A splay tree of object extents — the Jones & Kelly comparator.

    The paper positions its checking against [JonesKelly95]: "Their
    fundamental data structure is a splay tree of objects, we use a tree
    of fixed height 2 describing pages of uniformly sized objects ...
    The garbage-collector-based check is probably somewhat more
    efficient."  This module implements that alternative lookup structure
    so the claim can be measured (see the [micro] bench section): an
    interval splay tree mapping any address to the extent of the object
    containing it, with the classic splay-to-root on every lookup. *)

type node = {
  mutable base : int;
  mutable size : int;
  mutable left : node option;
  mutable right : node option;
}

type t = { mutable root : node option; mutable count : int }

let create () = { root = None; count = 0 }

let size t = t.count

(* top-down splay around [key]; afterwards the root is the node whose
   interval contains key, or the closest neighbour *)
let splay t key =
  match t.root with
  | None -> ()
  | Some root ->
      let header = { base = 0; size = 0; left = None; right = None } in
      let l = ref header and r = ref header in
      let cur = ref root in
      let continue_ = ref true in
      while !continue_ do
        let n = !cur in
        if key < n.base then (
          match n.left with
          | None -> continue_ := false
          | Some ln ->
              if key < ln.base then begin
                (* rotate right *)
                n.left <- ln.right;
                ln.right <- Some n;
                match ln.left with
                | None ->
                    cur := ln;
                    continue_ := false
                | Some next ->
                    (* link right *)
                    !r.left <- Some ln;
                    r := ln;
                    cur := next
              end
              else begin
                !r.left <- Some n;
                r := n;
                cur := ln
              end)
        else if key >= n.base + n.size then (
          match n.right with
          | None -> continue_ := false
          | Some rn ->
              if key >= rn.base + rn.size then begin
                (* rotate left *)
                n.right <- rn.left;
                rn.left <- Some n;
                match rn.right with
                | None ->
                    cur := rn;
                    continue_ := false
                | Some next ->
                    !l.right <- Some rn;
                    l := rn;
                    cur := next
              end
              else begin
                !l.right <- Some n;
                l := n;
                cur := rn
              end)
        else continue_ := false
      done;
      (* assemble *)
      let n = !cur in
      !l.right <- n.left;
      !r.left <- n.right;
      n.left <- header.right;
      n.right <- header.left;
      t.root <- Some n

(** Register an object extent.  Extents must not overlap. *)
let insert t ~base ~size =
  splay t base;
  let fresh = { base; size; left = None; right = None } in
  (match t.root with
  | None -> ()
  | Some root ->
      if base < root.base then begin
        fresh.left <- root.left;
        fresh.right <- Some root;
        root.left <- None
      end
      else begin
        fresh.right <- root.right;
        fresh.left <- Some root;
        root.right <- None
      end);
  t.root <- Some fresh;
  t.count <- t.count + 1

(** [find t addr]: the (base, size) of the registered object containing
    [addr], splaying it to the root. *)
let find t addr =
  splay t addr;
  match t.root with
  | Some n when addr >= n.base && addr < n.base + n.size ->
      Some (n.base, n.size)
  | _ -> None

(** Remove the object whose extent contains [addr]. *)
let remove t addr =
  splay t addr;
  match t.root with
  | Some n when addr >= n.base && addr < n.base + n.size ->
      (match (n.left, n.right) with
      | None, r -> t.root <- r
      | Some _, None -> t.root <- n.left
      | Some _, Some _ ->
          (* splay the predecessor of the deleted node to the top of the
             left subtree; it has no right child afterwards *)
          let sub = { root = n.left; count = 0 } in
          splay sub n.base;
          (match sub.root with
          | Some m ->
              m.right <- n.right;
              t.root <- Some m
          | None -> t.root <- n.right));
      t.count <- t.count - 1;
      true
  | _ -> false

(** The Jones-Kelly-style same-object check built on the splay tree. *)
let same_obj t p q =
  match find t q with
  | None -> true (* unregistered: not checked *)
  | Some (base, size) -> p >= base && p <= base + size
