(** Control-flow graph cleanup: branch-to-branch forwarding, merging of
    single-predecessor straight-line successors, and folding of two-way
    branches with identical targets.

    Part of the conventional optimizer; it has no interaction with
    GC-safety (no values move), but without it the structured-statement
    lowering leaves chains of empty blocks whose jumps would inflate the
    cycle counts of every configuration equally. *)

open Ir.Instr

let block_by_label f =
  let tbl = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace tbl b.b_label b) f.fn_blocks;
  tbl

(* resolve a jump target through chains of empty forwarding blocks *)
let rec resolve tbl visited l =
  if List.mem l visited then l
  else
    match Hashtbl.find_opt tbl l with
    | Some { b_instrs = []; b_term = Jmp l2; _ } ->
        resolve tbl (l :: visited) l2
    | _ -> l

let forward_jumps (f : func) =
  let tbl = block_by_label f in
  List.iter
    (fun b ->
      b.b_term <-
        (match b.b_term with
        | Jmp l -> Jmp (resolve tbl [ b.b_label ] l)
        | Br (c, l1, l2) ->
            let l1 = resolve tbl [ b.b_label ] l1
            and l2 = resolve tbl [ b.b_label ] l2 in
            if l1 = l2 then Jmp l1 else Br (c, l1, l2)
        | Ret _ as t -> t))
    f.fn_blocks

let pred_counts (f : func) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun b ->
      List.iter
        (fun l ->
          Hashtbl.replace tbl l (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l)))
        (successors b.b_term))
    f.fn_blocks;
  tbl

(* merge [A: ...; jmp B] with B when B has no other predecessors *)
let merge_chains (f : func) =
  let entry_label =
    match f.fn_blocks with b :: _ -> b.b_label | [] -> -1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let preds = pred_counts f in
    let by_label = block_by_label f in
    let absorbed = Hashtbl.create 8 in
    List.iter
      (fun a ->
        if not (Hashtbl.mem absorbed a.b_label) then
          match a.b_term with
          | Jmp l
            when l <> a.b_label && l <> entry_label
                 && Hashtbl.find_opt preds l = Some 1
                 && not (Hashtbl.mem absorbed l) -> (
              match Hashtbl.find_opt by_label l with
              | Some b ->
                  a.b_instrs <- a.b_instrs @ b.b_instrs;
                  a.b_term <- b.b_term;
                  Hashtbl.replace absorbed l ();
                  changed := true
              | None -> ())
          | _ -> ())
      f.fn_blocks;
    if Hashtbl.length absorbed > 0 then
      f.fn_blocks <-
        List.filter (fun b -> not (Hashtbl.mem absorbed b.b_label)) f.fn_blocks
  done

let run (f : func) =
  forward_jumps f;
  Dce.prune_unreachable f;
  merge_chains f
