(** The optimizer: pass ordering and configurations.

    The "conventional optimizing compiler" of the paper is this pipeline
    with [disguise_pointers = true] (the default — that is the behaviour
    conservative GC users live with); setting it to [false] is not a
    meaningful configuration, because GC-safety is supposed to come from
    the KEEP_LIVE annotations surviving an *unmodified* optimizer, not from
    switching optimizations off.  It exists for the ablation bench only. *)

type config = {
  optimize : bool;  (** run the scalar optimizations at all (-O vs -g) *)
  disguise_pointers : bool;
      (** run the pointer strength-reduction / base-register-reuse pass *)
  nregs : int;  (** machine register file size for allocation *)
}

let default = { optimize = true; disguise_pointers = true; nregs = 32 }

type func_stats = {
  fs_spills : int;
  fs_coalesced : int;
}

(** Optimize and register-allocate one function in place. *)
let run_func (cfg : config) (f : Ir.Instr.func) : func_stats =
  if cfg.optimize then begin
    (* two rounds: copy propagation exposes folds, folds expose dead code *)
    for _round = 1 to 2 do
      Copyprop.run f;
      Constfold.run f;
      Cse.run f;
      if cfg.disguise_pointers then Ptr_strength.run f;
      Dce.run f
    done;
    Collapse.run f;
    Simplify_cfg.run f;
    (* loop optimizations want the merged two-block loop shape *)
    Induction.run f;
    Dce.run f;
    Collapse.run f;
    Simplify_cfg.run f
  end
  else
    (* even unoptimized compilers emit straight jumps, not chains of empty
       blocks: clean the CFG so -g cycle counts are not inflated by an
       artifact of the structured lowering *)
    Simplify_cfg.run f;
  let r = Regalloc.run ~nregs:cfg.nregs f in
  { fs_spills = r.Regalloc.ra_spills; fs_coalesced = r.Regalloc.ra_moves_coalesced }

type program_stats = {
  ps_spills : int;
  ps_coalesced : int;
}

let run_program (cfg : config) (p : Ir.Instr.program) : program_stats =
  let spills = ref 0 and coal = ref 0 in
  List.iter
    (fun f ->
      let s = run_func cfg f in
      spills := !spills + s.fs_spills;
      coal := !coal + s.fs_coalesced)
    p.Ir.Instr.p_funcs;
  { ps_spills = !spills; ps_coalesced = !coal }
