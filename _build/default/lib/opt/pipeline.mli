(** The optimizer: pass ordering and build configurations. *)

type config = {
  optimize : bool;  (** run the scalar optimizations at all (-O vs -g) *)
  disguise_pointers : bool;
      (** run the pointer-disguising passes (a conventional compiler
          does; exists for the ablation bench) *)
  nregs : int;  (** machine register file size for allocation *)
}

val default : config

type func_stats = { fs_spills : int; fs_coalesced : int }

val run_func : config -> Ir.Instr.func -> func_stats
(** Optimize and register-allocate one function in place. *)

type program_stats = { ps_spills : int; ps_coalesced : int }

val run_program : config -> Ir.Instr.program -> program_stats
