(** Liveness-based dead code elimination.  Dead [Opaque] results are
    removable; [KeepLive] markers always survive. *)

val run : Ir.Instr.func -> unit

val prune_unreachable : Ir.Instr.func -> unit
(** Drop blocks unreachable from the entry. *)
