(** Block-local common subexpression elimination over pure ALU results.

    [Opaque] results are never CSE sources or targets: "the compiler loses
    all information about how the resulting value was computed, thus
    preventing it from discarding the value and subsequently recomputing
    it" — and conversely from reusing an older computation for it. *)

open Ir.Instr

type key = K_bin of binop * operand * operand | K_rel of relop * operand * operand

let run_block (b : block) =
  let avail : (key, reg) Hashtbl.t = Hashtbl.create 16 in
  let kill r =
    let victims =
      Hashtbl.fold
        (fun k v acc ->
          let ops =
            match k with K_bin (_, a, b) | K_rel (_, a, b) -> [ a; b ]
          in
          if v = r || List.mem (Reg r) ops then k :: acc else acc)
        avail []
    in
    List.iter (Hashtbl.remove avail) victims
  in
  let instrs =
    List.map
      (fun i ->
        let key =
          match i with
          | Bin (op, _, a, b) -> Some (K_bin (op, a, b))
          | Rel (op, _, a, b) -> Some (K_rel (op, a, b))
          | _ -> None
        in
        let i =
          match (i, key) with
          | (Bin (_, d, _, _) | Rel (_, d, _, _)), Some k -> (
              match Hashtbl.find_opt avail k with
              | Some r when r <> d -> Mov (d, Reg r)
              | _ -> i)
          | _ -> i
        in
        (match Ir.Instr.def i with Some d -> kill d | None -> ());
        (match (i, key) with
        | (Bin (_, d, _, _) | Rel (_, d, _, _)), Some k ->
            Hashtbl.replace avail k d
        | _ -> ());
        i)
      b.b_instrs
  in
  b.b_instrs <- instrs

let run (f : func) = List.iter run_block f.fn_blocks
