(** The pointer-disguising transformations from the paper's introduction:
    folding a constant displacement into a dead base register
    ([p -= 1000; ... p[i]]), and reusing a dead base register for a
    derived pointer.  Their safety conditions are the *sequential* ones a
    conventional compiler checks — which is precisely what makes the
    result GC-unsafe.  KEEP_LIVE annotations defeat both patterns. *)

type stats = { mutable folded : int; mutable reused : int }

val stats : stats

val run : Ir.Instr.func -> unit
