(** Adjacent move collapsing: [def t; mov v, t] with [t] used nowhere else
    becomes a single instruction defining [v].  Keeps the baseline honest
    so the peephole postprocessor only wins back annotation overhead. *)

val run : Ir.Instr.func -> unit
