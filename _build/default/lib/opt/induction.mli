(** Induction-variable strength reduction: rewrite [t := i*w; ld [a + t]]
    loops to a moving pointer — one of the paper's named sources of
    disguised pointers.  Annotated code never matches the pattern (its
    loads go through [Opaque] results), which is the point. *)

type stats = { mutable loops_rewritten : int }

val stats : stats

val run : Ir.Instr.func -> unit
