(** The pointer-disguising transformation from the paper's introduction.

    "A conventional C compiler may replace a final reference [p\[i-1000\]]
    to the heap character pointer p by the sequence [p = p - 1000; ...
    p\[i\]...].  If a garbage collection is triggered between the
    replacement of p, and the reference to p\[i\], there may be no
    recognizable pointer to the object referenced by p."

    This pass performs exactly that rewrite (it is profitable because it
    moves the constant displacement out of the per-access index
    computation, e.g. out of a loop, or into a machine's small signed
    displacement field).  Its safety conditions are the *sequential* ones a
    conventional compiler checks — the base register is dead afterwards —
    which is precisely what makes the result GC-unsafe.

    Two shapes are handled:

    {ol
    {li [t := i ± c;  ld d, \[p + t\]]  with p and t dead after the load
        becomes [p := p ± c;  ld d, \[p + i\]] — the displacement is folded
        into the (overwritten) base;}
    {li [q := p + c] with p dead after: q is renamed to p — the classic
        register-reuse overwrite.}}

    KEEP_LIVE annotations defeat both: the [KeepLive] use keeps the base
    live past the arithmetic, and [Opaque] results never match the
    patterns.  That is the paper's claim, made mechanical. *)

open Ir.Instr

type stats = { mutable folded : int; mutable reused : int }

let stats = { folded = 0; reused = 0 }

(* within a block, rewrite shape 1 *)
let fold_displacement (f : func) (live : Ir.Liveness.t) =
  List.iter
    (fun b ->
      let after = Ir.Liveness.per_instr live b in
      let instrs = Array.of_list b.b_instrs in
      let n = Array.length instrs in
      (* map: register -> (index of defining Bin(op, t, Reg i, Imm c)) *)
      for idx = 0 to n - 1 do
        match instrs.(idx) with
        | Load (w, d, Reg p, Reg t) when p <> t && d <> p ->
            (* find the definition of t in this block: t := i +- c *)
            let rec find_def j =
              if j < 0 then None
              else
                match instrs.(j) with
                | Bin (((Add | Sub) as op), t', Reg i, Imm c) when t' = t ->
                    Some (j, op, i, c)
                | other when Ir.Instr.def other = Some t -> None
                | _ -> find_def (j - 1)
            in
            (match find_def (idx - 1) with
            | Some (j, op, i, c) when i <> t && i <> p ->
                (* p and t must be dead after the load; p, i, t unchanged
                   between j and idx; p not used in between (in particular
                   not by a KeepLive marker) *)
                let dead_after r = not (Ir.Liveness.ISet.mem r after.(idx)) in
                let disjoint =
                  let ok = ref true in
                  for k = j + 1 to idx - 1 do
                    (match Ir.Instr.def instrs.(k) with
                    | Some d' when d' = p || d' = i || d' = t -> ok := false
                    | _ -> ());
                    if List.mem p (uses instrs.(k)) then ok := false
                  done;
                  !ok
                in
                if dead_after p && dead_after t && disjoint then begin
                  (* p := p op c   ...   ld d, [p + i] *)
                  instrs.(j) <- Bin (op, p, Reg p, Imm c);
                  instrs.(idx) <- Load (w, d, Reg p, Reg i);
                  stats.folded <- stats.folded + 1
                end
            | _ -> ())
        | _ -> ()
      done;
      b.b_instrs <- Array.to_list instrs)
    f.fn_blocks

(* shape 2: q := p + c, p dead after, q's uses all in this block and q not a
   KeepLive operand: rename q to p (register reuse overwrites the base) *)
let reuse_base (f : func) (live : Ir.Liveness.t) =
  List.iter
    (fun b ->
      let after = Ir.Liveness.per_instr live b in
      let instrs = Array.of_list b.b_instrs in
      let n = Array.length instrs in
      for idx = 0 to n - 1 do
        match instrs.(idx) with
        | Bin (((Add | Sub) as op), q, Reg p, (Imm _ as c))
          when q <> p
               && (not (Ir.Liveness.ISet.mem p after.(idx)))
               && not (Ir.Liveness.ISet.mem q (Ir.Liveness.live_out live b.b_label))
          ->
            (* q must not be redefined later in the block, must not appear
               in a KeepLive, and p must not be used later in the block *)
            let ok = ref true in
            for k = idx + 1 to n - 1 do
              (match instrs.(k) with
              | KeepLive (Reg r) when r = q || r = p -> ok := false
              | _ -> ());
              (match Ir.Instr.def instrs.(k) with
              | Some d when d = q || d = p -> ok := false
              | _ -> ());
              if List.mem p (uses instrs.(k)) then ok := false
            done;
            (match b.b_term with
            | t when List.mem q (term_uses t) || List.mem p (term_uses t) ->
                ok := false
            | _ -> ());
            if !ok then begin
              instrs.(idx) <- Bin (op, p, Reg p, c);
              let rename r = if r = q then Reg p else Reg r in
              for k = idx + 1 to n - 1 do
                instrs.(k) <- map_instr_ops rename instrs.(k)
              done;
              stats.reused <- stats.reused + 1
            end
        | _ -> ()
      done;
      b.b_instrs <- Array.to_list instrs)
    f.fn_blocks

let run (f : func) =
  let live = Ir.Liveness.compute f in
  fold_displacement f live;
  let live = Ir.Liveness.compute f in
  reuse_base f live
