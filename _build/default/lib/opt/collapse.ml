(** Adjacent move collapsing (standard backend cleanup).

    [def t; mov v, t] with [t] used nowhere else becomes a single
    instruction defining [v] directly.  Adjacency makes the rewrite
    unconditionally sound: any read of [v] by the defining instruction sees
    the old value either way.  [Opaque] definitions collapse too — the
    result is still opaque, only its home changes, which is exactly the
    "same location" constraint of the paper's gcc implementation.

    Without this pass our baseline would be artificially sloppy and the
    peephole postprocessor would "win back" time the paper's baseline
    compiler never lost. *)

open Ir.Instr

let use_counts (f : func) =
  let counts = Hashtbl.create 64 in
  let bump r =
    Hashtbl.replace counts r (1 + Option.value ~default:0 (Hashtbl.find_opt counts r))
  in
  List.iter
    (fun b ->
      List.iter (fun i -> List.iter bump (uses i)) b.b_instrs;
      List.iter bump (term_uses b.b_term))
    f.fn_blocks;
  fun r -> Option.value ~default:0 (Hashtbl.find_opt counts r)

let set_def d = function
  | Mov (_, s) -> Mov (d, s)
  | Bin (op, _, a, b) -> Bin (op, d, a, b)
  | Rel (op, _, a, b) -> Rel (op, d, a, b)
  | Load (w, _, a, b) -> Load (w, d, a, b)
  | Opaque (_, s) -> Opaque (d, s)
  | Call (Some _, fn, n) -> Call (Some d, fn, n)
  | i -> i

let run (f : func) =
  let uses_of = use_counts f in
  List.iter
    (fun b ->
      let rec rewrite = function
        | i1 :: Mov (v, Reg t) :: rest
          when def i1 = Some t && t <> v && uses_of t = 1 ->
            set_def v i1 :: rewrite rest
        | i :: rest -> i :: rewrite rest
        | [] -> []
      in
      b.b_instrs <- rewrite b.b_instrs)
    f.fn_blocks
