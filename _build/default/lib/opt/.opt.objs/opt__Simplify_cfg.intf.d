lib/opt/simplify_cfg.mli: Ir
