lib/opt/induction.ml: Array Hashtbl Ir List Option
