lib/opt/pipeline.mli: Ir
