lib/opt/simplify_cfg.ml: Dce Hashtbl Ir List Option
