lib/opt/regalloc.mli: Ir
