lib/opt/ptr_strength.mli: Ir
