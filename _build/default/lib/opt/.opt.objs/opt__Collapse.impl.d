lib/opt/collapse.ml: Hashtbl Ir List Option
