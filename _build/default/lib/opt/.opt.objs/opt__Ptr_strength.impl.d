lib/opt/ptr_strength.ml: Array Ir List
