lib/opt/collapse.mli: Ir
