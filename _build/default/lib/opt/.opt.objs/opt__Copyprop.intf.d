lib/opt/copyprop.mli: Ir
