lib/opt/pipeline.ml: Collapse Constfold Copyprop Cse Dce Induction Ir List Ptr_strength Regalloc Simplify_cfg
