lib/opt/regalloc.ml: Array Fun Hashtbl Int Ir List
