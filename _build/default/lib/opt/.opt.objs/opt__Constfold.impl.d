lib/opt/constfold.ml: Ir List
