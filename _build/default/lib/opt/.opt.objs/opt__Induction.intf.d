lib/opt/induction.mli: Ir
