(** CFG cleanup: jump-to-jump forwarding, merging single-predecessor
    straight-line successors, folding two-way branches with equal
    targets, and dropping unreachable blocks. *)

val run : Ir.Instr.func -> unit
