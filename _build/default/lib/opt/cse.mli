(** Block-local common subexpression elimination over pure ALU results.
    [Opaque] results are never CSE sources or targets. *)

val run : Ir.Instr.func -> unit
