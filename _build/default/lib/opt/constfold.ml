(** Constant folding and algebraic simplification. *)

open Ir.Instr

let eval_bin op a b =
  match op with
  | Add -> Some (a + b)
  | Sub -> Some (a - b)
  | Mul -> Some (a * b)
  | Div -> if b = 0 then None else Some (a / b)
  | Mod -> if b = 0 then None else Some (a mod b)
  | Shl -> Some (a lsl (b land 63))
  | Shr -> Some (a asr (b land 63))
  | And -> Some (a land b)
  | Or -> Some (a lor b)
  | Xor -> Some (a lxor b)

let eval_rel op a b =
  let r =
    match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b
  in
  if r then 1 else 0

let fold_instr i =
  match i with
  | Bin (op, d, Imm a, Imm b) -> (
      match eval_bin op a b with Some v -> Mov (d, Imm v) | None -> i)
  | Bin ((Add | Sub), d, x, Imm 0) -> Mov (d, x)
  | Bin (Add, d, Imm 0, x) -> Mov (d, x)
  | Bin (Mul, d, x, Imm 1) -> Mov (d, x)
  | Bin (Mul, d, Imm 1, x) -> Mov (d, x)
  | Bin (Mul, d, _, Imm 0) -> Mov (d, Imm 0)
  | Rel (op, d, Imm a, Imm b) -> Mov (d, Imm (eval_rel op a b))
  | _ -> i

let run (f : func) =
  List.iter
    (fun b ->
      b.b_instrs <- List.map fold_instr b.b_instrs;
      (* fold constant branches *)
      b.b_term <-
        (match b.b_term with
        | Br (Imm 0, _, l2) -> Jmp l2
        | Br (Imm _, l1, _) -> Jmp l1
        | t -> t))
    f.fn_blocks
