(** Block-local copy and constant propagation.  [Opaque] definitions are
    never propagated: KEEP_LIVE results must remain explicitly stored. *)

val run_block : Ir.Instr.block -> unit

val run : Ir.Instr.func -> unit
