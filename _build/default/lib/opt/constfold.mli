(** Constant folding, algebraic simplification, and constant-branch
    folding. *)

val run : Ir.Instr.func -> unit
