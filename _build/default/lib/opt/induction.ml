(** Induction-variable strength reduction: replace per-iteration index
    scaling with a moving pointer.

    The paper lists "induction variable optimizations" alongside the
    displacement fold as transformations that can disguise pointers.  This
    pass performs the classical rewrite on the two-block loops our lowering
    produces:

    {v
      preheader:  i := 0                      preheader:  i := 0
      head:       c := i < n                  head:       m := a + 0 ... (hoisted)
                  br c, body, exit    ==>                 c := i < n
      body:       t := i * w                              br c, body, exit
                  d := ld [a + t]             body:       d := ld [m + 0]
                  i := i + 1                              i := i + 1
                  jmp head                                m := m + w
                                                          jmp head
    v}

    The moving pointer [m] is an interior pointer for the whole loop, so
    the rewrite is GC-safe here by itself (and the collector's extra byte
    covers the one-past-the-end value after the final step).  What matters
    for the paper's argument is that annotated code — whose loads go
    through [Opaque] results — never matches the pattern, so KEEP_LIVE
    semantics survive this optimizer too.

    Conditions: single [i := i + 1] in the body, [t := i * w] used only as
    the offset of loads/stores with a loop-invariant base, [i] initialized
    to a constant in the preheader, and the scaled access appearing before
    the increment. *)

open Ir.Instr

type stats = { mutable loops_rewritten : int }

let stats = { loops_rewritten = 0 }

(* the shape produced by our lowering: head (condition, 2 preds) with a
   body block jumping back to it *)
type loop_shape = {
  ls_head : block;
  ls_body : block;
  ls_preheader : block;
}

let find_loops (f : func) : loop_shape list =
  let preds = Hashtbl.create 16 in
  List.iter
    (fun b ->
      List.iter
        (fun l ->
          Hashtbl.replace preds l (b :: Option.value ~default:[] (Hashtbl.find_opt preds l)))
        (successors b.b_term))
    f.fn_blocks;
  let by_label = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace by_label b.b_label b) f.fn_blocks;
  List.filter_map
    (fun head ->
      match head.b_term with
      | Br (_, lbody, _) -> (
          (* the body is the branch target that jumps straight back *)
          match Hashtbl.find_opt by_label lbody with
          | Some body when body.b_term = Jmp head.b_label && body != head -> (
              match
                ( Hashtbl.find_opt preds body.b_label,
                  Hashtbl.find_opt preds head.b_label )
              with
              | Some [ h ], Some [ p1; p2 ]
                when h == head && (p1 == body || p2 == body) ->
                  let pre = if p1 == body then p2 else p1 in
                  if pre != body && pre != head then
                    Some { ls_head = head; ls_body = body; ls_preheader = pre }
                  else None
              | _ -> None)
          | _ -> None)
      | Jmp _ | Ret _ -> None)
    f.fn_blocks

(* i := i + 1 instructions in a block *)
let increments body =
  List.filter_map
    (function
      | Bin (Add, i, Reg i', Imm 1) when i = i' -> Some i
      | _ -> None)
    body.b_instrs

let defs_in b =
  List.filter_map def b.b_instrs

let const_init_of pre i =
  (* last write to i in the preheader must be a constant move *)
  List.fold_left
    (fun acc instr ->
      match instr with
      | Mov (d, Imm k) when d = i -> Some k
      | other -> if def other = Some i then None else acc)
    None pre.b_instrs

let rewrite_loop (f : func) (live : Ir.Liveness.t) (ls : loop_shape) : bool =
  let body = ls.ls_body in
  match increments body with
  | [ i ] -> (
      let instrs = Array.of_list body.b_instrs in
      
      let incr_pos = ref (-1) in
      Array.iteri
        (fun k instr ->
          match instr with
          | Bin (Add, d, Reg d', Imm 1) when d = i && d' = i -> incr_pos := k
          | _ -> ())
        instrs;
      (* find t := i * w with all uses being [base + t] addressing before
         the increment, base loop-invariant *)
      let loop_defs = defs_in body @ defs_in ls.ls_head in
      let candidate = ref None in
      Array.iteri
        (fun k instr ->
          match instr with
          | Bin (Mul, t, Reg i', Imm w)
            when i' = i && k < !incr_pos && !candidate = None && w > 0 ->
              let uses_ok = ref true and use_count = ref 0 and base = ref None in
              Array.iteri
                (fun k2 instr2 ->
                  if k2 <> k then begin
                    (match instr2 with
                    | Load (_, _, Reg a, Reg t') when t' = t ->
                        incr use_count;
                        if k2 > !incr_pos then uses_ok := false;
                        (match !base with
                        | None -> base := Some a
                        | Some a' -> if a' <> a then uses_ok := false)
                    | Store (_, src, Reg a, Reg t')
                      when t' = t && src <> Reg t ->
                        incr use_count;
                        if k2 > !incr_pos then uses_ok := false;
                        (match !base with
                        | None -> base := Some a
                        | Some a' -> if a' <> a then uses_ok := false)
                    | _ ->
                        if List.mem t (uses instr2) then uses_ok := false);
                    if def instr2 = Some t then uses_ok := false
                  end)
                instrs;
              (* t must not escape the body *)
              if
                !uses_ok && !use_count > 0
                && (not (Ir.Liveness.ISet.mem t (Ir.Liveness.live_out live body.b_label)))
                &&
                match !base with
                | Some a -> not (List.mem a loop_defs)
                | None -> false
              then candidate := Some (k, t, w, Option.get !base)
          | _ -> ())
        instrs;
      match (!candidate, const_init_of ls.ls_preheader i) with
      | Some (mul_pos, t, w, a), Some init ->
          (* fresh moving pointer *)
          let m = f.fn_nreg in
          f.fn_nreg <- f.fn_nreg + 1;
          (* preheader: m := a + init*w *)
          ls.ls_preheader.b_instrs <-
            ls.ls_preheader.b_instrs
            @ [ Bin (Add, m, Reg a, Imm (init * w)) ];
          (* body: drop the mul, rewrite accesses, bump m after the incr *)
          let rewritten =
            Array.to_list instrs
            |> List.filteri (fun k _ -> k <> mul_pos)
            |> List.map (fun instr ->
                   match instr with
                   | Load (wd, d, Reg a', Reg t') when t' = t && a' = a ->
                       Load (wd, d, Reg m, Imm 0)
                   | Store (wd, src, Reg a', Reg t') when t' = t && a' = a ->
                       Store (wd, src, Reg m, Imm 0)
                   | other -> other)
          in
          body.b_instrs <- rewritten @ [ Bin (Add, m, Reg m, Imm w) ];
          stats.loops_rewritten <- stats.loops_rewritten + 1;
          true
      | _ -> false)
  | _ -> false

let run (f : func) =
  let live = Ir.Liveness.compute f in
  let loops = find_loops f in
  List.iter (fun ls -> ignore (rewrite_loop f live ls)) loops
