(** Linear-scan register allocation onto a finite machine register file.

    Register 0 stays the frame pointer; three registers are reserved as
    spill scratch.  Move and [Opaque] sources provide allocation hints, so
    KEEP_LIVE results usually coalesce with their inputs (gcc's "same
    location as the result" constraint); after assignment [Opaque] is
    lowered away.  Spilled values live in frame slots, which the VM stack
    scan sees, so spilling never endangers GC-safety. *)

type result = {
  ra_spills : int;
  ra_moves_coalesced : int;
}

exception Too_many_params of string
(** A function's parameters exceed the allocatable registers. *)

val run : ?nregs:int -> Ir.Instr.func -> result
