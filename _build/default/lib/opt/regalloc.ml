(** Linear-scan register allocation onto a finite machine register file.

    Register 0 stays the frame pointer.  Three registers are reserved as
    spill scratch; the rest are allocatable.  Intervals are conservative
    min-max position ranges from global liveness, so loop-carried values
    keep their register across the whole loop.

    Move and [Opaque] sources provide allocation hints, so the KEEP_LIVE
    result usually coalesces with its input — the gcc ["0" (same location)]
    constraint from the paper's implementation.  After assignment, [Opaque]
    is lowered: same location means it disappears entirely; otherwise it
    becomes a real move.

    A spilled value lives in a frame slot, which the VM stack scan sees, so
    spilling never endangers GC-safety — only speed. *)

open Ir.Instr

type assignment = Phys of reg | Slot of int

type result = {
  ra_spills : int;  (** number of spilled virtual registers *)
  ra_moves_coalesced : int;
}

exception Too_many_params of string

let nscratch = 3

let run ?(nregs = 32) (f : func) : result =
  let avail = nregs - 1 - nscratch in
  if List.length f.fn_params > avail then raise (Too_many_params f.fn_name);
  (* rename incoming parameters so their long-lived homes are ordinary
     allocatable (and spillable) vregs *)
  let entry = List.hd f.fn_blocks in
  let param_map =
    List.map
      (fun p ->
        let a = f.fn_nreg in
        f.fn_nreg <- f.fn_nreg + 1;
        (p, a))
      f.fn_params
  in
  entry.b_instrs <-
    List.map (fun (p, a) -> Mov (p, Reg a)) param_map @ entry.b_instrs;
  f.fn_params <- List.map snd param_map;

  (* --- positions and intervals --- *)
  let live = Ir.Liveness.compute f in
  let nv = f.fn_nreg in
  let istart = Array.make nv max_int and iend = Array.make nv (-1) in
  let hint = Array.make nv (-1) in
  let touch r p =
    if p < istart.(r) then istart.(r) <- p;
    if p > iend.(r) then iend.(r) <- p
  in
  let pos = ref 0 in
  List.iter
    (fun b ->
      let bstart = !pos in
      let after = Ir.Liveness.per_instr live b in
      Ir.Liveness.ISet.iter (fun r -> touch r bstart) (Ir.Liveness.live_in live b.b_label);
      List.iteri
        (fun idx i ->
          let p = !pos + idx in
          List.iter (fun r -> touch r p) (uses i);
          (match Ir.Instr.def i with Some d -> touch d p | None -> ());
          Ir.Liveness.ISet.iter (fun r -> touch r (p + 1)) after.(idx);
          match i with
          | Mov (d, Reg s) | Opaque (d, Reg s) -> hint.(d) <- s
          | _ -> ())
        b.b_instrs;
      let tpos = !pos + List.length b.b_instrs in
      List.iter (fun r -> touch r tpos) (term_uses b.b_term);
      Ir.Liveness.ISet.iter
        (fun r -> touch r tpos)
        (Ir.Liveness.live_out live b.b_label);
      pos := tpos + 1)
    f.fn_blocks;

  (* --- linear scan --- *)
  let assign = Array.make nv None in
  (* physical registers 1 .. avail are allocatable *)
  let free = Array.make (avail + 1) true in
  assign.(fp) <- Some (Phys 0);
  let active : (int * int) list ref = ref [] (* (end, vreg) sorted *) in
  let spill_slot v =
    let off = (f.fn_frame + 7) / 8 * 8 in
    f.fn_frame <- off + 8;
    assign.(v) <- Some (Slot off)
  in
  let expire p =
    let keep, gone = List.partition (fun (e, _) -> e >= p) !active in
    active := keep;
    List.iter
      (fun (_, v) ->
        match assign.(v) with
        | Some (Phys r) when r <> 0 -> free.(r) <- true
        | _ -> ())
      gone
  in
  let intervals =
    List.sort
      (fun (_, s1, _) (_, s2, _) -> Int.compare s1 s2)
      (List.filter_map
         (fun v ->
           if v = fp || iend.(v) < 0 then None
           else Some (v, istart.(v), iend.(v)))
         (List.init nv Fun.id))
  in
  let coalesced = ref 0 and spills = ref 0 in
  List.iter
    (fun (v, s, e) ->
      expire s;
      (* try the hint first (copy coalescing): the hint register is usable
         when free, or when the hint's interval ends exactly where ours
         starts — i.e. its last use is the copy that defines us, the gcc
         "same location as the result" constraint *)
      let hinted =
        let h = hint.(v) in
        if h >= 0 && h < nv then
          match assign.(h) with
          | Some (Phys r) when r >= 1 && r <= avail && free.(r) -> Some r
          | Some (Phys r) when r >= 1 && r <= avail && iend.(h) <= s ->
              (* steal: drop the expiring hint interval from active so its
                 later expiry does not free the register under us *)
              active := List.filter (fun (_, x) -> x <> h) !active;
              Some r
          | _ -> None
        else None
      in
      let chosen =
        match hinted with
        | Some r ->
            incr coalesced;
            Some r
        | None ->
            let rec find r = if r > avail then None else if free.(r) then Some r else find (r + 1) in
            find 1
      in
      match chosen with
      | Some r ->
          free.(r) <- false;
          assign.(v) <- Some (Phys r);
          active := List.merge compare [ (e, v) ] !active
      | None -> (
          (* spill the interval that ends last *)
          match List.rev !active with
          | (e', v') :: _ when e' > e -> (
              match assign.(v') with
              | Some (Phys r) ->
                  spill_slot v';
                  incr spills;
                  active := List.filter (fun (_, x) -> x <> v') !active;
                  assign.(v) <- Some (Phys r);
                  active := List.merge compare [ (e, v) ] !active
              | _ ->
                  spill_slot v;
                  incr spills)
          | _ ->
              spill_slot v;
              incr spills))
    intervals;

  (* --- rewrite --- *)
  let scratch = Array.init nscratch (fun i -> nregs - 1 - i) in
  let loc v =
    match assign.(v) with
    | Some a -> a
    | None -> Phys scratch.(0) (* never-live register: any scratch will do *)
  in
  List.iter
    (fun b ->
      let out = ref [] in
      let push i = out := i :: !out in
      let next_scratch = ref 0 in
      let take_scratch () =
        let s = scratch.(!next_scratch) in
        next_scratch := !next_scratch + 1;
        s
      in
      let rewrite_instr i =
        next_scratch := 0;
        (* map each used spilled vreg to a scratch loaded just before *)
        let mapping = Hashtbl.create 4 in
        let map_use r =
          match loc r with
          | Phys p -> Reg p
          | Slot off -> (
              match Hashtbl.find_opt mapping r with
              | Some s -> Reg s
              | None ->
                  let s = take_scratch () in
                  push (Load (W8, s, Reg 0, Imm off));
                  Hashtbl.replace mapping r s;
                  Reg s)
        in
        let i' = map_instr_ops map_use i in
        match Ir.Instr.def i' with
        | Some d -> (
            match loc d with
            | Phys p ->
                let set_def = function
                  | Mov (_, s) -> Mov (p, s)
                  | Bin (op, _, a, b) -> Bin (op, p, a, b)
                  | Rel (op, _, a, b) -> Rel (op, p, a, b)
                  | Load (w, _, a, b) -> Load (w, p, a, b)
                  | Opaque (_, s) -> Opaque (p, s)
                  | Call (Some _, fn, n) -> Call (Some p, fn, n)
                  | other -> other
                in
                push (set_def i')
            | Slot off ->
                let s = take_scratch () in
                let set_def = function
                  | Mov (_, x) -> Mov (s, x)
                  | Bin (op, _, a, b) -> Bin (op, s, a, b)
                  | Rel (op, _, a, b) -> Rel (op, s, a, b)
                  | Load (w, _, a, b) -> Load (w, s, a, b)
                  | Opaque (_, x) -> Opaque (s, x)
                  | Call (Some _, fn, n) -> Call (Some s, fn, n)
                  | other -> other
                in
                push (set_def i');
                push (Store (W8, Reg s, Reg 0, Imm off)))
        | None -> push i'
      in
      List.iter rewrite_instr b.b_instrs;
      (* terminator operands *)
      next_scratch := 0;
      let map_use r =
        match loc r with
        | Phys p -> Reg p
        | Slot off ->
            let s = take_scratch () in
            push (Load (W8, s, Reg 0, Imm off));
            Reg s
      in
      b.b_term <- map_term_ops map_use b.b_term;
      b.b_instrs <- List.rev !out)
    f.fn_blocks;

  (* incoming argument registers must have physical homes *)
  f.fn_params <-
    List.map
      (fun a ->
        match loc a with
        | Phys p -> p
        | Slot _ -> raise (Too_many_params f.fn_name))
      f.fn_params;

  (* --- lower Opaque, drop no-op moves --- *)
  List.iter
    (fun b ->
      b.b_instrs <-
        List.filter_map
          (function
            | Opaque (d, Reg s) when d = s -> None
            | Opaque (d, s) -> Some (Mov (d, s))
            | Mov (d, Reg s) when d = s -> None
            | i -> Some i)
          b.b_instrs)
    f.fn_blocks;
  f.fn_nreg <- nregs;
  { ra_spills = !spills; ra_moves_coalesced = !coalesced }
