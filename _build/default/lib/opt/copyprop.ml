(** Block-local copy and constant propagation.

    [Mov (d, s)] makes later uses of [d] use [s] directly, as long as
    neither is redefined.  [Opaque] definitions are never propagated:
    KEEP_LIVE results must remain explicitly stored, and the compiler has
    "lost all information about how the resulting value was computed". *)

open Ir.Instr

let run_block (b : block) =
  let env : (reg, operand) Hashtbl.t = Hashtbl.create 16 in
  let invalidate r =
    Hashtbl.remove env r;
    (* drop any mapping whose source was r *)
    let victims =
      Hashtbl.fold
        (fun d s acc -> if s = Reg r then d :: acc else acc)
        env []
    in
    List.iter (Hashtbl.remove env) victims
  in
  let subst r =
    match Hashtbl.find_opt env r with Some o -> o | None -> Reg r
  in
  let instrs =
    List.map
      (fun i ->
        let i = map_instr_ops subst i in
        (match Ir.Instr.def i with Some d -> invalidate d | None -> ());
        (match i with
        | Mov (d, s) when s <> Reg d -> Hashtbl.replace env d s
        | _ -> ());
        i)
      b.b_instrs
  in
  b.b_instrs <- instrs;
  b.b_term <- map_term_ops subst b.b_term

let run (f : func) = List.iter run_block f.fn_blocks
