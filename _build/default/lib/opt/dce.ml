(** Liveness-based dead code elimination.

    Removes pure instructions whose result is dead.  [Opaque] definitions
    with dead results are removable (they have no observable effect); the
    [KeepLive] marker itself is a side effect and always survives — it is
    the compiler's promise to the collector. *)

open Ir.Instr

let run (f : func) =
  let changed = ref true in
  while !changed do
    changed := false;
    let live = Ir.Liveness.compute f in
    List.iter
      (fun b ->
        let after = Ir.Liveness.per_instr live b in
        let keep = ref [] in
        List.iteri
          (fun idx i ->
            let dead =
              match Ir.Instr.def i with
              | Some d ->
                  (not (Ir.Liveness.ISet.mem d after.(idx)))
                  && not (has_side_effect i)
              | None -> false
            in
            if dead then changed := true else keep := i :: !keep)
          b.b_instrs;
        b.b_instrs <- List.rev !keep)
      f.fn_blocks
  done

(** Also drop trivially unreachable blocks (no predecessors, not entry). *)
let prune_unreachable (f : func) =
  match f.fn_blocks with
  | [] -> ()
  | entry :: _ ->
      let reachable = Hashtbl.create 16 in
      let by_label = Hashtbl.create 16 in
      List.iter (fun b -> Hashtbl.replace by_label b.b_label b) f.fn_blocks;
      let rec visit l =
        if not (Hashtbl.mem reachable l) then begin
          Hashtbl.replace reachable l ();
          match Hashtbl.find_opt by_label l with
          | Some b -> List.iter visit (successors b.b_term)
          | None -> ()
        end
      in
      visit entry.b_label;
      f.fn_blocks <-
        List.filter (fun b -> Hashtbl.mem reachable b.b_label) f.fn_blocks
