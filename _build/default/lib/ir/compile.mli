(** Lowering from the type-annotated AST to the three-address IR.

    Two compile modes mirror the paper's builds: [opt_mode] keeps scalar
    locals in virtual registers and folds address arithmetic into
    load/store address modes at selection time; [debug_mode] homes every
    local in its stack slot (fully debuggable code — GC-safe by
    construction).  KEEP_LIVE lowers to the [KeepLive]/[Opaque] pair;
    [Opaque] results block address folding, exactly where the paper says
    they must. *)

exception Unsupported of string * Csyntax.Loc.t
(** A construct outside the executable subset (floating point, struct
    parameters, non-constant global initializers, ...). *)

type mode = {
  cm_locals_in_memory : bool;
  cm_fold_addressing : bool;
}

val opt_mode : mode

val debug_mode : mode

val compile_program : ?mode:mode -> Csyntax.Ast.program -> Instr.program
(** Lay out globals and string literals in the statics image and compile
    every function.  @raise Unsupported on out-of-subset constructs. *)
