(** Backward liveness dataflow over the CFG.

    Used by dead-code elimination, the register allocator, the
    pointer-disguising optimizer (whose safety conditions are phrased in
    terms of "dead after this instruction") and the peephole postprocessor
    ("a simple global, intraprocedural analysis that allows us to identify
    possible uses of register values"). *)

module ISet = Set.Make (Int)

open Instr

type t = {
  live_in : (label, ISet.t) Hashtbl.t;
  live_out : (label, ISet.t) Hashtbl.t;
}

let block_use_def (b : block) =
  (* use = registers read before any write in the block *)
  let use = ref ISet.empty and def = ref ISet.empty in
  let see_uses rs =
    List.iter (fun r -> if not (ISet.mem r !def) then use := ISet.add r !use) rs
  in
  List.iter
    (fun i ->
      see_uses (uses i);
      match Instr.def i with Some d -> def := ISet.add d !def | None -> ())
    b.b_instrs;
  see_uses (term_uses b.b_term);
  (!use, !def)

let compute (f : func) : t =
  let live_in = Hashtbl.create 16 and live_out = Hashtbl.create 16 in
  let blocks = f.fn_blocks in
  let use_def =
    List.map
      (fun b ->
        Hashtbl.replace live_in b.b_label ISet.empty;
        Hashtbl.replace live_out b.b_label ISet.empty;
        (b, block_use_def b))
      blocks
  in
  let changed = ref true in
  while !changed do
    changed := false;
    (* iterate in reverse order for faster convergence *)
    List.iter
      (fun (b, (use, def)) ->
        let out =
          List.fold_left
            (fun acc l ->
              match Hashtbl.find_opt live_in l with
              | Some s -> ISet.union acc s
              | None -> acc)
            ISet.empty
            (successors b.b_term)
        in
        let inn = ISet.union use (ISet.diff out def) in
        if not (ISet.equal out (Hashtbl.find live_out b.b_label)) then begin
          Hashtbl.replace live_out b.b_label out;
          changed := true
        end;
        if not (ISet.equal inn (Hashtbl.find live_in b.b_label)) then begin
          Hashtbl.replace live_in b.b_label inn;
          changed := true
        end)
      (List.rev use_def)
  done;
  { live_in; live_out }

let live_out t l =
  Option.value ~default:ISet.empty (Hashtbl.find_opt t.live_out l)

let live_in t l =
  Option.value ~default:ISet.empty (Hashtbl.find_opt t.live_in l)

(** Per-instruction liveness within a block: returns an array [after] where
    [after.(i)] is the set of registers live immediately after instruction
    [i] of the block (index into [b.b_instrs]). *)
let per_instr t (b : block) : ISet.t array =
  let instrs = Array.of_list b.b_instrs in
  let n = Array.length instrs in
  let after = Array.make (max n 1) ISet.empty in
  let live = ref (ISet.union (live_out t b.b_label)
                    (ISet.of_list (term_uses b.b_term))) in
  for i = n - 1 downto 0 do
    after.(i) <- !live;
    let ins = instrs.(i) in
    (match Instr.def ins with Some d -> live := ISet.remove d !live | None -> ());
    live := ISet.union !live (ISet.of_list (uses ins))
  done;
  after
