(** Backward liveness dataflow over the CFG.

    Used by dead-code elimination, register allocation, the
    pointer-disguising passes (whose safety conditions are phrased as
    "dead after this instruction") and the peephole postprocessor. *)

module ISet : Set.S with type elt = int

type t

val compute : Instr.func -> t

val live_in : t -> Instr.label -> ISet.t

val live_out : t -> Instr.label -> ISet.t

val per_instr : t -> Instr.block -> ISet.t array
(** [per_instr t b]: element [i] is the set of registers live immediately
    after instruction [i] of the block. *)
