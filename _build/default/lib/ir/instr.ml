(** Three-address intermediate representation.

    The IR doubles as the "assembly" of the paper's discussion: after
    register allocation the same instruction set runs on the VM with a
    finite register file, and the peephole postprocessor rewrites it the
    way the paper's SPARC postprocessor rewrites assembly.

    Two pseudo-instructions implement KEEP_LIVE:
    - [KeepLive v]: the empty asm sequence — costs nothing, but is a *use*
      of [v], pinning it live to this point (the "special comment understood
      by the peephole optimizer");
    - [Opaque (d, s)]: d receives the value of s, and the compiler loses
      all information about how it was computed; optimizer passes must not
      look through it.  Lowered to a plain [Mov] after optimization, which
      register-allocation coalesces away (the gcc "0" constraint). *)

type reg = int

type label = int

type operand =
  | Reg of reg
  | Imm of int
  | Glob of int  (** offset into the statics image, resolved at load time *)

type width = W1 | W2 | W4 | W8

let bytes_of_width = function W1 -> 1 | W2 -> 2 | W4 -> 4 | W8 -> 8

let width_of_bytes = function
  | 1 -> W1
  | 2 -> W2
  | 4 -> W4
  | 8 -> W8
  | n -> invalid_arg (Printf.sprintf "width_of_bytes %d" n)

type binop = Add | Sub | Mul | Div | Mod | Shl | Shr | And | Or | Xor

type relop = Eq | Ne | Lt | Le | Gt | Ge

type instr =
  | Mov of reg * operand
  | Bin of binop * reg * operand * operand
  | Rel of relop * reg * operand * operand  (** dst = (a rel b) ? 1 : 0 *)
  | Load of width * reg * operand * operand  (** dst = mem\[base + off\] *)
  | Store of width * operand * operand * operand
      (** mem\[base + off\] = src *)
  | Push of operand  (** pass the next argument of the upcoming call *)
  | Call of reg option * string * int  (** nargs, passed via [Push] *)
  | KeepLive of operand
  | Opaque of reg * operand

type terminator =
  | Jmp of label
  | Br of operand * label * label  (** nonzero -> first, else second *)
  | Ret of operand option

type block = {
  b_label : label;
  mutable b_instrs : instr list;  (** in execution order *)
  mutable b_term : terminator;
}

type func = {
  fn_name : string;
  mutable fn_params : reg list;  (** registers receiving the arguments *)
  fn_ret_void : bool;
  mutable fn_blocks : block list;  (** entry block first *)
  mutable fn_nreg : int;  (** number of virtual registers in use *)
  mutable fn_frame : int;  (** frame size in bytes (locals + spills) *)
}

type program = {
  p_funcs : func list;
  p_statics : Bytes.t;  (** initial image of the statics region *)
  p_relocs : (int * int) list;
      (** (slot, target): statics slots holding pointers into the statics
          region itself, fixed up with the base address at load time *)
}

(* The frame pointer is virtual register 0 in every function; the VM
   initializes it to the frame base on entry. *)
let fp = 0

let first_vreg = 1

(* ------------------------------------------------------------------ *)
(* Uses / defs                                                         *)
(* ------------------------------------------------------------------ *)

let op_uses = function Reg r -> [ r ] | Imm _ | Glob _ -> []

let uses = function
  | Mov (_, s) -> op_uses s
  | Bin (_, _, a, b) | Rel (_, _, a, b) | Load (_, _, a, b) ->
      op_uses a @ op_uses b
  | Store (_, src, base, off) -> op_uses src @ op_uses base @ op_uses off
  | Push v -> op_uses v
  | Call (_, _, _) -> []
  | KeepLive v -> op_uses v
  | Opaque (_, s) -> op_uses s

let def = function
  | Mov (d, _) | Bin (_, d, _, _) | Rel (_, d, _, _) | Load (_, d, _, _)
  | Opaque (d, _) ->
      Some d
  | Call (d, _, _) -> d
  | Store _ | Push _ | KeepLive _ -> None

let term_uses = function
  | Jmp _ -> []
  | Br (c, _, _) -> op_uses c
  | Ret (Some v) -> op_uses v
  | Ret None -> []

let successors = function
  | Jmp l -> [ l ]
  | Br (_, l1, l2) -> [ l1; l2 ]
  | Ret _ -> []

(* Substitute registers in operands (used by copy propagation and the
   peephole). *)
let map_op f = function
  | Reg r -> f r
  | (Imm _ | Glob _) as o -> o

let map_instr_ops f = function
  | Mov (d, s) -> Mov (d, map_op f s)
  | Bin (op, d, a, b) -> Bin (op, d, map_op f a, map_op f b)
  | Rel (op, d, a, b) -> Rel (op, d, map_op f a, map_op f b)
  | Load (w, d, a, b) -> Load (w, d, map_op f a, map_op f b)
  | Store (w, s, a, b) -> Store (w, map_op f s, map_op f a, map_op f b)
  | Push v -> Push (map_op f v)
  | Call (d, fn, n) -> Call (d, fn, n)
  | KeepLive v -> KeepLive (map_op f v)
  | Opaque (d, s) -> Opaque (d, map_op f s)

let map_term_ops f = function
  | Jmp l -> Jmp l
  | Br (c, l1, l2) -> Br (map_op f c, l1, l2)
  | Ret (Some v) -> Ret (Some (map_op f v))
  | Ret None -> Ret None

(* Has this instruction side effects that forbid removing it even when the
   destination is dead? *)
let has_side_effect = function
  | Store _ | Call _ | Push _ | KeepLive _ -> true
  | Opaque _ -> false (* removable if the result is dead *)
  | Mov _ | Bin _ | Rel _ | Load _ -> false

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"
  | Shl -> "shl"
  | Shr -> "shr"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"

let relop_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let pp_op fmt = function
  | Reg r -> Format.fprintf fmt "r%d" r
  | Imm n -> Format.fprintf fmt "%d" n
  | Glob g -> Format.fprintf fmt "@%d" g

let width_name = function W1 -> "b" | W2 -> "h" | W4 -> "w" | W8 -> "d"

let pp_instr fmt = function
  | Mov (d, s) -> Format.fprintf fmt "mov   r%d, %a" d pp_op s
  | Bin (op, d, a, b) ->
      Format.fprintf fmt "%-5s r%d, %a, %a" (binop_name op) d pp_op a pp_op b
  | Rel (op, d, a, b) ->
      Format.fprintf fmt "set%s r%d, %a, %a" (relop_name op) d pp_op a pp_op b
  | Load (w, d, a, b) ->
      Format.fprintf fmt "ld%s   r%d, [%a + %a]" (width_name w) d pp_op a
        pp_op b
  | Store (w, s, a, b) ->
      Format.fprintf fmt "st%s   %a, [%a + %a]" (width_name w) pp_op s pp_op a
        pp_op b
  | Push v -> Format.fprintf fmt "push  %a" pp_op v
  | Call (Some d, fn, n) -> Format.fprintf fmt "call  r%d, %s/%d" d fn n
  | Call (None, fn, n) -> Format.fprintf fmt "call  %s/%d" fn n
  | KeepLive v -> Format.fprintf fmt "keep  %a" pp_op v
  | Opaque (d, s) -> Format.fprintf fmt "opaq  r%d, %a" d pp_op s

let pp_term fmt = function
  | Jmp l -> Format.fprintf fmt "jmp   L%d" l
  | Br (c, l1, l2) -> Format.fprintf fmt "br    %a, L%d, L%d" pp_op c l1 l2
  | Ret (Some v) -> Format.fprintf fmt "ret   %a" pp_op v
  | Ret None -> Format.fprintf fmt "ret"

let pp_block fmt b =
  Format.fprintf fmt "L%d:@." b.b_label;
  List.iter (fun i -> Format.fprintf fmt "  %a@." pp_instr i) b.b_instrs;
  Format.fprintf fmt "  %a@." pp_term b.b_term

let pp_func fmt f =
  Format.fprintf fmt "%s(%s): frame=%d@." f.fn_name
    (String.concat ", " (List.map (Printf.sprintf "r%d") f.fn_params))
    f.fn_frame;
  List.iter (pp_block fmt) f.fn_blocks

(** Static size of a function, in instructions (terminators included) —
    the paper's object-code-size metric.  [KeepLive] markers assemble to an
    empty sequence (the paper's empty inline asm), so they have no size. *)
let code_size f =
  let real = function KeepLive _ -> false | _ -> true in
  List.fold_left
    (fun acc b -> acc + List.length (List.filter real b.b_instrs) + 1)
    0 f.fn_blocks

let program_size p = List.fold_left (fun acc f -> acc + code_size f) 0 p.p_funcs
