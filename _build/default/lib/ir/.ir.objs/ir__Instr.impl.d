lib/ir/instr.ml: Bytes Format List Printf String
