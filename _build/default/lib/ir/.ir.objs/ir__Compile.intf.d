lib/ir/compile.mli: Csyntax Instr
