lib/ir/liveness.mli: Instr Set
