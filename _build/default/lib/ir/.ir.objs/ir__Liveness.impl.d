lib/ir/liveness.ml: Array Hashtbl Instr Int List Option Set
