lib/ir/compile.ml: Ast Bytes Char Csyntax Ctype Format Hashtbl Instr List Loc Option Pretty String Symtab Sys
