(** Lowering from the type-annotated AST to the three-address IR.

    Two compile modes mirror the paper's build configurations:
    - optimized ([opt_mode]): scalar locals whose address is never taken
      live in virtual registers, and address arithmetic with constant or
      simple offsets is folded into load/store address modes at selection
      time (the [ld \[%o0+1\]] baseline of the paper's Analysis section);
    - debuggable ([debug_mode]): every local lives in its stack slot and is
      reloaded around each use, and no address folding happens — "fully
      debuggable code", which is GC-safe by construction.

    KEEP_LIVE lowers to the [KeepLive]/[Opaque] pseudo-instruction pair;
    because [Opaque] results cannot be seen through, the optimized mode's
    address folding is blocked exactly where the paper says it must be. *)

open Csyntax
open Instr

exception Unsupported of string * Loc.t

let unsupported loc fmt =
  Format.kasprintf (fun s -> raise (Unsupported (s, loc))) fmt

type mode = {
  cm_locals_in_memory : bool;
  cm_fold_addressing : bool;
}

let opt_mode = { cm_locals_in_memory = false; cm_fold_addressing = true }

(* debuggable code still uses the machine's addressing modes — an -O0
   instruction selector folds [fp+off] and [base+scaled] addresses; what it
   does not do is keep variables in registers *)
let debug_mode = { cm_locals_in_memory = true; cm_fold_addressing = true }

type home = Hreg of reg | Hstack of int | Hglobal of int

(* ------------------------------------------------------------------ *)
(* Statics image                                                       *)
(* ------------------------------------------------------------------ *)

type statics = {
  mutable img : Bytes.t;
  mutable used : int;
  strings : (string, int) Hashtbl.t;
  mutable relocs : (int * int) list;
      (** (slot offset, target offset): slot holds a statics-relative
          pointer needing the statics base added at load time *)
}

let statics_create () =
  { img = Bytes.make 1024 '\000'; used = 0; strings = Hashtbl.create 16; relocs = [] }

let statics_alloc st size align =
  let off = (st.used + align - 1) / align * align in
  st.used <- off + size;
  while st.used > Bytes.length st.img do
    let fresh = Bytes.make (2 * Bytes.length st.img) '\000' in
    Bytes.blit st.img 0 fresh 0 (Bytes.length st.img);
    st.img <- fresh
  done;
  off

let statics_set_int st off width v =
  for i = 0 to width - 1 do
    Bytes.set st.img (off + i) (Char.chr ((v asr (8 * i)) land 0xff))
  done

let intern_string st s =
  match Hashtbl.find_opt st.strings s with
  | Some off -> off
  | None ->
      let off = statics_alloc st (String.length s + 1) 1 in
      Bytes.blit_string s 0 st.img off (String.length s);
      Hashtbl.replace st.strings s off;
      off

(* ------------------------------------------------------------------ *)
(* Compilation context                                                 *)
(* ------------------------------------------------------------------ *)

type fctx = {
  mode : mode;
  tenv : Ctype.Env.t;
  st : statics;
  globals : (string, int * Ctype.t) Hashtbl.t;
  homes : home Symtab.t;
  types : Ctype.t Symtab.t;  (** declared type of each variable in scope *)
  addressable : (string, unit) Hashtbl.t;  (** locals whose address is taken *)
  mutable nreg : int;
  mutable nlabel : int;
  mutable frame : int;
  mutable cur : block;
  mutable blocks : block list;  (** reverse order *)
  mutable breaks : label list;
  mutable continues : label list;
}

let fresh_reg c =
  let r = c.nreg in
  c.nreg <- c.nreg + 1;
  r

let fresh_label c =
  let l = c.nlabel in
  c.nlabel <- c.nlabel + 1;
  l

let emit c i = c.cur.b_instrs <- i :: c.cur.b_instrs

(* blocks collect instructions in reverse; sealed when switching *)
let start_block c l =
  let b = { b_label = l; b_instrs = []; b_term = Ret None } in
  c.blocks <- b :: c.blocks;
  c.cur <- b

let terminate c t =
  c.cur.b_term <- t

let alloc_stack c size align =
  let off = (c.frame + align - 1) / align * align in
  c.frame <- off + size;
  off

let size_of c ty = Ctype.size c.tenv ty

let width_of c ty = width_of_bytes (min 8 (size_of c ty))

let scalar_width c ty =
  match Ctype.decay ty with
  | Ctype.Char -> W1
  | Ctype.Short -> W2
  | Ctype.Int -> W4
  | Ctype.Long | Ctype.Ptr _ -> W8
  | t -> width_of c t

(* element size stepped over by arithmetic on pointer type [ty] *)
let step_size c ty =
  match Ctype.pointee (Ctype.decay ty) with
  | Some Ctype.Void -> 1
  | Some t -> size_of c t
  | None -> 1

(* ------------------------------------------------------------------ *)
(* Address-taken analysis                                              *)
(* ------------------------------------------------------------------ *)

let addressable_vars (f : Ast.func) : (string, unit) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  let on_expr () (e : Ast.expr) =
    match e.Ast.edesc with
    | Ast.AddrOf inner ->
        (* the root variable of the lvalue chain is addressable — but only
           when the chain stays within the variable's own storage.  [&p[i]]
           with pointer-typed [p] derives from p's value, not its
           location. *)
        let rec root (x : Ast.expr) =
          match x.Ast.edesc with
          | Ast.Var v -> Hashtbl.replace tbl v ()
          | Ast.Field (b, _) | Ast.Cast (_, b) -> root b
          | Ast.Index (b, _) -> (
              match b.Ast.ety with
              | Some (Ctype.Array _) -> root b
              | _ -> () (* pointer subscript: memory reached via a value *))
          | _ -> () (* Deref/Arrow: the memory is reached via a pointer *)
        in
        root inner
    | Ast.RuntimeCall (("GC_pre_incr" | "GC_post_incr"), arg :: _) -> (
        match arg.Ast.edesc with
        | Ast.AddrOf { Ast.edesc = Ast.Var v; _ } -> Hashtbl.replace tbl v ()
        | _ -> ())
    | _ -> ()
  in
  ignore (Ast.fold_stmt_exprs on_expr () f.Ast.f_body);
  tbl

(* ------------------------------------------------------------------ *)
(* Constant folding for static initializers                            *)
(* ------------------------------------------------------------------ *)

let rec eval_const c (e : Ast.expr) : int option =
  match e.Ast.edesc with
  | Ast.IntLit n -> Some n
  | Ast.CharLit ch -> Some (Char.code ch)
  | Ast.SizeofType ty -> Some (size_of c ty)
  | Ast.SizeofExpr x -> Some (size_of c (Ast.typ x))
  | Ast.Unop (Ast.Neg, a) -> Option.map (fun v -> -v) (eval_const c a)
  | Ast.Unop (Ast.BitNot, a) -> Option.map lnot (eval_const c a)
  | Ast.Cast (_, a) -> eval_const c a
  | Ast.Binop (op, a, b) -> (
      match (eval_const c a, eval_const c b) with
      | Some x, Some y -> (
          match op with
          | Ast.Add -> Some (x + y)
          | Ast.Sub -> Some (x - y)
          | Ast.Mul -> Some (x * y)
          | Ast.Div when y <> 0 -> Some (x / y)
          | Ast.Mod when y <> 0 -> Some (x mod y)
          | Ast.Shl -> Some (x lsl y)
          | Ast.Shr -> Some (x asr y)
          | Ast.BitAnd -> Some (x land y)
          | Ast.BitOr -> Some (x lor y)
          | Ast.BitXor -> Some (x lxor y)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* An lvalue is either a register-homed variable or a memory location
   expressed as base + offset operands. *)
type lv = Lreg of reg | Lmem of operand * operand

let rec rv c (e : Ast.expr) : operand =
  let loc = e.Ast.eloc in
  match e.Ast.edesc with
  | Ast.IntLit n -> Imm n
  | Ast.CharLit ch -> Imm (Char.code ch)
  | Ast.FloatLit _ -> unsupported loc "floating point"
  | Ast.StrLit s -> Glob (intern_string c.st s)
  | Ast.SizeofType ty -> Imm (size_of c ty)
  | Ast.SizeofExpr x -> Imm (size_of c (Ast.typ x))
  | Ast.Var x -> (
      match Symtab.find c.homes x with
      | Some (Hreg r) -> Reg r
      | Some (Hstack off) ->
          if Ctype.is_aggregate (Ast.typ e) then
            (* aggregates decay to their address *)
            let d = fresh_reg c in
            (emit c (Bin (Add, d, Reg fp, Imm off));
             Reg d)
          else
            let d = fresh_reg c in
            emit c (Load (scalar_width c (Ast.typ e), d, Reg fp, Imm off));
            Reg d
      | Some (Hglobal off) ->
          if Ctype.is_aggregate (Ast.typ e) then Glob off
          else
            let d = fresh_reg c in
            emit c (Load (scalar_width c (Ast.typ e), d, Glob off, Imm 0));
            Reg d
      | None -> unsupported loc "undeclared variable %s" x)
  | Ast.Unop (Ast.Neg, a) ->
      let va = rv c a in
      let d = fresh_reg c in
      emit c (Bin (Sub, d, Imm 0, va));
      Reg d
  | Ast.Unop (Ast.BitNot, a) ->
      let va = rv c a in
      let d = fresh_reg c in
      emit c (Bin (Xor, d, va, Imm (-1)));
      Reg d
  | Ast.Unop (Ast.Not, a) ->
      let va = rv c a in
      let d = fresh_reg c in
      emit c (Rel (Eq, d, va, Imm 0));
      Reg d
  | Ast.Binop ((Ast.LogAnd | Ast.LogOr), _, _) | Ast.Cond (_, _, _) ->
      control_value c e
  | Ast.Binop (op, a, b) -> binop_rv c loc op a b (Ast.rtyp e)
  | Ast.Assign (lhs, rhs) -> compile_assign c lhs rhs
  | Ast.OpAssign (op, lhs, rhs) -> compile_opassign c loc op lhs rhs
  | Ast.Incr (k, lhs) -> compile_incr c loc k lhs
  | Ast.Deref _ | Ast.Index (_, _) | Ast.Arrow (_, _) | Ast.Field (_, _) -> (
      if Ctype.is_aggregate (Ast.typ e) then
        (* value is the address (arrays) or the struct location *)
        addr_value c e
      else
        match lvalue c e with
        | Lreg r -> Reg r
        | Lmem (base, off) ->
            let d = fresh_reg c in
            emit c (Load (scalar_width c (Ast.typ e), d, base, off));
            Reg d)
  | Ast.AddrOf a -> addr_value c a
  | Ast.Call (fn, args) -> compile_call c (Some (Ast.typ e)) fn args
  | Ast.RuntimeCall (fn, args) -> compile_call c (Some (Ast.typ e)) fn args
  | Ast.Cast (ty, a) ->
      let v = rv c a in
      (* narrowing integer casts re-extend through a memory-free truncate:
         modelled as AND for unsigned-char-sized masks is wrong for signed
         chars, so use shifts *)
      let src_ty = Ast.rtyp a in
      let dst_sz = try size_of c ty with Ctype.Incomplete _ -> 8 in
      let src_sz = try size_of c (Ctype.decay src_ty) with Ctype.Incomplete _ -> 8 in
      if
        Ctype.is_integer ty && Ctype.is_integer (Ctype.decay src_ty)
        && dst_sz < src_sz && dst_sz < 8
      then narrow c (width_of_bytes dst_sz) v
      else v
  | Ast.Comma (a, b) ->
      ignore (rv c a);
      rv c b
  | Ast.KeepLive (a, base) ->
      let v = rv c a in
      (match base with
      | Some b ->
          let vb = rv c b in
          emit c (KeepLive vb)
      | None -> ());
      let d = fresh_reg c in
      emit c (Opaque (d, v));
      Reg d

and binop_rv c loc op a b result_ty : operand =
  let ta = Ast.rtyp a and tb = Ast.rtyp b in
  match op with
  | Ast.Add | Ast.Sub
    when Ctype.is_pointer ta || Ctype.is_pointer tb ->
      if Ctype.is_pointer ta && Ctype.is_pointer tb then begin
        (* pointer difference: (a - b) / elem *)
        let va = rv c a in
        let vb = rv c b in
        let d = fresh_reg c in
        emit c (Bin (Sub, d, va, vb));
        let elem = step_size c ta in
        if elem = 1 then Reg d
        else begin
          let q = fresh_reg c in
          emit c (Bin (Div, q, Reg d, Imm elem));
          Reg q
        end
      end
      else begin
        let ptr, idx = if Ctype.is_pointer ta then (a, b) else (b, a) in
        let vptr = rv c ptr in
        let vidx = scaled_index c idx (step_size c (Ast.rtyp ptr)) in
        let d = fresh_reg c in
        let irop = match op with Ast.Add -> Add | _ -> Sub in
        emit c (Bin (irop, d, vptr, vidx));
        Reg d
      end
  | _ ->
      let va = rv c a in
      let vb = rv c b in
      let d = fresh_reg c in
      (match op with
      | Ast.Add -> emit c (Bin (Add, d, va, vb))
      | Ast.Sub -> emit c (Bin (Sub, d, va, vb))
      | Ast.Mul -> emit c (Bin (Mul, d, va, vb))
      | Ast.Div -> emit c (Bin (Div, d, va, vb))
      | Ast.Mod -> emit c (Bin (Mod, d, va, vb))
      | Ast.Shl -> emit c (Bin (Shl, d, va, vb))
      | Ast.Shr -> emit c (Bin (Shr, d, va, vb))
      | Ast.BitAnd -> emit c (Bin (And, d, va, vb))
      | Ast.BitOr -> emit c (Bin (Or, d, va, vb))
      | Ast.BitXor -> emit c (Bin (Xor, d, va, vb))
      | Ast.Lt -> emit c (Rel (Lt, d, va, vb))
      | Ast.Gt -> emit c (Rel (Gt, d, va, vb))
      | Ast.Le -> emit c (Rel (Le, d, va, vb))
      | Ast.Ge -> emit c (Rel (Ge, d, va, vb))
      | Ast.Eq -> emit c (Rel (Eq, d, va, vb))
      | Ast.Ne -> emit c (Rel (Ne, d, va, vb))
      | Ast.LogAnd | Ast.LogOr -> unsupported loc "unexpected logical op");
      ignore result_ty;
      Reg d

(* index scaled by element size; constants are folded *)
and scaled_index c (idx : Ast.expr) elem : operand =
  match eval_const c idx with
  | Some n -> Imm (n * elem)
  | None ->
      let v = rv c idx in
      if elem = 1 then v
      else begin
        let d = fresh_reg c in
        emit c (Bin (Mul, d, v, Imm elem));
        Reg d
      end

(* The address of an lvalue as a value. *)
and addr_value c (e : Ast.expr) : operand =
  match lvalue c e with
  | Lreg _ -> unsupported e.Ast.eloc "address of register variable"
  | Lmem (base, Imm 0) -> base
  | Lmem (base, off) ->
      let d = fresh_reg c in
      emit c (Bin (Add, d, base, off));
      Reg d

(* Compute the location of an lvalue.  In folding mode, constant and simple
   offsets stay in the addressing mode; otherwise the full address is
   materialized and the access uses offset 0 (debuggable code). *)
and lvalue c (e : Ast.expr) : lv =
  let loc = e.Ast.eloc in
  let combine base off =
    if c.mode.cm_fold_addressing then Lmem (base, off)
    else
      match off with
      | Imm 0 -> Lmem (base, Imm 0)
      | _ ->
          let d = fresh_reg c in
          emit c (Bin (Add, d, base, off));
          Lmem (Reg d, Imm 0)
  in
  match e.Ast.edesc with
  | Ast.Var x -> (
      match Symtab.find c.homes x with
      | Some (Hreg r) -> Lreg r
      | Some (Hstack off) -> Lmem (Reg fp, Imm off)
      | Some (Hglobal off) -> Lmem (Glob off, Imm 0)
      | None -> unsupported loc "undeclared variable %s" x)
  | Ast.Deref a -> deref_addr c a
  | Ast.Index (a, i) ->
      let base = rv c a in
      let elem =
        match Ctype.pointee (Ast.rtyp a) with
        | Some t -> size_of c t
        | None -> unsupported loc "subscript of non-pointer"
      in
      combine base (scaled_index c i elem)
  | Ast.Arrow (p, f) -> (
      let base = rv c p in
      match Ctype.pointee (Ast.rtyp p) with
      | Some sty -> (
          match Ctype.find_field c.tenv sty f with
          | Some fld -> combine base (Imm fld.Ctype.fld_offset)
          | None -> unsupported loc "unknown field %s" f)
      | None -> unsupported loc "-> of non-pointer")
  | Ast.Field (b, f) -> (
      match lvalue c b with
      | Lreg _ -> unsupported loc "field of register variable"
      | Lmem (base, off) -> (
          match Ctype.find_field c.tenv (Ast.typ b) f with
          | Some fld -> (
              match off with
              | Imm n -> Lmem (base, Imm (n + fld.Ctype.fld_offset))
              | _ ->
                  let d = fresh_reg c in
                  emit c (Bin (Add, d, base, off));
                  combine (Reg d) (Imm fld.Ctype.fld_offset))
          | None -> unsupported loc "unknown field %s" f))
  | Ast.Cast (_, b) -> lvalue c b
  | Ast.Comma (a, b) ->
      ignore (rv c a);
      lvalue c b
  | _ -> unsupported loc "not an lvalue: %a" Pretty.pp_expr e

(* The address operand for [*a], folding [*(p + k)] into base+offset form
   in optimizing mode.  Opaque values (KEEP_LIVE results) are registers
   whose definition cannot be seen through, so annotated code never folds
   here — that is the point of the whole exercise. *)
and deref_addr c (a : Ast.expr) : lv =
  if not c.mode.cm_fold_addressing then begin
    let v = rv c a in
    Lmem (v, Imm 0)
  end
  else
    match a.Ast.edesc with
    | Ast.Binop ((Ast.Add | Ast.Sub) as op, x, y)
      when Ctype.is_pointer (Ast.rtyp x) && op = Ast.Add ->
        let base = rv c x in
        let off = scaled_index c y (step_size c (Ast.rtyp x)) in
        Lmem (base, off)
    | Ast.Cast (_, inner) when Ctype.is_pointer (Ast.rtyp inner) ->
        deref_addr c inner
    | _ -> Lmem (rv c a, Imm 0)

(* Sign-extending truncation to a narrow width, for values kept in
   registers.  The VM word is OCaml's 63-bit int, hence the shift
   distance.  [int] (W4) values are left unmodelled at full width: 32-bit
   overflow is undefined behaviour in C and none of the workloads relies
   on it, while truncating every int assignment would distort the cycle
   counts badly. *)
and narrow c width (v : operand) : operand =
  match width with
  | W8 | W4 -> v
  | W1 | W2 -> (
      let bits = 8 * bytes_of_width width in
      let sh = Sys.int_size - bits in
      match v with
      | Imm n -> Imm ((n lsl sh) asr sh)
      | _ ->
          let t = fresh_reg c in
          emit c (Bin (Shl, t, v, Imm sh));
          let d = fresh_reg c in
          emit c (Bin (Shr, d, Reg t, Imm sh));
          Reg d)

and store c (l : lv) width (v : operand) =
  match l with
  | Lreg r -> (
      match narrow c width v with
      | Reg s when s = r -> ()
      | v -> emit c (Mov (r, v)))
  | Lmem (base, off) -> emit c (Store (width, v, base, off))

and load_lv c (l : lv) width : operand =
  match l with
  | Lreg r -> Reg r
  | Lmem (base, off) ->
      let d = fresh_reg c in
      emit c (Load (width, d, base, off));
      Reg d

and compile_assign c (lhs : Ast.expr) (rhs : Ast.expr) : operand =
  let lty = Ast.typ lhs in
  if Ctype.is_aggregate lty then begin
    (* whole-struct assignment: block copy *)
    let dst = addr_value c lhs in
    let src = rv c rhs in
    emit c (Push dst);
    emit c (Push src);
    emit c (Push (Imm (size_of c lty)));
    emit c (Call (None, "memcpy", 3));
    dst
  end
  else begin
    let l = lvalue c lhs in
    let v = rv c rhs in
    store c l (scalar_width c lty) v;
    v
  end

and compile_opassign c loc op (lhs : Ast.expr) (rhs : Ast.expr) : operand =
  let lty = Ctype.decay (Ast.typ lhs) in
  let w = scalar_width c (Ast.typ lhs) in
  let l = lvalue c lhs in
  let old = load_lv c l w in
  let v =
    if Ctype.is_pointer lty then begin
      let vidx = scaled_index c rhs (step_size c lty) in
      let d = fresh_reg c in
      let irop = match op with Ast.Add -> Add | Ast.Sub -> Sub | _ ->
        unsupported loc "pointer compound assignment %s" (Ast.binop_to_string op)
      in
      emit c (Bin (irop, d, old, vidx));
      Reg d
    end
    else begin
      let vr = rv c rhs in
      let d = fresh_reg c in
      let irop =
        match op with
        | Ast.Add -> Add
        | Ast.Sub -> Sub
        | Ast.Mul -> Mul
        | Ast.Div -> Div
        | Ast.Mod -> Mod
        | Ast.Shl -> Shl
        | Ast.Shr -> Shr
        | Ast.BitAnd -> And
        | Ast.BitOr -> Or
        | Ast.BitXor -> Xor
        | _ -> unsupported loc "compound assignment %s" (Ast.binop_to_string op)
      in
      emit c (Bin (irop, d, old, vr));
      Reg d
    end
  in
  store c l w v;
  v

and compile_incr c _loc k (lhs : Ast.expr) : operand =
  let lty = Ctype.decay (Ast.typ lhs) in
  let w = scalar_width c (Ast.typ lhs) in
  let delta = if Ctype.is_pointer lty then step_size c lty else 1 in
  let l = lvalue c lhs in
  let old = load_lv c l w in
  (* make sure the old value survives the update for post forms *)
  let old_saved =
    match (k, old) with
    | (Ast.PostIncr | Ast.PostDecr), Reg r when l = Lreg r ->
        let t = fresh_reg c in
        emit c (Mov (t, old));
        Reg t
    | _ -> old
  in
  let d = fresh_reg c in
  let op =
    match k with
    | Ast.PreIncr | Ast.PostIncr -> Add
    | Ast.PreDecr | Ast.PostDecr -> Sub
  in
  emit c (Bin (op, d, old_saved, Imm delta));
  store c l w (Reg d);
  match k with
  | Ast.PreIncr | Ast.PreDecr -> Reg d
  | Ast.PostIncr | Ast.PostDecr -> old_saved

and compile_call c ret_ty fn args : operand =
  let vargs = List.map (rv c) args in
  List.iter (fun v -> emit c (Push v)) vargs;
  let want_result =
    match ret_ty with Some Ctype.Void | None -> false | Some _ -> true
  in
  if want_result then begin
    let d = fresh_reg c in
    emit c (Call (Some d, fn, List.length vargs));
    Reg d
  end
  else begin
    emit c (Call (None, fn, List.length vargs));
    Imm 0
  end

(* Short-circuit operators and ?: as values, via control flow into a
   result register. *)
and control_value c (e : Ast.expr) : operand =
  let d = fresh_reg c in
  let ltrue = fresh_label c
  and lfalse = fresh_label c
  and ljoin = fresh_label c in
  (match e.Ast.edesc with
  | Ast.Cond (cond, a, b) ->
      let lthen = fresh_label c and lelse = fresh_label c in
      compile_branch c cond lthen lelse;
      start_block c lthen;
      let va = rv c a in
      emit c (Mov (d, va));
      terminate c (Jmp ljoin);
      start_block c lelse;
      let vb = rv c b in
      emit c (Mov (d, vb));
      terminate c (Jmp ljoin)
  | _ ->
      compile_branch c e ltrue lfalse;
      start_block c ltrue;
      emit c (Mov (d, Imm 1));
      terminate c (Jmp ljoin);
      start_block c lfalse;
      emit c (Mov (d, Imm 0));
      terminate c (Jmp ljoin));
  start_block c ljoin;
  Reg d

(* Compile [e] for control: branch to [lt] when nonzero, [lf] otherwise. *)
and compile_branch c (e : Ast.expr) (lt : label) (lf : label) =
  match e.Ast.edesc with
  | Ast.Binop (Ast.LogAnd, a, b) ->
      let lmid = fresh_label c in
      compile_branch c a lmid lf;
      start_block c lmid;
      compile_branch c b lt lf
  | Ast.Binop (Ast.LogOr, a, b) ->
      let lmid = fresh_label c in
      compile_branch c a lt lmid;
      start_block c lmid;
      compile_branch c b lt lf
  | Ast.Unop (Ast.Not, a) -> compile_branch c a lf lt
  | _ ->
      let v = rv c e in
      terminate c (Br (v, lt, lf))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let declare_local c (d : Ast.decl) =
  let ty = d.Ast.d_ty in
  Symtab.add c.types d.Ast.d_name ty;
  let in_memory =
    c.mode.cm_locals_in_memory
    || Ctype.is_aggregate ty
    || Hashtbl.mem c.addressable d.Ast.d_name
  in
  let home =
    if in_memory then Hstack (alloc_stack c (size_of c ty) (Ctype.align c.tenv ty))
    else Hreg (fresh_reg c)
  in
  Symtab.add c.homes d.Ast.d_name home;
  match d.Ast.d_init with
  | Some init ->
      let v = rv c init in
      let l =
        match home with
        | Hreg r -> Lreg r
        | Hstack off -> Lmem (Reg fp, Imm off)
        | Hglobal off -> Lmem (Glob off, Imm 0)
      in
      store c l (scalar_width c ty) v
  | None -> ()

let rec compile_stmt c (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Sexpr e -> ignore (rv c e)
  | Ast.Sdecl d -> declare_local c d
  | Ast.Sif (cond, a, b) ->
      let lthen = fresh_label c
      and lelse = fresh_label c
      and ljoin = fresh_label c in
      compile_branch c cond lthen lelse;
      start_block c lthen;
      compile_stmt c a;
      terminate c (Jmp ljoin);
      start_block c lelse;
      Option.iter (compile_stmt c) b;
      terminate c (Jmp ljoin);
      start_block c ljoin
  | Ast.Swhile (cond, body) ->
      let lhead = fresh_label c
      and lbody = fresh_label c
      and lexit = fresh_label c in
      terminate c (Jmp lhead);
      start_block c lhead;
      compile_branch c cond lbody lexit;
      start_block c lbody;
      c.breaks <- lexit :: c.breaks;
      c.continues <- lhead :: c.continues;
      compile_stmt c body;
      c.breaks <- List.tl c.breaks;
      c.continues <- List.tl c.continues;
      terminate c (Jmp lhead);
      start_block c lexit
  | Ast.Sdowhile (body, cond) ->
      let lbody = fresh_label c
      and lcond = fresh_label c
      and lexit = fresh_label c in
      terminate c (Jmp lbody);
      start_block c lbody;
      c.breaks <- lexit :: c.breaks;
      c.continues <- lcond :: c.continues;
      compile_stmt c body;
      c.breaks <- List.tl c.breaks;
      c.continues <- List.tl c.continues;
      terminate c (Jmp lcond);
      start_block c lcond;
      compile_branch c cond lbody lexit;
      start_block c lexit
  | Ast.Sfor (init, cond, step, body) ->
      Option.iter (fun e -> ignore (rv c e)) init;
      let lhead = fresh_label c
      and lbody = fresh_label c
      and lstep = fresh_label c
      and lexit = fresh_label c in
      terminate c (Jmp lhead);
      start_block c lhead;
      (match cond with
      | Some e -> compile_branch c e lbody lexit
      | None -> terminate c (Jmp lbody));
      start_block c lbody;
      c.breaks <- lexit :: c.breaks;
      c.continues <- lstep :: c.continues;
      compile_stmt c body;
      c.breaks <- List.tl c.breaks;
      c.continues <- List.tl c.continues;
      terminate c (Jmp lstep);
      start_block c lstep;
      Option.iter (fun e -> ignore (rv c e)) step;
      terminate c (Jmp lhead);
      start_block c lexit
  | Ast.Sreturn (Some e) ->
      let v = rv c e in
      terminate c (Ret (Some v));
      start_block c (fresh_label c)
  | Ast.Sreturn None ->
      terminate c (Ret None);
      start_block c (fresh_label c)
  | Ast.Sbreak -> (
      match c.breaks with
      | l :: _ ->
          terminate c (Jmp l);
          start_block c (fresh_label c)
      | [] -> unsupported s.Ast.sloc "break outside loop")
  | Ast.Scontinue -> (
      match c.continues with
      | l :: _ ->
          terminate c (Jmp l);
          start_block c (fresh_label c)
      | [] -> unsupported s.Ast.sloc "continue outside loop")
  | Ast.Sempty -> ()
  | Ast.Sblock ss ->
      Symtab.in_scope c.homes (fun () ->
          Symtab.in_scope c.types (fun () -> List.iter (compile_stmt c) ss))

(* ------------------------------------------------------------------ *)
(* Functions and programs                                              *)
(* ------------------------------------------------------------------ *)

let compile_func mode tenv st globals (f : Ast.func) : func =
  let entry = { b_label = 0; b_instrs = []; b_term = Ret None } in
  let c =
    {
      mode;
      tenv;
      st;
      globals;
      homes = Symtab.create ();
      types = Symtab.create ();
      addressable = addressable_vars f;
      nreg = first_vreg;
      nlabel = 1;
      frame = 0;
      cur = entry;
      blocks = [ entry ];
      breaks = [];
      continues = [];
    }
  in
  (* globals are visible as variables *)
  Hashtbl.iter
    (fun name (off, ty) ->
      Symtab.add c.homes name (Hglobal off);
      Symtab.add c.types name ty)
    globals;
  Symtab.enter_scope c.homes;
  Symtab.enter_scope c.types;
  (* parameters arrive in fresh registers; memory-homed ones are stored to
     their slots in the prologue *)
  let params =
    List.map
      (fun (name, ty) ->
        let r = fresh_reg c in
        Symtab.add c.types name ty;
        let in_memory =
          mode.cm_locals_in_memory || Hashtbl.mem c.addressable name
          || Ctype.is_aggregate ty
        in
        if in_memory then begin
          let off = alloc_stack c (size_of c ty) (Ctype.align tenv ty) in
          Symtab.add c.homes name (Hstack off);
          emit c (Store (scalar_width c ty, Reg r, Reg fp, Imm off))
        end
        else Symtab.add c.homes name (Hreg r);
        r)
      f.Ast.f_params
  in
  compile_stmt c f.Ast.f_body;
  (* finish blocks: reverse instruction lists; implicit return at the end *)
  let blocks =
    List.rev_map
      (fun b ->
        b.b_instrs <- List.rev b.b_instrs;
        b)
      c.blocks
  in
  {
    fn_name = f.Ast.f_name;
    fn_params = params;
    fn_ret_void = f.Ast.f_ret = Ctype.Void;
    fn_blocks = blocks;
    fn_nreg = c.nreg;
    fn_frame = c.frame;
  }

(** Lay out globals in the statics image and compile every function. *)
let compile_program ?(mode = opt_mode) (p : Ast.program) : program =
  let tenv = p.Ast.prog_env in
  let st = statics_create () in
  let globals : (string, int * Ctype.t) Hashtbl.t = Hashtbl.create 16 in
  (* pass 1: lay out global variables *)
  List.iter
    (function
      | Ast.Gvar d ->
          let ty = d.Ast.d_ty in
          let off =
            statics_alloc st (Ctype.size tenv ty) (Ctype.align tenv ty)
          in
          Hashtbl.replace globals d.Ast.d_name (off, ty)
      | Ast.Gfunc _ | Ast.Gstruct _ | Ast.Gproto _ -> ())
    p.Ast.prog_globals;
  (* pass 2: global initializers (constants and string literals) *)
  let dummy_ctx () =
    let entry = { b_label = 0; b_instrs = []; b_term = Ret None } in
    {
      mode;
      tenv;
      st;
      globals;
      homes = Symtab.create ();
      types = Symtab.create ();
      addressable = Hashtbl.create 1;
      nreg = first_vreg;
      nlabel = 1;
      frame = 0;
      cur = entry;
      blocks = [ entry ];
      breaks = [];
      continues = [];
    }
  in
  List.iter
    (function
      | Ast.Gvar ({ Ast.d_init = Some init; _ } as d) -> (
          let off, ty = Hashtbl.find globals d.Ast.d_name in
          match init.Ast.edesc with
          | Ast.StrLit s -> (
              let stroff = intern_string st s in
              match ty with
              | Ctype.Ptr _ ->
                  (* pointer global initialized to a string: relocation *)
                  st.relocs <- (off, stroff) :: st.relocs
              | Ctype.Array (Ctype.Char, _) ->
                  Bytes.blit_string s 0 st.img off (String.length s)
              | _ ->
                  raise
                    (Unsupported
                       ("string initializer for non-pointer global", d.Ast.d_loc)))
          | _ -> (
              match eval_const (dummy_ctx ()) init with
              | Some v ->
                  statics_set_int st off (min 8 (Ctype.size tenv ty)) v
              | None ->
                  raise
                    (Unsupported
                       ("non-constant global initializer", d.Ast.d_loc))))
      | Ast.Gvar _ | Ast.Gfunc _ | Ast.Gstruct _ | Ast.Gproto _ -> ())
    p.Ast.prog_globals;
  (* pass 3: functions (string interning continues to grow the image) *)
  let funcs =
    List.filter_map
      (function
        | Ast.Gfunc f -> Some (compile_func mode tenv st globals f)
        | Ast.Gvar _ | Ast.Gstruct _ | Ast.Gproto _ -> None)
      p.Ast.prog_globals
  in
  {
    p_funcs = funcs;
    p_statics = Bytes.sub st.img 0 st.used;
    p_relocs = st.relocs;
  }
