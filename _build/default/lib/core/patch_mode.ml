(** Patch-based emission: annotate the {e original source text}.

    This is the output discipline of the paper's implementation: "Our
    preprocessor maintains a copy of the input file ... In the process it
    generates a list of insertions and deletions, sorted by character
    position in the original source string.  After parsing is complete,
    the insertions and deletions are applied to the original source."

    The patch emitter handles the purely positional insertions — the four
    KEEP_LIVE positions and the [*&(...)]-style access wraps — by wrapping
    the original expression text in place, so comments, macro-expanded
    line structure and formatting survive.  Constructs that require
    rewriting with temporaries (increment/decrement and compound
    assignment on pointers, generating expressions feeding arithmetic)
    are left untouched and counted in [pr_skipped]; the AST-based
    {!Annotate} pipeline covers those.  The two emitters insert the same
    annotations on inputs free of the rewrite-requiring forms. *)

open Csyntax

type result = {
  pr_source : string;  (** the patched program text *)
  pr_inserted : int;  (** annotations inserted *)
  pr_skipped : int;
      (** positions that needed a rewrite (temporaries) and were left
          unannotated; use the AST pipeline for full coverage *)
}

type ctx = {
  opts : Mode.options;
  patch : Patch.t;
  mutable inserted : int;
  mutable skipped : int;
  mutable wrapped : (int * int) list;
      (** extents already wrapped, to avoid nested double-wraps *)
}

let already_wrapped ctx (start, stop) =
  List.exists (fun (s, e) -> s <= start && stop <= e) ctx.wrapped

(* wrap the original text of [e] in KEEP_LIVE / GC_same_obj with base [b] *)
let wrap_value ctx (e : Ast.expr) (b : string) =
  if not (Ast.has_span e) then ctx.skipped <- ctx.skipped + 1
  else begin
    let start = e.Ast.eloc.Loc.offset and stop = e.Ast.eend in
    if not (already_wrapped ctx (start, stop)) then begin
      ctx.inserted <- ctx.inserted + 1;
      ctx.wrapped <- (start, stop) :: ctx.wrapped;
      match ctx.opts.Mode.mode with
      | Mode.Safe ->
          Patch.wrap ctx.patch ~start ~stop ~prefix:"KEEP_LIVE("
            ~suffix:(Printf.sprintf ", %s)" b)
      | Mode.Checked ->
          let ty = Ctype.to_string (Ast.rtyp e) in
          Patch.wrap ctx.patch ~start ~stop
            ~prefix:(Printf.sprintf "(%s)GC_same_obj((void *)(" ty)
            ~suffix:(Printf.sprintf "), (void *)%s)" b)
    end
  end

(* wrap a scalar access [e] (a[i] / p->f / chain) as *KEEP_LIVE(&(e), b) *)
let wrap_access ctx (e : Ast.expr) (b : string) =
  if not (Ast.has_span e) then ctx.skipped <- ctx.skipped + 1
  else begin
    let start = e.Ast.eloc.Loc.offset and stop = e.Ast.eend in
    if not (already_wrapped ctx (start, stop)) then begin
      ctx.inserted <- ctx.inserted + 1;
      ctx.wrapped <- (start, stop) :: ctx.wrapped;
      match ctx.opts.Mode.mode with
      | Mode.Safe ->
          Patch.wrap ctx.patch ~start ~stop ~prefix:"(*KEEP_LIVE(&("
            ~suffix:(Printf.sprintf "), %s))" b)
      | Mode.Checked ->
          let ty = Ctype.to_string (Ctype.Ptr (Ast.typ e)) in
          Patch.wrap ctx.patch ~start ~stop
            ~prefix:(Printf.sprintf "(*(%s)GC_same_obj((void *)&(" ty)
            ~suffix:(Printf.sprintf "), (void *)%s))" b)
    end
  end

let is_array_typed (e : Ast.expr) =
  match e.Ast.ety with Some (Ctype.Array _) -> true | _ -> false

(* opaque values flowing straight out of generating expressions need no
   wrap (call results behave as KEEP_LIVE values; loads are
   access-wrapped) *)
let rec generating_tail (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.Deref _ | Ast.Call (_, _) | Ast.RuntimeCall (_, _) | Ast.KeepLive _ ->
      true
  | Ast.Index (_, _) | Ast.Arrow (_, _) | Ast.Field (_, _) ->
      not (is_array_typed e)
  | Ast.Cast (_, x) | Ast.Comma (_, x) | Ast.Assign (_, x) ->
      generating_tail x
  | _ -> false

(* should expression [e] in a KEEP_LIVE value position be wrapped, and with
   which base? *)
let value_wrap_decision ctx (e : Ast.expr) =
  if not (Ast.is_pointer_valued e) then `No
  else if ctx.opts.Mode.suppress_copies && Base_rules.is_copy e then `No
  else
    match e.Ast.edesc with
    | Ast.Deref _ | Ast.Call (_, _) | Ast.RuntimeCall (_, _) -> `No
    | Ast.Index (_, _) | Ast.Arrow (_, _) | Ast.Field (_, _)
      when not (is_array_typed e) ->
        `No
    (* pointer increments and compound assignments need the temporary
       expansion; patching the text in place cannot express it *)
    | Ast.Incr (_, _) | Ast.OpAssign (_, _, _) -> `Needs_rewrite
    | _ -> (
        match Base_rules.base e with
        | Base_rules.Var b -> `Wrap b
        | Base_rules.Nil -> `No
        | Base_rules.Unnamed ->
            if generating_tail e then `No else `Needs_rewrite)

let rec rv ctx (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.IntLit _ | Ast.CharLit _ | Ast.StrLit _ | Ast.FloatLit _ | Ast.Var _
  | Ast.SizeofType _ | Ast.SizeofExpr _ ->
      ()
  | Ast.Unop (_, a) -> rv ctx a
  | Ast.Binop (_, a, b) ->
      rv ctx a;
      rv ctx b
  | Ast.Assign (lv, rhs) ->
      store_target ctx lv;
      wrap_pos ctx rhs
  | Ast.OpAssign (_, lv, rhs) ->
      (* pointer compound assignment needs the temp expansion *)
      if Ctype.is_pointer (Ctype.decay (Ast.typ lv)) then
        ctx.skipped <- ctx.skipped + 1
      else store_target ctx lv;
      rv ctx rhs
  | Ast.Incr (_, lv) ->
      if Ctype.is_pointer (Ctype.decay (Ast.typ lv)) then
        ctx.skipped <- ctx.skipped + 1
      else store_target ctx lv
  | Ast.Deref a -> wrap_pos ctx a
  | Ast.Index (_, _) | Ast.Arrow (_, _) | Ast.Field (_, _) ->
      if is_array_typed e then chain ctx e else access ctx e
  | Ast.AddrOf lv -> chain ctx lv
  | Ast.Call (_, args) -> List.iter (wrap_pos ctx) args
  | Ast.RuntimeCall (_, args) -> List.iter (rv ctx) args
  | Ast.Cast (_, a) -> rv ctx a
  | Ast.Cond (c, a, b) ->
      rv ctx c;
      rv ctx a;
      rv ctx b
  | Ast.Comma (a, b) ->
      rv ctx a;
      rv ctx b
  | Ast.KeepLive (a, _) -> rv ctx a

(* a KEEP_LIVE position *)
and wrap_pos ctx (e : Ast.expr) =
  (match value_wrap_decision ctx e with
  | `Wrap b ->
      rv_children_only ctx e;
      wrap_value ctx e b
  | `Needs_rewrite ->
      ctx.skipped <- ctx.skipped + 1;
      rv ctx e
  | `No -> (
      (* distribute into conditional branches, as the algorithm requires *)
      match e.Ast.edesc with
      | Ast.Cond (c, a, b) when Ast.is_pointer_valued e ->
          rv ctx c;
          wrap_pos ctx a;
          wrap_pos ctx b
      | _ -> rv ctx e))

(* visit children for nested positions without re-wrapping [e] itself *)
and rv_children_only ctx (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.Binop (_, a, b) ->
      rv ctx a;
      rv ctx b
  | Ast.Cast (_, a) -> rv_children_only ctx a
  | Ast.AddrOf lv -> chain ctx lv
  | _ -> rv ctx e

and access ctx (e : Ast.expr) =
  chain ctx e;
  match Base_rules.baseaddr e with
  | Base_rules.Var b -> wrap_access ctx e b
  | Base_rules.Nil -> ()
  | Base_rules.Unnamed -> ctx.skipped <- ctx.skipped + 1

and chain ctx (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.Var _ -> ()
  | Ast.Deref a -> rv ctx a
  | Ast.Index (a, i) ->
      (if is_array_typed a then chain ctx a else rv ctx a);
      rv ctx i
  | Ast.Arrow (p, _) -> rv ctx p
  | Ast.Field (b, _) -> chain ctx b
  | Ast.Cast (_, b) -> chain ctx b
  | _ -> rv ctx e

and store_target ctx (lv : Ast.expr) =
  match lv.Ast.edesc with Ast.Var _ -> () | _ -> rv ctx lv

let walk_stmt ctx (s : Ast.stmt) =
  Ast.iter_stmts
    (fun s ->
      match s.Ast.sdesc with
      | Ast.Sexpr e -> rv ctx e
      | Ast.Sdecl d -> Option.iter (wrap_pos ctx) d.Ast.d_init
      | Ast.Sif (c, _, _) | Ast.Swhile (c, _) | Ast.Sdowhile (_, c) ->
          rv ctx c
      | Ast.Sfor (a, b, c, _) ->
          List.iter (Option.iter (rv ctx)) [ a; b; c ]
      | Ast.Sreturn (Some e) -> wrap_pos ctx e
      | Ast.Sreturn None | Ast.Sbreak | Ast.Scontinue | Ast.Sblock _
      | Ast.Sempty ->
          ())
    s

(** Annotate [source] by patching it in place. *)
let annotate_source ?(opts = Mode.default Mode.Safe) (source : string) :
    result =
  let prog = Parser.parse_program source in
  ignore (Typecheck.check_program prog);
  let ctx =
    { opts; patch = Patch.create (); inserted = 0; skipped = 0; wrapped = [] }
  in
  List.iter
    (function
      | Ast.Gfunc f -> walk_stmt ctx f.Ast.f_body
      | Ast.Gvar d -> Option.iter (wrap_pos ctx) d.Ast.d_init
      | Ast.Gstruct _ | Ast.Gproto _ -> ())
    prog.Ast.prog_globals;
  {
    pr_source = Patch.apply ctx.patch source;
    pr_inserted = ctx.inserted;
    pr_skipped = ctx.skipped;
  }
