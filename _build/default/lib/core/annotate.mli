(** The annotation algorithm: KEEP_LIVE / checking-call insertion.

    Every pointer-valued expression occurring as the right side of an
    assignment, the argument of a dereferencing operation, or a function
    argument or result is replaced by [KEEP_LIVE(e, BASE(e))] (Safe mode)
    or a [GC_same_obj]-family call (Checked mode); increment and decrement
    operators are treated as assignments.  See {!Mode.options} for the
    paper's optimizations (1), (2), (4) and the Extensions-mode store
    discipline. *)

exception Unnormalized of string * Csyntax.Loc.t
(** BASE was queried on a generating expression: the input was not run
    through {!Normalize}. *)

type result = {
  program : Csyntax.Ast.program;
  keep_live_count : int;  (** number of KEEP_LIVE / check insertions *)
}

val annotate_program :
  ?opts:Mode.options -> Csyntax.Ast.program -> result
(** Annotate a type-annotated, {!Normalize}d program.  The result is
    re-type-checked so every node carries its type. *)

val run : ?opts:Mode.options -> Csyntax.Ast.program -> result
(** The full preprocessor front half: type-check, normalize, annotate. *)
