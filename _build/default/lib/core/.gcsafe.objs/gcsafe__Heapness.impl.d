lib/core/heapness.ml: Ast Csyntax Ctype Hashtbl List
