lib/core/annotate.ml: Ast Base_rules Csyntax Ctype Format Hashtbl Heapness List Loc Mode Normalize Option Pretty Temps Typecheck
