lib/core/source_check.mli: Csyntax Format
