lib/core/patch.ml: Buffer Int List String
