lib/core/source_check.ml: Ast Csyntax Ctype Format List Loc Option String
