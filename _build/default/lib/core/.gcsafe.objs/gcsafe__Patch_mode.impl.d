lib/core/patch_mode.ml: Ast Base_rules Csyntax Ctype List Loc Mode Option Parser Patch Printf Typecheck
