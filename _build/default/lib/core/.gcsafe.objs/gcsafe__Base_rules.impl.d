lib/core/base_rules.ml: Ast Csyntax Ctype
