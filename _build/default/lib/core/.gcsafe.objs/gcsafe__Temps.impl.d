lib/core/temps.ml: Ast Csyntax Ctype List Loc Printf
