lib/core/normalize.ml: Ast Base_rules Csyntax Ctype List Option Temps Typecheck
