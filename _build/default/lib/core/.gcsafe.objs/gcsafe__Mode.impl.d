lib/core/mode.ml:
