lib/core/normalize.mli: Csyntax Temps
