lib/core/patch_mode.mli: Mode
