lib/core/patch.mli:
