lib/core/temps.mli: Csyntax
