lib/core/base_rules.mli: Csyntax
