lib/core/annotate.mli: Csyntax Mode
