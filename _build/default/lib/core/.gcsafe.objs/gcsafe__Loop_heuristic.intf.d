lib/core/loop_heuristic.mli: Csyntax
