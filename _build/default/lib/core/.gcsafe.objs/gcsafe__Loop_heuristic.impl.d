lib/core/loop_heuristic.ml: Ast Base_rules Csyntax Hashtbl List Option String Typecheck
