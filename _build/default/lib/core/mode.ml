(** Output modes of the preprocessor.

    [Safe] inserts KEEP_LIVE pseudo-operations that the compiler backend
    lowers to empty-asm-style barriers (GC-safety with minimal overhead).
    [Checked] replaces each KEEP_LIVE by a real call to the collector's
    checking runtime ([GC_same_obj], [GC_pre_incr], [GC_post_incr]),
    turning the preprocessor into a pointer-arithmetic checker; the checking
    calls are opaque to the compiler and therefore also ensure GC-safety,
    "though not in a performance-optimal fashion". *)

type t = Safe | Checked

let to_string = function Safe -> "safe" | Checked -> "checked"

type options = {
  mode : t;
  suppress_copies : bool;
      (** the paper's optimization (1): no KEEP_LIVE around expressions that
          are statically just copies of values stored elsewhere *)
  expand_incr : bool;
      (** the paper's optimization (2): specialized expansion of [++]/[--]
          on simple variables that avoids forcing them into memory *)
  loop_heuristic : bool;
      (** the paper's optimization (3): replace rapidly-varying base
          pointers in loops by equivalent slowly-varying ones *)
  calls_only : bool;
      (** the paper's optimization (4): "If we know that garbage
          collections can be triggered only at procedure calls, the number
          of KEEP_LIVE invocations could often be reduced dramatically" —
          skip annotations inside statements that perform no calls *)
  heapness_analysis : bool;
      (** prove some pointer variables can only address stack/static
          storage and drop their annotations — the "sufficiently good
          program analysis" direction the paper points at *)
  check_base_stores : bool;
      (** the Extensions section: "asserting that the client program
          stores only pointers to the base of an object in the heap or in
          statically allocated variables ... It would again be possible to
          insert dynamic checks to verify this" — in Checked mode, wrap
          pointer stores to non-local locations with GC_check_base *)
}

let default mode =
  {
    mode;
    suppress_copies = true;
    expand_incr = true;
    loop_heuristic = false;
    calls_only = false;
    heapness_analysis = false;
    check_base_stores = false;
  }
