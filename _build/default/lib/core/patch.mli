(** Sorted insertion/deletion lists applied to original source text — the
    output machinery of the paper's preprocessor implementation.

    Edit offsets always refer to the {e original} string; same-offset
    insertions apply in registration order; overlapping deletions are
    rejected. *)

type t

exception Overlap of int * int
(** Two deletions overlap (reported with their offsets). *)

val create : unit -> t

val add : t -> offset:int -> delete:int -> insert:string -> unit
(** Record one edit.  @raise Invalid_argument on negative offsets. *)

val insert : t -> offset:int -> string -> unit

val delete : t -> offset:int -> len:int -> unit

val replace : t -> offset:int -> len:int -> string -> unit

val wrap : t -> start:int -> stop:int -> prefix:string -> suffix:string -> unit
(** Wrap the source range [start, stop)] — the shape of every KEEP_LIVE
    insertion. *)

val apply : t -> string -> string
(** Apply all recorded edits.  @raise Overlap on overlapping deletions. *)
