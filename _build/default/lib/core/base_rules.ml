(** The paper's BASE / BASEADDR rules ("An Algorithm").

    [BASE(e)] is a pointer variable guaranteed to point to the same object
    as [e] whenever [e] points to a heap object, or NIL if no such variable
    exists.  [BASEADDR(e)] is the possible base pointer for [&e].

    The rules operate on type-annotated ASTs.  Deviations from the paper's
    table are: [Cast] is transparent (a pointer cast does not change the
    value), and [Field]/[Arrow]/[Index] have direct BASEADDR cases instead
    of first rewriting accesses into the [*&(...)] normal form — the
    composition is identical, it just avoids materializing the rewrite. *)

open Csyntax

type base =
  | Nil  (** provably not a heap pointer (constant, static, stack address) *)
  | Var of string  (** the base pointer variable *)
  | Unnamed
      (** a generating expression whose value has no name yet; the
          normalizer must introduce a temporary before BASE is queried *)

(** A variable is a possible heap pointer when it has pointer type.  Array
    variables are named stack or static memory, never heap objects, so they
    are excluded (their decayed value can never point into the heap). *)
let possible_heap_pointer (e : Ast.expr) =
  match (e.Ast.edesc, e.Ast.ety) with
  | Ast.Var _, Some (Ctype.Ptr _) -> true
  | _ -> false

let rec base (e : Ast.expr) : base =
  match e.Ast.edesc with
  | Ast.IntLit _ | Ast.CharLit _ | Ast.FloatLit _ | Ast.SizeofType _
  | Ast.SizeofExpr _ ->
      Nil (* BASE(0) = NIL, and other non-pointer constants *)
  | Ast.StrLit _ -> Nil (* string literals live in static memory *)
  | Ast.Var x ->
      if possible_heap_pointer e then Var x else Nil
  | Ast.Assign (lhs, rhs) -> (
      (* BASE(x = e) = x if x is a pointer variable, else BASE(e) *)
      match lhs.Ast.edesc with
      | Ast.Var x when possible_heap_pointer lhs -> Var x
      | _ -> base rhs)
  | Ast.OpAssign ((Ast.Add | Ast.Sub), e1, _) -> base e1 (* e1 += e2 *)
  | Ast.OpAssign (_, e1, _) -> base e1
  | Ast.Incr (_, e1) -> base e1 (* BASE(e1++) = BASE(++e1) = BASE(e1) *)
  | Ast.Binop (Ast.Add, e1, e2) ->
      (* BASE(e1 + e2) = BASE(e_i) where e_i has pointer type *)
      if Ast.is_pointer_valued e1 then base e1
      else if Ast.is_pointer_valued e2 then base e2
      else Nil
  | Ast.Binop (Ast.Sub, e1, _) ->
      if Ast.is_pointer_valued e1 then base e1 else Nil
  | Ast.Binop (_, _, _) -> Nil
  | Ast.Comma (_, e2) -> base e2
  | Ast.AddrOf e1 -> baseaddr e1
  | Ast.Cast (_, e1) -> base e1
  | Ast.Cond (_, _, _) | Ast.Deref _ | Ast.Call (_, _)
  | Ast.RuntimeCall (_, _) ->
      Unnamed (* generating expressions: BASE is not defined *)
  | Ast.KeepLive (e1, _) -> base e1
  | Ast.Unop (_, _) -> Nil
  | Ast.Index (e1, e2) -> (
      (* no dereference happens when the element has array type (the value
         is the element's address); otherwise this is a load — generating *)
      match e.Ast.ety with
      | Some (Ctype.Array _) -> baseaddr_index e1 e2
      | _ -> Unnamed)
  | Ast.Field (e1, _) -> (
      match e.Ast.ety with
      | Some (Ctype.Array _) -> baseaddr e1
      | _ -> Unnamed)
  | Ast.Arrow (e1, _) -> (
      match e.Ast.ety with
      | Some (Ctype.Array _) -> base e1
      | _ -> Unnamed)

and baseaddr (e : Ast.expr) : base =
  match e.Ast.edesc with
  | Ast.Var _ -> Nil (* BASEADDR(x) = NIL: &x is a stack/static address *)
  | Ast.Index (e1, e2) -> baseaddr_index e1 e2
  | Ast.Arrow (e1, _) -> base e1 (* BASEADDR(e1 -> x) = BASE(e1) *)
  | Ast.Field (e1, _) -> baseaddr e1 (* &(e.x) = &e + off *)
  | Ast.Deref e1 -> base e1 (* &*e = e *)
  | Ast.Cast (_, e1) -> baseaddr e1
  | _ -> Nil

and baseaddr_index e1 e2 =
  (* BASEADDR(e1[e2]) = BASE(e1) if not NIL, else BASE(e2): C allows the
     integer and pointer operands of subscripting in either order *)
  match base e1 with Nil -> base e2 | (Var _ | Unnamed) as b -> b

(** The paper's classification: pointer dereferences, function calls and
    conditional expressions "generate" fresh pointer values, so they have no
    BASE and must be named by a temporary before arithmetic is applied. *)
let is_generating (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.Deref _ | Ast.Call (_, _) | Ast.Cond (_, _, _) | Ast.RuntimeCall (_, _)
    ->
      true
  (* a[i] / p->f / s.f in r-value position of scalar type load from memory,
     i.e. they are dereferences in the *&(...) normal form *)
  | Ast.Index (_, _) | Ast.Arrow (_, _) | Ast.Field (_, _) -> (
      match e.Ast.ety with Some (Ctype.Array _) -> false | _ -> true)
  | _ -> false

(** Is [e] statically known to be "simply a copy of a value logically stored
    elsewhere" (the paper's optimization 1)?  For such expressions the
    KEEP_LIVE wrap is unnecessary: condition (2) already holds because the
    variable itself stays stored. *)
let rec is_copy (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.Var _ -> true
  | Ast.Cast (_, e1) -> is_copy e1
  | Ast.Assign (lhs, _) -> (
      (* the value of (x = e) is the value now stored in x *)
      match lhs.Ast.edesc with Ast.Var _ -> true | _ -> false)
  | Ast.Comma (_, e2) -> is_copy e2
  | Ast.KeepLive (_, _) -> true (* already annotated: value is kept stored *)
  | _ -> false

let base_to_string = function
  | Nil -> "NIL"
  | Var x -> x
  | Unnamed -> "<unnamed>"
