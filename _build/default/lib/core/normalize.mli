(** Normalization: introduce temporaries for generating expressions.

    Establishes the paper's assumed form — generating expressions (pointer
    dereferences, calls, conditionals) "occur as the right side of an
    assignment to a local variable that is not assigned elsewhere in the
    same expression" — by rewriting them to [(t = e)] wherever
    {!Base_rules.base} would otherwise return [Unnamed].  Also performs
    the paper's [&*e -> e] simplification. *)

val name_value : Temps.t -> Csyntax.Ast.expr -> Csyntax.Ast.expr
(** Wrap the generating tail of an expression in an assignment to a fresh
    temporary so that its value has a BASE. *)

val norm_func : Csyntax.Ast.func -> Csyntax.Ast.func

val norm_program : Csyntax.Ast.program -> Csyntax.Ast.program
(** Normalize a type-annotated program; the result is re-type-checked. *)
