(** Fresh temporary variables for the normalizer and annotator.

    The paper's transformation introduces temporaries ("tmp1", "tmp2",
    "tmpa", ...) to name the results of generating expressions and to expand
    increment operators.  Each transformed function gets its own generator;
    the collected declarations are spliced into the top of the function
    body. *)

open Csyntax

type t = { mutable counter : int; mutable decls : (string * Ctype.t) list }

let create () = { counter = 0; decls = [] }

(** A fresh temporary of type [ty]; remembers the declaration. *)
let fresh t ty =
  let name = Printf.sprintf "__t%d" t.counter in
  t.counter <- t.counter + 1;
  t.decls <- (name, ty) :: t.decls;
  name

(** Splice the collected declarations into the top of a function body. *)
let splice_decls t (body : Ast.stmt) : Ast.stmt =
  match List.rev t.decls with
  | [] -> body
  | decls ->
      let decl_stmts =
        List.map
          (fun (name, ty) ->
            Ast.mk_stmt
              (Ast.Sdecl { Ast.d_name = name; d_ty = ty; d_init = None; d_loc = Loc.dummy }))
          decls
      in
      let inner =
        match body.Ast.sdesc with Ast.Sblock ss -> ss | _ -> [ body ]
      in
      Ast.mk_stmt ~loc:body.Ast.sloc (Ast.Sblock (decl_stmts @ inner))
