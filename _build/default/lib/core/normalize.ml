(** Normalization: introduce temporaries for generating expressions.

    The paper assumes that pointer dereferences, function calls and
    conditional expressions — the {e generating} expressions — "either
    return nonpointers or occur as the right side of an assignment to a
    local variable that is not assigned elsewhere in the same expression",
    so that their results have names when BASE is queried.  This pass
    establishes that invariant: wherever a generating pointer-valued
    expression would be consumed by pointer arithmetic or address
    computation (i.e. wherever {!Base_rules.base} would return [Unnamed]),
    it is replaced by [(t = e)] for a fresh local [t].  Freshness guarantees
    the paper's "not assigned elsewhere in the same expression" side
    condition.

    The pass also performs the paper's [&*e -> e] simplification.

    Requires a type-annotated AST; produces an AST whose new nodes carry
    types, so it can be composed directly with {!Annotate}. *)

open Csyntax

let mk desc ty =
  let e = Ast.mk_expr desc in
  e.Ast.ety <- Some ty;
  e

(** Rewrite [e] so that its value is named by a variable: wrap the
    generating tail of [e] in an assignment to a fresh temporary. *)
let rec name_value temps (e : Ast.expr) : Ast.expr =
  match Base_rules.base e with
  | Base_rules.Nil | Base_rules.Var _ -> e
  | Base_rules.Unnamed -> (
      match e.Ast.edesc with
      | Ast.Comma (a, b) ->
          mk (Ast.Comma (a, name_value temps b)) (Ast.rtyp e)
      | Ast.Cast (ty, inner) ->
          mk (Ast.Cast (ty, name_value temps inner)) ty
      | Ast.Assign (lv, rhs) ->
          (* complex lvalue: the value is the stored one; name the source *)
          mk (Ast.Assign (lv, name_value temps rhs)) (Ast.rtyp e)
      | _ ->
          let ty = Ast.rtyp e in
          let t = Temps.fresh temps ty in
          let tvar = mk (Ast.Var t) ty in
          mk (Ast.Assign (tvar, e)) ty)

let needs_name e = Ast.is_pointer_valued e && Base_rules.base e = Base_rules.Unnamed

(** [&*e] simplifies to [e]; [&a[i]] and [&p->f] are address arithmetic with
    no access, which is why AddrOf arguments need no naming of their own —
    the chain rules below see through them. *)
let simplify_addrof (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.AddrOf inner -> (
      match inner.Ast.edesc with
      | Ast.Deref x -> x
      | _ -> e)
  | _ -> e

let rec norm_expr temps ~used (e : Ast.expr) : Ast.expr =
  let ty = Ast.typ e in
  let remk desc = mk desc ty in
  let rv x = norm_expr temps ~used:true x in
  let e =
    match e.Ast.edesc with
    | Ast.IntLit _ | Ast.CharLit _ | Ast.StrLit _ | Ast.FloatLit _ | Ast.Var _
    | Ast.SizeofType _ ->
        e
    | Ast.SizeofExpr _ -> e (* operand is not evaluated *)
    | Ast.Unop (op, a) -> remk (Ast.Unop (op, rv a))
    | Ast.Binop (op, a, b) ->
        let a = rv a and b = rv b in
        let a, b =
          match op with
          | Ast.Add | Ast.Sub when Ctype.is_pointer (Ctype.decay ty) ->
              (* pointer arithmetic: BASE of the pointer operand is needed *)
              let fix x =
                if needs_name x then name_value temps x else x
              in
              (fix a, fix b)
          | _ -> (a, b)
        in
        remk (Ast.Binop (op, a, b))
    | Ast.Assign (lv, rhs) ->
        let lv = norm_lvalue temps lv and rhs = rv rhs in
        let rhs =
          (* assignment to a complex lvalue whose value is used further *)
          match lv.Ast.edesc with
          | Ast.Var _ -> rhs
          | _ -> if used && needs_name rhs then name_value temps rhs else rhs
        in
        remk (Ast.Assign (lv, rhs))
    | Ast.OpAssign (op, lv, rhs) ->
        remk (Ast.OpAssign (op, norm_lvalue temps lv, rv rhs))
    | Ast.Incr (k, lv) -> remk (Ast.Incr (k, norm_lvalue temps lv))
    | Ast.Deref a -> remk (Ast.Deref (rv a))
    | Ast.AddrOf a ->
        simplify_addrof (remk (Ast.AddrOf (norm_lvalue temps a)))
    | Ast.Index (a, i) ->
        let a = rv a and i = rv i in
        let fix x =
          if Ast.is_pointer_valued x && needs_name x then name_value temps x
          else x
        in
        remk (Ast.Index (fix a, fix i))
    | Ast.Field (b, f) -> remk (Ast.Field (norm_field_base temps b, f))
    | Ast.Arrow (p, f) ->
        let p = rv p in
        let p = if needs_name p then name_value temps p else p in
        remk (Ast.Arrow (p, f))
    | Ast.Call (fn, args) -> remk (Ast.Call (fn, List.map rv args))
    | Ast.Cast (cty, a) -> remk (Ast.Cast (cty, rv a))
    | Ast.Cond (c, a, b) -> remk (Ast.Cond (rv c, rv a, rv b))
    | Ast.Comma (a, b) ->
        remk (Ast.Comma (norm_expr temps ~used:false a, norm_expr temps ~used b))
    | Ast.KeepLive (_, _) | Ast.RuntimeCall (_, _) ->
        invalid_arg "Normalize: input already annotated"
  in
  e

(** Lvalues: recurse into the chain but keep its shape; the only fix needed
    is naming a generating pointer under [Field (Deref g, _)] chains and the
    Index/Arrow bases handled by [norm_expr]. *)
and norm_lvalue temps (lv : Ast.expr) : Ast.expr =
  match lv.Ast.edesc with
  | Ast.Var _ -> lv
  | Ast.Deref a ->
      let a = norm_expr temps ~used:true a in
      mk (Ast.Deref a) (Ast.typ lv)
  | Ast.Index (_, _) | Ast.Arrow (_, _) | Ast.Field (_, _) | Ast.Cast (_, _)
    ->
      norm_expr temps ~used:true lv
  | _ -> norm_expr temps ~used:true lv

(** The base of a [.] field access: an lvalue chain.  If it is a dereference
    of a generating pointer, as in [( *f(x) ).fld], name the pointer so
    BASEADDR has a variable to return. *)
and norm_field_base temps (b : Ast.expr) : Ast.expr =
  match b.Ast.edesc with
  | Ast.Deref a ->
      let a = norm_expr temps ~used:true a in
      let a = if needs_name a then name_value temps a else a in
      mk (Ast.Deref a) (Ast.typ b)
  | Ast.Field (b2, f) -> mk (Ast.Field (norm_field_base temps b2, f)) (Ast.typ b)
  | _ -> norm_lvalue temps b

let rec norm_stmt temps (s : Ast.stmt) : Ast.stmt =
  let remk sdesc = Ast.mk_stmt ~loc:s.Ast.sloc sdesc in
  match s.Ast.sdesc with
  | Ast.Sexpr e -> remk (Ast.Sexpr (norm_expr temps ~used:false e))
  | Ast.Sdecl d ->
      remk
        (Ast.Sdecl
           {
             d with
             Ast.d_init =
               Option.map (norm_expr temps ~used:true) d.Ast.d_init;
           })
  | Ast.Sif (c, a, b) ->
      remk
        (Ast.Sif
           ( norm_expr temps ~used:true c,
             norm_stmt temps a,
             Option.map (norm_stmt temps) b ))
  | Ast.Swhile (c, b) ->
      remk (Ast.Swhile (norm_expr temps ~used:true c, norm_stmt temps b))
  | Ast.Sdowhile (b, c) ->
      remk (Ast.Sdowhile (norm_stmt temps b, norm_expr temps ~used:true c))
  | Ast.Sfor (i, c, st, b) ->
      remk
        (Ast.Sfor
           ( Option.map (norm_expr temps ~used:false) i,
             Option.map (norm_expr temps ~used:true) c,
             Option.map (norm_expr temps ~used:false) st,
             norm_stmt temps b ))
  | Ast.Sreturn e ->
      remk (Ast.Sreturn (Option.map (norm_expr temps ~used:true) e))
  | Ast.Sbreak | Ast.Scontinue | Ast.Sempty -> s
  | Ast.Sblock ss -> remk (Ast.Sblock (List.map (norm_stmt temps) ss))

let norm_func (f : Ast.func) : Ast.func =
  let temps = Temps.create () in
  let body = norm_stmt temps f.Ast.f_body in
  { f with Ast.f_body = Temps.splice_decls temps body }

(** Normalize a type-annotated program.  The result is re-type-checked so
    that every new node carries its type. *)
let norm_program (p : Ast.program) : Ast.program =
  let globals =
    List.map
      (function
        | Ast.Gfunc f -> Ast.Gfunc (norm_func f)
        | (Ast.Gvar _ | Ast.Gstruct _ | Ast.Gproto _) as g -> g)
      p.Ast.prog_globals
  in
  let p' = { p with Ast.prog_globals = globals } in
  ignore (Typecheck.check_program p');
  p'
