(** Source checking ("Source Checking" section): warnings about constructs
    that hide pointers from the collector.

    - W1: nonpointer value converted to a pointer type (benign small
      constants are reported at {!Info} severity, literal 0 not at all);
    - W2: cast between different structure pointer types;
    - W3: [scanf] with a [%p] conversion;
    - W4: [fread] into a pointer-containing object;
    - W5: [memcpy]/[memmove] between pointer-containing and pointer-free
      types. *)

type severity = Warning | Info

type diagnostic = {
  diag_code : string;
  diag_severity : severity;
  diag_loc : Csyntax.Loc.t;
  diag_message : string;
}

val pp_diagnostic : Format.formatter -> diagnostic -> unit

val check_program : Csyntax.Ast.program -> diagnostic list
(** Run the checker over a type-annotated program; diagnostics come back
    in source order. *)

val warnings : diagnostic list -> diagnostic list
(** Just the {!Warning}-severity diagnostics. *)
