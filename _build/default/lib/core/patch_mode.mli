(** Patch-based emission: annotate the original source text in place (the
    paper's insertion/deletion output discipline), preserving comments and
    formatting.

    Handles the purely positional insertions (the four KEEP_LIVE positions
    and access wraps); constructs requiring rewrites with temporaries
    (pointer [++]/[--]/[+=], generating expressions feeding arithmetic)
    are left unannotated and counted — use {!Annotate} for full
    coverage. *)

type result = {
  pr_source : string;  (** the patched program text *)
  pr_inserted : int;  (** annotations inserted *)
  pr_skipped : int;  (** positions that needed a rewrite and were skipped *)
}

val annotate_source : ?opts:Mode.options -> string -> result
