(** Source checking ("Source Checking" section).

    The paper's preprocessor "issues warnings when nonpointer values are
    directly converted to pointers", and notes that pointer hiding through
    I/O is detectable from [scanf]-with-[%p], [fread] into pointer-containing
    types, and [memcpy]/[memmove] with mismatched argument types.  This pass
    implements those warnings:

    - W1: integer (or other nonpointer) value converted to a pointer type,
      except the benign literal-0 null pointer and small integer constants
      that are never dereferenced (flagged separately at lower severity);
    - W2: cast between different structure pointer types ("it could and
      should also issue warnings when the same thing is accomplished by a
      cast between different structure pointer types or the like");
    - W3: [scanf] with a [%p] conversion;
    - W4: [fread] into a pointer-containing object;
    - W5: [memcpy]/[memmove] whose source and destination argument types
      disagree about containing pointers. *)

open Csyntax

type severity = Warning | Info

type diagnostic = {
  diag_code : string;
  diag_severity : severity;
  diag_loc : Loc.t;
  diag_message : string;
}

let pp_diagnostic fmt d =
  Format.fprintf fmt "%s: %a: [%s] %s"
    (match d.diag_severity with Warning -> "warning" | Info -> "info")
    Loc.pp d.diag_loc d.diag_code d.diag_message

type t = { tenv : Ctype.Env.t; mutable diags : diagnostic list }

let report t ?(severity = Warning) ~code ~loc fmt =
  Format.kasprintf
    (fun diag_message ->
      t.diags <-
        { diag_code = code; diag_severity = severity; diag_loc = loc; diag_message }
        :: t.diags)
    fmt

(* Small integer constants converted to pointers are a common, benign idiom
   as long as they are never dereferenced; the collector's null page (the
   first 4096 bytes) is never handed out, so they can't alias an object. *)
let rec is_small_int_const (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.IntLit n -> n >= 0 && n < 4096
  | Ast.CharLit _ -> true
  | Ast.Unop (Ast.Neg, a) -> is_small_int_const a
  | Ast.Cast (_, a) -> is_small_int_const a
  | _ -> false

let rec check_expr t (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.Cast (Ctype.Ptr dst, inner) -> (
      let ity = Ast.rtyp inner in
      match ity with
      | _ when Ctype.is_integer ity ->
          if is_small_int_const inner then begin
            if
              (match inner.Ast.edesc with Ast.IntLit 0 -> false | _ -> true)
            then
              report t ~severity:Info ~code:"W1" ~loc:e.Ast.eloc
                "small integer constant converted to pointer (benign if \
                 never dereferenced)"
          end
          else
            report t ~code:"W1" ~loc:e.Ast.eloc
              "nonpointer value converted to pointer type %s — disguised \
               pointer arithmetic is not GC-safe"
              (Ctype.to_string (Ctype.Ptr dst))
      | Ctype.Ptr (Ctype.Struct a) -> (
          match dst with
          | Ctype.Struct b when a <> b ->
              report t ~code:"W2" ~loc:e.Ast.eloc
                "cast between different structure pointer types (struct %s * \
                 to struct %s *)"
                a b
          | _ -> ())
      | _ -> ())
  | Ast.Call (("scanf" as fn), args) -> (
      match args with
      | { Ast.edesc = Ast.StrLit fmtstr; _ } :: _ ->
          if contains_pct_p fmtstr then
            report t ~code:"W3" ~loc:e.Ast.eloc
              "%s with a %%p conversion reads a pointer from a file — hidden \
               from the collector"
              fn
      | _ -> ())
  | Ast.Call ("fread", args) -> (
      match args with
      | dst :: _ -> (
          match Ast.rtyp dst with
          | Ctype.Ptr pointee when Ctype.contains_pointer t.tenv pointee ->
              report t ~code:"W4" ~loc:e.Ast.eloc
                "fread into a pointer-containing object (%s) can hide \
                 pointers from the collector"
                (Ctype.to_string pointee)
          | _ -> ())
      | [] -> ())
  | Ast.Call ((("memcpy" | "memmove") as fn), dst :: src :: _) -> (
      match (Ast.rtyp dst, Ast.rtyp src) with
      | Ctype.Ptr dty, Ctype.Ptr sty
        when Ctype.contains_pointer t.tenv dty
             <> Ctype.contains_pointer t.tenv sty ->
          report t ~code:"W5" ~loc:e.Ast.eloc
            "%s between pointer-containing and pointer-free types (%s vs %s)"
            fn (Ctype.to_string dty) (Ctype.to_string sty)
      | _ -> ())
  | _ -> ()

and contains_pct_p s =
  let n = String.length s in
  let rec loop i =
    if i + 1 >= n then false
    else if s.[i] = '%' && s.[i + 1] = 'p' then true
    else loop (i + 1)
  in
  loop 0

(** Run the checker over a type-annotated program; returns diagnostics in
    source order. *)
let check_program (p : Ast.program) : diagnostic list =
  let t = { tenv = p.Ast.prog_env; diags = [] } in
  List.iter
    (function
      | Ast.Gfunc f ->
          ignore
            (Ast.fold_stmt_exprs
               (fun () e ->
                 check_expr t e)
               () f.Ast.f_body)
      | Ast.Gvar d ->
          Option.iter
            (fun e -> ignore (Ast.fold_expr (fun () e -> check_expr t e) () e))
            d.Ast.d_init
      | Ast.Gstruct _ | Ast.Gproto _ -> ())
    p.Ast.prog_globals;
  List.sort
    (fun a b -> Loc.compare a.diag_loc b.diag_loc)
    (List.rev t.diags)

let warnings diags =
  List.filter (fun d -> d.diag_severity = Warning) diags
