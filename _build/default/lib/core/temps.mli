(** Fresh temporary variables for the normalizer and annotator, with
    collected declarations spliced into the function body. *)

type t

val create : unit -> t

val fresh : t -> Csyntax.Ctype.t -> string
(** A fresh temporary of the given type; remembers the declaration. *)

val splice_decls : t -> Csyntax.Ast.stmt -> Csyntax.Ast.stmt
(** Prepend the collected declarations to a function body. *)
