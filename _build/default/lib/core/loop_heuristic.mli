(** The paper's optimization (3): replace rapidly-varying KEEP_LIVE base
    pointers in loops by equivalent, slowly-varying ones (the string-copy
    example: bases [tmpa]/[tmpb] become [s]/[t]).

    Applies only when the analysis proves the induction pointer never
    leaves the object the slow base points to.  Off by default in the
    harness, matching the paper's implementation. *)

val apply : Csyntax.Ast.program -> Csyntax.Ast.program
(** Rewrite an annotated (Safe-mode) program; re-type-checks the result. *)
