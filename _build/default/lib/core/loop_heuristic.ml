(** The paper's optimization (3): slowly-varying base pointers.

    "A good heuristic appears to be to replace base pointers in KEEP_LIVE
    expressions by equivalent, but less rapidly varying base pointers,
    especially if those are likely to be live in any case."

    In the canonical string-copy loop

    {v p = s; q = t; while ( *p++ = *q++ ); v}

    the annotated loop keeps [tmpa]/[tmpb] bases, which forces [p] and [q]
    into registers and defeats indexed-load selection.  Replacing the bases
    with [s] and [t] — which point into the same objects because [p] only
    moves within its object, starting from [s] — removes the constraint.

    The analysis here is deliberately "a small amount of analysis": inside
    each straight-line block we track copies [p = s]; for a following loop
    we verify that (a) [s] is not assigned in the loop, and (b) every
    assignment to [p] in the loop is pointer arithmetic based on [p] itself
    (so [p] never leaves the object [s] points to).  When both hold, every
    [KEEP_LIVE(e, p)] in the loop body becomes [KEEP_LIVE(e, s)]. *)

open Csyntax

(* Variables assigned anywhere in a statement. *)
let assigned_vars (s : Ast.stmt) : (string, unit) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  let on_expr () (e : Ast.expr) =
    match e.Ast.edesc with
    | Ast.Assign (lv, _) | Ast.OpAssign (_, lv, _) | Ast.Incr (_, lv) -> (
        match lv.Ast.edesc with
        | Ast.Var x -> Hashtbl.replace tbl x ()
        | _ -> ())
    | _ -> ()
  in
  ignore (Ast.fold_stmt_exprs on_expr () s);
  tbl

(* Every assignment to [p] in [body] must keep [p] inside its object: the
   rhs must have BASE p, or BASE b for some temporary b that is itself only
   ever a copy of p (the annotator's increment expansions route the update
   through such temporaries: b = p; p = KEEP_LIVE(b + 1, b)). *)
let stays_in_object body ~copies_of p =
  let allowed b = b = p || List.mem b copies_of in
  let ok = ref true in
  let on_expr () (e : Ast.expr) =
    match e.Ast.edesc with
    | Ast.Assign (lv, rhs) when lv.Ast.edesc = Ast.Var p ->
        (match Base_rules.base rhs with
        | Base_rules.Var b when allowed b -> ()
        | _ -> ok := false)
    | Ast.OpAssign (op, lv, _) when lv.Ast.edesc = Ast.Var p ->
        if not (op = Ast.Add || op = Ast.Sub) then ok := false
    | Ast.Incr (_, lv) when lv.Ast.edesc = Ast.Var p -> ()
    | _ -> ()
  in
  ignore (Ast.fold_stmt_exprs on_expr () body);
  !ok

(* Rewrite KEEP_LIVE bases [p -> s] everywhere in a statement. *)
let rec subst_bases map (s : Ast.stmt) : Ast.stmt =
  let rec on_expr (e : Ast.expr) : Ast.expr =
    let remk desc = { e with Ast.edesc = desc } in
    match e.Ast.edesc with
    | Ast.KeepLive (v, Some b) -> (
        let v = on_expr v in
        match b.Ast.edesc with
        | Ast.Var p -> (
            match List.assoc_opt p map with
            | Some svar ->
                remk (Ast.KeepLive (v, Some { b with Ast.edesc = Ast.Var svar }))
            | None -> remk (Ast.KeepLive (v, Some b)))
        | _ -> remk (Ast.KeepLive (v, Some (on_expr b))))
    | Ast.KeepLive (v, None) -> remk (Ast.KeepLive (on_expr v, None))
    | Ast.IntLit _ | Ast.CharLit _ | Ast.StrLit _ | Ast.FloatLit _ | Ast.Var _
    | Ast.SizeofType _ ->
        e
    | Ast.Unop (op, a) -> remk (Ast.Unop (op, on_expr a))
    | Ast.Binop (op, a, b) -> remk (Ast.Binop (op, on_expr a, on_expr b))
    | Ast.Assign (a, b) -> remk (Ast.Assign (on_expr a, on_expr b))
    | Ast.OpAssign (op, a, b) -> remk (Ast.OpAssign (op, on_expr a, on_expr b))
    | Ast.Incr (k, a) -> remk (Ast.Incr (k, on_expr a))
    | Ast.Deref a -> remk (Ast.Deref (on_expr a))
    | Ast.AddrOf a -> remk (Ast.AddrOf (on_expr a))
    | Ast.Index (a, b) -> remk (Ast.Index (on_expr a, on_expr b))
    | Ast.Field (a, f) -> remk (Ast.Field (on_expr a, f))
    | Ast.Arrow (a, f) -> remk (Ast.Arrow (on_expr a, f))
    | Ast.Call (f, args) -> remk (Ast.Call (f, List.map on_expr args))
    | Ast.RuntimeCall (f, args) ->
        remk (Ast.RuntimeCall (f, List.map on_expr args))
    | Ast.Cast (ty, a) -> remk (Ast.Cast (ty, on_expr a))
    | Ast.Cond (a, b, c) -> remk (Ast.Cond (on_expr a, on_expr b, on_expr c))
    | Ast.Comma (a, b) -> remk (Ast.Comma (on_expr a, on_expr b))
    | Ast.SizeofExpr a -> remk (Ast.SizeofExpr (on_expr a))
  in
  let remk sdesc = { s with Ast.sdesc = sdesc } in
  match s.Ast.sdesc with
  | Ast.Sexpr e -> remk (Ast.Sexpr (on_expr e))
  | Ast.Sdecl d ->
      remk (Ast.Sdecl { d with Ast.d_init = Option.map on_expr d.Ast.d_init })
  | Ast.Sif (c, a, b) ->
      remk
        (Ast.Sif (on_expr c, subst_bases map a, Option.map (subst_bases map) b))
  | Ast.Swhile (c, b) -> remk (Ast.Swhile (on_expr c, subst_bases map b))
  | Ast.Sdowhile (b, c) -> remk (Ast.Sdowhile (subst_bases map b, on_expr c))
  | Ast.Sfor (i, c, st, b) ->
      remk
        (Ast.Sfor
           ( Option.map on_expr i,
             Option.map on_expr c,
             Option.map on_expr st,
             subst_bases map b ))
  | Ast.Sreturn e -> remk (Ast.Sreturn (Option.map on_expr e))
  | Ast.Sbreak | Ast.Scontinue | Ast.Sempty -> s
  | Ast.Sblock ss -> remk (Ast.Sblock (List.map (subst_bases map) ss))

(* Whole-loop rewriting: [copies] maps p -> s from preceding straight-line
   code; returns the substitution applicable to this loop. *)
let loop_subst copies (loop_body : Ast.stmt) (cond : Ast.expr option) =
  let assigned = assigned_vars loop_body in
  (* the condition is evaluated inside the loop too *)
  (match cond with
  | Some c ->
      ignore
        (Ast.fold_expr
           (fun () (e : Ast.expr) ->
             match e.Ast.edesc with
             | Ast.Assign (lv, _) | Ast.OpAssign (_, lv, _) | Ast.Incr (_, lv)
               -> (
                 match lv.Ast.edesc with
                 | Ast.Var x -> Hashtbl.replace assigned x ()
                 | _ -> ())
             | _ -> ())
           () c)
  | None -> ());
  let whole_loop =
    match cond with
    | Some c -> Ast.mk_stmt (Ast.Sblock [ loop_body; Ast.mk_stmt (Ast.Sexpr c) ])
    | None -> loop_body
  in
  (* in-loop copy structure: which temporaries are only ever copies of a
     single variable *)
  let copy_sources : (string, string list) Hashtbl.t = Hashtbl.create 8 in
  let non_copy : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let on_expr () (e : Ast.expr) =
    match e.Ast.edesc with
    | Ast.Assign ({ Ast.edesc = Ast.Var b; _ }, rhs) -> (
        match rhs.Ast.edesc with
        | Ast.Var p ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt copy_sources b) in
            Hashtbl.replace copy_sources b (p :: prev)
        | _ -> Hashtbl.replace non_copy b ())
    | Ast.OpAssign (_, { Ast.edesc = Ast.Var b; _ }, _)
    | Ast.Incr (_, { Ast.edesc = Ast.Var b; _ }) ->
        Hashtbl.replace non_copy b ()
    | _ -> ()
  in
  ignore (Ast.fold_stmt_exprs on_expr () whole_loop);
  let pure_copies_of p =
    Hashtbl.fold
      (fun b sources acc ->
        if Hashtbl.mem non_copy b then acc
        else
          match sources with
          | q :: rest when q = p && List.for_all (String.equal p) rest ->
              b :: acc
          | _ -> acc)
      copy_sources []
  in
  let direct =
    Hashtbl.fold
      (fun p s acc ->
        if
          Hashtbl.mem assigned p
          && (not (Hashtbl.mem assigned s))
          && stays_in_object whole_loop ~copies_of:(pure_copies_of p) p
        then (p, s) :: acc
        else acc)
      copies []
  in
  (* transitive step: a temporary [b] whose only assignments in the loop are
     copies [b = p] of a qualifying induction pointer also points into [s]'s
     object (this is what rewrites the tmpa/tmpb bases of the string-copy
     loop to s/t) *)
  let transitive =
    List.concat_map
      (fun (p, s) ->
        List.filter_map
          (fun b -> if List.mem_assoc b direct then None else Some (b, s))
          (pure_copies_of p))
      direct
  in
  direct @ transitive

let rec walk_block copies (ss : Ast.stmt list) : Ast.stmt list =
  match ss with
  | [] -> []
  | s :: rest ->
      let s' = walk_stmt copies s in
      (* update the copy environment from this statement *)
      (match s.Ast.sdesc with
      | Ast.Sexpr { Ast.edesc = Ast.Assign ({ Ast.edesc = Ast.Var p; _ }, rhs); _ }
        -> (
          kill copies p;
          match rhs.Ast.edesc with
          | Ast.Var svar when Ast.is_pointer_valued rhs ->
              Hashtbl.replace copies p svar
          | _ -> ())
      | Ast.Sdecl { Ast.d_name = p; d_init = Some rhs; _ } -> (
          kill copies p;
          match rhs.Ast.edesc with
          | Ast.Var svar when Ast.is_pointer_valued rhs ->
              Hashtbl.replace copies p svar
          | _ -> ())
      | Ast.Sdecl { Ast.d_name = p; _ } -> kill copies p
      | _ ->
          (* anything with control flow or other assignments: be
             conservative and drop facts about variables it assigns *)
          let assigned = assigned_vars s in
          Hashtbl.iter (fun v () -> kill copies v) assigned);
      s' :: walk_block copies rest

and kill copies v =
  Hashtbl.remove copies v;
  let victims =
    Hashtbl.fold (fun p s acc -> if s = v then p :: acc else acc) copies []
  in
  List.iter (Hashtbl.remove copies) victims

and walk_stmt copies (s : Ast.stmt) : Ast.stmt =
  let remk sdesc = { s with Ast.sdesc = sdesc } in
  match s.Ast.sdesc with
  | Ast.Sblock ss ->
      remk (Ast.Sblock (walk_block (Hashtbl.copy copies) ss))
  | Ast.Swhile (c, b) ->
      let subst = loop_subst copies b (Some c) in
      let s' = remk (Ast.Swhile (c, walk_stmt (Hashtbl.create 8) b)) in
      if subst = [] then s' else subst_bases subst s'
  | Ast.Sdowhile (b, c) ->
      let subst = loop_subst copies b (Some c) in
      let s' = remk (Ast.Sdowhile (walk_stmt (Hashtbl.create 8) b, c)) in
      if subst = [] then s' else subst_bases subst s'
  | Ast.Sfor (i, c, st, b) ->
      let body_and_step =
        match st with
        | Some st -> Ast.mk_stmt (Ast.Sblock [ b; Ast.mk_stmt (Ast.Sexpr st) ])
        | None -> b
      in
      let subst = loop_subst copies body_and_step c in
      let s' = remk (Ast.Sfor (i, c, st, walk_stmt (Hashtbl.create 8) b)) in
      if subst = [] then s' else subst_bases subst s'
  | Ast.Sif (c, a, b) ->
      remk
        (Ast.Sif
           ( c,
             walk_stmt (Hashtbl.copy copies) a,
             Option.map (walk_stmt (Hashtbl.copy copies)) b ))
  | _ -> s

(** Apply the heuristic to an annotated program (Safe mode only; Checked
    mode keeps exact bases so that error reports point at the failing
    pointer). *)
let apply (p : Ast.program) : Ast.program =
  let globals =
    List.map
      (function
        | Ast.Gfunc f ->
            Ast.Gfunc
              { f with Ast.f_body = walk_stmt (Hashtbl.create 8) f.Ast.f_body }
        | (Ast.Gvar _ | Ast.Gstruct _ | Ast.Gproto _) as g -> g)
      p.Ast.prog_globals
  in
  let p' = { p with Ast.prog_globals = globals } in
  ignore (Typecheck.check_program p');
  p'
