(** Heapness analysis: which pointer variables can possibly hold heap
    pointers?

    The algorithm's BASE rules already say "if x is a variable and possible
    heap pointer"; the baseline implementation treats every pointer-typed
    variable as possible.  The paper observes that "the introduced overhead
    should be very small with 'sufficiently good' program analysis" — this
    module is a first step: a flow-insensitive per-function fixpoint that
    proves some variables can only ever point into stack or static storage
    (e.g. a cursor walking a local buffer), so their KEEP_LIVEs can be
    dropped.

    Conservative defaults: parameters, globals, and anything whose address
    is taken are possibly-heap; call results and values loaded from memory
    are possibly-heap; names are resolved per function without scope
    splitting (a shadowing local shares its outer name's verdict). *)

open Csyntax

type verdict = string -> bool
(** [verdict x] = can variable [x] possibly hold a heap pointer? *)

let address_taken_vars (f : Ast.func) =
  let tbl = Hashtbl.create 8 in
  let on_expr () (e : Ast.expr) =
    match e.Ast.edesc with
    | Ast.AddrOf inner ->
        let rec root (x : Ast.expr) =
          match x.Ast.edesc with
          | Ast.Var v -> Hashtbl.replace tbl v ()
          | Ast.Field (b, _) | Ast.Cast (_, b) -> root b
          | Ast.Index (b, _) -> (
              match b.Ast.ety with
              | Some (Ctype.Array _) -> root b
              | _ -> ())
          | _ -> ()
        in
        root inner
    | _ -> ()
  in
  ignore (Ast.fold_stmt_exprs on_expr () f.Ast.f_body);
  tbl

(** Analyze one function.  [global x] must say whether [x] is a global
    (globals are conservatively possibly-heap: any function may store heap
    pointers in them). *)
let analyze ~(global : string -> bool) (f : Ast.func) : verdict =
  let heapy_vars : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let addr_taken = address_taken_vars f in
  List.iter (fun (name, _) -> Hashtbl.replace heapy_vars name ()) f.Ast.f_params;
  let var_heapy v =
    Hashtbl.mem heapy_vars v || global v || Hashtbl.mem addr_taken v
  in
  (* is the value of [e] possibly a heap pointer, under the current set? *)
  let rec heapy (e : Ast.expr) =
    match e.Ast.edesc with
    | Ast.IntLit _ | Ast.CharLit _ | Ast.FloatLit _ | Ast.SizeofType _
    | Ast.SizeofExpr _ | Ast.StrLit _ ->
        false
    | Ast.Var v -> var_heapy v
    | Ast.Call (_, _) | Ast.RuntimeCall (_, _) -> true
    | Ast.Deref _ -> true (* a pointer loaded from memory *)
    | Ast.Index (_, _) | Ast.Arrow (_, _) | Ast.Field (_, _) -> (
        match e.Ast.ety with
        | Some (Ctype.Array _) -> heapy_addr e (* the element's address *)
        | _ -> true (* scalar load from memory *))
    | Ast.AddrOf lv -> heapy_addr lv
    | Ast.Binop ((Ast.Add | Ast.Sub), a, b) -> heapy a || heapy b
    | Ast.Binop (_, _, _) | Ast.Unop (_, _) -> false
    | Ast.Cast (_, x) -> heapy x
    | Ast.Cond (_, a, b) -> heapy a || heapy b
    | Ast.Comma (_, b) -> heapy b
    | Ast.Assign (_, r) -> heapy r
    | Ast.OpAssign (_, l, _) | Ast.Incr (_, l) -> heapy l
    | Ast.KeepLive (x, _) -> heapy x
  (* is the address of lvalue [lv] possibly inside a heap object? *)
  and heapy_addr (lv : Ast.expr) =
    match lv.Ast.edesc with
    | Ast.Var v -> (
        (* &local / &global: stack or static storage — unless the variable
           is itself an array whose storage... arrays are still stack *)
        ignore v;
        false)
    | Ast.Deref a -> heapy a
    | Ast.Index (a, _) -> (
        match a.Ast.ety with
        | Some (Ctype.Array _) -> heapy_addr a
        | _ -> heapy a)
    | Ast.Arrow (p, _) -> heapy p
    | Ast.Field (b, _) -> heapy_addr b
    | Ast.Cast (_, b) -> heapy_addr b
    | _ -> true
  in
  (* fixpoint over all assignments to simple pointer variables *)
  let changed = ref true in
  let visit () =
    let on_expr () (e : Ast.expr) =
      match e.Ast.edesc with
      | Ast.Assign ({ Ast.edesc = Ast.Var v; _ }, rhs)
        when not (Hashtbl.mem heapy_vars v) ->
          if heapy rhs then begin
            Hashtbl.replace heapy_vars v ();
            changed := true
          end
      | _ -> ()
    in
    ignore (Ast.fold_stmt_exprs on_expr () f.Ast.f_body);
    (* declaration initializers *)
    Ast.iter_stmts
      (fun s ->
        match s.Ast.sdesc with
        | Ast.Sdecl { Ast.d_name = v; d_init = Some rhs; _ }
          when not (Hashtbl.mem heapy_vars v) ->
            if heapy rhs then begin
              Hashtbl.replace heapy_vars v ();
              changed := true
            end
        | _ -> ())
      f.Ast.f_body
  in
  while !changed do
    changed := false;
    visit ()
  done;
  var_heapy

(** The trivial verdict used when the analysis is disabled. *)
let all_heapy : verdict = fun _ -> true
