(** The paper's BASE / BASEADDR rules ("An Algorithm").

    [BASE e] is a pointer variable guaranteed to point to the same object
    as [e] whenever [e] points to a heap object; [BASEADDR e] is the
    possible base pointer for [&e].  Both operate on type-annotated ASTs
    (see {!Csyntax.Typecheck}). *)

type base =
  | Nil  (** provably not a heap pointer (constant, static, stack address) *)
  | Var of string  (** the base pointer variable *)
  | Unnamed
      (** a generating expression whose value has no name yet; the
          normalizer must introduce a temporary before BASE is queried *)

val possible_heap_pointer : Csyntax.Ast.expr -> bool
(** Is the expression a pointer-typed variable (array variables are named
    stack/static memory and never heap pointers)? *)

val base : Csyntax.Ast.expr -> base

val baseaddr : Csyntax.Ast.expr -> base

val is_generating : Csyntax.Ast.expr -> bool
(** Pointer dereferences, function calls and conditional expressions —
    plus scalar loads through [\[\]]/[->]/[.], which are dereferences in
    the paper's [*&(...)] normal form. *)

val is_copy : Csyntax.Ast.expr -> bool
(** Is the expression statically "simply a copy of a value logically
    stored elsewhere" (the paper's optimization (1))? *)

val base_to_string : base -> string
