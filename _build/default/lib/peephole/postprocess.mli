(** The peephole postprocessor ("A Postprocessor").

    Runs on register-allocated code and applies the paper's three patterns
    — fold an [add] into a load's address mode, forward a [mov], sink an
    [add] into its final destination — under the paper's safety
    constraints: the rewritten register must have no other uses and must
    never appear as a KEEP_LIVE operand, and source registers must not be
    redefined in between, so every value stays live in its original
    range. *)

type stats = {
  mutable ph_fused_loads : int;
  mutable ph_forwarded_moves : int;
  mutable ph_sunk_adds : int;
}

val fresh_stats : unit -> stats

val run_func : stats -> Ir.Instr.func -> unit
[@@ocaml.doc "Postprocess one function in place."]

val run : Ir.Instr.program -> stats
(** Postprocess a whole program; returns the rewrite counts. *)
