lib/peephole/postprocess.mli: Ir
