lib/peephole/postprocess.ml: Array Hashtbl Ir List
