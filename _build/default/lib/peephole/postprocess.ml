(** The peephole postprocessor ("A Postprocessor").

    Runs on register-allocated code, like the paper's SPARC assembly-level
    tool derived from the [Boehm94] instruction scheduler.  "It first
    performs a simple global, intraprocedural analysis that allows us to
    identify possible uses of register values.  It subsequently looks for
    one of the following three patterns inside each basic block and
    transforms them appropriately."

    Pattern 1 — fold an addition into the load's address mode:
    {v add x,y,z ; ... ; ld [z]     ==>   ... ; ld [x+y] v}

    Pattern 2 — forward a move:
    {v mov x,z   ; ... ; ...z...    ==>   ... ; ...x... v}

    Pattern 3 — sink an addition into its final destination:
    {v add x,y,z ; ... ; mov z,w    ==>   ... ; add x,y,w v}

    Safety constraints (the paper's):
    - the rewritten register [z] must have no other uses — in particular it
      must never be mentioned as the second argument of a KEEP_LIVE (our
      [KeepLive] marker is the paper's "special comment");
    - the source registers must not be redefined in between ("x is not
      overridden"), so all values remain live in the same ranges as before
      and KEEP_LIVE semantics cannot be invalidated.

    Registers are not reassigned and the result is not rescheduled, as in
    the paper. *)

open Ir.Instr

type stats = {
  mutable ph_fused_loads : int;
  mutable ph_forwarded_moves : int;
  mutable ph_sunk_adds : int;
}

let fresh_stats () =
  { ph_fused_loads = 0; ph_forwarded_moves = 0; ph_sunk_adds = 0 }

(* registers mentioned as KEEP_LIVE operands anywhere in the function: the
   transformation "could not apply if z were originally mentioned as the
   second argument of a KEEP_LIVE" *)
let keep_live_regs (f : func) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun b ->
      List.iter
        (function
          | KeepLive (Reg r) -> Hashtbl.replace tbl r ()
          | _ -> ())
        b.b_instrs)
    f.fn_blocks;
  tbl

let op_reg = function Reg r -> Some r | Imm _ | Glob _ -> None

(* does instruction k redefine any register in [rs]? *)
let redefines instr rs =
  match def instr with Some d -> List.mem d rs | None -> false

let reg_list ops = List.filter_map op_reg ops

(* Pattern 1: add x,y,z ; ... ; ld d,[z+0]  ==>  ld d,[x+y].
   z dead after the load, z unused in between and after, x,y stable. *)
let fuse_loads stats klregs (b : block) after =
  let instrs = Array.of_list b.b_instrs in
  let n = Array.length instrs in
  let removed = Array.make n false in
  for idx = 0 to n - 1 do
    match instrs.(idx) with
    | Load (w, d, Reg z, Imm 0) when not (Hashtbl.mem klregs z) ->
        (* find the defining add *)
        let rec find_def j =
          if j < 0 then None
          else if removed.(j) then find_def (j - 1)
          else
            match instrs.(j) with
            | Bin (Add, z', x, y) when z' = z -> Some (j, x, y)
            | i when def i = Some z -> None
            | _ -> find_def (j - 1)
        in
        (match find_def (idx - 1) with
        | Some (j, x, y) ->
            let srcs = reg_list [ x; y ] in
            let ok = ref (not (Ir.Liveness.ISet.mem z after.(idx))) in
            (* z unused and x,y unchanged strictly between j and idx *)
            for k = j + 1 to idx - 1 do
              if not removed.(k) then begin
                if List.mem z (uses instrs.(k)) then ok := false;
                if redefines instrs.(k) (z :: srcs) then ok := false
              end
            done;
            if !ok then begin
              removed.(j) <- true;
              instrs.(idx) <- Load (w, d, x, y);
              stats.ph_fused_loads <- stats.ph_fused_loads + 1
            end
        | None -> ())
    | _ -> ()
  done;
  b.b_instrs <-
    List.filteri (fun i _ -> not removed.(i)) (Array.to_list instrs)

(* Pattern 2: mov z,x forwarding — rewrite in-block uses of z to x while x
   and z are unchanged; drop the mov when z ends up dead. *)
let forward_moves stats klregs (b : block) after =
  let instrs = Array.of_list b.b_instrs in
  let n = Array.length instrs in
  let removed = Array.make n false in
  for idx = 0 to n - 1 do
    match instrs.(idx) with
    | Mov (z, Reg x) when z <> x && not (Hashtbl.mem klregs z) ->
        (* rewrite following uses of z to x until z or x is redefined *)
        let stop = ref false in
        let last_rewritten = ref (-1) in
        let k = ref (idx + 1) in
        while (not !stop) && !k < n do
          if not removed.(!k) then begin
            let i = instrs.(!k) in
            if List.mem z (uses i) then begin
              instrs.(!k) <-
                map_instr_ops (fun r -> if r = z then Reg x else Reg r) i;
              last_rewritten := !k
            end;
            if redefines i [ z; x ] then stop := true
          end;
          incr k
        done;
        (* the mov is removable if z is now locally dead: no remaining use
           of z after idx in the block before any redef, and z dead at the
           end of the straight-line region we scanned *)
        let z_still_used = ref false in
        let k2 = ref (idx + 1) in
        let stopped = ref false in
        while (not !stopped) && !k2 < n do
          if not removed.(!k2) then begin
            if List.mem z (uses instrs.(!k2)) then z_still_used := true;
            if redefines instrs.(!k2) [ z ] then stopped := true
          end;
          incr k2
        done;
        if !stopped && not !z_still_used then begin
          removed.(idx) <- true;
          stats.ph_forwarded_moves <- stats.ph_forwarded_moves + 1
        end
        else if
          (not !z_still_used)
          && (not (Ir.Liveness.ISet.mem z after.(n - 1)))
          && not (List.mem z (term_uses b.b_term))
        then begin
          removed.(idx) <- true;
          stats.ph_forwarded_moves <- stats.ph_forwarded_moves + 1
        end
        else ignore !last_rewritten
    | _ -> ()
  done;
  b.b_instrs <-
    List.filteri (fun i _ -> not removed.(i)) (Array.to_list instrs)

(* Pattern 3: add x,y,z ; ... ; mov w,z  ==>  ... ; add x,y,w *)
let sink_adds stats klregs (b : block) after =
  let instrs = Array.of_list b.b_instrs in
  let n = Array.length instrs in
  let removed = Array.make n false in
  for idx = 0 to n - 1 do
    match instrs.(idx) with
    | Mov (w, Reg z) when w <> z && not (Hashtbl.mem klregs z) ->
        let rec find_def j =
          if j < 0 then None
          else if removed.(j) then find_def (j - 1)
          else
            match instrs.(j) with
            | Bin (op, z', x, y) when z' = z -> Some (j, op, x, y)
            | i when def i = Some z -> None
            | _ -> find_def (j - 1)
        in
        (match find_def (idx - 1) with
        | Some (j, op, x, y) ->
            let srcs = reg_list [ x; y ] in
            let ok = ref (not (Ir.Liveness.ISet.mem z after.(idx))) in
            for k = j + 1 to idx - 1 do
              if not removed.(k) then begin
                if List.mem z (uses instrs.(k)) then ok := false;
                if redefines instrs.(k) (z :: w :: srcs) then ok := false
              end
            done;
            if !ok then begin
              removed.(j) <- true;
              instrs.(idx) <- Bin (op, w, x, y);
              stats.ph_sunk_adds <- stats.ph_sunk_adds + 1
            end
        | None -> ())
    | _ -> ()
  done;
  b.b_instrs <-
    List.filteri (fun i _ -> not removed.(i)) (Array.to_list instrs)

let run_func stats (f : func) =
  let klregs = keep_live_regs f in
  let pass transform =
    let live = Ir.Liveness.compute f in
    List.iter
      (fun b ->
        let after = Ir.Liveness.per_instr live b in
        if Array.length after > 0 then transform stats klregs b after)
      f.fn_blocks
  in
  pass forward_moves;
  pass fuse_loads;
  pass sink_adds

(** Postprocess a whole register-allocated program; returns the rewrite
    counts. *)
let run (p : program) : stats =
  let stats = fresh_stats () in
  List.iter (run_func stats) p.p_funcs;
  stats
