(* Exploring the conservative collector substrate directly.

   Run with:  dune exec examples/gc_explorer.exe

   Uses the gcheap library's public API without the compiler: allocation,
   the height-2 page map, interior pointers, conservative (false-positive)
   retention, the extra byte for one-past-the-end pointers, and the
   "Extensions" mode where interior pointers are honoured only from the
   roots. *)

open Gcheap

let banner s = Printf.printf "\n--- %s ---\n" s

let () =
  let h = Heap.create () in

  banner "allocation and the page map";
  let a = Heap.alloc h 100 in
  let b = Heap.alloc h 100 in
  Printf.printf "allocated a=%#x b=%#x (same size class, same page run)\n" a b;
  Printf.printf "GC_base(a + 63)      = %#x (interior pointers map back)\n"
    (Option.get (Heap.base_of h (a + 63)));
  Printf.printf "GC_base(a + 100)     = %#x (one past the end: the extra byte)\n"
    (Option.get (Heap.base_of h (a + 100)));
  Printf.printf "GC_base(a - 1)       = %s (one before is NOT ours)\n"
    (match Heap.base_of h (a - 1) with
    | Some x when x = a -> "a ?!"
    | Some x -> Printf.sprintf "%#x (the previous object)" x
    | None -> "none");

  banner "reachability: roots, chains, interior pointers";
  let chain = Array.init 5 (fun _ -> Heap.alloc h 24) in
  for i = 0 to 3 do
    Mem.store_word h.Heap.mem chain.(i) chain.(i + 1)
  done;
  let garbage = Heap.alloc h 24 in
  let freed = Heap.collect ~extra_roots:[ chain.(0); b + 57 ] h in
  Printf.printf "collect with roots {chain head, interior of b}: freed %d\n"
    freed;
  Printf.printf "chain tail alive: %b; b alive via interior ptr: %b; garbage gone: %b\n"
    (Heap.valid_access h chain.(4) 24)
    (Heap.valid_access h b 100)
    (not (Heap.valid_access h garbage 24));

  banner "conservatism: an integer that looks like a pointer";
  let victim = Heap.alloc h 40 in
  let innocent = Heap.alloc h 40 in
  (* innocent holds a plain integer whose value happens to equal victim's
     address: the conservative scan must retain victim anyway *)
  Mem.store_word h.Heap.mem innocent victim;
  ignore (Heap.collect ~extra_roots:[ innocent ] h);
  Printf.printf
    "victim retained because an int in a live object looks like its address: %b\n"
    (Heap.valid_access h victim 40);

  banner "the checking primitives (debugging mode runtime)";
  let obj = Heap.alloc h 64 in
  Printf.printf "GC_same_obj(obj+8, obj) = %#x (ok)\n" (Heap.same_obj h (obj + 8) obj);
  (try ignore (Heap.same_obj h (obj + 4096) obj)
   with Heap.Check_failure m -> Printf.printf "GC_same_obj(obj+4096, obj): %s\n" m);
  let slot = Heap.alloc h 8 in
  Mem.store_word h.Heap.mem slot obj;
  let old = Heap.post_incr h slot 16 in
  let now = Mem.load_word h.Heap.mem slot in
  Printf.printf "GC_post_incr(&slot, 16) returned %#x, slot now %#x\n" old now;

  banner "the Extensions mode: interior pointers from roots only";
  let config = Heap.default_config () in
  config.Heap.all_interior <- false;
  let h2 = Heap.create ~config () in
  let target = Heap.alloc h2 64 in
  let holder = Heap.alloc h2 16 in
  Mem.store_word h2.Heap.mem holder (target + 8);
  ignore (Heap.collect ~extra_roots:[ holder ] h2);
  Printf.printf
    "heap-resident interior pointer no longer keeps its target: alive=%b\n"
    (Heap.valid_access h2 target 64);
  Printf.printf
    "(the paper: this mode requires clients to store only base pointers\n\
    \ in the heap, and \"interacts suboptimally with C++ multiple\n\
    \ inheritance\")\n";

  banner "statistics";
  Format.printf "%a@." Heap.pp_stats h.Heap.stats
