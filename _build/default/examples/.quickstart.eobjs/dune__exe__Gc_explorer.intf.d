examples/gc_explorer.mli:
