examples/quickstart.mli:
