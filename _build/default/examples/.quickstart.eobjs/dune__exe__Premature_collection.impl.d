examples/premature_collection.ml: Format Harness Ir List Printf
