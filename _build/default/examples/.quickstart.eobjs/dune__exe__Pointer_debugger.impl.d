examples/pointer_debugger.ml: Harness List Printf String Workloads
