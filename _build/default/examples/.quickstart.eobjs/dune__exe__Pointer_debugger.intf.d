examples/pointer_debugger.mli:
