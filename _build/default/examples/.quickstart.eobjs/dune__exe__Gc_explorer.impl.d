examples/gc_explorer.ml: Array Format Gcheap Heap Mem Option Printf
