examples/quickstart.ml: Csyntax Format Gcheap Gcsafe Harness List Machine Printf String
