examples/premature_collection.mli:
