(* gcsafec: the GC-safety preprocessor, checker and runner.

   Subcommands:
     annotate    transform C source (GC-safe or checked mode) and print it
     check       run the pointer-hiding source checker
     run         build under a configuration and execute on the VM
     ir          dump the compiled (optimized, register-allocated) IR
     tables      regenerate one of the paper's tables
     stress      fault-injected differential stress over the build matrix
                 (--chaos adds allocation-failure, worker-fault and
                 cache-corruption sweeps)
     profile     allocation-site heap profile (drag, peak-live) per analysis
     trace-check validate a Chrome trace-event JSON file or a
                 flight-recorder dump
     heap-census per-collection heap census: size classes, free-page pool,
                 ages, card-table dirty ratio, fragmentation
     serve       service harness over a JSON-lines request stream (stdin)
     bomb        open-loop request bombardment with a deterministic report
                 (--events streams windowed metrics + flight-recorder
                 events; --flight-dump ships the ring)

   Exit codes (see Harness.Diagnostics): 0 success, 1 finding/divergence,
   2 source or input error, 3 runtime fault detected, 4 resource limit,
   5 heap corruption, 6 heap exhausted (out of memory under a hard heap
   limit), 7 task quarantined (a supervised task exhausted its attempt
   cap).

   Parallelism and caching: builds are memoized in a process-wide
   content-addressed cache (--no-cache rebuilds every time); the stress
   and tables subcommands fan work out over --jobs worker domains with
   output byte-identical to --jobs 1. *)

open Cmdliner

let read_input = function
  | "-" -> In_channel.input_all In_channel.stdin
  | path -> In_channel.with_open_text path In_channel.input_all

(* --- shared arguments -------------------------------------------------- *)

let file_arg =
  let doc = "C source file ('-' for standard input)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let machine_arg =
  let doc = "Machine model: sparc2, sparc10 or pentium90." in
  let parse s =
    match Machine.Machdesc.by_name s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown machine %s" s))
  in
  let print fmt m = Format.pp_print_string fmt m.Machine.Machdesc.md_name in
  Arg.(
    value
    & opt (conv (parse, print)) Machine.Machdesc.sparc10
    & info [ "machine" ] ~docv:"MACHINE" ~doc)

let config_arg =
  let doc =
    "Build configuration: base, safe, safe-peep, debug or checked."
  in
  let parse = function
    | "base" -> Ok Harness.Build.Base
    | "safe" -> Ok Harness.Build.Safe
    | "safe-peep" -> Ok Harness.Build.Safe_peephole
    | "debug" | "g" -> Ok Harness.Build.Debug
    | "checked" -> Ok Harness.Build.Debug_checked
    | s -> Error (`Msg (Printf.sprintf "unknown configuration %s" s))
  in
  let print fmt c = Format.pp_print_string fmt (Harness.Build.config_name c) in
  Arg.(
    value
    & opt (conv (parse, print)) Harness.Build.Safe
    & info [ "config"; "c" ] ~docv:"CONFIG" ~doc)

let analysis_conv =
  let parse s =
    match Gcsafe.Mode.analysis_of_string s with
    | Some a -> Ok a
    | None -> Error (`Msg (Printf.sprintf "unknown analysis %s" s))
  in
  let print fmt a =
    Format.pp_print_string fmt (Gcsafe.Mode.analysis_to_string a)
  in
  Arg.conv (parse, print)

let analysis_arg =
  let doc =
    "Dataflow analysis pruning annotation sites: 'flow' (the lib/analysis \
     clients, the default) or 'none' (the paper's algorithm verbatim)."
  in
  Arg.(
    value
    & opt analysis_conv Gcsafe.Mode.A_flow
    & info [ "analysis" ] ~docv:"ANALYSIS" ~doc)

let gc_mode_conv =
  let parse s =
    match Gcheap.Heap.gc_mode_of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown gc mode %s" s))
  in
  let print fmt m = Format.pp_print_string fmt (Gcheap.Heap.gc_mode_name m) in
  Arg.conv (parse, print)

let gc_mode_arg =
  let doc =
    "Collector mode: 'stw' (the paper's stop-the-world mark-sweep, the \
     default), 'gen' (generational: card-marking write barrier, minor \
     collections over young objects, full majors on the usual threshold) \
     or 'inc' (incremental: snapshot-at-the-beginning marking sliced \
     into budget-bounded increments at allocation GC points; see \
     --gc-pause-budget)."
  in
  Arg.(
    value
    & opt gc_mode_conv Gcheap.Heap.Stw
    & info [ "gc-mode" ] ~docv:"MODE" ~doc)

let handle_errors = Harness.Diagnostics.handle

let jobs_arg =
  let doc =
    "Worker domains for parallel subcommands (stress, tables).  Output is \
     byte-identical to --jobs 1; the default is the machine's recommended \
     domain count."
  in
  Arg.(
    value
    & opt int (Exec.Pool.recommended_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let no_cache_arg =
  let doc =
    "Disable the process-wide content-addressed build cache (every build \
     recompiles from source)."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let apply_cache_flag no_cache =
  if no_cache then Harness.Build.set_cache_enabled false

(* --- annotate ----------------------------------------------------------- *)

let annotate_cmd =
  let mode_arg =
    let doc = "Insertion mode: 'safe' (KEEP_LIVE) or 'checked' (GC_same_obj)." in
    let parse = function
      | "safe" -> Ok Gcsafe.Mode.Safe
      | "checked" -> Ok Gcsafe.Mode.Checked
      | s -> Error (`Msg (Printf.sprintf "unknown mode %s" s))
    in
    let print fmt m = Format.pp_print_string fmt (Gcsafe.Mode.to_string m) in
    Arg.(
      value
      & opt (conv (parse, print)) Gcsafe.Mode.Safe
      & info [ "mode"; "m" ] ~docv:"MODE" ~doc)
  in
  let naive_arg =
    let doc = "Disable optimization (1): annotate even plain copies." in
    Arg.(value & flag & info [ "naive" ] ~doc)
  in
  let heuristic_arg =
    let doc = "Enable optimization (3): slowly-varying loop base pointers." in
    Arg.(value & flag & info [ "loop-heuristic" ] ~doc)
  in
  let calls_only_arg =
    let doc =
      "Enable optimization (4): assume collections trigger only at call \
       sites and skip annotations in call-free statements."
    in
    Arg.(value & flag & info [ "calls-only" ] ~doc)
  in
  let heapness_arg =
    let doc =
      "Run the heapness analysis: drop annotations whose base provably \
       never holds a heap pointer."
    in
    Arg.(value & flag & info [ "heapness" ] ~doc)
  in
  let base_stores_arg =
    let doc =
      "Checked mode only: verify the Extensions-section discipline that \
       only base pointers are stored into the heap."
    in
    Arg.(value & flag & info [ "check-base-stores" ] ~doc)
  in
  let patch_arg =
    let doc =
      "Emit by patching the original text (preserves formatting and \
       comments; constructs needing temporaries are skipped and reported)."
    in
    Arg.(value & flag & info [ "patch" ] ~doc)
  in
  let stats_arg =
    let doc =
      "Print per-rule insertion and per-analysis suppression counts to \
       stderr as one JSON object."
    in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let stats_out_arg =
    let doc =
      "Write the --stats JSON object to $(docv) instead of stderr (implies \
       --stats)."
    in
    Arg.(value & opt (some string) None & info [ "stats-out" ] ~docv:"FILE" ~doc)
  in
  let workload_arg =
    let doc =
      "Annotate a registered workload (cordtest, cfrac, gawk, gs, ...) \
       instead of a FILE."
    in
    Arg.(value & opt (some string) None & info [ "workload" ] ~docv:"NAME" ~doc)
  in
  let opt_file_arg =
    let doc = "C source file ('-' for standard input)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  (* one JSON object on one line: the CI regression guard jq-parses it *)
  let stats_json ~source_name ~mode ~analysis (r : Gcsafe.Annotate.result) =
    let field k v = Printf.sprintf "%S:%s" k v in
    let str s = Printf.sprintf "%S" s in
    let counts pairs name_of =
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, n) -> field (name_of k) (string_of_int n))
             pairs)
      ^ "}"
    in
    "{"
    ^ String.concat ","
        [
          field "file" (str source_name);
          field "mode" (str (Gcsafe.Mode.to_string mode));
          field "analysis" (str (Gcsafe.Mode.analysis_to_string analysis));
          field "total" (string_of_int r.Gcsafe.Annotate.keep_live_count);
          field "inserted"
            (counts r.Gcsafe.Annotate.stats.Gcsafe.Annotate.st_by_rule
               Gcsafe.Annotate.rule_name);
          field "suppressed"
            (counts r.Gcsafe.Annotate.stats.Gcsafe.Annotate.st_by_reason
               Gcsafe.Annotate.reason_name);
          field "by_func"
            (counts r.Gcsafe.Annotate.stats.Gcsafe.Annotate.st_by_func
               (fun f -> f));
        ]
    ^ "}"
  in
  let run mode analysis naive heuristic calls_only heapness base_stores patch
      stats stats_out workload file =
    handle_errors (fun () ->
        let source_name, src =
          match (workload, file) with
          | Some w, None -> (
              match Workloads.Registry.by_name w with
              | Some wl -> (w, wl.Workloads.Registry.w_source)
              | None ->
                  Printf.eprintf "unknown workload: %s\n" w;
                  exit 2)
          | None, Some f -> (f, read_input f)
          | Some _, Some _ ->
              Printf.eprintf "give either FILE or --workload, not both\n";
              exit 2
          | None, None ->
              Printf.eprintf "a FILE argument or --workload is required\n";
              exit 2
        in
        let ast = Csyntax.Parser.parse_program src in
        let opts =
          {
            (Gcsafe.Mode.default mode) with
            Gcsafe.Mode.suppress_copies = not naive;
            Gcsafe.Mode.calls_only;
            Gcsafe.Mode.heapness_analysis = heapness;
            Gcsafe.Mode.check_base_stores = base_stores;
            Gcsafe.Mode.analysis;
          }
        in
        if patch then begin
          let r = Gcsafe.Patch_mode.annotate_source ~opts src in
          print_string r.Gcsafe.Patch_mode.pr_source;
          if stats then
            Printf.eprintf "%d annotation(s) inserted, %d skipped (need rewrites)\n"
              r.Gcsafe.Patch_mode.pr_inserted r.Gcsafe.Patch_mode.pr_skipped
        end
        else begin
          let r = Gcsafe.Annotate.run ~opts ast in
          let program =
            if heuristic && mode = Gcsafe.Mode.Safe then
              Gcsafe.Loop_heuristic.apply r.Gcsafe.Annotate.program
            else r.Gcsafe.Annotate.program
          in
          print_string (Csyntax.Pretty.program_to_string program);
          if stats || stats_out <> None then begin
            let json = stats_json ~source_name ~mode ~analysis r in
            match stats_out with
            | Some path ->
                Out_channel.with_open_text path (fun oc ->
                    Out_channel.output_string oc (json ^ "\n"))
            | None -> Printf.eprintf "%s\n" json
          end
        end)
  in
  let doc = "annotate C source for GC-safety or pointer-arithmetic checking" in
  Cmd.v
    (Cmd.info "annotate" ~doc)
    Term.(
      const run $ mode_arg $ analysis_arg $ naive_arg $ heuristic_arg
      $ calls_only_arg $ heapness_arg $ base_stores_arg $ patch_arg $ stats_arg
      $ stats_out_arg $ workload_arg $ opt_file_arg)

(* --- check ---------------------------------------------------------------- *)

let check_cmd =
  let run file =
    handle_errors (fun () ->
        let src = read_input file in
        let ast, _env = Csyntax.Typecheck.check_source src in
        let diags = Gcsafe.Source_check.check_program ast in
        List.iter
          (fun d -> Format.printf "%a@." Gcsafe.Source_check.pp_diagnostic d)
          diags;
        let warnings = Gcsafe.Source_check.warnings diags in
        if warnings <> [] then exit 1)
  in
  let doc = "warn about pointer-hiding constructs (the paper's source checks)" in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ file_arg)

(* --- run -------------------------------------------------------------------- *)

let max_instrs_arg =
  let doc = "Step ceiling: abort with a limit diagnostic after N instructions." in
  Arg.(value & opt (some int) None & info [ "max-instrs" ] ~docv:"N" ~doc)

let max_heap_arg =
  let doc = "Heap ceiling in bytes: abort with a limit diagnostic beyond it." in
  Arg.(value & opt (some int) None & info [ "max-heap" ] ~docv:"BYTES" ~doc)

let heap_limit_arg =
  let doc =
    "Hard heap ceiling in words (8 bytes each); 0 means unlimited.  An \
     allocation the ceiling blocks follows --oom-policy instead of growing \
     the arena."
  in
  Arg.(value & opt int 0 & info [ "heap-limit" ] ~docv:"WORDS" ~doc)

let oom_policy_arg =
  let doc =
    "What an allocation that cannot be satisfied under --heap-limit does: \
     'collect-expand' (run an emergency collection, retry, grow within the \
     limit, and only then stop — the default) or 'trap' (stop immediately \
     with a structured heap-exhausted diagnostic)."
  in
  let parse s =
    match Gcheap.Heap.oom_policy_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown oom policy %s" s))
  in
  let print fmt p =
    Format.pp_print_string fmt (Gcheap.Heap.oom_policy_name p)
  in
  Arg.(
    value
    & opt (conv (parse, print)) Gcheap.Heap.Collect_expand
    & info [ "oom-policy" ] ~docv:"POLICY" ~doc)

let alloc_fail_arg =
  let doc =
    "Inject deterministic allocation failures: 'nth:K' (the Kth allocation), \
     'every:K', or a comma-separated ordinal list.  Each failure follows \
     --oom-policy (an emergency collection under collect-expand, a \
     structured stop under trap)."
  in
  let parse s =
    match Gcheap.Failpoint.of_string s with
    | Some fp -> Ok fp
    | None -> Error (`Msg (Printf.sprintf "bad failpoint spec %s" s))
  in
  let print fmt fp = Format.pp_print_string fmt (Gcheap.Failpoint.to_string fp) in
  Arg.(
    value
    & opt (conv (parse, print)) Gcheap.Failpoint.Never
    & info [ "alloc-fail" ] ~docv:"PLAN" ~doc)

let run_cmd =
  let async_arg =
    let doc = "Force a collection every N instructions (asynchronous GC)." in
    Arg.(value & opt (some int) None & info [ "async-gc" ] ~docv:"N" ~doc)
  in
  let gc_at_arg =
    let doc = "Force collections exactly after the listed instruction indices." in
    Arg.(value & opt (list int) [] & info [ "gc-at" ] ~docv:"K,K,..." ~doc)
  in
  let gc_at_allocs_arg =
    let doc = "Force a collection at every allocation." in
    Arg.(value & flag & info [ "gc-at-allocs" ] ~doc)
  in
  let integrity_arg =
    let doc = "Run the heap-integrity sanitizer after every collection." in
    Arg.(value & flag & info [ "check-integrity" ] ~doc)
  in
  let threshold_arg =
    let doc = "Allocation volume (bytes) between automatic collections." in
    Arg.(
      value & opt (some int) None & info [ "gc-threshold" ] ~docv:"BYTES" ~doc)
  in
  let pause_budget_arg =
    let doc =
      "Incremental-mode pause budget: words of collector work per marking \
       increment (the deterministic VM-tick clock).  Implies a one-line \
       increment summary on stderr.  Only meaningful with --gc-mode inc."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "gc-pause-budget" ] ~docv:"WORDS" ~doc)
  in
  let nursery_pages_arg =
    let doc =
      "Bump-allocated nursery budget in pages for the generational and \
       incremental modes (0 disables the nursery and restores legacy \
       shared-page young allocation).  Ignored with --gc-mode stw."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "nursery-pages" ] ~docv:"PAGES" ~doc)
  in
  let stats_arg =
    let doc = "Print cycle/instruction/GC statistics to stderr." in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let trace_arg =
    let doc =
      "Record a Chrome trace-event timeline (build and VM spans, GC pauses, \
       heap counters) and write it to $(docv) — loadable in Perfetto or \
       chrome://tracing."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics_arg =
    let doc =
      "Collect the telemetry registry (VM step/dispatch counters, GC pause \
       histogram, cache traffic) and print its snapshot to stderr."
    in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let workload_arg =
    let doc = "Run a registered workload instead of a FILE." in
    Arg.(value & opt (some string) None & info [ "workload" ] ~docv:"NAME" ~doc)
  in
  let opt_file_arg =
    let doc = "C source file ('-' for standard input)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run config machine analysis gc_mode gc_threshold gc_pause_budget
      nursery_pages async gc_at gc_at_allocs integrity max_instrs max_heap
      heap_limit oom_policy alloc_fail stats trace metrics no_cache workload
      file =
    handle_errors (fun () ->
        apply_cache_flag no_cache;
        let src =
          match (workload, file) with
          | Some w, None -> (
              match Workloads.Registry.by_name w with
              | Some wl -> wl.Workloads.Registry.w_source
              | None ->
                  Printf.eprintf "unknown workload: %s\n" w;
                  exit 2)
          | None, Some f -> read_input f
          | Some _, Some _ ->
              Printf.eprintf "give either FILE or --workload, not both\n";
              exit 2
          | None, None ->
              Printf.eprintf "a FILE argument or --workload is required\n";
              exit 2
        in
        let tracer = Option.map (fun _ -> Telemetry.Trace.create ()) trace in
        let telemetry =
          if trace <> None || metrics then
            Some (Telemetry.Sink.make ?trace:tracer ())
          else Telemetry.Sink.none
        in
        let finish_telemetry () =
          (match (trace, tracer) with
          | Some path, Some tr -> Telemetry.Trace.write_file tr path
          | _ -> ());
          if metrics then
            Format.eprintf "%a@." Telemetry.Metrics.pp
              (Telemetry.Metrics.snapshot
                 (Telemetry.Sink.metrics telemetry))
        in
        let schedule =
          if gc_at <> [] then Machine.Schedule.at_list gc_at
          else if gc_at_allocs then Machine.Schedule.At_allocs
          else
            match async with
            | Some n -> Machine.Schedule.Every n
            | None -> Machine.Schedule.Auto
        in
        let req =
          Harness.Request.make ~config ~machine ~analysis ~gc_mode ~schedule
            ~check_integrity:integrity ?gc_threshold ?gc_pause_budget
            ?nursery_pages ?max_instrs ?max_heap ~heap_limit ~oom_policy
            ~alloc_failpoints:alloc_fail src
        in
        let b =
          Harness.Build.compile ?telemetry
            ~options:(Harness.Request.build_options req)
            config src
        in
        (* one line, structured, on stderr — stdout stays byte-identical
           for the determinism diffs *)
        let summary outcome ~emergency ~injected =
          Printf.eprintf
            "gcsafec: outcome=%s policy=%s heap-limit=%d \
             emergency-collections=%d injected-failures=%d\n"
            (Harness.Diagnostics.outcome_name outcome)
            (Gcheap.Heap.oom_policy_name oom_policy)
            heap_limit emergency injected
        in
        (* same one-line stderr style as the OOM summary above *)
        let pause_summary (r : Harness.Measure.run_info) =
          Printf.eprintf
            "gcsafec: gc-mode=%s pause-budget=%d increments=%d \
             max-increment-words=%d budget-overruns=%d\n"
            (Gcheap.Heap.gc_mode_name gc_mode)
            (Option.value ~default:0 gc_pause_budget)
            r.Harness.Measure.o_increments r.Harness.Measure.o_inc_max_pause
            r.Harness.Measure.o_inc_overruns
        in
        match Harness.Measure.exec ?telemetry req b with
        | Harness.Measure.Ran r ->
            print_string r.Harness.Measure.o_output;
            finish_telemetry ();
            if heap_limit > 0 || alloc_fail <> Gcheap.Failpoint.Never then
              summary Harness.Diagnostics.Ok
                ~emergency:r.Harness.Measure.o_emergency
                ~injected:r.Harness.Measure.o_injected_failures;
            if gc_pause_budget <> None then pause_summary r;
            if stats then
              Printf.eprintf
                "config=%s machine=%s instrs=%d cycles=%d collections=%d \
                 size=%d annotations=%d emergency=%d injected=%d\n"
                (Harness.Build.config_name config)
                machine.Machine.Machdesc.md_name r.Harness.Measure.o_instrs
                r.Harness.Measure.o_cycles r.Harness.Measure.o_gc_count
                r.Harness.Measure.o_size b.Harness.Build.b_keep_lives
                r.Harness.Measure.o_emergency
                r.Harness.Measure.o_injected_failures
        | o ->
            finish_telemetry ();
            let outcome, message = Harness.Diagnostics.of_measure o in
            if heap_limit > 0 || alloc_fail <> Gcheap.Failpoint.Never then
              summary outcome ~emergency:0 ~injected:0;
            Harness.Diagnostics.report outcome message;
            exit (Harness.Diagnostics.exit_code outcome))
  in
  let doc = "build a configuration and execute it on the VM" in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const run $ config_arg $ machine_arg $ analysis_arg $ gc_mode_arg
      $ threshold_arg $ pause_budget_arg $ nursery_pages_arg $ async_arg
      $ gc_at_arg $ gc_at_allocs_arg $ integrity_arg $ max_instrs_arg
      $ max_heap_arg $ heap_limit_arg $ oom_policy_arg $ alloc_fail_arg
      $ stats_arg $ trace_arg $ metrics_arg $ no_cache_arg $ workload_arg
      $ opt_file_arg)

(* --- ir --------------------------------------------------------------------- *)

let ir_cmd =
  let run config machine analysis file =
    handle_errors (fun () ->
        let src = read_input file in
        let b =
          Harness.Build.compile
            ~options:
              {
                (Harness.Build.for_machine machine) with
                Harness.Build.analysis;
              }
            config src
        in
        List.iter
          (fun f -> Format.printf "%a@." Ir.Instr.pp_func f)
          b.Harness.Build.b_ir.Ir.Instr.p_funcs)
  in
  let doc = "dump the optimized, register-allocated IR" in
  Cmd.v
    (Cmd.info "ir" ~doc)
    Term.(const run $ config_arg $ machine_arg $ analysis_arg $ file_arg)

(* --- stress ------------------------------------------------------------------ *)

let stress_cmd =
  let targets_arg =
    let doc =
      "Stress targets: 'examples', 'workloads', 'all', a corpus or workload \
       name (hazard, indexfold, strcopy, interior, churn, cordtest, cfrac, \
       gawk, gs), or a path to a C source file."
    in
    Arg.(value & pos_all string [ "examples" ] & info [] ~docv:"TARGET" ~doc)
  in
  let machines_arg =
    let doc =
      "Restrict to one machine model (sparc2, sparc10, pentium90); \
       repeatable.  Default: all three."
    in
    let parse s =
      match Machine.Machdesc.by_name s with
      | Some m -> Ok m
      | None -> Error (`Msg (Printf.sprintf "unknown machine %s" s))
    in
    let print fmt m = Format.pp_print_string fmt m.Machine.Machdesc.md_name in
    Arg.(
      value
      & opt_all (conv (parse, print)) []
      & info [ "machine" ] ~docv:"MACHINE" ~doc)
  in
  let every_arg =
    let doc = "Use an every-N schedule (repeatable) instead of automatic mode \
               selection." in
    Arg.(value & opt_all int [] & info [ "every" ] ~docv:"N" ~doc)
  in
  let at_allocs_arg =
    let doc = "Add the collect-at-every-allocation schedule." in
    Arg.(value & flag & info [ "at-allocs" ] ~doc)
  in
  let exhaustive_arg =
    let doc =
      "Explore every single-collection-point schedule (up to --cap points), \
       regardless of program size."
    in
    Arg.(value & flag & info [ "exhaustive" ] ~doc)
  in
  let cap_arg =
    let doc =
      "Ceiling on exhaustive exploration: programs whose baseline executes \
       more instructions fall back to sampled schedules."
    in
    Arg.(value & opt int 2000 & info [ "cap" ] ~docv:"N" ~doc)
  in
  let analyses_arg =
    let doc =
      "Analysis variants of the preprocessed configurations: 'flow' (the \
       default), 'none', or 'both' to cross-check analysis-pruned builds \
       against fully-annotated ones under every schedule."
    in
    let parse = function
      | "none" -> Ok [ Gcsafe.Mode.A_none ]
      | "flow" -> Ok [ Gcsafe.Mode.A_flow ]
      | "both" -> Ok [ Gcsafe.Mode.A_none; Gcsafe.Mode.A_flow ]
      | s -> Error (`Msg (Printf.sprintf "unknown analysis %s" s))
    in
    let print fmt a =
      Format.pp_print_string fmt
        (String.concat "," (List.map Gcsafe.Mode.analysis_to_string a))
    in
    Arg.(
      value
      & opt (conv (parse, print)) [ Gcsafe.Mode.A_flow ]
      & info [ "analysis" ] ~docv:"ANALYSIS" ~doc)
  in
  let trace_dir_arg =
    let doc =
      "Replay every finding's failing schedule under a span tracer plus a \
       flight recorder and write the Chrome traces and flight-recorder \
       dumps into $(docv) (created on demand).  With --chaos, findings' \
       injected runs are replayed under the flight recorder alone."
    in
    Arg.(
      value & opt (some string) None & info [ "trace-dir" ] ~docv:"DIR" ~doc)
  in
  let gc_modes_arg =
    let doc =
      "Collector modes in the matrix: 'stw' (the default), 'gen', 'inc', \
       'both' (stw+gen) or 'all' (stw+gen+inc) to cross-check the \
       barrier-based collectors against the paper's stop-the-world \
       collector under every schedule."
    in
    let parse = function
      | "stw" -> Ok [ Gcheap.Heap.Stw ]
      | "gen" -> Ok [ Gcheap.Heap.Gen ]
      | "inc" | "incremental" -> Ok [ Gcheap.Heap.Inc ]
      | "both" -> Ok [ Gcheap.Heap.Stw; Gcheap.Heap.Gen ]
      | "all" -> Ok [ Gcheap.Heap.Stw; Gcheap.Heap.Gen; Gcheap.Heap.Inc ]
      | s -> Error (`Msg (Printf.sprintf "unknown gc mode %s" s))
    in
    let print fmt ms =
      Format.pp_print_string fmt
        (String.concat "," (List.map Gcheap.Heap.gc_mode_name ms))
    in
    Arg.(
      value
      & opt (conv (parse, print)) [ Gcheap.Heap.Stw ]
      & info [ "gc-mode" ] ~docv:"MODE" ~doc)
  in
  let chaos_arg =
    let doc =
      "Run the chaos sweeps instead of the schedule sweep: injected \
       allocation failures (with burst shrinking and trap-policy probes), \
       injected worker crashes under the supervised pool, and cache \
       corruption.  Any injected fault must either recover to the \
       fault-free behaviour or stop with a structured diagnostic."
    in
    Arg.(value & flag & info [ "chaos" ] ~doc)
  in
  let chaos_seed_arg =
    let doc =
      "Seed for the chaos sweeps' ordinal sampling and fault placement \
       (printed with every failing report, for exact replay)."
    in
    Arg.(value & opt int 0 & info [ "chaos-seed" ] ~docv:"N" ~doc)
  in
  let chaos_points_arg =
    let doc = "Allocation ordinals swept per subject in --chaos mode." in
    Arg.(value & opt int 64 & info [ "chaos-points" ] ~docv:"N" ~doc)
  in
  let nursery_pages_arg =
    let doc =
      "Nursery size in pages applied to every subject in the matrix (0 \
       disables the bump nursery; only the gen/inc subjects are affected)."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "nursery-pages" ] ~docv:"PAGES" ~doc)
  in
  let run machines analyses gc_modes every at_allocs exhaustive cap max_instrs
      max_heap nursery_pages trace_dir chaos chaos_seed chaos_points jobs
      no_cache targets =
    handle_errors (fun () ->
        apply_cache_flag no_cache;
        let resolved =
          List.concat_map
            (fun spec ->
              match Stress.Corpus.resolve spec with
              | Some ts -> ts
              | None ->
                  Printf.eprintf "unknown stress target: %s\n" spec;
                  exit 2)
            targets
        in
        if chaos then begin
          let default_matrix =
            Stress.Chaos.default_plan.Stress.Chaos.c_matrix
          in
          let plan =
            {
              Stress.Chaos.default_plan with
              Stress.Chaos.c_matrix =
                {
                  default_matrix with
                  Harness.Request.m_machines =
                    (if machines = [] then
                       default_matrix.Harness.Request.m_machines
                     else machines);
                  Harness.Request.m_gc_modes = gc_modes;
                  Harness.Request.m_nursery_pages = nursery_pages;
                };
              Stress.Chaos.c_seed = chaos_seed;
              Stress.Chaos.c_max_points = chaos_points;
              Stress.Chaos.c_jobs = jobs;
              Stress.Chaos.c_flight_dir = trace_dir;
            }
          in
          let report = Stress.Chaos.run ~plan resolved in
          Format.printf "%a@." Stress.Chaos.pp_report report;
          if Stress.Chaos.unexpected report <> [] then
            exit (Harness.Diagnostics.exit_code Harness.Diagnostics.Divergence)
        end
        else
        let modes =
          let m =
            (if exhaustive then [ Stress.Driver.Exhaustive cap ] else [])
            @ (if every <> [] then [ Stress.Driver.Every_n every ] else [])
            @ if at_allocs then [ Stress.Driver.Alloc_points ] else []
          in
          if m = [] then None else Some m
        in
        let default_matrix =
          Stress.Driver.default_plan.Stress.Driver.p_matrix
        in
        let plan =
          {
            Stress.Driver.p_matrix =
              {
                default_matrix with
                Harness.Request.m_machines =
                  (if machines = [] then
                     default_matrix.Harness.Request.m_machines
                   else machines);
                Harness.Request.m_analyses = analyses;
                Harness.Request.m_gc_modes = gc_modes;
                Harness.Request.m_max_instrs = max_instrs;
                Harness.Request.m_max_heap = max_heap;
                Harness.Request.m_nursery_pages = nursery_pages;
              };
            Stress.Driver.p_modes = modes;
            Stress.Driver.p_exhaustive_cap = cap;
            Stress.Driver.p_jobs = jobs;
            Stress.Driver.p_trace_dir = trace_dir;
          }
        in
        let report = Stress.Driver.run ~plan resolved in
        Format.printf "%a@." Stress.Driver.pp_report report;
        if Stress.Driver.unexpected report <> [] then
          exit
            (Harness.Diagnostics.exit_code Harness.Diagnostics.Divergence))
  in
  let doc =
    "run the fault-injected differential stress harness over the build matrix"
  in
  Cmd.v
    (Cmd.info "stress" ~doc)
    Term.(
      const run $ machines_arg $ analyses_arg $ gc_modes_arg $ every_arg
      $ at_allocs_arg $ exhaustive_arg $ cap_arg $ max_instrs_arg
      $ max_heap_arg $ nursery_pages_arg $ trace_dir_arg $ chaos_arg
      $ chaos_seed_arg $ chaos_points_arg $ jobs_arg $ no_cache_arg
      $ targets_arg)

(* --- profile ----------------------------------------------------------------- *)

let profile_cmd =
  let analyses_arg =
    let doc =
      "Analyses to profile: 'none', 'flow', or 'both' (the default) to \
       print a profile per variant — drag differences between the two are \
       what the pruned KEEP_LIVE annotations cost or save in retained \
       garbage."
    in
    let parse = function
      | "none" -> Ok [ Gcsafe.Mode.A_none ]
      | "flow" -> Ok [ Gcsafe.Mode.A_flow ]
      | "both" -> Ok [ Gcsafe.Mode.A_none; Gcsafe.Mode.A_flow ]
      | s -> Error (`Msg (Printf.sprintf "unknown analysis %s" s))
    in
    let print fmt a =
      Format.pp_print_string fmt
        (String.concat "," (List.map Gcsafe.Mode.analysis_to_string a))
    in
    Arg.(
      value
      & opt (conv (parse, print)) [ Gcsafe.Mode.A_none; Gcsafe.Mode.A_flow ]
      & info [ "analysis" ] ~docv:"ANALYSIS" ~doc)
  in
  let json_arg =
    let doc = "Emit the profile as one JSON document instead of tables." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let threshold_arg =
    let doc =
      "Allocation volume (bytes) between automatic collections.  Small \
       values reclaim garbage promptly, so drag measures retention rather \
       than collector laziness."
    in
    Arg.(value & opt int 2048 & info [ "gc-threshold" ] ~docv:"BYTES" ~doc)
  in
  let workload_arg =
    let doc = "Profile a registered workload instead of a FILE." in
    Arg.(value & opt (some string) None & info [ "workload" ] ~docv:"NAME" ~doc)
  in
  let opt_file_arg =
    let doc = "C source file ('-' for standard input)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run config machine analyses gc_mode json threshold max_instrs max_heap
      no_cache workload file =
    handle_errors (fun () ->
        apply_cache_flag no_cache;
        let source_name, src =
          match (workload, file) with
          | Some w, None -> (
              match Workloads.Registry.by_name w with
              | Some wl -> (w, wl.Workloads.Registry.w_source)
              | None ->
                  Printf.eprintf "unknown workload: %s\n" w;
                  exit 2)
          | None, Some f -> (f, read_input f)
          | Some _, Some _ ->
              Printf.eprintf "give either FILE or --workload, not both\n";
              exit 2
          | None, None ->
              Printf.eprintf "a FILE argument or --workload is required\n";
              exit 2
        in
        (* per-function KEEP_LIVE survivors, for the annotation column of
           the drag table (preprocessed configurations only) *)
        let keep_lives_by_func analysis =
          match config with
          | Harness.Build.Base | Harness.Build.Debug -> fun _ -> 0
          | Harness.Build.Safe | Harness.Build.Safe_peephole
          | Harness.Build.Debug_checked ->
              let mode =
                if config = Harness.Build.Debug_checked then
                  Gcsafe.Mode.Checked
                else Gcsafe.Mode.Safe
              in
              let opts =
                { (Gcsafe.Mode.default mode) with Gcsafe.Mode.analysis }
              in
              let ast = Csyntax.Parser.parse_program src in
              let r = Gcsafe.Annotate.run ~opts ast in
              let tbl = Hashtbl.create 16 in
              List.iter
                (fun (f, n) -> Hashtbl.replace tbl f n)
                r.Gcsafe.Annotate.stats.Gcsafe.Annotate.st_by_func;
              fun f -> Option.value ~default:0 (Hashtbl.find_opt tbl f)
        in
        let profile_one analysis =
          let req =
            Harness.Request.make ~config ~machine ~analysis ~gc_mode
              ~final_collect:true ~gc_threshold:threshold ?max_instrs
              ?max_heap src
          in
          let b =
            Harness.Build.compile
              ~options:(Harness.Request.build_options req)
              config src
          in
          let profiler = Telemetry.Heap_profiler.create () in
          let telemetry = Some (Telemetry.Sink.make ~profiler ()) in
          (match Harness.Measure.exec ?telemetry req b with
          | Harness.Measure.Ran _ -> ()
          | o ->
              let outcome, message = Harness.Diagnostics.of_measure o in
              Harness.Diagnostics.report outcome message;
              exit (Harness.Diagnostics.exit_code outcome));
          (analysis, Telemetry.Heap_profiler.report profiler)
        in
        let profiles = List.map profile_one analyses in
        if json then
          let doc =
            Telemetry.Json.Obj
              [
                ("file", Telemetry.Json.Str source_name);
                ("config", Telemetry.Json.Str (Harness.Build.config_name config));
                ( "machine",
                  Telemetry.Json.Str machine.Machine.Machdesc.md_name );
                ("gc_threshold", Telemetry.Json.Int threshold);
                ( "gc_mode",
                  Telemetry.Json.Str (Gcheap.Heap.gc_mode_name gc_mode) );
                ( "profiles",
                  Telemetry.Json.List
                    (List.map
                       (fun (analysis, report) ->
                         Telemetry.Json.Obj
                           [
                             ( "analysis",
                               Telemetry.Json.Str
                                 (Gcsafe.Mode.analysis_to_string analysis) );
                             ( "profile",
                               Telemetry.Heap_profiler.to_json report );
                           ])
                       profiles) );
              ]
          in
          print_endline (Telemetry.Json.to_string doc)
        else
          List.iter
            (fun (analysis, report) ->
              Format.printf "== %s  (%s, %s, analysis=%s) ==@.%a@."
                source_name
                (Harness.Build.config_name config)
                machine.Machine.Machdesc.md_name
                (Gcsafe.Mode.analysis_to_string analysis)
                (Telemetry.Heap_profiler.pp_table
                   ~annotated:(keep_lives_by_func analysis))
                report)
            profiles)
  in
  let doc =
    "profile heap allocation sites: peak-live bytes and reclamation drag, \
     per analysis variant"
  in
  Cmd.v
    (Cmd.info "profile" ~doc)
    Term.(
      const run $ config_arg $ machine_arg $ analyses_arg $ gc_mode_arg
      $ json_arg $ threshold_arg $ max_instrs_arg $ max_heap_arg
      $ no_cache_arg $ workload_arg $ opt_file_arg)

(* --- trace-check ------------------------------------------------------------- *)

let trace_check_cmd =
  let run file =
    handle_errors (fun () ->
        let text = read_input file in
        match Telemetry.Json.parse text with
        | Error e ->
            Printf.eprintf "%s: JSON parse error: %s\n" file e;
            exit 2
        | Ok doc ->
            if Telemetry.Flight_recorder.is_dump doc then (
              match Telemetry.Flight_recorder.check doc with
              | Ok () ->
                  Printf.printf "%s: valid flight-recorder dump\n" file
              | Error e ->
                  Printf.eprintf "%s: invalid flight-recorder dump: %s\n" file
                    e;
                  exit 1)
            else (
              match Telemetry.Trace.check doc with
              | Ok () -> Printf.printf "%s: valid trace\n" file
              | Error e ->
                  Printf.eprintf "%s: invalid trace: %s\n" file e;
                  exit 1))
  in
  let doc =
    "validate a Chrome trace-event JSON file or a flight-recorder dump \
     (structure, span nesting, ring coherence)"
  in
  Cmd.v (Cmd.info "trace-check" ~doc) Term.(const run $ file_arg)

(* --- heap-census ------------------------------------------------------------- *)

let heap_census_cmd =
  let json_arg =
    let doc = "Emit the censuses as one JSON document instead of tables." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let threshold_arg =
    let doc = "Allocation volume (bytes) between automatic collections." in
    Arg.(
      value & opt (some int) None & info [ "gc-threshold" ] ~docv:"BYTES" ~doc)
  in
  let pause_budget_arg =
    let doc =
      "Incremental-mode pause budget (words per increment); only meaningful \
       with --gc-mode inc."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "gc-pause-budget" ] ~docv:"WORDS" ~doc)
  in
  let nursery_pages_arg =
    let doc =
      "Bump-allocated nursery budget in pages (0 disables the nursery); \
       only meaningful with --gc-mode gen or inc."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "nursery-pages" ] ~docv:"PAGES" ~doc)
  in
  let workload_arg =
    let doc = "Census a registered workload instead of a FILE." in
    Arg.(value & opt (some string) None & info [ "workload" ] ~docv:"NAME" ~doc)
  in
  let opt_file_arg =
    let doc = "C source file ('-' for standard input)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run config machine analysis gc_mode gc_threshold gc_pause_budget
      nursery_pages heap_limit oom_policy json no_cache workload file =
    handle_errors (fun () ->
        apply_cache_flag no_cache;
        let source_name, src =
          match (workload, file) with
          | Some w, None -> (
              match Workloads.Registry.by_name w with
              | Some wl -> (w, wl.Workloads.Registry.w_source)
              | None ->
                  Printf.eprintf "unknown workload: %s\n" w;
                  exit 2)
          | None, Some f -> (f, read_input f)
          | Some _, Some _ ->
              Printf.eprintf "give either FILE or --workload, not both\n";
              exit 2
          | None, None ->
              Printf.eprintf "a FILE argument or --workload is required\n";
              exit 2
        in
        let req =
          Harness.Request.make ~config ~machine ~analysis ~gc_mode
            ~final_collect:true ?gc_threshold ?gc_pause_budget ?nursery_pages
            ~heap_limit ~oom_policy src
        in
        let b =
          Harness.Build.compile
            ~options:(Harness.Request.build_options req)
            config src
        in
        match Harness.Measure.exec ~census:true req b with
        | Harness.Measure.Ran r ->
            let censuses = r.Harness.Measure.o_census in
            if json then
              print_endline
                (Telemetry.Json.to_string
                   (Telemetry.Json.Obj
                      [
                        ("file", Telemetry.Json.Str source_name);
                        ( "config",
                          Telemetry.Json.Str (Harness.Build.config_name config)
                        );
                        ( "machine",
                          Telemetry.Json.Str machine.Machine.Machdesc.md_name
                        );
                        ( "gc_mode",
                          Telemetry.Json.Str (Gcheap.Heap.gc_mode_name gc_mode)
                        );
                        ("collections", Telemetry.Json.Int (List.length censuses));
                        ( "censuses",
                          Telemetry.Json.List
                            (List.map Harness.Measure.census_to_json censuses)
                        );
                      ]))
            else if censuses = [] then
              print_endline "no collections ran, so no census was sampled"
            else
              List.iter
                (fun c -> Format.printf "%a@." Gcheap.Census.pp c)
                censuses
        | o ->
            let outcome, message = Harness.Diagnostics.of_measure o in
            Harness.Diagnostics.report outcome message;
            exit (Harness.Diagnostics.exit_code outcome))
  in
  let doc =
    "run a program and print the per-collection heap census: size-class \
     occupancy, free-page pool, age histogram, card-table dirty ratio and \
     fragmentation"
  in
  Cmd.v
    (Cmd.info "heap-census" ~doc)
    Term.(
      const run $ config_arg $ machine_arg $ analysis_arg $ gc_mode_arg
      $ threshold_arg $ pause_budget_arg $ nursery_pages_arg $ heap_limit_arg
      $ oom_policy_arg $ json_arg $ no_cache_arg $ workload_arg $ opt_file_arg)

(* --- tables ------------------------------------------------------------------ *)

let tables_cmd =
  let run machine jobs no_cache =
    handle_errors (fun () ->
        apply_cache_flag no_cache;
        Exec.Pool.with_pool ~jobs (fun pool ->
            ignore (Harness.Tables.slowdown_table ~machine ~pool ());
            print_newline ();
            ignore (Harness.Tables.size_table ~machine ~pool ());
            print_newline ();
            ignore (Harness.Tables.postprocessor_table ~machine ~pool ());
            print_newline ();
            ignore (Harness.Tables.analysis_table ~machine ~pool ())))
  in
  let doc = "regenerate the paper's tables for one machine model" in
  Cmd.v
    (Cmd.info "tables" ~doc)
    Term.(const run $ machine_arg $ jobs_arg $ no_cache_arg)

(* --- serve ------------------------------------------------------------------- *)

let servers_arg =
  let doc = "Virtual service lanes for admission control." in
  Arg.(
    value
    & opt int Service.Gcsafed.default_config.Service.Gcsafed.servers
    & info [ "servers" ] ~docv:"N" ~doc)

let queue_arg =
  let doc =
    "Bounded waiting-room capacity; requests arriving beyond it are shed \
     with a structured rejected-overload outcome."
  in
  Arg.(
    value
    & opt int Service.Gcsafed.default_config.Service.Gcsafed.queue_capacity
    & info [ "queue" ] ~docv:"N" ~doc)

let report_json_arg =
  let doc = "Write the full service report (JSON) to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let service_config servers queue =
  {
    Service.Gcsafed.default_config with
    Service.Gcsafed.servers;
    Service.Gcsafed.queue_capacity = queue;
  }

let write_report_json path t ~wall_s =
  Out_channel.with_open_text path (fun oc ->
      Telemetry.Json.to_channel oc
        (Service.Gcsafed.report_to_json ~wall_s t);
      output_char oc '\n')

let events_arg =
  let doc =
    "Stream observability JSON lines to $(docv) ('-' for standard error): \
     flight-recorder events interleaved with windowed metric snapshots \
     (counter deltas, gauges, histogram deltas with percentiles, SLO \
     burn rate) on the virtual clock.  Deterministic across --jobs."
  in
  Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc)

let window_arg =
  let doc = "Virtual ticks per --events metrics window." in
  Arg.(
    value
    & opt int Telemetry.Stream.default_window
    & info [ "window" ] ~docv:"TICKS" ~doc)

let flight_dump_arg =
  let doc =
    "Write the service flight-recorder dump (the last-N structured events, \
     validated by trace-check) to $(docv).  Without this flag a dump is \
     still written to gcsafed-flight.json whenever the run ends with \
     unexpected outcomes."
  in
  Arg.(
    value & opt (some string) None & info [ "flight-dump" ] ~docv:"FILE" ~doc)

(* The emitter writes one JSON value per line; the channel stays open for
   the service's whole lifetime (windows flush on shutdown). *)
let with_events_emitter events f =
  match events with
  | None -> f None
  | Some "-" ->
      f (Some (fun json -> prerr_endline (Telemetry.Json.to_string json)))
  | Some path ->
      Out_channel.with_open_text path (fun oc ->
          f
            (Some
               (fun json ->
                 Telemetry.Json.to_channel oc json;
                 output_char oc '\n')))

(* Dump-on-anomaly: an unexpected outcome always ships with its flight
   recorder — to the named file when --flight-dump was given, to a
   default path (announced on stderr) otherwise. *)
let write_flight_dump t ~flight_dump ~unexpected =
  match flight_dump with
  | Some path ->
      Telemetry.Flight_recorder.write_file (Service.Gcsafed.recorder t) path
  | None ->
      if unexpected > 0 then begin
        let path = "gcsafed-flight.json" in
        Telemetry.Flight_recorder.write_file (Service.Gcsafed.recorder t)
          path;
        Printf.eprintf
          "gcsafec: %d unexpected outcome(s); flight-recorder dump written \
           to %s\n"
          unexpected path
      end

let serve_cmd =
  (* resolve {"workload": NAME} / {"example": NAME} source shorthands
     before deserializing — the wire format proper only knows "source" *)
  let resolve_source json =
    match json with
    | Telemetry.Json.Obj fields when not (List.mem_assoc "source" fields) -> (
        match
          (List.assoc_opt "workload" fields, List.assoc_opt "example" fields)
        with
        | Some (Telemetry.Json.Str w), _ -> (
            match Workloads.Registry.by_name w with
            | Some wl ->
                Ok
                  (Telemetry.Json.Obj
                     (("source", Telemetry.Json.Str wl.Workloads.Registry.w_source)
                     :: fields))
            | None -> Error (Printf.sprintf "unknown workload %S" w))
        | _, Some (Telemetry.Json.Str e) -> (
            match Stress.Corpus.by_name e with
            | Some t ->
                Ok
                  (Telemetry.Json.Obj
                     (("source", Telemetry.Json.Str t.Stress.Corpus.t_source)
                     :: fields))
            | None -> Error (Printf.sprintf "unknown example %S" e))
        | _ -> Ok json)
    | _ -> Ok json
  in
  let parse_line line =
    match Telemetry.Json.parse line with
    | Error e -> Error (Printf.sprintf "JSON parse error: %s" e)
    | Ok json -> (
        match resolve_source json with
        | Error e -> Error e
        | Ok json -> (
            match Harness.Request.of_json json with
            | Error e -> Error e
            | Ok req ->
                let arrival =
                  match Telemetry.Json.member "arrival" json with
                  | Some (Telemetry.Json.Int a) -> Some a
                  | _ -> None
                in
                Ok (arrival, req)))
  in
  let run servers queue jobs no_cache json_out events window flight_dump =
    handle_errors (fun () ->
        apply_cache_flag no_cache;
        let t0 = Unix.gettimeofday () in
        (* read the whole stream first: admission is a function of the
           traffic, and malformed lines must still yield one outcome
           line each, in input order *)
        let lines = In_channel.input_lines In_channel.stdin in
        let items =
          List.filter_map
            (fun line ->
              if String.trim line = "" then None
              else Some (parse_line line))
            lines
        in
        with_events_emitter events (fun emit ->
            Exec.Pool.with_pool ~jobs (fun pool ->
                let t =
                  Service.Gcsafed.create ~pool ?events:emit ~window
                    (service_config servers queue)
                in
                List.iter
                  (function
                    | Ok (arrival, req) ->
                        Service.Gcsafed.submit ?arrival t req
                    | Error _ -> ())
                  items;
                Service.Gcsafed.shutdown t;
                (* one outcome line per input line, in input order *)
                let completions = ref (Service.Gcsafed.completions t) in
                List.iter
                  (fun item ->
                    let outcome =
                      match item with
                      | Error e -> Harness.Outcome.Source_error e
                      | Ok _ -> (
                          match !completions with
                          | c :: rest ->
                              completions := rest;
                              c.Service.Gcsafed.r_outcome
                          | [] ->
                              Harness.Outcome.Internal "missing completion")
                    in
                    print_endline
                      (Telemetry.Json.to_string
                         (Harness.Outcome.to_json outcome)))
                  items;
                let report = Service.Gcsafed.report t in
                Format.eprintf "%a@." Service.Gcsafed.pp_report report;
                Option.iter
                  (fun path ->
                    write_report_json path t
                      ~wall_s:(Unix.gettimeofday () -. t0))
                  json_out;
                write_flight_dump t ~flight_dump
                  ~unexpected:report.Service.Gcsafed.rp_unexpected;
                if report.Service.Gcsafed.rp_unexpected > 0 then
                  exit
                    (Harness.Diagnostics.exit_code
                       Harness.Diagnostics.Internal_error))))
  in
  let doc =
    "run the service harness over a stream of JSON requests (one object per \
     line on standard input; 'source' may be replaced by 'workload' or \
     'example'); prints one outcome object per request on standard output \
     and the service report on standard error"
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run $ servers_arg $ queue_arg $ jobs_arg $ no_cache_arg
      $ report_json_arg $ events_arg $ window_arg $ flight_dump_arg)

(* --- bomb -------------------------------------------------------------------- *)

let bomb_cmd =
  let requests_arg =
    let doc = "Number of requests to generate." in
    Arg.(
      value
      & opt int Service.Trafficgen.default_spec.Service.Trafficgen.g_requests
      & info [ "requests"; "n" ] ~docv:"N" ~doc)
  in
  let mix_arg =
    let doc = "Traffic mix: all, generated, examples or workloads." in
    let parse s =
      match Service.Trafficgen.mix_of_string s with
      | Some m -> Ok m
      | None -> Error (`Msg (Printf.sprintf "unknown mix %s" s))
    in
    let print fmt m =
      Format.pp_print_string fmt (Service.Trafficgen.mix_name m)
    in
    Arg.(
      value
      & opt (conv (parse, print)) Service.Trafficgen.All
      & info [ "mix" ] ~docv:"MIX" ~doc)
  in
  let seed_arg =
    let doc = "Traffic generator seed (runs are replayable by seed)." in
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let interarrival_arg =
    let doc = "Mean virtual-tick gap between arrivals (open loop)." in
    Arg.(
      value
      & opt int Service.Trafficgen.default_spec.Service.Trafficgen.g_mean_gap
      & info [ "interarrival" ] ~docv:"TICKS" ~doc)
  in
  let chaos_arg =
    let doc =
      "Percentage of requests perturbed with heap ceilings, trap policies \
       or injected allocation failures."
    in
    Arg.(
      value
      & opt int
          Service.Trafficgen.default_spec.Service.Trafficgen.g_chaos_percent
      & info [ "chaos" ] ~docv:"PCT" ~doc)
  in
  let run requests mix seed interarrival chaos servers queue jobs no_cache
      json_out events window flight_dump =
    handle_errors (fun () ->
        apply_cache_flag no_cache;
        let spec =
          {
            Service.Trafficgen.g_requests = requests;
            g_seed = seed;
            g_mix = mix;
            g_mean_gap = max 1 interarrival;
            g_chaos_percent = max 0 (min 100 chaos);
          }
        in
        let stream = Service.Trafficgen.generate spec in
        let stream =
          if no_cache then
            List.map
              (fun (a, r) -> (a, { r with Harness.Request.use_cache = false }))
              stream
          else stream
        in
        let t0 = Unix.gettimeofday () in
        with_events_emitter events (fun emit ->
            Exec.Pool.with_pool ~jobs (fun pool ->
                let t =
                  Service.Gcsafed.create ~pool ?events:emit ~window
                    (service_config servers queue)
                in
                List.iter
                  (fun (arrival, req) -> Service.Gcsafed.submit ~arrival t req)
                  stream;
                Service.Gcsafed.shutdown t;
                let wall_s = Unix.gettimeofday () -. t0 in
                let report = Service.Gcsafed.report t in
                Format.printf "%a@." Service.Gcsafed.pp_report report;
                Printf.eprintf "wall: %.2fs, %.1f requests/s\n" wall_s
                  (if wall_s > 0. then float_of_int requests /. wall_s else 0.);
                Option.iter
                  (fun path -> write_report_json path t ~wall_s)
                  json_out;
                write_flight_dump t ~flight_dump
                  ~unexpected:report.Service.Gcsafed.rp_unexpected;
                if report.Service.Gcsafed.rp_unexpected > 0 then
                  exit
                    (Harness.Diagnostics.exit_code
                       Harness.Diagnostics.Internal_error))))
  in
  let doc =
    "generate an open-loop request bombardment and report steady-state \
     throughput, cache hit rate, outcome counts and latency percentiles \
     (deterministic: the report is byte-identical across --jobs)"
  in
  Cmd.v
    (Cmd.info "bomb" ~doc)
    Term.(
      const run $ requests_arg $ mix_arg $ seed_arg $ interarrival_arg
      $ chaos_arg $ servers_arg $ queue_arg $ jobs_arg $ no_cache_arg
      $ report_json_arg $ events_arg $ window_arg $ flight_dump_arg)

let () =
  let doc = "GC-safety preprocessor for C (Boehm, PLDI 1996)" in
  let info = Cmd.info "gcsafec" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            annotate_cmd;
            check_cmd;
            run_cmd;
            ir_cmd;
            tables_cmd;
            stress_cmd;
            profile_cmd;
            trace_check_cmd;
            heap_census_cmd;
            serve_cmd;
            bomb_cmd;
          ]))
