(** Schedule shrinking: delta debugging over sets of collection points.

    A failing schedule found by a dense injection mode (collect at every
    instruction, every Nth safepoint, every allocation) typically contains
    hundreds of collection points, almost all of which are irrelevant.
    [ddmin] reduces the set to a small core that still reproduces the
    divergence — for the paper's hazards, usually the single collection
    that lands inside the disguised-pointer window. *)

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let rec drop n = function
  | _ :: rest when n > 0 -> drop (n - 1) rest
  | l -> l

(** Split [l] into [n] contiguous chunks whose lengths differ by at most
    one. *)
let split_chunks l n =
  let len = List.length l in
  let base = len / n and extra = len mod n in
  let rec go i rest acc =
    if i = n then List.rev acc
    else
      let size = base + if i < extra then 1 else 0 in
      go (i + 1) (drop size rest) (take size rest :: acc)
  in
  go 0 l [] |> List.filter (fun c -> c <> [])

(** [ddmin ~still_fails points]: Zeller-Hildebrandt delta debugging.
    [points] must itself satisfy [still_fails]; the result is a subset
    that still does, minimal in the sense that removing any single
    remaining point (at the finest granularity tried) loses the failure.
    Each [still_fails] call costs one VM execution, so the search favours
    large cuts first. *)
let ddmin ~still_fails (points : int list) : int list =
  let points = List.sort_uniq compare points in
  if points = [] then []
  else if still_fails [] then []
  else begin
    let complement all c = List.filter (fun x -> not (List.mem x c)) all in
    let rec go points n =
      let len = List.length points in
      if len <= 1 then points
      else begin
        let n = min n len in
        let chunks = split_chunks points n in
        match List.find_opt still_fails chunks with
        | Some c -> go c 2
        | None -> (
            let complements = List.map (complement points) chunks in
            match
              List.find_opt
                (fun c -> List.length c < len && still_fails c)
                complements
            with
            | Some c -> go c (max (n - 1) 2)
            | None -> if n < len then go points (min len (2 * n)) else points)
      end
    in
    go points 2
  end
