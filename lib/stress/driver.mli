(** The stress driver: fault-injected differential execution with
    schedule shrinking. *)

type mode =
  | Exhaustive of int
      (** every single-collection-point schedule, up to a cap *)
  | Every_n of int list  (** collect at every nth safepoint *)
  | Alloc_points  (** collect at every allocation *)

val mode_name : mode -> string

type plan = {
  p_matrix : Harness.Request.matrix;
      (** the config x machine x analysis x gc-mode cross product every
          target is stressed over, plus sanitizing and the
          max-instrs/max-heap ceilings; more than one analysis
          cross-checks analysis-pruned builds against fully-annotated
          ones, more than one gc mode cross-checks the generational
          collector against the paper's stop-the-world collector *)
  p_modes : mode list option;  (** [None]: choose per target size *)
  p_exhaustive_cap : int;
  p_jobs : int;
      (** worker domains for the schedule scan; 1 (the default) is the
          reference serial scan.  Reports are identical for every value:
          parallel scans consume results in schedule order and count
          runs as the serial scan would. *)
  p_trace_dir : string option;
      (** when set, every finding's failing schedule is replayed under a
          span tracer plus a flight recorder, and the Chrome trace and
          flight-recorder dump are written to this directory (created on
          demand); the paths land in [f_trace] / [f_flight].  Capture
          replays are not counted in [r_runs]. *)
}

val default_plan : plan

type kind =
  | Divergence of string  (** schedule-sensitive behaviour; mismatch kind *)
  | Corruption  (** the heap sanitizer fired *)
  | Config_gap of string
      (** uninjected behaviour disagrees with the baseline *)

val kind_name : kind -> string

type finding = {
  f_target : string;
  f_subject : string;
  f_config : Harness.Build.config;
  f_kind : kind;
  f_detail : string;
  f_schedule : string;  (** the schedule that first exposed it *)
  f_min_points : int list;  (** minimized point set ([] when not shrunk) *)
  f_orig_points : int;  (** collections fired before shrinking *)
  f_contexts : (int * string * string option) list;
      (** minimized point, program context, source location *)
  f_expected : bool;
      (** a known hazard of the conventional build, not a harness failure *)
  f_trace : string option;
      (** captured Chrome trace of the failing schedule ([p_trace_dir]) *)
  f_flight : string option;
      (** captured flight-recorder dump of the failing schedule — its
          last-N GC/VM events; validates under
          {!Telemetry.Flight_recorder.check} *)
}

type report = {
  r_findings : finding list;
  r_targets : int;
  r_subjects : int;
  r_runs : int;  (** VM executions, including shrinking *)
}

val unexpected : report -> finding list
(** Findings that must never occur: any integrity violation, any
    divergence or cross-configuration gap in a GC-safe or debug build. *)

val run_target :
  ?pool:Exec.Pool.t -> plan -> Corpus.target -> finding list * int * int
(** [findings, subjects, runs] for one target.  [runs] counts the VM
    executions of the serial scan (including shrinking); speculative
    parallel runs are excluded so the number is worker-count
    independent. *)

val run : ?plan:plan -> Corpus.target list -> report

val pp_finding : Format.formatter -> finding -> unit

val pp_report : Format.formatter -> report -> unit
