(** The chaos sweep: fault-injected robustness testing.

    Where {!Driver} perturbs *when the collector runs*, this module
    perturbs *whether the runtime's own machinery works*: allocations
    fail on command, worker domains crash mid-task, and cached build
    artifacts rot in place.  The property under test is the robustness
    identity — under any injected fault, a run either behaves exactly
    like its fault-free reference or stops with a structured diagnostic.
    Corruption, hangs, and silent divergence are findings; everything
    else is recovery, and every recovery is counted.

    Three sweeps, all deterministic functions of the plan (the seed is
    printed with every report so a failing sweep replays exactly):

    - {b allocation failures}: for every subject, every allocation
      ordinal of the fault-free run (sampled above a cap) is failed once
      under the collect-expand policy; a burst run fails all of them at
      once, and a burst that breaks the identity is shrunk with
      {!Shrink.ddmin} to a minimal ordinal set.  Trap-policy probes
      check that the same injections surface as structured
      [Heap_exhausted] outcomes rather than crashes.
    - {b worker faults}: the subject runs are re-executed under
      {!Exec.Pool.map_supervised} with injected worker crashes; the
      supervised report must equal the fault-free one, with the
      restarts accounted for.
    - {b cache corruption}: cached artifacts are rotted via
      {!Harness.Build.corrupt_cached}; the next compile must detect the
      mismatch, rebuild, and behave identically. *)

module Build = Harness.Build
module Request = Harness.Request
module Differ = Harness.Differ
module Measure = Harness.Measure
module Failpoint = Gcheap.Failpoint

type plan = {
  c_matrix : Request.matrix;
      (** the config x machine x gc-mode cross product the sweeps cover *)
  c_seed : int;  (** drives ordinal sampling and fault placement *)
  c_max_points : int;  (** allocation ordinals swept per subject *)
  c_trap_probes : int;  (** trap-policy injections per subject *)
  c_jobs : int;
  c_flight_dir : string option;
      (** replay unexpected alloc-failure findings under a flight
          recorder and write the dumps here (uncounted replays) *)
}

let default_plan =
  {
    c_matrix =
      {
        Request.default_matrix with
        Request.m_configs = [ Build.Base; Build.Safe ];
        Request.m_machines = [ Machine.Machdesc.sparc10 ];
        Request.m_gc_modes = [ Gcheap.Heap.Stw ];
      };
    c_seed = 0;
    c_max_points = 64;
    c_trap_probes = 3;
    c_jobs = 1;
    c_flight_dir = None;
  }

type finding = {
  cf_target : string;
  cf_subject : string;
  cf_sweep : string;  (** "alloc-failure" | "worker-fault" | "cache" *)
  cf_kind : string;  (** "hang" | "corruption" | "divergence" | ... *)
  cf_points : int list;
      (** injected allocation ordinals (minimized for burst findings) *)
  cf_detail : string;
  cf_expected : bool;
      (** a known hazard of the conventional build perturbed by the
          injection-triggered collection, not a robustness failure *)
  cf_flight : string option;
      (** captured flight-recorder dump of the injected run *)
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let sanitize_component s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    s

type report = {
  c_plan_seed : int;
  c_subject_count : int;
  c_injections : int;  (** allocation failures injected *)
  c_recovered : int;  (** runs identical to their fault-free reference *)
  c_structured : int;  (** runs stopped with a structured diagnostic *)
  c_emergency_collections : int;
  c_worker_faults : int;  (** worker crashes injected *)
  c_worker_restarts : int;  (** worker domains replaced *)
  c_worker_retries : int;
  c_quarantined : int;
  c_cache_corruptions : int;  (** artifacts rotted *)
  c_cache_recovered : int;  (** rotted artifacts detected and rebuilt *)
  c_runs : int;  (** VM executions, shrinking included *)
  c_findings : finding list;
}

let unexpected r = List.filter (fun f -> not f.cf_expected) r.c_findings

(* ------------------------------------------------------------------ *)
(* Allocation-failure sweep                                            *)
(* ------------------------------------------------------------------ *)

(* Sample [count] ordinals from 1..total, deterministically from the
   seed: an even stride with a seeded offset, so dense programs are
   covered end to end and a replay with the same seed picks the same
   ordinals. *)
let sample_ordinals ~seed ~count total =
  if total <= 0 || count <= 0 then []
  else if total <= count then List.init total (fun i -> i + 1)
  else
    let stride = total / count in
    let offset = Hashtbl.hash (seed, total) mod stride in
    List.init count (fun i -> (i * stride) + offset + 1)

type class_ = Recovered | Structured | Diverged of string | Broken of string

(* Classify one injected run against its fault-free reference.  The
   budget turns a hang into a [Limit] stop, which is a robustness
   failure: injection must never make a terminating program loop. *)
let classify_injected ~reference obs =
  match obs with
  | Differ.Obs_exhausted _ -> Structured
  | Differ.Obs_corrupted m -> Broken ("corruption: " ^ m)
  | Differ.Obs_limit m -> Broken ("hang (budget hit): " ^ m)
  | Differ.Obs_ok _ | Differ.Obs_detected _ -> (
      match Differ.diff ~reference obs with
      | None -> Recovered
      | Some m ->
          Diverged
            (Differ.mismatch_kind m ^ ": " ^ Differ.describe_mismatch m))

(** Sweep injected allocation failures over one subject.  Returns the
    findings plus the counter deltas. *)
let sweep_subject ~pool ~plan ~(target : Corpus.target) subject =
  (* [observe] is pure (no shared state): it runs on worker domains.
     All accounting happens on the submitting thread, in ordinal order,
     so the report is a function of the plan, never the worker count. *)
  let observe ?telemetry ?heap_limit ?oom_policy ?alloc_failpoints ?max_instrs
      () =
    let base = subject.Differ.s_request in
    Measure.exec ?telemetry
      {
        base with
        Request.schedule = Machine.Schedule.Auto;
        Request.heap_limit =
          Option.value ~default:base.Request.heap_limit heap_limit;
        Request.oom_policy =
          Option.value ~default:base.Request.oom_policy oom_policy;
        Request.alloc_failpoints =
          Option.value ~default:base.Request.alloc_failpoints alloc_failpoints;
        Request.max_instrs =
          (match max_instrs with Some _ -> max_instrs | None -> base.Request.max_instrs);
      }
      subject.Differ.s_built
  in
  let runs = ref 1 and injections = ref 0 in
  let recovered = ref 0 and structured = ref 0 and emergencies = ref 0 in
  let findings = ref [] in
  match observe () with
  | exception _ ->
      (* A reference that does not even run is a matter for the stress
         driver, not the chaos sweep. *)
      ([], !runs, 0, 0, 0, 0)
  | (Measure.Detected _ | Measure.Corrupted _ | Measure.Limit _
    | Measure.Exhausted _) ->
      ([], !runs, 0, 0, 0, 0)
  | Measure.Ran ref_info ->
      let reference = Differ.obs_of_outcome (Measure.Ran ref_info) in
      (* Injection adds collections, never instructions, but give the
         budget generous slack before calling a run a hang. *)
      let budget = max 10_000 (4 * ref_info.Measure.o_instrs) in
      let ordinals =
        sample_ordinals ~seed:plan.c_seed ~count:plan.c_max_points
          ref_info.Measure.o_allocs
      in
      let divergence_expected =
        target.Corpus.t_base_vulnerable
        && subject.Differ.s_request.Request.config = Build.Base
      in
      (* Replay a finding's injection under a flight recorder: the dump
         ships the run's last-N GC/emergency events with the finding.
         Uncounted, so the report stays a function of the plan. *)
      let flight_seq = ref 0 in
      let capture_flight ~oom_policy fp =
        match plan.c_flight_dir with
        | None -> None
        | Some dir ->
            mkdir_p dir;
            let recorder = Telemetry.Flight_recorder.create () in
            let sink = Telemetry.Sink.make ~recorder () in
            ignore
              (observe ~telemetry:sink ~oom_policy ~alloc_failpoints:fp
                 ~max_instrs:budget ());
            let path =
              Filename.concat dir
                (Printf.sprintf "%s-%s-%d.flight.json"
                   (sanitize_component target.Corpus.t_name)
                   (sanitize_component (Differ.subject_name subject))
                   !flight_seq)
            in
            incr flight_seq;
            Telemetry.Flight_recorder.write_file recorder path;
            Some path
      in
      let record ?flight ~kind ~points ~detail ~expected () =
        findings :=
          {
            cf_target = target.Corpus.t_name;
            cf_subject = Differ.subject_name subject;
            cf_sweep = "alloc-failure";
            cf_kind = kind;
            cf_points = points;
            cf_detail = detail;
            cf_expected = expected;
            cf_flight = flight;
          }
          :: !findings
      in
      (* Pure injected run: the observation plus the emergency
         collections it took to recover. *)
      let run_with fp =
        match
          observe ~oom_policy:Gcheap.Heap.Collect_expand ~alloc_failpoints:fp
            ~max_instrs:budget ()
        with
        | Measure.Ran r as o ->
            (Differ.obs_of_outcome o, r.Measure.o_emergency)
        | o -> (Differ.obs_of_outcome o, 0)
      in
      (* Single-point sweep: fail each sampled ordinal once.  The runs
         are independent, so fan them out; counters fold serially in
         ordinal order. *)
      let singles =
        Exec.Pool.map pool
          (fun k ->
            let obs, emg = run_with (Failpoint.Nth k) in
            (k, classify_injected ~reference obs, emg))
          ordinals
      in
      runs := !runs + List.length ordinals;
      injections := !injections + List.length ordinals;
      List.iter
        (fun (k, cls, emg) ->
          emergencies := !emergencies + emg;
          match cls with
          | Recovered -> incr recovered
          | Structured -> incr structured
          | Diverged detail ->
              if divergence_expected then incr recovered
              else
                record ~kind:"divergence" ~points:[ k ] ~detail
                  ~expected:false
                  ?flight:
                    (capture_flight ~oom_policy:Gcheap.Heap.Collect_expand
                       (Failpoint.Nth k))
                  ()
          | Broken detail ->
              record
                ~kind:
                  (if String.length detail >= 4 && String.sub detail 0 4 = "hang"
                   then "hang"
                   else "corruption")
                ~points:[ k ] ~detail ~expected:false
                ?flight:
                  (capture_flight ~oom_policy:Gcheap.Heap.Collect_expand
                     (Failpoint.Nth k))
                ())
        singles;
      (* Burst run: fail every sampled ordinal in one execution, then
         shrink a broken burst to a minimal ordinal set. *)
      if ordinals <> [] && not divergence_expected then begin
        incr injections;
        let classify pts =
          incr runs;
          let obs, emg = run_with (Failpoint.at_list pts) in
          emergencies := !emergencies + emg;
          classify_injected ~reference obs
        in
        let is_broken pts =
          match classify pts with
          | Recovered | Structured -> false
          | Diverged _ | Broken _ -> true
        in
        if is_broken ordinals then begin
          let min_pts = Shrink.ddmin ~still_fails:is_broken ordinals in
          let detail =
            match classify min_pts with
            | Diverged d -> d
            | Broken d -> d
            | Recovered | Structured -> "not reproducible after shrinking"
          in
          record ~kind:"burst" ~points:min_pts ~detail ~expected:false
            ?flight:
              (capture_flight ~oom_policy:Gcheap.Heap.Collect_expand
                 (Failpoint.at_list min_pts))
            ()
        end
        else incr recovered
      end;
      (* Trap-policy probes: the same injections under [Trap] must stop
         as structured [Heap_exhausted] outcomes — never anything else. *)
      let probes =
        sample_ordinals ~seed:(plan.c_seed + 1) ~count:plan.c_trap_probes
          ref_info.Measure.o_allocs
      in
      List.iter
        (fun k ->
          incr injections;
          incr runs;
          match
            observe ~oom_policy:Gcheap.Heap.Trap
              ~alloc_failpoints:(Failpoint.Nth k) ~max_instrs:budget ()
          with
          | Measure.Exhausted _ -> incr structured
          | o ->
              record ~kind:"trap-leak" ~points:[ k ]
                ~detail:
                  ("trap policy produced " ^ Measure.describe o
                 ^ " instead of a structured heap-exhausted stop")
                ~expected:false
                ?flight:
                  (capture_flight ~oom_policy:Gcheap.Heap.Trap
                     (Failpoint.Nth k))
                ())
        probes;
      ( List.rev !findings,
        !runs,
        !injections,
        !recovered,
        !structured,
        !emergencies )

(* ------------------------------------------------------------------ *)
(* Worker-fault sweep                                                  *)
(* ------------------------------------------------------------------ *)

(** Re-run every subject under a supervised pool, crashing roughly a
    third of the first attempts (seed-deterministic).  The supervised
    outcome values must equal the fault-free observations. *)
let sweep_workers ~pool ~plan ~(target : Corpus.target) subjects =
  let observe subject =
    Differ.observe ~schedule:Machine.Schedule.Auto subject
  in
  let reference = List.map observe subjects in
  let faulted = ref 0 in
  let should_fault idx = Hashtbl.hash (plan.c_seed, target.Corpus.t_name, idx) mod 3 = 0 in
  let outcomes, stats =
    Exec.Pool.map_supervised pool
      ~policy:{ Exec.Pool.default_policy with Exec.Pool.seed = plan.c_seed }
      (fun ctx (idx, subject) ->
        ctx.Exec.Pool.tick ();
        if ctx.Exec.Pool.attempt = 1 && should_fault idx then
          raise (Exec.Pool.Crash "injected worker fault");
        observe subject)
      (List.mapi (fun i s -> (i, s)) subjects)
  in
  List.iteri (fun i _ -> if should_fault i then incr faulted) subjects;
  let findings = ref [] in
  List.iteri
    (fun i outcome ->
      let subject = List.nth subjects i in
      let expected = List.nth reference i in
      match outcome with
      | Exec.Pool.Done { value; _ } when value = expected -> ()
      | Exec.Pool.Done { value; _ } ->
          findings :=
            {
              cf_target = target.Corpus.t_name;
              cf_subject = Differ.subject_name subject;
              cf_sweep = "worker-fault";
              cf_kind = "divergence";
              cf_points = [];
              cf_detail =
                Printf.sprintf "supervised run saw %s, fault-free saw %s"
                  (Differ.describe_obs value)
                  (Differ.describe_obs expected);
              cf_expected = false;
              cf_flight = None;
            }
            :: !findings
      | Exec.Pool.Quarantined { reason; attempts } ->
          findings :=
            {
              cf_target = target.Corpus.t_name;
              cf_subject = Differ.subject_name subject;
              cf_sweep = "worker-fault";
              cf_kind = "quarantine";
              cf_points = [];
              cf_detail =
                Printf.sprintf
                  "single injected fault quarantined the task (%s after %d \
                   attempt(s))"
                  reason attempts;
              cf_expected = false;
              cf_flight = None;
            }
            :: !findings)
    outcomes;
  (List.rev !findings, 2 * List.length subjects, !faulted, stats)

(* ------------------------------------------------------------------ *)
(* Cache-corruption sweep                                              *)
(* ------------------------------------------------------------------ *)

(** Rot every subject's cached artifact, then recompile: the cache must
    detect the stale fingerprint, rebuild, and the rebuilt artifact must
    behave exactly like the reference. *)
let sweep_cache ~(target : Corpus.target) subjects =
  let findings = ref [] in
  let corrupted = ref 0 and recovered = ref 0 and runs = ref 0 in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun subject ->
      let req = subject.Differ.s_request in
      let options = Request.build_options req in
      let key = Request.matrix_key req in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        let before = (Build.cache_stats ()).Exec.Cache.corruptions in
        (* [build_matrix] populated the cache; observe the artifact's
           behaviour, rot it, recompile, and compare. *)
        let observe () =
          incr runs;
          Differ.observe ~schedule:Machine.Schedule.Auto subject
        in
        let reference = observe () in
        if Build.corrupt_cached ~options req.Request.config target.Corpus.t_source
        then begin
          incr corrupted;
          let rebuilt =
            Build.compile ~options req.Request.config target.Corpus.t_source
          in
          let after = (Build.cache_stats ()).Exec.Cache.corruptions in
          let obs =
            Differ.observe ~schedule:Machine.Schedule.Auto
              { subject with Differ.s_built = rebuilt }
          in
          incr runs;
          if after <= before then
            findings :=
              {
                cf_target = target.Corpus.t_name;
                cf_subject = Differ.subject_name subject;
                cf_sweep = "cache";
                cf_kind = "undetected-corruption";
                cf_points = [];
                cf_detail =
                  "corrupt artifact served without a fingerprint mismatch";
                cf_expected = false;
                cf_flight = None;
              }
              :: !findings
          else if obs <> reference then
            findings :=
              {
                cf_target = target.Corpus.t_name;
                cf_subject = Differ.subject_name subject;
                cf_sweep = "cache";
                cf_kind = "divergence";
                cf_points = [];
                cf_detail =
                  Printf.sprintf "rebuilt artifact saw %s, reference saw %s"
                    (Differ.describe_obs obs)
                    (Differ.describe_obs reference);
                cf_expected = false;
                cf_flight = None;
              }
              :: !findings
          else incr recovered
        end
      end)
    subjects;
  (List.rev !findings, !runs, !corrupted, !recovered)

(* ------------------------------------------------------------------ *)

let run ?(plan = default_plan) (targets : Corpus.target list) : report =
  Exec.Pool.with_pool ~jobs:plan.c_jobs (fun pool ->
      let acc =
        ref
          {
            c_plan_seed = plan.c_seed;
            c_subject_count = 0;
            c_injections = 0;
            c_recovered = 0;
            c_structured = 0;
            c_emergency_collections = 0;
            c_worker_faults = 0;
            c_worker_restarts = 0;
            c_worker_retries = 0;
            c_quarantined = 0;
            c_cache_corruptions = 0;
            c_cache_recovered = 0;
            c_runs = 0;
            c_findings = [];
          }
      in
      List.iter
        (fun target ->
          let subjects =
            Differ.build_of_matrix ~pool plan.c_matrix target.Corpus.t_source
          in
          let r = !acc in
          let r =
            { r with c_subject_count = r.c_subject_count + List.length subjects }
          in
          (* allocation failures *)
          let r =
            List.fold_left
              (fun r subject ->
                let fs, runs, inj, rec_, str, emg =
                  sweep_subject ~pool ~plan ~target subject
                in
                {
                  r with
                  c_findings = r.c_findings @ fs;
                  c_runs = r.c_runs + runs;
                  c_injections = r.c_injections + inj;
                  c_recovered = r.c_recovered + rec_;
                  c_structured = r.c_structured + str;
                  c_emergency_collections = r.c_emergency_collections + emg;
                })
              r subjects
          in
          (* worker faults *)
          let fs, runs, faults, stats = sweep_workers ~pool ~plan ~target subjects in
          let r =
            {
              r with
              c_findings = r.c_findings @ fs;
              c_runs = r.c_runs + runs;
              c_worker_faults = r.c_worker_faults + faults;
              c_worker_restarts = r.c_worker_restarts + stats.Exec.Pool.sup_restarts;
              c_worker_retries = r.c_worker_retries + stats.Exec.Pool.sup_retries;
              c_quarantined = r.c_quarantined + stats.Exec.Pool.sup_quarantined;
            }
          in
          (* cache corruption *)
          let fs, runs, corr, rec_ = sweep_cache ~target subjects in
          acc :=
            {
              r with
              c_findings = r.c_findings @ fs;
              c_runs = r.c_runs + runs;
              c_cache_corruptions = r.c_cache_corruptions + corr;
              c_cache_recovered = r.c_cache_recovered + rec_;
            })
        targets;
      !acc)

(* ------------------------------------------------------------------ *)

let pp_finding ppf f =
  Format.fprintf ppf "%s %s [%s/%s]@,  %s@," f.cf_target f.cf_subject
    f.cf_sweep f.cf_kind f.cf_detail;
  (match f.cf_points with
  | [] -> ()
  | pts ->
      Format.fprintf ppf "  injected allocation ordinal(s): {%s}@,"
        (String.concat ", " (List.map string_of_int pts)));
  match f.cf_flight with
  | Some path -> Format.fprintf ppf "  flight recorder dump: %s@," path
  | None -> ()

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "chaos: seed %d, %d subject(s), %d run(s), %d injected allocation \
     failure(s)@,"
    r.c_plan_seed r.c_subject_count r.c_runs r.c_injections;
  Format.fprintf ppf
    "  recovered %d, structured %d, emergency collection(s) %d@,"
    r.c_recovered r.c_structured r.c_emergency_collections;
  Format.fprintf ppf
    "  worker fault(s) %d, restart(s) %d, retrie(s) %d, quarantined %d@,"
    r.c_worker_faults r.c_worker_restarts r.c_worker_retries r.c_quarantined;
  Format.fprintf ppf "  cache corruption(s) %d, recovered %d@,"
    r.c_cache_corruptions r.c_cache_recovered;
  Format.fprintf ppf "  %d finding(s), %d unexpected@,"
    (List.length r.c_findings)
    (List.length (unexpected r));
  if unexpected r <> [] then
    Format.fprintf ppf "  replay with --chaos-seed %d@," r.c_plan_seed;
  List.iter
    (fun f ->
      Format.fprintf ppf "%s "
        (if f.cf_expected then "[expected]" else "[UNEXPECTED]");
      pp_finding ppf f)
    r.c_findings;
  Format.fprintf ppf "@]"
