(** Schedule shrinking: delta debugging over sets of collection points. *)

val split_chunks : 'a list -> int -> 'a list list
(** Split a list into [n] contiguous non-empty chunks whose lengths differ
    by at most one (fewer than [n] when the list is short). *)

val ddmin : still_fails:(int list -> bool) -> int list -> int list
(** [ddmin ~still_fails points]: minimize a failing set of collection
    points.  [points] must itself satisfy [still_fails]; the result is a
    subset that still does.  Each predicate call costs one VM execution. *)
