(** The chaos sweep: fault-injected robustness testing.

    Where {!Driver} perturbs when the collector runs, this module
    perturbs whether the runtime's own machinery works: allocations fail
    on command ({!Gcheap.Failpoint}), worker domains crash mid-task
    ({!Exec.Pool.map_supervised}), and cached build artifacts rot in
    place ({!Harness.Build.corrupt_cached}).  The property under test is
    the robustness identity — under any injected fault, a run either
    behaves exactly like its fault-free reference or stops with a
    structured diagnostic; corruption, hangs and silent divergence are
    findings.  Every sweep is a deterministic function of the plan, and
    the seed is printed with every failing report so it replays
    exactly. *)

type plan = {
  c_matrix : Harness.Request.matrix;
      (** the config x machine x gc-mode cross product the sweeps cover
          (sanitizing always on via the matrix defaults) *)
  c_seed : int;  (** drives ordinal sampling and fault placement *)
  c_max_points : int;  (** allocation ordinals swept per subject *)
  c_trap_probes : int;  (** trap-policy injections per subject *)
  c_jobs : int;  (** worker domains; 1 = the reference serial sweep *)
  c_flight_dir : string option;
      (** when set, every alloc-failure finding's injected run is
          replayed under a flight recorder and the dump (its last-N
          GC/emergency events) written here; the path lands in
          [cf_flight].  Capture replays are uncounted, so reports stay
          a function of the plan. *)
}

val default_plan : plan
(** [Base] and [Safe] on sparc10 under stop-the-world collection,
    seed 0, 64 ordinals and 3 trap probes per subject, serial. *)

type finding = {
  cf_target : string;
  cf_subject : string;
  cf_sweep : string;  (** ["alloc-failure"], ["worker-fault"], ["cache"] *)
  cf_kind : string;
      (** ["divergence"], ["hang"], ["corruption"], ["burst"],
          ["trap-leak"], ["quarantine"], ["undetected-corruption"] *)
  cf_points : int list;
      (** injected allocation ordinals ({!Shrink.ddmin}-minimized for
          burst findings) *)
  cf_detail : string;
  cf_expected : bool;
      (** a known hazard of the conventional build perturbed by the
          injection-triggered collection, not a robustness failure *)
  cf_flight : string option;
      (** captured flight-recorder dump of the injected run
          ([c_flight_dir] set; alloc-failure sweeps only) *)
}

type report = {
  c_plan_seed : int;
  c_subject_count : int;
  c_injections : int;  (** allocation failures injected *)
  c_recovered : int;  (** runs identical to their fault-free reference *)
  c_structured : int;  (** runs stopped with a structured diagnostic *)
  c_emergency_collections : int;
  c_worker_faults : int;  (** worker crashes injected *)
  c_worker_restarts : int;  (** worker domains replaced *)
  c_worker_retries : int;
  c_quarantined : int;
  c_cache_corruptions : int;  (** artifacts rotted *)
  c_cache_recovered : int;  (** rotted artifacts detected and rebuilt *)
  c_runs : int;  (** VM executions, shrinking included *)
  c_findings : finding list;
}

val unexpected : report -> finding list

val run : ?plan:plan -> Corpus.target list -> report
(** Run all three sweeps over every target.  Reports are a function of
    the plan alone: parallel sweeps ([c_jobs > 1]) produce the same
    report as the serial reference. *)

val pp_finding : Format.formatter -> finding -> unit

val pp_report : Format.formatter -> report -> unit
