(** The stress corpus: small programs with known GC-safety character.

    Each target records whether the conventionally optimized build is
    *expected* to be vulnerable to an adversarial collection schedule
    (the paper's disguised-pointer hazards) and whether the checking
    build is expected to stop it (a real pointer bug, as in gawk).  The
    driver uses these expectations to separate "the stress harness found
    the known hazard" from "something that must never diverge did". *)

type target = {
  t_name : string;
  t_description : string;
  t_source : string;
  t_base_vulnerable : bool;
      (** the [-O] build is expected to diverge under some schedule *)
  t_checked_fails : bool;
      (** the checking build detects a genuine pointer error *)
}

(* The paper's introductory hazard: the optimizer rewrites the final
   reference p[i-100000] into p -= 100000; ... p[i], disguising the only
   pointer to the object for the duration of the window. *)
let hazard =
  {
    t_name = "hazard";
    t_description =
      "disguised last pointer via strength-reduced p[i - 100000]";
    t_source =
      {|long f(long i) {
  char *p = (char *)malloc(10);
  p[5] = 42;
  return p[i - 100000];   /* legal: i = 100005 */
}
int main(void) { printf("f returned %ld\n", f(100005)); return 0; }|};
    t_base_vulnerable = true;
    t_checked_fails = false;
  }

(* Same shape, but the disguised access is the result of a summation
   loop, so the window between the disguising subtraction and the final
   use spans many safepoints — a larger surface for the injector. *)
let indexfold =
  {
    t_name = "indexfold";
    t_description = "loop-computed index folded into a biased final access";
    t_source =
      {|long f(long n) {
  char *a = (char *)malloc(64);
  long i;
  long acc = 0;
  for (i = 0; i < 32; i = i + 1) {
    a[i] = i;
    acc = acc + a[i];
  }
  return acc + a[n - 100000];   /* n = 100007: a[7] = 7 */
}
int main(void) { printf("sum %ld\n", f(100007)); return 0; }|};
    t_base_vulnerable = true;
    t_checked_fails = false;
  }

(* A heap-to-heap copy loop: all pointers stay in recognizable form
   throughout, so every build must agree under every schedule. *)
let strcopy =
  {
    t_name = "strcopy";
    t_description = "heap-to-heap byte copy; all pointers stay recognizable";
    t_source =
      {|int main(void) {
  char *src = (char *)malloc(24);
  char *dst = (char *)malloc(24);
  long i;
  for (i = 0; i < 23; i = i + 1) src[i] = 65 + (i % 26);
  src[23] = 0;
  for (i = 0; src[i] != 0; i = i + 1) dst[i] = src[i];
  dst[i] = 0;
  printf("copied %s\n", dst);
  return 0;
}|};
    t_base_vulnerable = false;
    t_checked_fails = false;
  }

(* An object kept alive only through an interior pointer: exercises the
   collector's interior-pointer recognition under every schedule. *)
let interior =
  {
    t_name = "interior";
    t_description = "object reachable only via an interior pointer";
    t_source =
      {|int main(void) {
  char *p = (char *)malloc(40);
  char *mid;
  long i;
  for (i = 0; i < 40; i = i + 1) p[i] = i;
  mid = p + 17;
  p = 0;                       /* only the interior pointer survives */
  for (i = 0; i < 3; i = i + 1) (void)malloc(512);
  printf("mid %ld\n", (long)mid[0]);
  return 0;
}|};
    t_base_vulnerable = false;
    t_checked_fails = false;
  }

(* Allocation churn including a large (multi-page) object: drives the
   sweep, free-list, and large-block paths that the sanitizer audits. *)
let churn =
  {
    t_name = "churn";
    t_description = "small-object churn plus a live large object";
    t_source =
      {|int main(void) {
  char *big = (char *)malloc(5000);
  long i;
  long keep = 0;
  big[4999] = 7;
  for (i = 0; i < 40; i = i + 1) {
    char *t = (char *)malloc(16 + (i % 5) * 8);
    t[0] = i;
    keep = keep + t[0];
  }
  printf("churn %ld big %ld\n", keep, (long)big[4999]);
  return 0;
}|};
    t_base_vulnerable = false;
    t_checked_fails = false;
  }

let examples = [ hazard; indexfold; strcopy; interior; churn ]

let of_workload (w : Workloads.Registry.workload) =
  {
    t_name = w.Workloads.Registry.w_name;
    t_description = w.Workloads.Registry.w_description;
    t_source = w.Workloads.Registry.w_source;
    (* The paper's workloads keep their pointers recognizable (that is
       the point of the safe build); only checking-detected bugs are
       expected. *)
    t_base_vulnerable = false;
    t_checked_fails = w.Workloads.Registry.w_checked_fails;
  }

let workloads = List.map of_workload Workloads.Registry.paper_suite

let of_source ~name source =
  {
    t_name = name;
    t_description = "user program";
    t_source = source;
    t_base_vulnerable = false;
    t_checked_fails = false;
  }

let by_name name =
  match List.find_opt (fun t -> t.t_name = name) examples with
  | Some t -> Some t
  | None -> (
      match Workloads.Registry.by_name name with
      | Some w -> Some (of_workload w)
      | None -> None)

(** Resolve a command-line target spec: a group name, a corpus/workload
    name, or a path to a source file. *)
let resolve spec : target list option =
  match spec with
  | "examples" -> Some examples
  | "workloads" -> Some workloads
  | "all" -> Some (examples @ workloads)
  | "-" ->
      Some [ of_source ~name:"<stdin>" (In_channel.input_all In_channel.stdin) ]
  | name -> (
      match by_name name with
      | Some t -> Some [ t ]
      | None ->
          if Sys.file_exists name then begin
            let ic = open_in_bin name in
            let n = in_channel_length ic in
            let src = really_input_string ic n in
            close_in ic;
            Some [ of_source ~name:(Filename.basename name) src ]
          end
          else None)

(** Map a function name in [source] to its declaration site, for the
    shrinker's report.  The IR drops source locations, but the injector's
    point contexts name the enclosing function, which we can look up. *)
let function_locs source : (string * string) list =
  match Csyntax.Parser.parse_program source with
  | prog ->
      List.filter_map
        (function
          | Csyntax.Ast.Gfunc f ->
              Some
                ( f.Csyntax.Ast.f_name,
                  Csyntax.Loc.to_string f.Csyntax.Ast.f_loc )
          | _ -> None)
        prog.Csyntax.Ast.prog_globals
  | exception _ -> []
