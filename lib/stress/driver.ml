(** The stress driver: fault-injected differential execution with
    schedule shrinking.

    For every target program, every build configuration is run on every
    machine model under a family of injected GC schedules.  Each run is
    diffed against the same subject's uninjected behaviour (schedule
    sensitivity), and each subject's uninjected behaviour is diffed
    against the optimized baseline (cross-configuration agreement).  Any
    failing schedule is minimized with {!Shrink.ddmin} and reported with
    the program points where the minimized collections fire.

    The schedule space is embarrassingly parallel and [p_jobs > 1] fans
    it out over a {!Exec.Pool.t}, preserving the serial report exactly:
    schedules are scanned in chunks, the first failing schedule (by
    schedule index) is the one reported, and [r_runs] counts the runs
    the serial scan would have performed — speculative runs past a
    failure inside a chunk are executed but not counted, so a report is
    a function of the plan, never of the worker count. *)

module Build = Harness.Build
module Request = Harness.Request
module Differ = Harness.Differ
module Diagnostics = Harness.Diagnostics
module Schedule = Machine.Schedule

type mode =
  | Exhaustive of int
      (** every single-collection-point schedule, up to a cap *)
  | Every_n of int list  (** collect at every nth safepoint *)
  | Alloc_points  (** collect at every allocation *)

let mode_name = function
  | Exhaustive cap -> Printf.sprintf "exhaustive(<=%d)" cap
  | Every_n ns ->
      "every-" ^ String.concat "," (List.map string_of_int ns)
  | Alloc_points -> "at-allocs"

type plan = {
  p_matrix : Request.matrix;
      (** the config x machine x analysis x gc-mode cross product every
          target is stressed over, plus sanitizing and ceilings — the
          same matrix record the differ expands *)
  p_modes : mode list option;  (** [None]: choose per target size *)
  p_exhaustive_cap : int;
  p_jobs : int;  (** worker domains; 1 = the reference serial scan *)
  p_trace_dir : string option;
      (** when set, every finding's failing schedule is replayed under a
          span tracer plus a flight recorder, and the Chrome trace and
          the flight-recorder dump (the run's last-N structured GC/VM
          events) are written here, so divergences ship with a
          replayable timeline and their event context.  Capture replays
          are not counted in [r_runs]: reports stay byte-identical. *)
}

let default_plan =
  {
    p_matrix = Request.default_matrix;
    p_modes = None;
    p_exhaustive_cap = 2000;
    p_jobs = 1;
    p_trace_dir = None;
  }

type kind =
  | Divergence of string  (** schedule-sensitive behaviour; mismatch kind *)
  | Corruption  (** the heap sanitizer fired *)
  | Config_gap of string
      (** uninjected behaviour disagrees with the baseline *)

let kind_name = function
  | Divergence k -> "divergence(" ^ k ^ ")"
  | Corruption -> "integrity-violation"
  | Config_gap k -> "config-gap(" ^ k ^ ")"

type finding = {
  f_target : string;
  f_subject : string;
  f_config : Build.config;
  f_kind : kind;
  f_detail : string;
  f_schedule : string;  (** the schedule that first exposed it *)
  f_min_points : int list;  (** minimized point set ([] when not shrunk) *)
  f_orig_points : int;  (** collections fired before shrinking *)
  f_contexts : (int * string * string option) list;
      (** minimized point, program context, source location *)
  f_expected : bool;
      (** a known hazard of the conventional build, not a harness failure *)
  f_trace : string option;
      (** path of the captured Chrome trace ([p_trace_dir] set) *)
  f_flight : string option;
      (** path of the captured flight-recorder dump ([p_trace_dir] set);
          validates under {!Telemetry.Flight_recorder.check} *)
}

type report = {
  r_findings : finding list;
  r_targets : int;
  r_subjects : int;
  r_runs : int;  (** VM executions, including shrinking *)
}

let unexpected r = List.filter (fun f -> not f.f_expected) r.r_findings

(* ------------------------------------------------------------------ *)

(** Map a fired-point context ("fn, L2, after ...") to the declaration
    site of its enclosing function. *)
let source_loc_of_context fn_locs ctx =
  match String.index_opt ctx ',' with
  | None -> None
  | Some i -> List.assoc_opt (String.sub ctx 0 i) fn_locs

let is_fail = function
  | Some _, _ -> true
  | None, obs -> Differ.classify obs = Diagnostics.Corruption

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let sanitize_component s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    s

(** One target against the whole matrix. *)
let run_target ?(pool = Exec.Pool.serial) (plan : plan)
    (target : Corpus.target) : finding list * int * int =
  let runs = ref 0 in
  let fn_locs = Corpus.function_locs target.Corpus.t_source in
  let subjects =
    Differ.build_of_matrix ~pool plan.p_matrix target.Corpus.t_source
  in
  (* [observe_raw] may run on a worker domain and must not touch shared
     state; run accounting happens on the submitting thread, in serial
     scan order, so [r_runs] is worker-count independent.  Ceilings and
     sanitizing ride on each subject's request (from the matrix). *)
  let observe_raw ?gc_point_sink ?telemetry ~schedule subject =
    Differ.observe ?gc_point_sink ?telemetry ~schedule subject
  in
  let observe ?gc_point_sink ~schedule subject =
    incr runs;
    observe_raw ?gc_point_sink ~schedule subject
  in
  (* Replay a finding's schedule under a tracer plus a flight recorder;
     uncounted, like any other observe_raw, so capture never changes the
     report. *)
  let trace_seq = ref 0 in
  let capture_trace ~schedule s =
    match plan.p_trace_dir with
    | None -> (None, None)
    | Some dir ->
        mkdir_p dir;
        let tr = Telemetry.Trace.create () in
        let recorder = Telemetry.Flight_recorder.create () in
        let sink = Telemetry.Sink.make ~trace:tr ~recorder () in
        ignore (observe_raw ~telemetry:sink ~schedule s);
        let base =
          Printf.sprintf "%s-%s-%d"
            (sanitize_component target.Corpus.t_name)
            (sanitize_component (Differ.subject_name s))
            !trace_seq
        in
        incr trace_seq;
        let trace_path = Filename.concat dir (base ^ ".trace.json") in
        Telemetry.Trace.write_file tr trace_path;
        let flight_path = Filename.concat dir (base ^ ".flight.json") in
        Telemetry.Flight_recorder.write_file recorder flight_path;
        (Some trace_path, Some flight_path)
  in
  (* Uninjected behaviour of every subject, and the per-machine baseline. *)
  let auto =
    let obss =
      Exec.Pool.map pool (fun s -> observe_raw ~schedule:Schedule.Auto s)
        subjects
    in
    runs := !runs + List.length subjects;
    List.combine subjects obss
  in
  (* The per-machine reference: the stop-the-world baseline when the
     plan spans gc modes — generational runs must match the paper's
     collector, not the other way around. *)
  let base_auto machine =
    let bases =
      List.filter
        (fun (s, _) ->
          s.Differ.s_request.Request.config = Build.Base
          && s.Differ.s_request.Request.machine.Machine.Machdesc.md_name
             = machine.Machine.Machdesc.md_name)
        auto
    in
    match
      List.find_opt
        (fun (s, _) -> s.Differ.s_request.Request.gc_mode = Gcheap.Heap.Stw)
        bases
    with
    | Some (_, o) -> o
    | None -> snd (List.hd bases)
  in
  let findings = ref [] in
  let record f = findings := f :: !findings in
  (* Cross-configuration agreement with no injection at all.  A checking
     build stopping a target with a known pointer bug is the expected
     behaviour from the paper, not a finding. *)
  List.iter
    (fun (s, obs) ->
      if s.Differ.s_request.Request.config <> Build.Base then begin
        let expected_checked_fault =
          s.Differ.s_request.Request.config = Build.Debug_checked
          && target.Corpus.t_checked_fails
          &&
          match obs with Differ.Obs_detected _ -> true | _ -> false
        in
        match
          Differ.diff ~reference:(base_auto s.Differ.s_request.Request.machine)
            obs
        with
        | Some m when not expected_checked_fault ->
            let trace, flight = capture_trace ~schedule:Schedule.Auto s in
            record
              {
                f_target = target.Corpus.t_name;
                f_subject = Differ.subject_name s;
                f_config = s.Differ.s_request.Request.config;
                f_kind = Config_gap (Differ.mismatch_kind m);
                f_detail = Differ.describe_mismatch m;
                f_schedule = "auto";
                f_min_points = [];
                f_orig_points = 0;
                f_contexts = [];
                f_expected = false;
                f_trace = trace;
                f_flight = flight;
              }
        | _ -> ()
      end)
    auto;
  (* Schedule families, sized from the baseline's dynamic instruction
     count on each machine. *)
  let safepoints machine =
    match base_auto machine with
    | Differ.Obs_ok { ok_instrs; _ } -> ok_instrs
    | _ -> 0
  in
  let schedules_for machine =
    let t = safepoints machine in
    let modes =
      match plan.p_modes with
      | Some ms -> ms
      | None ->
          if t > 0 && t <= plan.p_exhaustive_cap then
            [ Exhaustive plan.p_exhaustive_cap; Every_n [ 1 ]; Alloc_points ]
          else
            (* Large programs: every forced collection costs a full mark
               and an integrity scan, so sample at two offset strides
               (~16 and ~64 collections) rather than injecting densely. *)
            [ Every_n [ max 1 (t / 16); max 1 ((t / 64) + 1) ] ]
    in
    List.concat_map
      (function
        | Exhaustive cap ->
            List.init (min t cap) (fun k ->
                Schedule.at_list [ k + 1 ])
        | Every_n ns ->
            List.map (fun n -> Schedule.Every (max 1 n)) (List.sort_uniq compare ns)
        | Alloc_points -> [ Schedule.At_allocs ])
      modes
  in
  (* Shrinking: replay fired points as an explicit [At] schedule. *)
  let diff_against reference obs = (Differ.diff ~reference obs, obs) in
  let shrink_and_report s reference fired =
    let fired = List.rev fired in
    let fired_idx = List.map fst fired in
    let still_fails pts =
      let obs =
        observe ~schedule:(Schedule.At (Schedule.points_of_list pts)) s
      in
      is_fail (diff_against reference obs)
    in
    let try_seed seed = if seed <> [] && still_fails seed then Some seed else None in
    let seed =
      match try_seed fired_idx with
      | Some s -> Some s
      | None ->
          (* At_allocs points fire inside the allocating call; an [At]
             schedule fires after the indexed instruction, so the
             nearest replay is one safepoint earlier. *)
          try_seed (List.map (fun k -> max 0 (k - 1)) fired_idx)
    in
    match seed with
    | None ->
        (* Not replayable as an explicit point set; report unshrunk. *)
        let contexts =
          List.map
            (fun (k, ctx) -> (k, ctx, source_loc_of_context fn_locs ctx))
            fired
        in
        ([], List.length fired, contexts)
    | Some seed ->
        let min_pts = Shrink.ddmin ~still_fails seed in
        (* Re-run the minimized schedule to capture where its
           collections land. *)
        let captured = ref [] in
        ignore
          (observe
             ~gc_point_sink:(fun k ctx -> captured := (k, ctx) :: !captured)
             ~schedule:(Schedule.At (Schedule.points_of_list min_pts))
             s);
        let contexts =
          List.rev_map
            (fun (k, ctx) -> (k, ctx, source_loc_of_context fn_locs ctx))
            !captured
        in
        (min_pts, List.length fired, contexts)
  in
  (* Scan each subject; stop at its first finding (the shrinker gives a
     minimal witness, further schedules add nothing).  The scan walks the
     schedule space in chunks: a chunk's runs execute concurrently, then
     its results are consumed in schedule order, so the finding — and the
     run count — are those of the serial left-to-right scan. *)
  let chunk_size =
    if Exec.Pool.jobs pool <= 1 then 1 else 4 * Exec.Pool.jobs pool
  in
  List.iter
    (fun (s, reference) ->
      let schedules =
        Array.of_list (schedules_for s.Differ.s_request.Request.machine)
      in
      let n = Array.length schedules in
      let found = ref false in
      let pos = ref 0 in
      while (not !found) && !pos < n do
        let len = min chunk_size (n - !pos) in
        let chunk = List.init len (fun i -> schedules.(!pos + i)) in
        pos := !pos + len;
        let results =
          Exec.Pool.map pool
            (fun schedule ->
              let fired = ref [] in
              let obs =
                observe_raw
                  ~gc_point_sink:(fun k ctx -> fired := (k, ctx) :: !fired)
                  ~schedule s
              in
              (schedule, !fired, obs))
            chunk
        in
        List.iter
          (fun (schedule, fired, obs) ->
            if not !found then begin
              incr runs;
              let mismatch, obs = diff_against reference obs in
              let corrupted =
                Differ.classify obs = Diagnostics.Corruption
              in
              if corrupted || mismatch <> None then begin
                found := true;
                let min_pts, orig, contexts =
                  shrink_and_report s reference fired
                in
                let kind, detail =
                  if corrupted then
                    ( Corruption,
                      match obs with
                      | Differ.Obs_corrupted m -> m
                      | _ -> assert false )
                  else
                    match mismatch with
                    | Some m ->
                        (Divergence (Differ.mismatch_kind m),
                         Differ.describe_mismatch m)
                    | None -> assert false
                in
                let trace, flight = capture_trace ~schedule s in
                record
                  {
                    f_target = target.Corpus.t_name;
                    f_subject = Differ.subject_name s;
                    f_config = s.Differ.s_request.Request.config;
                    f_kind = kind;
                    f_detail = detail;
                    f_schedule = Schedule.to_string schedule;
                    f_min_points = min_pts;
                    f_orig_points = orig;
                    f_contexts = contexts;
                    (* Schedule sensitivity of the conventional build is
                       the hazard the paper predicts; everything else must
                       never happen. *)
                    f_expected =
                      (not corrupted)
                      && s.Differ.s_request.Request.config = Build.Base;
                    f_trace = trace;
                    f_flight = flight;
                  }
              end
            end)
          results
      done)
    auto;
  (List.rev !findings, List.length subjects, !runs)

let run ?(plan = default_plan) (targets : Corpus.target list) : report =
  let findings, subjects, runs =
    Exec.Pool.with_pool ~jobs:plan.p_jobs (fun pool ->
        List.fold_left
          (fun (fs, subs, runs) target ->
            let f, s, r = run_target ~pool plan target in
            (fs @ f, subs + s, runs + r))
          ([], 0, 0) targets)
  in
  {
    r_findings = findings;
    r_targets = List.length targets;
    r_subjects = subjects;
    r_runs = runs;
  }

(* ------------------------------------------------------------------ *)

let pp_finding ppf f =
  Format.fprintf ppf "%s %s [%s]@,  schedule %s: %s@," f.f_target f.f_subject
    (kind_name f.f_kind) f.f_schedule f.f_detail;
  (match f.f_min_points with
  | [] ->
      if f.f_orig_points > 0 then
        Format.fprintf ppf "  not shrinkable to an explicit point set (%d collection(s) fired)@,"
          f.f_orig_points
  | pts ->
      Format.fprintf ppf "  minimized to %d collection point(s) (from %d): {%s}@,"
        (List.length pts) f.f_orig_points
        (String.concat ", " (List.map string_of_int pts)));
  List.iter
    (fun (k, ctx, loc) ->
      Format.fprintf ppf "    point %d: %s%s@," k ctx
        (match loc with Some l -> " (declared at " ^ l ^ ")" | None -> ""))
    f.f_contexts;
  (match f.f_trace with
  | Some path -> Format.fprintf ppf "  trace captured: %s@," path
  | None -> ());
  match f.f_flight with
  | Some path -> Format.fprintf ppf "  flight recorder dump: %s@," path
  | None -> ()

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "stress: %d target(s), %d subject(s), %d run(s), %d finding(s), %d unexpected@,"
    r.r_targets r.r_subjects r.r_runs
    (List.length r.r_findings)
    (List.length (unexpected r));
  List.iter
    (fun f ->
      Format.fprintf ppf "%s " (if f.f_expected then "[expected]" else "[UNEXPECTED]");
      pp_finding ppf f)
    r.r_findings;
  Format.fprintf ppf "@]"
