(** The stress corpus: small programs with known GC-safety character. *)

type target = {
  t_name : string;
  t_description : string;
  t_source : string;
  t_base_vulnerable : bool;
      (** the [-O] build is expected to diverge under some schedule *)
  t_checked_fails : bool;
      (** the checking build detects a genuine pointer error *)
}

val hazard : target
(** The paper's introductory disguised-pointer hazard. *)

val indexfold : target

val strcopy : target

val interior : target

val churn : target

val examples : target list

val of_workload : Workloads.Registry.workload -> target

val workloads : target list
(** The paper's four measured workloads as stress targets. *)

val of_source : name:string -> string -> target

val by_name : string -> target option

val resolve : string -> target list option
(** Resolve a command-line spec: "examples" | "workloads" | "all", a
    corpus or workload name, or a path to a source file. *)

val function_locs : string -> (string * string) list
(** Function name -> declaration site ("line:col"), parsed from source. *)
