(** Heap census: a structural snapshot of the arena taken at collection
    boundaries.

    A census summarizes where the committed pages went — per-size-class
    occupancy, the emergency free-page pool, the per-generation age
    histogram, the remembered set's dirty-card ratio, and fragmentation
    (live words over committed words).  It is a plain record with no
    JSON dependency so the heap library stays leaf-level; rendering
    lives in the harness ({!Harness.Measure.census_to_json}) and the
    CLI ([gcsafec heap-census]). *)

type class_row = {
  cr_size : int;  (** rounded object size in bytes *)
  cr_blocks : int;
  cr_slots : int;
  cr_allocated : int;  (** slots currently allocated *)
}

type t = {
  cn_collections : int;  (** collections completed when sampled *)
  cn_phase : string;  (** ["idle"] / ["marking"] / ["sweeping"] *)
  cn_classes : class_row list;  (** sorted by size, large blocks included *)
  cn_free_page_runs : int;  (** runs in the emergency reclaim pool *)
  cn_free_pages : int;  (** total pages in the pool *)
  cn_age : int array;
      (** collectable live objects by age; the last bucket clips at
          [promote_after] (the old generation) *)
  cn_young : int;
  cn_old : int;
  cn_dirty_cards : int;
  cn_cards : int;  (** total cards (one per arena page) *)
  cn_nursery_pages : int;  (** young (bump-allocated) pages in service *)
  cn_nursery_slots : int;  (** bump slots handed out on those pages *)
  cn_live_words : int;  (** allocated slots, rounded sizes, in words *)
  cn_committed_words : int;  (** arena footprint in words *)
}

val take : Heap.t -> t
(** Sample the heap.  Read-only: never allocates from, collects, or
    otherwise perturbs the heap being sampled. *)

val fragmentation : t -> float
(** [live / committed]; 1.0 for an empty arena. *)

val dirty_ratio : t -> float
(** [dirty_cards / cards]; 0.0 when there are no cards. *)

val pp : Format.formatter -> t -> unit
