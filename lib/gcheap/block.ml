(** Heap blocks: runs of pages holding uniformly sized objects.

    This mirrors the Boehm collector's [hblk] structure that the paper's
    checking mode depends on: "a tree of fixed height 2 describing pages of
    uniformly sized objects", tuned so that mapping any address to the base
    of its object is fast. *)

type kind =
  | Normal  (** collectable, contents scanned for pointers *)
  | Atomic  (** collectable, contents known pointer-free (GC_malloc_atomic) *)
  | Uncollectable
      (** never swept, contents scanned: VM statics and string literals
          (GC_malloc_uncollectable) *)
  | Stack
      (** never swept, and only the live prefix is scanned — the caller
          passes the current extent to [collect] as a root range *)

type t = {
  blk_start : int;  (** address of the first object *)
  blk_pages : int;  (** number of pages spanned *)
  blk_obj_size : int;  (** rounded object size in bytes *)
  blk_count : int;  (** number of object slots *)
  blk_kind : kind;
  blk_alloc : Bytes.t;  (** one byte per slot: 0 free, 1 allocated *)
  blk_mark : Bytes.t;  (** one byte per slot: mark bit for the collector *)
  blk_age : Bytes.t;
      (** one byte per slot: number of minor collections survived; an
          object whose age reaches the heap's promotion threshold is old *)
  blk_req : int array;  (** requested (un-rounded) size per slot *)
  mutable blk_young : bool;
      (** nursery block: filled front-to-back by the bump cursor, every
          resident object belongs to the current young cohort *)
  mutable blk_bump : int;
      (** next bump slot; slots at and above this index have never been
          allocated (only meaningful while [blk_young]) *)
  mutable blk_aging : bool;
      (** old-generation block holding at least one reused slot that is
          still young — it must be visited by minor sweeps until every
          such slot is promoted or freed *)
}

let make ~start ~pages ~obj_size ~count ~kind =
  {
    blk_start = start;
    blk_pages = pages;
    blk_obj_size = obj_size;
    blk_count = count;
    blk_kind = kind;
    blk_alloc = Bytes.make count '\000';
    blk_mark = Bytes.make count '\000';
    blk_age = Bytes.make count '\000';
    blk_req = Array.make count 0;
    blk_young = false;
    blk_bump = 0;
    blk_aging = false;
  }

(** Index of the object slot containing [addr], if [addr] lies within the
    object area of this block. *)
let slot_of_addr t addr =
  let off = addr - t.blk_start in
  if off < 0 then None
  else
    let i = off / t.blk_obj_size in
    if i < t.blk_count then Some i else None

let slot_addr t i = t.blk_start + (i * t.blk_obj_size)

let is_allocated t i = Bytes.get t.blk_alloc i <> '\000'

let set_allocated t i v = Bytes.set t.blk_alloc i (if v then '\001' else '\000')

let is_marked t i = Bytes.get t.blk_mark i <> '\000'

let set_marked t i v = Bytes.set t.blk_mark i (if v then '\001' else '\000')

let clear_marks t = Bytes.fill t.blk_mark 0 t.blk_count '\000'

let age t i = Char.code (Bytes.get t.blk_age i)

let set_age t i v = Bytes.set t.blk_age i (Char.chr (min 255 (max 0 v)))

let scanned t =
  match t.blk_kind with
  | Normal | Uncollectable -> true
  | Atomic | Stack -> false

let collectable t =
  match t.blk_kind with
  | Normal | Atomic -> true
  | Uncollectable | Stack -> false

(* auto-scanned in full during every collection *)
let root_scanned t =
  match t.blk_kind with
  | Uncollectable -> true
  | Normal | Atomic | Stack -> false
