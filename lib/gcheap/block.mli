(** Heap blocks: runs of pages holding uniformly sized objects (the Boehm
    collector's [hblk]). *)

type kind =
  | Normal  (** collectable, contents scanned for pointers *)
  | Atomic  (** collectable, contents known pointer-free *)
  | Uncollectable  (** never swept, contents scanned (statics) *)
  | Stack
      (** never swept; only the live prefix passed to [collect] as a root
          range is scanned *)

type t = {
  blk_start : int;  (** address of the first object *)
  blk_pages : int;  (** number of pages spanned *)
  blk_obj_size : int;  (** rounded object size in bytes *)
  blk_count : int;  (** number of object slots *)
  blk_kind : kind;
  blk_alloc : Bytes.t;
  blk_mark : Bytes.t;
  blk_age : Bytes.t;  (** minor collections survived, one byte per slot *)
  blk_req : int array;  (** requested (un-rounded) size per slot *)
  mutable blk_young : bool;
      (** nursery block: filled front-to-back by the bump cursor; cleared
          when the page's cohort is promoted into the old generation *)
  mutable blk_bump : int;
      (** next bump slot (only meaningful while [blk_young]) *)
  mutable blk_aging : bool;
      (** old-generation block holding reused slots that are still young
          (visited by minor sweeps until they promote or die) *)
}

val make :
  start:int -> pages:int -> obj_size:int -> count:int -> kind:kind -> t

val slot_of_addr : t -> int -> int option
(** Index of the object slot containing an address within the block. *)

val slot_addr : t -> int -> int

val is_allocated : t -> int -> bool

val set_allocated : t -> int -> bool -> unit

val is_marked : t -> int -> bool

val set_marked : t -> int -> bool -> unit

val clear_marks : t -> unit

val age : t -> int -> int
(** Number of minor collections the slot's object has survived. *)

val set_age : t -> int -> int -> unit
(** Clamped to a byte. *)

val scanned : t -> bool
(** Are object contents scanned for pointers? *)

val collectable : t -> bool

val root_scanned : t -> bool
(** Auto-scanned in full during every collection (uncollectable data). *)
