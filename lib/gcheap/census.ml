(* Heap census.  See the interface for the contract. *)

type class_row = {
  cr_size : int;
  cr_blocks : int;
  cr_slots : int;
  cr_allocated : int;
}

type t = {
  cn_collections : int;
  cn_phase : string;
  cn_classes : class_row list;
  cn_free_page_runs : int;
  cn_free_pages : int;
  cn_age : int array;
  cn_young : int;
  cn_old : int;
  cn_dirty_cards : int;
  cn_cards : int;
  cn_nursery_pages : int;
  cn_nursery_slots : int;
  cn_live_words : int;
  cn_committed_words : int;
}

let phase_name = function
  | Heap.Idle -> "idle"
  | Heap.Marking -> "marking"
  | Heap.Sweeping -> "sweeping"

let take (h : Heap.t) =
  let promote_after = max 1 h.Heap.config.Heap.promote_after in
  let age = Array.make (promote_after + 1) 0 in
  let classes : (int, class_row ref) Hashtbl.t = Hashtbl.create 16 in
  let live_bytes = ref 0 in
  let young = ref 0 and old = ref 0 in
  List.iter
    (fun (b : Block.t) ->
      let row =
        match Hashtbl.find_opt classes b.Block.blk_obj_size with
        | Some r -> r
        | None ->
            let r =
              ref
                {
                  cr_size = b.Block.blk_obj_size;
                  cr_blocks = 0;
                  cr_slots = 0;
                  cr_allocated = 0;
                }
            in
            Hashtbl.add classes b.Block.blk_obj_size r;
            r
      in
      let allocated = ref 0 in
      for slot = 0 to b.Block.blk_count - 1 do
        if Block.is_allocated b slot then begin
          incr allocated;
          live_bytes := !live_bytes + b.Block.blk_obj_size;
          if Block.collectable b then begin
            let a =
              (* nursery residents are young regardless of the clipped
                 age byte; everywhere else age tells the generation *)
              if b.Block.blk_young then min (Block.age b slot) (promote_after - 1)
              else min (Block.age b slot) promote_after
            in
            age.(a) <- age.(a) + 1;
            if a >= promote_after then incr old else incr young
          end
        end
      done;
      row :=
        {
          !row with
          cr_blocks = !row.cr_blocks + 1;
          cr_slots = !row.cr_slots + b.Block.blk_count;
          cr_allocated = !row.cr_allocated + !allocated;
        })
    h.Heap.all_blocks;
  let classes =
    Hashtbl.fold (fun _ r acc -> !r :: acc) classes []
    |> List.sort (fun a b -> compare a.cr_size b.cr_size)
  in
  let dirty = h.Heap.dirty in
  let dirty_cards = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr dirty_cards) dirty;
  {
    cn_collections = h.Heap.stats.Heap.collections;
    cn_phase = phase_name h.Heap.phase;
    cn_classes = classes;
    cn_free_page_runs = List.length h.Heap.free_pages;
    cn_free_pages =
      List.fold_left (fun acc (_, pages) -> acc + pages) 0 h.Heap.free_pages;
    cn_age = age;
    cn_young = !young;
    cn_old = !old;
    cn_dirty_cards = !dirty_cards;
    cn_cards = Bytes.length dirty;
    cn_nursery_pages =
      List.fold_left
        (fun acc (b : Block.t) -> acc + b.Block.blk_pages)
        0 h.Heap.young_blocks;
    cn_nursery_slots =
      List.fold_left
        (fun acc (b : Block.t) -> acc + b.Block.blk_bump)
        0 h.Heap.young_blocks;
    cn_live_words = (!live_bytes + 7) / 8;
    cn_committed_words = (Heap.footprint h + 7) / 8;
  }

let fragmentation c =
  if c.cn_committed_words = 0 then 1.0
  else Float.of_int c.cn_live_words /. Float.of_int c.cn_committed_words

let dirty_ratio c =
  if c.cn_cards = 0 then 0.0
  else Float.of_int c.cn_dirty_cards /. Float.of_int c.cn_cards

let pp ppf c =
  Format.fprintf ppf
    "census after collection %d: phase=%s live=%dw committed=%dw frag=%.3f@."
    c.cn_collections c.cn_phase c.cn_live_words c.cn_committed_words
    (fragmentation c);
  Format.fprintf ppf "  generations: young=%d old=%d ages=[%s]@." c.cn_young
    c.cn_old
    (String.concat ";" (Array.to_list (Array.map string_of_int c.cn_age)));
  Format.fprintf ppf "  cards: dirty=%d/%d (%.3f)  free-page pool: %d page(s) in %d run(s)@."
    c.cn_dirty_cards c.cn_cards (dirty_ratio c) c.cn_free_pages
    c.cn_free_page_runs;
  Format.fprintf ppf "  nursery: %d page(s), %d bump slot(s) used@."
    c.cn_nursery_pages c.cn_nursery_slots;
  List.iter
    (fun r ->
      Format.fprintf ppf "  class %6d: %3d block(s) %5d/%5d slot(s) live@."
        r.cr_size r.cr_blocks r.cr_allocated r.cr_slots)
    c.cn_classes
