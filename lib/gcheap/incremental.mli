(** Incremental snapshot-at-the-beginning (SATB) marking over {!Heap}.

    The resumable tri-color marker behind {!Heap.gc_mode} [Inc]: an
    explicit gray stack of address ranges, time-sliced into steps of at
    most [config.pause_budget_words] words of collector work, driven by
    the embedder at its GC points.  The cycle's invariant is SATB —
    every object conservatively reachable when the cycle started is
    marked by the time it sweeps — maintained by three hooks that live
    in {!Heap}: the store barrier grays overwritten old values while
    marking is in flight, allocation during a cycle is black, and any
    full collection soundly abandons the cycle first. *)

val active : Heap.t -> bool
(** Is a marking/sweeping cycle in flight ([phase <> Idle])? *)

val step :
  ?extra_roots:int list -> ?extra_ranges:(int * int) list -> Heap.t -> int
(** Run one increment and return the words of collector work it
    performed.  On an idle heap this starts a cycle with an atomic
    snapshot root scan over [extra_roots] (word values — the VM's
    register file), [extra_ranges] (the live stack prefix), the
    registered ranges and the root-scanned uncollectable blocks; on a
    marking heap it drains gray ranges under the pause budget (and,
    when the stack drains within budget, atomically finalizes by
    re-scanning [extra_roots] and draining to empty); on a sweeping
    heap it frees unmarked slots block by block under the budget.  The
    snapshot and the finalization are atomic, so a step can exceed the
    budget; such steps are counted in [stats.budget_overruns].  Updates
    [stats.increments], [stats.final_marks] and
    [stats.inc_max_pause_words]. *)

val finish :
  ?extra_roots:int list -> ?extra_ranges:(int * int) list -> Heap.t -> unit
(** Drive {!step} until the in-flight cycle (if any) completes.  The
    roots must be the same the embedder would pass to {!step}. *)
