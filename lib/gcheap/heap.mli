(** Conservative mark-sweep collector in the style of [Boehm95].

    The public surface covers exactly what the paper relies on: allocation
    with one extra byte of slack (so legal one-past-the-end pointers map
    back to their object), [GC_base]-style interior-pointer resolution via
    the height-2 page map, root scanning over caller-supplied word values
    and registered ranges, and the checking primitives of the debugging
    mode ([GC_same_obj], [GC_pre_incr], [GC_post_incr], [GC_check_base]).

    A generational mode layers minor collections on top: objects carry a
    per-slot age, a minor cycle scans roots, young objects and the dirty
    cards of a page-granularity remembered set (fed by {!note_store}),
    and survivors promote to the old generation after
    [config.promote_after] minor cycles.

    Generational and incremental heaps additionally segregate the
    generations by page: new small collectable objects are bump-allocated
    off young single-page blocks ([config.nursery_pages] of them per
    allocation window), whole-page cohorts age together, wholly dead
    nursery pages return to the reclaim pool, and a surviving cohort is
    promoted in place — the collector is conservative, so objects never
    move.  The remembered set then tracks only old-generation pages. *)

type gc_mode = Stw | Gen | Inc
(** Collector operating mode: stop-the-world full collections only (the
    paper's collector, the default), generational minor + major cycles,
    or incremental snapshot-at-the-beginning marking time-sliced across
    GC points (see {!Incremental}). *)

val gc_mode_name : gc_mode -> string
(** ["stw"] / ["gen"] / ["inc"]. *)

val gc_mode_of_string : string -> gc_mode option

type generation = Minor | Major
(** Which cycle {!collect} runs; [Minor] degrades to [Major] on a
    non-generational heap. *)

type oom_policy = Trap | Collect_expand
(** What an allocation failure (heap-limit overrun or injected
    failpoint) does: raise {!Heap_exhausted} immediately ([Trap]), or
    run an emergency full collection, retry, grow within the limit, and
    raise only when all of that fails ([Collect_expand], Boehm's
    collect-then-expand). *)

val oom_policy_name : oom_policy -> string
(** ["trap"] / ["collect-expand"]. *)

val oom_policy_of_string : string -> oom_policy option

type config = {
  mutable all_interior : bool;
      (** recognize interior pointers everywhere (the paper's default
          collector configuration); when [false], interior pointers are
          honoured from the roots only — the "Extensions" section mode *)
  mutable poison : bool;  (** fill freed objects with [0xDB] *)
  mutable gc_threshold : int;
      (** allocation volume (bytes) between collections *)
  mutable generational : bool;
      (** enable minor collections and the store barrier's dirty cards *)
  mutable minor_threshold : int;
      (** allocation volume (bytes) between minor collections *)
  mutable promote_after : int;
      (** minor collections an object must survive to become old *)
  mutable heap_limit_words : int;
      (** hard arena ceiling in words; [0] (the default) is unlimited *)
  mutable oom_policy : oom_policy;
      (** allocation-failure response; see {!oom_policy} *)
  mutable incremental : bool;
      (** enable the SATB write barrier and allocate-black so an
          {!Incremental} marking cycle can stay in flight across
          mutator steps *)
  mutable pause_budget_words : int;
      (** words of collector work one incremental step may perform
          before yielding back to the mutator *)
  mutable nursery_pages : int;
      (** pages of bump-allocated nursery a generational or incremental
          heap may open between collections before a minor cycle is due;
          [0] disables the nursery (legacy shared-page allocation) *)
}

type stats = {
  mutable collections : int;  (** all collections, minor included *)
  mutable minor_collections : int;
  mutable bytes_allocated : int;
  mutable objects_allocated : int;
  mutable objects_freed : int;
  mutable bytes_freed : int;
  mutable words_scanned : int;
  mutable base_lookups : int;
  mutable same_obj_checks : int;
  mutable check_failures : int;
  mutable promoted : int;  (** objects promoted to the old generation *)
  mutable cards_scanned : int;  (** dirty cards visited by minor cycles *)
  mutable emergency_collections : int;
      (** collect-expand cycles run on allocation failure *)
  mutable injected_failures : int;  (** failpoints that fired *)
  mutable increments : int;  (** incremental steps run *)
  mutable final_marks : int;
      (** incremental steps that performed the atomic finalization *)
  mutable barrier_grays : int;
      (** overwritten old values the SATB barrier grayed *)
  mutable budget_overruns : int;
      (** incremental steps whose work exceeded the pause budget *)
  mutable inc_max_pause_words : int;
      (** largest single incremental step, in words of collector work *)
  mutable abandoned_cycles : int;
      (** in-flight incremental cycles abandoned by a full collection *)
}

type phase = Idle | Marking | Sweeping
(** Where an incremental marking cycle stands; [Idle] outside a cycle. *)

type t = {
  mem : Mem.t;
  map : Page_map.t;
  free_lists : (int * Block.kind, int list ref) Hashtbl.t;
  mutable large_blocks : Block.t list;
  mutable all_blocks : Block.t list;
  config : config;
  stats : stats;
  mutable since_gc : int;
      (** live-growth estimate driving major collections: allocation
          minus what minor cycles reclaimed, reset by a full collection *)
  mutable since_minor : int;  (** bytes allocated since any collection *)
  mutable dirty : Bytes.t;
      (** remembered set: one byte per arena page, set by {!note_store} *)
  mutable roots : (int * int) list;
  mutable on_free : (addr:int -> bytes:int -> unit) option;
      (** observer called with the base address and requested size of
          every object the sweeper reclaims — the heap profiler hangs
          off this; [None] (the default) costs one test per free *)
  mutable failpoints : Failpoint.t;
      (** injected allocation failures (the chaos harness sets this);
          [Never] (the default) costs one branch per allocation *)
  mutable on_oom : (unit -> unit) option;
      (** emergency-collection hook: the VM installs a closure that
          collects with its full root set (register files plus the live
          stack prefix); [None] collects over the registered root
          ranges only *)
  mutable free_pages : (int * int) list;
      (** reclaim pool: [(start, pages)] page runs retired from
          fully-empty blocks by emergency collections and from wholly
          dead nursery pages at collection boundaries, available to any
          later block of any size class.  The arena never shrinks, but
          pages inside it can change role — this is what makes
          [Collect_expand] strictly stronger than [Trap] when the
          blocker is a large allocation, and what keeps a churning
          nursery's footprint bounded.  Card bytes are wiped both when
          a run is retired and when it is reused, so no page is ever
          born dirty.  Always empty on limit-free stop-the-world
          executions *)
  mutable phase : phase;
      (** incremental-cycle phase; driven by {!Incremental.step} *)
  mutable gray : (int * int) list;
      (** incremental mark stack: gray ranges [start, stop)] still to
          scan, with partial push-back when a budget expires mid-range *)
  mutable sweep_pending : Block.t list;
      (** blocks the in-flight incremental cycle has yet to sweep *)
  mutable sweep_cursor : int;
      (** next slot to examine in the head of [sweep_pending] — lets a
          sweep slice stop mid-block exactly at the pause budget *)
  mutable young_blocks : Block.t list;
      (** nursery: the young single-page blocks currently in service *)
  mutable aging_blocks : Block.t list;
      (** old-generation blocks that may hold still-young (reused or
          large) slots, visited by the segregated minor sweep *)
  nursery_cursors : (int * Block.kind, Block.t) Hashtbl.t;
      (** (class size, kind) -> the young block being bump-filled *)
  mutable nursery_opened : int;
      (** young pages opened since the last collection (the nursery
          occupancy trigger for minor cycles) *)
  mutable dirty_index : int list;
      (** indices of possibly-dirty pages, so card scans walk the dirty
          subset instead of the whole arena; may hold stale entries,
          which readers skip by re-checking the card byte *)
}

exception Check_failure of string
(** Raised by the checking primitives when a pointer escapes its object. *)

exception Heap_exhausted of string
(** The structured out-of-memory outcome: a heap-limit overrun that
    survived the configured recovery, or an injected failpoint under
    the [Trap] policy.  Never raised when [heap_limit_words = 0] and no
    failpoints are set. *)

val default_config : unit -> config

val create : ?config:config -> unit -> t

val nursery_enabled : t -> bool
(** Is the bump-pointer nursery in service?  True on generational and
    incremental heaps with [config.nursery_pages > 0]; always false on
    stop-the-world heaps, which keep the seed allocator bit for bit. *)

val flush_nursery : t -> unit
(** Close out the nursery: wholly dead young pages return to the reclaim
    pool, surviving young pages are promoted in place (their free slots
    join the size-class free lists), and the bump cursors are sealed.
    The {!Incremental} collector calls this when a cycle completes; a
    no-op when the nursery is disabled or empty. *)

val add_root_range : t -> int -> int -> unit
(** Register a permanent root range [start, stop)] (scanned word-wise). *)

val class_size : int -> int
(** The size class an allocation request (slack included) rounds up to. *)

val max_small : int
(** Largest slot size served from the size-class free lists; anything
    bigger is a whole-pages large block. *)

val alloc : ?kind:Block.kind -> t -> int -> int
(** [alloc t n] returns the address of [n] bytes of zeroed storage (the
    paper's extra byte is added internally).  [kind] defaults to
    collectable, scanned storage.
    @raise Heap_exhausted when the heap limit blocks a needed growth
    (after emergency collection and retry under [Collect_expand]), or
    when a failpoint fires under [Trap]. *)

val base_of : t -> int -> int option
(** [GC_base]: map any address inside an allocated object to the object's
    base; [None] outside the heap, in free slots, or one before an
    object. *)

val extent_of : t -> int -> (int * int) option
(** Object extent [(base, rounded_size)] for an address inside an
    allocated object. *)

val note_store : t -> int -> int -> unit
(** [note_store t addr len]: the store write-barrier.  When the write
    lands inside an old collectable object, records its pages in the
    remembered set so the next minor cycle rescans them; writes to young
    objects, stacks, statics and registers need no card (minors scan all
    of those anyway).  A single branch (and no allocation) when the heap
    is not generational. *)

val page_is_dirty : t -> int -> bool
(** Is the card (page) holding [addr] in the remembered set? *)

val slot_age : t -> int -> int option
(** Minor collections the allocated object at [addr] has survived;
    [None] outside allocated objects.  Ages [>= config.promote_after]
    are the old generation. *)

val plausible_pointer : ?from_root:bool -> t -> int -> (Block.t * int) option
(** Conservative pointer identification for scanners: the block and slot
    index of the allocated object [v] points into, honouring
    [all_interior] (when it is off, interior pointers resolve only when
    [from_root]).  [None] for non-heap values and free slots.  Exposed
    for the {!Incremental} marker; ordinary clients use {!base_of}. *)

val iter_range_words : t -> int -> int -> (int -> int -> unit) -> unit
(** [iter_range_words t start stop f] calls [f addr word] for every
    aligned word overlapping [start, stop)] that lies inside the arena —
    the conservative scanners' word walk.  Exposed for {!Incremental}. *)

val free_list : t -> int -> Block.kind -> int list ref
(** The (created-on-demand) free list for a size class and block kind.
    Exposed for the {!Incremental} sweeper. *)

val abandon_cycle : t -> unit
(** Soundly abandon any in-flight incremental cycle: drop the gray stack
    and sweep cursor and return to [Idle] (mark bits are left for the
    next full collection's clear).  Every {!collect} does this first, so
    emergency, explicit and forced collections behave exactly as on a
    stop-the-world heap.  A no-op when no cycle is in flight. *)

val should_collect : t -> bool
(** Has the live-growth estimate since the last full collection crossed
    the (major) threshold? *)

val should_collect_minor : t -> bool
(** Has the allocation volume since any collection crossed the minor
    threshold?  Always [false] outside generational mode. *)

val collect :
  ?generation:generation ->
  ?extra_roots:int list ->
  ?extra_ranges:(int * int) list ->
  t ->
  int
(** Run a collection ([Major], a full stop-the-world cycle, by default;
    [Minor] scans only roots, young objects and dirty cards, and is
    honoured only on a generational heap).  [extra_roots] are word values
    scanned in addition to the registered ranges and uncollectable
    objects (the VM passes its register files); [extra_ranges] are
    per-collection root ranges (the VM passes the live prefix of its
    [Stack]-kind block).  Returns the number of objects freed. *)

val same_obj : t -> int -> int -> int
(** [GC_same_obj p q]: check that [p] points into (or one past) the object
    [q] points into, and return [p].  Non-heap [q] passes unchecked.
    @raise Check_failure when [p] escapes. *)

val pre_incr : t -> int -> int -> int
(** [GC_pre_incr slot delta]: [*slot += delta] with a {!same_obj} check;
    returns the new value. *)

val post_incr : t -> int -> int -> int
(** [GC_post_incr slot delta]: [*slot += delta] with a check; returns the
    old value. *)

val check_base : t -> int -> int
(** [GC_check_base v]: the Extensions-mode store discipline — a pointer
    into a collectable heap object must be its base.  Statics, stack and
    non-heap values pass.  Returns [v].
    @raise Check_failure on an interior heap pointer. *)

val check_range : t -> int -> int -> int
(** [GC_check_range p n]: a whole-structure access of [n] bytes at [p]
    must lie inside [p]'s heap object (the Debugging Applications
    section's "additional check").  Non-heap addresses pass.  Returns [p].
    @raise Check_failure on an overrun. *)

val valid_access : t -> int -> int -> bool
(** Is [addr, addr+len)] fully inside some allocated heap object?  Used by
    the VM to detect access to prematurely collected storage. *)

type violation = {
  v_rule : string;  (** which invariant family failed *)
  v_detail : string;
}
(** One heap-integrity finding, e.g. rule ["free-list"] with the offending
    address in the detail. *)

exception Heap_corruption of violation list
(** Raised by {!assert_integrity} so a corrupted heap surfaces as a
    structured report rather than silently continuing. *)

val pp_violation : Format.formatter -> violation -> unit

val check_integrity : t -> violation list
(** Validate page-map/block-header agreement, mark-bit consistency,
    free-list well-formedness and the one-extra-byte rule.  Returns the
    violations found (empty on a healthy heap). *)

val assert_integrity : t -> unit
(** @raise Heap_corruption if {!check_integrity} finds anything. *)

val live_summary : t -> int * int
(** Live collectable objects as [(count, requested_bytes)] — the final-heap
    fingerprint the differential harness diffs across builds. *)

val footprint : t -> int
(** Total arena footprint in bytes (what the VM's heap ceiling bounds). *)

val pp_stats : Format.formatter -> stats -> unit
