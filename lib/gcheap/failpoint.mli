(** Deterministic allocation-failure injection plans.

    Mirrors [Machine.Schedule]: a plan names the allocations that fail
    (by 1-based allocation ordinal), so every out-of-memory recovery
    path is reachable on demand and a failing run replays bit for bit.
    The heap consults the plan on every allocation; what a fired point
    does (trap or emergency-collect) is the heap's [oom_policy]. *)

type points = Bytes.t
(** A bit-set of allocation ordinals. *)

val no_points : points

val points_of_list : int list -> points

val points_mem : points -> int -> bool

val points_to_list : points -> int list

val points_cardinal : points -> int

type t =
  | Never  (** no injected failures: the chaos-off configuration *)
  | Nth of int  (** fail exactly the [n]th allocation *)
  | Every of int  (** fail every [n]th allocation *)
  | At of points  (** fail at exactly these allocation ordinals *)

val at_list : int list -> t

val fires : t -> int -> bool
(** [fires t ordinal]: does the plan fail the allocation with (1-based)
    ordinal [ordinal]? *)

val to_string : t -> string
(** ["none"], ["nth:K"], ["every:K"], ["at:{K1,K2}"]. *)

val of_string : string -> t option
(** Parse ["none"], ["nth:K"], ["every:K"], a bare ordinal ["K"]
    ([Nth K]), or a comma-separated point set ["K1,K2,..."]. *)
