(** Conservative mark-sweep collector in the style of [Boehm95].

    - size-class allocator over uniform-object pages ({!Block});
    - every object is allocated with at least one extra byte, so that
      legal one-past-the-end pointers still map to the right object
      (paper, "Source Checking": "we handle [one past the end] by
      allocating all heap objects with at least one extra byte");
    - conservative root scanning: any word whose value lies inside an
      allocated heap object (interior pointers included) marks that object;
    - swept objects are poisoned so that the VM detects premature
      reclamation as a hard fault — this is how the hazard experiments
      observe GC-unsafety;
    - [GC_base] / [GC_same_obj] / [GC_pre_incr] / [GC_post_incr]: the
      checking primitives of the paper's debugging mode;
    - an optional generational mode: objects carry a per-slot age, minor
      collections scan only young objects plus roots and the dirty cards
      of a page-granularity remembered set, and survivors are promoted
      after [promote_after] minor cycles.  Stop-the-world full collection
      remains the default and is bit-identical to the non-generational
      collector;
    - a page-segregated bump-pointer nursery for the generational and
      incremental modes: new small collectable objects are carved off
      young single-page blocks by a bump cursor (no per-object zeroing —
      pages are zeroed when claimed), whole-page cohorts age together,
      wholly dead nursery pages return to the reclaim pool, and pages
      whose cohort reaches [promote_after] are promoted in place (the
      collector is conservative, so objects can never move).  The
      remembered set then tracks only old-generation pages. *)

type gc_mode = Stw | Gen | Inc

let gc_mode_name = function Stw -> "stw" | Gen -> "gen" | Inc -> "inc"

let gc_mode_of_string = function
  | "stw" -> Some Stw
  | "gen" -> Some Gen
  | "inc" | "incremental" -> Some Inc
  | _ -> None

type generation = Minor | Major

type oom_policy = Trap | Collect_expand

let oom_policy_name = function
  | Trap -> "trap"
  | Collect_expand -> "collect-expand"

let oom_policy_of_string = function
  | "trap" -> Some Trap
  | "collect-expand" | "collect_expand" -> Some Collect_expand
  | _ -> None

type config = {
  mutable all_interior : bool;
      (** recognize interior pointers everywhere (the paper's default
          collector configuration); when false, interior pointers are valid
          only from roots — the "Extensions" section mode *)
  mutable poison : bool;  (** fill freed objects with 0xDB *)
  mutable gc_threshold : int;  (** collect after this many bytes allocated *)
  mutable generational : bool;
      (** enable minor collections and the store barrier's dirty cards *)
  mutable minor_threshold : int;
      (** bytes allocated between minor collections (generational mode) *)
  mutable promote_after : int;
      (** minor collections an object must survive to become old *)
  mutable heap_limit_words : int;
      (** hard arena ceiling in words; [0] (the default) is unlimited *)
  mutable oom_policy : oom_policy;
      (** what an allocation failure does: raise {!Heap_exhausted}
          immediately ([Trap]), or run an emergency full collection,
          retry, grow within the limit, and only then raise
          ([Collect_expand], Boehm's collect-then-expand) *)
  mutable incremental : bool;
      (** enable the SATB write barrier and allocate-black so an
          {!Incremental} marking cycle can stay in flight across
          mutator steps *)
  mutable pause_budget_words : int;
      (** words of collector work (scanning + sweeping) one incremental
          step may perform before yielding back to the mutator *)
  mutable nursery_pages : int;
      (** pages of bump-allocated nursery a generational or incremental
          heap may open between collections before a minor cycle is due;
          [0] disables the nursery (legacy shared-page allocation) *)
}

type stats = {
  mutable collections : int;
  mutable minor_collections : int;
  mutable bytes_allocated : int;
  mutable objects_allocated : int;
  mutable objects_freed : int;
  mutable bytes_freed : int;
  mutable words_scanned : int;
  mutable base_lookups : int;
  mutable same_obj_checks : int;
  mutable check_failures : int;
  mutable promoted : int;
  mutable cards_scanned : int;
  mutable emergency_collections : int;
  mutable injected_failures : int;
  mutable increments : int;
  mutable final_marks : int;
  mutable barrier_grays : int;
  mutable budget_overruns : int;
  mutable inc_max_pause_words : int;
  mutable abandoned_cycles : int;
}

(** Where an incremental marking cycle stands.  [Idle] outside a cycle;
    [Marking] while gray ranges remain to drain; [Sweeping] while swept
    blocks remain.  Only ever non-[Idle] on an [incremental] heap. *)
type phase = Idle | Marking | Sweeping

type t = {
  mem : Mem.t;
  map : Page_map.t;
  free_lists : (int * Block.kind, int list ref) Hashtbl.t;
      (** (class size, kind) -> free slot addresses *)
  mutable large_blocks : Block.t list;
  mutable all_blocks : Block.t list;  (** every block ever created *)
  config : config;
  stats : stats;
  mutable since_gc : int;
      (** live-growth estimate driving major collections: raw bytes
          allocated, credited with bytes reclaimed by minor collections
          (Boehm-style), reset by a full collection *)
  mutable since_minor : int;  (** bytes allocated since any collection *)
  mutable dirty : Bytes.t;
      (** remembered set: one byte per arena page (indexed by
          [addr lsr Mem.page_bits]), set by {!note_store} *)
  mutable roots : (int * int) list;
      (** extra permanent root ranges [start, stop) — e.g. the VM stack *)
  mutable on_free : (addr:int -> bytes:int -> unit) option;
      (** observer called for every object the sweeper reclaims *)
  mutable failpoints : Failpoint.t;
      (** injected allocation failures (chaos harness); [Never] costs
          one branch per allocation *)
  mutable on_oom : (unit -> unit) option;
      (** emergency-collection hook: the embedder (the VM) installs a
          closure that collects with its full root set; [None] falls
          back to collecting over the registered ranges only *)
  mutable free_pages : (int * int) list;
      (** reclaim pool: [(start, pages)] runs of pages retired from
          fully-empty blocks by the emergency path and from wholly dead
          nursery pages, sorted by start and coalesced; always empty on
          limit-free stop-the-world executions *)
  mutable phase : phase;
      (** incremental-cycle phase; [Idle] unless an {!Incremental} cycle
          is in flight *)
  mutable gray : (int * int) list;
      (** incremental mark stack: gray ranges [start, stop) still to
          scan, with partial push-back when a budget expires mid-range *)
  mutable sweep_pending : Block.t list;
      (** blocks the in-flight incremental cycle has yet to sweep *)
  mutable sweep_cursor : int;
      (** next slot to examine in the head of [sweep_pending] — lets a
          sweep slice stop mid-block exactly at the pause budget *)
  mutable young_blocks : Block.t list;
      (** nursery: the young single-page blocks currently in service
          (open bump targets plus sealed survivor cohorts) *)
  mutable aging_blocks : Block.t list;
      (** old-generation blocks that may hold still-young slots (free-list
          reuse restarts a slot at age 0), so a minor sweep can visit
          exactly the blocks where young objects can live *)
  nursery_cursors : (int * Block.kind, Block.t) Hashtbl.t;
      (** (class size, kind) -> the young block the bump allocator is
          currently filling *)
  mutable nursery_opened : int;
      (** young pages opened since the last collection — the nursery
          occupancy trigger for minor cycles *)
  mutable dirty_index : int list;
      (** indices of pages whose card byte may be set, so card scans and
          {!recompute_cards} walk the dirty subset instead of the whole
          arena; may hold stale (since-cleaned) entries, which readers
          skip by re-checking the byte *)
}

exception Check_failure of string
(** raised by GC_same_obj and friends in checked mode *)

exception Heap_exhausted of string
(** the structured out-of-memory outcome: the heap limit blocks a
    needed growth (after emergency collection and retry under
    [Collect_expand]), or an injected failure fires under [Trap] *)

let default_config () =
  {
    all_interior = true;
    poison = true;
    gc_threshold = 256 * 1024;
    generational = false;
    minor_threshold = 32 * 1024;
    promote_after = 2;
    heap_limit_words = 0;
    oom_policy = Collect_expand;
    incremental = false;
    pause_budget_words = 1024;
    nursery_pages = 8;
  }

let create ?(config = default_config ()) () =
  {
    mem = Mem.create ();
    map = Page_map.create ();
    free_lists = Hashtbl.create 32;
    large_blocks = [];
    all_blocks = [];
    config;
    stats =
      {
        collections = 0;
        minor_collections = 0;
        bytes_allocated = 0;
        objects_allocated = 0;
        objects_freed = 0;
        bytes_freed = 0;
        words_scanned = 0;
        base_lookups = 0;
        same_obj_checks = 0;
        check_failures = 0;
        promoted = 0;
        cards_scanned = 0;
        emergency_collections = 0;
        injected_failures = 0;
        increments = 0;
        final_marks = 0;
        barrier_grays = 0;
        budget_overruns = 0;
        inc_max_pause_words = 0;
        abandoned_cycles = 0;
      };
    since_gc = 0;
    since_minor = 0;
    dirty = Bytes.create 0;
    roots = [];
    on_free = None;
    failpoints = Failpoint.Never;
    on_oom = None;
    free_pages = [];
    phase = Idle;
    gray = [];
    sweep_pending = [];
    sweep_cursor = 0;
    young_blocks = [];
    aging_blocks = [];
    nursery_cursors = Hashtbl.create 16;
    nursery_opened = 0;
    dirty_index = [];
  }

(** Is the bump-pointer nursery in service?  Only the generational and
    incremental modes segregate generations; stop-the-world heaps keep
    the seed allocator bit for bit. *)
let nursery_enabled t =
  t.config.nursery_pages > 0
  && (t.config.generational || t.config.incremental)

let add_root_range t start stop = t.roots <- (start, stop) :: t.roots

(* ------------------------------------------------------------------ *)
(* Remembered set: dirty cards at page granularity                     *)
(* ------------------------------------------------------------------ *)

let page_index addr = addr lsr Mem.page_bits

let page_is_dirty t addr =
  let p = page_index addr in
  p < Bytes.length t.dirty && Bytes.get t.dirty p <> '\000'

let mark_page_dirty t p =
  if p >= Bytes.length t.dirty then begin
    let grown = Bytes.make (max (p + 1) ((2 * Bytes.length t.dirty) + 64)) '\000' in
    Bytes.blit t.dirty 0 grown 0 (Bytes.length t.dirty);
    t.dirty <- grown
  end;
  (* index a page only on the clean->dirty edge, so the index stays
     duplicate-free between recomputes *)
  if Bytes.get t.dirty p = '\000' then t.dirty_index <- p :: t.dirty_index;
  Bytes.set t.dirty p '\001'

(* Walk the dirty-page index, visiting each genuinely dirty page once
   (stale and duplicated entries are skipped).  This is what shrinks the
   card scans from O(arena pages) to O(dirty pages). *)
let iter_dirty_pages t f =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun p ->
      if
        (not (Hashtbl.mem seen p))
        && p < Bytes.length t.dirty
        && Bytes.get t.dirty p <> '\000'
      then begin
        Hashtbl.replace seen p ();
        f p
      end)
    t.dirty_index

(* Is the slot's object old (survived [promote_after] minor cycles)? *)
let is_old t blk i = Block.age blk i >= t.config.promote_after

(* Snapshot-at-the-beginning shading: a word about to be overwritten may
   hold the last reference to an object that was reachable when the
   in-flight incremental cycle took its snapshot.  Gray it (mark + push
   its range) before the store lands, so the cycle's mark set stays a
   superset of the snapshot's reachable set. *)
let gray_old_value t v =
  match Page_map.find t.map v with
  | None -> ()
  | Some blk -> (
      match Block.slot_of_addr blk v with
      | None -> ()
      | Some i ->
          if
            Block.is_allocated blk i
            && (t.config.all_interior || v = Block.slot_addr blk i)
            && not (Block.is_marked blk i)
          then begin
            Block.set_marked blk i true;
            t.stats.barrier_grays <- t.stats.barrier_grays + 1;
            if Block.scanned blk then
              t.gray <-
                ( Block.slot_addr blk i,
                  Block.slot_addr blk i + blk.Block.blk_obj_size )
                :: t.gray
          end)

(** The store write-barrier: record writes that land inside old
    collectable objects so their pages are rescanned by the next minor
    collection.  Stores anywhere else need no card — young objects are
    scanned by every minor anyway, and stacks, statics and registers are
    roots — and filtering them out matters: young and old slots share
    pages, so an unfiltered barrier would drag the old slots of every
    freshly-initialized page into every minor.  Writes that survive
    inside an object promoted later are covered by promotion dirtying
    the promoted slot's pages.  A single branch when generational mode
    is off; charges no VM cycles either way. *)
let note_store t addr len =
  (* SATB shading runs first: the generational branch below never writes
     memory, but keeping the read of the doomed old values ahead of any
     other bookkeeping makes the before-the-store contract obvious.  The
     aligned walk over-approximates [addr, addr+len) to whole words —
     shading a neighbouring word's value is merely conservative. *)
  (if t.phase = Marking && len > 0 then begin
     let a = ref (addr / 8 * 8) in
     let stop = addr + len in
     let limit = Mem.limit t.mem in
     while !a < stop do
       if !a + 8 <= limit then gray_old_value t (Mem.load_word t.mem !a);
       a := !a + 8
     done
   end);
  if t.config.generational && len > 0 then begin
    let last = addr + len - 1 in
    if nursery_enabled t then
      (* page-segregated generations make the barrier a page-kind test:
         young pages never need cards (every minor scans the whole
         nursery), and any other collectable page the write touches is
         dirtied outright — no slot or age resolution, and straddling
         (cross-object) writes are covered by construction because every
         touched page gets its card.  Over-dirtying a page whose old
         block holds a reused young slot is merely conservative:
         [recompute_cards] cleans it at the next collection. *)
      for p = page_index addr to page_index last do
        match Page_map.find t.map (p lsl Mem.page_bits) with
        | Some blk when Block.collectable blk && not blk.Block.blk_young ->
            mark_page_dirty t p
        | Some _ | None -> ()
      done
    else begin
      let dirty_if_old a =
        match Page_map.find t.map a with
        | Some blk when Block.collectable blk -> (
            match Block.slot_of_addr blk a with
            | Some i when Block.is_allocated blk i && is_old t blk i ->
                mark_page_dirty t (page_index a)
            | Some _ | None -> ())
        | Some _ | None -> ()
      in
      (* probe the first and last written byte, and the head of every
         page the write crosses — including the last page's head, so a
         store that straddles objects across a page boundary still
         dirties a page whose old object it touched mid-page *)
      dirty_if_old addr;
      if last <> addr then dirty_if_old last;
      for p = page_index addr + 1 to page_index last do
        dirty_if_old (p lsl Mem.page_bits)
      done
    end
  end

(** Age of the allocated object at [addr] in minor collections survived
    ([None] outside allocated objects). *)
let slot_age t addr =
  match Page_map.find t.map addr with
  | None -> None
  | Some blk -> (
      match Block.slot_of_addr blk addr with
      | Some i when Block.is_allocated blk i -> Some (Block.age blk i)
      | Some _ | None -> None)

(* ------------------------------------------------------------------ *)
(* Size classes                                                        *)
(* ------------------------------------------------------------------ *)

let granule = 16

let max_small = 2048

(* Class sizes: multiples of 16 up to 256, then powers of two to 2048. *)
let class_size n =
  if n <= 256 then (n + granule - 1) / granule * granule
  else
    let rec pow2 c = if c >= n then c else pow2 (c * 2) in
    pow2 512

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)
(* ------------------------------------------------------------------ *)

let free_list t cls kind =
  match Hashtbl.find_opt t.free_lists (cls, kind) with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace t.free_lists (cls, kind) l;
      l

(* ------------------------------------------------------------------ *)
(* Pointer identification                                              *)
(* ------------------------------------------------------------------ *)

(** [base_of t addr] maps any address inside an allocated heap object to the
    object's base address (GC_base).  Returns [None] for addresses outside
    the heap, in free slots, or one-before-the-object. *)
let base_of t addr =
  t.stats.base_lookups <- t.stats.base_lookups + 1;
  match Page_map.find t.map addr with
  | None -> None
  | Some blk -> (
      match Block.slot_of_addr blk addr with
      | None -> None
      | Some i -> if Block.is_allocated blk i then Some (Block.slot_addr blk i) else None)

(** Object extent [base, base + rounded size) for a heap address. *)
let extent_of t addr =
  match Page_map.find t.map addr with
  | None -> None
  | Some blk -> (
      match Block.slot_of_addr blk addr with
      | None -> None
      | Some i ->
          if Block.is_allocated blk i then
            Some (Block.slot_addr blk i, blk.Block.blk_obj_size)
          else None)

(** Is [v] a plausible pointer for root scanning?  Any value inside an
    allocated object qualifies when [all_interior] is set; otherwise only
    base pointers qualify (used when scanning heap objects in the
    "Extensions" mode). *)
let plausible_pointer ?(from_root = true) t v =
  match Page_map.find t.map v with
  | None -> None
  | Some blk -> (
      match Block.slot_of_addr blk v with
      | None -> None
      | Some i ->
          if not (Block.is_allocated blk i) then None
          else
            let base = Block.slot_addr blk i in
            if t.config.all_interior || from_root || v = base then Some (blk, i)
            else None)

(* ------------------------------------------------------------------ *)
(* Collection                                                          *)
(* ------------------------------------------------------------------ *)

(* Aligned word walk over [start, stop), as a conservative collector does.
   An unaligned range's last bytes do not fill a word: the word holding
   them is still scanned (a pointer's first bytes may sit there), provided
   it lies inside the arena. *)
let iter_range_words t start stop f =
  let a = ref ((start + 7) / 8 * 8) in
  while !a + 8 <= stop do
    f !a (Mem.load_word t.mem !a);
    a := !a + 8
  done;
  if !a < stop && !a + 8 <= Mem.limit t.mem then f !a (Mem.load_word t.mem !a)

(* Does any word of [start, stop) hold a (conservative) pointer to a young
   collectable object?  Same resolution rules as heap-object scanning. *)
let range_has_young_ref t start stop =
  let found = ref false in
  iter_range_words t start stop (fun _ v ->
      if not !found then
        match plausible_pointer ~from_root:false t v with
        | Some (blk, i) when Block.collectable blk -> found := not (is_old t blk i)
        | Some _ | None -> ());
  !found

let mark_and_trace ?(minor = false) t ~extra_roots ~extra_ranges =
  let stack = Stack.create () in
  let consider ~from_root v =
    match plausible_pointer ~from_root t v with
    | None -> ()
    | Some (blk, i) ->
        (* a minor cycle collects only the young generation: old objects
           are implicitly live, and references out of them are covered by
           the dirty cards scanned below *)
        if minor && Block.collectable blk && is_old t blk i then ()
        else if not (Block.is_marked blk i) then begin
          Block.set_marked blk i true;
          if Block.scanned blk then
            Stack.push (Block.slot_addr blk i, blk.Block.blk_obj_size) stack
        end
  in
  let scan_range ~from_root start stop =
    iter_range_words t start stop (fun _ v ->
        t.stats.words_scanned <- t.stats.words_scanned + 1;
        consider ~from_root v)
  in
  (* roots: explicit word values (the VM register file) ... *)
  List.iter (fun v -> consider ~from_root:true v) extra_roots;
  (* ... registered and per-collection ranges (the live stack prefix) ... *)
  List.iter (fun (s, e) -> scan_range ~from_root:true s e) t.roots;
  List.iter (fun (s, e) -> scan_range ~from_root:true s e) extra_ranges;
  (* ... and all uncollectable (statics-like) objects. *)
  List.iter
    (fun blk ->
      if Block.root_scanned blk then
        for i = 0 to blk.Block.blk_count - 1 do
          if Block.is_allocated blk i then begin
            Block.set_marked blk i true;
            let a = Block.slot_addr blk i in
            scan_range ~from_root:true a (a + blk.Block.blk_obj_size)
          end
        done)
    t.all_blocks;
  (* ... and, on a minor cycle, the old objects on dirty cards: the
     remembered set stands in for the unscanned rest of the old
     generation *)
  if minor then
    iter_dirty_pages t (fun p ->
        t.stats.cards_scanned <- t.stats.cards_scanned + 1;
        let page_start = p lsl Mem.page_bits in
        let page_stop = page_start + Mem.page_size in
        match Page_map.find t.map page_start with
        | Some blk when Block.collectable blk && Block.scanned blk ->
            for i = 0 to blk.Block.blk_count - 1 do
              if Block.is_allocated blk i && is_old t blk i then begin
                let s = max (Block.slot_addr blk i) page_start in
                let e =
                  min (Block.slot_addr blk i + blk.Block.blk_obj_size) page_stop
                in
                if s < e then scan_range ~from_root:false s e
              end
            done
        | Some _ | None -> ());
  (* stack blocks are never swept; mark them so sweeping logic is uniform *)
  List.iter
    (fun blk ->
      if not (Block.collectable blk) then
        for i = 0 to blk.Block.blk_count - 1 do
          if Block.is_allocated blk i then Block.set_marked blk i true
        done)
    t.all_blocks;
  (* trace *)
  while not (Stack.is_empty stack) do
    let start, len = Stack.pop stack in
    scan_range ~from_root:false start (start + len)
  done

(* Conservatively mark the pages of a slot dirty (used on promotion: the
   freshly old object may hold young pointers on cards that were clean
   while it was young and scanned unconditionally). *)
let dirty_slot_pages t blk i =
  let s = Block.slot_addr blk i in
  for p = page_index s to page_index (s + blk.Block.blk_obj_size - 1) do
    mark_page_dirty t p
  done

(* ------------------------------------------------------------------ *)
(* Reclaim pool plumbing and nursery page lifecycle                    *)
(* ------------------------------------------------------------------ *)

(* A page run leaving service must shed its cards: a pool page reused by
   a fresh block must not be born dirty, dragging its new slots into
   every minor until [recompute_cards] happens to clean it. *)
let clear_cards_in_run t lo pages =
  for p = page_index lo to page_index lo + pages - 1 do
    if p < Bytes.length t.dirty then Bytes.set t.dirty p '\000'
  done

(* Sort and coalesce adjacent pool runs so a multi-page request can be
   carved out of neighbouring single-page retirements. *)
let coalesce_pool t =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) t.free_pages in
  t.free_pages <-
    List.rev
      (List.fold_left
         (fun acc (s, p) ->
           match acc with
           | (ps, pp) :: rest when ps + (pp * Mem.page_size) = s ->
               (ps, pp + p) :: rest
           | _ -> (s, p) :: acc)
         [] sorted)

(* Drop the bump cursor if it points at [blk] (the block is leaving the
   nursery, by promotion or retirement). *)
let drop_cursor t blk =
  let key = (blk.Block.blk_obj_size, blk.Block.blk_kind) in
  match Hashtbl.find_opt t.nursery_cursors key with
  | Some b when b == blk -> Hashtbl.remove t.nursery_cursors key
  | Some _ | None -> ()

(* A wholly dead nursery page goes back to the reclaim pool: the page
   map forgets it and its (already swept) pages become claimable by any
   later block.  The caller coalesces the pool when the batch is done. *)
let retire_young_block t blk =
  drop_cursor t blk;
  Page_map.clear_block t.map blk;
  t.all_blocks <- List.filter (fun b -> not (b == blk)) t.all_blocks;
  t.young_blocks <- List.filter (fun b -> not (b == blk)) t.young_blocks;
  clear_cards_in_run t blk.Block.blk_start blk.Block.blk_pages;
  t.free_pages <- (blk.Block.blk_start, blk.Block.blk_pages) :: t.free_pages

(* Promote a surviving nursery page in place: the block joins the old
   generation (the collector is conservative, so survivors cannot be
   copied out), and its dead and never-bumped slots join the size-class
   free lists like any other old block's. *)
let promote_young_block t blk =
  drop_cursor t blk;
  blk.Block.blk_young <- false;
  blk.Block.blk_bump <- 0;
  t.young_blocks <- List.filter (fun b -> not (b == blk)) t.young_blocks;
  let fl = free_list t blk.Block.blk_obj_size blk.Block.blk_kind in
  for i = blk.Block.blk_count - 1 downto 0 do
    if not (Block.is_allocated blk i) then begin
      Block.set_age blk i 0;
      fl := Block.slot_addr blk i :: !fl
    end
  done

(* Seal the bump cursors and return wholly dead nursery pages to the
   pool.  Runs after every collection, so a completed cycle always
   leaves the nursery parseable: open bump regions never survive a
   collection, and dead cohorts never linger. *)
let retire_dead_young t =
  Hashtbl.reset t.nursery_cursors;
  t.nursery_opened <- 0;
  let dead =
    List.filter
      (fun blk ->
        let live = ref false in
        for i = 0 to blk.Block.blk_count - 1 do
          if Block.is_allocated blk i then live := true
        done;
        not !live)
      t.young_blocks
  in
  if dead <> [] then begin
    List.iter (fun blk -> retire_young_block t blk) dead;
    coalesce_pool t
  end

(** Close out the nursery entirely: dead young pages return to the pool
    and surviving young pages are promoted in place.  The incremental
    collector calls this when a cycle completes — its sliced sweep has
    no minor-cycle aging, so a finished cycle tenures what survived. *)
let flush_nursery t =
  if nursery_enabled t then begin
    retire_dead_young t;
    let survivors = t.young_blocks in
    List.iter
      (fun blk ->
        for i = 0 to blk.Block.blk_count - 1 do
          if Block.is_allocated blk i then begin
            t.stats.promoted <- t.stats.promoted + 1;
            if t.config.generational then begin
              Block.set_age blk i t.config.promote_after;
              dirty_slot_pages t blk i
            end
          end
        done;
        promote_young_block t blk)
      survivors
  end

let sweep ?(minor = false) t =
  let freed = ref 0 and freed_bytes = ref 0 in
  let sweep_block blk =
    if Block.collectable blk then
      for i = 0 to blk.Block.blk_count - 1 do
        if Block.is_allocated blk i then
          if minor && is_old t blk i then
            (* old objects are not collected by a minor cycle *)
            ()
          else if not (Block.is_marked blk i) then begin
            Block.set_allocated blk i false;
            (* age hygiene: a freed slot restarts at age 0, so whatever
               reallocates it gets a genuinely young object *)
            Block.set_age blk i 0;
            incr freed;
            freed_bytes := !freed_bytes + blk.Block.blk_req.(i);
            let addr = Block.slot_addr blk i in
            (match t.on_free with
            | Some f -> f ~addr ~bytes:blk.Block.blk_req.(i)
            | None -> ());
            if t.config.poison then
              Mem.fill t.mem addr blk.Block.blk_obj_size '\xDB';
            (* small-class slots return to their free list; large blocks
               (obj_size > max_small, even single-page ones) stay in
               [large_blocks] for whole-block reuse and must never leak
               onto a size-class list; nursery slots are bump-allocated
               and never reused in place, so young blocks stay off the
               free lists (their pages are reclaimed or promoted whole) *)
            if blk.Block.blk_obj_size <= max_small && not blk.Block.blk_young
            then begin
              let fl = free_list t blk.Block.blk_obj_size blk.Block.blk_kind in
              fl := addr :: !fl
            end
          end
          else if minor then begin
            (* young survivor: one minor cycle older *)
            Block.set_age blk i (Block.age blk i + 1);
            if is_old t blk i && not blk.Block.blk_young then begin
              t.stats.promoted <- t.stats.promoted + 1;
              dirty_slot_pages t blk i
            end
          end
      done
  in
  if minor && nursery_enabled t then begin
    (* segregated generations let a minor sweep touch only the blocks
       where young objects can live: the nursery pages themselves plus
       old blocks holding reused (age-restarted) slots *)
    let young = t.young_blocks in
    List.iter sweep_block young;
    List.iter sweep_block t.aging_blocks;
    (* nursery cohorts act per page: a page with no survivors returns to
       the reclaim pool; a page whose cohort has now survived
       [promote_after] minors is promoted in place *)
    let retired = ref false in
    List.iter
      (fun blk ->
        let survivors = ref 0 and cohort_age = ref 0 in
        for i = 0 to blk.Block.blk_count - 1 do
          if Block.is_allocated blk i then begin
            incr survivors;
            cohort_age := Block.age blk i
          end
        done;
        if !survivors = 0 then begin
          retire_young_block t blk;
          retired := true
        end
        else if !cohort_age >= t.config.promote_after then begin
          t.stats.promoted <- t.stats.promoted + !survivors;
          for i = 0 to blk.Block.blk_count - 1 do
            if Block.is_allocated blk i then dirty_slot_pages t blk i
          done;
          promote_young_block t blk
        end)
      young;
    if !retired then coalesce_pool t;
    (* an aging block with no young slot left drops out of the minor set *)
    t.aging_blocks <-
      List.filter
        (fun blk ->
          let has_young = ref false in
          for i = 0 to blk.Block.blk_count - 1 do
            if Block.is_allocated blk i && not (is_old t blk i) then
              has_young := true
          done;
          if not !has_young then blk.Block.blk_aging <- false;
          !has_young)
        t.aging_blocks
  end
  else List.iter sweep_block t.all_blocks;
  t.stats.objects_freed <- t.stats.objects_freed + !freed;
  t.stats.bytes_freed <- t.stats.bytes_freed + !freed_bytes;
  (!freed, !freed_bytes)

(* Clean every dirty card that no longer holds an old→young reference.
   Keeping exactly the cards that do maintains remembered-set
   completeness between collections: stores dirty their cards eagerly and
   ages only ever increase, so an old→young reference can appear on a
   clean card only through a store (barrier) or a promotion (which
   dirties the promoted slot's pages). *)
let recompute_cards t =
  let retained = ref [] in
  iter_dirty_pages t (fun p ->
      let page_start = p lsl Mem.page_bits in
      let page_stop = page_start + Mem.page_size in
      let needed = ref false in
      (match Page_map.find t.map page_start with
      | Some blk
        when Block.collectable blk && Block.scanned blk
             && not blk.Block.blk_young ->
          for i = 0 to blk.Block.blk_count - 1 do
            if
              (not !needed)
              && Block.is_allocated blk i
              && is_old t blk i
            then begin
              let s = max (Block.slot_addr blk i) page_start in
              let e =
                min (Block.slot_addr blk i + blk.Block.blk_obj_size) page_stop
              in
              if s < e && range_has_young_ref t s e then needed := true
            end
          done
      | Some _ | None -> ());
      if !needed then retained := p :: !retained
      else Bytes.set t.dirty p '\000');
  t.dirty_index <- !retained

(** Soundly abandon an in-flight incremental cycle: drop the gray stack
    and the sweep cursor and return to [Idle].  Mark bits are left as
    they are — every full collection starts by clearing them — so the
    heap is exactly what a stop-the-world collector expects.  A no-op
    outside a cycle. *)
let abandon_cycle t =
  if t.phase <> Idle then begin
    t.phase <- Idle;
    t.gray <- [];
    t.sweep_pending <- [];
    t.sweep_cursor <- 0;
    t.stats.abandoned_cycles <- t.stats.abandoned_cycles + 1
  end

(** Run a collection.  [extra_roots] are word values scanned in addition
    to the registered root ranges — the VM passes its register file here.
    [generation] defaults to [Major] (a full stop-the-world cycle);
    [Minor] is honoured only when the heap is generational.  Any
    in-flight incremental cycle is soundly abandoned first: emergency,
    explicit and forced collections must behave exactly as on a
    stop-the-world heap. *)
let collect ?(generation = Major) ?(extra_roots = []) ?(extra_ranges = []) t =
  abandon_cycle t;
  let minor = generation = Minor && t.config.generational in
  t.stats.collections <- t.stats.collections + 1;
  if minor then t.stats.minor_collections <- t.stats.minor_collections + 1;
  List.iter Block.clear_marks t.all_blocks;
  mark_and_trace ~minor t ~extra_roots ~extra_ranges;
  let freed, freed_bytes = sweep ~minor t in
  (* every completed collection seals the bump cursors (cohort pages must
     not mix allocation windows) and returns dead nursery pages to the
     pool, so emergency and forced full cycles always leave the nursery
     in a state the next cycle can parse *)
  if nursery_enabled t then retire_dead_young t;
  if t.config.generational then recompute_cards t;
  (* Boehm-style live-growth trigger: a major collection is due when the
     heap has *grown* by [gc_threshold] bytes, so bytes a minor cycle
     gives back are credited rather than counted toward the next major *)
  if minor then t.since_gc <- max 0 (t.since_gc - freed_bytes)
  else t.since_gc <- 0;
  t.since_minor <- 0;
  freed

(** Should the allocator trigger a (major) collection? *)
let should_collect t = t.since_gc >= t.config.gc_threshold

(** Should the allocator trigger a minor collection?  Never true outside
    generational mode.  With the nursery in service, filling the
    configured number of nursery pages is also a trigger: the minor cost
    tracks nursery occupancy, not just bytes. *)
let should_collect_minor t =
  t.config.generational
  && (t.since_minor >= t.config.minor_threshold
     || (nursery_enabled t && t.nursery_opened >= t.config.nursery_pages))

(* ------------------------------------------------------------------ *)
(* Allocation (under the heap ceiling)                                 *)
(* ------------------------------------------------------------------ *)

let heap_limit_bytes t =
  if t.config.heap_limit_words <= 0 then max_int
  else t.config.heap_limit_words * 8

(* Would growing the arena by [pages] fresh pages overrun the ceiling? *)
let growth_exceeds_limit t pages =
  Mem.limit t.mem + (pages * Mem.page_size) > heap_limit_bytes t

(* Retire every collectable block with no live slot: its slots leave
   their free list, the page map forgets its pages, and the page run
   joins the reclaim pool for reuse by any later block of any size
   class.  This is what lets an emergency collection rescue a *large*
   allocation whose pages are tied up in drained small-class blocks —
   without it, large requests can only reuse an exact-size freed large
   block, and the collect-expand policy would be no stronger than trap
   for them.  Runs only on the emergency path, so limit-free executions
   never see it. *)
let reclaim_empty_blocks t =
  let is_empty blk =
    Block.collectable blk
    &&
    let live = ref false in
    for i = 0 to blk.Block.blk_count - 1 do
      if Block.is_allocated blk i then live := true
    done;
    not !live
  in
  let retired, kept = List.partition is_empty t.all_blocks in
  if retired <> [] then begin
    t.all_blocks <- kept;
    t.large_blocks <-
      List.filter (fun b -> not (List.memq b retired)) t.large_blocks;
    (* nursery bookkeeping must not dangle: a retired young block leaves
       the young set and any bump cursor pointing at it *)
    t.young_blocks <-
      List.filter (fun b -> not (List.memq b retired)) t.young_blocks;
    t.aging_blocks <-
      List.filter (fun b -> not (List.memq b retired)) t.aging_blocks;
    List.iter
      (fun blk ->
        drop_cursor t blk;
        Page_map.clear_block t.map blk;
        let lo = blk.Block.blk_start in
        let hi = lo + (blk.Block.blk_pages * Mem.page_size) in
        if blk.Block.blk_obj_size <= max_small then begin
          let fl = free_list t blk.Block.blk_obj_size blk.Block.blk_kind in
          fl := List.filter (fun a -> a < lo || a >= hi) !fl
        end;
        clear_cards_in_run t lo blk.Block.blk_pages;
        t.free_pages <- (lo, blk.Block.blk_pages) :: t.free_pages)
      retired;
    coalesce_pool t
  end

(* Best-fit carve from the reclaim pool.  Reused pages are re-zeroed so
   a pool-served block is indistinguishable from fresh growth. *)
let take_pages t pages =
  let best = ref None in
  List.iter
    (fun (s, p) ->
      if p >= pages then
        match !best with
        | Some (_, bp) when bp <= p -> ()
        | _ -> best := Some (s, p))
    t.free_pages;
  match !best with
  | None -> None
  | Some (s, p) ->
      t.free_pages <- List.filter (fun (s', _) -> s' <> s) t.free_pages;
      if p > pages then
        t.free_pages <-
          (s + (pages * Mem.page_size), p - pages) :: t.free_pages;
      Mem.fill t.mem s (pages * Mem.page_size) '\000';
      (* defense in depth against stale cards: the run was cleaned when
         retired, but a reused page must never be born dirty *)
      clear_cards_in_run t s pages;
      Some s

(** The collect-expand policy's emergency collection: a full,
    mode-independent cycle.  Runs through the embedder's hook when one
    is installed (the VM supplies its register file and live stack
    prefix as roots there); standalone heaps collect over the
    registered root ranges.  Afterwards, fully-empty blocks are retired
    to the reclaim pool. *)
let emergency_collect t =
  t.stats.emergency_collections <- t.stats.emergency_collections + 1;
  (match t.on_oom with
  | Some f -> f ()
  | None -> ignore (collect ~generation:Major t));
  reclaim_empty_blocks t

(* Pages for a new block: the reclaim pool first (those pages are
   already inside the footprint, so the ceiling is irrelevant), then
   fresh growth under the ceiling. *)
let claim_pages t pages =
  match take_pages t pages with
  | Some start -> Some start
  | None ->
      if growth_exceeds_limit t pages then None
      else Some (Mem.grow_pages t.mem pages)

let exhausted t ~req ~pages =
  raise
    (Heap_exhausted
       (Printf.sprintf
          "heap exhausted: %d-byte allocation needs %d fresh page(s), \
           footprint %d of limit %d bytes (%d words, policy %s)"
          req pages (Mem.limit t.mem) (heap_limit_bytes t)
          t.config.heap_limit_words
          (oom_policy_name t.config.oom_policy)))

let new_small_block t cls kind start =
  let count = Mem.page_size / cls in
  let blk = Block.make ~start ~pages:1 ~obj_size:cls ~count ~kind in
  Page_map.set_block t.map blk;
  t.all_blocks <- blk :: t.all_blocks;
  let fl = free_list t cls kind in
  for i = count - 1 downto 0 do
    fl := Block.slot_addr blk i :: !fl
  done

(* The free list for (cls, kind) is empty: claim one page (reclaim pool
   or growth under the ceiling).  An emergency collection can refill
   the free list directly (so the retry needs no page at all) or retire
   empty blocks into the pool; only when neither helps does the
   allocation surface as a structured exhaustion. *)
let refill_small t cls kind fl =
  match claim_pages t 1 with
  | Some start -> new_small_block t cls kind start
  | None -> (
      match t.config.oom_policy with
      | Trap -> exhausted t ~req:cls ~pages:1
      | Collect_expand -> (
          emergency_collect t;
          if !fl = [] then
            match claim_pages t 1 with
            | Some start -> new_small_block t cls kind start
            | None -> exhausted t ~req:cls ~pages:1))

let alloc_large t ~req bytes kind =
  let pages = (bytes + Mem.page_size - 1) / Mem.page_size in
  (* reuse a freed large block of the right size if available *)
  let find_reusable () =
    List.find_opt
      (fun b ->
        b.Block.blk_pages = pages
        && b.Block.blk_kind = kind
        && not (Block.is_allocated b 0))
      t.large_blocks
  in
  let fresh start =
    let b =
      Block.make ~start ~pages ~obj_size:(pages * Mem.page_size) ~count:1
        ~kind
    in
    Page_map.set_block t.map b;
    t.large_blocks <- b :: t.large_blocks;
    t.all_blocks <- b :: t.all_blocks;
    b
  in
  let blk =
    match find_reusable () with
    | Some b -> b
    | None -> (
        match claim_pages t pages with
        | Some start -> fresh start
        | None -> (
            (* the needed pages are unavailable: trap, or collect,
               retry whole-block reuse and the (now possibly refilled)
               reclaim pool, and only then give up *)
            match t.config.oom_policy with
            | Trap -> exhausted t ~req ~pages
            | Collect_expand -> (
                emergency_collect t;
                match find_reusable () with
                | Some b -> b
                | None -> (
                    match claim_pages t pages with
                    | Some start -> fresh start
                    | None -> exhausted t ~req ~pages))))
  in
  Block.set_allocated blk 0 true;
  Block.set_age blk 0 0;
  (* allocate-black: objects born during an incremental cycle survive it
     unconditionally (they cannot hold the only path to snapshot-live
     data, and the sliced sweeper must not free them) *)
  if t.phase <> Idle then Block.set_marked blk 0 true;
  (* large objects live outside the nursery but are born young: with the
     segregated minor sweep, their block must join the aging set so
     minors can age and promote them *)
  if t.config.generational && nursery_enabled t && not blk.Block.blk_aging
  then begin
    blk.Block.blk_aging <- true;
    t.aging_blocks <- blk :: t.aging_blocks
  end;
  blk.Block.blk_req.(0) <- req;
  Mem.fill t.mem blk.Block.blk_start (pages * Mem.page_size) '\000';
  blk.Block.blk_start

(* Open a fresh nursery page for (cls, kind): a young single-page block
   the bump cursor fills front to back.  The page arrived zeroed (fresh
   growth is zeroed; pool reuse re-zeroes), which is what lets the bump
   fast path skip the per-object fill. *)
let open_young_block t cls kind start =
  let count = Mem.page_size / cls in
  let blk = Block.make ~start ~pages:1 ~obj_size:cls ~count ~kind in
  blk.Block.blk_young <- true;
  Page_map.set_block t.map blk;
  t.all_blocks <- blk :: t.all_blocks;
  t.young_blocks <- blk :: t.young_blocks;
  t.nursery_opened <- t.nursery_opened + 1;
  Hashtbl.replace t.nursery_cursors (cls, kind) blk;
  blk

(* Nursery allocation for small collectable objects: the fast path is a
   bump (slot index increment + limit check) with no page-map lookup, no
   slot division and no fill.  When the current page is full, freed
   old-generation slots are drained from the size-class free list before
   any new page is opened — reuse keeps segregation from costing
   footprint — and only then is a fresh young page claimed (reclaim pool
   first, then growth under the ceiling, with the same collect-expand
   fallback as the legacy path). *)
let rec alloc_nursery t ~req cls kind =
  match Hashtbl.find_opt t.nursery_cursors (cls, kind) with
  | Some blk when blk.Block.blk_bump < blk.Block.blk_count ->
      let i = blk.Block.blk_bump in
      blk.Block.blk_bump <- i + 1;
      Block.set_allocated blk i true;
      (* ages on a fresh block are already 0 and bump slots are never
         reused, so no age reset is needed here *)
      if t.phase <> Idle then Block.set_marked blk i true;
      blk.Block.blk_req.(i) <- req;
      Block.slot_addr blk i
  | _ -> (
      let fl = free_list t cls kind in
      match !fl with
      | addr :: rest ->
          fl := rest;
          (match Page_map.find t.map addr with
          | Some blk ->
              let i = Option.get (Block.slot_of_addr blk addr) in
              Block.set_allocated blk i true;
              (* the reused slot is born young again *)
              Block.set_age blk i 0;
              if t.phase <> Idle then Block.set_marked blk i true;
              blk.Block.blk_req.(i) <- req;
              if t.config.generational && not blk.Block.blk_aging then begin
                blk.Block.blk_aging <- true;
                t.aging_blocks <- blk :: t.aging_blocks
              end
          | None -> assert false);
          Mem.fill t.mem addr cls '\000';
          addr
      | [] -> (
          match claim_pages t 1 with
          | Some start ->
              ignore (open_young_block t cls kind start);
              alloc_nursery t ~req cls kind
          | None -> (
              match t.config.oom_policy with
              | Trap -> exhausted t ~req ~pages:1
              | Collect_expand -> (
                  emergency_collect t;
                  (* the emergency cycle sealed the cursors and may have
                     refilled the free list or the reclaim pool; retry
                     the slow path once before giving up *)
                  match !fl with
                  | _ :: _ -> alloc_nursery t ~req cls kind
                  | [] -> (
                      match claim_pages t 1 with
                      | Some start ->
                          ignore (open_young_block t cls kind start);
                          alloc_nursery t ~req cls kind
                      | None -> exhausted t ~req ~pages:1)))))

(** Allocate [bytes] (plus the mandatory slack byte) of zeroed storage.

    @raise Heap_exhausted when the heap limit blocks a needed growth
    (immediately under [Trap]; only after an emergency collection and
    retry under [Collect_expand]), or when an injected failure plan
    fires under [Trap]. *)
let alloc ?(kind = Block.Normal) t bytes =
  let bytes = max bytes 1 in
  t.stats.bytes_allocated <- t.stats.bytes_allocated + bytes;
  t.stats.objects_allocated <- t.stats.objects_allocated + 1;
  t.since_gc <- t.since_gc + bytes;
  t.since_minor <- t.since_minor + bytes;
  (* deterministic failure injection, keyed on the allocation ordinal:
     a fired point behaves exactly like a growth the ceiling blocked *)
  if Failpoint.fires t.failpoints t.stats.objects_allocated then begin
    t.stats.injected_failures <- t.stats.injected_failures + 1;
    match t.config.oom_policy with
    | Trap ->
        raise
          (Heap_exhausted
             (Printf.sprintf
                "heap exhausted: injected failure at allocation #%d (%d \
                 bytes, policy trap)"
                t.stats.objects_allocated bytes))
    | Collect_expand -> emergency_collect t
  end;
  let with_slack = bytes + 1 in
  if with_slack > max_small then alloc_large t ~req:bytes with_slack kind
  else if
    (match kind with
    | Block.Normal | Block.Atomic -> true
    | Block.Uncollectable | Block.Stack -> false)
    && nursery_enabled t
  then alloc_nursery t ~req:bytes (class_size with_slack) kind
  else begin
    let cls = class_size with_slack in
    let fl = free_list t cls kind in
    (if !fl = [] then refill_small t cls kind fl);
    match !fl with
    | [] -> assert false
    | addr :: rest ->
        fl := rest;
        (match Page_map.find t.map addr with
        | Some blk ->
            let i = Option.get (Block.slot_of_addr blk addr) in
            Block.set_allocated blk i true;
            Block.set_age blk i 0;
            (* allocate-black during an in-flight incremental cycle *)
            if t.phase <> Idle then Block.set_marked blk i true;
            blk.Block.blk_req.(i) <- bytes
        | None -> assert false);
        Mem.fill t.mem addr cls '\000';
        addr
  end

(* ------------------------------------------------------------------ *)
(* Checking primitives (debugging mode runtime)                        *)
(* ------------------------------------------------------------------ *)

let fail t fmt =
  Format.kasprintf
    (fun s ->
      t.stats.check_failures <- t.stats.check_failures + 1;
      raise (Check_failure s))
    fmt

(** [GC_same_obj p q]: checks that [p] and [q] point into the same heap
    object (up to the collector's size rounding) and returns [p].  Non-heap
    pointers are ignored, matching the paper: only heap pointers are
    checked. *)
let same_obj t p q =
  t.stats.same_obj_checks <- t.stats.same_obj_checks + 1;
  let bq = base_of t q in
  (match bq with
  | None -> () (* q is not a heap pointer: nothing to check *)
  | Some base -> (
      match extent_of t q with
      | None -> assert false
      | Some (_, size) ->
          (* p may legally point one past the end; the slack byte puts that
             address inside the rounded object, but be explicit anyway. *)
          if p < base || p > base + size then
            fail t
              "GC_same_obj: %#x escapes object [%#x,+%d) (derived from %#x)"
              p base size q));
  p

(** [GC_pre_incr pp delta]: *pp += delta with a same-object check; returns
    the new value (the checked expansion of [++p] and [p += delta]). *)
let pre_incr t mem_addr delta =
  let old = Mem.load_word t.mem mem_addr in
  let fresh = old + delta in
  ignore (same_obj t fresh old);
  Mem.store_word t.mem mem_addr fresh;
  fresh

(** [GC_post_incr pp delta]: *pp += delta with a check; returns the old
    value (the checked expansion of [p++]). *)
let post_incr t mem_addr delta =
  let old = Mem.load_word t.mem mem_addr in
  let fresh = old + delta in
  ignore (same_obj t fresh old);
  Mem.store_word t.mem mem_addr fresh;
  old

(** [GC_check_base v]: the Extensions-mode store discipline — a heap
    pointer stored into the heap or statics must address the base of its
    object.  Non-heap values pass unchecked; returns [v]. *)
let check_base t v =
  t.stats.same_obj_checks <- t.stats.same_obj_checks + 1;
  (match Page_map.find t.map v with
  | Some blk when Block.collectable blk -> (
      match Block.slot_of_addr blk v with
      | Some i when Block.is_allocated blk i ->
          let b = Block.slot_addr blk i in
          if b <> v then
            fail t
              "GC_check_base: interior pointer %#x (base %#x) stored to \
               memory in base-only mode"
              v b
      | Some _ | None -> ())
  | Some _ | None -> () (* statics/stack and non-heap values are exempt *));
  v

(** [GC_check_range p n]: the "additional check" of the paper's Debugging
    Applications section — a whole-structure access of [n] bytes at [p]
    must lie entirely within [p]'s heap object.  Non-heap addresses pass
    (stack and statics are not checked, as in the paper).  Returns [p]. *)
let check_range t p n =
  t.stats.same_obj_checks <- t.stats.same_obj_checks + 1;
  (match extent_of t p with
  | Some (base, size) ->
      if p + n > base + size then
        fail t
          "GC_check_range: %d-byte structure access at %#x overruns object \
           [%#x,+%d)"
          n p base size
  | None -> ());
  p

(** Is [addr, addr+len) fully inside some allocated heap object?  The VM
    uses this to detect access to swept (prematurely collected) objects. *)
let valid_access t addr len =
  match extent_of t addr with
  | Some (base, size) -> addr + len <= base + size
  | None -> false

(* ------------------------------------------------------------------ *)
(* Heap-integrity sanitizer                                            *)
(* ------------------------------------------------------------------ *)

type violation = {
  v_rule : string;  (** which invariant family failed *)
  v_detail : string;
}

exception Heap_corruption of violation list

let pp_violation fmt v = Format.fprintf fmt "[%s] %s" v.v_rule v.v_detail

(** Validate every structural invariant the allocator and collector rely
    on.  Returns the violations found (empty on a healthy heap); collection
    correctness experiments run this after every collection.

    Invariant families:
    - [block-header]: descriptor fields are internally consistent;
    - [page-map]: every page of every block maps back to that block, and
      the map holds no stray blocks;
    - [mark-bits]: a mark bit is only ever set on an allocated slot;
    - [free-list]: free lists hold exactly the free slots of small blocks,
      once each, at slot-base addresses of the right class and kind;
    - [slack-byte]: every allocated object keeps the paper's one extra
      byte ([req] strictly below the rounded slot size);
    - [remembered-set] (generational mode only): every old→young
      reference lies on a dirty card, so a minor collection cannot miss
      it. *)
let check_integrity t : violation list =
  let out = ref [] in
  let report rule fmt =
    Format.kasprintf
      (fun s -> out := { v_rule = rule; v_detail = s } :: !out)
      fmt
  in
  (* block headers and page-map agreement *)
  List.iter
    (fun blk ->
      if blk.Block.blk_obj_size <= 0 || blk.Block.blk_count <= 0 then
        report "block-header" "block %#x: degenerate geometry (%d x %d)"
          blk.Block.blk_start blk.Block.blk_count blk.Block.blk_obj_size;
      if blk.Block.blk_start land (Mem.page_size - 1) <> 0 then
        report "block-header" "block %#x is not page-aligned"
          blk.Block.blk_start;
      if
        blk.Block.blk_count * blk.Block.blk_obj_size
        > blk.Block.blk_pages * Mem.page_size
      then
        report "block-header"
          "block %#x: %d objects of %d bytes overflow %d page(s)"
          blk.Block.blk_start blk.Block.blk_count blk.Block.blk_obj_size
          blk.Block.blk_pages;
      for pg = 0 to blk.Block.blk_pages - 1 do
        let addr = blk.Block.blk_start + (pg * Mem.page_size) in
        match Page_map.find t.map addr with
        | Some b when b == blk -> ()
        | Some b ->
            report "page-map" "page %#x of block %#x maps to block %#x"
              addr blk.Block.blk_start b.Block.blk_start
        | None ->
            report "page-map" "page %#x of block %#x is unmapped" addr
              blk.Block.blk_start
      done)
    t.all_blocks;
  (* no stray blocks in the page map *)
  let known = Hashtbl.create 64 in
  List.iter (fun b -> Hashtbl.replace known b.Block.blk_start ()) t.all_blocks;
  Page_map.iter_blocks t.map (fun b ->
      if not (Hashtbl.mem known b.Block.blk_start) then
        report "page-map" "stray block %#x registered in the page map"
          b.Block.blk_start);
  (* per-slot invariants: mark bits and the one-extra-byte rule *)
  List.iter
    (fun blk ->
      for i = 0 to blk.Block.blk_count - 1 do
        if Block.is_marked blk i && not (Block.is_allocated blk i) then
          report "mark-bits" "free slot %#x carries a mark bit"
            (Block.slot_addr blk i);
        if Block.is_allocated blk i then begin
          let req = blk.Block.blk_req.(i) in
          if req < 0 || req >= blk.Block.blk_obj_size then
            report "slack-byte"
              "object %#x: %d requested byte(s) leave no slack in a \
               %d-byte slot"
              (Block.slot_addr blk i) req blk.Block.blk_obj_size
        end
      done)
    t.all_blocks;
  (* free-list soundness *)
  let seen_free = Hashtbl.create 256 in
  Hashtbl.iter
    (fun (cls, kind) fl ->
      List.iter
        (fun addr ->
          if Hashtbl.mem seen_free addr then
            report "free-list" "slot %#x appears on a free list twice" addr
          else Hashtbl.replace seen_free addr ();
          match Page_map.find t.map addr with
          | None -> report "free-list" "entry %#x is not on a heap page" addr
          | Some blk -> (
              if blk.Block.blk_obj_size <> cls then
                report "free-list"
                  "entry %#x on the %d-byte list, but its block holds \
                   %d-byte objects"
                  addr cls blk.Block.blk_obj_size;
              if blk.Block.blk_kind <> kind then
                report "free-list" "entry %#x has the wrong block kind" addr;
              if blk.Block.blk_young then
                report "free-list" "entry %#x lies on a nursery page" addr;
              match Block.slot_of_addr blk addr with
              | Some i when Block.slot_addr blk i = addr ->
                  if Block.is_allocated blk i then
                    report "free-list" "allocated slot %#x is on a free list"
                      addr
              | Some _ | None ->
                  report "free-list" "entry %#x is not a slot base" addr))
        !fl)
    t.free_lists;
  (* free-list completeness: every free small-class slot is findable —
     except on nursery pages, whose slots are bump-allocated and only
     join the free lists when the page is promoted *)
  List.iter
    (fun blk ->
      if blk.Block.blk_obj_size <= max_small && not blk.Block.blk_young then
        for i = 0 to blk.Block.blk_count - 1 do
          if not (Block.is_allocated blk i) then begin
            let addr = Block.slot_addr blk i in
            if not (Hashtbl.mem seen_free addr) then
              report "free-list" "free slot %#x is on no free list" addr
          end
        done)
    t.all_blocks;
  (* nursery invariants: young blocks are collectable single-page bump
     regions, the cursor stays within bounds, nothing past the cursor
     was ever allocated, and the young set is exactly the young blocks *)
  List.iter
    (fun blk ->
      if blk.Block.blk_young then begin
        if not (Block.collectable blk) then
          report "nursery" "young block %#x is not collectable"
            blk.Block.blk_start;
        if blk.Block.blk_pages <> 1 then
          report "nursery" "young block %#x spans %d pages"
            blk.Block.blk_start blk.Block.blk_pages;
        if blk.Block.blk_bump < 0 || blk.Block.blk_bump > blk.Block.blk_count
        then
          report "nursery" "young block %#x: bump %d outside [0,%d]"
            blk.Block.blk_start blk.Block.blk_bump blk.Block.blk_count;
        for i = max 0 blk.Block.blk_bump to blk.Block.blk_count - 1 do
          if Block.is_allocated blk i || Block.is_marked blk i then
            report "nursery"
              "young block %#x: slot %d at or past the bump cursor (%d) is \
               in use"
              blk.Block.blk_start i blk.Block.blk_bump
        done;
        if not (List.memq blk t.young_blocks) then
          report "nursery" "young block %#x is missing from the young set"
            blk.Block.blk_start
      end)
    t.all_blocks;
  List.iter
    (fun blk ->
      if not blk.Block.blk_young then
        report "nursery" "old block %#x lingers in the young set"
          blk.Block.blk_start)
    t.young_blocks;
  (* remembered-set completeness: minor collections scan only dirty
     cards of the old generation, so an old→young reference on a clean
     card would let a minor cycle reclaim a live object *)
  if t.config.generational then
    List.iter
      (fun blk ->
        if Block.collectable blk && Block.scanned blk then
          for i = 0 to blk.Block.blk_count - 1 do
            if Block.is_allocated blk i && is_old t blk i then begin
              let s = Block.slot_addr blk i in
              iter_range_words t s (s + blk.Block.blk_obj_size) (fun a v ->
                  let young =
                    match plausible_pointer ~from_root:false t v with
                    | Some (b, j) when Block.collectable b -> not (is_old t b j)
                    | Some _ | None -> false
                  in
                  if young && not (page_is_dirty t a) then
                    report "remembered-set"
                      "old object %#x holds young pointer %#x at %#x on a \
                       clean card"
                      s v a)
            end
          done)
      t.all_blocks;
  List.rev !out

(** Run {!check_integrity} and raise {!Heap_corruption} on any finding. *)
let assert_integrity t =
  match check_integrity t with [] -> () | vs -> raise (Heap_corruption vs)

(** Live collectable objects: [(count, requested_bytes)].  Deterministic
    across build configurations for the same program semantics, so the
    differential harness can diff final heaps. *)
let live_summary t =
  let objs = ref 0 and bytes = ref 0 in
  List.iter
    (fun blk ->
      if Block.collectable blk then
        for i = 0 to blk.Block.blk_count - 1 do
          if Block.is_allocated blk i then begin
            incr objs;
            bytes := !bytes + blk.Block.blk_req.(i)
          end
        done)
    t.all_blocks;
  (!objs, !bytes)

(** Total arena footprint in bytes (the VM's heap resource ceiling is
    checked against this). *)
let footprint t = Mem.limit t.mem

let pp_stats fmt s =
  Format.fprintf fmt
    "collections=%d (minor=%d) allocated=%d objs (%d bytes) freed=%d objs \
     (%d bytes) words_scanned=%d base_lookups=%d same_obj=%d failures=%d \
     promoted=%d cards_scanned=%d emergency=%d injected_failures=%d \
     increments=%d final_marks=%d barrier_grays=%d budget_overruns=%d \
     max_pause_words=%d abandoned=%d"
    s.collections s.minor_collections s.objects_allocated s.bytes_allocated
    s.objects_freed s.bytes_freed s.words_scanned s.base_lookups
    s.same_obj_checks s.check_failures s.promoted s.cards_scanned
    s.emergency_collections s.injected_failures s.increments s.final_marks
    s.barrier_grays s.budget_overruns s.inc_max_pause_words s.abandoned_cycles
