(** Deterministic allocation-failure injection.

    The chaos harness needs every out-of-memory recovery path to be
    exercisable on demand, exactly as the GC-schedule injector makes
    every collection point reachable: a failure plan names the failing
    allocations outright (by allocation ordinal), so a failing run is
    reproducible bit for bit and a search over failure points is a loop
    over plans.  The representation mirrors [Machine.Schedule]: explicit
    point sets are a bit-set over ordinals.

    Ordinals are 1-based: point [k] means "the [k]th allocation the heap
    performs fails". *)

type points = Bytes.t
(** A bit-set of allocation ordinals. *)

let no_points : points = Bytes.empty

let points_of_list (l : int list) : points =
  let m = List.fold_left max (-1) l in
  if m < 0 then no_points
  else begin
    let b = Bytes.make ((m / 8) + 1) '\000' in
    List.iter
      (fun i ->
        if i >= 0 then
          Bytes.set b (i / 8)
            (Char.chr (Char.code (Bytes.get b (i / 8)) lor (1 lsl (i mod 8)))))
      l;
    b
  end

let points_mem (b : points) i =
  i >= 0
  && i / 8 < Bytes.length b
  && Char.code (Bytes.get b (i / 8)) land (1 lsl (i mod 8)) <> 0

let points_to_list (b : points) =
  let acc = ref [] in
  for i = (8 * Bytes.length b) - 1 downto 0 do
    if points_mem b i then acc := i :: !acc
  done;
  !acc

let points_cardinal b = List.length (points_to_list b)

type t =
  | Never  (** no injected failures: the chaos-off configuration *)
  | Nth of int  (** fail exactly the [n]th allocation *)
  | Every of int  (** fail every [n]th allocation *)
  | At of points  (** fail at exactly these allocation ordinals *)

let at_list l = At (points_of_list l)

(** Does the plan fail the allocation with (1-based) ordinal [ordinal]? *)
let fires t ordinal =
  match t with
  | Never -> false
  | Nth n -> ordinal = n
  | Every n -> n > 0 && ordinal mod n = 0
  | At pts -> points_mem pts ordinal

let to_string = function
  | Never -> "none"
  | Nth n -> Printf.sprintf "nth:%d" n
  | Every n -> Printf.sprintf "every:%d" n
  | At pts -> (
      match points_to_list pts with
      | [] -> "at:{}"
      | l ->
          Printf.sprintf "at:{%s}"
            (String.concat "," (List.map string_of_int l)))

(** Parse a plan: ["none"], ["nth:K"], ["every:K"], ["at:{K1,K2}"] (the
    {!to_string} form, so printed plans replay verbatim), a single
    ordinal ["K"] (shorthand for [Nth K]), or a bare comma-separated
    ordinal list ["K1,K2,..."]. *)
let of_string s =
  let int_of s = int_of_string_opt (String.trim s) in
  let point_set s =
    match String.split_on_char ',' s with
    | [ "" ] -> Some (At no_points)
    | parts ->
        let pts = List.map int_of parts in
        if List.exists Option.is_none pts then None
        else Some (at_list (List.map Option.get pts))
  in
  match String.trim s with
  | "none" | "" -> Some Never
  | s when String.length s > 4 && String.sub s 0 4 = "nth:" ->
      Option.map (fun n -> Nth n) (int_of (String.sub s 4 (String.length s - 4)))
  | s when String.length s > 6 && String.sub s 0 6 = "every:" ->
      Option.map
        (fun n -> Every n)
        (int_of (String.sub s 6 (String.length s - 6)))
  | s
    when String.length s >= 5
         && String.sub s 0 4 = "at:{"
         && s.[String.length s - 1] = '}' ->
      point_set (String.sub s 4 (String.length s - 5))
  | s -> (
      match String.split_on_char ',' s with
      | [ one ] -> Option.map (fun n -> Nth n) (int_of one)
      | _ -> point_set s)
