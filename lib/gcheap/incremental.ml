(** Incremental snapshot-at-the-beginning marking over {!Heap}.

    A cycle is a sequence of budget-bounded *steps* the embedder runs at
    its GC points (the paper's call-site-only collection, §5 opt. 4, is
    what makes those points safe to suspend and resume in):

    - the first step takes the snapshot: it clears all mark bits and
      atomically scans every root (caller-supplied word values, the
      registered ranges, the per-step extra ranges, and the
      root-scanned uncollectable blocks), pushing gray ranges instead
      of draining them;
    - marking steps pop gray ranges and scan them conservatively, up to
      [config.pause_budget_words] words of work per step, pushing the
      unscanned tail of a range back when the budget expires mid-range;
    - once the gray stack drains, the same step finalizes the mark
      atomically: the caller's root *values* are re-scanned (heap,
      statics and stack stores are covered by the SATB barrier for the
      whole cycle — see {!Heap.note_store} — so only the barrier-free
      register file can have picked up pointers the snapshot trace
      missed) and the gray stack is drained to empty.  Mark bits are
      monotone within a cycle and objects allocated during it are born
      black, so the outstanding work is bounded by the snapshot's
      object population and finalization terminates;
    - sweeping steps then free unmarked slots block by block under the
      same budget, and the cycle completes when no block remains.

    The mutator's side of the bargain is in {!Heap}: the store barrier
    grays overwritten old values while [phase = Marking], allocation
    marks new objects while a cycle is in flight, and every full
    collection ({!Heap.collect} — emergency, explicit, forced or final)
    soundly abandons the cycle first. *)

open Heap

let active t = t.phase <> Idle

(* Conservative mark: unmarked targets turn gray (marked + range pushed
   for scanned blocks).  Identical resolution rules to the STW marker. *)
let consider t ~from_root v =
  match plausible_pointer ~from_root t v with
  | None -> ()
  | Some (blk, i) ->
      if not (Block.is_marked blk i) then begin
        Block.set_marked blk i true;
        if Block.scanned blk then
          t.gray <-
            ( Block.slot_addr blk i,
              Block.slot_addr blk i + blk.Block.blk_obj_size )
            :: t.gray
      end

(* Un-interruptible range scan (root snapshot / finalization). *)
let scan_atomic t ~from_root start stop ~spent =
  iter_range_words t start stop (fun _ v ->
      t.stats.words_scanned <- t.stats.words_scanned + 1;
      incr spent;
      consider t ~from_root v)

(* Budget-bounded range scan; returns the resume address when the budget
   expires mid-range, [None] when the range completed.  The trailing
   unaligned tail is scanned like {!Heap.iter_range_words} does. *)
let scan_budgeted t start stop ~spent ~budget =
  let a = ref ((start + 7) / 8 * 8) in
  let resume = ref None in
  while !resume = None && !a + 8 <= stop do
    if !spent >= budget then resume := Some !a
    else begin
      t.stats.words_scanned <- t.stats.words_scanned + 1;
      incr spent;
      consider t ~from_root:false (Mem.load_word t.mem !a);
      a := !a + 8
    end
  done;
  (if !resume = None && !a < stop && !a + 8 <= Mem.limit t.mem then
     if !spent >= budget then resume := Some !a
     else begin
       t.stats.words_scanned <- t.stats.words_scanned + 1;
       incr spent;
       consider t ~from_root:false (Mem.load_word t.mem !a)
     end);
  !resume

let rec drain t ~spent ~budget =
  if !spent < budget then
    match t.gray with
    | [] -> ()
    | (s, e) :: rest ->
        t.gray <- rest;
        (match scan_budgeted t s e ~spent ~budget with
        | Some a -> t.gray <- (a, e) :: t.gray
        | None -> ());
        drain t ~spent ~budget

(* The snapshot: clear marks, then scan every root before the mutator
   runs again.  Atomic by construction — a root scan sliced across
   steps would let a white pointer migrate from an unscanned register
   into an already-black object, which the SATB barrier (it grays
   *overwritten* values, not stored ones) cannot catch. *)
let start_cycle t ~extra_roots ~extra_ranges ~spent =
  List.iter Block.clear_marks t.all_blocks;
  t.gray <- [];
  List.iter
    (fun v ->
      incr spent;
      consider t ~from_root:true v)
    extra_roots;
  List.iter (fun (s, e) -> scan_atomic t ~from_root:true s e ~spent) t.roots;
  List.iter
    (fun (s, e) -> scan_atomic t ~from_root:true s e ~spent)
    extra_ranges;
  List.iter
    (fun blk ->
      if Block.root_scanned blk then
        for i = 0 to blk.Block.blk_count - 1 do
          if Block.is_allocated blk i then begin
            Block.set_marked blk i true;
            let a = Block.slot_addr blk i in
            scan_atomic t ~from_root:true a (a + blk.Block.blk_obj_size)
              ~spent
          end
        done)
    t.all_blocks;
  t.phase <- Marking

let finalize t ~extra_roots ~spent =
  t.stats.final_marks <- t.stats.final_marks + 1;
  List.iter
    (fun v ->
      incr spent;
      consider t ~from_root:true v)
    extra_roots;
  drain t ~spent ~budget:max_int;
  t.phase <- Sweeping;
  t.sweep_pending <- t.all_blocks;
  t.sweep_cursor <- 0

(* Free one dead slot.  Work is charged per slot examined plus the
   words poisoned, on the same words-of-collector-work clock as
   marking. *)
let sweep_slot t blk i ~spent =
  if Block.is_allocated blk i && not (Block.is_marked blk i) then begin
    Block.set_allocated blk i false;
    (* age hygiene: a freed slot restarts at age 0 *)
    Block.set_age blk i 0;
    t.stats.objects_freed <- t.stats.objects_freed + 1;
    t.stats.bytes_freed <- t.stats.bytes_freed + blk.Block.blk_req.(i);
    let addr = Block.slot_addr blk i in
    (match t.on_free with
    | Some f -> f ~addr ~bytes:blk.Block.blk_req.(i)
    | None -> ());
    spent := !spent + (blk.Block.blk_obj_size / 8);
    if t.config.poison then Mem.fill t.mem addr blk.Block.blk_obj_size '\xDB';
    (* nursery slots never return to a free list; their whole page is
       reclaimed or promoted when the cycle completes *)
    if blk.Block.blk_obj_size <= max_small && not blk.Block.blk_young
    then begin
      let fl = free_list t blk.Block.blk_obj_size blk.Block.blk_kind in
      fl := addr :: !fl
    end
  end

(* The sliced sweep resumes mid-block at [t.sweep_cursor], so a slice
   stops within one slot of the budget.  A slot allocated behind the
   cursor during sweeping was born black (see {!Heap.alloc}) and is
   never freed by the slice that later examines it. *)
let sweep_slice t ~spent ~budget =
  let continue_ = ref true in
  while !continue_ && !spent < budget do
    match t.sweep_pending with
    | [] -> continue_ := false
    | blk :: rest ->
        if not (Block.collectable blk) then begin
          t.sweep_pending <- rest;
          t.sweep_cursor <- 0
        end
        else begin
          (* examining a slot costs a word and freeing it costs its
             words too; stop before a slot that might not fit, so sweep
             slices never overrun.  One slot always goes through on a
             fresh slice, for progress under tiny budgets. *)
          let worst = 1 + (blk.Block.blk_obj_size / 8) in
          let i = ref t.sweep_cursor in
          while
            !i < blk.Block.blk_count
            && (!spent + worst <= budget || !spent = 0)
          do
            incr spent;
            sweep_slot t blk !i ~spent;
            incr i
          done;
          if !i >= blk.Block.blk_count then begin
            t.sweep_pending <- rest;
            t.sweep_cursor <- 0
          end
          else begin
            t.sweep_cursor <- !i;
            continue_ := false
          end
        end
  done;
  if t.sweep_pending = [] then begin
    (* cycle complete: account it exactly like a full collection.  The
       sliced sweep has no minor-cycle aging, so a finished cycle closes
       the nursery out wholesale: dead young pages rejoin the reclaim
       pool and surviving young pages are tenured in place. *)
    t.phase <- Idle;
    flush_nursery t;
    t.stats.collections <- t.stats.collections + 1;
    t.since_gc <- 0;
    t.since_minor <- 0
  end

let step ?(extra_roots = []) ?(extra_ranges = []) t =
  let budget = max 1 t.config.pause_budget_words in
  let spent = ref 0 in
  (match t.phase with
  | Idle -> start_cycle t ~extra_roots ~extra_ranges ~spent
  | Marking | Sweeping -> ());
  if t.phase = Marking then begin
    drain t ~spent ~budget;
    if t.gray = [] && !spent < budget then finalize t ~extra_roots ~spent
  end;
  if t.phase = Sweeping then sweep_slice t ~spent ~budget;
  t.stats.increments <- t.stats.increments + 1;
  if !spent > budget then
    t.stats.budget_overruns <- t.stats.budget_overruns + 1;
  if !spent > t.stats.inc_max_pause_words then
    t.stats.inc_max_pause_words <- !spent;
  !spent

let finish ?extra_roots ?extra_ranges t =
  while active t do
    ignore (step ?extra_roots ?extra_ranges t)
  done
