(** Flight recorder: a fixed-size ring buffer of structured events.

    The recorder keeps the last [capacity] events; older events are
    evicted as new ones arrive.  Every event carries a monotonically
    increasing ordinal (assigned at record time, never reused), a
    caller-supplied timestamp on whatever clock the producer uses
    (virtual service ticks for [Gcsafed], executed-instruction counts
    for the VM), a kind string, and structured arguments.

    Recording never allocates on the VM's cost clock and never touches
    cycle counts, so attaching a recorder preserves the
    bit-identical-cycles invariant.

    Determinism: producers only record from serial sections (the
    service's virtual-time simulation, or a single VM run), so the dump
    of a recorder is byte-identical across [--jobs] values. *)

type event = {
  fr_ordinal : int;  (** dense, 0-based, assigned at record time *)
  fr_ts : int;  (** producer-clock timestamp *)
  fr_kind : string;  (** e.g. ["request.begin"], ["gc.step"] *)
  fr_args : (string * Json.t) list;
}

type t

val default_capacity : int
(** 4096 events. *)

val create : ?capacity:int -> unit -> t
(** [capacity] is clamped to at least 1. *)

val capacity : t -> int

val record : t -> ts:int -> string -> (string * Json.t) list -> unit
(** Append an event, evicting the oldest once the ring is full.
    Thread-safe. *)

val recorded : t -> int
(** Total events ever recorded (not just retained). *)

val dropped : t -> int
(** Events evicted so far: [max 0 (recorded - capacity)]. *)

val events : t -> event list
(** Retained events, oldest first. *)

val event_to_json : event -> Json.t
(** [{"ordinal":..,"ts":..,"kind":..,"args":{..}}]. *)

val dump : t -> Json.t
(** [{"flightRecorder":{"capacity":..,"recorded":..,"dropped":..,
    "events":[..]}}] — the document [check] validates. *)

val write_file : t -> string -> unit

val is_dump : Json.t -> bool
(** True when the document has a ["flightRecorder"] member —
    used by [trace-check] to dispatch between Chrome traces and
    flight-recorder dumps. *)

val check : Json.t -> (unit, string) result
(** Validate a dump: structural fields; window coherence
    ([length events = min recorded capacity] and
    [dropped = recorded - length events]); dense monotone ordinals
    starting at [dropped]; and span balance — kinds ending in
    [".begin"]/[".end"] must nest per span name and [trace_id]
    argument.  When [dropped > 0] the front of a span may have been
    evicted, so unmatched [".end"]s and trailing opens are tolerated;
    with [dropped = 0] balance must be exact. *)
