(** A minimal JSON tree: build, render, parse.

    The telemetry subsystem renders metrics snapshots, Chrome trace
    events and profiler reports as JSON, and the trace checker parses
    them back for structural validation — one shared value type keeps
    the emitter and the checker in agreement.  The parser accepts
    standard JSON (objects, arrays, strings with escapes, numbers,
    booleans, null); it exists for validation and tests, not speed. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line rendering with full string escaping. *)

val to_channel : out_channel -> t -> unit

val parse : string -> (t, string) result
(** Parse one JSON document (trailing whitespace allowed).  Numbers
    without [.], [e] or [E] parse as [Int]; others as [Float]. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] elsewhere. *)

val equal : t -> t -> bool
