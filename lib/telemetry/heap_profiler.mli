(** Allocation-site heap profiler.

    Attributes heap objects to their allocation sites and measures, per
    site: objects and bytes allocated, peak simultaneously-live bytes,
    bytes still live when the profile ends, and reclamation lag
    ("drag") — the time between an object's {e last observed use} and
    its actual reclamation by the collector.  Drag is the operational
    cost of conservative retention: comparing drag across
    [--analysis none] and [--analysis flow] shows what KEEP_LIVE
    annotations (or their pruning) cost in retained garbage.

    Time is a caller-driven tick counter (the VM uses its instruction
    count), so profiles are deterministic.  The profiler is
    single-domain: drive it from the thread running the VM. *)

type t

val create : unit -> t

val set_tick : t -> int -> unit
(** Advance the clock.  Ticks must be non-decreasing. *)

val on_alloc : t -> site:string -> addr:int -> bytes:int -> unit
(** A new object at [addr].  [site] is a stable allocation-site id
    (stable across analysis variants of the same program). *)

val on_use : t -> addr:int -> unit
(** [addr] (any address inside a tracked object) was read or written.
    Unknown addresses are ignored. *)

val on_free : t -> addr:int -> unit
(** The object at [addr] (base address) was reclaimed; records its
    drag at the current tick. *)

val finish : t -> unit
(** End of run: objects still live are counted as live-at-exit and
    their drag is measured up to the current tick.  Idempotent. *)

(** {1 Reports} *)

type site = {
  s_site : string;
  s_allocs : int;            (** objects allocated *)
  s_bytes : int;             (** total bytes allocated *)
  s_peak_live : int;         (** peak simultaneously-live bytes *)
  s_live_at_exit : int;      (** bytes still live at [finish] *)
  s_drag_p50 : int;
  s_drag_p90 : int;
  s_drag_max : int;
  s_drag_sum : int;          (** total drag ticks across objects *)
}

type report = {
  r_sites : site list;       (** sorted by [s_drag_sum] descending *)
  r_total_allocs : int;
  r_total_bytes : int;
  r_total_drag : int;
}

val report : t -> report
(** Implies {!finish}. *)

val to_json : report -> Json.t

val pp_table :
  ?annotated:(string -> int) -> Format.formatter -> report -> unit
(** Text table, one row per site.  [annotated] maps a site's function
    name to its surviving KEEP_LIVE count (shown as a column). *)

val site_fn : string -> string
(** The function-name component of a site id ["fn:callee#k"]. *)
