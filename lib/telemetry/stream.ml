(* Windowed metrics streaming.  See the interface for the contract. *)

type t = {
  window : int;
  metrics : Metrics.t;
  emit : Json.t -> unit;
  burn_num : string;
  burn_den : string;
  mutable base : Metrics.snapshot;  (* snapshot at the open window's start *)
  mutable start : int;  (* tick the open window starts at *)
  mutable index : int;  (* ordinal of the open window *)
  mutable diffs : Metrics.snapshot list;  (* emitted windows, newest first *)
}

let default_window = 100_000

let create ?(window = default_window) ?(burn_violated = "service/slo/violated")
    ?(burn_met = "service/slo/met") ~metrics ~emit () =
  {
    window = max 1 window;
    metrics;
    emit;
    burn_num = burn_violated;
    burn_den = burn_met;
    base = Metrics.snapshot metrics;
    start = 0;
    index = 0;
    diffs = [];
  }

let counter_delta d name =
  match Metrics.find d name with Some (Metrics.Counter n) -> n | _ -> 0

let burn_rate t d =
  let violated = counter_delta d t.burn_num in
  let met = counter_delta d t.burn_den in
  Float.of_int violated /. Float.of_int (max 1 (violated + met))

(* Wall-clock metrics (the [*_ns] histograms) are nondeterministic across
   worker counts and machines; window lines live on the virtual clock and
   must be byte-identical across [--jobs], so they are excluded from the
   wire format (they stay in the raw [windows] diffs). *)
let wall_clock name =
  String.length name > 3 && String.sub name (String.length name - 3) 3 = "_ns"

let window_to_json t ~index ~from_ ~to_ d =
  let counters, gauges, hists =
    List.fold_left
      (fun (cs, gs, hs) (name, v) ->
        if wall_clock name then (cs, gs, hs)
        else
        match v with
        | Metrics.Counter n ->
            ((if n <> 0 then (name, Json.Int n) :: cs else cs), gs, hs)
        | Metrics.Gauge { last; max } ->
            ( cs,
              ( name,
                Json.Obj [ ("last", Json.Int last); ("max", Json.Int max) ] )
              :: gs,
              hs )
        | Metrics.Histogram { count; sum; max; buckets } ->
            if count = 0 then (cs, gs, hs)
            else
              ( cs,
                gs,
                ( name,
                  Json.Obj
                    [
                      ("count", Json.Int count);
                      ("sum", Json.Int sum);
                      ("max", Json.Int max);
                      ("p50", Json.Int (Metrics.percentile buckets 0.50));
                      ("p90", Json.Int (Metrics.percentile buckets 0.90));
                      ("p99", Json.Int (Metrics.percentile buckets 0.99));
                    ] )
                :: hs ))
      ([], [], []) d
  in
  Json.Obj
    [
      ("type", Json.Str "window");
      ("index", Json.Int index);
      ("from", Json.Int from_);
      ("to", Json.Int to_);
      ("burn_rate", Json.Float (burn_rate t d));
      ("counters", Json.Obj (List.rev counters));
      ("gauges", Json.Obj (List.rev gauges));
      ("histograms", Json.Obj (List.rev hists));
    ]

let flush t ~to_ =
  let snap = Metrics.snapshot t.metrics in
  let d = Metrics.diff snap t.base in
  t.emit (window_to_json t ~index:t.index ~from_:t.start ~to_ d);
  t.diffs <- d :: t.diffs;
  t.base <- snap;
  t.start <- to_;
  t.index <- t.index + 1

let advance t ~now =
  while now >= t.start + t.window do
    flush t ~to_:(t.start + t.window)
  done

let finish t ~now =
  advance t ~now;
  if now > t.start || t.index = 0 then flush t ~to_:(max now t.start)

let windows t = List.rev t.diffs

let event t ev =
  match Flight_recorder.event_to_json ev with
  | Json.Obj fields -> t.emit (Json.Obj (("type", Json.Str "event") :: fields))
  | other -> t.emit other
