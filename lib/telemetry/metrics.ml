(* Metrics registry.  See the interface for the contract.

   Enabled instruments are records of atomics; the disabled registry
   hands out physically-shared dummy instruments, so the hot-path update
   functions can test a single [enabled] flag embedded in the instrument
   itself and return without allocating. *)

let counter_shards = 8
(* Counters are sharded across a small fixed-width array of atomics,
   indexed by the updating domain's id, so concurrent [Exec.Pool]
   workers don't bounce one cache line; [counter_value] sums the shards
   at snapshot time.  The width is a power of two so indexing is a
   mask. *)

type counter = { c_enabled : bool; c_shards : int Atomic.t array }

type gauge = { g_enabled : bool; g_last : int Atomic.t; g_max : int Atomic.t }

let nbuckets = 63
(* bucket 0: value 0; bucket i: 2^(i-1) <= v < 2^i *)

type histogram = {
  h_enabled : bool;
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
  h_max : int Atomic.t;
  h_buckets : int Atomic.t array;
}

type instrument = I_counter of counter | I_gauge of gauge | I_hist of histogram

type core = {
  mutex : Mutex.t;
  table : (string, instrument) Hashtbl.t;
}

type t = { core : core option; prefix : string }

let create () =
  { core = Some { mutex = Mutex.create (); table = Hashtbl.create 64 };
    prefix = "" }

let disabled = { core = None; prefix = "" }

let is_enabled t = t.core <> None

let scope t name =
  match t.core with
  | None -> disabled
  | Some _ -> { t with prefix = t.prefix ^ name ^ "/" }

let null_counter = { c_enabled = false; c_shards = [| Atomic.make 0 |] }

let null_gauge =
  { g_enabled = false; g_last = Atomic.make 0; g_max = Atomic.make 0 }

let null_hist =
  {
    h_enabled = false;
    h_count = Atomic.make 0;
    h_sum = Atomic.make 0;
    h_max = Atomic.make 0;
    h_buckets = [| Atomic.make 0 |];
  }

let register t name make get =
  match t.core with
  | None -> None
  | Some core ->
      let name = t.prefix ^ name in
      Mutex.lock core.mutex;
      let r =
        match Hashtbl.find_opt core.table name with
        | Some i -> get i
        | None ->
            let i = make () in
            Hashtbl.add core.table name i;
            get i
      in
      Mutex.unlock core.mutex;
      r

let counter t name =
  match
    register t name
      (fun () ->
        I_counter
          {
            c_enabled = true;
            c_shards = Array.init counter_shards (fun _ -> Atomic.make 0);
          })
      (function I_counter c -> Some c | _ -> None)
  with
  | Some c -> c
  | None -> null_counter

let counter_shard c =
  c.c_shards.((Domain.self () :> int) land (Array.length c.c_shards - 1))

let counter_value c =
  Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.c_shards

let incr c = if c.c_enabled then ignore (Atomic.fetch_and_add (counter_shard c) 1)

let add c n = if c.c_enabled then ignore (Atomic.fetch_and_add (counter_shard c) n)

let gauge t name =
  match
    register t name
      (fun () ->
        I_gauge
          { g_enabled = true; g_last = Atomic.make 0; g_max = Atomic.make 0 })
      (function I_gauge g -> Some g | _ -> None)
  with
  | Some g -> g
  | None -> null_gauge

let rec raise_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then raise_max a v

let set g v =
  if g.g_enabled then begin
    Atomic.set g.g_last v;
    raise_max g.g_max v
  end

let histogram t name =
  match
    register t name
      (fun () ->
        I_hist
          {
            h_enabled = true;
            h_count = Atomic.make 0;
            h_sum = Atomic.make 0;
            h_max = Atomic.make 0;
            h_buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
          })
      (function I_hist h -> Some h | _ -> None)
  with
  | Some h -> h
  | None -> null_hist

let bucket_of v =
  if v <= 0 then 0
  else
    (* index of highest set bit, plus one *)
    let rec go v i = if v = 0 then i else go (v lsr 1) (i + 1) in
    min (nbuckets - 1) (go v 0)

let observe h v =
  if h.h_enabled then begin
    ignore (Atomic.fetch_and_add h.h_count 1);
    ignore (Atomic.fetch_and_add h.h_sum (max 0 v));
    raise_max h.h_max v;
    ignore (Atomic.fetch_and_add h.h_buckets.(bucket_of v) 1)
  end

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type value =
  | Counter of int
  | Gauge of { last : int; max : int }
  | Histogram of { count : int; sum : int; max : int; buckets : int array }

type snapshot = (string * value) list

let snapshot t =
  match t.core with
  | None -> []
  | Some core ->
      Mutex.lock core.mutex;
      let entries =
        Hashtbl.fold
          (fun name i acc ->
            let v =
              match i with
              | I_counter c -> Counter (counter_value c)
              | I_gauge g ->
                  Gauge { last = Atomic.get g.g_last; max = Atomic.get g.g_max }
              | I_hist h ->
                  Histogram
                    {
                      count = Atomic.get h.h_count;
                      sum = Atomic.get h.h_sum;
                      max = Atomic.get h.h_max;
                      buckets = Array.map Atomic.get h.h_buckets;
                    }
            in
            (name, v) :: acc)
          core.table []
      in
      Mutex.unlock core.mutex;
      List.sort (fun (a, _) (b, _) -> String.compare a b) entries

let diff later earlier =
  List.map
    (fun (name, v) ->
      match (v, List.assoc_opt name earlier) with
      | Counter l, Some (Counter e) -> (name, Counter (l - e))
      | Gauge _, Some (Gauge _) -> (name, v)
      | Histogram l, Some (Histogram e) ->
          let buckets =
            Array.init
              (max (Array.length l.buckets) (Array.length e.buckets))
              (fun i ->
                let at (a : int array) = if i < Array.length a then a.(i) else 0 in
                at l.buckets - at e.buckets)
          in
          ( name,
            Histogram
              {
                count = l.count - e.count;
                sum = l.sum - e.sum;
                max = l.max;
                buckets;
              } )
      | _, _ -> (name, v))
    later

let merge a b =
  let names =
    List.sort_uniq String.compare (List.map fst a @ List.map fst b)
  in
  List.filter_map
    (fun name ->
      match (List.assoc_opt name a, List.assoc_opt name b) with
      | Some v, None | None, Some v -> Some (name, v)
      | None, None -> None
      | Some va, Some vb ->
          let v =
            match (va, vb) with
            | Counter x, Counter y -> Counter (x + y)
            | Gauge _, Gauge g ->
                (* later window wins, as in [diff] *)
                Gauge g
            | Histogram x, Histogram y ->
                let buckets =
                  Array.init
                    (max (Array.length x.buckets) (Array.length y.buckets))
                    (fun i ->
                      let at (a : int array) =
                        if i < Array.length a then a.(i) else 0
                      in
                      at x.buckets + at y.buckets)
                in
                Histogram
                  {
                    count = x.count + y.count;
                    sum = x.sum + y.sum;
                    max = max x.max y.max;
                    buckets;
                  }
            | _, _ -> vb
          in
          Some (name, v))
    names

let find snap name = List.assoc_opt name snap

let absorb t snap =
  match t.core with
  | None -> ()
  | Some _ ->
      List.iter
        (fun (name, v) ->
          (* [name] is already fully qualified; absorb into the root *)
          let root = { t with prefix = "" } in
          match v with
          | Counter n -> add (counter root name) n
          | Gauge { last; max } ->
              let g = gauge root name in
              set g max;
              set g last
          | Histogram { count; sum; max; buckets } ->
              let h = histogram root name in
              if h.h_enabled then begin
                ignore (Atomic.fetch_and_add h.h_count count);
                ignore (Atomic.fetch_and_add h.h_sum sum);
                raise_max h.h_max max;
                let n = min (Array.length buckets) (Array.length h.h_buckets) in
                for i = 0 to n - 1 do
                  ignore (Atomic.fetch_and_add h.h_buckets.(i) buckets.(i))
                done
              end)
        snap

let percentile buckets p =
  let total = Array.fold_left ( + ) 0 buckets in
  if total = 0 then 0
  else begin
    (* nearest-rank: the ceil(p * n)-th order statistic.  The product
       [p *. n] can land a hair above the exact rank in binary floating
       point (0.07 *. 100. = 7.0000000000000006), so back off by an
       epsilon before taking the ceiling; out-of-range and NaN [p]
       clamp to the extreme order statistics. *)
    let p = if Float.is_nan p then 0. else Float.min 1. (Float.max 0. p) in
    let target =
      Float.to_int (Float.ceil ((Float.of_int total *. p) -. 1e-9))
    in
    let target = max 1 (min total target) in
    let seen = ref 0 and result = ref 0 in
    (try
       Array.iteri
         (fun i c ->
           seen := !seen + c;
           if !seen >= target then begin
             (* upper edge of bucket i: 0 for bucket 0, else 2^i - 1 *)
             result := (if i = 0 then 0 else (1 lsl i) - 1);
             raise Exit
           end)
         buckets
     with Exit -> ());
    !result
  end

let value_to_json = function
  | Counter n -> Json.Int n
  | Gauge { last; max } ->
      Json.Obj [ ("last", Json.Int last); ("max", Json.Int max) ]
  | Histogram { count; sum; max; buckets } ->
      let mean = if count > 0 then Float.of_int sum /. Float.of_int count else 0. in
      Json.Obj
        [
          ("count", Json.Int count);
          ("sum", Json.Int sum);
          ("max", Json.Int max);
          ("mean", Json.Float mean);
          ("p50", Json.Int (percentile buckets 0.50));
          ("p90", Json.Int (percentile buckets 0.90));
          ("p99", Json.Int (percentile buckets 0.99));
        ]

let to_json snap =
  Json.Obj (List.map (fun (name, v) -> (name, value_to_json v)) snap)

let pp ppf snap =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> Format.fprintf ppf "%-40s %d@." name n
      | Gauge { last; max } ->
          Format.fprintf ppf "%-40s last=%d max=%d@." name last max
      | Histogram { count; sum; max; buckets } ->
          Format.fprintf ppf "%-40s n=%d sum=%d max=%d p50=%d p90=%d p99=%d@."
            name count sum max (percentile buckets 0.50)
            (percentile buckets 0.90) (percentile buckets 0.99))
    snap
