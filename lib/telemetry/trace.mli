(** Span tracer emitting Chrome trace-event JSON.

    A trace is an append-only event log in the Chrome trace-event
    format (the ["traceEvents"] array form) loadable by Perfetto and
    [chrome://tracing].  Phases used here: [B]/[E] duration spans,
    [i] instants, [C] counter tracks, and [M] metadata (lane names).

    Events are timestamped with a monotonic wall clock in microseconds
    relative to trace creation, and carry the calling domain's id as
    their [tid], so spans recorded by {!Exec.Pool} workers land in
    separate lanes.  Workers should call {!name_lane} once so the lanes
    are labelled in the UI.

    A tracer is safe to use from several domains at once. *)

type t

val create : unit -> t

val begin_span : t -> ?args:(string * Json.t) list -> string -> unit
(** Opens a [B] event on the calling domain's lane. *)

val end_span : t -> string -> unit
(** Closes the matching [B] with an [E] event on the same lane. *)

val with_span : t -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** Brackets the call in [begin_span]/[end_span]; the span is closed
    even if the call raises. *)

val instant : t -> ?args:(string * Json.t) list -> string -> unit
(** An [i] (instant) event. *)

val counter : t -> string -> (string * int) list -> unit
(** A [C] (counter-track) event, one series per pair. *)

val register_lane : string -> unit
(** Names the calling domain's lane, process-wide: every tracer emits
    an [M] thread_name record for the lanes its events touch.
    {!Exec.Pool} workers register themselves as ["worker-N"]; the main
    domain defaults to ["main"]. *)

(** {1 Inspection and output} *)

type event = {
  ev_ph : char;
  ev_name : string;
  ev_ts : int;  (** microseconds since trace creation *)
  ev_tid : int;
  ev_args : (string * Json.t) list;
}

val events : t -> event list
(** In emission order. *)

val to_json : t -> Json.t
(** The [{"traceEvents": [...]}] document. *)

val write_file : t -> string -> unit

val normalize : event list -> event list
(** Canonical form for determinism comparisons: timestamps and lane ids
    zeroed, then sorted by (name, phase, rendered args).  Lanes are
    erased because which worker a task lands on is a scheduling
    accident; per-lane B/E structure is [check]'s concern.  Two runs of
    the same parallel workload normalize to equal lists iff they
    produced the same multiset of events. *)

val check : Json.t -> (unit, string) result
(** Structural validator: the document is an object with a
    ["traceEvents"] array; every event has string [name]/[ph], integer
    [ts]/[pid]/[tid]; [ph] is one of B/E/i/C/M; and on every lane the
    B/E events balance like parentheses with matching names. *)
