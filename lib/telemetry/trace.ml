(* Chrome trace-event tracer.  See the interface for the contract. *)

type event = {
  ev_ph : char;
  ev_name : string;
  ev_ts : int;
  ev_tid : int;
  ev_args : (string * Json.t) list;
}

type t = {
  mutex : Mutex.t;
  mutable evs : event list; (* reversed *)
  t0 : float; (* Unix epoch seconds at creation *)
}

let create () = { mutex = Mutex.create (); evs = []; t0 = Unix.gettimeofday () }

let now_us t = Float.to_int ((Unix.gettimeofday () -. t.t0) *. 1e6)

let push t ev =
  Mutex.lock t.mutex;
  t.evs <- ev :: t.evs;
  Mutex.unlock t.mutex

let tid () = (Domain.self () :> int)

let begin_span t ?(args = []) name =
  push t
    { ev_ph = 'B'; ev_name = name; ev_ts = now_us t; ev_tid = tid ();
      ev_args = args }

let end_span t name =
  push t
    { ev_ph = 'E'; ev_name = name; ev_ts = now_us t; ev_tid = tid ();
      ev_args = [] }

let with_span t ?args name f =
  begin_span t ?args name;
  Fun.protect ~finally:(fun () -> end_span t name) f

let instant t ?(args = []) name =
  push t
    { ev_ph = 'i'; ev_name = name; ev_ts = now_us t; ev_tid = tid ();
      ev_args = args }

let counter t name series =
  push t
    { ev_ph = 'C'; ev_name = name; ev_ts = now_us t; ev_tid = tid ();
      ev_args = List.map (fun (k, v) -> (k, Json.Int v)) series }

(* Lane names are process-global: pool workers register once at spawn,
   before any particular tracer exists; tracers look names up at render
   time for the lanes their events touch. *)
let lanes : (int, string) Hashtbl.t = Hashtbl.create 8
let lanes_mutex = Mutex.create ()

let register_lane name =
  Mutex.lock lanes_mutex;
  Hashtbl.replace lanes (tid ()) name;
  Mutex.unlock lanes_mutex

let lane_name t =
  Mutex.lock lanes_mutex;
  let n = Hashtbl.find_opt lanes t in
  Mutex.unlock lanes_mutex;
  match n with
  | Some n -> n
  | None -> if t = 0 then "main" else Printf.sprintf "lane-%d" t

let events t =
  Mutex.lock t.mutex;
  let evs = t.evs in
  Mutex.unlock t.mutex;
  List.rev evs

let event_to_json ev =
  let base =
    [
      ("name", Json.Str ev.ev_name);
      ("ph", Json.Str (String.make 1 ev.ev_ph));
      ("ts", Json.Int ev.ev_ts);
      ("pid", Json.Int 1);
      ("tid", Json.Int ev.ev_tid);
    ]
  in
  let args =
    match (ev.ev_ph, ev.ev_args) with
    | 'E', [] -> []
    | _, args -> [ ("args", Json.Obj args) ]
  in
  (* instants scope to their thread so Perfetto draws them in-lane *)
  let scope = if ev.ev_ph = 'i' then [ ("s", Json.Str "t") ] else [] in
  Json.Obj (base @ scope @ args)

let to_json t =
  let evs = events t in
  let tids = List.sort_uniq compare (List.map (fun e -> e.ev_tid) evs) in
  let meta =
    List.map
      (fun tid ->
        event_to_json
          { ev_ph = 'M'; ev_name = "thread_name"; ev_ts = 0; ev_tid = tid;
            ev_args = [ ("name", Json.Str (lane_name tid)) ] })
      tids
  in
  Json.Obj [ ("traceEvents", Json.List (meta @ List.map event_to_json evs)) ]

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.to_channel oc (to_json t);
      output_char oc '\n')

let normalize evs =
  (* which worker lane a task lands on is a scheduling accident, so the
     canonical form erases lanes along with timestamps: what is
     deterministic across runs of the same workload is the multiset of
     events.  Per-lane B/E structure is [check]'s job, not this one's. *)
  let cleared = List.map (fun ev -> { ev with ev_ts = 0; ev_tid = 0 }) evs in
  List.sort
    (fun a b ->
      let c = String.compare a.ev_name b.ev_name in
      if c <> 0 then c
      else
        let c = Char.compare a.ev_ph b.ev_ph in
        if c <> 0 then c
        else
          String.compare
            (Json.to_string (Json.Obj a.ev_args))
            (Json.to_string (Json.Obj b.ev_args)))
    cleared

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let check doc =
  let ( let* ) = Result.bind in
  let* evs =
    match Json.member "traceEvents" doc with
    | Some (Json.List evs) -> Ok evs
    | Some _ -> Error "traceEvents is not an array"
    | None -> Error "missing traceEvents"
  in
  let str_field ev k =
    match Json.member k ev with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "event missing string field %S" k)
  in
  let int_field ev k =
    match Json.member k ev with
    | Some (Json.Int _) -> Ok ()
    | _ -> Error (Printf.sprintf "event missing integer field %S" k)
  in
  (* per-lane stacks of open span names *)
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let rec go i = function
    | [] ->
        let unbalanced =
          Hashtbl.fold
            (fun tid stack acc ->
              match stack with [] -> acc | n :: _ -> (tid, n) :: acc)
            stacks []
        in
        (match unbalanced with
        | [] -> Ok ()
        | (tid, n) :: _ ->
            Error (Printf.sprintf "lane %d: unclosed span %S" tid n))
    | ev :: rest ->
        let at msg = Printf.sprintf "event %d: %s" i msg in
        let* name = Result.map_error at (str_field ev "name") in
        let* ph = Result.map_error at (str_field ev "ph") in
        let* () = Result.map_error at (int_field ev "ts") in
        let* () = Result.map_error at (int_field ev "pid") in
        let* () = Result.map_error at (int_field ev "tid") in
        let tid =
          match Json.member "tid" ev with Some (Json.Int t) -> t | _ -> 0
        in
        let* () =
          match ph with
          | "B" | "E" | "i" | "C" | "M" -> Ok ()
          | _ -> Error (at (Printf.sprintf "bad phase %S" ph))
        in
        let stack = Option.value ~default:[] (Hashtbl.find_opt stacks tid) in
        let* () =
          match ph with
          | "B" ->
              Hashtbl.replace stacks tid (name :: stack);
              Ok ()
          | "E" -> (
              match stack with
              | top :: rest when top = name ->
                  Hashtbl.replace stacks tid rest;
                  Ok ()
              | top :: _ ->
                  Error
                    (at
                       (Printf.sprintf "lane %d: E %S closes open span %S" tid
                          name top))
              | [] ->
                  Error
                    (at (Printf.sprintf "lane %d: E %S with no open span" tid name))
              )
          | _ -> Ok ()
        in
        go (i + 1) rest
  in
  go 0 evs
