(* Flight recorder.  See the interface for the contract. *)

type event = {
  fr_ordinal : int;
  fr_ts : int;
  fr_kind : string;
  fr_args : (string * Json.t) list;
}

type t = {
  capacity : int;
  mutex : Mutex.t;
  ring : event option array;  (* slot = ordinal mod capacity *)
  mutable next : int;  (* next ordinal; total events ever recorded *)
}

let default_capacity = 4096

let create ?(capacity = default_capacity) () =
  let capacity = max 1 capacity in
  { capacity; mutex = Mutex.create (); ring = Array.make capacity None;
    next = 0 }

let capacity t = t.capacity

let record t ~ts kind args =
  Mutex.lock t.mutex;
  let ev = { fr_ordinal = t.next; fr_ts = ts; fr_kind = kind; fr_args = args } in
  t.ring.(t.next mod t.capacity) <- Some ev;
  t.next <- t.next + 1;
  Mutex.unlock t.mutex

let recorded t =
  Mutex.lock t.mutex;
  let n = t.next in
  Mutex.unlock t.mutex;
  n

let dropped t = max 0 (recorded t - t.capacity)

let events t =
  Mutex.lock t.mutex;
  let n = t.next in
  let len = min n t.capacity in
  let first = n - len in
  let evs =
    List.init len (fun i ->
        match t.ring.((first + i) mod t.capacity) with
        | Some ev -> ev
        | None -> assert false)
  in
  Mutex.unlock t.mutex;
  evs

let event_to_json ev =
  Json.Obj
    [
      ("ordinal", Json.Int ev.fr_ordinal);
      ("ts", Json.Int ev.fr_ts);
      ("kind", Json.Str ev.fr_kind);
      ("args", Json.Obj ev.fr_args);
    ]

let dump t =
  let evs = events t in
  Json.Obj
    [
      ( "flightRecorder",
        Json.Obj
          [
            ("capacity", Json.Int t.capacity);
            ("recorded", Json.Int (recorded t));
            ("dropped", Json.Int (dropped t));
            ("events", Json.List (List.map event_to_json evs));
          ] );
    ]

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.to_channel oc (dump t);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let is_dump doc = Json.member "flightRecorder" doc <> None

(* Span pairing: kinds spelled "<name>.begin" / "<name>.end" open and
   close a span keyed by the name plus the event's trace_id argument
   (when present), so per-request phase spans balance independently. *)
let span_key ev =
  let suffix s = String.length ev.fr_kind > String.length s
                 && String.ends_with ~suffix:s ev.fr_kind in
  let strip s = String.sub ev.fr_kind 0 (String.length ev.fr_kind - String.length s) in
  let role =
    if suffix ".begin" then Some (`Begin, strip ".begin")
    else if suffix ".end" then Some (`End, strip ".end")
    else None
  in
  match role with
  | None -> None
  | Some (role, name) ->
      let tid =
        match List.assoc_opt "trace_id" ev.fr_args with
        | Some (Json.Int n) -> string_of_int n
        | _ -> ""
      in
      Some (role, name ^ "#" ^ tid)

let check doc =
  let ( let* ) = Result.bind in
  let* fr =
    match Json.member "flightRecorder" doc with
    | Some (Json.Obj _ as o) -> Ok o
    | Some _ -> Error "flightRecorder is not an object"
    | None -> Error "missing flightRecorder"
  in
  let int_field k =
    match Json.member k fr with
    | Some (Json.Int n) -> Ok n
    | _ -> Error (Printf.sprintf "missing integer field %S" k)
  in
  let* capacity = int_field "capacity" in
  let* recorded = int_field "recorded" in
  let* dropped = int_field "dropped" in
  let* evs =
    match Json.member "events" fr with
    | Some (Json.List evs) -> Ok evs
    | _ -> Error "events is not an array"
  in
  let* () = if capacity >= 1 then Ok () else Error "capacity must be >= 1" in
  let len = List.length evs in
  (* wraparound coherence: the window is exactly the last
     min(recorded, capacity) events *)
  let* () =
    if len <> min recorded capacity then
      Error
        (Printf.sprintf
           "window incoherent: %d event(s) for %d recorded, capacity %d" len
           recorded capacity)
    else Ok ()
  in
  let* () =
    if dropped <> recorded - len then
      Error
        (Printf.sprintf "dropped count %d disagrees with recorded %d - %d kept"
           dropped recorded len)
    else Ok ()
  in
  let parse i ev =
    let field k =
      match Json.member k ev with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "event %d: missing field %S" i k)
    in
    let* ordinal =
      Result.bind (field "ordinal") (function
        | Json.Int n -> Ok n
        | _ -> Error (Printf.sprintf "event %d: ordinal not an integer" i))
    in
    let* ts =
      Result.bind (field "ts") (function
        | Json.Int n -> Ok n
        | _ -> Error (Printf.sprintf "event %d: ts not an integer" i))
    in
    let* kind =
      Result.bind (field "kind") (function
        | Json.Str s -> Ok s
        | _ -> Error (Printf.sprintf "event %d: kind not a string" i))
    in
    let args =
      match Json.member "args" ev with Some (Json.Obj a) -> a | _ -> []
    in
    Ok { fr_ordinal = ordinal; fr_ts = ts; fr_kind = kind; fr_args = args }
  in
  let opens : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let rec go i expected = function
    | [] ->
        if dropped = 0 then
          let unbalanced =
            Hashtbl.fold
              (fun key n acc -> if n <> 0 then (key, n) :: acc else acc)
              opens []
          in
          match List.sort compare unbalanced with
          | [] -> Ok ()
          | (key, n) :: _ ->
              Error (Printf.sprintf "span %S unbalanced (%+d)" key n)
        else Ok ()
    | ev :: rest ->
        let* ev = parse i ev in
        (* monotone, gap-free ordinals *)
        let* () =
          if ev.fr_ordinal <> expected then
            Error
              (Printf.sprintf "event %d: ordinal %d, expected %d" i
                 ev.fr_ordinal expected)
          else Ok ()
        in
        let* () =
          match span_key ev with
          | None -> Ok ()
          | Some (`Begin, key) ->
              Hashtbl.replace opens key
                (1 + Option.value ~default:0 (Hashtbl.find_opt opens key));
              Ok ()
          | Some (`End, key) ->
              let n = Option.value ~default:0 (Hashtbl.find_opt opens key) in
              if n > 0 then begin
                Hashtbl.replace opens key (n - 1);
                Ok ()
              end
              else if dropped > 0 then
                (* the matching begin may have been evicted *)
                Ok ()
              else
                Error
                  (Printf.sprintf "event %d: %S closes an unopened span" i
                     ev.fr_kind)
        in
        go (i + 1) (expected + 1) rest
  in
  go 0 dropped evs
