type t = {
  metrics : Metrics.t;
  trace : Trace.t option;
  profiler : Heap_profiler.t option;
  recorder : Flight_recorder.t option;
}

let none : t option = None

let make ?metrics ?trace ?profiler ?recorder () =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  { metrics; trace; profiler; recorder }

let metrics = function Some s -> s.metrics | None -> Metrics.disabled

let recorder = function Some s -> s.recorder | None -> None

let with_span sink ?args name f =
  match sink with
  | Some { trace = Some tr; _ } -> Trace.with_span tr ?args name f
  | _ -> f ()

let instant sink ?args name =
  match sink with
  | Some { trace = Some tr; _ } -> Trace.instant tr ?args name
  | _ -> ()
