(** The telemetry sink: the bundle instrumented code receives.

    A sink carries a metrics registry plus optional tracer and heap
    profiler, so a single optional argument threads all three through
    the VM, heap, and harness.  [none] is the canonical "telemetry
    off" value: its registry is {!Metrics.disabled} and hot paths can
    skip it with one match. *)

type t = {
  metrics : Metrics.t;
  trace : Trace.t option;
  profiler : Heap_profiler.t option;
  recorder : Flight_recorder.t option;
}

val none : t option
(** [None]; for readability at call sites. *)

val make :
  ?metrics:Metrics.t ->
  ?trace:Trace.t ->
  ?profiler:Heap_profiler.t ->
  ?recorder:Flight_recorder.t ->
  unit ->
  t
(** Defaults: a fresh enabled registry, no tracer, no profiler, no
    flight recorder. *)

val metrics : t option -> Metrics.t
(** The sink's registry, or {!Metrics.disabled}. *)

val recorder : t option -> Flight_recorder.t option
(** The sink's flight recorder, if any. *)

val with_span :
  t option -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** Span on the sink's tracer if any, else just the call. *)

val instant : t option -> ?args:(string * Json.t) list -> string -> unit
