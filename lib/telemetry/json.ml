(** A minimal JSON tree: build, render, parse (see the interface). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          render buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          render buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  render buf v;
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string * int

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape"
               in
               (* keep it byte-oriented: encode as UTF-8 *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf
                   (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end;
               pos := !pos + 4
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          advance ();
          loop ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let floaty =
      String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text
    in
    if floaty then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail ("bad number " ^ text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail ("bad number " ^ text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or } in object"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ] in array"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Bad (msg, at) ->
      Error (Printf.sprintf "%s at offset %d" msg at)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let equal (a : t) (b : t) = a = b
