(* Allocation-site heap profiler.  See the interface for the contract. *)

let nbuckets = 63

type obj = {
  o_site : site_state;
  o_bytes : int;
  mutable o_last_use : int;
}

and site_state = {
  ss_site : string;
  mutable ss_allocs : int;
  mutable ss_bytes : int;
  mutable ss_live : int;
  mutable ss_peak_live : int;
  mutable ss_live_at_exit : int;
  mutable ss_drag_sum : int;
  mutable ss_drag_max : int;
  ss_drag_buckets : int array;
}

type t = {
  mutable tick : int;
  objs : (int, obj) Hashtbl.t; (* base addr -> object *)
  sites : (string, site_state) Hashtbl.t;
  mutable finished : bool;
}

let create () =
  { tick = 0; objs = Hashtbl.create 256; sites = Hashtbl.create 32;
    finished = false }

let set_tick t n = if n > t.tick then t.tick <- n

let site_state t site =
  match Hashtbl.find_opt t.sites site with
  | Some ss -> ss
  | None ->
      let ss =
        {
          ss_site = site;
          ss_allocs = 0;
          ss_bytes = 0;
          ss_live = 0;
          ss_peak_live = 0;
          ss_live_at_exit = 0;
          ss_drag_sum = 0;
          ss_drag_max = 0;
          ss_drag_buckets = Array.make nbuckets 0;
        }
      in
      Hashtbl.add t.sites site ss;
      ss

let on_alloc t ~site ~addr ~bytes =
  let ss = site_state t site in
  ss.ss_allocs <- ss.ss_allocs + 1;
  ss.ss_bytes <- ss.ss_bytes + bytes;
  ss.ss_live <- ss.ss_live + bytes;
  if ss.ss_live > ss.ss_peak_live then ss.ss_peak_live <- ss.ss_live;
  Hashtbl.replace t.objs addr
    { o_site = ss; o_bytes = bytes; o_last_use = t.tick }

let on_use t ~addr =
  match Hashtbl.find_opt t.objs addr with
  | Some o -> o.o_last_use <- t.tick
  | None -> ()

let bucket_of v =
  if v <= 0 then 0
  else
    let rec go v i = if v = 0 then i else go (v lsr 1) (i + 1) in
    min (nbuckets - 1) (go v 0)

let record_drag ss drag =
  ss.ss_drag_sum <- ss.ss_drag_sum + drag;
  if drag > ss.ss_drag_max then ss.ss_drag_max <- drag;
  ss.ss_drag_buckets.(bucket_of drag) <-
    ss.ss_drag_buckets.(bucket_of drag) + 1

let on_free t ~addr =
  match Hashtbl.find_opt t.objs addr with
  | None -> ()
  | Some o ->
      Hashtbl.remove t.objs addr;
      let ss = o.o_site in
      ss.ss_live <- ss.ss_live - o.o_bytes;
      record_drag ss (max 0 (t.tick - o.o_last_use))

let finish t =
  if not t.finished then begin
    t.finished <- true;
    Hashtbl.iter
      (fun _ o ->
        let ss = o.o_site in
        ss.ss_live_at_exit <- ss.ss_live_at_exit + o.o_bytes;
        record_drag ss (max 0 (t.tick - o.o_last_use)))
      t.objs;
    Hashtbl.reset t.objs
  end

type site = {
  s_site : string;
  s_allocs : int;
  s_bytes : int;
  s_peak_live : int;
  s_live_at_exit : int;
  s_drag_p50 : int;
  s_drag_p90 : int;
  s_drag_max : int;
  s_drag_sum : int;
}

type report = {
  r_sites : site list;
  r_total_allocs : int;
  r_total_bytes : int;
  r_total_drag : int;
}

let report t =
  finish t;
  let sites =
    Hashtbl.fold
      (fun _ ss acc ->
        {
          s_site = ss.ss_site;
          s_allocs = ss.ss_allocs;
          s_bytes = ss.ss_bytes;
          s_peak_live = ss.ss_peak_live;
          s_live_at_exit = ss.ss_live_at_exit;
          s_drag_p50 = Metrics.percentile ss.ss_drag_buckets 0.50;
          s_drag_p90 = Metrics.percentile ss.ss_drag_buckets 0.90;
          s_drag_max = ss.ss_drag_max;
          s_drag_sum = ss.ss_drag_sum;
        }
        :: acc)
      t.sites []
  in
  let sites =
    List.sort
      (fun a b ->
        let c = compare b.s_drag_sum a.s_drag_sum in
        if c <> 0 then c else String.compare a.s_site b.s_site)
      sites
  in
  {
    r_sites = sites;
    r_total_allocs = List.fold_left (fun a s -> a + s.s_allocs) 0 sites;
    r_total_bytes = List.fold_left (fun a s -> a + s.s_bytes) 0 sites;
    r_total_drag = List.fold_left (fun a s -> a + s.s_drag_sum) 0 sites;
  }

let site_to_json s =
  Json.Obj
    [
      ("site", Json.Str s.s_site);
      ("allocs", Json.Int s.s_allocs);
      ("bytes", Json.Int s.s_bytes);
      ("peak_live", Json.Int s.s_peak_live);
      ("live_at_exit", Json.Int s.s_live_at_exit);
      ("drag_p50", Json.Int s.s_drag_p50);
      ("drag_p90", Json.Int s.s_drag_p90);
      ("drag_max", Json.Int s.s_drag_max);
      ("drag_sum", Json.Int s.s_drag_sum);
    ]

let to_json r =
  Json.Obj
    [
      ("total_allocs", Json.Int r.r_total_allocs);
      ("total_bytes", Json.Int r.r_total_bytes);
      ("total_drag", Json.Int r.r_total_drag);
      ("sites", Json.List (List.map site_to_json r.r_sites));
    ]

let site_fn site =
  match String.index_opt site ':' with
  | Some i -> String.sub site 0 i
  | None -> site

let pp_table ?annotated ppf r =
  let kl = match annotated with Some f -> f | None -> fun _ -> -1 in
  Format.fprintf ppf "%-32s %8s %10s %10s %10s %8s %8s %10s" "site" "allocs"
    "bytes" "peak-live" "exit-live" "drag-p50" "drag-p90" "drag-sum";
  if annotated <> None then Format.fprintf ppf " %9s" "KEEP_LIVE";
  Format.fprintf ppf "@.";
  List.iter
    (fun s ->
      Format.fprintf ppf "%-32s %8d %10d %10d %10d %8d %8d %10d" s.s_site
        s.s_allocs s.s_bytes s.s_peak_live s.s_live_at_exit s.s_drag_p50
        s.s_drag_p90 s.s_drag_sum;
      (if annotated <> None then
         let n = kl (site_fn s.s_site) in
         if n >= 0 then Format.fprintf ppf " %9d" n
         else Format.fprintf ppf " %9s" "-");
      Format.fprintf ppf "@.")
    r.r_sites;
  Format.fprintf ppf "total: %d allocs, %d bytes, %d drag ticks@."
    r.r_total_allocs r.r_total_bytes r.r_total_drag
